file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11c.dir/bench_fig11c.cc.o"
  "CMakeFiles/bench_fig11c.dir/bench_fig11c.cc.o.d"
  "bench_fig11c"
  "bench_fig11c.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11c.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
