file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11d.dir/bench_fig11d.cc.o"
  "CMakeFiles/bench_fig11d.dir/bench_fig11d.cc.o.d"
  "bench_fig11d"
  "bench_fig11d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
