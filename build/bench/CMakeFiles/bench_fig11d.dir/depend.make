# Empty dependencies file for bench_fig11d.
# This may be replaced when dependencies are built.
