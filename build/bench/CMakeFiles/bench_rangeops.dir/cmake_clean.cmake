file(REMOVE_RECURSE
  "CMakeFiles/bench_rangeops.dir/bench_rangeops.cc.o"
  "CMakeFiles/bench_rangeops.dir/bench_rangeops.cc.o.d"
  "bench_rangeops"
  "bench_rangeops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rangeops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
