# Empty compiler generated dependencies file for bench_rangeops.
# This may be replaced when dependencies are built.
