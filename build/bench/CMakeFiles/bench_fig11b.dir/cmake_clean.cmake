file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11b.dir/bench_fig11b.cc.o"
  "CMakeFiles/bench_fig11b.dir/bench_fig11b.cc.o.d"
  "bench_fig11b"
  "bench_fig11b.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11b.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
