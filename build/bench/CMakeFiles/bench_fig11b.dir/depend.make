# Empty dependencies file for bench_fig11b.
# This may be replaced when dependencies are built.
