file(REMOVE_RECURSE
  "CMakeFiles/clock_daemon.dir/clock_daemon.cpp.o"
  "CMakeFiles/clock_daemon.dir/clock_daemon.cpp.o.d"
  "clock_daemon"
  "clock_daemon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clock_daemon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
