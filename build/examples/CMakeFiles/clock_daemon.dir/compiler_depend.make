# Empty compiler generated dependencies file for clock_daemon.
# This may be replaced when dependencies are built.
