file(REMOVE_RECURSE
  "CMakeFiles/workload_report.dir/workload_report.cpp.o"
  "CMakeFiles/workload_report.dir/workload_report.cpp.o.d"
  "workload_report"
  "workload_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
