# Empty dependencies file for workload_report.
# This may be replaced when dependencies are built.
