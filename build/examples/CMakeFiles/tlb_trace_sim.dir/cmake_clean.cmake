file(REMOVE_RECURSE
  "CMakeFiles/tlb_trace_sim.dir/tlb_trace_sim.cpp.o"
  "CMakeFiles/tlb_trace_sim.dir/tlb_trace_sim.cpp.o.d"
  "tlb_trace_sim"
  "tlb_trace_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tlb_trace_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
