# Empty compiler generated dependencies file for tlb_trace_sim.
# This may be replaced when dependencies are built.
