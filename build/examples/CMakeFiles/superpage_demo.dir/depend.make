# Empty dependencies file for superpage_demo.
# This may be replaced when dependencies are built.
