file(REMOVE_RECURSE
  "CMakeFiles/superpage_demo.dir/superpage_demo.cpp.o"
  "CMakeFiles/superpage_demo.dir/superpage_demo.cpp.o.d"
  "superpage_demo"
  "superpage_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/superpage_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
