file(REMOVE_RECURSE
  "CMakeFiles/sparse_address_space.dir/sparse_address_space.cpp.o"
  "CMakeFiles/sparse_address_space.dir/sparse_address_space.cpp.o.d"
  "sparse_address_space"
  "sparse_address_space.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparse_address_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
