# Empty compiler generated dependencies file for sparse_address_space.
# This may be replaced when dependencies are built.
