file(REMOVE_RECURSE
  "CMakeFiles/multi_page_size.dir/multi_page_size.cpp.o"
  "CMakeFiles/multi_page_size.dir/multi_page_size.cpp.o.d"
  "multi_page_size"
  "multi_page_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_page_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
