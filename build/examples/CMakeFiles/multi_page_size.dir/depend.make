# Empty dependencies file for multi_page_size.
# This may be replaced when dependencies are built.
