file(REMOVE_RECURSE
  "CMakeFiles/hashed_test.dir/hashed_test.cc.o"
  "CMakeFiles/hashed_test.dir/hashed_test.cc.o.d"
  "hashed_test"
  "hashed_test.pdb"
  "hashed_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hashed_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
