# Empty dependencies file for hashed_test.
# This may be replaced when dependencies are built.
