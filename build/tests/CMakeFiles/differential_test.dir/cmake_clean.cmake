file(REMOVE_RECURSE
  "CMakeFiles/differential_test.dir/differential_test.cc.o"
  "CMakeFiles/differential_test.dir/differential_test.cc.o.d"
  "differential_test"
  "differential_test.pdb"
  "differential_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/differential_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
