# Empty dependencies file for pte_test.
# This may be replaced when dependencies are built.
