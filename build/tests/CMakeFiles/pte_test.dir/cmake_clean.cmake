file(REMOVE_RECURSE
  "CMakeFiles/pte_test.dir/pte_test.cc.o"
  "CMakeFiles/pte_test.dir/pte_test.cc.o.d"
  "pte_test"
  "pte_test.pdb"
  "pte_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pte_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
