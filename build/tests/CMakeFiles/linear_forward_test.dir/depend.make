# Empty dependencies file for linear_forward_test.
# This may be replaced when dependencies are built.
