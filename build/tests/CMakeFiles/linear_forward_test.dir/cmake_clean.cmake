file(REMOVE_RECURSE
  "CMakeFiles/linear_forward_test.dir/linear_forward_test.cc.o"
  "CMakeFiles/linear_forward_test.dir/linear_forward_test.cc.o.d"
  "linear_forward_test"
  "linear_forward_test.pdb"
  "linear_forward_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linear_forward_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
