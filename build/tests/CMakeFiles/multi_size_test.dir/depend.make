# Empty dependencies file for multi_size_test.
# This may be replaced when dependencies are built.
