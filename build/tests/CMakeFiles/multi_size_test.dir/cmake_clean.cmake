file(REMOVE_RECURSE
  "CMakeFiles/multi_size_test.dir/multi_size_test.cc.o"
  "CMakeFiles/multi_size_test.dir/multi_size_test.cc.o.d"
  "multi_size_test"
  "multi_size_test.pdb"
  "multi_size_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_size_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
