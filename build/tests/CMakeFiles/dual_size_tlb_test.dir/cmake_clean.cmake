file(REMOVE_RECURSE
  "CMakeFiles/dual_size_tlb_test.dir/dual_size_tlb_test.cc.o"
  "CMakeFiles/dual_size_tlb_test.dir/dual_size_tlb_test.cc.o.d"
  "dual_size_tlb_test"
  "dual_size_tlb_test.pdb"
  "dual_size_tlb_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dual_size_tlb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
