# Empty compiler generated dependencies file for dual_size_tlb_test.
# This may be replaced when dependencies are built.
