# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for dual_size_tlb_test.
