file(REMOVE_RECURSE
  "CMakeFiles/os_test.dir/os_test.cc.o"
  "CMakeFiles/os_test.dir/os_test.cc.o.d"
  "os_test"
  "os_test.pdb"
  "os_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/os_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
