# Empty compiler generated dependencies file for os_test.
# This may be replaced when dependencies are built.
