file(REMOVE_RECURSE
  "CMakeFiles/machine_matrix_test.dir/machine_matrix_test.cc.o"
  "CMakeFiles/machine_matrix_test.dir/machine_matrix_test.cc.o.d"
  "machine_matrix_test"
  "machine_matrix_test.pdb"
  "machine_matrix_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/machine_matrix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
