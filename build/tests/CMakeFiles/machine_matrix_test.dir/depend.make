# Empty dependencies file for machine_matrix_test.
# This may be replaced when dependencies are built.
