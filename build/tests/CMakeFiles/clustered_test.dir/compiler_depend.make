# Empty compiler generated dependencies file for clustered_test.
# This may be replaced when dependencies are built.
