file(REMOVE_RECURSE
  "CMakeFiles/clustered_test.dir/clustered_test.cc.o"
  "CMakeFiles/clustered_test.dir/clustered_test.cc.o.d"
  "clustered_test"
  "clustered_test.pdb"
  "clustered_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clustered_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
