# Empty dependencies file for refbits_test.
# This may be replaced when dependencies are built.
