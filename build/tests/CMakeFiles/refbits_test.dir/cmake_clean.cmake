file(REMOVE_RECURSE
  "CMakeFiles/refbits_test.dir/refbits_test.cc.o"
  "CMakeFiles/refbits_test.dir/refbits_test.cc.o.d"
  "refbits_test"
  "refbits_test.pdb"
  "refbits_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/refbits_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
