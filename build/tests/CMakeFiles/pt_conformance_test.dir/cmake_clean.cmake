file(REMOVE_RECURSE
  "CMakeFiles/pt_conformance_test.dir/pt_conformance_test.cc.o"
  "CMakeFiles/pt_conformance_test.dir/pt_conformance_test.cc.o.d"
  "pt_conformance_test"
  "pt_conformance_test.pdb"
  "pt_conformance_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pt_conformance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
