# Empty dependencies file for pt_conformance_test.
# This may be replaced when dependencies are built.
