
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/property_test.cc" "tests/CMakeFiles/property_test.dir/property_test.cc.o" "gcc" "tests/CMakeFiles/property_test.dir/property_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cpt_common.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/cpt_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/pt/CMakeFiles/cpt_pt.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/cpt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/tlb/CMakeFiles/cpt_tlb.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/cpt_os.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/cpt_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cpt_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
