# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/pte_test[1]_include.cmake")
include("/root/repo/build/tests/cache_model_test[1]_include.cmake")
include("/root/repo/build/tests/mem_test[1]_include.cmake")
include("/root/repo/build/tests/pt_conformance_test[1]_include.cmake")
include("/root/repo/build/tests/clustered_test[1]_include.cmake")
include("/root/repo/build/tests/tlb_test[1]_include.cmake")
include("/root/repo/build/tests/os_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/hashed_test[1]_include.cmake")
include("/root/repo/build/tests/linear_forward_test[1]_include.cmake")
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/machine_matrix_test[1]_include.cmake")
include("/root/repo/build/tests/multi_size_test[1]_include.cmake")
include("/root/repo/build/tests/refbits_test[1]_include.cmake")
include("/root/repo/build/tests/dual_size_tlb_test[1]_include.cmake")
include("/root/repo/build/tests/differential_test[1]_include.cmake")
include("/root/repo/build/tests/edge_cases_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
