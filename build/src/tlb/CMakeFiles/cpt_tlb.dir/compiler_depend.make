# Empty compiler generated dependencies file for cpt_tlb.
# This may be replaced when dependencies are built.
