
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tlb/complete_subblock.cc" "src/tlb/CMakeFiles/cpt_tlb.dir/complete_subblock.cc.o" "gcc" "src/tlb/CMakeFiles/cpt_tlb.dir/complete_subblock.cc.o.d"
  "/root/repo/src/tlb/dual_size_setassoc.cc" "src/tlb/CMakeFiles/cpt_tlb.dir/dual_size_setassoc.cc.o" "gcc" "src/tlb/CMakeFiles/cpt_tlb.dir/dual_size_setassoc.cc.o.d"
  "/root/repo/src/tlb/partial_subblock.cc" "src/tlb/CMakeFiles/cpt_tlb.dir/partial_subblock.cc.o" "gcc" "src/tlb/CMakeFiles/cpt_tlb.dir/partial_subblock.cc.o.d"
  "/root/repo/src/tlb/single_page.cc" "src/tlb/CMakeFiles/cpt_tlb.dir/single_page.cc.o" "gcc" "src/tlb/CMakeFiles/cpt_tlb.dir/single_page.cc.o.d"
  "/root/repo/src/tlb/superpage.cc" "src/tlb/CMakeFiles/cpt_tlb.dir/superpage.cc.o" "gcc" "src/tlb/CMakeFiles/cpt_tlb.dir/superpage.cc.o.d"
  "/root/repo/src/tlb/tlb.cc" "src/tlb/CMakeFiles/cpt_tlb.dir/tlb.cc.o" "gcc" "src/tlb/CMakeFiles/cpt_tlb.dir/tlb.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cpt_common.dir/DependInfo.cmake"
  "/root/repo/build/src/pt/CMakeFiles/cpt_pt.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/cpt_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
