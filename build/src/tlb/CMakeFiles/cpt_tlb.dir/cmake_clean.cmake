file(REMOVE_RECURSE
  "CMakeFiles/cpt_tlb.dir/complete_subblock.cc.o"
  "CMakeFiles/cpt_tlb.dir/complete_subblock.cc.o.d"
  "CMakeFiles/cpt_tlb.dir/dual_size_setassoc.cc.o"
  "CMakeFiles/cpt_tlb.dir/dual_size_setassoc.cc.o.d"
  "CMakeFiles/cpt_tlb.dir/partial_subblock.cc.o"
  "CMakeFiles/cpt_tlb.dir/partial_subblock.cc.o.d"
  "CMakeFiles/cpt_tlb.dir/single_page.cc.o"
  "CMakeFiles/cpt_tlb.dir/single_page.cc.o.d"
  "CMakeFiles/cpt_tlb.dir/superpage.cc.o"
  "CMakeFiles/cpt_tlb.dir/superpage.cc.o.d"
  "CMakeFiles/cpt_tlb.dir/tlb.cc.o"
  "CMakeFiles/cpt_tlb.dir/tlb.cc.o.d"
  "libcpt_tlb.a"
  "libcpt_tlb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpt_tlb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
