file(REMOVE_RECURSE
  "libcpt_tlb.a"
)
