file(REMOVE_RECURSE
  "CMakeFiles/cpt_pt.dir/forward.cc.o"
  "CMakeFiles/cpt_pt.dir/forward.cc.o.d"
  "CMakeFiles/cpt_pt.dir/hashed.cc.o"
  "CMakeFiles/cpt_pt.dir/hashed.cc.o.d"
  "CMakeFiles/cpt_pt.dir/linear.cc.o"
  "CMakeFiles/cpt_pt.dir/linear.cc.o.d"
  "CMakeFiles/cpt_pt.dir/multi_hashed.cc.o"
  "CMakeFiles/cpt_pt.dir/multi_hashed.cc.o.d"
  "CMakeFiles/cpt_pt.dir/page_table.cc.o"
  "CMakeFiles/cpt_pt.dir/page_table.cc.o.d"
  "CMakeFiles/cpt_pt.dir/software_tlb.cc.o"
  "CMakeFiles/cpt_pt.dir/software_tlb.cc.o.d"
  "libcpt_pt.a"
  "libcpt_pt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpt_pt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
