# Empty compiler generated dependencies file for cpt_pt.
# This may be replaced when dependencies are built.
