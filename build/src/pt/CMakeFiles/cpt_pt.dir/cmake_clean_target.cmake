file(REMOVE_RECURSE
  "libcpt_pt.a"
)
