
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pt/forward.cc" "src/pt/CMakeFiles/cpt_pt.dir/forward.cc.o" "gcc" "src/pt/CMakeFiles/cpt_pt.dir/forward.cc.o.d"
  "/root/repo/src/pt/hashed.cc" "src/pt/CMakeFiles/cpt_pt.dir/hashed.cc.o" "gcc" "src/pt/CMakeFiles/cpt_pt.dir/hashed.cc.o.d"
  "/root/repo/src/pt/linear.cc" "src/pt/CMakeFiles/cpt_pt.dir/linear.cc.o" "gcc" "src/pt/CMakeFiles/cpt_pt.dir/linear.cc.o.d"
  "/root/repo/src/pt/multi_hashed.cc" "src/pt/CMakeFiles/cpt_pt.dir/multi_hashed.cc.o" "gcc" "src/pt/CMakeFiles/cpt_pt.dir/multi_hashed.cc.o.d"
  "/root/repo/src/pt/page_table.cc" "src/pt/CMakeFiles/cpt_pt.dir/page_table.cc.o" "gcc" "src/pt/CMakeFiles/cpt_pt.dir/page_table.cc.o.d"
  "/root/repo/src/pt/software_tlb.cc" "src/pt/CMakeFiles/cpt_pt.dir/software_tlb.cc.o" "gcc" "src/pt/CMakeFiles/cpt_pt.dir/software_tlb.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cpt_common.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/cpt_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
