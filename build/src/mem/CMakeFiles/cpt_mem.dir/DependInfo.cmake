
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/cache_model.cc" "src/mem/CMakeFiles/cpt_mem.dir/cache_model.cc.o" "gcc" "src/mem/CMakeFiles/cpt_mem.dir/cache_model.cc.o.d"
  "/root/repo/src/mem/phys_mem.cc" "src/mem/CMakeFiles/cpt_mem.dir/phys_mem.cc.o" "gcc" "src/mem/CMakeFiles/cpt_mem.dir/phys_mem.cc.o.d"
  "/root/repo/src/mem/reservation.cc" "src/mem/CMakeFiles/cpt_mem.dir/reservation.cc.o" "gcc" "src/mem/CMakeFiles/cpt_mem.dir/reservation.cc.o.d"
  "/root/repo/src/mem/sim_alloc.cc" "src/mem/CMakeFiles/cpt_mem.dir/sim_alloc.cc.o" "gcc" "src/mem/CMakeFiles/cpt_mem.dir/sim_alloc.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cpt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
