# Empty dependencies file for cpt_mem.
# This may be replaced when dependencies are built.
