file(REMOVE_RECURSE
  "libcpt_mem.a"
)
