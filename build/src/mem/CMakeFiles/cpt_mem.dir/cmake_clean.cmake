file(REMOVE_RECURSE
  "CMakeFiles/cpt_mem.dir/cache_model.cc.o"
  "CMakeFiles/cpt_mem.dir/cache_model.cc.o.d"
  "CMakeFiles/cpt_mem.dir/phys_mem.cc.o"
  "CMakeFiles/cpt_mem.dir/phys_mem.cc.o.d"
  "CMakeFiles/cpt_mem.dir/reservation.cc.o"
  "CMakeFiles/cpt_mem.dir/reservation.cc.o.d"
  "CMakeFiles/cpt_mem.dir/sim_alloc.cc.o"
  "CMakeFiles/cpt_mem.dir/sim_alloc.cc.o.d"
  "libcpt_mem.a"
  "libcpt_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpt_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
