file(REMOVE_RECURSE
  "libcpt_sim.a"
)
