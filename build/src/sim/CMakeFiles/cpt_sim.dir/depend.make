# Empty dependencies file for cpt_sim.
# This may be replaced when dependencies are built.
