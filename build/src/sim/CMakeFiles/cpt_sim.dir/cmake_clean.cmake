file(REMOVE_RECURSE
  "CMakeFiles/cpt_sim.dir/analytic.cc.o"
  "CMakeFiles/cpt_sim.dir/analytic.cc.o.d"
  "CMakeFiles/cpt_sim.dir/experiments.cc.o"
  "CMakeFiles/cpt_sim.dir/experiments.cc.o.d"
  "CMakeFiles/cpt_sim.dir/machine.cc.o"
  "CMakeFiles/cpt_sim.dir/machine.cc.o.d"
  "CMakeFiles/cpt_sim.dir/report.cc.o"
  "CMakeFiles/cpt_sim.dir/report.cc.o.d"
  "libcpt_sim.a"
  "libcpt_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpt_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
