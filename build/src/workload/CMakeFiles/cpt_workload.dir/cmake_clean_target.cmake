file(REMOVE_RECURSE
  "libcpt_workload.a"
)
