file(REMOVE_RECURSE
  "CMakeFiles/cpt_workload.dir/paper_workloads.cc.o"
  "CMakeFiles/cpt_workload.dir/paper_workloads.cc.o.d"
  "CMakeFiles/cpt_workload.dir/workload.cc.o"
  "CMakeFiles/cpt_workload.dir/workload.cc.o.d"
  "libcpt_workload.a"
  "libcpt_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpt_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
