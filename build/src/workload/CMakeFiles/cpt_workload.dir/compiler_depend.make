# Empty compiler generated dependencies file for cpt_workload.
# This may be replaced when dependencies are built.
