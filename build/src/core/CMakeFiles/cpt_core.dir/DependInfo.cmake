
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/adaptive.cc" "src/core/CMakeFiles/cpt_core.dir/adaptive.cc.o" "gcc" "src/core/CMakeFiles/cpt_core.dir/adaptive.cc.o.d"
  "/root/repo/src/core/clustered.cc" "src/core/CMakeFiles/cpt_core.dir/clustered.cc.o" "gcc" "src/core/CMakeFiles/cpt_core.dir/clustered.cc.o.d"
  "/root/repo/src/core/multi_size.cc" "src/core/CMakeFiles/cpt_core.dir/multi_size.cc.o" "gcc" "src/core/CMakeFiles/cpt_core.dir/multi_size.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cpt_common.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/cpt_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/pt/CMakeFiles/cpt_pt.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
