file(REMOVE_RECURSE
  "libcpt_core.a"
)
