# Empty dependencies file for cpt_core.
# This may be replaced when dependencies are built.
