file(REMOVE_RECURSE
  "CMakeFiles/cpt_core.dir/adaptive.cc.o"
  "CMakeFiles/cpt_core.dir/adaptive.cc.o.d"
  "CMakeFiles/cpt_core.dir/clustered.cc.o"
  "CMakeFiles/cpt_core.dir/clustered.cc.o.d"
  "CMakeFiles/cpt_core.dir/multi_size.cc.o"
  "CMakeFiles/cpt_core.dir/multi_size.cc.o.d"
  "libcpt_core.a"
  "libcpt_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpt_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
