file(REMOVE_RECURSE
  "CMakeFiles/cpt_os.dir/address_space.cc.o"
  "CMakeFiles/cpt_os.dir/address_space.cc.o.d"
  "libcpt_os.a"
  "libcpt_os.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpt_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
