file(REMOVE_RECURSE
  "libcpt_os.a"
)
