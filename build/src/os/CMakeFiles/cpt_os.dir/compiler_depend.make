# Empty compiler generated dependencies file for cpt_os.
# This may be replaced when dependencies are built.
