file(REMOVE_RECURSE
  "libcpt_common.a"
)
