file(REMOVE_RECURSE
  "CMakeFiles/cpt_common.dir/pte.cc.o"
  "CMakeFiles/cpt_common.dir/pte.cc.o.d"
  "CMakeFiles/cpt_common.dir/stats.cc.o"
  "CMakeFiles/cpt_common.dir/stats.cc.o.d"
  "libcpt_common.a"
  "libcpt_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpt_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
