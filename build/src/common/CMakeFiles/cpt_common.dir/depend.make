# Empty dependencies file for cpt_common.
# This may be replaced when dependencies are built.
