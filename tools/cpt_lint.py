#!/usr/bin/env python3
"""cpt-lint: project-specific static analysis for the clustered-page-table simulator.

The simulator's headline numbers are pure counting metrics, so the repo's
correctness story is contract discipline: walk events must stay paired,
switches over contract enums must stay exhaustive, enum<->name tables must
stay in sync, and nothing nondeterministic may leak into simulated counts.
The runtime half of those contracts lives in src/check (StructuralAuditor,
ShadowedPageTable); this tool is the static half, run at build/CI time
before a trace is ever produced.

Stdlib-only, tokenizer-based (no libclang).  The tokenizer understands
comments, string/char literals (including raw strings), preprocessor
directives, and multi-character operators; rules pattern-match over the
token stream, which is exact enough for this codebase's styled C++ and
fails loudly (via the fixture tests) when it is not.

Rules (see DESIGN.md "Static analysis" for the catalog and policy):

  exhaustive-enum-switch  switches over contract enums (EventKind,
                          MappingKind, SegmentKind, ...) must list every
                          enumerator or carry a suppression.
  name-table-sync         k<Enum>Names arrays need an adjacent
                          static_assert and one entry per enumerator.
  walk-protocol-pairing   BeginWalk must pair with EndWalk/AbortWalk (or
                          WalkScope) in the same function; a function
                          emitting both kWalkHit and kWalkEnd must emit
                          the hit first.
  check-macro-hygiene     no raw assert()/abort()/<cassert> in simulator
                          code; use CPT_CHECK / CPT_DCHECK.
  determinism-guards      no rand()/time()/std::random_device outside
                          common/rng.h; no float literal ==/!= compares.
  timing-discipline       no raw std::chrono clocks (steady_clock,
                          high_resolution_clock, system_clock) or
                          clock_gettime/clock_getres outside obs/timer.*
                          and obs/perf.* — every host-time measurement
                          flows through ScopedTimer/PhaseProfiler or
                          HostPerfCounters so reports stay comparable.
  include-guard           headers use canonical CPT_..._H_ guards with a
                          matching  #endif  //  comment.
  nodiscard-query         Lookup/LookupKey query methods in headers must
                          be [[nodiscard]].
  raw-address-param       address-domain values (va/vpn/vpbn/ppn/pfn/block
                          names) cross public-header APIs as the strong
                          types from common/types.h, never raw
                          std::uint64_t parameters or returns.
  guarded-by-coverage     mutable data members of CPT_SHARED-marked classes
                          must be CPT_GUARDED_BY, atomic, or const.
  atomic-discipline       every explicit memory_order_* argument carries an
                          adjacent justification comment, and a member
                          accessed through the atomic API is never also
                          mutated with raw assignment in the same file.
  raw-sync-primitive      no bare std::mutex/std::lock_guard/std::thread/
                          pthread_* outside common/sync.h; use the annotated
                          cpt wrappers (Mutex/MutexLock/ThreadGroup).
  hot-no-alloc            whole-program: nothing reachable from a CPT_HOT
                          root (common/hotpath.h) may allocate — no new/
                          make_unique, no unreserved push_back/resize, no
                          string formatting or iostream.
  hot-no-throw            whole-program: no throw / throwing std calls
                          (at, value, stoi...) reachable from a hot root.
  hot-lock-discipline     whole-program: locks on hot paths are cpt::
                          wrappers with an adjacent '// hot-lock:'
                          justification, budgeted in the debt ledger; bare
                          blocking calls (sleep/join/wait) never pass.
  false-sharing           per-stripe/per-shard array elements must be
                          CPT_CACHE_ALIGNED, and inside a CPT_SHARED class
                          no atomic may share a 64-byte host line with a
                          lock or a differently-guarded field.
  layout-ledger           every struct reachable from a CPT_HOT function
                          must match tools/layout_ledger.json {size, align,
                          offsets}; growth fails with a ratchet notice
                          (--write-layout regenerates), and literal
                          sizeof/alignof static_asserts are cross-checked.
  model-truth-sync        the byte spans CacheTouchModel charges per walk
                          step must equal the ledger-derived lines-per-node
                          of each PT organization's node struct.

The hot rules ride on a heuristic call graph over src/ (see HotAnalysis);
the same analysis emits the devirtualization-debt ledger
(tools/hotpath_debt.json, --write-hot-debt / --check-hot-debt), which
growth-gates every virtual call site reachable from the hot roots.

The layout rules ride on a struct-layout model over the same token streams
(see LayoutAnalysis): builtin + libstdc++ ABI tables, recursively resolved
project types, Itanium-style padding (alignas / bit-fields /
[[no_unique_address]] / EBO / vptr aware).  Anything it cannot prove is
skipped with a notice (--layout-report), and the whole model is pinned to
the compiled ABI by tools/dump_layout.cc + tests/lint/layout_sync_check.py,
the same way dump_enums pins the enum tables.

Exit codes: 0 clean, 1 findings or debt growth, 2 internal error (an
unreadable input or malformed baseline/ledger — not a lint verdict).

Suppressions:
  // cpt-lint: allow(rule[, rule])   suppress on this line (trailing) or,
                                     when the comment stands alone, on the
                                     comment line and the next line.
  // cpt-lint: off(rule)  ...  // cpt-lint: on(rule)
                                     block suppression (to end of file when
                                     never turned back on).

Baseline: findings fingerprinted as rule + path + message (line-number
free) may be grandfathered in tools/cpt_lint_baseline.json; anything not
in the baseline fails the run.  CI keeps the baseline empty.

Usage:
  tools/cpt_lint.py --all              lint the whole tree (gating)
  tools/cpt_lint.py src/pt/hashed.cc   lint specific files
  tools/cpt_lint.py --all --json       machine-readable findings
  tools/cpt_lint.py --all --fix        apply fixes for mechanical rules
  tools/cpt_lint.py --export-enums     JSON dump of enums + name tables
                                       (consumed by check_bench_json.py)
  tools/cpt_lint.py --write-layout     regenerate tools/layout_ledger.json
  tools/cpt_lint.py --layout-report    layout model + skip notices as JSON
  tools/cpt_lint.py --all --sarif=f    also write findings as SARIF 2.1.0
"""

import argparse
import fnmatch
import json
import multiprocessing
import os
import re
import sys
import time
from collections import Counter
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_BASELINE = Path(__file__).resolve().parent / "cpt_lint_baseline.json"

# Directory roots scanned by --all, relative to the repo root.
LINT_ROOTS = ("src", "bench", "examples", "tests", "tools")
SOURCE_SUFFIXES = (".h", ".hpp", ".cc", ".cpp")
# Known-bad lint-test inputs must never gate the real tree.
EXCLUDED_GLOBS = ("tests/lint/fixtures/*",)

# Enums whose switches must stay exhaustive as enumerators are added.
# Deliberately broad: every closed-vocabulary enum in the simulator's
# contracts.  A switch that intentionally handles a subset carries a
# suppression explaining why.
CONTRACT_ENUMS = {
    "EventKind", "WalkHitClass", "SegmentClass", "SegmentKind",
    "MappingKind", "LookupOutcome", "PtKind", "TlbKind", "AccessPattern",
    "PteStrategy", "GroupState", "GroupStateView", "NodeKind", "SizeModel",
    "SearchOrder", "HashKind", "NodePlacement", "AuditVerdict",
}

# ---------------------------------------------------------------------------
# Tokenizer
# ---------------------------------------------------------------------------

ID_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")
NUM_RE = re.compile(r"\.?[0-9](?:[0-9a-zA-Z_'.]|[eEpP][+-])*")
RAW_PREFIX_RE = re.compile(r"^(?:u8|u|U|L)?R$")
MULTI_OPS = sorted(
    ["::", "->", "++", "--", "<<=", ">>=", "<<", ">>", "<=>", "<=", ">=",
     "==", "!=", "&&", "||", "+=", "-=", "*=", "/=", "%=", "&=", "|=",
     "^=", "->*", ".*", "..."],
    key=len, reverse=True)


class Token:
    __slots__ = ("kind", "text", "line", "pos")

    def __init__(self, kind, text, line, pos):
        self.kind = kind  # id | num | str | chr | punct
        self.text = text
        self.line = line
        self.pos = pos

    def __repr__(self):
        return f"Token({self.kind},{self.text!r},L{self.line})"


class Comment:
    __slots__ = ("line", "end_line", "text", "standalone")

    def __init__(self, line, end_line, text, standalone):
        self.line = line
        self.end_line = end_line
        self.text = text
        self.standalone = standalone


class Directive:
    __slots__ = ("line", "text", "pos", "end")

    def __init__(self, line, text, pos, end):
        self.line = line
        self.text = text
        self.pos = pos  # byte offset of '#'
        self.end = end  # byte offset one past the directive's last char


def tokenize(text):
    """Returns (tokens, comments, directives) for one C++ source string."""
    tokens, comments, directives = [], [], []
    i, line, n = 0, 1, len(text)
    at_line_start = True
    while i < n:
        c = text[i]
        if c == "\n":
            line += 1
            i += 1
            at_line_start = True
            continue
        if c in " \t\r\f\v":
            i += 1
            continue
        if c == "#" and at_line_start:
            start, start_line = i, line
            while i < n and text[i] != "\n":
                if text[i] == "\\" and i + 1 < n and text[i + 1] == "\n":
                    i += 2
                    line += 1
                    continue
                if text[i:i + 2] == "/*":  # comment inside a directive
                    j = text.find("*/", i + 2)
                    j = n if j < 0 else j + 2
                    line += text.count("\n", i, j)
                    i = j
                    continue
                i += 1
            directives.append(Directive(start_line, text[start:i], start, i))
            continue
        if c == "/" and text[i:i + 2] == "//":
            j = text.find("\n", i)
            j = n if j < 0 else j
            comments.append(Comment(line, line, text[i:j], at_line_start))
            i = j
            continue
        if c == "/" and text[i:i + 2] == "/*":
            j = text.find("*/", i + 2)
            j = n if j < 0 else j + 2
            body = text[i:j]
            comments.append(Comment(line, line + body.count("\n"), body, at_line_start))
            line += body.count("\n")
            i = j
            continue
        at_line_start = False
        if c == '"':
            j = i + 1
            while j < n and text[j] != '"':
                if text[j] == "\\":
                    j += 1
                j += 1
            j = min(j + 1, n)
            tokens.append(Token("str", text[i:j], line, i))
            line += text.count("\n", i, j)
            i = j
            continue
        if c == "'":
            j = i + 1
            while j < n and text[j] != "'":
                if text[j] == "\\":
                    j += 1
                j += 1
            j = min(j + 1, n)
            tokens.append(Token("chr", text[i:j], line, i))
            i = j
            continue
        m = ID_RE.match(text, i)
        if m:
            word = m.group(0)
            # Raw string literal: R"delim( ... )delim" (any encoding prefix).
            if RAW_PREFIX_RE.match(word) and m.end() < n and text[m.end()] == '"':
                dend = text.find("(", m.end())
                delim = text[m.end() + 1:dend]
                close = text.find(")" + delim + '"', dend)
                close = n if close < 0 else close + len(delim) + 2
                tokens.append(Token("str", text[i:close], line, i))
                line += text.count("\n", i, close)
                i = close
                continue
            tokens.append(Token("id", word, line, i))
            i = m.end()
            continue
        if c.isdigit() or (c == "." and i + 1 < n and text[i + 1].isdigit()):
            m = NUM_RE.match(text, i)
            tokens.append(Token("num", m.group(0), line, i))
            i = m.end()
            continue
        for op in MULTI_OPS:
            if text.startswith(op, i):
                tokens.append(Token("punct", op, line, i))
                i += len(op)
                break
        else:
            tokens.append(Token("punct", c, line, i))
            i += 1
    return tokens, comments, directives


def is_float_literal(tok):
    if tok.kind != "num":
        return False
    t = tok.text.replace("'", "")
    while t and t[-1] in "fFlL":
        t = t[:-1]
    if t.startswith(("0x", "0X")):
        return False
    return "." in t or "e" in t or "E" in t


# ---------------------------------------------------------------------------
# Source files and suppressions
# ---------------------------------------------------------------------------

SUPP_RE = re.compile(r"cpt-lint:\s*(allow|off|on)\s*\(\s*([A-Za-z0-9_,\s\-]*?)\s*\)")


class SourceFile:
    def __init__(self, path, root=REPO_ROOT):
        self.path = Path(path)
        try:
            self.rel = self.path.resolve().relative_to(root).as_posix()
        except ValueError:
            self.rel = self.path.as_posix()
        t0 = time.perf_counter()
        self.text = self.path.read_text(encoding="utf-8")
        self.tokens, self.comments, self.directives = tokenize(self.text)
        self.parse_seconds = time.perf_counter() - t0
        self._fn_spans = None  # cached function_bodies() result
        self._allow = {}   # line -> set(rule)
        self._blocks = []  # (rule, start_line, end_line_inclusive)
        self._parse_suppressions()

    def function_spans(self):
        """Cached (start_index, end_index) function-body spans.

        Tokenizing happens once per file (in __init__); this caches the next
        most expensive per-file pass so the call-graph builder and the
        token-span rules (walk-protocol-pairing, the hot-path rules) share
        one scan instead of re-deriving it per rule.  The cache is built
        eagerly by Project.ensure_hot_analysis() before run_rules() forks,
        so --jobs workers inherit it instead of recomputing per child.
        """
        if self._fn_spans is None:
            t0 = time.perf_counter()
            self._fn_spans = list(function_bodies(self.tokens))
            self.parse_seconds += time.perf_counter() - t0
        return self._fn_spans

    def _parse_suppressions(self):
        open_blocks = {}  # rule -> start line
        max_line = self.text.count("\n") + 1
        for comment in self.comments:
            for m in SUPP_RE.finditer(comment.text):
                verb = m.group(1)
                rules = [r.strip() for r in m.group(2).split(",") if r.strip()]
                for rule in rules:
                    if rule not in RULES:
                        print(f"{self.rel}:{comment.line}: warning: suppression names "
                              f"unknown rule '{rule}'", file=sys.stderr)
                        continue
                    if verb == "allow":
                        self._allow.setdefault(comment.line, set()).add(rule)
                        if comment.standalone:
                            self._allow.setdefault(comment.end_line + 1, set()).add(rule)
                    elif verb == "off":
                        open_blocks.setdefault(rule, comment.line)
                    elif verb == "on":
                        start = open_blocks.pop(rule, None)
                        if start is not None:
                            self._blocks.append((rule, start, comment.line))
        for rule, start in open_blocks.items():
            self._blocks.append((rule, start, max_line))

    def suppressed(self, rule, line):
        if rule in self._allow.get(line, ()):
            return True
        return any(r == rule and s <= line <= e for r, s, e in self._blocks)


class Finding:
    def __init__(self, rule, sf, line, message, fixes=None):
        self.rule = rule
        self.path = sf.rel
        self.line = line
        self.message = message
        self.fixes = fixes or []  # [(start_offset, end_offset, replacement)]

    @property
    def fingerprint(self):
        return f"{self.rule}::{self.path}::{self.message}"

    def to_json(self):
        return {"rule": self.rule, "path": self.path, "line": self.line,
                "message": self.message, "fixable": bool(self.fixes),
                "fingerprint": self.fingerprint}


# ---------------------------------------------------------------------------
# Project-wide context: enums, count constants, name tables
# ---------------------------------------------------------------------------

class EnumDef:
    def __init__(self, name, sf, line, enumerators):
        self.name = name
        self.file = sf.rel
        self.line = line
        self.enumerators = enumerators


class NameTable:
    def __init__(self, name, sf, line, end_line, strings, tok_range):
        self.name = name
        self.file = sf.rel
        self.line = line
        self.end_line = end_line
        self.strings = strings
        self.tok_range = tok_range  # (first_index, semicolon_index)


def _match_paren(tokens, i, open_ch, close_ch):
    """tokens[i] must be open_ch; returns index of the matching close_ch."""
    depth = 0
    while i < len(tokens):
        t = tokens[i].text
        if t == open_ch:
            depth += 1
        elif t == close_ch:
            depth -= 1
            if depth == 0:
                return i
        i += 1
    return len(tokens) - 1


def parse_enums(sf):
    out = []
    toks = sf.tokens
    i = 0
    while i < len(toks):
        if toks[i].text != "enum" or toks[i].kind != "id":
            i += 1
            continue
        j = i + 1
        if j < len(toks) and toks[j].text in ("class", "struct"):
            j += 1
        if j >= len(toks) or toks[j].kind != "id":
            i = j
            continue
        name_tok = toks[j]
        j += 1
        while j < len(toks) and toks[j].text not in ("{", ";"):
            j += 1  # underlying-type clause
        if j >= len(toks) or toks[j].text != "{":
            i = j  # forward declaration
            continue
        close = _match_paren(toks, j, "{", "}")
        enumerators = []
        expect_name = True
        depth = 0
        for k in range(j + 1, close):
            t = toks[k]
            if t.text in ("(", "{", "["):
                depth += 1
            elif t.text in (")", "}", "]"):
                depth -= 1
            elif depth == 0 and t.text == ",":
                expect_name = True
            elif depth == 0 and expect_name and t.kind == "id":
                enumerators.append(t.text)
                expect_name = False
        out.append(EnumDef(name_tok.text, sf, name_tok.line, enumerators))
        i = close + 1
    return out


COUNT_CONST_RE = re.compile(r"^k\w*Count$")
NAME_TABLE_RE = re.compile(r"^k[A-Z]\w*Names$")


def parse_count_consts(sf):
    out = {}
    toks = sf.tokens
    for i, t in enumerate(toks):
        if (t.kind == "id" and COUNT_CONST_RE.match(t.text)
                and i + 2 < len(toks) and toks[i + 1].text == "="
                and toks[i + 2].kind == "num"):
            try:
                out[t.text] = int(toks[i + 2].text.replace("'", ""), 0)
            except ValueError:
                pass
    return out


def parse_name_tables(sf):
    out = []
    toks = sf.tokens
    i = 0
    while i < len(toks):
        t = toks[i]
        if not (t.kind == "id" and NAME_TABLE_RE.match(t.text)):
            i += 1
            continue
        j = i + 1
        if j >= len(toks) or toks[j].text != "[":
            i += 1
            continue
        j = _match_paren(toks, j, "[", "]") + 1
        if j + 1 >= len(toks) or toks[j].text != "=" or toks[j + 1].text != "{":
            i += 1  # an indexing use, not a definition
            continue
        close = _match_paren(toks, j + 1, "{", "}")
        depth = 0
        strings = []
        for k in range(j + 2, close):
            tk = toks[k]
            if tk.text in ("{", "(", "["):
                depth += 1
            elif tk.text in ("}", ")", "]"):
                depth -= 1
            elif depth == 0 and tk.kind == "str":
                strings.append(json_unquote(tk.text))
        semi = close + 1 if close + 1 < len(toks) and toks[close + 1].text == ";" else close
        out.append(NameTable(t.text, sf, t.line, toks[semi].line, strings, (i, semi)))
        i = semi + 1
    return out


def json_unquote(cpp_string_token):
    """Decodes a simple C++ string literal token to its value."""
    s = cpp_string_token
    if s.startswith(("u8", "u", "U", "L")):
        s = s.lstrip("u8UL")
    if s.startswith('R"'):
        body = s[2:-1]
        delim, _, rest = body.partition("(")
        return rest[: len(rest) - len(delim) - 1] if delim else rest[:-1]
    try:
        return json.loads(s)
    except (json.JSONDecodeError, ValueError):
        return s.strip('"')


class Project:
    """Cross-file context shared by all rules."""

    def __init__(self, files):
        self.files = files
        self.enums = {}         # name -> [EnumDef]
        self.count_consts = {}  # name -> int
        self.name_tables = []   # [NameTable]
        self._hot = None        # lazy HotAnalysis (see ensure_hot_analysis)
        self.hot_prepare_seconds = 0.0
        self._layout = None     # lazy LayoutAnalysis (ensure_layout_analysis)
        self.layout_prepare_seconds = 0.0
        self.layout_ledger_path = None  # set by the driver; None = default
        self._layout_ledger = False     # False = not loaded yet
        for sf in files:
            for e in parse_enums(sf):
                self.enums.setdefault(e.name, []).append(e)
            self.count_consts.update(parse_count_consts(sf))
            self.name_tables.extend(parse_name_tables(sf))

    def ensure_hot_analysis(self):
        """Builds (once) the whole-program hot-path call graph.

        run_rules() calls this eagerly before forking a --jobs pool so the
        workers inherit the graph and the cached function spans instead of
        each re-deriving them.
        """
        if self._hot is None:
            t0 = time.perf_counter()
            self._hot = HotAnalysis(self.files)
            self.hot_prepare_seconds = time.perf_counter() - t0
        return self._hot

    def ensure_layout_analysis(self):
        """Builds (once) the struct-layout model over the layout scope.

        Like ensure_hot_analysis(), run_rules() triggers this eagerly before
        forking so --jobs workers inherit the resolved layouts.
        """
        if self._layout is None:
            t0 = time.perf_counter()
            self._layout = LayoutAnalysis(self.files)
            self.layout_prepare_seconds = time.perf_counter() - t0
        return self._layout

    def load_layout_ledger(self):
        """The committed layout ledger, or None when the file is absent.

        A malformed ledger raises json.JSONDecodeError, which main() maps
        to exit code 2 (internal error) like every other corrupt input.
        """
        if self._layout_ledger is False:
            path = self.layout_ledger_path or DEFAULT_LAYOUT_LEDGER
            path = Path(path)
            if path.exists():
                self._layout_ledger = json.loads(path.read_text())
            else:
                self._layout_ledger = None
        return self._layout_ledger

    def enum_for_switch(self, name, seen_enumerators, rel=None):
        """The unique EnumDef consistent with the observed case labels.

        A definition in the file being linted shadows same-named enums
        elsewhere (test fixtures and doubles clone contract enums locally).
        """
        defs = self.enums.get(name, [])
        consistent = [d for d in defs if seen_enumerators <= set(d.enumerators)]
        if rel is not None:
            local = [d for d in consistent if d.file == rel]
            if local:
                consistent = local
        if len(consistent) == 1:
            return consistent[0]
        if consistent and all(set(d.enumerators) == set(consistent[0].enumerators)
                              for d in consistent):
            return consistent[0]
        return None


# ---------------------------------------------------------------------------
# Whole-program hot-path analysis (heuristic call graph)
# ---------------------------------------------------------------------------
#
# The hot-path rules (hot-no-alloc / hot-no-throw / hot-lock-discipline) gate
# the transitive closure of everything reachable from a CPT_HOT-annotated
# function (common/hotpath.h), so a per-file token scan is not enough: the
# analysis below builds a heuristic call graph over src/ from the same token
# streams the other rules use.
#
# Heuristics, stated so their failure modes are known:
#   - Function definitions come from function_bodies() spans; the name and
#     enclosing class are recovered by scanning back over the header (the
#     back-scan steps over ctor-initializer lists and specifier macros).
#   - A member call `x->F(...)` / `x.F(...)` resolves to EVERY definition of
#     F in the graph, which over-approximates virtual dispatch (exactly what
#     a gate wants: every override of a hot interface method is hot).
#   - A qualified call `Cls::F(...)` resolves to Cls's F only — that form is
#     devirtualized at the language level, so it neither widens the graph
#     nor lands in the debt ledger.
#   - Traversal prunes at CPT_COLD functions (the page-fault path is OS
#     work, off the steady-state loop by design) and at the observability /
#     audit boundary (HOT_BOUNDARY_GLOBS): those layers are null-checked or
#     disabled off the counted path by repo invariant, and keeping them out
#     of the closure keeps the rules about the replay loop itself.  Virtual
#     call *sites* into those layers (tracer_->Record(...)) still count as
#     devirtualization debt.
#
# The devirtualization-debt ledger (tools/hotpath_debt.json) enumerates every
# virtual call site reachable from the hot roots; --check-hot-debt gates it
# against growth exactly like the findings baseline, so ROADMAP item 2's
# CRTP/variant-dispatch work burns it down monotonically.

# Files that participate in the call graph and may carry hot-path findings.
HOT_GRAPH_GLOBS = ("src/*", "tests/lint/fixtures/*")
# Traversal stops at these layers (see the block comment above).
HOT_BOUNDARY_GLOBS = ("src/obs/*", "src/check/*")
DEFAULT_HOT_DEBT = Path(__file__).resolve().parent / "hotpath_debt.json"

CPP_KEYWORDS = {
    "if", "else", "for", "while", "do", "switch", "case", "return", "sizeof",
    "alignof", "alignas", "decltype", "new", "delete", "throw", "catch",
    "static_assert", "const_cast", "static_cast", "dynamic_cast",
    "reinterpret_cast", "operator", "template", "typename", "using",
    "namespace", "public", "private", "protected", "default", "break",
    "continue", "goto", "co_await", "co_return", "co_yield", "requires",
    "noexcept", "explicit", "inline", "constexpr", "consteval", "constinit",
}


class FunctionDef:
    """One function definition (a body span) discovered in a source file."""
    __slots__ = ("name", "cls", "file", "line", "start", "end",
                 "hot_depth", "is_root")

    def __init__(self, name, cls, file, line, start, end):
        self.name = name
        self.cls = cls          # enclosing/qualifying class name, or None
        self.file = file
        self.line = line
        self.start = start      # token index of the opening '{'
        self.end = end          # token index of the closing '}'
        self.hot_depth = None   # min call depth from a CPT_HOT root, or None
        self.is_root = False

    @property
    def qual(self):
        return f"{self.cls}::{self.name}" if self.cls else self.name


def _match_paren_back(toks, close_index, open_ch="(", close_ch=")"):
    """tokens[close_index] must be close_ch; returns the matching open_ch."""
    depth = 0
    i = close_index
    while i >= 0:
        t = toks[i].text
        if t == close_ch:
            depth += 1
        elif t == open_ch:
            depth -= 1
            if depth == 0:
                return i
        i -= 1
    return 0


def _macro_like(name):
    return bool(re.fullmatch(r"[A-Z][A-Z0-9_]+", name))


def class_spans(toks):
    """(name, open_index, close_index) for every class/struct body."""
    spans = []
    i = 0
    while i < len(toks):
        t = toks[i]
        if t.kind != "id" or t.text not in ("class", "struct"):
            i += 1
            continue
        prev = toks[i - 1].text if i > 0 else ""
        if prev in ("enum", "<", ","):  # enum class / template parameter
            i += 1
            continue
        name = None
        j = i + 1
        while j < len(toks) and toks[j].text not in ("{", ";", ":", "<"):
            tj = toks[j]
            if tj.kind == "id" and tj.text != "final" and not _macro_like(tj.text):
                name = tj.text
            j += 1
        while j < len(toks) and toks[j].text not in ("{", ";"):
            j += 1  # base clause
        if j < len(toks) and toks[j].text == "{" and name is not None:
            spans.append((name, j, _match_paren(toks, j, "{", "}")))
        i = j + 1 if j > i else i + 1
    return spans


def _innermost_class(spans, tok_index):
    best = None
    for name, open_idx, close_idx in spans:
        if open_idx < tok_index < close_idx:
            if best is None or open_idx > best[1]:
                best = (name, open_idx)
    return best[0] if best else None


def _header_name(toks, brace_index):
    """(name_index, qualifier) for the function body opening at brace_index.

    Scans back from the '{' to the parameter list's ')' — stepping over
    ctor-initializer groups, noexcept(...)/macro(...) groups, and specifier
    tokens — then reads `[Qualifier ::] Name` before the '('.
    """
    skip = {"const", "noexcept", "override", "final", "mutable", "&", "&&",
            "try", "->", "...", ">", "<", "::", ",", "*", "]", "["}
    j = brace_index - 1
    budget = 256
    while j >= 0 and budget > 0:
        budget -= 1
        t = toks[j]
        if t.text == ")":
            open_i = _match_paren_back(toks, j)
            k = open_i - 1
            if k < 0:
                return None
            name_tok = toks[k]
            if name_tok.kind != "id":
                # `](...)` lambda or operator(): no name to recover.
                return None
            before = toks[k - 1].text if k > 0 else ""
            if before in (":", ","):
                # A ctor-initializer group `, member_(...)`: the real header
                # is further back; resume the scan before the introducer.
                j = k - 2
                continue
            if name_tok.text == "noexcept" or _macro_like(name_tok.text):
                j = open_i - 1  # noexcept(...) / CPT_EXCLUDES(...) group
                continue
            if name_tok.text in CPP_KEYWORDS:
                return None  # if/while/switch header, not a function
            qual = None
            if k >= 2 and toks[k - 1].text == "::" and toks[k - 2].kind == "id":
                qual = toks[k - 2].text
            return k, qual
        if t.kind == "id" or t.text in skip:
            j -= 1
            continue
        return None
    return None


def extract_functions(sf):
    """FunctionDefs for every named function body in one file."""
    toks = sf.tokens
    spans = class_spans(toks)
    out = []
    for start, end in sf.function_spans():
        header = _header_name(toks, start)
        if header is None:
            continue
        name_idx, qual = header
        name_tok = toks[name_idx]
        cls = qual if qual is not None else _innermost_class(spans, name_idx)
        out.append(FunctionDef(name_tok.text, cls, sf.rel, name_tok.line,
                               start, end))
    return out


def _annotated_names(sf, marker):
    """(class, name) pairs whose declaration carries `marker` (CPT_HOT/...).

    The marker precedes the declarator; the declared name is the first
    identifier followed by '(' before the declaration ends.  Template
    argument lists and parameter-list internals never match because their
    identifiers are not directly followed by '('.
    """
    toks = sf.tokens
    spans = class_spans(toks)
    out = []
    for i, t in enumerate(toks):
        if t.kind != "id" or t.text != marker:
            continue
        j = i + 1
        while j + 1 < len(toks) and toks[j].text not in (";", "{", "}"):
            if (toks[j].kind == "id" and toks[j + 1].text == "("
                    and toks[j].text not in CPP_KEYWORDS
                    and not _macro_like(toks[j].text)):
                out.append((_innermost_class(spans, j), toks[j].text))
                break
            j += 1
    return out


def collect_virtual_methods(sf):
    """name -> interface class, for every `virtual`-declared method."""
    toks = sf.tokens
    spans = class_spans(toks)
    out = {}
    for i, t in enumerate(toks):
        if t.kind != "id" or t.text != "virtual":
            continue
        j = i + 1
        while j + 1 < len(toks) and toks[j].text not in (";", "{", "}"):
            if (toks[j].kind == "id" and toks[j + 1].text == "("
                    and toks[j].text not in CPP_KEYWORDS):
                cls = _innermost_class(spans, j)
                # The base (first-seen) declarer names the interface; an
                # override re-declared `virtual` elsewhere keeps the root.
                out.setdefault(toks[j].text, cls)
                break
            j += 1
    return out


class CallSite:
    __slots__ = ("callee", "line", "form", "receiver")

    def __init__(self, callee, line, form, receiver=None):
        self.callee = callee
        self.line = line
        self.form = form        # "member" | "qualified" | "direct"
        self.receiver = receiver  # qualifier class for "qualified"


def extract_call_sites(toks, start, end):
    """CallSites inside one function body span (indices start..end)."""
    out = []
    i = start + 1
    while i < end:
        t = toks[i]
        if (t.kind == "id" and i + 1 <= end and toks[i + 1].text == "("
                and t.text not in CPP_KEYWORDS and not _macro_like(t.text)):
            prev = toks[i - 1].text if i > 0 else ""
            prev2 = toks[i - 2] if i > 1 else None
            if prev in (".", "->"):
                out.append(CallSite(t.text, t.line, "member"))
            elif prev == "::":
                recv = prev2.text if prev2 is not None and prev2.kind == "id" else None
                out.append(CallSite(t.text, t.line, "qualified", recv))
            else:
                out.append(CallSite(t.text, t.line, "direct"))
        i += 1
    return out


def _matches_mark(fd, marks):
    """Does FunctionDef fd match an annotated (class, name) pair?"""
    for cls, name in marks:
        if fd.name != name:
            continue
        if cls is None or fd.cls is None or fd.cls == cls:
            return True
    return False


class HotAnalysis:
    """The call graph, hot-reachable set, and devirtualization debt."""

    def __init__(self, files):
        graph_files = [sf for sf in files
                       if any(fnmatch.fnmatch(sf.rel, g) for g in HOT_GRAPH_GLOBS)]
        self.defs = []
        self.defs_by_name = {}
        self.virtual_methods = {}   # method name -> interface class
        hot_marks, cold_marks = [], []
        for sf in graph_files:
            for fd in extract_functions(sf):
                self.defs.append(fd)
                self.defs_by_name.setdefault(fd.name, []).append(fd)
            for name, cls in collect_virtual_methods(sf).items():
                self.virtual_methods.setdefault(name, cls)
            hot_marks.extend(_annotated_names(sf, "CPT_HOT"))
            cold_marks.extend(_annotated_names(sf, "CPT_COLD"))
        self._tokens_by_file = {sf.rel: sf.tokens for sf in graph_files}
        # Receivers something reserves: `x.reserve(n)` / `x.Reserve(n)`
        # anywhere in the graph sanctions push_back/resize growth on x in
        # hot code (capacity was provisioned; steady state cannot allocate).
        self.reserved_receivers = set()
        for sf in graph_files:
            toks = sf.tokens
            for i, t in enumerate(toks):
                if (t.kind == "id" and t.text in ("reserve", "Reserve")
                        and i > 1 and toks[i - 1].text in (".", "->")
                        and i + 1 < len(toks) and toks[i + 1].text == "("
                        and toks[i - 2].kind == "id"):
                    self.reserved_receivers.add(toks[i - 2].text)
        self.cold = {fd for fd in self.defs if _matches_mark(fd, cold_marks)}
        self._traverse(hot_marks)
        self._collect_debt()
        self._collect_locks()

    def _boundary(self, fd):
        return any(fnmatch.fnmatch(fd.file, g) for g in HOT_BOUNDARY_GLOBS)

    def _callees(self, fd):
        toks = self._tokens_by_file[fd.file]
        for site in extract_call_sites(toks, fd.start, fd.end):
            if site.form == "qualified" and site.receiver is not None:
                for cand in self.defs_by_name.get(site.callee, ()):
                    if cand.cls == site.receiver:
                        yield cand
            else:
                # Member and unqualified calls resolve to every same-named
                # definition: the virtual-dispatch over-approximation.
                yield from self.defs_by_name.get(site.callee, ())

    def _traverse(self, hot_marks):
        frontier = []
        for fd in self.defs:
            if _matches_mark(fd, hot_marks) and fd not in self.cold:
                fd.hot_depth = 0
                fd.is_root = True
                frontier.append(fd)
        while frontier:
            next_frontier = []
            for fd in frontier:
                if self._boundary(fd):
                    continue  # reachable, but its callees are not traversed
                for callee in self._callees(fd):
                    if callee.hot_depth is not None or callee in self.cold:
                        continue
                    callee.hot_depth = fd.hot_depth + 1
                    next_frontier.append(callee)
            frontier = next_frontier

    def hot_defs_in(self, rel):
        """Hot-reachable, checkable definitions in one file."""
        return [fd for fd in self.defs
                if fd.file == rel and fd.hot_depth is not None
                and not self._boundary(fd)]

    def _collect_debt(self):
        """Every virtual call site reachable from the hot roots."""
        self.virtual_sites = []   # dicts: file/function/callee/interface/...
        for fd in sorted((f for f in self.defs if f.hot_depth is not None
                          and f not in self.cold and not self._boundary(f)),
                         key=lambda f: (f.file, f.line)):
            toks = self._tokens_by_file[fd.file]
            for site in extract_call_sites(toks, fd.start, fd.end):
                if site.form == "qualified":
                    continue  # Cls::F() is devirtualized at the call site
                if site.callee not in self.virtual_methods:
                    continue
                self.virtual_sites.append({
                    "file": fd.file,
                    "function": fd.qual,
                    "callee": site.callee,
                    "interface": self.virtual_methods[site.callee] or "?",
                    "line": site.line,
                    "depth": fd.hot_depth,
                })

    # Lock acquisitions through the cpt:: wrappers; bare blocking calls are
    # hot-lock-discipline findings, never ledger entries.
    LOCK_WRAPPERS = {"MutexLock", "SharedMutexLock"}
    LOCK_METHODS = {"Acquire", "lock", "lock_shared", "try_lock", "WaitClockNs"}

    # The wrapper implementation itself (mu_.lock() inside cpt::Mutex) is
    # sanctioned; the budget tracks wrapper *use sites* in hot code.
    LOCK_IMPL_FILES = ("src/common/sync.h",)

    def _collect_locks(self):
        """Every cpt-wrapper lock site in hot-reachable code (the budget)."""
        self.hot_lock_sites = []
        for fd in sorted((f for f in self.defs if f.hot_depth is not None
                          and f not in self.cold and not self._boundary(f)
                          and f.file not in self.LOCK_IMPL_FILES),
                         key=lambda f: (f.file, f.line)):
            toks = self._tokens_by_file[fd.file]
            for i in range(fd.start + 1, fd.end):
                t = toks[i]
                if t.kind != "id":
                    continue
                prev = toks[i - 1].text if i > 0 else ""
                nxt = toks[i + 1].text if i + 1 < len(toks) else ""
                if t.text in self.LOCK_WRAPPERS or (
                        t.text in self.LOCK_METHODS and prev in (".", "->")
                        and nxt == "("):
                    self.hot_lock_sites.append({
                        "file": fd.file, "function": fd.qual,
                        "lock": t.text, "line": t.line,
                        "depth": fd.hot_depth,
                    })

    def debt_fingerprints(self):
        return Counter(f"{s['file']}::{s['function']}::{s['callee']}"
                       for s in self.virtual_sites)

    def lock_fingerprints(self):
        return Counter(f"{s['file']}::{s['function']}::{s['lock']}"
                       for s in self.hot_lock_sites)


# ---------------------------------------------------------------------------
# Devirtualization-debt ledger (growth-gated like the findings baseline)
# ---------------------------------------------------------------------------

def debt_payload(analysis):
    return {
        "schema": "cpt-hotpath-debt", "version": 1,
        "virtual_sites": dict(sorted(analysis.debt_fingerprints().items())),
        "hot_lock_sites": dict(sorted(analysis.lock_fingerprints().items())),
    }


def debt_report(analysis):
    """Detailed, human/CI-artifact view (line numbers and depths included)."""
    by_interface = Counter(s["interface"] for s in analysis.virtual_sites)
    return {
        "schema": "cpt-hotpath-debt-report", "version": 1,
        "total_virtual_sites": len(analysis.virtual_sites),
        "by_interface": dict(sorted(by_interface.items())),
        "sites": analysis.virtual_sites,
        "hot_lock_sites": analysis.hot_lock_sites,
    }


def load_debt(path):
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    return (Counter(data.get("virtual_sites", {})),
            Counter(data.get("hot_lock_sites", {})))


def check_debt(analysis, path):
    """Exit-style status: 0 when no entry grew, 1 on growth.

    Mirrors the findings-baseline contract: a site fingerprint that is new
    or whose count increased fails; shrinkage is reported as stale (run
    --write-hot-debt to ratchet the ledger down).
    """
    if not Path(path).exists():
        print(f"hot-debt ledger missing: {path} (run --write-hot-debt)",
              file=sys.stderr)
        return 1
    want_virtual, want_locks = load_debt(path)
    ok = True
    for label, current, committed in (
            ("virtual call site", analysis.debt_fingerprints(), want_virtual),
            ("hot lock site", analysis.lock_fingerprints(), want_locks)):
        for fp, n in sorted(current.items()):
            limit = committed.get(fp, 0)
            if n > limit:
                print(f"hot-path debt grew: {label} {fp} "
                      f"({limit} -> {n}); devirtualize it or regenerate the "
                      f"ledger deliberately with --write-hot-debt",
                      file=sys.stderr)
                ok = False
        for fp, limit in sorted(committed.items()):
            if current.get(fp, 0) < limit:
                print(f"stale ledger entry (debt shrank — ratchet with "
                      f"--write-hot-debt): {label} {fp}")
    if ok:
        total = sum(analysis.debt_fingerprints().values())
        print(f"hot-debt ledger holds: {total} virtual call sites, "
              f"{sum(analysis.lock_fingerprints().values())} lock sites")
    return 0 if ok else 1


# ---------------------------------------------------------------------------
# Struct/class layout model (heuristic Itanium rules, compiled-truth checked)
# ---------------------------------------------------------------------------
#
# The paper's headline metric is cache lines touched per TLB miss, so the
# byte-level layout of PTE nodes, chain nodes, and TLB entries IS the
# experiment.  The model below recovers {size, align, field offsets} for
# project structs from the same token streams the other rules use: a
# builtin table pins the fundamental and libstdc++ ABI sizes (LP64 x86-64,
# the platform every gate runs on), project types resolve recursively, and
# Itanium-style padding rules place the fields (alignas / bit-fields /
# [[no_unique_address]] aware; empty-base optimization; one vptr word for
# polymorphic classes).
#
# Heuristic honesty: anything the model cannot prove — dependent templates,
# unions, unresolvable constants or types — is skipped WITH A NOTICE
# (--layout-report), never silently guessed.  The whole model is pinned to
# the compiled ABI by tools/dump_layout.cc + tests/lint/layout_sync_check.py,
# mirroring the dump_enums/enum_sync_check.py pattern, so the analyzer can
# never drift from what the compiler actually lays out.
#
# Three rules ride on the model:
#   false-sharing      per-stripe/per-shard array elements smaller than a
#                      destructive-interference line, and atomics sharing a
#                      host line with a lock inside a CPT_SHARED class.
#   layout-ledger      every struct reachable from a CPT_HOT function must
#                      match the committed tools/layout_ledger.json; growth
#                      fails with a ratchet notice (--write-layout
#                      regenerates), and literal sizeof/alignof
#                      static_asserts are cross-checked against the model.
#   model-truth-sync   the line-size and node-span constants CacheTouchModel
#                      charges per walk step must equal the ledger-derived
#                      values for each PT organization's node struct.

# Host destructive-interference granule (std::hardware_destructive_
# interference_size on every gate platform).  Distinct from the SIMULATED
# line size kDefaultCacheLineSize (common/types.h) — never conflate them.
HOST_LINE_BYTES = 64
DEFAULT_LAYOUT_LEDGER = Path(__file__).resolve().parent / "layout_ledger.json"
# Files whose structs participate in the layout rules.  layout_* fixtures
# opt in so the goldens exercise the rules; every other fixture stays out
# so the historical goldens are unaffected.
LAYOUT_SCOPE_GLOBS = ("src/*",)
LAYOUT_FIXTURE_PREFIX = "tests/lint/fixtures/layout_"
# Where the simulated line-size constant and the model-truth rule anchor.
SIM_LINE_CONST = "kDefaultCacheLineSize"
MODEL_TRUTH_ANCHOR_FILE = "src/common/types.h"
# (key, file, accounting function, node struct) — the byte-span constants
# each PT organization charges per walk step, tied to its node struct.
MODEL_TRUTH_ANCHORS = (
    ("hashed-node", "src/pt/hashed.h", "NodeBytes",
     "HashedPageTable::Node"),
    ("hashed-tagnext", "src/pt/hashed.h", "TagNextBytes",
     "HashedPageTable::Node"),
    ("clustered-node", "src/core/clustered.h", "NodeBytes",
     "ClusteredPageTable::Node"),
    ("adaptive-node", "src/core/adaptive.h", "NodeBytes",
     "AdaptiveClusteredPageTable::Node"),
    ("software-tlb-entry", "src/pt/software_tlb.h", "EntryBytes",
     "SoftwareTlb::Entry"),
)


def _layout_scope(rel):
    return (any(fnmatch.fnmatch(rel, g) for g in LAYOUT_SCOPE_GLOBS)
            or rel.startswith(LAYOUT_FIXTURE_PREFIX))


def _boundary_rel(rel):
    return any(fnmatch.fnmatch(rel, g) for g in HOT_BOUNDARY_GLOBS)


def _align_up(n, a):
    return (n + a - 1) // a * a


class LayoutUnresolved(Exception):
    """Why one struct's layout cannot be proven (a skip-with-notice)."""


# LP64 x86-64 fundamental types (size, align).
FUNDAMENTAL_LAYOUTS = {
    "bool": (1, 1), "char": (1, 1), "signed char": (1, 1),
    "unsigned char": (1, 1), "char8_t": (1, 1), "char16_t": (2, 2),
    "char32_t": (4, 4), "wchar_t": (4, 4), "short": (2, 2),
    "unsigned short": (2, 2), "short int": (2, 2), "int": (4, 4),
    "unsigned": (4, 4), "unsigned int": (4, 4), "long": (8, 8),
    "unsigned long": (8, 8), "long int": (8, 8), "long long": (8, 8),
    "unsigned long long": (8, 8), "long long int": (8, 8),
    "float": (4, 4), "double": (8, 8), "long double": (16, 16),
    "int8_t": (1, 1), "uint8_t": (1, 1), "int16_t": (2, 2),
    "uint16_t": (2, 2), "int32_t": (4, 4), "uint32_t": (4, 4),
    "int64_t": (8, 8), "uint64_t": (8, 8), "size_t": (8, 8),
    "ptrdiff_t": (8, 8), "intptr_t": (8, 8), "uintptr_t": (8, 8),
    "byte": (1, 1),
}

# libstdc++ x86-64 container/handle layouts, probed on the gate platform
# and pinned by tools/dump_layout.cc.  Template arguments do not change
# these (node-based or pointer-triple representations).
LIB_LAYOUTS = {
    "string": (32, 8), "string_view": (16, 8), "vector": (24, 8),
    "deque": (80, 8), "list": (24, 8), "map": (48, 8), "set": (48, 8),
    "multimap": (48, 8), "multiset": (48, 8), "unordered_map": (56, 8),
    "unordered_set": (56, 8), "unique_ptr": (8, 8), "shared_ptr": (16, 8),
    "weak_ptr": (16, 8), "function": (32, 8), "mutex": (40, 8),
    "shared_mutex": (56, 8), "condition_variable": (48, 8),
    "thread": (8, 8), "span": (16, 8), "atomic_flag": (1, 1),
}

# Wrapper templates whose payload follows std::atomic packing: (s, s) for
# power-of-two scalar payloads up to 8 bytes.
ATOMIC_WRAPPER_BASES = {"atomic", "AtomicCell"}
# Outermost bases that classify a field for the false-sharing rule.
ATOMIC_FIELD_BASES = {"atomic", "AtomicCell", "AtomicMappingWord",
                      "atomic_flag"}
CAPABILITY_FIELD_BASES = {"Mutex", "SharedMutex"}
# Tokens stripped before type resolution.
STRIP_TYPE_TOKENS = {"const", "volatile", "mutable", "typename", "struct",
                     "class", "inline"}
# A statement containing any of these is not a data member.
MEMBER_SKIP_SPECIFIERS = {"static", "using", "typedef", "friend", "template",
                          "operator", "constexpr", "consteval", "explicit",
                          "virtual", "struct", "class", "enum", "union",
                          "static_assert", "requires", "public", "private",
                          "protected", "default", "delete", "return"}


class RawMember:
    __slots__ = ("name", "type_toks", "extents", "bit_width", "alignas_req",
                 "no_unique_address", "guard", "line")

    def __init__(self, name, type_toks, extents, bit_width, alignas_req,
                 no_unique_address, guard, line):
        self.name = name
        self.type_toks = type_toks   # tokens of the declared type
        self.extents = extents       # token lists, one per [N] extent
        self.bit_width = bit_width   # token list of the bit-field width
        self.alignas_req = alignas_req
        self.no_unique_address = no_unique_address
        self.guard = guard           # CPT_GUARDED_BY argument text, or None
        self.line = line


class RawStruct:
    __slots__ = ("qual", "name", "outer", "file", "line", "alignas_req",
                 "shared", "tparams", "bases", "has_virtual", "is_union",
                 "members")

    def __init__(self, qual, name, outer, file, line):
        self.qual = qual
        self.name = name
        self.outer = outer       # enclosing class name, or None
        self.file = file
        self.line = line
        self.alignas_req = 0     # struct-level alignas / CPT_CACHE_ALIGNED
        self.shared = False      # carries CPT_SHARED
        self.tparams = None      # template parameter names, or None
        self.bases = []
        self.has_virtual = False
        self.is_union = False
        self.members = []


class FieldLayout:
    __slots__ = ("name", "offset", "size", "align", "line", "atomic",
                 "capability", "guard", "bit_width")

    def __init__(self, name, offset, size, align, line, atomic, capability,
                 guard, bit_width):
        self.name = name
        self.offset = offset
        self.size = size
        self.align = align
        self.line = line
        self.atomic = atomic
        self.capability = capability
        self.guard = guard
        self.bit_width = bit_width

    def host_lines(self):
        """Indices of the HOST_LINE_BYTES lines this field touches."""
        last = self.offset + max(self.size, 1) - 1
        return range(self.offset // HOST_LINE_BYTES,
                     last // HOST_LINE_BYTES + 1)


class StructLayout:
    __slots__ = ("qual", "name", "file", "line", "size", "align", "fields",
                 "cache_aligned", "shared", "polymorphic", "empty")

    def __init__(self, qual, name, file, line, size, align, fields,
                 cache_aligned, shared, polymorphic):
        self.qual = qual
        self.name = name
        self.file = file
        self.line = line
        self.size = size
        self.align = align
        self.fields = fields
        self.cache_aligned = cache_aligned
        self.shared = shared
        self.polymorphic = polymorphic
        self.empty = (not fields and not polymorphic and size <= 1)


def _struct_decl_spans(toks):
    """(kw_index, name, open_index, close_index) for every class/struct/
    union definition body (class_spans plus the keyword index, so header
    annotations between the keyword and the brace can be recovered)."""
    spans = []
    i = 0
    while i < len(toks):
        t = toks[i]
        if t.kind != "id" or t.text not in ("class", "struct", "union"):
            i += 1
            continue
        prev = toks[i - 1].text if i > 0 else ""
        if prev in ("enum", "<", ","):  # enum class / template parameter
            i += 1
            continue
        name = None
        j = i + 1
        while j < len(toks) and toks[j].text not in ("{", ";", ":", "<"):
            tj = toks[j]
            if tj.kind == "id" and tj.text != "final" and not _macro_like(tj.text):
                name = tj.text
            j += 1
        while j < len(toks) and toks[j].text not in ("{", ";"):
            j += 1  # base clause
        if j < len(toks) and toks[j].text == "{" and name is not None:
            spans.append((i, name, j, _match_paren(toks, j, "{", "}")))
        i = j + 1 if j > i else i + 1
    return spans


def _template_params(toks, kw_idx):
    """Parameter names of a template header ending just before kw_idx,
    or None when the declaration is not a template."""
    if kw_idx == 0 or toks[kw_idx - 1].text != ">":
        return None
    open_i = _match_paren_back(toks, kw_idx - 1, "<", ">")
    if open_i <= 0 or toks[open_i - 1].text != "template":
        return None
    names, last_id = [], None
    for k in range(open_i + 1, kw_idx - 1):
        t = toks[k]
        if t.text == ",":
            if last_id:
                names.append(last_id)
            last_id = None
        elif t.kind == "id" and t.text not in ("class", "typename"):
            last_id = t.text
    if last_id:
        names.append(last_id)
    return names


def _split_template(toks):
    """(base, hint, args) for a type token list: the last identifier of the
    qualifier chain before '<', the one before it (nested-type hint), and
    the template argument token lists (None when not a template use)."""
    chain = []
    i, n = 0, len(toks)
    while i < n and toks[i].text != "<":
        if toks[i].kind == "id" and toks[i].text not in STRIP_TYPE_TOKENS:
            chain.append(toks[i].text)
        i += 1
    base = chain[-1] if chain else None
    hint = chain[-2] if len(chain) > 1 else None
    if i >= n or toks[i].text != "<":
        return base, hint, None
    args, cur, depth = [], [], 1
    i += 1
    while i < n and depth > 0:
        t = toks[i].text
        if t == "<":
            depth += 1
        elif t == ">":
            depth -= 1
        elif t == ">>":
            depth -= 2
        if depth <= 0:
            break
        if t == "," and depth == 1:
            args.append(cur)
            cur = []
        else:
            cur.append(toks[i])
        i += 1
    if cur:
        args.append(cur)
    return base, hint, args


def _int_literal(text):
    """Value of a C++ integer literal token, or None for floats."""
    t = text.replace("'", "")
    while t and t[-1] in "uUlLzZ":
        t = t[:-1]
    try:
        return int(t, 0)
    except ValueError:
        return None


CONST_NAME_RE = re.compile(r"^k[A-Z]\w*$")


class LayoutAnalysis:
    """Struct layouts, constants, aliases and enums over the layout scope."""

    def __init__(self, files):
        self.structs = {}       # qual -> RawStruct (first definition wins)
        self.by_name = {}       # bare name -> [qual]
        self.aliases = {}       # name -> [(file, token list)]
        self.enum_layouts = {}  # name -> [(file, (size, align), line)]
        self.defines = {}       # object-like macro -> int
        self._const_defs = {}   # name -> [dict(file, cls, toks, value, state)]
        self._files = {}        # rel -> SourceFile (layout scope only)
        self._file_quals = {}   # rel -> [qual]
        self._sim_line = None   # cached (value, line) or an error string
        self._hot_quals = None
        for sf in files:
            if _layout_scope(sf.rel):
                self._files[sf.rel] = sf
                self._scan_file(sf)
        self.layouts = {}       # qual -> StructLayout
        self.skipped = {}       # qual -> reason (the skip-with-notice set)
        for qual in sorted(self.structs):
            try:
                self._layout_of(qual)
            except LayoutUnresolved:
                pass

    # ---- scanning ----------------------------------------------------------

    DEFINE_INT_RE = re.compile(r"#\s*define\s+(\w+)\s+(\d+)\s*$")

    def _scan_file(self, sf):
        toks = sf.tokens
        for d in sf.directives:
            m = self.DEFINE_INT_RE.match(d.text)
            if m:
                self.defines.setdefault(m.group(1), int(m.group(2)))
        cls_spans = class_spans(toks)
        self._scan_enums(sf, toks)
        self._scan_aliases(sf, toks)
        self._scan_consts(sf, toks, cls_spans)
        decls = _struct_decl_spans(toks)
        nested_starts = {kw: close for (kw, _, _, close) in decls}
        for kw, name, open_i, close_i in decls:
            outer = _innermost_class(cls_spans, kw)
            qual = f"{outer}::{name}" if outer else name
            if qual in self.structs:
                continue  # first definition wins (deterministic file order)
            raw = RawStruct(qual, name, outer, sf.rel, toks[kw].line)
            raw.is_union = toks[kw].text == "union"
            raw.tparams = _template_params(toks, kw)
            self._parse_header(toks, kw, open_i, raw, sf)
            raw.has_virtual = self._scan_virtual(toks, open_i, close_i, decls)
            raw.members = self._parse_members(
                toks, open_i, close_i, nested_starts, raw, sf)
            self.structs[qual] = raw
            self.by_name.setdefault(name, []).append(qual)
            self._file_quals.setdefault(sf.rel, []).append(qual)

    def _scan_enums(self, sf, toks):
        i = 0
        while i < len(toks):
            if toks[i].kind != "id" or toks[i].text != "enum":
                i += 1
                continue
            j = i + 1
            if j < len(toks) and toks[j].text in ("class", "struct"):
                j += 1
            if j >= len(toks) or toks[j].kind != "id":
                i = j
                continue
            name_tok = toks[j]
            j += 1
            under = []
            if j < len(toks) and toks[j].text == ":":
                j += 1
                while j < len(toks) and toks[j].text not in ("{", ";"):
                    under.append(toks[j])
                    j += 1
            layout = (4, 4)  # default underlying type is int
            if under:
                texts = " ".join(t.text for t in under
                                 if t.kind == "id" and t.text != "std")
                layout = FUNDAMENTAL_LAYOUTS.get(texts, (4, 4))
            self.enum_layouts.setdefault(name_tok.text, []).append(
                (sf.rel, layout, name_tok.line))
            i = j + 1

    def _scan_aliases(self, sf, toks):
        for i, t in enumerate(toks):
            if (t.kind == "id" and t.text == "using" and i + 2 < len(toks)
                    and toks[i + 1].kind == "id" and toks[i + 2].text == "="):
                j = i + 3
                body = []
                while j < len(toks) and toks[j].text != ";":
                    body.append(toks[j])
                    j += 1
                if body:
                    self.aliases.setdefault(toks[i + 1].text, []).append(
                        (sf.rel, body))

    def _scan_consts(self, sf, toks, cls_spans):
        for i, t in enumerate(toks):
            if (t.kind != "id" or not CONST_NAME_RE.match(t.text)
                    or i + 1 >= len(toks) or toks[i + 1].text != "="):
                continue
            prev = toks[i - 1].text if i > 0 else ""
            if prev in (".", "->", "::"):
                continue  # a use, not a declaration
            j = i + 2
            depth = 0
            expr = []
            while j < len(toks):
                tj = toks[j]
                if tj.text in ("(", "[", "{"):
                    depth += 1
                elif tj.text in (")", "]", "}"):
                    if depth == 0:
                        break
                    depth -= 1
                elif depth == 0 and tj.text in (";", ","):
                    break
                expr.append(tj)
                j += 1
            if expr:
                cls = _innermost_class(cls_spans, i)
                self._const_defs.setdefault(t.text, []).append(
                    {"file": sf.rel, "cls": cls, "toks": expr,
                     "value": None, "state": 0})

    def _parse_header(self, toks, kw, open_i, raw, sf):
        j = kw + 1
        colon = None
        while j < open_i:
            t = toks[j]
            if t.text == "alignas" and j + 1 < open_i and toks[j + 1].text == "(":
                close = _match_paren(toks, j + 1, "(", ")")
                try:
                    raw.alignas_req = max(raw.alignas_req, self.eval_expr(
                        toks[j + 2:close], sf.rel, (raw.name, raw.outer)))
                except LayoutUnresolved:
                    pass
                j = close + 1
                continue
            if t.text == "CPT_CACHE_ALIGNED":
                raw.alignas_req = max(raw.alignas_req, self.cache_line_bytes())
                j += 1
                continue
            if t.text == "CPT_SHARED":
                raw.shared = True
                j += 1
                continue
            if t.text == ":":
                colon = j
                break
            j += 1
        if colon is None:
            return
        depth = 0
        last_id = None
        for k in range(colon + 1, open_i):
            t = toks[k]
            if t.text == "<":
                depth += 1
            elif t.text == ">":
                depth -= 1
            elif t.text == ">>":
                depth -= 2
            elif depth == 0 and t.text == ",":
                if last_id:
                    raw.bases.append(last_id)
                last_id = None
            elif (depth == 0 and t.kind == "id"
                  and t.text not in ("public", "private", "protected",
                                     "virtual", "final")
                  and not _macro_like(t.text)):
                last_id = t.text
        if last_id:
            raw.bases.append(last_id)

    @staticmethod
    def _scan_virtual(toks, open_i, close_i, decls):
        nested = [(o, c) for (kw, _, o, c) in decls if open_i < o and c < close_i]
        k = open_i + 1
        while k < close_i:
            hit = next((c for (o, c) in nested if o <= k <= c), None)
            if hit is not None:
                k = hit + 1
                continue
            if toks[k].kind == "id" and toks[k].text == "virtual":
                return True
            k += 1
        return False

    def _parse_members(self, toks, open_i, close_i, nested_starts, raw, sf):
        members = []
        stmt = []
        saw_assign = False
        k = open_i + 1
        while k < close_i:
            if k in nested_starts and k != open_i:
                k = nested_starts[k] + 1  # skip the nested type's whole body
                if k < close_i and toks[k].text == ";":
                    k += 1
                stmt, saw_assign = [], False
                continue
            t = toks[k]
            if t.text in ("public", "private", "protected") \
                    and k + 1 < close_i and toks[k + 1].text == ":":
                k += 2
                stmt, saw_assign = [], False
                continue
            if t.text in ("(", "["):
                close = _match_paren(toks, k, t.text, ")" if t.text == "(" else "]")
                stmt.extend(toks[k:close + 1])
                k = close + 1
                continue
            if t.text == "{":
                close = _match_paren(toks, k, "{", "}")
                if saw_assign:
                    k = close + 1  # brace expression inside an initializer
                    continue
                if close + 1 < len(toks) and toks[close + 1].text == ";":
                    stmt.append(t)  # brace-init marker:  Vpn base_vpn{};
                    k = close + 1
                    continue
                stmt, saw_assign = [], False  # method/ctor body
                k = close + 1
                continue
            if t.text == ";":
                m = self._parse_member_stmt(stmt, raw, sf)
                if m is not None:
                    members.append(m)
                stmt, saw_assign = [], False
                k += 1
                continue
            if t.text == "=":
                saw_assign = True
            stmt.append(t)
            k += 1
        return members

    def _parse_member_stmt(self, stmt, raw, sf):
        if not stmt:
            return None
        texts = [t.text for t in stmt]
        if set(texts) & MEMBER_SKIP_SPECIFIERS or texts[0] == "~":
            return None
        guard = None
        alignas_req = 0
        nua = False
        clean = []
        i = 0
        while i < len(stmt):
            t = stmt[i]
            nxt = stmt[i + 1].text if i + 1 < len(stmt) else ""
            if t.text == "[" and nxt == "[":
                close = _match_paren(stmt, i, "[", "]")
                attr = {x.text for x in stmt[i:close + 1]}
                if "no_unique_address" in attr:
                    nua = True
                i = close + 1
                continue
            if t.text == "alignas" and nxt == "(":
                close = _match_paren(stmt, i + 1, "(", ")")
                try:
                    alignas_req = max(alignas_req, self.eval_expr(
                        stmt[i + 2:close], sf.rel, (raw.name, raw.outer)))
                except LayoutUnresolved:
                    pass
                i = close + 1
                continue
            if t.kind == "id" and _macro_like(t.text):
                if t.text == "CPT_CACHE_ALIGNED":
                    alignas_req = max(alignas_req, self.cache_line_bytes())
                    i += 1
                    continue
                if nxt == "(":
                    close = _match_paren(stmt, i + 1, "(", ")")
                    if t.text in GuardedByCoverage.GUARD_MACROS:
                        guard = " ".join(x.text for x in stmt[i + 2:close])
                    i = close + 1
                    continue
                i += 1  # bare annotation macro (CPT_HOT, CPT_COLD, ...)
                continue
            clean.append(t)
            i += 1
        if not clean:
            return None
        # Split off the initializer at the first top-level '=' BEFORE the
        # function-declaration test below: a call in the initializer
        # (`Attr a = Attr::ReadWrite();`) must not disguise the member as a
        # function.  A real function with default arguments still trips the
        # test, because its '(' precedes the first '='.
        depth = 0
        for j, t in enumerate(clean):
            if t.text == "<":
                depth += 1
            elif t.text == ">":
                depth -= 1
            elif t.text == ">>":
                depth -= 2
            elif depth <= 0 and t.text == "=":
                clean = clean[:j]
                break
        # An identifier (or closing bracket) directly followed by '(' is a
        # function declaration, not a data member.
        for j, t in enumerate(clean):
            if t.text == "(" and j > 0 and (
                    clean[j - 1].kind == "id" or clean[j - 1].text in (">", "]")):
                return None
        # Bit-field:  type name : width   ('::' is a distinct token).
        bit_width = None
        for j, t in enumerate(clean):
            if t.text == ":" and 0 < j and clean[j - 1].kind == "id":
                bit_width = clean[j + 1:]
                clean = clean[:j]
                break
        extents = []
        while clean and clean[-1].text == "]":
            open_i = _match_paren_back(clean, len(clean) - 1, "[", "]")
            extents.insert(0, clean[open_i + 1:len(clean) - 1])
            clean = clean[:open_i]
        if clean and clean[-1].text == "{":
            clean = clean[:-1]  # brace-init marker
        if len(clean) < 2 or clean[-1].kind != "id":
            return None
        name_tok = clean[-1]
        return RawMember(name_tok.text, clean[:-1], extents, bit_width,
                         alignas_req, nua, guard, name_tok.line)

    # ---- constants ---------------------------------------------------------

    def cache_line_bytes(self):
        return self.defines.get("CPT_CACHE_LINE", HOST_LINE_BYTES)

    def const_value(self, name, file, classes):
        entries = self._const_defs.get(name)
        if entries is None:
            if name in self.defines:
                return self.defines[name]
            raise LayoutUnresolved(f"unresolved constant '{name}'")
        ranked = sorted(entries, key=lambda e: (
            0 if e["cls"] in classes and e["cls"] is not None else 1,
            0 if e["file"] == file else 1))
        best = ranked[0]
        if best["cls"] not in classes and best["file"] != file:
            values = set()
            for e in entries:
                try:
                    values.add(self._const_entry_value(e))
                except LayoutUnresolved:
                    pass
            if len(values) == 1:
                return values.pop()
            raise LayoutUnresolved(
                f"ambiguous constant '{name}' ({len(entries)} definitions)")
        return self._const_entry_value(best)

    def _const_entry_value(self, entry):
        if entry["state"] == 2:
            return entry["value"]
        if entry["state"] == 1:
            raise LayoutUnresolved("cyclic constant definition")
        entry["state"] = 1
        try:
            toks = entry["toks"]
            if toks and toks[0].text == "{":
                close = _match_paren(toks, 0, "{", "}")
                vals, cur = [], []
                depth = 0
                for t in toks[1:close]:
                    if t.text in ("(", "{", "["):
                        depth += 1
                    elif t.text in (")", "}", "]"):
                        depth -= 1
                    if depth == 0 and t.text == ",":
                        if cur:
                            vals.append(self.eval_expr(
                                cur, entry["file"], (entry["cls"],)))
                        cur = []
                    else:
                        cur.append(t)
                if cur:
                    vals.append(self.eval_expr(cur, entry["file"],
                                               (entry["cls"],)))
                entry["value"] = tuple(vals)
            else:
                entry["value"] = self.eval_expr(
                    toks, entry["file"], (entry["cls"],))
            entry["state"] = 2
            return entry["value"]
        except LayoutUnresolved:
            entry["state"] = 0
            raise

    # Minimal constant-expression evaluator: integer literals, k-constants
    # (optionally class-qualified or array-indexed), #define'd integers,
    # T{n} braced casts, parentheses, unary -/+/~ and the binary operators
    # below in C precedence.
    _BIN_LEVELS = (("|",), ("^",), ("&",), ("<<", ">>"), ("+", "-"),
                   ("*", "/", "%"))

    def eval_expr(self, toks, file, classes):
        toks = [t for t in toks if not (t.kind == "id" and t.text in (
            "static_cast", "std", "constexpr", "const"))
            and t.text != "::"]
        val, pos = self._eval_binary(toks, 0, 0, file, classes)
        if pos != len(toks):
            raise LayoutUnresolved(
                "unsupported constant expression: "
                + " ".join(t.text for t in toks))
        return val

    def _eval_binary(self, toks, pos, level, file, classes):
        if level >= len(self._BIN_LEVELS):
            return self._eval_unary(toks, pos, file, classes)
        ops = self._BIN_LEVELS[level]
        val, pos = self._eval_binary(toks, pos, level + 1, file, classes)
        while pos < len(toks) and toks[pos].text in ops:
            op = toks[pos].text
            rhs, pos = self._eval_binary(toks, pos + 1, level + 1, file, classes)
            if op == "|":
                val |= rhs
            elif op == "^":
                val ^= rhs
            elif op == "&":
                val &= rhs
            elif op == "<<":
                val <<= rhs
            elif op == ">>":
                val >>= rhs
            elif op == "+":
                val += rhs
            elif op == "-":
                val -= rhs
            elif op == "*":
                val *= rhs
            elif op == "/":
                if rhs == 0:
                    raise LayoutUnresolved("division by zero")
                val //= rhs
            elif op == "%":
                if rhs == 0:
                    raise LayoutUnresolved("modulo by zero")
                val %= rhs
        return val, pos

    def _eval_unary(self, toks, pos, file, classes):
        if pos < len(toks) and toks[pos].text in ("-", "+", "~"):
            op = toks[pos].text
            val, pos = self._eval_unary(toks, pos + 1, file, classes)
            if op == "-":
                val = -val
            elif op == "~":
                val = ~val
            return val, pos
        return self._eval_primary(toks, pos, file, classes)

    def _eval_primary(self, toks, pos, file, classes):
        if pos >= len(toks):
            raise LayoutUnresolved("truncated constant expression")
        t = toks[pos]
        if t.kind == "num":
            v = _int_literal(t.text)
            if v is None:
                raise LayoutUnresolved(f"non-integer literal {t.text}")
            return v, pos + 1
        if t.text == "(":
            close = _match_paren(toks, pos, "(", ")")
            val, inner = self._eval_binary(toks, pos + 1, 0, file, classes)
            if inner != close:
                raise LayoutUnresolved("unsupported parenthesized expression")
            return val, close + 1
        if t.kind == "id":
            chain = [t.text]
            pos += 1
            while pos + 1 < len(toks) and toks[pos].kind == "id":
                chain.append(toks[pos].text)
                pos += 1
            if pos < len(toks) and toks[pos].kind == "id":
                chain.append(toks[pos].text)
                pos += 1
            # T{n}: a braced integral cast — the value is the operand's.
            if pos < len(toks) and toks[pos].text == "{":
                close = _match_paren(toks, pos, "{", "}")
                val, inner = self._eval_binary(toks, pos + 1, 0, file, classes)
                if inner != close:
                    raise LayoutUnresolved("unsupported braced expression")
                return val, close + 1
            name = chain[-1]
            hint = chain[-2] if len(chain) > 1 else None
            ctx = (hint,) + tuple(classes) if hint else tuple(classes)
            val = self.const_value(name, file, ctx)
            if pos < len(toks) and toks[pos].text == "[":
                close = _match_paren(toks, pos, "[", "]")
                idx, inner = self._eval_binary(toks, pos + 1, 0, file, classes)
                if inner != close:
                    raise LayoutUnresolved("unsupported subscript expression")
                if not isinstance(val, tuple) or not 0 <= idx < len(val):
                    raise LayoutUnresolved(f"'{name}' is not an indexable "
                                           f"constant array")
                return val[idx], close + 1
            if isinstance(val, tuple):
                raise LayoutUnresolved(f"constant array '{name}' used as a "
                                       f"scalar")
            return val, pos
        raise LayoutUnresolved(f"unsupported constant token '{t.text}'")

    # ---- type resolution ---------------------------------------------------

    def sim_line_bytes(self):
        """(value, line) of kDefaultCacheLineSize, or raise."""
        if self._sim_line is None:
            entries = self._const_defs.get(SIM_LINE_CONST, [])
            anchored = [e for e in entries if e["file"] == MODEL_TRUTH_ANCHOR_FILE]
            if not anchored:
                anchored = entries
            if not anchored:
                self._sim_line = f"constant {SIM_LINE_CONST} not found"
            else:
                try:
                    self._sim_line = (self._const_entry_value(anchored[0]),
                                      anchored[0]["file"])
                except LayoutUnresolved as exc:
                    self._sim_line = str(exc)
        if isinstance(self._sim_line, str):
            raise LayoutUnresolved(self._sim_line)
        return self._sim_line[0]

    def lookup_struct(self, name, file, classes):
        """Qualified name of the project struct `name` resolves to in the
        given context, or None when no project struct matches."""
        for cls in classes:
            if cls and f"{cls}::{name}" in self.structs:
                return f"{cls}::{name}"
        quals = self.by_name.get(name)
        if not quals:
            return None
        same_file = [q for q in quals if self.structs[q].file == file]
        if len(same_file) == 1:
            return same_file[0]
        if len(quals) == 1:
            return quals[0]
        # Ambiguous bare name across files: only safe if every candidate
        # resolves to the identical layout.
        layouts = set()
        for q in quals:
            lay = self.layouts.get(q)
            if lay is None:
                raise LayoutUnresolved(
                    f"ambiguous type '{name}' ({len(quals)} definitions)")
            layouts.add((lay.size, lay.align))
        if len(layouts) == 1:
            return quals[0]
        raise LayoutUnresolved(
            f"ambiguous type '{name}' with differing layouts")

    def type_layout(self, toks, file, classes, stack=()):
        """(size, align) of the type spelled by `toks` in the context of
        `classes` (innermost first) within `file`."""
        toks = [t for t in toks if not (
            t.kind == "id" and t.text in STRIP_TYPE_TOKENS) and t.text != "::"]
        if not toks:
            raise LayoutUnresolved("empty type")
        if any(t.text in ("*", "&", "&&") for t in toks):
            return (8, 8)  # pointers, references, pointers-to-member-ish
        base, hint, args = _split_template(toks)
        if base is None:
            raise LayoutUnresolved(
                "unparsable type: " + " ".join(t.text for t in toks))
        if args is None:
            words = " ".join(t.text for t in toks
                             if t.kind == "id" and t.text != "std")
            if words in FUNDAMENTAL_LAYOUTS:
                return FUNDAMENTAL_LAYOUTS[words]
        if base in ATOMIC_WRAPPER_BASES and args:
            s, _ = self.type_layout(args[0], file, classes, stack)
            if s in (1, 2, 4, 8):
                return (s, s)
            raise LayoutUnresolved(f"atomic payload of {s} bytes")
        if base == "optional" and args:
            s, a = self.type_layout(args[0], file, classes, stack)
            return (_align_up(s + 1, a), a)
        if base == "array" and args and len(args) >= 2:
            s, a = self.type_layout(args[0], file, classes, stack)
            n = self.eval_expr(args[1], file, classes)
            return (s * n, a)
        if base == "pair" and args and len(args) >= 2:
            off, align = 0, 1
            for arg in args:
                s, a = self.type_layout(arg, file, classes, stack)
                off = _align_up(off, a) + s
                align = max(align, a)
            return (_align_up(off, align), align)
        if base in self.enum_layouts:
            cands = self.enum_layouts[base]
            same = [c for c in cands if c[0] == file]
            pick = same[0] if same else cands[0]
            if not same and len({c[1] for c in cands}) > 1:
                raise LayoutUnresolved(f"ambiguous enum '{base}'")
            return pick[1]
        if base in self.aliases and args is None:
            cands = self.aliases[base]
            same = [c for c in cands if c[0] == file]
            pick = same[0] if same else cands[0]
            return self.type_layout(pick[1], file, classes, stack)
        ctx = (hint,) + tuple(classes) if hint else tuple(classes)
        qual = self.lookup_struct(base, file, ctx)
        if qual is not None:
            lay = self._layout_of(qual, stack)
            return (lay.size, lay.align)
        if base in LIB_LAYOUTS:
            return LIB_LAYOUTS[base]
        raise LayoutUnresolved(
            "unknown type: " + " ".join(t.text for t in toks))

    def _layout_of(self, qual, stack=()):
        if qual in self.layouts:
            return self.layouts[qual]
        if qual in self.skipped:
            raise LayoutUnresolved(self.skipped[qual])
        if qual in stack:
            raise LayoutUnresolved(f"recursive type '{qual}'")
        raw = self.structs[qual]
        try:
            lay = self._compute(raw, stack + (qual,))
        except LayoutUnresolved as exc:
            self.skipped[qual] = str(exc)
            raise
        self.layouts[qual] = lay
        return lay

    def _compute(self, raw, stack):
        if raw.is_union:
            raise LayoutUnresolved("union layout not modeled")
        if raw.tparams:
            for m in raw.members:
                if any(t.kind == "id" and t.text in raw.tparams
                       for t in m.type_toks):
                    raise LayoutUnresolved(
                        f"template-dependent member '{m.name}'")
        classes = (raw.name, raw.outer)
        offset, align = 0, 1
        polymorphic = raw.has_virtual
        base_layouts = []
        for b in raw.bases:
            bqual = self.lookup_struct(b, raw.file, classes)
            if bqual is not None:
                blay = self._layout_of(bqual, stack)
                base_layouts.append(blay)
                polymorphic = polymorphic or blay.polymorphic
            elif b in LIB_LAYOUTS:
                s, a = LIB_LAYOUTS[b]
                base_layouts.append(StructLayout(
                    b, b, "<lib>", 0, s, a, [], False, False, False))
            else:
                raise LayoutUnresolved(f"unresolved base class '{b}'")
        if polymorphic and not (base_layouts and base_layouts[0].polymorphic):
            offset, align = 8, 8  # the vptr word
        for blay in base_layouts:
            if blay.empty and not blay.polymorphic:
                align = max(align, blay.align)  # empty-base optimization
                continue
            offset = _align_up(offset, blay.align) + blay.size
            align = max(align, blay.align)
        fields = []
        bit_container = None  # (size, start_offset, bits_used)
        for m in raw.members:
            s, a = self.type_layout(m.type_toks, raw.file, classes, stack)
            atomic = capability = False
            mbase, _, _ = _split_template(
                [t for t in m.type_toks
                 if not (t.kind == "id" and t.text in STRIP_TYPE_TOKENS)
                 and t.text != "::"])
            if not any(t.text in ("*", "&") for t in m.type_toks):
                atomic = mbase in ATOMIC_FIELD_BASES
                capability = mbase in CAPABILITY_FIELD_BASES
            if m.bit_width is not None:
                width = self.eval_expr(m.bit_width, raw.file, classes)
                if width > s * 8:
                    raise LayoutUnresolved(
                        f"bit-field '{m.name}' wider than its type")
                if (bit_container is not None and bit_container[0] == s
                        and bit_container[2] + width <= s * 8 and width > 0):
                    csize, cstart, used = bit_container
                    bit_container = (csize, cstart, used + width)
                    fields.append(FieldLayout(m.name, cstart, s, a, m.line,
                                              atomic, capability, m.guard,
                                              width))
                    continue
                start = _align_up(offset, a)
                bit_container = (s, start, width)
                fields.append(FieldLayout(m.name, start, s, a, m.line,
                                          atomic, capability, m.guard, width))
                offset = start + s
                align = max(align, a)
                continue
            bit_container = None
            for ext in m.extents:
                n = self.eval_expr(ext, raw.file, classes)
                s *= n
            a = max(a, m.alignas_req)
            if m.no_unique_address and s <= 1 and not m.extents:
                # Modeled as the empty-member optimization: zero bytes.
                fields.append(FieldLayout(m.name, _align_up(offset, a), 0, a,
                                          m.line, atomic, capability,
                                          m.guard, None))
                align = max(align, a)
                continue
            start = _align_up(offset, a)
            fields.append(FieldLayout(m.name, start, s, a, m.line, atomic,
                                      capability, m.guard, None))
            offset = start + s
            align = max(align, a)
        align = max(align, raw.alignas_req)
        size = _align_up(offset, align)
        if size == 0:
            size = 1
        return StructLayout(raw.qual, raw.name, raw.file, raw.line, size,
                            align, fields, raw.alignas_req
                            >= self.cache_line_bytes(), raw.shared,
                            polymorphic)

    # ---- hot-struct reachability -------------------------------------------

    def hot_struct_quals(self, project):
        """Quals of structs reachable from CPT_HOT functions: classes that
        define hot methods, types named in hot bodies, and the transitive
        member-type closure of both."""
        if self._hot_quals is not None:
            return self._hot_quals
        hot = project.ensure_hot_analysis()
        seeds = set()
        for fd in hot.defs:
            if (fd.hot_depth is None or fd in hot.cold
                    or hot._boundary(fd) or not _layout_scope(fd.file)):
                continue
            if fd.cls:
                for qual in self.by_name.get(fd.cls, ()):
                    seeds.add(qual)
            toks = hot._tokens_by_file[fd.file]
            for tok in toks[fd.start:fd.end + 1]:
                if tok.kind == "id" and tok.text in self.by_name:
                    ctx_qual = None
                    try:
                        ctx_qual = self.lookup_struct(
                            tok.text, fd.file, (fd.cls,))
                    except LayoutUnresolved:
                        pass
                    if ctx_qual:
                        seeds.add(ctx_qual)
        work = sorted(seeds)
        reach = set(work)
        while work:
            qual = work.pop()
            raw = self.structs.get(qual)
            if raw is None:
                continue
            names = set(raw.bases)
            for m in raw.members:
                for t in m.type_toks:
                    if t.kind == "id" and t.text in self.by_name:
                        names.add(t.text)
            for name in names:
                try:
                    nq = self.lookup_struct(name, raw.file,
                                            (raw.name, raw.outer))
                except LayoutUnresolved:
                    continue
                if nq and nq not in reach:
                    reach.add(nq)
                    work.append(nq)
        self._hot_quals = reach
        return reach

    def quals_in(self, rel):
        return self._file_quals.get(rel, [])


# ---- ledger / report payloads ---------------------------------------------

def _anchor_accounting_bytes(la, rel, func):
    """Sorted distinct integer literals inside `func`'s body in `rel` —
    the byte spans the accounting function charges per walk step."""
    sf = la._files.get(rel)
    if sf is None:
        return None
    for start, end in sf.function_spans():
        name_idx, _ = _header_name(sf.tokens, start)
        if name_idx is not None and sf.tokens[name_idx].text == func:
            vals = set()
            for t in sf.tokens[start:end + 1]:
                if t.kind == "num":
                    v = _int_literal(t.text)
                    if v is not None and v > 1:
                        vals.add(v)
            return sorted(vals)
    return None


def layout_ledger_payload(project):
    """The committed compiled-truth ledger: {size, align, field offsets} of
    every hot-reachable resolved struct plus the model-truth table tying
    CacheTouchModel's per-step constants to the node structs."""
    la = project.ensure_layout_analysis()
    try:
        sim_line = la.sim_line_bytes()
    except LayoutUnresolved:
        sim_line = None
    structs = {}
    for qual in sorted(la.hot_struct_quals(project)):
        lay = la.layouts.get(qual)
        if lay is None or not lay.file.startswith("src/"):
            continue
        if _boundary_rel(lay.file):
            continue  # boundary scaffolding is not ledgered
        structs[qual] = {
            "file": lay.file,
            "size": lay.size,
            "align": lay.align,
            "fields": {f.name: f.offset for f in lay.fields},
        }
    model_truth = {}
    for key, rel, func, node_qual in MODEL_TRUTH_ANCHORS:
        spans = _anchor_accounting_bytes(la, rel, func)
        lay = la.layouts.get(node_qual)
        if spans is None or lay is None or sim_line is None:
            continue
        model_truth[key] = {
            "file": rel,
            "function": func,
            "node": node_qual,
            "accounting_bytes": spans,
            "lines_per_access": [
                (b + sim_line - 1) // sim_line for b in spans],
            "struct_size": lay.size,
            "struct_lines": (lay.size + sim_line - 1) // sim_line,
        }
    return {
        "schema": "cpt-layout-ledger",
        "version": 1,
        "host_line_bytes": HOST_LINE_BYTES,
        "sim_line_bytes": sim_line,
        "word_bytes": 8,
        "structs": structs,
        "model_truth": model_truth,
    }


def layout_report(project):
    """Resolution report: every modeled struct, every skip-with-notice, the
    hot-reachable set, and the ledger payload the tree would commit."""
    la = project.ensure_layout_analysis()
    hot = la.hot_struct_quals(project)
    return {
        "resolved": {
            qual: {
                "file": lay.file,
                "size": lay.size,
                "align": lay.align,
                "cache_aligned": lay.cache_aligned,
                "hot": qual in hot,
                "fields": [
                    {"name": f.name, "offset": f.offset, "size": f.size,
                     "align": f.align}
                    for f in lay.fields],
            }
            for qual, lay in sorted(la.layouts.items())
        },
        "skipped": dict(sorted(la.skipped.items())),
        "hot_structs": sorted(q for q in hot if q in la.layouts),
        "ledger": layout_ledger_payload(project),
    }


# ---------------------------------------------------------------------------
# Rule framework
# ---------------------------------------------------------------------------

RULES = {}


class Rule:
    name = ""
    help = ""
    # fnmatch globs over repo-relative posix paths; empty = all lintable files.
    include = ()
    exclude = ()

    def applies(self, rel):
        if self.exclude and any(fnmatch.fnmatch(rel, g) for g in self.exclude):
            return False
        if not self.include:
            return True
        return any(fnmatch.fnmatch(rel, g) for g in self.include)

    def check(self, sf, project):
        raise NotImplementedError


def register(cls):
    RULES[cls.name] = cls()
    return cls


# ---- exhaustive-enum-switch -----------------------------------------------

@register
class ExhaustiveEnumSwitch(Rule):
    name = "exhaustive-enum-switch"
    help = ("switch statements over contract enums must list every enumerator "
            "(or carry a suppression explaining the subset)")

    def check(self, sf, project):
        findings = []
        toks = sf.tokens
        for i, t in enumerate(toks):
            if t.kind == "id" and t.text == "switch":
                self._check_switch(sf, project, toks, i, findings)
        return findings

    def _check_switch(self, sf, project, toks, i, findings):
        # Find the controlled body: switch ( cond ) { ... }
        j = i + 1
        if j >= len(toks) or toks[j].text != "(":
            return
        j = _match_paren(toks, j, "(", ")") + 1
        if j >= len(toks) or toks[j].text != "{":
            return
        close = _match_paren(toks, j, "{", "}")
        labels = {}  # enum name -> set(enumerator)
        k = j + 1
        while k < close:
            tk = toks[k]
            if tk.kind == "id" and tk.text == "switch":
                # Nested switch: its labels belong to it, not to us (the
                # outer token scan in check() will visit it on its own).
                nj = k + 1
                if nj < len(toks) and toks[nj].text == "(":
                    nj = _match_paren(toks, nj, "(", ")") + 1
                if nj < len(toks) and toks[nj].text == "{":
                    k = _match_paren(toks, nj, "{", "}") + 1
                    continue
            if tk.kind == "id" and tk.text == "case":
                ids = []
                k += 1
                while k < close and toks[k].text != ":":
                    if toks[k].kind == "id":
                        ids.append(toks[k].text)
                    k += 1
                if len(ids) >= 2:
                    labels.setdefault(ids[-2], set()).add(ids[-1])
                continue
            k += 1
        for enum_name, seen in labels.items():
            if enum_name not in CONTRACT_ENUMS:
                continue
            enum_def = project.enum_for_switch(enum_name, seen, sf.rel)
            if enum_def is None:
                continue
            missing = sorted(set(enum_def.enumerators) - seen)
            if not missing:
                continue
            shown = ", ".join(missing[:6]) + (", ..." if len(missing) > 6 else "")
            findings.append(Finding(
                self.name, sf, toks[i].line,
                f"switch over {enum_name} is missing {len(missing)} of "
                f"{len(enum_def.enumerators)} enumerators: {shown}"))


# ---- name-table-sync -------------------------------------------------------

@register
class NameTableSync(Rule):
    name = "name-table-sync"
    help = ("k<Enum>Names arrays must sit adjacent to a static_assert tying "
            "their length to the enum, and carry one entry per enumerator")
    ADJACENT_LINES = 4

    def check(self, sf, project):
        findings = []
        asserts = self._static_assert_spans(sf)
        for table in (t for t in project.name_tables if t.file == sf.rel):
            if not self._has_adjacent_assert(table, asserts):
                findings.append(Finding(
                    self.name, sf, table.line,
                    f"name table {table.name} has no adjacent "
                    f"static_assert(std::size({table.name}) == ...) within "
                    f"{self.ADJACENT_LINES} lines"))
            enum_name = table.name[1:-len("Names")]
            enum_def = project.enum_for_switch(enum_name, set(), sf.rel)
            if enum_def is not None and len(table.strings) != len(enum_def.enumerators):
                findings.append(Finding(
                    self.name, sf, table.line,
                    f"{table.name} has {len(table.strings)} entries but enum "
                    f"{enum_name} has {len(enum_def.enumerators)} enumerators"))
        return findings

    @staticmethod
    def _static_assert_spans(sf):
        spans = []
        toks = sf.tokens
        for i, t in enumerate(toks):
            if t.kind == "id" and t.text == "static_assert" and i + 1 < len(toks) \
                    and toks[i + 1].text == "(":
                close = _match_paren(toks, i + 1, "(", ")")
                names = {tk.text for tk in toks[i + 2:close] if tk.kind == "id"}
                spans.append((t.line, toks[close].line, names))
        return spans

    def _has_adjacent_assert(self, table, asserts):
        for start, end, names in asserts:
            if table.name not in names:
                continue
            if (abs(start - table.end_line) <= self.ADJACENT_LINES
                    or abs(end - table.line) <= self.ADJACENT_LINES):
                return True
        return False


# ---- walk-protocol-pairing -------------------------------------------------

def function_bodies(toks):
    """Yields (start_index, end_index) spans of function bodies.

    Heuristic: a '{' opens a function body when, scanning back over type
    and specifier tokens, the previous structural token is ')'.  Nested
    braces (blocks, lambdas, initializers) inside a body are part of it.
    """
    skippable = {"const", "noexcept", "override", "final", "mutable", "&", "&&",
                 "->", "::", "<", ">", ",", "*", "]", "[", "try"}
    depth = 0
    fn_start = fn_depth = None
    for i, t in enumerate(toks):
        if t.text == "{":
            if fn_start is None and _is_function_header(toks, i, skippable):
                fn_start, fn_depth = i, depth
            depth += 1
        elif t.text == "}":
            depth -= 1
            if fn_start is not None and depth == fn_depth:
                yield fn_start, i
                fn_start = fn_depth = None


def _is_function_header(toks, brace_index, skippable):
    j = brace_index - 1
    budget = 24
    while j >= 0 and budget > 0:
        t = toks[j]
        if t.text == ")":
            return True
        if t.kind == "id" and (t.text in skippable or ID_RE.match(t.text)):
            # Identifiers cover trailing return types and ctor-init names;
            # anything structural ends the scan below.
            j -= 1
            budget -= 1
            continue
        if t.text in skippable:
            j -= 1
            budget -= 1
            continue
        return False
    return False


@register
class WalkProtocolPairing(Rule):
    name = "walk-protocol-pairing"
    help = ("BeginWalk() needs a matching EndWalk()/AbortWalk() (or WalkScope) "
            "in the same function, and kWalkHit must be emitted before kWalkEnd")
    include = ("src/pt/*", "src/tlb/*", "src/mem/*", "src/sim/*", "src/core/*",
               "src/os/*", "tests/lint/fixtures/*")
    # The cache model defines the walk brackets themselves (WalkScope's ctor
    # and dtor intentionally split the pair across two bodies).
    exclude = ("src/mem/cache_model.h", "src/mem/cache_model.cc")

    WALK_EVENTS = ("kWalkHit", "kWalkEnd", "kWalkAbort", "kWalkStep")

    def check(self, sf, project):
        findings = []
        toks = sf.tokens
        for start, end in sf.function_spans():
            self._check_body(sf, toks, start, end, findings)
        return findings

    def _check_body(self, sf, toks, start, end, findings):
        begin = finish = None
        emissions = []  # (event_name, line) inside Record(...) calls
        i = start
        while i <= end:
            t = toks[i]
            prev = toks[i - 1].text if i > 0 else ""
            nxt = toks[i + 1].text if i + 1 < len(toks) else ""
            if t.kind == "id" and prev in (".", "->") and nxt == "(":
                if t.text == "BeginWalk" and begin is None:
                    begin = t
                elif t.text in ("EndWalk", "AbortWalk") and finish is None:
                    finish = t
            if t.kind == "id" and t.text == "WalkScope" and finish is None:
                finish = t
            if t.kind == "id" and t.text == "Record" and nxt == "(":
                close = _match_paren(toks, i + 1, "(", ")")
                for k in range(i + 2, close):
                    tk = toks[k]
                    if tk.kind == "id" and tk.text in self.WALK_EVENTS \
                            and toks[k - 1].text == "::":
                        emissions.append((tk.text, tk.line))
                i = close + 1
                continue
            i += 1
        if begin is not None and finish is None:
            findings.append(Finding(
                self.name, sf, begin.line,
                "BeginWalk() without a matching EndWalk()/AbortWalk() or "
                "WalkScope in the same function"))
        hit = next((line for name, line in emissions if name == "kWalkHit"), None)
        walk_end = next((line for name, line in emissions if name == "kWalkEnd"), None)
        if hit is not None and walk_end is not None and walk_end < hit:
            findings.append(Finding(
                self.name, sf, walk_end,
                "kWalkEnd emitted before kWalkHit in the same function "
                "(the hit marker must precede the walk-end bracket)"))


# ---- check-macro-hygiene ---------------------------------------------------

@register
class CheckMacroHygiene(Rule):
    name = "check-macro-hygiene"
    help = ("simulator code uses CPT_CHECK/CPT_DCHECK, never raw assert()/"
            "abort()/<cassert>")
    include = ("src/*", "bench/*", "examples/*", "tools/*", "tests/lint/fixtures/*")

    INCLUDE_RE = re.compile(r"#\s*include\s*[<\"](cassert|assert\.h)[>\"]")

    def check(self, sf, project):
        findings = []
        toks = sf.tokens
        for i, t in enumerate(toks):
            nxt = toks[i + 1].text if i + 1 < len(toks) else ""
            prev = toks[i - 1].text if i > 0 else ""
            if t.kind != "id" or nxt != "(":
                continue
            if t.text == "assert" and prev not in (".", "->"):
                findings.append(Finding(
                    self.name, sf, t.line,
                    "raw assert(); use CPT_DCHECK (hot path) or CPT_CHECK "
                    "(always-on) from common/check.h",
                    fixes=[(t.pos, t.pos + len(t.text), "CPT_DCHECK")]))
            elif t.text == "abort" and prev not in (".", "->"):
                findings.append(Finding(
                    self.name, sf, t.line,
                    "raw abort(); use CPT_CHECK(false, \"reason\") so the "
                    "failure prints expression and location"))
        for d in sf.directives:
            if self.INCLUDE_RE.search(d.text):
                findings.append(Finding(
                    self.name, sf, d.line,
                    "#include <cassert> in simulator code; include "
                    "common/check.h instead",
                    fixes=[(d.pos, min(d.end + 1, len(sf.text)), "")]))
        return findings


# ---- determinism-guards ----------------------------------------------------

@register
class DeterminismGuards(Rule):
    name = "determinism-guards"
    help = ("all randomness flows through common/rng.h and all timing through "
            "obs/timer.h; no float-literal ==/!= comparisons")
    include = ("src/*", "bench/*", "examples/*", "tests/*")
    exclude = ("src/common/rng.h",)

    BANNED_CALLS = {"rand", "srand", "drand48", "random", "time", "clock",
                    "gettimeofday", "timespec_get"}
    BANNED_TYPES = {"random_device"}

    def check(self, sf, project):
        findings = []
        toks = sf.tokens
        for i, t in enumerate(toks):
            nxt = toks[i + 1].text if i + 1 < len(toks) else ""
            prev = toks[i - 1].text if i > 0 else ""
            if t.kind == "id" and t.text in self.BANNED_TYPES:
                findings.append(Finding(
                    self.name, sf, t.line,
                    f"std::{t.text} is nondeterministic; seed a cpt::Rng "
                    "(common/rng.h) instead"))
            elif (t.kind == "id" and t.text in self.BANNED_CALLS
                    and nxt == "(" and prev not in (".", "->")):
                findings.append(Finding(
                    self.name, sf, t.line,
                    f"{t.text}() breaks run-to-run reproducibility; use "
                    "cpt::Rng (common/rng.h) for randomness or obs/timer.h "
                    "for timing"))
            elif t.text in ("==", "!=") and (
                    (i > 0 and is_float_literal(toks[i - 1]))
                    or (i + 1 < len(toks) and is_float_literal(toks[i + 1]))):
                findings.append(Finding(
                    self.name, sf, t.line,
                    "exact float comparison against a literal; compare "
                    "integers or use an explicit tolerance"))
        return findings


# ---- timing-discipline ----------------------------------------------------

@register
class TimingDiscipline(Rule):
    name = "timing-discipline"
    help = ("raw clock reads live only in obs/timer.* and obs/perf.*; "
            "measure host time with ScopedTimer/PhaseProfiler or "
            "HostPerfCounters so every reported number shares one clock")
    include = ("src/*", "bench/*", "examples/*", "tests/*")
    exclude = ("src/obs/timer.h", "src/obs/timer.cc",
               "src/obs/perf.h", "src/obs/perf.cc")

    # std::chrono clock types whose now() is a raw wall/CPU-time read.
    BANNED_CLOCKS = {"steady_clock", "high_resolution_clock", "system_clock"}
    # POSIX clock syscalls (distinct identifiers from determinism-guards'
    # banned clock()/time()).
    BANNED_CALLS = {"clock_gettime", "clock_getres"}

    def check(self, sf, project):
        findings = []
        toks = sf.tokens
        for i, t in enumerate(toks):
            if t.kind != "id":
                continue
            prev = toks[i - 1].text if i > 0 else ""
            if prev in (".", "->"):
                continue  # Member access, not the chrono type / libc call.
            nxt = toks[i + 1].text if i + 1 < len(toks) else ""
            if t.text in self.BANNED_CLOCKS:
                findings.append(Finding(
                    self.name, sf, t.line,
                    f"raw std::chrono::{t.text} use; route host timing "
                    "through obs/timer.h (ScopedTimer/PhaseProfiler) or "
                    "obs/perf.h (HostPerfCounters)"))
            elif t.text in self.BANNED_CALLS and nxt == "(":
                findings.append(Finding(
                    self.name, sf, t.line,
                    f"{t.text}() bypasses the shared timing layer; use "
                    "obs/timer.h or obs/perf.h"))
        return findings


# ---- include-guard ---------------------------------------------------------

IFNDEF_RE = re.compile(r"#\s*ifndef\s+(\w+)")
DEFINE_RE = re.compile(r"#\s*define\s+(\w+)")
ENDIF_RE = re.compile(r"#\s*endif(?:\s*//\s*(\w+))?")
PRAGMA_ONCE_RE = re.compile(r"#\s*pragma\s+once")


@register
class IncludeGuard(Rule):
    name = "include-guard"
    help = ("headers carry canonical CPT_<PATH>_H_ guards with a matching "
            "'#endif  // <GUARD>' trailer")
    include = ("src/*.h", "src/*/*.h", "bench/*.h", "tests/lint/fixtures/*.h")

    @staticmethod
    def expected_guard(rel):
        parts = Path(rel).parts
        if parts and parts[0] == "src":
            parts = parts[1:]
        stem = Path(parts[-1]).stem
        pieces = [p.upper() for p in parts[:-1]] + [stem.upper()]
        return "CPT_" + "_".join(re.sub(r"[^A-Z0-9]", "_", p) for p in pieces) + "_H_"

    def check(self, sf, project):
        if not sf.rel.endswith((".h", ".hpp")):
            return []  # Intrinsically a header rule, even under --ignore-scope.
        want = self.expected_guard(sf.rel)
        findings = []
        ds = sf.directives
        if any(PRAGMA_ONCE_RE.search(d.text) for d in ds):
            findings.append(Finding(
                self.name, sf, 1,
                f"#pragma once; use the canonical guard {want}"))
            return findings
        if len(ds) < 3:
            findings.append(Finding(
                self.name, sf, 1, f"missing include guard {want}"))
            return findings
        first, second, last = ds[0], ds[1], ds[-1]
        m_if, m_def = IFNDEF_RE.match(first.text), DEFINE_RE.match(second.text)
        m_end = ENDIF_RE.match(last.text)
        if not m_if or not m_def or not m_end:
            findings.append(Finding(
                self.name, sf, first.line,
                f"header does not open with #ifndef/#define and close with "
                f"#endif (expected guard {want})"))
            return findings
        got_if, got_def = m_if.group(1), m_def.group(1)
        if got_if != want or got_def != want:
            fixes = []
            if got_if == got_def:
                fixes = [(first.pos, first.end, f"#ifndef {want}"),
                         (second.pos, second.end, f"#define {want}")]
                if m_end.group(1) != want:
                    # Retarget the trailer in the same pass: --fix must be a
                    # fixed point, not converge across two runs.
                    fixes.append((last.pos, last.end, f"#endif  // {want}"))
            findings.append(Finding(
                self.name, sf, first.line,
                f"include guard is {got_if} (expected {want})", fixes=fixes))
        elif m_end.group(1) != want:
            findings.append(Finding(
                self.name, sf, last.line,
                f"#endif lacks the '  // {want}' trailer",
                fixes=[(last.pos, last.end, f"#endif  // {want}")]))
        return findings


# ---- nodiscard-query -------------------------------------------------------

@register
class NodiscardQuery(Rule):
    name = "nodiscard-query"
    help = ("Lookup/LookupKey query declarations in headers must be "
            "[[nodiscard]]: discarding a fill is always a bug")
    include = ("src/*.h", "src/*/*.h", "tests/lint/fixtures/*.h")

    QUERY_METHODS = {"Lookup", "LookupKey"}
    DECL_STOP = {";", "{", "}"}

    def check(self, sf, project):
        findings = []
        toks = sf.tokens
        for i, t in enumerate(toks):
            if t.kind != "id" or t.text not in self.QUERY_METHODS:
                continue
            if i + 1 >= len(toks) or toks[i + 1].text != "(":
                continue
            prev = toks[i - 1] if i > 0 else None
            if prev is None or prev.text in (".", "->", "::", "(", ",", "=", "return", "!"):
                continue  # a call, not a declaration
            decl_start, prefix = self._decl_prefix(toks, i)
            texts = [p.text for p in prefix]
            if not texts or texts[-1] == "void":
                continue  # void return: nothing to discard
            if "nodiscard" in texts:
                continue
            first = toks[decl_start]
            findings.append(Finding(
                self.name, sf, t.line,
                f"{t.text}() returns a value callers must not drop; declare "
                f"it [[nodiscard]]",
                fixes=[(first.pos, first.pos, "[[nodiscard]] ")]))
        return findings

    def _decl_prefix(self, toks, name_index):
        j = name_index - 1
        while j >= 0:
            t = toks[j]
            if t.text in self.DECL_STOP:
                break
            if t.text == ":" and j > 0 and toks[j - 1].text in (
                    "public", "private", "protected"):
                break
            j -= 1
        start = j + 1
        return start, toks[start:name_index]


# ---- raw-address-param -----------------------------------------------------

WORD_SPLIT_RE = re.compile(r"[A-Z]+(?=[A-Z][a-z])|[A-Z]?[a-z0-9]+|[A-Z]+")


def identifier_words(name):
    """Lowercased word list of a snake_case or CamelCase identifier."""
    words = []
    for chunk in name.strip("_").split("_"):
        words.extend(w.lower() for w in WORD_SPLIT_RE.findall(chunk))
    return words


@register
class RawAddressParam(Rule):
    name = "raw-address-param"
    help = ("address-domain values cross public-header APIs as strong types "
            "(VirtAddr/Vpn/Vpbn/Ppn from common/types.h), never as raw "
            "std::uint64_t parameters or returns")
    include = ("src/*.h", "src/*/*.h", "tests/lint/fixtures/*.h")

    # A parameter or function whose name contains one of these words (after
    # snake/camel word-splitting) carries an address-domain value; "block" is
    # included for block numbers, but factor/count/shift words mark scalar
    # quantities that legitimately stay integral.
    DOMAIN_WORDS = {"va", "vpn", "vpbn", "ppn", "pfn", "block"}
    SCALAR_WORDS = {"factor", "count", "shift", "log2", "bits", "mask",
                    "size", "bytes", "len", "num", "misses", "hits"}
    CALL_PREV = {".", "->", "::", "(", ",", "=", "return", "!", "<", "&&",
                 "||", "case", "+", "-", "*", "/", "%", "&", "|", "^"}

    def check(self, sf, project):
        if not sf.rel.endswith((".h", ".hpp")):
            return []  # Intrinsically a header rule, even under --ignore-scope.
        findings = []
        toks = sf.tokens
        for i, t in enumerate(toks):
            if t.kind != "id" or i + 1 >= len(toks) or toks[i + 1].text != "(":
                continue
            prev = toks[i - 1] if i > 0 else None
            if prev is not None and prev.text in self.CALL_PREV:
                continue  # a call or expression, not a declaration
            close = _match_paren(toks, i + 1, "(", ")")
            self._check_params(sf, toks, i + 2, close, t.text, findings)
            self._check_return(sf, toks, i, t, findings)
        return findings

    def _check_params(self, sf, toks, start, close, fn_name, findings):
        k = start
        while k < close:
            if not self._is_u64(toks, k):
                k += 1
                continue
            # std::uint64_t NAME followed by ',' ')' or '=' is a parameter
            # declaration; anything else (casts, templates) is not.
            name_tok = toks[k + 1] if k + 1 < close else None
            after = toks[k + 2].text if k + 2 <= close else ""
            k += 1
            if name_tok is None or name_tok.kind != "id":
                continue
            if after not in (",", ")", "="):
                continue
            words = identifier_words(name_tok.text)
            if set(words) & self.DOMAIN_WORDS and not (set(words) & self.SCALAR_WORDS):
                findings.append(Finding(
                    self.name, sf, name_tok.line,
                    f"parameter '{name_tok.text}' of {fn_name}() carries an "
                    f"address-domain value as raw std::uint64_t; use the "
                    f"strong type from common/types.h"))

    def _check_return(self, sf, toks, name_index, name_tok, findings):
        j = name_index - 1
        prefix = []
        while j >= 0 and toks[j].text not in (";", "{", "}") and len(prefix) < 12:
            if toks[j].text == ":" and j > 0 and toks[j - 1].text in (
                    "public", "private", "protected"):
                break
            prefix.append(toks[j].text)
            j -= 1
        ids = [p for p in prefix if ID_RE.fullmatch(p)]
        if not ids or ids[0] != "uint64_t":
            return  # return type is not uint64_t
        words = identifier_words(name_tok.text)
        if set(words) & self.DOMAIN_WORDS and not (set(words) & self.SCALAR_WORDS):
            findings.append(Finding(
                self.name, sf, name_tok.line,
                f"{name_tok.text}() returns an address-domain value as raw "
                f"std::uint64_t; return the strong type from common/types.h"))

    @staticmethod
    def _is_u64(toks, k):
        return toks[k].kind == "id" and toks[k].text == "uint64_t"


# ---- guarded-by-coverage ---------------------------------------------------

@register
class GuardedByCoverage(Rule):
    name = "guarded-by-coverage"
    help = ("mutable data members of CPT_SHARED-marked classes must be "
            "CPT_GUARDED_BY, atomic, or const (DESIGN.md 'Concurrency "
            "contracts')")
    include = ("src/*", "tests/lint/fixtures/*")

    # Types that are their own synchronization story.
    ATOMIC_TYPES = {"atomic", "atomic_flag", "AtomicCell", "AtomicMappingWord"}
    # The capabilities themselves, and capability containers.
    CAPABILITY_TYPES = {"Mutex", "SharedMutex", "StripeSet"}
    GUARD_MACROS = {"CPT_GUARDED_BY", "CPT_PT_GUARDED_BY"}
    EXEMPT_SPECIFIERS = {"const", "constexpr", "static", "using", "typedef",
                         "friend", "enum"}

    def check(self, sf, project):
        findings = []
        toks = sf.tokens
        for i, t in enumerate(toks):
            if t.kind != "id" or t.text != "CPT_SHARED":
                continue
            prev = toks[i - 1].text if i > 0 else ""
            if prev not in ("class", "struct"):
                continue
            name = toks[i + 1].text if i + 1 < len(toks) else "?"
            j = i + 1
            while j < len(toks) and toks[j].text not in ("{", ";"):
                j += 1
            if j >= len(toks) or toks[j].text != "{":
                continue  # forward declaration
            close = _match_paren(toks, j, "{", "}")
            self._check_members(sf, toks, name, j, close, findings)
        return findings

    def _check_members(self, sf, toks, cls, open_idx, close, findings):
        stmt = []
        k = open_idx + 1
        while k < close:
            t = toks[k]
            if t.text in ("(", "["):
                stmt.append(t)
                k = _match_paren(toks, k, t.text, ")" if t.text == "(" else "]") + 1
                continue
            if t.text == "{":
                # Method body, nested type body, or brace initializer: the
                # contents are not this class's direct members.
                stmt.append(t)
                k = _match_paren(toks, k, "{", "}") + 1
                if k < close and toks[k].text != ";":
                    stmt = []  # brace-terminated definition (method body)
                continue
            if t.text == ";":
                self._check_stmt(sf, cls, stmt, findings)
                stmt = []
                k += 1
                continue
            stmt.append(t)
            k += 1

    def _check_stmt(self, sf, cls, stmt, findings):
        texts = [t.text for t in stmt]
        if not stmt or set(texts) & self.EXEMPT_SPECIFIERS:
            return
        if set(texts) & self.GUARD_MACROS:
            return
        name_tok = self._member_name(stmt)
        if name_tok is None:
            return
        type_texts = set(texts[:texts.index(name_tok.text)])
        if type_texts & (self.ATOMIC_TYPES | self.CAPABILITY_TYPES):
            return
        findings.append(Finding(
            self.name, sf, name_tok.line,
            f"mutable member '{name_tok.text}' of CPT_SHARED class {cls} is "
            f"neither CPT_GUARDED_BY, atomic, nor const"))

    @staticmethod
    def _member_name(stmt):
        """The data-member name: an id ending in '_' that is the last token
        or directly precedes its initializer ('=', '{', '[')."""
        for idx, t in enumerate(stmt):
            if t.kind != "id" or not t.text.endswith("_"):
                continue
            if idx == len(stmt) - 1:
                return t
            if stmt[idx + 1].text in ("=", "{", "["):
                return t
        return None


# ---- atomic-discipline -----------------------------------------------------

@register
class AtomicDiscipline(Rule):
    name = "atomic-discipline"
    help = ("explicit memory_order_* arguments need an adjacent justification "
            "comment, and a member accessed via the atomic API must not also "
            "be mutated with raw assignment in the same file")
    include = ("src/*", "tests/lint/fixtures/*")

    # std::atomic API plus the cpt wrappers (AtomicCell / AtomicMappingWord).
    ATOMIC_METHODS = {"load", "store", "exchange", "fetch_add", "fetch_sub",
                      "fetch_or", "fetch_and", "fetch_xor",
                      "compare_exchange_weak", "compare_exchange_strong",
                      "load_relaxed", "load_acquire", "store_relaxed",
                      "store_release", "fetch_add_relaxed", "fetch_sub_relaxed",
                      "FetchOrAttr", "CompareExchange"}
    MUTATORS = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
                "<<=", ">>=", "++", "--"}
    # A comment on the same line, or ending at most this many lines above,
    # justifies the order (call arguments often wrap one line).
    ADJACENT_LINES = 2

    def check(self, sf, project):
        findings = []
        toks = sf.tokens
        justified = set()
        for c in sf.comments:
            justified.update(range(c.line, c.end_line + self.ADJACENT_LINES + 1))
        flagged_lines = set()
        for t in toks:
            if t.kind != "id" or not t.text.startswith("memory_order"):
                continue
            if t.line in justified or t.line in flagged_lines:
                continue
            flagged_lines.add(t.line)
            findings.append(Finding(
                self.name, sf, t.line,
                f"explicit {t.text} argument without an adjacent justification "
                f"comment (state the pairing/ordering it relies on)"))
        findings.extend(self._check_mixing(sf, toks))
        return findings

    def _check_mixing(self, sf, toks):
        # Members (ids ending in '_') accessed through the atomic API ...
        atomic_members = set()
        for i, t in enumerate(toks):
            if (t.kind == "id" and t.text in self.ATOMIC_METHODS
                    and i > 1 and toks[i - 1].text == "."
                    and i + 1 < len(toks) and toks[i + 1].text == "("
                    and toks[i - 2].kind == "id" and toks[i - 2].text.endswith("_")):
                atomic_members.add(toks[i - 2].text)
        if not atomic_members:
            return []
        # ... must never also be written through plain assignment sugar.
        out = []
        for i, t in enumerate(toks):
            if t.kind != "id" or t.text not in atomic_members:
                continue
            nxt = toks[i + 1].text if i + 1 < len(toks) else ""
            prev = toks[i - 1].text if i > 0 else ""
            if nxt in self.MUTATORS or prev in ("++", "--"):
                out.append(Finding(
                    self.name, sf, t.line,
                    f"raw mutation of '{t.text}', which is accessed through "
                    f"the atomic API elsewhere in this file; use the atomic "
                    f"member functions for every access"))
        return out


# ---- raw-sync-primitive ----------------------------------------------------

@register
class RawSyncPrimitive(Rule):
    name = "raw-sync-primitive"
    help = ("no bare std::mutex/std::lock_guard/std::thread/pthread_* "
            "outside common/sync.h; use the annotated cpt::Mutex/MutexLock/"
            "ThreadGroup wrappers")
    include = ("src/*", "bench/*", "examples/*", "tests/lint/fixtures/*")
    # The wrappers themselves are built on the std primitives.
    exclude = ("src/common/sync.h",)

    BANNED_STD = {"mutex", "shared_mutex", "recursive_mutex", "timed_mutex",
                  "recursive_timed_mutex", "lock_guard", "unique_lock",
                  "scoped_lock", "shared_lock", "condition_variable",
                  "condition_variable_any", "once_flag", "call_once",
                  # Bare threads bypass the join-on-destruct discipline and
                  # atomic_flag the AtomicCell telemetry; use cpt::ThreadGroup
                  # and cpt::AtomicCell (common/sync.h).
                  "thread", "jthread", "atomic_flag"}

    def check(self, sf, project):
        findings = []
        toks = sf.tokens
        for i, t in enumerate(toks):
            if t.kind != "id":
                continue
            if t.text.startswith("pthread_"):
                findings.append(Finding(
                    self.name, sf, t.line,
                    f"raw {t.text}; use the annotated wrappers from "
                    f"common/sync.h (cpt::Mutex / cpt::MutexLock)"))
                continue
            prev = toks[i - 1].text if i > 0 else ""
            prev2 = toks[i - 2].text if i > 1 else ""
            if t.text in self.BANNED_STD and prev == "::" and prev2 == "std":
                findings.append(Finding(
                    self.name, sf, t.line,
                    f"bare std::{t.text}; use the annotated wrappers from "
                    f"common/sync.h (cpt::Mutex / cpt::MutexLock) so Clang "
                    f"TSA sees the capability"))
        return findings


# ---- hot-path rules (whole-program; see HotAnalysis above) -----------------

class HotPathRule(Rule):
    """Shared scaffolding: iterate hot-reachable definitions in one file."""
    include = HOT_GRAPH_GLOBS
    exclude = HOT_BOUNDARY_GLOBS

    def check(self, sf, project):
        hot = project.ensure_hot_analysis()
        findings = []
        toks = sf.tokens
        for fd in hot.hot_defs_in(sf.rel):
            self.check_hot_body(sf, toks, fd, hot, findings)
        return findings

    def check_hot_body(self, sf, toks, fd, hot, findings):
        raise NotImplementedError

    @staticmethod
    def where(fd):
        return (f"in {fd.qual}(), reachable from a CPT_HOT root at call "
                f"depth {fd.hot_depth}")


@register
class HotNoAlloc(HotPathRule):
    name = "hot-no-alloc"
    help = ("no heap allocation reachable from a CPT_HOT root: no new/"
            "make_unique, no unreserved push_back/resize, no string "
            "formatting or iostream (pair with cpt::HotPathScope, which "
            "proves the same property dynamically)")

    ALLOC_CALLS = {"malloc", "calloc", "realloc", "strdup",
                   "make_unique", "make_shared"}
    GROWTH_METHODS = {"push_back", "emplace_back", "resize"}
    FORMAT_IDS = {"to_string", "format", "stringstream", "ostringstream",
                  "istringstream"}
    IOSTREAM_IDS = {"cout", "cerr", "clog", "endl"}

    def check_hot_body(self, sf, toks, fd, hot, findings):
        for i in range(fd.start + 1, fd.end):
            t = toks[i]
            if t.kind != "id":
                continue
            prev = toks[i - 1].text if i > 0 else ""
            nxt = toks[i + 1].text if i + 1 < len(toks) else ""
            if t.text == "new":
                findings.append(Finding(
                    self.name, sf, t.line,
                    f"operator new {self.where(fd)}; hot paths must not "
                    f"allocate — hoist the allocation to setup or reserve "
                    f"capacity up front"))
            elif t.text in self.ALLOC_CALLS and nxt == "(":
                findings.append(Finding(
                    self.name, sf, t.line,
                    f"{t.text}() {self.where(fd)}; hot paths must not "
                    f"allocate"))
            elif (t.text in self.GROWTH_METHODS and prev in (".", "->")
                    and nxt == "(" and i >= 2):
                # Receiver = identifier before '.'; step back over a
                # subscript or call group (free_lists_[k].push_back).
                j = i - 2
                if toks[j].text == "]":
                    j = _match_paren_back(toks, j, "[", "]") - 1
                elif toks[j].text == ")":
                    j = _match_paren_back(toks, j) - 1
                recv = toks[j].text if j >= 0 else ""
                if recv in hot.reserved_receivers:
                    continue  # capacity provisioned by a reserve() call
                findings.append(Finding(
                    self.name, sf, t.line,
                    f"{recv}.{t.text}() {self.where(fd)} with no reserve() "
                    f"anywhere for '{recv}'; pre-reserve so steady state "
                    f"never reallocates"))
            elif t.text in self.FORMAT_IDS and prev != "->":
                findings.append(Finding(
                    self.name, sf, t.line,
                    f"string formatting ({t.text}) {self.where(fd)}; format "
                    f"in cold reporting code, not per reference"))
            elif t.text in self.IOSTREAM_IDS:
                findings.append(Finding(
                    self.name, sf, t.line,
                    f"iostream ({t.text}) {self.where(fd)}; hot paths do "
                    f"not do I/O"))


@register
class HotNoThrow(HotPathRule):
    name = "hot-no-throw"
    help = ("no throw and no throwing std calls (at/value/stoi...) reachable "
            "from a CPT_HOT root; hot-path failures are CPT_CHECK aborts, "
            "not exceptions")

    # Member calls that throw on the failure path.
    THROWING_MEMBERS = {"at", "value"}
    # Free std conversions that throw on bad input.
    THROWING_CALLS = {"stoi", "stol", "stoll", "stoul", "stoull",
                      "stof", "stod", "stold"}

    def check_hot_body(self, sf, toks, fd, hot, findings):
        for i in range(fd.start + 1, fd.end):
            t = toks[i]
            if t.kind != "id":
                continue
            prev = toks[i - 1].text if i > 0 else ""
            nxt = toks[i + 1].text if i + 1 < len(toks) else ""
            if t.text == "throw":
                findings.append(Finding(
                    self.name, sf, t.line,
                    f"throw {self.where(fd)}; use CPT_CHECK/CPT_DCHECK — "
                    f"the replay loop is noexcept territory"))
            elif (t.text in self.THROWING_MEMBERS and prev in (".", "->")
                    and nxt == "("):
                findings.append(Finding(
                    self.name, sf, t.line,
                    f".{t.text}() {self.where(fd)} throws on the failure "
                    f"path; use operator[]/operator* after a CPT_DCHECK"))
            elif t.text in self.THROWING_CALLS and nxt == "(":
                findings.append(Finding(
                    self.name, sf, t.line,
                    f"std::{t.text}() {self.where(fd)} throws on bad input; "
                    f"parse in cold setup code"))


@register
class HotLockDiscipline(HotPathRule):
    name = "hot-lock-discipline"
    help = ("locks reachable from a CPT_HOT root must be cpt:: wrappers, "
            "carry an adjacent '// hot-lock:' justification, and live in the "
            "growth-gated ledger; bare blocking calls never pass")

    # The wrapper layer itself is the sanctioned implementation — the
    # discipline governs *use sites* of MutexLock and friends, not the
    # mu_.lock() calls inside the wrappers they delegate to.  Kept in sync
    # with the ledger via HotAnalysis.LOCK_IMPL_FILES.
    exclude = HOT_BOUNDARY_GLOBS + HotAnalysis.LOCK_IMPL_FILES

    # Never acceptable on a hot path, justified or not.
    BARE_BLOCKING = {"sleep", "usleep", "nanosleep", "sleep_for",
                     "sleep_until", "join", "wait", "wait_for", "wait_until"}
    ADJACENT_LINES = 2

    def check_hot_body(self, sf, toks, fd, hot, findings):
        justified = set()
        for c in sf.comments:
            if "hot-lock:" in c.text:
                justified.update(range(c.line, c.end_line + self.ADJACENT_LINES + 1))
        for i in range(fd.start + 1, fd.end):
            t = toks[i]
            if t.kind != "id":
                continue
            prev = toks[i - 1].text if i > 0 else ""
            nxt = toks[i + 1].text if i + 1 < len(toks) else ""
            if (t.text in self.BARE_BLOCKING and nxt == "("):
                findings.append(Finding(
                    self.name, sf, t.line,
                    f"blocking call {t.text}() {self.where(fd)}; a hot path "
                    f"never sleeps or joins"))
            elif t.text in HotAnalysis.LOCK_WRAPPERS or (
                    t.text in HotAnalysis.LOCK_METHODS and prev in (".", "->")
                    and nxt == "("):
                if t.line in justified:
                    continue  # budgeted: ledger growth-gates these sites
                findings.append(Finding(
                    self.name, sf, t.line,
                    f"lock acquisition ({t.text}) {self.where(fd)} without "
                    f"an adjacent '// hot-lock:' justification; state why "
                    f"the critical section is bounded (the site is budgeted "
                    f"in tools/hotpath_debt.json either way)"))


# ---------------------------------------------------------------------------
# Memory-layout rules (see the layout-model section above)
# ---------------------------------------------------------------------------

# Member-name words that mark a per-thread-sharded array or container.
SHARD_WORDS = {"stripe", "stripes", "shard", "shards"}
# Wrappers peeled to find a sharded container's element type.
SHARD_WRAPPERS = {"array", "vector", "unique_ptr", "shared_ptr"}


class LayoutRule(Rule):
    """Shared scope gate: layout rules only ever see src/ and the layout_*
    fixture family — even under --ignore-scope — so the historical fixture
    goldens cannot grow layout findings."""

    include = LAYOUT_SCOPE_GLOBS + (LAYOUT_FIXTURE_PREFIX + "*",)

    def check(self, sf, project):
        if not _layout_scope(sf.rel):
            return []
        return self.check_layout(sf, project)

    def check_layout(self, sf, project):
        raise NotImplementedError


@register
class FalseSharing(LayoutRule):
    name = "false-sharing"
    help = ("per-stripe/per-shard array elements must be CPT_CACHE_ALIGNED "
            "(>= one destructive-interference line), and inside a CPT_SHARED "
            "class no atomic may share a host cache line with a lock or a "
            "field guarded by a different capability")

    def _shard_element(self, la, m, file, classes):
        """The element type tokens of a sharded container member, peeling
        array/vector/unique_ptr/shared_ptr wrappers; None if not sharded."""
        if not set(identifier_words(m.name)) & SHARD_WORDS:
            return None
        toks = m.type_toks
        if m.extents:
            return toks  # C array: the declared type is the element
        peeled = False
        while True:
            base, _, args = _split_template(toks)
            if base in SHARD_WRAPPERS and args:
                toks = args[0]
                while toks and toks[-1].text in ("[", "]"):
                    toks = toks[:-1]  # unique_ptr<T[]>
                peeled = True
                continue
            # A scalar named shard_/lock_stripes is an index or a count,
            # not per-shard storage; only real containers false-share.
            return toks if peeled else None

    def check_layout(self, sf, project):
        la = project.ensure_layout_analysis()
        line_bytes = la.cache_line_bytes()
        findings = []
        for qual in la.quals_in(sf.rel):
            raw = la.structs[qual]
            # (A) sharded containers: elements below a line false-share.
            for m in raw.members:
                elem = self._shard_element(la, m, raw.file,
                                           (raw.name, raw.outer))
                if elem is None:
                    continue
                etexts = [t.text for t in elem]
                if any(t in ("*", "&") for t in etexts):
                    continue  # an array of pointers shares nothing itself
                aligned = False
                enames = [t for t in etexts if t not in STRIP_TYPE_TOKENS
                          and t != "std"]
                for name in enames:
                    try:
                        eq = la.lookup_struct(name, raw.file,
                                              (raw.name, raw.outer))
                    except LayoutUnresolved:
                        eq = None
                    if eq is None:
                        continue
                    eraw = la.structs[eq]
                    elay = la.layouts.get(eq)
                    if (eraw.alignas_req >= line_bytes
                            or (elay is not None
                                and elay.align >= line_bytes)):
                        aligned = True
                    break
                if not aligned:
                    elem_str = " ".join(etexts)
                    findings.append(Finding(
                        self.name, sf, m.line,
                        f"per-shard member '{m.name}' of {qual} has "
                        f"elements of type '{elem_str}' not aligned to a "
                        f"destructive-interference line; mark the element "
                        f"type CPT_CACHE_ALIGNED (common/hotpath.h) so "
                        f"adjacent shards cannot false-share"))
            # (B) CPT_SHARED classes: atomics vs locks / foreign guards on
            # one host line.  Needs a fully resolved layout.
            if not raw.shared:
                continue
            lay = la.layouts.get(qual)
            if lay is None:
                continue
            lines = {}
            for f in lay.fields:
                for ln in f.host_lines():
                    lines.setdefault(ln, []).append(f)
            reported = set()
            for ln, fs in sorted(lines.items()):
                for i, f1 in enumerate(fs):
                    for f2 in fs[i + 1:]:
                        pair = (f1.name, f2.name)
                        if pair in reported:
                            continue
                        hit = None
                        if (f1.atomic and f2.capability) or (
                                f2.atomic and f1.capability):
                            hit = "an atomic and a lock"
                        elif (f1.guard and f2.guard
                              and f1.guard != f2.guard):
                            hit = ("fields guarded by different "
                                   "capabilities")
                        elif (f1.atomic and f2.atomic
                              and f1.guard != f2.guard):
                            hit = "independently-updated atomics"
                        if hit is None:
                            continue
                        reported.add(pair)
                        findings.append(Finding(
                            self.name, sf, max(f1.line, f2.line),
                            f"{hit} share a {HOST_LINE_BYTES}-byte line in "
                            f"CPT_SHARED {qual}: '{f1.name}' (offset "
                            f"{f1.offset}) and '{f2.name}' (offset "
                            f"{f2.offset}); separate them with "
                            f"CPT_CACHE_ALIGNED or regroup the fields"))
        return findings


@register
class LayoutLedger(LayoutRule):
    name = "layout-ledger"
    help = ("every struct reachable from a CPT_HOT function must match the "
            "committed tools/layout_ledger.json {size, align, field "
            "offsets}; growth fails with a ratchet notice and --write-layout "
            "regenerates; literal sizeof/alignof static_asserts are "
            "cross-checked against the model")

    exclude = HOT_BOUNDARY_GLOBS

    def check_layout(self, sf, project):
        la = project.ensure_layout_analysis()
        ledger = project.load_layout_ledger()
        findings = []
        quals = la.quals_in(sf.rel)
        hot = la.hot_struct_quals(project)
        entries = (ledger or {}).get("structs", {})
        for qual in quals:
            lay = la.layouts.get(qual)
            if lay is None:
                continue
            findings.extend(self._check_asserts(sf, la, qual, lay))
            if qual not in hot or not sf.rel.startswith("src/"):
                continue
            if _boundary_rel(sf.rel):
                continue
            entry = entries.get(qual)
            if entry is None:
                findings.append(Finding(
                    self.name, sf, lay.line,
                    f"hot-reachable struct {qual} is missing from the "
                    f"layout ledger; run cpt_lint.py --write-layout and "
                    f"commit tools/layout_ledger.json"))
                continue
            if lay.size > entry["size"]:
                findings.append(Finding(
                    self.name, sf, lay.line,
                    f"{qual} grew from {entry['size']} to {lay.size} bytes "
                    f"(ratchet notice: every hot instance now touches "
                    f"{(lay.size + HOST_LINE_BYTES - 1) // HOST_LINE_BYTES} "
                    f"host lines); if intended, re-run --write-layout and "
                    f"commit the new ledger"))
            elif lay.size < entry["size"]:
                findings.append(Finding(
                    self.name, sf, lay.line,
                    f"ledger entry for {qual} is stale ({entry['size']} "
                    f"bytes committed, {lay.size} modeled); re-run "
                    f"--write-layout"))
            if lay.align != entry["align"]:
                findings.append(Finding(
                    self.name, sf, lay.line,
                    f"{qual} alignment changed from {entry['align']} to "
                    f"{lay.align}; re-run --write-layout"))
            for f in lay.fields:
                want = entry["fields"].get(f.name)
                if want is None:
                    findings.append(Finding(
                        self.name, sf, f.line,
                        f"field {qual}::{f.name} is not in the layout "
                        f"ledger; re-run --write-layout"))
                elif want != f.offset:
                    old_line = want // HOST_LINE_BYTES
                    new_line = f.offset // HOST_LINE_BYTES
                    crossed = ("" if old_line == new_line else
                               f" and moved from host line {old_line} to "
                               f"{new_line}")
                    findings.append(Finding(
                        self.name, sf, f.line,
                        f"field {qual}::{f.name} moved from offset {want} "
                        f"to {f.offset}{crossed}; re-run --write-layout if "
                        f"intended"))
        return findings

    def _check_asserts(self, sf, la, qual, lay):
        """Literal static_assert(sizeof(X) == N) claims must match the
        model, both operand orders."""
        findings = []
        toks = sf.tokens
        raw = la.structs[qual]
        for i, t in enumerate(toks):
            if t.kind != "id" or t.text != "static_assert":
                continue
            if i + 1 >= len(toks) or toks[i + 1].text != "(":
                continue
            close = _match_paren(toks, i + 1, "(", ")")
            inner = toks[i + 2:close]
            for op, value in (("sizeof", lay.size), ("alignof", lay.align)):
                got = self._assert_claim(inner, op, raw)
                if got is not None and got != value:
                    findings.append(Finding(
                        self.name, sf, t.line,
                        f"static_assert pins {op}({qual}) to {got} but the "
                        f"layout model computes {value}; fix the assert or "
                        f"the struct"))
        return findings

    @staticmethod
    def _assert_claim(inner, op, raw):
        """The literal N in `op(Name) == N` / `N == op(Name)`, else None."""
        texts = [t.text for t in inner]
        for j, txt in enumerate(texts):
            if txt != op or j + 1 >= len(texts) or texts[j + 1] != "(":
                continue
            close = _match_paren(inner, j + 1, "(", ")")
            # For a qualified argument (`sizeof(Outer::Inner)`) the claim is
            # about the *last* identifier, not the enclosing class.
            names = [x.text for x in inner[j + 2:close] if x.kind == "id"]
            if not names or names[-1] != raw.name:
                continue
            # rhs:  op(Name) == N
            if close + 2 < len(inner) and texts[close + 1] == "==" \
                    and inner[close + 2].kind == "num":
                return _int_literal(inner[close + 2].text)
            # lhs:  N == op(Name)
            if j >= 2 and texts[j - 1] == "==" and inner[j - 2].kind == "num":
                return _int_literal(inner[j - 2].text)
        return None


@register
class ModelTruthSync(LayoutRule):
    name = "model-truth-sync"
    help = ("the line-size and node-span constants CacheTouchModel charges "
            "per walk step must equal the ledger-derived lines-per-node for "
            "each PT organization's node struct, so simulated 'cache lines "
            "per miss' provably describes the compiled structs")

    def check_layout(self, sf, project):
        if sf.rel != MODEL_TRUTH_ANCHOR_FILE:
            return []
        la = project.ensure_layout_analysis()
        ledger = project.load_layout_ledger()
        findings = []
        if ledger is None:
            return [Finding(
                self.name, sf, 1,
                f"no layout ledger at tools/layout_ledger.json; run "
                f"cpt_lint.py --write-layout to pin the model-truth table")]
        try:
            sim_line = la.sim_line_bytes()
        except LayoutUnresolved as exc:
            return [Finding(
                self.name, sf, 1,
                f"cannot resolve {SIM_LINE_CONST}: {exc}")]
        if sim_line & (sim_line - 1) or sim_line <= 0:
            findings.append(Finding(
                self.name, sf, 1,
                f"{SIM_LINE_CONST} = {sim_line} is not a power of two"))
        if ledger.get("sim_line_bytes") != sim_line:
            findings.append(Finding(
                self.name, sf, 1,
                f"{SIM_LINE_CONST} = {sim_line} but the ledger pins "
                f"{ledger.get('sim_line_bytes')}; re-run --write-layout"))
        host = la.defines.get("CPT_CACHE_LINE")
        if host is not None and host != ledger.get("host_line_bytes"):
            findings.append(Finding(
                self.name, sf, 1,
                f"CPT_CACHE_LINE = {host} but the ledger pins "
                f"{ledger.get('host_line_bytes')} host bytes"))
        for name in ("MappingWord", "AtomicMappingWord"):
            for qual in la.by_name.get(name, ()):
                lay = la.layouts.get(qual)
                if lay is not None and lay.size != ledger.get("word_bytes"):
                    findings.append(Finding(
                        self.name, sf, 1,
                        f"{qual} is {lay.size} bytes but the model charges "
                        f"{ledger.get('word_bytes')}-byte mapping words"))
        payload = layout_ledger_payload(project)
        committed = ledger.get("model_truth", {})
        current = payload["model_truth"]
        for key in sorted(set(committed) | set(current)):
            want, got = committed.get(key), current.get(key)
            if want is None:
                findings.append(Finding(
                    self.name, sf, 1,
                    f"model-truth anchor '{key}' ({got['file']}:"
                    f"{got['function']}) is not in the ledger; re-run "
                    f"--write-layout"))
            elif got is None:
                findings.append(Finding(
                    self.name, sf, 1,
                    f"ledger model-truth entry '{key}' no longer resolves "
                    f"(moved accounting function or node struct?); re-run "
                    f"--write-layout"))
            elif (want["accounting_bytes"] != got["accounting_bytes"]
                  or want["lines_per_access"] != got["lines_per_access"]
                  or want["struct_size"] != got["struct_size"]):
                findings.append(Finding(
                    self.name, sf, 1,
                    f"model-truth drift for '{key}': {got['file']}:"
                    f"{got['function']} charges {got['accounting_bytes']} "
                    f"bytes/step ({got['lines_per_access']} lines at "
                    f"{sim_line}B) over a {got['struct_size']}-byte "
                    f"{got['node']}, but the ledger pins "
                    f"{want['accounting_bytes']} bytes "
                    f"({want['lines_per_access']} lines, "
                    f"{want['struct_size']}-byte struct); reconcile the "
                    f"accounting constants with the struct, then re-run "
                    f"--write-layout"))
        stale = sorted(set(ledger.get("structs") or {})
                       - set(payload["structs"]))
        for qual in stale:
            findings.append(Finding(
                self.name, sf, 1,
                f"ledger struct entry '{qual}' no longer resolves or is no "
                f"longer hot-reachable; re-run --write-layout"))
        return findings


# ---------------------------------------------------------------------------
# Enum export (the single source of truth for Python-side validators)
# ---------------------------------------------------------------------------

def export_enums_data(project):
    enums = {}
    for name, defs in sorted(project.enums.items()):
        d = defs[0]
        entry = {
            "file": d.file,
            "line": d.line,
            "enumerators": d.enumerators,
        }
        count_name = f"k{name}Count"
        if count_name in project.count_consts:
            entry["count_constant"] = count_name
            entry["count"] = project.count_consts[count_name]
        table = next((t for t in project.name_tables if t.name == f"k{name}Names"), None)
        if table is not None:
            entry["names"] = table.strings
            entry["names_table"] = {"name": table.name, "file": table.file,
                                    "line": table.line}
        enums[name] = entry
    return {"schema": "cpt-lint-enums", "version": 1, "enums": enums}


def export_enums(root=REPO_ROOT, roots=("src",)):
    """Module API for check_bench_json.py and the agreement tests."""
    files = collect_source_files(root, roots=roots)
    return export_enums_data(Project(files))


def export_layout(root=REPO_ROOT):
    """Module API for layout_sync_check.py: the full layout report."""
    files = collect_source_files(root, roots=("src",))
    return layout_report(Project(files))


# ---------------------------------------------------------------------------
# SARIF export (CI PR annotations)
# ---------------------------------------------------------------------------

SARIF_SCHEMA = ("https://json.schemastore.org/sarif-2.1.0.json")


def sarif_payload(findings):
    """SARIF 2.1.0 for every rule's findings, with the same line-free
    fingerprints the baseline uses so annotations survive rebases."""
    return {
        "$schema": SARIF_SCHEMA,
        "version": "2.1.0",
        "runs": [{
            "tool": {
                "driver": {
                    "name": "cpt-lint",
                    "informationUri":
                        "tools/cpt_lint.py (project-local linter)",
                    "rules": [
                        {"id": name,
                         "shortDescription": {"text": rule.help}}
                        for name, rule in sorted(RULES.items())
                    ],
                },
            },
            "results": [
                {
                    "ruleId": f.rule,
                    "level": "error",
                    "message": {"text": f.message},
                    "locations": [{
                        "physicalLocation": {
                            "artifactLocation": {"uri": f.path},
                            "region": {"startLine": max(f.line, 1)},
                        },
                    }],
                    "partialFingerprints": {
                        "cptLintFingerprint/v1": f.fingerprint,
                    },
                }
                for f in findings
            ],
        }],
    }


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

def collect_source_files(root=REPO_ROOT, roots=LINT_ROOTS):
    out = []
    root = Path(root)
    for sub in roots:
        base = root / sub
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix not in SOURCE_SUFFIXES or not path.is_file():
                continue
            rel = path.relative_to(root).as_posix()
            if any(fnmatch.fnmatch(rel, g) for g in EXCLUDED_GLOBS):
                continue
            out.append(SourceFile(path, root=root))
    return out


def _lint_one_file(sf, project, rule_names, ignore_scope):
    """Findings plus per-rule wall time (seconds) for one file."""
    findings = []
    timing = Counter()
    for name, rule in RULES.items():
        if rule_names is not None and name not in rule_names:
            continue
        if not ignore_scope and not rule.applies(sf.rel):
            continue
        t0 = time.perf_counter()
        for f in rule.check(sf, project):
            if not sf.suppressed(f.rule, f.line):
                findings.append(f)
        timing[name] += time.perf_counter() - t0
    return findings, timing


# Worker context for --jobs: set before forking so children inherit the
# parsed files and project instead of repickling them per task.
_FORK_CTX = None


def _lint_file_at(index):
    files, project, rule_names, ignore_scope = _FORK_CTX
    return _lint_one_file(files[index], project, rule_names, ignore_scope)


HOT_RULES = ("hot-no-alloc", "hot-no-throw", "hot-lock-discipline")
LAYOUT_RULES = ("false-sharing", "layout-ledger", "model-truth-sync")


def run_rules(files, project, rule_names=None, ignore_scope=False, jobs=1,
              rule_timing=None):
    findings = []
    timing = Counter()
    if rule_names is None or set(rule_names) & set(HOT_RULES + LAYOUT_RULES):
        # Build the call graph (and the per-file function-span caches it
        # fills in) before any fork, so --jobs workers inherit one shared
        # analysis instead of recomputing it per child.
        project.ensure_hot_analysis()
    if rule_names is None or set(rule_names) & set(LAYOUT_RULES):
        # Same for the struct-layout model (which also leans on the hot
        # analysis for the hot-reachable struct set).
        project.ensure_layout_analysis()
    if jobs > 1 and len(files) > 1 and "fork" in multiprocessing.get_all_start_methods():
        global _FORK_CTX
        _FORK_CTX = (files, project, rule_names, ignore_scope)
        try:
            with multiprocessing.get_context("fork").Pool(min(jobs, len(files))) as pool:
                for file_findings, file_timing in pool.map(
                        _lint_file_at, range(len(files))):
                    findings.extend(file_findings)
                    timing.update(file_timing)
        finally:
            _FORK_CTX = None
    else:
        for sf in files:
            file_findings, file_timing = _lint_one_file(
                sf, project, rule_names, ignore_scope)
            findings.extend(file_findings)
            timing.update(file_timing)
    if rule_timing is not None:
        # Shared-infrastructure entries alongside the per-rule ones: the
        # one-shot tokenize/function-span cost per file, and the one-shot
        # whole-program call-graph build.  Rules that reuse the caches show
        # up cheap here because the cost is accounted once, not per rule.
        timing["file-parse"] += sum(sf.parse_seconds for sf in files)
        timing["hot-call-graph"] += project.hot_prepare_seconds
        timing["layout-model"] += project.layout_prepare_seconds
        rule_timing.update(timing)
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


def load_baseline(path):
    if path is None or not Path(path).exists():
        return Counter()
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    return Counter(data.get("findings", {}))


def write_baseline(path, findings):
    counts = Counter(f.fingerprint for f in findings)
    payload = {"schema": "cpt-lint-baseline", "version": 1,
               "findings": dict(sorted(counts.items()))}
    Path(path).write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def split_by_baseline(findings, baseline):
    """Returns (new_findings, grandfathered, stale_fingerprints)."""
    remaining = Counter(baseline)
    new, old = [], []
    for f in findings:
        if remaining.get(f.fingerprint, 0) > 0:
            remaining[f.fingerprint] -= 1
            old.append(f)
        else:
            new.append(f)
    stale = sorted(fp for fp, n in remaining.items() if n > 0)
    return new, old, stale


def apply_fixes(findings, root=REPO_ROOT):
    by_path = {}
    for f in findings:
        for span in f.fixes:
            by_path.setdefault(f.path, []).append(span)
    fixed_files = 0
    for rel, spans in by_path.items():
        path = Path(root) / rel
        text = path.read_text(encoding="utf-8")
        spans.sort(key=lambda s: s[0], reverse=True)
        last_start = None
        for start, end, repl in spans:
            if last_start is not None and end > last_start:
                continue  # overlapping fix; first one wins
            text = text[:start] + repl + text[end:]
            last_start = start
        path.write_text(text, encoding="utf-8")
        fixed_files += 1
    return fixed_files


def print_human(findings, files_by_rel, stale):
    for f in findings:
        print(f"{f.path}:{f.line}: [{f.rule}] {f.message}")
        sf = files_by_rel.get(f.path)
        if sf is not None:
            lines = sf.text.splitlines()
            if 0 < f.line <= len(lines):
                src = lines[f.line - 1].rstrip()
                if f.fixes:
                    print(f"  - {src}")
                    fixed = apply_spans_to_line(sf, f)
                    if fixed is not None:
                        print(f"  + {fixed}")
                else:
                    print(f"    {src}")
    for fp in stale:
        print(f"stale baseline entry (fixed? run --write-baseline): {fp}")


def apply_spans_to_line(sf, finding):
    """Renders the post-fix version of the finding's first fixed line."""
    spans = [s for s in finding.fixes]
    if not spans:
        return None
    text = sf.text
    spans.sort(key=lambda s: s[0], reverse=True)
    for start, end, repl in spans:
        text = text[:start] + repl + text[end:]
    lines = text.splitlines()
    idx = min(finding.line - 1, len(lines) - 1)
    return lines[idx].rstrip() if 0 <= idx < len(lines) else None


def main(argv=None):
    """Exit codes: 0 clean, 1 findings/debt growth, 2 internal error.

    Anything that stops the lint itself — an unreadable input, undecodable
    bytes, a malformed baseline/ledger — is an internal error (2), distinct
    from "the tree has findings" (1) so CI scripts and pre-commit hooks can
    tell a broken run from a failing one.  (argparse uses 2 for usage
    errors already, consistent with this.)
    """
    try:
        return _main(argv)
    except (OSError, UnicodeDecodeError, json.JSONDecodeError) as e:
        print(f"cpt-lint: internal error: {e}", file=sys.stderr)
        return 2


def _main(argv=None):
    parser = argparse.ArgumentParser(
        description="project-specific static analysis for the cpt simulator",
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("paths", nargs="*", help="files to lint (default: --all)")
    parser.add_argument("--all", action="store_true",
                        help=f"lint every source file under {', '.join(LINT_ROOTS)}/")
    parser.add_argument("--json", action="store_true", help="machine-readable output")
    parser.add_argument("--fix", action="store_true",
                        help="apply fixes for mechanical rules, then report the rest")
    parser.add_argument("--baseline", default=str(DEFAULT_BASELINE),
                        help="baseline file of grandfathered findings")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore the baseline (report everything)")
    parser.add_argument("--write-baseline", action="store_true",
                        help="rewrite the baseline from current findings")
    parser.add_argument("--export-enums", action="store_true",
                        help="dump enums/name tables under src/ as JSON and exit")
    parser.add_argument("--layout-ledger", default=str(DEFAULT_LAYOUT_LEDGER),
                        help="compiled-truth layout ledger file")
    parser.add_argument("--write-layout", action="store_true",
                        help="regenerate the layout ledger and exit")
    parser.add_argument("--layout-report", action="store_true",
                        help="print the layout-model report as JSON and exit")
    parser.add_argument("--export-layout", action="store_true",
                        help="alias of --layout-report (module-API parity)")
    parser.add_argument("--sarif", metavar="PATH",
                        help="also write new findings (all rules) as SARIF 2.1.0")
    parser.add_argument("--hot-debt", default=str(DEFAULT_HOT_DEBT),
                        help="devirtualization-debt ledger file")
    parser.add_argument("--write-hot-debt", action="store_true",
                        help="regenerate the hot-path debt ledger and exit")
    parser.add_argument("--check-hot-debt", action="store_true",
                        help="gate the debt ledger against growth and exit")
    parser.add_argument("--hot-debt-report", action="store_true",
                        help="print the detailed debt report as JSON and exit")
    parser.add_argument("--list-rules", action="store_true")
    parser.add_argument("--rules", help="comma-separated subset of rules to run")
    parser.add_argument("--ignore-scope", action="store_true",
                        help="run every rule on every file (fixture tests)")
    parser.add_argument("--root", default=str(REPO_ROOT),
                        help="repository root (for relative paths and guards)")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="lint files with N processes (0 = cpu count)")
    args = parser.parse_args(argv)
    if args.jobs == 0:
        args.jobs = os.cpu_count() or 1

    if args.list_rules:
        for name, rule in sorted(RULES.items()):
            print(f"{name}: {rule.help}")
        return 0

    root = Path(args.root).resolve()
    if args.export_enums:
        print(json.dumps(export_enums(root), indent=2))
        return 0

    if args.paths:
        files = [SourceFile(p, root=root) for p in args.paths]
        # Enum/name-table context always comes from the full src tree, so
        # linting one .cc still knows the enums its switches dispatch over.
        seen = {sf.rel for sf in files}
        context = files + [sf for sf in collect_source_files(root, roots=("src",))
                           if sf.rel not in seen]
        project = Project(context)
    else:
        files = collect_source_files(root)
        project = Project(files)
    project.layout_ledger_path = args.layout_ledger
    rule_names = set(args.rules.split(",")) if args.rules else None
    if rule_names is not None:
        unknown = rule_names - RULES.keys()
        if unknown:
            parser.error(f"unknown rules: {', '.join(sorted(unknown))}")

    if args.layout_report or args.export_layout:
        print(json.dumps(layout_report(project), indent=2))
        return 0
    if args.write_layout:
        payload = layout_ledger_payload(project)
        Path(args.layout_ledger).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8")
        project._layout_ledger = False  # reload on next rule run
        print(f"layout ledger written: {len(payload['structs'])} structs, "
              f"{len(payload['model_truth'])} model-truth anchors -> "
              f"{args.layout_ledger}")
        return 0

    if args.write_hot_debt or args.check_hot_debt or args.hot_debt_report:
        analysis = project.ensure_hot_analysis()
        if args.hot_debt_report:
            print(json.dumps(debt_report(analysis), indent=2))
            return 0
        if args.write_hot_debt:
            payload = debt_payload(analysis)
            Path(args.hot_debt).write_text(
                json.dumps(payload, indent=2) + "\n", encoding="utf-8")
            print(f"hot-debt ledger written: "
                  f"{sum(payload['virtual_sites'].values())} virtual call "
                  f"sites, {sum(payload['hot_lock_sites'].values())} lock "
                  f"sites -> {args.hot_debt}")
            return 0
        return check_debt(analysis, args.hot_debt)

    rule_timing = Counter()
    findings = run_rules(files, project, rule_names, args.ignore_scope,
                         jobs=args.jobs, rule_timing=rule_timing)
    baseline = Counter() if args.no_baseline else load_baseline(args.baseline)
    new, grandfathered, stale = split_by_baseline(findings, baseline)

    if args.write_baseline:
        write_baseline(args.baseline, findings)
        print(f"baseline written: {len(findings)} findings -> {args.baseline}")
        return 0

    if args.fix and new:
        fixable = [f for f in new if f.fixes]
        if fixable:
            n = apply_fixes(fixable, root=root)
            print(f"fixed {sum(len(f.fixes) for f in fixable)} spans in {n} files")
            # Re-lint so the report reflects the post-fix tree.
            files = [SourceFile(root / sf.rel, root=root) for sf in files]
            project = Project(files)
            rule_timing = Counter()
            findings = run_rules(files, project, rule_names, args.ignore_scope,
                                 jobs=args.jobs, rule_timing=rule_timing)
            new, grandfathered, stale = split_by_baseline(findings, baseline)

    if args.sarif:
        Path(args.sarif).write_text(
            json.dumps(sarif_payload(new), indent=2) + "\n",
            encoding="utf-8")

    if args.json:
        print(json.dumps({
            "schema": "cpt-lint-report", "version": 1,
            "checked_files": len(files),
            "findings": [f.to_json() for f in new],
            "grandfathered": len(grandfathered),
            "stale_baseline": stale,
            "rule_timing_ms": {name: round(secs * 1000.0, 3)
                               for name, secs in sorted(rule_timing.items())},
        }, indent=2))
    else:
        print_human(new, {sf.rel: sf for sf in files}, stale)
        status = "FAIL" if new else "OK"
        print(f"{status}: {len(files)} files, {len(new)} new findings, "
              f"{len(grandfathered)} grandfathered, {len(stale)} stale baseline entries")
    return 1 if new else 0


if __name__ == "__main__":
    sys.exit(main())
