// Dumps the simulator's contract enums — counts and wire names — as JSON,
// straight from the compiled binary.  tests/lint/enum_sync_check.py diffs
// this against `tools/cpt_lint.py --export-enums`, so the Python linter's
// *parse* of the C++ sources is pinned to what the C++ compiler actually
// built: if either side drifts (a renamed wire name, a miscounted table,
// a tokenizer regression), the ctest `lint_enum_sync` turns red.
#include <cstddef>
#include <iostream>

#include "obs/attribution.h"
#include "obs/json_writer.h"
#include "obs/trace.h"
#include "workload/workload.h"

namespace {

template <typename Enum, typename NameFn>
void DumpEnum(cpt::obs::JsonWriter& w, const char* name, std::size_t count,
              NameFn name_of) {
  w.Key(name);
  w.BeginObject();
  w.KV("count", static_cast<std::uint64_t>(count));
  w.Key("names");
  w.BeginArray();
  for (std::size_t i = 0; i < count; ++i) {
    w.String(name_of(static_cast<Enum>(i)));
  }
  w.EndArray();
  w.EndObject();
}

}  // namespace

int main() {
  cpt::obs::JsonWriter w(std::cout, /*pretty=*/true);
  w.BeginObject();
  w.KV("schema", "cpt-dump-enums");
  w.KV("version", std::uint64_t{1});
  w.Key("enums");
  w.BeginObject();
  DumpEnum<cpt::obs::EventKind>(
      w, "EventKind", cpt::obs::kEventKindCount,
      [](cpt::obs::EventKind k) { return cpt::obs::ToString(k); });
  DumpEnum<cpt::obs::WalkHitClass>(
      w, "WalkHitClass", cpt::obs::kWalkHitClassCount,
      [](cpt::obs::WalkHitClass c) { return cpt::obs::ToString(c); });
  DumpEnum<cpt::obs::SegmentClass>(
      w, "SegmentClass", cpt::obs::kSegmentClassCount,
      [](cpt::obs::SegmentClass c) { return cpt::obs::ToString(c); });
  DumpEnum<cpt::workload::SegmentKind>(
      w, "SegmentKind", cpt::workload::kSegmentKindCount,
      [](cpt::workload::SegmentKind k) { return cpt::workload::ToString(k); });
  w.EndObject();
  w.EndObject();
  std::cout << '\n';
  return 0;
}
