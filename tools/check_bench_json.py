#!/usr/bin/env python3
"""Schema checker for the --json / --trace output of the bench binaries.

Stdlib-only (the repo's no-new-dependencies rule).  Validates the
schema-versioned envelope that bench/bench_flags.h emits, the per-entry
shapes that src/sim/serialize.cc writes, and (optionally) that every line
of a --trace JSONL file parses and carries a known event kind.

Usage:
  tools/check_bench_json.py report.json [report2.json ...]
  tools/check_bench_json.py --trace trace.jsonl report.json

Exit status 0 iff every file validates; failures print one line each.
"""

import argparse
import json
import sys

SCHEMA = "cpt-bench-report"
SCHEMA_VERSION = 1

# Per-kind event totals live under these names (obs::ToString in
# src/obs/trace.cc); the trace checker accepts exactly this set.
EVENT_KINDS = {
    "tlb_hit", "tlb_miss", "tlb_block_miss", "tlb_subblock_miss",
    "walk_step", "walk_end", "walk_abort", "page_fault", "pte_promotion",
    "block_prefetch", "reservation_grant", "swtlb_hit", "swtlb_miss",
}

ACCESS_FIELDS = {
    "workload": str,
    "avg_lines_per_miss": (int, float),
    "denominator_misses": int,
    "effective_misses": int,
    "trace_refs": int,
    "miss_ratio": (int, float),
    "pt_bytes": int,
    "page_faults": int,
    "rng_seed": int,
    "timing": dict,
    "options": dict,
}

SIZE_FIELDS = {
    "workload": str,
    "bytes": int,
    "hashed_bytes": int,
    "normalized": (int, float),
    "census": dict,
    "rng_seed": int,
    "wall_seconds": (int, float),
    "options": dict,
}

OPTION_FIELDS = {
    "pt_kind", "tlb_kind", "tlb_entries", "subblock_factor", "num_buckets",
    "line_size", "phys_frames",
}


class Failure(Exception):
    pass


def require(cond, msg):
    if not cond:
        raise Failure(msg)


def check_fields(obj, fields, where):
    for name, types in fields.items():
        require(name in obj, f"{where}: missing field '{name}'")
        require(isinstance(obj[name], types),
                f"{where}: field '{name}' has type {type(obj[name]).__name__}")


def check_options(opts, where):
    missing = OPTION_FIELDS - opts.keys()
    require(not missing, f"{where}: options missing {sorted(missing)}")


def check_measurement_entry(entry, i):
    where = f"entries[{i}] ({entry['type']}/{entry.get('series', '?')})"
    require("series" in entry, f"{where}: missing 'series'")
    require("measurement" in entry, f"{where}: missing 'measurement'")
    m = entry["measurement"]
    fields = ACCESS_FIELDS if entry["type"] == "access" else SIZE_FIELDS
    check_fields(m, fields, where)
    check_options(m["options"], where)
    if entry["type"] == "access":
        require(m["denominator_misses"] <= m["effective_misses"] + m.get("block_misses", 0)
                + m.get("subblock_misses", 0) or m["denominator_misses"] >= 0,
                f"{where}: nonsensical miss counts")
        for kind in m.get("events", {}):
            require(kind in EVENT_KINDS, f"{where}: unknown event kind '{kind}'")
        for histo in m.get("histograms", {}).values():
            require({"total", "mean", "overflow", "counts"} <= histo.keys(),
                    f"{where}: malformed histogram")


def check_table_entry(entry, i):
    where = f"entries[{i}] (table)"
    require("title" in entry, f"{where}: missing 'title'")
    table = entry.get("table")
    require(isinstance(table, dict), f"{where}: missing 'table'")
    cols = table.get("columns")
    rows = table.get("rows")
    require(isinstance(cols, list) and cols, f"{where}: missing columns")
    require(isinstance(rows, list), f"{where}: missing rows")
    for r, row in enumerate(rows):
        require(len(row) == len(cols),
                f"{where}: row {r} has {len(row)} cells for {len(cols)} columns")


def check_report(path):
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    require(doc.get("schema") == SCHEMA, f"schema is {doc.get('schema')!r}")
    require(doc.get("schema_version") == SCHEMA_VERSION,
            f"schema_version is {doc.get('schema_version')!r}")
    require(isinstance(doc.get("bench"), str) and doc["bench"],
            "missing bench name")
    entries = doc.get("entries")
    require(isinstance(entries, list) and entries, "empty entries array")
    for i, entry in enumerate(entries):
        require(isinstance(entry.get("type"), str), f"entries[{i}]: missing type")
        if entry["type"] in ("access", "size"):
            check_measurement_entry(entry, i)
        elif entry["type"] == "table":
            check_table_entry(entry, i)
        # Custom entry types (micro, rangeops, ...) only need type + series.
        else:
            require("series" in entry, f"entries[{i}]: missing 'series'")
    return len(entries)


def check_trace(path):
    n = 0
    with open(path, encoding="utf-8") as f:
        header = json.loads(f.readline())
        require(header.get("schema") == "cpt-bench-trace", "bad trace header")
        for lineno, line in enumerate(f, start=2):
            rec = json.loads(line)
            if rec.get("type") == "context":
                require("series" in rec and "rng_seed" in rec,
                        f"line {lineno}: malformed context record")
                continue
            require(rec.get("kind") in EVENT_KINDS,
                    f"line {lineno}: unknown kind {rec.get('kind')!r}")
            n += 1
    return n


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("reports", nargs="*", help="--json report files")
    parser.add_argument("--trace", action="append", default=[],
                        help="--trace JSONL files")
    args = parser.parse_args()
    if not args.reports and not args.trace:
        parser.error("nothing to check")

    failed = False
    for path in args.reports:
        try:
            n = check_report(path)
            print(f"OK   {path}: {n} entries")
        except (Failure, json.JSONDecodeError, OSError) as e:
            print(f"FAIL {path}: {e}")
            failed = True
    for path in args.trace:
        try:
            n = check_trace(path)
            print(f"OK   {path}: {n} events")
        except (Failure, json.JSONDecodeError, OSError) as e:
            print(f"FAIL {path}: {e}")
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
