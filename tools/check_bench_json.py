#!/usr/bin/env python3
"""Schema checker for the --json / --trace output of the bench binaries.

Stdlib-only (the repo's no-new-dependencies rule).  Validates the
schema-versioned envelope that bench/bench_flags.h emits, the per-entry
shapes that src/sim/serialize.cc writes, and (optionally) that every line
of a --trace JSONL file parses and carries a known event kind.

Usage:
  tools/check_bench_json.py report.json [report2.json ...]
  tools/check_bench_json.py --trace trace.jsonl report.json
  tools/check_bench_json.py --perfetto trace.perfetto.json

Exit status 0 iff every file validates; failures print one line each.
"""

import argparse
import json
import re
import sys
from pathlib import Path

SCHEMA = "cpt-bench-report"
SCHEMA_VERSION = 1

# The single source of truth for event-kind names is the kEventKindNames
# table in src/obs/trace.h; parse it at check time so the checker can never
# drift from the C++ enum.
DEFAULT_TRACE_HEADER = Path(__file__).resolve().parent.parent / "src" / "obs" / "trace.h"


def load_event_kinds(header_path):
    """Extracts the kEventKindNames string table from the obs trace header."""
    text = Path(header_path).read_text(encoding="utf-8")
    m = re.search(r"kEventKindNames\[[^\]]*\]\s*=\s*\{(.*?)\};", text, re.DOTALL)
    if m is None:
        raise Failure(f"{header_path}: kEventKindNames table not found")
    kinds = set(re.findall(r'"([^"]+)"', m.group(1)))
    if not kinds:
        raise Failure(f"{header_path}: kEventKindNames table is empty")
    count = re.search(r"kEventKindCount\s*=\s*(\d+)", text)
    if count and int(count.group(1)) != len(kinds):
        raise Failure(
            f"{header_path}: kEventKindCount={count.group(1)} but "
            f"{len(kinds)} names parsed")
    return kinds


# Populated in main() from --trace-header (or the in-repo default).
EVENT_KINDS = set()

# The three attribution dimensions serialize.cc emits, in order.
ATTRIBUTION_DIMS = ("by_segment", "by_page_class", "by_outcome")

ACCESS_FIELDS = {
    "workload": str,
    "avg_lines_per_miss": (int, float),
    "denominator_misses": int,
    "effective_misses": int,
    "trace_refs": int,
    "miss_ratio": (int, float),
    "pt_bytes": int,
    "page_faults": int,
    "rng_seed": int,
    "timing": dict,
    "options": dict,
}

SIZE_FIELDS = {
    "workload": str,
    "bytes": int,
    "hashed_bytes": int,
    "normalized": (int, float),
    "census": dict,
    "rng_seed": int,
    "wall_seconds": (int, float),
    "options": dict,
}

OPTION_FIELDS = {
    "pt_kind", "tlb_kind", "tlb_entries", "subblock_factor", "num_buckets",
    "line_size", "phys_frames",
}


class Failure(Exception):
    pass


def require(cond, msg):
    if not cond:
        raise Failure(msg)


def check_fields(obj, fields, where):
    for name, types in fields.items():
        require(name in obj, f"{where}: missing field '{name}'")
        require(isinstance(obj[name], types),
                f"{where}: field '{name}' has type {type(obj[name]).__name__}")


def check_options(opts, where):
    missing = OPTION_FIELDS - opts.keys()
    require(not missing, f"{where}: options missing {sorted(missing)}")


def check_attribution(attr, where):
    """Shape + reconciliation: each dimension partitions the counted walks,
    so its per-cell walks/lines sums must equal the section totals."""
    for field in ("walks", "lines", "steps"):
        require(isinstance(attr.get(field), int),
                f"{where}: attribution missing int '{field}'")
    for dim in ATTRIBUTION_DIMS:
        cells = attr.get(dim)
        require(isinstance(cells, list), f"{where}: attribution missing '{dim}'")
        for c, cell in enumerate(cells):
            for field in ("walks", "lines", "steps"):
                require(isinstance(cell.get(field), int),
                        f"{where}: {dim}[{c}] missing int '{field}'")
            require(isinstance(cell.get("label"), str) and cell["label"],
                    f"{where}: {dim}[{c}] missing label")
        for field in ("walks", "lines"):
            total = sum(cell[field] for cell in cells)
            require(total == attr[field],
                    f"{where}: {dim} {field} sum {total} != total {attr[field]}")


def check_measurement_entry(entry, i):
    where = f"entries[{i}] ({entry['type']}/{entry.get('series', '?')})"
    require("series" in entry, f"{where}: missing 'series'")
    require("measurement" in entry, f"{where}: missing 'measurement'")
    m = entry["measurement"]
    fields = ACCESS_FIELDS if entry["type"] == "access" else SIZE_FIELDS
    check_fields(m, fields, where)
    check_options(m["options"], where)
    if entry["type"] == "access":
        require(m["denominator_misses"] <= m["effective_misses"] + m.get("block_misses", 0)
                + m.get("subblock_misses", 0) or m["denominator_misses"] >= 0,
                f"{where}: nonsensical miss counts")
        for kind in m.get("events", {}):
            require(kind in EVENT_KINDS, f"{where}: unknown event kind '{kind}'")
        for histo in m.get("histograms", {}).values():
            require({"total", "mean", "overflow", "counts"} <= histo.keys(),
                    f"{where}: malformed histogram")
        if "attribution" in m:
            check_attribution(m["attribution"], where)


def check_table_entry(entry, i):
    where = f"entries[{i}] (table)"
    require("title" in entry, f"{where}: missing 'title'")
    table = entry.get("table")
    require(isinstance(table, dict), f"{where}: missing 'table'")
    cols = table.get("columns")
    rows = table.get("rows")
    require(isinstance(cols, list) and cols, f"{where}: missing columns")
    require(isinstance(rows, list), f"{where}: missing rows")
    for r, row in enumerate(rows):
        require(len(row) == len(cols),
                f"{where}: row {r} has {len(row)} cells for {len(cols)} columns")


def check_report(path):
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    require(doc.get("schema") == SCHEMA, f"schema is {doc.get('schema')!r}")
    require(doc.get("schema_version") == SCHEMA_VERSION,
            f"schema_version is {doc.get('schema_version')!r}")
    require(isinstance(doc.get("bench"), str) and doc["bench"],
            "missing bench name")
    entries = doc.get("entries")
    require(isinstance(entries, list) and entries, "empty entries array")
    for i, entry in enumerate(entries):
        require(isinstance(entry.get("type"), str), f"entries[{i}]: missing type")
        if entry["type"] in ("access", "size"):
            check_measurement_entry(entry, i)
        elif entry["type"] == "table":
            check_table_entry(entry, i)
        # Custom entry types (micro, rangeops, ...) only need type + series.
        else:
            require("series" in entry, f"entries[{i}]: missing 'series'")
    if "metrics" in doc:
        require(isinstance(doc["metrics"], list), "metrics is not a list")
        for j, inst in enumerate(doc["metrics"]):
            require(isinstance(inst.get("name"), str) and inst["name"],
                    f"metrics[{j}]: missing name")
            require(inst.get("type") in ("counter", "gauge", "histogram", "stats"),
                    f"metrics[{j}]: bad type {inst.get('type')!r}")
    return len(entries)


def check_trace(path):
    n = 0
    with open(path, encoding="utf-8") as f:
        header = json.loads(f.readline())
        require(header.get("schema") == "cpt-bench-trace", "bad trace header")
        for lineno, line in enumerate(f, start=2):
            rec = json.loads(line)
            if rec.get("type") == "context":
                require("series" in rec and "rng_seed" in rec,
                        f"line {lineno}: malformed context record")
                continue
            require(rec.get("kind") in EVENT_KINDS,
                    f"line {lineno}: unknown kind {rec.get('kind')!r}")
            n += 1
    return n


def check_perfetto(path):
    """Validates a --perfetto file as well-formed Chrome trace-event JSON."""
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    events = doc.get("traceEvents")
    require(isinstance(events, list) and events, "missing traceEvents array")
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        ph = ev.get("ph")
        require(isinstance(ph, str) and len(ph) == 1, f"{where}: bad ph")
        require(isinstance(ev.get("name"), str) and ev["name"],
                f"{where}: missing name")
        require(isinstance(ev.get("pid"), int), f"{where}: missing pid")
        if ph != "M":  # Metadata events have no timestamp.
            require(isinstance(ev.get("ts"), int), f"{where}: missing ts")
        if ph == "X":
            require(isinstance(ev.get("dur"), int) and ev["dur"] > 0,
                    f"{where}: complete event without positive dur")
        if ph == "C":
            require(isinstance(ev.get("args"), dict) and ev["args"],
                    f"{where}: counter event without args")
        if ph == "i":
            require(ev.get("s") in (None, "t", "p", "g"), f"{where}: bad scope")
    return len(events)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("reports", nargs="*", help="--json report files")
    parser.add_argument("--trace", action="append", default=[],
                        help="--trace JSONL files")
    parser.add_argument("--perfetto", action="append", default=[],
                        help="--perfetto Chrome trace-event files")
    parser.add_argument("--trace-header", default=str(DEFAULT_TRACE_HEADER),
                        help="obs trace header defining kEventKindNames")
    args = parser.parse_args()
    if not args.reports and not args.trace and not args.perfetto:
        parser.error("nothing to check")

    try:
        EVENT_KINDS.update(load_event_kinds(args.trace_header))
    except (Failure, OSError) as e:
        print(f"FAIL {args.trace_header}: {e}")
        return 1

    failed = False
    for path in args.reports:
        try:
            n = check_report(path)
            print(f"OK   {path}: {n} entries")
        except (Failure, json.JSONDecodeError, OSError) as e:
            print(f"FAIL {path}: {e}")
            failed = True
    for path in args.trace:
        try:
            n = check_trace(path)
            print(f"OK   {path}: {n} events")
        except (Failure, json.JSONDecodeError, OSError) as e:
            print(f"FAIL {path}: {e}")
            failed = True
    for path in args.perfetto:
        try:
            n = check_perfetto(path)
            print(f"OK   {path}: {n} trace events")
        except (Failure, json.JSONDecodeError, OSError) as e:
            print(f"FAIL {path}: {e}")
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
