#!/usr/bin/env python3
"""Schema checker for the --json / --trace output of the bench binaries.

Stdlib-only (the repo's no-new-dependencies rule).  Validates the
schema-versioned envelope that bench/bench_flags.h emits, the per-entry
shapes that src/sim/serialize.cc writes, and (optionally) that every line
of a --trace JSONL file parses and carries a known event kind.

Usage:
  tools/check_bench_json.py report.json [report2.json ...]
  tools/check_bench_json.py --trace trace.jsonl report.json
  tools/check_bench_json.py --perfetto trace.perfetto.json

Exit status 0 iff every file validates; failures print one line each.
"""

import argparse
import json
import sys
from pathlib import Path

SCHEMA = "cpt-bench-report"
SCHEMA_VERSION = 1

# The single source of truth for event-kind names is the kEventKindNames
# table in src/obs/trace.h.  Rather than regex-scraping the header here,
# this checker asks the project linter for its structured enum export
# (`tools/cpt_lint.py --export-enums`) — one parser, shared by every
# Python-side consumer, pinned to the compiled binary by the
# `lint_enum_sync` ctest.
TOOLS_DIR = Path(__file__).resolve().parent


def load_event_kinds(enums_json=None):
    """EventKind wire names from the linter's enum export.

    `enums_json` may point to a pre-exported cpt-lint-enums JSON file
    (useful for testing against a doctored export); by default the cpt_lint
    module is imported and queried in-process.
    """
    if enums_json is not None:
        doc = json.loads(Path(enums_json).read_text(encoding="utf-8"))
    else:
        sys.path.insert(0, str(TOOLS_DIR))
        try:
            import cpt_lint
        finally:
            sys.path.pop(0)
        doc = cpt_lint.export_enums()
    if doc.get("schema") != "cpt-lint-enums":
        raise Failure(f"enum export has schema {doc.get('schema')!r}, "
                      "expected 'cpt-lint-enums'")
    entry = doc.get("enums", {}).get("EventKind")
    if entry is None:
        raise Failure("enum export has no EventKind entry")
    names = entry.get("names")
    if not names:
        raise Failure("EventKind export carries no kEventKindNames table")
    if len(names) != len(entry["enumerators"]):
        raise Failure(
            f"EventKind has {len(entry['enumerators'])} enumerators but "
            f"{len(names)} wire names")
    count = entry.get("count")
    if count is not None and count != len(names):
        raise Failure(f"kEventKindCount={count} but {len(names)} names exported")
    return set(names)


# Populated in main() from --trace-header (or the in-repo default).
EVENT_KINDS = set()

# The three attribution dimensions serialize.cc emits, in order.
ATTRIBUTION_DIMS = ("by_segment", "by_page_class", "by_outcome")

ACCESS_FIELDS = {
    "workload": str,
    "avg_lines_per_miss": (int, float),
    "denominator_misses": int,
    "effective_misses": int,
    "trace_refs": int,
    "miss_ratio": (int, float),
    "pt_bytes": int,
    "page_faults": int,
    "rng_seed": int,
    "timing": dict,
    "options": dict,
}

SIZE_FIELDS = {
    "workload": str,
    "bytes": int,
    "hashed_bytes": int,
    "normalized": (int, float),
    "census": dict,
    "rng_seed": int,
    "wall_seconds": (int, float),
    "options": dict,
}

OPTION_FIELDS = {
    "pt_kind", "tlb_kind", "tlb_entries", "subblock_factor", "num_buckets",
    "line_size", "phys_frames",
}


class Failure(Exception):
    pass


def require(cond, msg):
    if not cond:
        raise Failure(msg)


def check_fields(obj, fields, where):
    for name, types in fields.items():
        require(name in obj, f"{where}: missing field '{name}'")
        require(isinstance(obj[name], types),
                f"{where}: field '{name}' has type {type(obj[name]).__name__}")


def check_options(opts, where):
    missing = OPTION_FIELDS - opts.keys()
    require(not missing, f"{where}: options missing {sorted(missing)}")


def check_attribution(attr, where):
    """Shape + reconciliation: each dimension partitions the counted walks,
    so its per-cell walks/lines sums must equal the section totals."""
    for field in ("walks", "lines", "steps"):
        require(isinstance(attr.get(field), int),
                f"{where}: attribution missing int '{field}'")
    for dim in ATTRIBUTION_DIMS:
        cells = attr.get(dim)
        require(isinstance(cells, list), f"{where}: attribution missing '{dim}'")
        for c, cell in enumerate(cells):
            for field in ("walks", "lines", "steps"):
                require(isinstance(cell.get(field), int),
                        f"{where}: {dim}[{c}] missing int '{field}'")
            require(isinstance(cell.get("label"), str) and cell["label"],
                    f"{where}: {dim}[{c}] missing label")
        for field in ("walks", "lines"):
            total = sum(cell[field] for cell in cells)
            require(total == attr[field],
                    f"{where}: {dim} {field} sum {total} != total {attr[field]}")


def check_measurement_entry(entry, i):
    where = f"entries[{i}] ({entry['type']}/{entry.get('series', '?')})"
    require("series" in entry, f"{where}: missing 'series'")
    require("measurement" in entry, f"{where}: missing 'measurement'")
    m = entry["measurement"]
    fields = ACCESS_FIELDS if entry["type"] == "access" else SIZE_FIELDS
    check_fields(m, fields, where)
    check_options(m["options"], where)
    if entry["type"] == "access":
        require(m["denominator_misses"] <= m["effective_misses"] + m.get("block_misses", 0)
                + m.get("subblock_misses", 0) or m["denominator_misses"] >= 0,
                f"{where}: nonsensical miss counts")
        for kind in m.get("events", {}):
            require(kind in EVENT_KINDS, f"{where}: unknown event kind '{kind}'")
        for histo in m.get("histograms", {}).values():
            require({"total", "mean", "overflow", "counts"} <= histo.keys(),
                    f"{where}: malformed histogram")
        if "attribution" in m:
            check_attribution(m["attribution"], where)


def check_table_entry(entry, i):
    where = f"entries[{i}] (table)"
    require("title" in entry, f"{where}: missing 'title'")
    table = entry.get("table")
    require(isinstance(table, dict), f"{where}: missing 'table'")
    cols = table.get("columns")
    rows = table.get("rows")
    require(isinstance(cols, list) and cols, f"{where}: missing columns")
    require(isinstance(rows, list), f"{where}: missing rows")
    for r, row in enumerate(rows):
        require(len(row) == len(cols),
                f"{where}: row {r} has {len(row)} cells for {len(cols)} columns")


def check_report(path):
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    require(doc.get("schema") == SCHEMA, f"schema is {doc.get('schema')!r}")
    require(doc.get("schema_version") == SCHEMA_VERSION,
            f"schema_version is {doc.get('schema_version')!r}")
    require(isinstance(doc.get("bench"), str) and doc["bench"],
            "missing bench name")
    entries = doc.get("entries")
    require(isinstance(entries, list) and entries, "empty entries array")
    for i, entry in enumerate(entries):
        require(isinstance(entry.get("type"), str), f"entries[{i}]: missing type")
        if entry["type"] in ("access", "size"):
            check_measurement_entry(entry, i)
        elif entry["type"] == "table":
            check_table_entry(entry, i)
        # Custom entry types (micro, rangeops, ...) only need type + series.
        else:
            require("series" in entry, f"entries[{i}]: missing 'series'")
    if "metrics" in doc:
        require(isinstance(doc["metrics"], list), "metrics is not a list")
        for j, inst in enumerate(doc["metrics"]):
            require(isinstance(inst.get("name"), str) and inst["name"],
                    f"metrics[{j}]: missing name")
            require(inst.get("type") in ("counter", "gauge", "histogram", "stats"),
                    f"metrics[{j}]: bad type {inst.get('type')!r}")
    return len(entries)


def check_trace(path):
    n = 0
    with open(path, encoding="utf-8") as f:
        header = json.loads(f.readline())
        require(header.get("schema") == "cpt-bench-trace", "bad trace header")
        for lineno, line in enumerate(f, start=2):
            rec = json.loads(line)
            if rec.get("type") == "context":
                require("series" in rec and "rng_seed" in rec,
                        f"line {lineno}: malformed context record")
                continue
            require(rec.get("kind") in EVENT_KINDS,
                    f"line {lineno}: unknown kind {rec.get('kind')!r}")
            n += 1
    return n


def check_perfetto(path):
    """Validates a --perfetto file as well-formed Chrome trace-event JSON."""
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    events = doc.get("traceEvents")
    require(isinstance(events, list) and events, "missing traceEvents array")
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        ph = ev.get("ph")
        require(isinstance(ph, str) and len(ph) == 1, f"{where}: bad ph")
        require(isinstance(ev.get("name"), str) and ev["name"],
                f"{where}: missing name")
        require(isinstance(ev.get("pid"), int), f"{where}: missing pid")
        if ph != "M":  # Metadata events have no timestamp.
            require(isinstance(ev.get("ts"), int), f"{where}: missing ts")
        if ph == "X":
            require(isinstance(ev.get("dur"), int) and ev["dur"] > 0,
                    f"{where}: complete event without positive dur")
        if ph == "C":
            require(isinstance(ev.get("args"), dict) and ev["args"],
                    f"{where}: counter event without args")
        if ph == "i":
            require(ev.get("s") in (None, "t", "p", "g"), f"{where}: bad scope")
    return len(events)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("reports", nargs="*", help="--json report files")
    parser.add_argument("--trace", action="append", default=[],
                        help="--trace JSONL files")
    parser.add_argument("--perfetto", action="append", default=[],
                        help="--perfetto Chrome trace-event files")
    parser.add_argument("--enums-json", default=None,
                        help="pre-exported cpt-lint-enums JSON (default: "
                             "import tools/cpt_lint.py and export in-process)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the cpt_lint enum import path and exit")
    args = parser.parse_args()
    if not args.self_test and not args.reports and not args.trace and not args.perfetto:
        parser.error("nothing to check")

    try:
        EVENT_KINDS.update(load_event_kinds(args.enums_json))
    except (Failure, OSError, json.JSONDecodeError) as e:
        print(f"FAIL loading event kinds: {e}")
        return 1

    if args.self_test:
        # The protocol kinds every bench trace is built from must be present;
        # their absence means the cpt_lint import or parse went wrong.
        core = {"tlb_hit", "tlb_miss", "walk_step", "walk_hit", "walk_end",
                "walk_abort", "page_fault"}
        missing = core - EVENT_KINDS
        if missing:
            print(f"FAIL self-test: core event kinds missing: {sorted(missing)}")
            return 1
        print(f"OK   self-test: {len(EVENT_KINDS)} event kinds via cpt_lint "
              f"({', '.join(sorted(core))}, ...)")
        return 0

    failed = False
    for path in args.reports:
        try:
            n = check_report(path)
            print(f"OK   {path}: {n} entries")
        except (Failure, json.JSONDecodeError, OSError) as e:
            print(f"FAIL {path}: {e}")
            failed = True
    for path in args.trace:
        try:
            n = check_trace(path)
            print(f"OK   {path}: {n} events")
        except (Failure, json.JSONDecodeError, OSError) as e:
            print(f"FAIL {path}: {e}")
            failed = True
    for path in args.perfetto:
        try:
            n = check_perfetto(path)
            print(f"OK   {path}: {n} trace events")
        except (Failure, json.JSONDecodeError, OSError) as e:
            print(f"FAIL {path}: {e}")
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
