#!/usr/bin/env python3
"""Schema checker for the --json / --trace output of the bench binaries.

Stdlib-only (the repo's no-new-dependencies rule).  Validates the
schema-versioned envelope that bench/bench_flags.h emits, the per-entry
shapes that src/sim/serialize.cc writes, and (optionally) that every line
of a --trace JSONL file parses and carries a known event kind.

Usage:
  tools/check_bench_json.py report.json [report2.json ...]
  tools/check_bench_json.py --trace trace.jsonl report.json
  tools/check_bench_json.py --perfetto trace.perfetto.json
  tools/check_bench_json.py --timeseries windows.jsonl

Exit status 0 iff every file validates; failures print one line each.
"""

import argparse
import json
import sys
from pathlib import Path

SCHEMA = "cpt-bench-report"
SCHEMA_VERSION = 3

# The single source of truth for event-kind names is the kEventKindNames
# table in src/obs/trace.h.  Rather than regex-scraping the header here,
# this checker asks the project linter for its structured enum export
# (`tools/cpt_lint.py --export-enums`) — one parser, shared by every
# Python-side consumer, pinned to the compiled binary by the
# `lint_enum_sync` ctest.
TOOLS_DIR = Path(__file__).resolve().parent


def load_event_kinds(enums_json=None):
    """EventKind wire names from the linter's enum export.

    `enums_json` may point to a pre-exported cpt-lint-enums JSON file
    (useful for testing against a doctored export); by default the cpt_lint
    module is imported and queried in-process.
    """
    if enums_json is not None:
        doc = json.loads(Path(enums_json).read_text(encoding="utf-8"))
    else:
        sys.path.insert(0, str(TOOLS_DIR))
        try:
            import cpt_lint
        finally:
            sys.path.pop(0)
        doc = cpt_lint.export_enums()
    if doc.get("schema") != "cpt-lint-enums":
        raise Failure(f"enum export has schema {doc.get('schema')!r}, "
                      "expected 'cpt-lint-enums'")
    entry = doc.get("enums", {}).get("EventKind")
    if entry is None:
        raise Failure("enum export has no EventKind entry")
    names = entry.get("names")
    if not names:
        raise Failure("EventKind export carries no kEventKindNames table")
    if len(names) != len(entry["enumerators"]):
        raise Failure(
            f"EventKind has {len(entry['enumerators'])} enumerators but "
            f"{len(names)} wire names")
    count = entry.get("count")
    if count is not None and count != len(names):
        raise Failure(f"kEventKindCount={count} but {len(names)} names exported")
    return set(names)


# Populated in main() from --trace-header (or the in-repo default).
EVENT_KINDS = set()

# The three attribution dimensions serialize.cc emits, in order.
ATTRIBUTION_DIMS = ("by_segment", "by_page_class", "by_outcome")

ACCESS_FIELDS = {
    "workload": str,
    "avg_lines_per_miss": (int, float),
    "denominator_misses": int,
    "effective_misses": int,
    "trace_refs": int,
    "miss_ratio": (int, float),
    "pt_bytes": int,
    "page_faults": int,
    "rng_seed": int,
    "timing": dict,
    "options": dict,
}

SIZE_FIELDS = {
    "workload": str,
    "bytes": int,
    "hashed_bytes": int,
    "normalized": (int, float),
    "census": dict,
    "rng_seed": int,
    "wall_seconds": (int, float),
    "host_perf": dict,
    "options": dict,
}

# Shape of obs::ToJson(HostPerfSample): identical whether perf_event_open
# succeeded or not (the degradation contract in src/obs/perf.h) — counters
# simply read zero on perf-less hosts.
HOST_PERF_FIELDS = {
    "available": bool,
    "source": str,
    "reason": str,
    "wall_seconds": (int, float),
    "user_seconds": (int, float),
    "sys_seconds": (int, float),
    "max_rss_kb": int,
    "minor_faults": int,
    "major_faults": int,
    "voluntary_ctx_switches": int,
    "involuntary_ctx_switches": int,
    "counters": dict,
    "derived": dict,
}

HOST_PERF_COUNTERS = {
    "cycles", "instructions", "llc_misses", "dtlb_load_misses",
    "branch_misses", "time_enabled_ns", "time_running_ns",
}

HOST_PERF_DERIVED = {"ipc", "llc_mpki", "dtlb_mpki", "branch_mpki"}

MICRO_THROUGHPUT_FIELDS = {
    "median_refs_per_sec": (int, float),
    "best_refs_per_sec": (int, float),
    "worst_refs_per_sec": (int, float),
    "median_ns_per_op": (int, float),
    "rep_refs_per_sec": list,
    "rep_seconds": list,
}

OPTION_FIELDS = {
    "pt_kind", "tlb_kind", "tlb_entries", "subblock_factor", "num_buckets",
    "line_size", "phys_frames", "lock_stripes",
}


class Failure(Exception):
    pass


def require(cond, msg):
    if not cond:
        raise Failure(msg)


def check_fields(obj, fields, where):
    for name, types in fields.items():
        require(name in obj, f"{where}: missing field '{name}'")
        require(isinstance(obj[name], types),
                f"{where}: field '{name}' has type {type(obj[name]).__name__}")


def check_options(opts, where):
    missing = OPTION_FIELDS - opts.keys()
    require(not missing, f"{where}: options missing {sorted(missing)}")


def check_host_perf(hp, where):
    check_fields(hp, HOST_PERF_FIELDS, where)
    require(hp["source"] in ("perf_event", "rusage"),
            f"{where}: host_perf source {hp['source']!r}")
    if not hp["available"]:
        require(hp["reason"], f"{where}: degraded host_perf must carry a reason")
        require(hp["source"] == "rusage",
                f"{where}: degraded host_perf must report source 'rusage'")
    missing = HOST_PERF_COUNTERS - hp["counters"].keys()
    require(not missing, f"{where}: host_perf counters missing {sorted(missing)}")
    for name in HOST_PERF_COUNTERS:
        require(isinstance(hp["counters"][name], int),
                f"{where}: host_perf counter '{name}' not an int")
    missing = HOST_PERF_DERIVED - hp["derived"].keys()
    require(not missing, f"{where}: host_perf derived missing {sorted(missing)}")
    for name in HOST_PERF_DERIVED:
        require(isinstance(hp["derived"][name], (int, float)),
                f"{where}: host_perf derived '{name}' not numeric")


def check_timing(timing, where):
    for field in ("wall_seconds", "refs_per_sec", "misses_per_sec"):
        require(isinstance(timing.get(field), (int, float)),
                f"{where}: timing missing numeric '{field}'")
    require(isinstance(timing.get("host_perf"), dict),
            f"{where}: timing missing host_perf")
    check_host_perf(timing["host_perf"], f"{where}.timing")
    phases = timing.get("phases")
    require(isinstance(phases, list) and phases,
            f"{where}: timing missing non-empty phases")
    for p, phase in enumerate(phases):
        pw = f"{where}.phases[{p}]"
        require(isinstance(phase.get("name"), str) and phase["name"],
                f"{pw}: missing name")
        require(isinstance(phase.get("work"), int), f"{pw}: missing int work")
        for field in ("wall_seconds", "work_per_sec"):
            require(isinstance(phase.get(field), (int, float)),
                    f"{pw}: missing numeric '{field}'")
        require(isinstance(phase.get("host_perf"), dict),
                f"{pw}: missing host_perf")
        check_host_perf(phase["host_perf"], pw)


def check_micro_entry(entry, i):
    where = f"entries[{i}] (micro/{entry.get('series', '?')})"
    require("series" in entry, f"{where}: missing 'series'")
    for field in ("iterations", "reps", "warmup_reps"):
        require(isinstance(entry.get(field), int),
                f"{where}: missing int '{field}'")
    tp = entry.get("throughput")
    require(isinstance(tp, dict), f"{where}: missing throughput")
    check_fields(tp, MICRO_THROUGHPUT_FIELDS, where)
    for field in ("rep_refs_per_sec", "rep_seconds"):
        require(len(tp[field]) == entry["reps"],
                f"{where}: {field} has {len(tp[field])} samples for "
                f"{entry['reps']} reps")
        require(all(isinstance(v, (int, float)) for v in tp[field]),
                f"{where}: non-numeric sample in {field}")
    require(isinstance(entry.get("host_perf"), dict),
            f"{where}: missing host_perf")
    check_host_perf(entry["host_perf"], where)


def check_attribution(attr, where):
    """Shape + reconciliation: each dimension partitions the counted walks,
    so its per-cell walks/lines sums must equal the section totals."""
    for field in ("walks", "lines", "steps"):
        require(isinstance(attr.get(field), int),
                f"{where}: attribution missing int '{field}'")
    for dim in ATTRIBUTION_DIMS:
        cells = attr.get(dim)
        require(isinstance(cells, list), f"{where}: attribution missing '{dim}'")
        for c, cell in enumerate(cells):
            for field in ("walks", "lines", "steps"):
                require(isinstance(cell.get(field), int),
                        f"{where}: {dim}[{c}] missing int '{field}'")
            require(isinstance(cell.get("label"), str) and cell["label"],
                    f"{where}: {dim}[{c}] missing label")
        for field in ("walks", "lines"):
            total = sum(cell[field] for cell in cells)
            require(total == attr[field],
                    f"{where}: {dim} {field} sum {total} != total {attr[field]}")


def check_measurement_entry(entry, i):
    where = f"entries[{i}] ({entry['type']}/{entry.get('series', '?')})"
    require("series" in entry, f"{where}: missing 'series'")
    require("measurement" in entry, f"{where}: missing 'measurement'")
    m = entry["measurement"]
    fields = ACCESS_FIELDS if entry["type"] == "access" else SIZE_FIELDS
    check_fields(m, fields, where)
    check_options(m["options"], where)
    if entry["type"] == "size":
        check_host_perf(m["host_perf"], where)
    if entry["type"] == "access":
        check_timing(m["timing"], where)
        require(m["denominator_misses"] <= m["effective_misses"] + m.get("block_misses", 0)
                + m.get("subblock_misses", 0) or m["denominator_misses"] >= 0,
                f"{where}: nonsensical miss counts")
        for kind in m.get("events", {}):
            require(kind in EVENT_KINDS, f"{where}: unknown event kind '{kind}'")
        for histo in m.get("histograms", {}).values():
            require({"total", "mean", "overflow", "counts"} <= histo.keys(),
                    f"{where}: malformed histogram")
        if "attribution" in m:
            check_attribution(m["attribution"], where)


def check_table_entry(entry, i):
    where = f"entries[{i}] (table)"
    require("title" in entry, f"{where}: missing 'title'")
    table = entry.get("table")
    require(isinstance(table, dict), f"{where}: missing 'table'")
    cols = table.get("columns")
    rows = table.get("rows")
    require(isinstance(cols, list) and cols, f"{where}: missing columns")
    require(isinstance(rows, list), f"{where}: missing rows")
    for r, row in enumerate(rows):
        require(len(row) == len(cols),
                f"{where}: row {r} has {len(row)} cells for {len(cols)} columns")


def check_concurrency(conc, where):
    """v3 "concurrency" section: the ContentionRegistry dump.  Contended
    counts are approximate (try-lock-first detection) but the structural
    identities are exact: a stripe site's per-stripe counts sum to its site
    header, and the report totals sum over the site list."""
    require(isinstance(conc.get("contention_timing"), bool),
            f"{where}: concurrency missing bool 'contention_timing'")
    sites = conc.get("sites")
    require(isinstance(sites, list), f"{where}: concurrency missing sites list")
    total_acq = 0
    total_cont = 0
    for i, site in enumerate(sites):
        sw = f"{where}.sites[{i}]"
        require(isinstance(site.get("name"), str) and site["name"],
                f"{sw}: missing name")
        for field in ("acquisitions", "contended", "shared_acquisitions",
                      "shared_contended"):
            require(isinstance(site.get(field), int),
                    f"{sw}: missing int '{field}'")
        require(isinstance(site.get("contended_fraction"), (int, float)),
                f"{sw}: missing numeric contended_fraction")
        require(site["contended"] <= site["acquisitions"],
                f"{sw}: contended {site['contended']} exceeds "
                f"acquisitions {site['acquisitions']}")
        if "wait" in site:
            wait = site["wait"]
            for field in ("count", "total_ns"):
                require(isinstance(wait.get(field), int),
                        f"{sw}: wait missing int '{field}'")
            buckets = wait.get("buckets")
            require(isinstance(buckets, dict), f"{sw}: wait missing buckets")
            for key, count in buckets.items():
                require(key.isdigit() and isinstance(count, int) and count > 0,
                        f"{sw}: malformed wait bucket {key!r}")
            require(sum(buckets.values()) == wait["count"],
                    f"{sw}: wait bucket sum != count {wait['count']}")
        if "stripes" in site:
            stripes = site["stripes"]
            require(isinstance(stripes, list) and stripes,
                    f"{sw}: empty stripes array")
            for s, stripe in enumerate(stripes):
                require(stripe.get("index") == s,
                        f"{sw}: stripes[{s}] has index {stripe.get('index')}")
                for field in ("acquisitions", "contended"):
                    require(isinstance(stripe.get(field), int),
                            f"{sw}: stripes[{s}] missing int '{field}'")
            for field in ("acquisitions", "contended"):
                total = sum(stripe[field] for stripe in stripes)
                require(total == site[field],
                        f"{sw}: stripe {field} sum {total} != "
                        f"site {site[field]}")
        total_acq += site["acquisitions"] + site["shared_acquisitions"]
        total_cont += site["contended"] + site["shared_contended"]
    totals = conc.get("totals")
    require(isinstance(totals, dict), f"{where}: concurrency missing totals")
    require(totals.get("acquisitions") == total_acq,
            f"{where}: concurrency totals acquisitions "
            f"{totals.get('acquisitions')} != site sum {total_acq}")
    require(totals.get("contended") == total_cont,
            f"{where}: concurrency totals contended "
            f"{totals.get('contended')} != site sum {total_cont}")
    require(isinstance(totals.get("contended_fraction"), (int, float)),
            f"{where}: concurrency totals missing contended_fraction")


def check_report_doc(doc):
    require(doc.get("schema") == SCHEMA, f"schema is {doc.get('schema')!r}")
    require(doc.get("schema_version") == SCHEMA_VERSION,
            f"schema_version is {doc.get('schema_version')!r}")
    require(isinstance(doc.get("bench"), str) and doc["bench"],
            "missing bench name")
    entries = doc.get("entries")
    require(isinstance(entries, list) and entries, "empty entries array")
    for i, entry in enumerate(entries):
        require(isinstance(entry.get("type"), str), f"entries[{i}]: missing type")
        if entry["type"] in ("access", "size"):
            check_measurement_entry(entry, i)
        elif entry["type"] == "table":
            check_table_entry(entry, i)
        elif entry["type"] == "micro":
            check_micro_entry(entry, i)
        # Other custom entry types (rangeops, ...) only need type + series.
        else:
            require("series" in entry, f"entries[{i}]: missing 'series'")
    if "metrics" in doc:
        require(isinstance(doc["metrics"], list), "metrics is not a list")
        for j, inst in enumerate(doc["metrics"]):
            require(isinstance(inst.get("name"), str) and inst["name"],
                    f"metrics[{j}]: missing name")
            require(inst.get("type") in ("counter", "gauge", "histogram", "stats"),
                    f"metrics[{j}]: bad type {inst.get('type')!r}")
    # v2: every report carries a bench-wide host_perf and an aggregate
    # throughput section; timeseries summary appears iff --timeseries ran.
    require(isinstance(doc.get("host_perf"), dict), "missing host_perf section")
    check_host_perf(doc["host_perf"], "<report>")
    tp = doc.get("throughput")
    require(isinstance(tp, dict), "missing throughput section")
    require(isinstance(tp.get("refs"), int), "throughput missing int refs")
    for field in ("wall_seconds", "refs_per_sec"):
        require(isinstance(tp.get(field), (int, float)),
                f"throughput missing numeric '{field}'")
    if "timeseries" in doc:
        ts = doc["timeseries"]
        require(isinstance(ts.get("window_refs"), int) and ts["window_refs"] > 0,
                "timeseries missing positive window_refs")
        for field in ("total_refs", "windows"):
            require(isinstance(ts.get(field), int),
                    f"timeseries missing int '{field}'")
    # v3: every report carries the lock-contention section (possibly with an
    # empty site list when the bench never touched an instrumented lock).
    conc = doc.get("concurrency")
    require(isinstance(conc, dict), "missing concurrency section")
    check_concurrency(conc, "<report>")
    return len(entries)


def check_report(path):
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    return check_report_doc(doc)


def check_trace(path):
    n = 0
    with open(path, encoding="utf-8") as f:
        header = json.loads(f.readline())
        require(header.get("schema") == "cpt-bench-trace", "bad trace header")
        for lineno, line in enumerate(f, start=2):
            rec = json.loads(line)
            if rec.get("type") == "context":
                require("series" in rec and "rng_seed" in rec,
                        f"line {lineno}: malformed context record")
                continue
            require(rec.get("kind") in EVENT_KINDS,
                    f"line {lineno}: unknown kind {rec.get('kind')!r}")
            n += 1
    return n


def check_timeseries_lines(lines):
    """Validates a --timeseries JSONL document given as parsed records.

    Layout: one header, then per measurement a context line declaring its
    window count followed by exactly that many window lines with contiguous
    0-based indexes.  Only a section's final window may be partial.
    """
    require(lines, "empty timeseries file")
    header = lines[0]
    require(header.get("schema") == "cpt-bench-timeseries",
            f"bad timeseries header schema {header.get('schema')!r}")
    require(header.get("schema_version") == SCHEMA_VERSION,
            f"timeseries schema_version is {header.get('schema_version')!r}")
    window_refs = header.get("window_refs")
    require(isinstance(window_refs, int) and window_refs > 0,
            "timeseries header missing positive window_refs")

    n_windows = 0
    expected = None  # Declared window count of the open section.
    seen = 0
    def close_section(lineno):
        if expected is not None:
            require(seen == expected,
                    f"line {lineno}: section declared {expected} windows, "
                    f"got {seen}")
    for lineno, rec in enumerate(lines[1:], start=2):
        kind = rec.get("type")
        if kind == "context":
            close_section(lineno)
            require("series" in rec and isinstance(rec.get("windows"), int),
                    f"line {lineno}: malformed timeseries context")
            expected, seen = rec["windows"], 0
        elif kind == "window":
            require(expected is not None,
                    f"line {lineno}: window before any context line")
            require(rec.get("window") == seen,
                    f"line {lineno}: window index {rec.get('window')} != {seen}")
            for field in ("start_ref", "refs", "lines"):
                require(isinstance(rec.get(field), int),
                        f"line {lineno}: window missing int '{field}'")
            for field in ("miss_rate", "lines_per_miss"):
                require(isinstance(rec.get(field), (int, float)),
                        f"line {lineno}: window missing numeric '{field}'")
            require(0 < rec["refs"] <= window_refs,
                    f"line {lineno}: window refs {rec['refs']} outside "
                    f"(0, {window_refs}]")
            if seen < expected - 1:
                require(rec["refs"] == window_refs,
                        f"line {lineno}: non-final window is partial "
                        f"({rec['refs']} < {window_refs})")
            events = rec.get("events", {})
            require(isinstance(events, dict),
                    f"line {lineno}: window events not an object")
            for name in events:
                require(name in EVENT_KINDS,
                        f"line {lineno}: unknown event kind '{name}'")
            seen += 1
            n_windows += 1
        else:
            raise Failure(f"line {lineno}: unknown record type {kind!r}")
    close_section(len(lines))
    return n_windows


def check_timeseries(path):
    with open(path, encoding="utf-8") as f:
        lines = [json.loads(line) for line in f if line.strip()]
    return check_timeseries_lines(lines)


def check_perfetto(path):
    """Validates a --perfetto file as well-formed Chrome trace-event JSON."""
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    events = doc.get("traceEvents")
    require(isinstance(events, list) and events, "missing traceEvents array")
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        ph = ev.get("ph")
        require(isinstance(ph, str) and len(ph) == 1, f"{where}: bad ph")
        require(isinstance(ev.get("name"), str) and ev["name"],
                f"{where}: missing name")
        require(isinstance(ev.get("pid"), int), f"{where}: missing pid")
        if ph != "M":  # Metadata events have no timestamp.
            require(isinstance(ev.get("ts"), int), f"{where}: missing ts")
        if ph == "X":
            require(isinstance(ev.get("dur"), int) and ev["dur"] > 0,
                    f"{where}: complete event without positive dur")
        if ph == "C":
            require(isinstance(ev.get("args"), dict) and ev["args"],
                    f"{where}: counter event without args")
        if ph == "i":
            require(ev.get("s") in (None, "t", "p", "g"), f"{where}: bad scope")
    return len(events)


def _sample_host_perf(available=True):
    return {
        "available": available,
        "source": "perf_event" if available else "rusage",
        "reason": "" if available else "perf_event_open: Operation not permitted",
        "wall_seconds": 0.5, "user_seconds": 0.4, "sys_seconds": 0.1,
        "max_rss_kb": 10240, "minor_faults": 12, "major_faults": 0,
        "voluntary_ctx_switches": 1, "involuntary_ctx_switches": 2,
        "counters": {"cycles": 1000 if available else 0,
                     "instructions": 2000 if available else 0,
                     "llc_misses": 3, "dtlb_load_misses": 4,
                     "branch_misses": 5,
                     "time_enabled_ns": 100, "time_running_ns": 100}
        if available else dict.fromkeys(HOST_PERF_COUNTERS, 0),
        "derived": {"ipc": 2.0, "llc_mpki": 1.5, "dtlb_mpki": 2.0,
                    "branch_mpki": 2.5}
        if available else dict.fromkeys(HOST_PERF_DERIVED, 0.0),
    }


def _self_test_sections():
    """Synthetic-document round trips for the v2/v3 sections: each valid doc
    must pass, each deliberately broken variant must raise Failure."""
    valid = {
        "schema": SCHEMA, "schema_version": SCHEMA_VERSION, "bench": "t",
        "trace_len_override": 0,
        "entries": [{
            "type": "micro", "series": "lookup/clustered",
            "iterations": 1000, "reps": 3, "warmup_reps": 1, "slowdown": 0,
            "throughput": {
                "median_refs_per_sec": 2e7, "best_refs_per_sec": 2.2e7,
                "worst_refs_per_sec": 1.9e7, "median_ns_per_op": 50.0,
                "rep_refs_per_sec": [1.9e7, 2e7, 2.2e7],
                "rep_seconds": [5e-5, 5e-5, 4.5e-5]},
            "host_perf": _sample_host_perf(False),
        }],
        "host_perf": _sample_host_perf(True),
        "throughput": {"refs": 3000, "wall_seconds": 1.5e-4,
                       "refs_per_sec": 2e7},
        "timeseries": {"window_refs": 512, "total_refs": 3000, "windows": 6},
        "concurrency": {
            "contention_timing": False,
            "sites": [
                {"name": "pt.hashed.alloc", "acquisitions": 12, "contended": 1,
                 "shared_acquisitions": 0, "shared_contended": 0,
                 "contended_fraction": 1 / 12,
                 "wait": {"count": 1, "total_ns": 800, "buckets": {"10": 1}}},
                {"name": "pt.hashed.stripes", "acquisitions": 10,
                 "contended": 2, "shared_acquisitions": 0,
                 "shared_contended": 0, "contended_fraction": 0.2,
                 "stripes": [
                     {"index": 0, "acquisitions": 6, "contended": 2},
                     {"index": 1, "acquisitions": 4, "contended": 0}]},
            ],
            "totals": {"acquisitions": 22, "contended": 3,
                       "contended_fraction": 3 / 22},
        },
    }
    checks = [("valid report", valid, None)]

    import copy
    broken = copy.deepcopy(valid)
    del broken["host_perf"]
    checks.append(("missing host_perf section", broken, "host_perf"))
    broken = copy.deepcopy(valid)
    broken["entries"][0]["host_perf"]["reason"] = ""
    checks.append(("degraded without reason", broken, "reason"))
    broken = copy.deepcopy(valid)
    del broken["throughput"]["refs_per_sec"]
    checks.append(("throughput missing refs_per_sec", broken, "refs_per_sec"))
    broken = copy.deepcopy(valid)
    broken["entries"][0]["throughput"]["rep_seconds"] = [1.0]
    checks.append(("rep count mismatch", broken, "samples"))
    broken = copy.deepcopy(valid)
    del broken["host_perf"]["counters"]["dtlb_load_misses"]
    checks.append(("missing perf counter", broken, "dtlb_load_misses"))
    broken = copy.deepcopy(valid)
    del broken["concurrency"]
    checks.append(("missing concurrency section", broken, "concurrency"))
    broken = copy.deepcopy(valid)
    broken["concurrency"]["sites"][1]["stripes"][0]["acquisitions"] = 7
    checks.append(("stripe sum mismatch", broken, "stripe acquisitions sum"))
    broken = copy.deepcopy(valid)
    broken["concurrency"]["totals"]["acquisitions"] = 99
    checks.append(("concurrency totals mismatch", broken, "totals acquisitions"))
    broken = copy.deepcopy(valid)
    broken["concurrency"]["sites"][0]["wait"]["count"] = 5
    checks.append(("wait bucket sum mismatch", broken, "wait bucket sum"))

    for label, doc, expect in checks:
        try:
            check_report_doc(doc)
            ok = expect is None
            err = ""
        except Failure as e:
            ok = expect is not None and expect in str(e)
            err = str(e)
        if not ok:
            raise Failure(f"self-test '{label}': "
                          + (f"unexpected error {err!r}" if err
                             else "broken doc passed validation"))

    ts_valid = [
        {"schema": "cpt-bench-timeseries", "schema_version": SCHEMA_VERSION,
         "bench": "t", "window_refs": 4, "type": "header"},
        {"type": "context", "series": "a", "workload": "w", "windows": 2},
        {"type": "window", "window": 0, "start_ref": 0, "refs": 4, "lines": 2,
         "miss_rate": 0.25, "lines_per_miss": 2.0, "events": {"tlb_miss": 1}},
        {"type": "window", "window": 1, "start_ref": 4, "refs": 3, "lines": 0,
         "miss_rate": 0.0, "lines_per_miss": 0.0, "events": {}},
    ]
    if check_timeseries_lines(ts_valid) != 2:
        raise Failure("self-test: timeseries window count wrong")
    ts_broken = [dict(rec) for rec in ts_valid]
    ts_broken[3]["window"] = 5  # Non-contiguous index.
    try:
        check_timeseries_lines(ts_broken)
        raise Failure("self-test: non-contiguous window index passed")
    except Failure as e:
        if "window index" not in str(e):
            raise
    ts_partial = [dict(rec) for rec in ts_valid]
    ts_partial[2]["refs"] = 2  # Partial window that is not the section's last.
    try:
        check_timeseries_lines(ts_partial)
        raise Failure("self-test: early partial window passed")
    except Failure as e:
        if "partial" not in str(e):
            raise


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("reports", nargs="*", help="--json report files")
    parser.add_argument("--trace", action="append", default=[],
                        help="--trace JSONL files")
    parser.add_argument("--perfetto", action="append", default=[],
                        help="--perfetto Chrome trace-event files")
    parser.add_argument("--timeseries", action="append", default=[],
                        help="--timeseries windowed JSONL files")
    parser.add_argument("--enums-json", default=None,
                        help="pre-exported cpt-lint-enums JSON (default: "
                             "import tools/cpt_lint.py and export in-process)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the cpt_lint enum import path and the "
                             "report section validators, then exit")
    args = parser.parse_args()
    if (not args.self_test and not args.reports and not args.trace
            and not args.perfetto and not args.timeseries):
        parser.error("nothing to check")

    try:
        EVENT_KINDS.update(load_event_kinds(args.enums_json))
    except (Failure, OSError, json.JSONDecodeError) as e:
        print(f"FAIL loading event kinds: {e}")
        return 1

    if args.self_test:
        # The protocol kinds every bench trace is built from must be present;
        # their absence means the cpt_lint import or parse went wrong.
        core = {"tlb_hit", "tlb_miss", "walk_step", "walk_hit", "walk_end",
                "walk_abort", "page_fault"}
        missing = core - EVENT_KINDS
        if missing:
            print(f"FAIL self-test: core event kinds missing: {sorted(missing)}")
            return 1
        try:
            _self_test_sections()
        except Failure as e:
            print(f"FAIL self-test: {e}")
            return 1
        print(f"OK   self-test: {len(EVENT_KINDS)} event kinds via cpt_lint; "
              "host_perf/throughput/timeseries/concurrency validators "
              "round-trip")
        return 0

    failed = False
    for path in args.reports:
        try:
            n = check_report(path)
            print(f"OK   {path}: {n} entries")
        except (Failure, json.JSONDecodeError, OSError) as e:
            print(f"FAIL {path}: {e}")
            failed = True
    for path in args.trace:
        try:
            n = check_trace(path)
            print(f"OK   {path}: {n} events")
        except (Failure, json.JSONDecodeError, OSError) as e:
            print(f"FAIL {path}: {e}")
            failed = True
    for path in args.perfetto:
        try:
            n = check_perfetto(path)
            print(f"OK   {path}: {n} trace events")
        except (Failure, json.JSONDecodeError, OSError) as e:
            print(f"FAIL {path}: {e}")
            failed = True
    for path in args.timeseries:
        try:
            n = check_timeseries(path)
            print(f"OK   {path}: {n} windows")
        except (Failure, json.JSONDecodeError, OSError) as e:
            print(f"FAIL {path}: {e}")
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
