#!/usr/bin/env python3
"""Compares two cpt-bench-report JSON files and fails on unexplained drift.

The simulator is deterministic: for an identical RNG seed and trace length,
every *simulated* metric (miss counts, lines per miss, page-table bytes,
histograms, attribution cells, ...) must match the baseline bit for bit.
Wall-clock-derived keys (wall_seconds, refs_per_sec, misses_per_sec) and
host-side subtrees (timing, host_perf, throughput, timeseries, phases,
concurrency) are machine noise; they are reported but only enforced when
--time-tol is given.

--throughput-tol adds a one-sided gate on the schema-v2 throughput keys
(the report's aggregate refs_per_sec plus every micro entry's
median_refs_per_sec): the diff fails when current falls more than the given
fraction below baseline.  Faster-than-baseline never fails.

Usage:
  tools/bench_diff.py baseline.json current.json
  tools/bench_diff.py baseline.json current.json --time-tol 0.5
  tools/bench_diff.py BENCH_throughput.json current.json --throughput-tol 0.6

Exit status: 0 = no drift, 1 = drift found, 2 = usage / malformed input.
Stdlib-only (the repo's no-new-dependencies rule).
"""

import argparse
import json
import sys

# Keys whose values are wall-clock measurements, not simulated quantities.
# Matched on the final path component anywhere in a measurement.
TIMING_KEYS = {"wall_seconds", "refs_per_sec", "misses_per_sec"}

# Subtrees that are host-side measurements end to end: anything under a
# component with one of these names is timing noise (perf counters, rusage,
# per-phase rates, per-rep throughput samples, lock-contention counters).
TIMING_SUBTREES = {"timing", "host_perf", "throughput", "timeseries", "phases",
                   "concurrency"}


def flatten(value, prefix=""):
    """Yields (dotted_path, scalar) pairs for a nested JSON value."""
    if isinstance(value, dict):
        for k in sorted(value):
            yield from flatten(value[k], f"{prefix}.{k}" if prefix else k)
    elif isinstance(value, list):
        for i, v in enumerate(value):
            yield from flatten(v, f"{prefix}[{i}]")
    else:
        yield prefix, value


def is_timing(path):
    parts = [p.split("[", 1)[0] for p in path.split(".")]
    return parts[-1] in TIMING_KEYS or any(p in TIMING_SUBTREES for p in parts)


def entry_key(entry):
    """Stable identity of a report entry across runs."""
    kind = entry.get("type", "?")
    if kind == "table":
        return ("table", entry.get("title", "?"))
    series = entry.get("series", "?")
    workload = entry.get("measurement", {}).get("workload", "")
    return (kind, series, workload)


def metric_key(inst):
    return (inst.get("name", "?"), tuple(sorted(inst.get("labels", {}).items())))


class Diff:
    """Accumulates per-metric rows and renders the human-readable table."""

    def __init__(self, time_tol):
        self.time_tol = time_tol
        self.rows = []          # (where, metric, baseline, current, verdict)
        self.hard_failures = 0  # Simulated drift or structural mismatch.
        self.timing_failures = 0
        self.throughput_failures = 0

    def structural(self, where, message):
        self.rows.append((where, "<structure>", "", "", message))
        self.hard_failures += 1

    def compare_scalars(self, where, path, base, cur):
        if base == cur:
            return
        if is_timing(path):
            rel = None
            numeric = (isinstance(base, (int, float)) and not isinstance(base, bool)
                       and isinstance(cur, (int, float)) and not isinstance(cur, bool))
            if numeric:
                denom = max(abs(base), abs(cur), 1e-12)
                rel = abs(cur - base) / denom
            if not numeric:
                # Availability / source / reason strings inside host_perf
                # legitimately differ across hosts; never a failure.
                self.rows.append((where, path, base, cur, "host noise (non-numeric)"))
                return
            if self.time_tol is not None and rel > self.time_tol:
                self.rows.append((where, path, base, cur,
                                  f"TIMING DRIFT {rel:.1%} > tol {self.time_tol:.0%}"))
                self.timing_failures += 1
            else:
                note = f"timing noise ({rel:.1%})" if rel is not None else "timing noise"
                self.rows.append((where, path, base, cur, note))
            return
        self.rows.append((where, path, base, cur, "SIMULATED DRIFT"))
        self.hard_failures += 1

    def compare_tree(self, where, base, cur):
        base_flat = dict(flatten(base))
        cur_flat = dict(flatten(cur))
        for path in sorted(base_flat.keys() | cur_flat.keys()):
            if path not in cur_flat:
                self.structural(where, f"'{path}' missing from current")
            elif path not in base_flat:
                self.structural(where, f"'{path}' not in baseline")
            else:
                self.compare_scalars(where, path, base_flat[path], cur_flat[path])

    @property
    def failed(self):
        return (self.hard_failures + self.timing_failures
                + self.throughput_failures) > 0

    def render(self, out=sys.stdout):
        if not self.rows:
            print("bench_diff: no differences", file=out)
            return
        headers = ("entry", "metric", "baseline", "current", "verdict")
        table = [headers] + [
            (w, p, _fmt(b), _fmt(c), v) for w, p, b, c, v in self.rows]
        widths = [max(len(row[i]) for row in table) for i in range(5)]
        for r, row in enumerate(table):
            print("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)).rstrip(),
                  file=out)
            if r == 0:
                print("  ".join("-" * w for w in widths), file=out)


def _fmt(v):
    if isinstance(v, float):
        return f"{v:.6g}"
    return str(v)


def throughput_points(report):
    """Yields (where, refs_per_sec) gate points of a schema-v2 report."""
    agg = report.get("throughput", {})
    if isinstance(agg.get("refs_per_sec"), (int, float)):
        yield "throughput", agg["refs_per_sec"]
    for entry in report.get("entries", []):
        if entry.get("type") != "micro":
            continue
        median = entry.get("throughput", {}).get("median_refs_per_sec")
        if isinstance(median, (int, float)):
            yield f"micro/{entry.get('series', '?')}", median


def gate_throughput(d, baseline, current, tol):
    """One-sided refs/sec gate: current may not fall > tol below baseline."""
    base_points = dict(throughput_points(baseline))
    cur_points = dict(throughput_points(current))
    for where in sorted(base_points.keys() | cur_points.keys()):
        if where not in cur_points:
            d.structural(where, "throughput point missing from current")
            continue
        if where not in base_points:
            d.structural(where, "throughput point not in baseline")
            continue
        base, cur = base_points[where], cur_points[where]
        if base <= 0.0:
            d.rows.append((where, "median_refs_per_sec", base, cur,
                           "baseline zero; skipped"))
            continue
        ratio = cur / base
        if ratio < 1.0 - tol:
            d.rows.append((where, "median_refs_per_sec", base, cur,
                           f"THROUGHPUT REGRESSION {1.0 - ratio:.1%} below "
                           f"baseline > tol {tol:.0%}"))
            d.throughput_failures += 1
        elif ratio > 1.0 + tol:
            d.rows.append((where, "median_refs_per_sec", base, cur,
                           f"FASTER (+{ratio - 1.0:.1%}); consider re-pinning "
                           "the baseline"))
        else:
            d.rows.append((where, "median_refs_per_sec", base, cur,
                           f"within band ({ratio - 1.0:+.1%})"))


def diff_reports(baseline, current, time_tol):
    d = Diff(time_tol)

    for field in ("schema", "schema_version", "bench", "trace_len_override"):
        if baseline.get(field) != current.get(field):
            d.structural("<header>",
                         f"{field}: baseline {baseline.get(field)!r} vs "
                         f"current {current.get(field)!r}")
    if d.hard_failures:
        # A different bench or trace length explains every downstream delta;
        # stop here with a focused message instead of pages of noise.
        return d

    base_entries = {entry_key(e): e for e in baseline.get("entries", [])}
    cur_entries = {entry_key(e): e for e in current.get("entries", [])}
    for key in sorted(base_entries.keys() | cur_entries.keys()):
        where = "/".join(str(k) for k in key)
        if key not in cur_entries:
            d.structural(where, "entry missing from current")
        elif key not in base_entries:
            d.structural(where, "entry not in baseline")
        else:
            d.compare_tree(where, base_entries[key], cur_entries[key])

    base_metrics = {metric_key(m): m for m in baseline.get("metrics", [])}
    cur_metrics = {metric_key(m): m for m in current.get("metrics", [])}
    for key in sorted(base_metrics.keys() | cur_metrics.keys()):
        where = f"metrics/{key[0]}{list(key[1])}"
        if key not in cur_metrics:
            d.structural(where, "instrument missing from current")
        elif key not in base_metrics:
            d.structural(where, "instrument not in baseline")
        else:
            d.compare_tree(where, base_metrics[key], cur_metrics[key])
    return d


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="committed baseline report")
    parser.add_argument("current", help="freshly generated report")
    parser.add_argument("--time-tol", type=float, default=None, metavar="FRAC",
                        help="fail when a timing key drifts more than this "
                             "relative fraction (default: report only)")
    parser.add_argument("--throughput-tol", type=float, default=None,
                        metavar="FRAC",
                        help="fail when aggregate or per-micro refs/sec falls "
                             "more than this fraction below baseline "
                             "(one-sided; faster never fails)")
    args = parser.parse_args()

    try:
        with open(args.baseline, encoding="utf-8") as f:
            baseline = json.load(f)
        with open(args.current, encoding="utf-8") as f:
            current = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_diff: {e}", file=sys.stderr)
        return 2

    d = diff_reports(baseline, current, args.time_tol)
    if args.throughput_tol is not None:
        gate_throughput(d, baseline, current, args.throughput_tol)
    d.render()
    if d.failed:
        print(f"\nbench_diff: FAIL ({d.hard_failures} simulated/structural, "
              f"{d.timing_failures} timing, "
              f"{d.throughput_failures} throughput)")
        return 1
    noise = sum(1 for r in d.rows if "timing" in r[4])
    print(f"\nbench_diff: OK ({noise} timing-noise keys ignored)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
