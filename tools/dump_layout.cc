// Dumps struct layouts — sizeof / alignof / offsetof — as the compiled
// binary sees them, as JSON.  tests/lint/layout_sync_check.py diffs this
// against `tools/cpt_lint.py --layout-report`, so the Python linter's
// *layout model* (the Itanium-style padding arithmetic behind the
// false-sharing, layout-ledger and model-truth-sync rules) is pinned to
// what the C++ compiler actually built: if either side drifts (a reordered
// field, a changed alignas, a model arithmetic bug), the ctest
// `lint_layout_sync` turns red.
//
// Private nested node/entry types are reached through the layout-probe
// aliases on check::TestBackdoor — the same friend the invariant-auditor
// tests use — so no class widens its real API for the dump.
//
// offsetof on non-standard-layout classes is conditionally-supported;
// GCC/Clang define it for every type we probe (the tools/CMakeLists.txt
// target compiles with -Wno-invalid-offsetof to keep the dump exhaustive).
#include <cstddef>
#include <iostream>

#include "check/test_backdoor.h"
#include "common/hash.h"
#include "common/pte.h"
#include "common/stats.h"
#include "common/sync.h"
#include "common/types.h"
#include "core/multi_size.h"
#include "mem/cache_model.h"
#include "mem/reservation.h"
#include "mem/sim_alloc.h"
#include "obs/json_writer.h"
#include "os/address_space.h"
#include "pt/page_table.h"
#include "sim/machine.h"
#include "tlb/tlb.h"
#include "workload/workload.h"

namespace {

cpt::obs::JsonWriter* g_w = nullptr;

// Each STRUCT(...) block emits one ledger-keyed object; FIELD(name) rows
// are offsetof probes against the block's type.  `Cur` is rebound per block.
#define STRUCT_BEGIN(qual, ...)                            \
  {                                                        \
    using Cur = __VA_ARGS__;                               \
    g_w->Key(qual);                                        \
    g_w->BeginObject();                                    \
    g_w->KV("size", std::uint64_t{sizeof(Cur)});           \
    g_w->KV("align", std::uint64_t{alignof(Cur)});         \
    g_w->Key("fields");                                    \
    g_w->BeginObject();

#define FIELD(name) g_w->KV(#name, std::uint64_t{offsetof(Cur, name)});

#define STRUCT_END() \
    g_w->EndObject(); \
    g_w->EndObject(); \
  }

void DumpStructs() {
  using cpt::check::TestBackdoor;

  // ---- common ----
  STRUCT_BEGIN("MappingWord", cpt::MappingWord) STRUCT_END()
  STRUCT_BEGIN("AtomicMappingWord", cpt::AtomicMappingWord) STRUCT_END()
  STRUCT_BEGIN("Attr", cpt::Attr) STRUCT_END()
  STRUCT_BEGIN("PageSize", cpt::PageSize) STRUCT_END()
  STRUCT_BEGIN("BlockSpan", cpt::BlockSpan)
    FIELD(first) FIELD(pages)
  STRUCT_END()
  STRUCT_BEGIN("Mutex", cpt::Mutex) STRUCT_END()
  STRUCT_BEGIN("SharedMutex", cpt::SharedMutex) STRUCT_END()
  STRUCT_BEGIN("WaitHistogram", cpt::WaitHistogram) STRUCT_END()
  STRUCT_BEGIN("StripeSet", cpt::StripeSet) STRUCT_END()
  STRUCT_BEGIN("ThreadGroup", cpt::ThreadGroup) STRUCT_END()
  STRUCT_BEGIN("Histogram", cpt::Histogram) STRUCT_END()
  STRUCT_BEGIN("RunningStats", cpt::RunningStats) STRUCT_END()
  STRUCT_BEGIN("BucketHasher", cpt::BucketHasher) STRUCT_END()

  // ---- pt ----
  STRUCT_BEGIN("TlbFill", cpt::pt::TlbFill)
    FIELD(kind) FIELD(base_vpn) FIELD(pages_log2) FIELD(word)
  STRUCT_END()
  STRUCT_BEGIN("PageTable", cpt::pt::PageTable) STRUCT_END()
  STRUCT_BEGIN("HashedPageTable", cpt::pt::HashedPageTable) STRUCT_END()
  STRUCT_BEGIN("HashedPageTable::Options", cpt::pt::HashedPageTable::Options)
    FIELD(num_buckets) FIELD(tag_shift) FIELD(packed_pte) FIELD(inverted)
    FIELD(hash_kind) FIELD(placement) FIELD(lock_stripes)
    FIELD(striped_node_capacity)
  STRUCT_END()
  STRUCT_BEGIN("HashedPageTable::Node", TestBackdoor::HashedNode)
    FIELD(key) FIELD(base_vpn) FIELD(word) FIELD(next) FIELD(addr)
  STRUCT_END()
  STRUCT_BEGIN("SuperpageIndexHashed", cpt::pt::SuperpageIndexHashed) STRUCT_END()
  STRUCT_BEGIN("SuperpageIndexHashed::Node", TestBackdoor::SuperpageIndexNode)
    FIELD(base_vpn) FIELD(pages_log2) FIELD(word) FIELD(next) FIELD(addr)
  STRUCT_END()
  STRUCT_BEGIN("MultiTableHashed", cpt::pt::MultiTableHashed) STRUCT_END()
  STRUCT_BEGIN("ForwardMappedPageTable", cpt::pt::ForwardMappedPageTable) STRUCT_END()
  STRUCT_BEGIN("ForwardMappedPageTable::Leaf", TestBackdoor::ForwardLeaf)
    FIELD(addr) FIELD(slots) FIELD(live)
  STRUCT_END()
  STRUCT_BEGIN("ForwardMappedPageTable::Inner", TestBackdoor::ForwardInner)
    FIELD(addr) FIELD(children) FIELD(super_slots)
  STRUCT_END()
  STRUCT_BEGIN("LinearPageTable", cpt::pt::LinearPageTable) STRUCT_END()
  STRUCT_BEGIN("LinearPageTable::Leaf", TestBackdoor::LinearLeaf)
    FIELD(addr) FIELD(slots) FIELD(live)
  STRUCT_END()
  STRUCT_BEGIN("SoftwareTlb", cpt::pt::SoftwareTlb) STRUCT_END()
  STRUCT_BEGIN("SoftwareTlb::Entry", TestBackdoor::SoftwareTlbEntry)
    FIELD(key) FIELD(valid) FIELD(stamp) FIELD(fills)
  STRUCT_END()

  // ---- core ----
  STRUCT_BEGIN("ClusteredPageTable", cpt::core::ClusteredPageTable) STRUCT_END()
  STRUCT_BEGIN("ClusteredPageTable::Node", TestBackdoor::ClusteredNode)
    FIELD(tag) FIELD(sub_log2) FIELD(next) FIELD(addr) FIELD(words)
  STRUCT_END()
  STRUCT_BEGIN("AdaptiveClusteredPageTable", cpt::core::AdaptiveClusteredPageTable) STRUCT_END()
  STRUCT_BEGIN("AdaptiveClusteredPageTable::Node", TestBackdoor::AdaptiveNode)
    FIELD(tag) FIELD(kind) FIELD(boff) FIELD(next) FIELD(addr) FIELD(words)
  STRUCT_END()
  STRUCT_BEGIN("MultiSizeClustered", cpt::core::MultiSizeClustered) STRUCT_END()

  // ---- tlb ----
  STRUCT_BEGIN("Tlb", cpt::tlb::Tlb) STRUCT_END()
  STRUCT_BEGIN("TlbStats", cpt::tlb::TlbStats)
    FIELD(accesses) FIELD(hits) FIELD(misses) FIELD(block_misses)
    FIELD(subblock_misses)
  STRUCT_END()
  STRUCT_BEGIN("SinglePageTlb", cpt::tlb::SinglePageTlb) STRUCT_END()
  STRUCT_BEGIN("SinglePageTlb::Entry", TestBackdoor::SinglePageEntry)
    FIELD(asid) FIELD(vpn) FIELD(ppn) FIELD(valid) FIELD(stamp)
  STRUCT_END()
  STRUCT_BEGIN("SuperpageTlb", cpt::tlb::SuperpageTlb) STRUCT_END()
  STRUCT_BEGIN("SuperpageTlb::Entry", TestBackdoor::SuperpageEntry)
    FIELD(asid) FIELD(base_vpn) FIELD(base_ppn) FIELD(pages_log2)
    FIELD(valid) FIELD(stamp)
  STRUCT_END()
  STRUCT_BEGIN("PartialSubblockTlb", cpt::tlb::PartialSubblockTlb) STRUCT_END()
  STRUCT_BEGIN("PartialSubblockTlb::Entry", TestBackdoor::PartialSubblockEntry)
    FIELD(asid) FIELD(vpbn) FIELD(block_ppn) FIELD(vector) FIELD(block_entry)
    FIELD(single_vpn) FIELD(single_ppn) FIELD(valid) FIELD(stamp)
  STRUCT_END()
  STRUCT_BEGIN("CompleteSubblockTlb", cpt::tlb::CompleteSubblockTlb) STRUCT_END()
  STRUCT_BEGIN("CompleteSubblockTlb::Entry", TestBackdoor::CompleteSubblockEntry)
    FIELD(asid) FIELD(vpbn) FIELD(vector) FIELD(ppns) FIELD(valid) FIELD(stamp)
  STRUCT_END()
  STRUCT_BEGIN("DualSizeSetAssocTlb", cpt::tlb::DualSizeSetAssocTlb) STRUCT_END()
  STRUCT_BEGIN("DualSizeSetAssocTlb::Entry", TestBackdoor::DualSizeEntry)
    FIELD(asid) FIELD(base_vpn) FIELD(base_ppn) FIELD(pages_log2)
    FIELD(valid) FIELD(stamp)
  STRUCT_END()

  // ---- mem ----
  STRUCT_BEGIN("CacheTouchModel", cpt::mem::CacheTouchModel) STRUCT_END()
  STRUCT_BEGIN("SimAllocator", cpt::mem::SimAllocator) STRUCT_END()
  STRUCT_BEGIN("ReservationAllocator", cpt::mem::ReservationAllocator) STRUCT_END()
  STRUCT_BEGIN("ReservationAllocator::FrameGrant",
               cpt::mem::ReservationAllocator::FrameGrant)
    FIELD(ppn) FIELD(properly_placed)
  STRUCT_END()

  // ---- os / sim / workload ----
  STRUCT_BEGIN("AddressSpace", cpt::os::AddressSpace) STRUCT_END()
  STRUCT_BEGIN("Machine", cpt::sim::Machine) STRUCT_END()
  STRUCT_BEGIN("MachineOptions", cpt::sim::MachineOptions) STRUCT_END()
  STRUCT_BEGIN("Reference", cpt::workload::Reference)
    FIELD(asid) FIELD(va) FIELD(is_write)
  STRUCT_END()
}

#undef STRUCT_BEGIN
#undef FIELD
#undef STRUCT_END

}  // namespace

int main() {
  cpt::obs::JsonWriter w(std::cout, /*pretty=*/true);
  g_w = &w;
  w.BeginObject();
  w.KV("schema", "cpt-dump-layout");
  w.KV("version", std::uint64_t{1});
  w.KV("host_line_bytes", std::uint64_t{CPT_CACHE_LINE});
  w.KV("sim_line_bytes", std::uint64_t{cpt::kDefaultCacheLineSize});
  w.KV("word_bytes", std::uint64_t{sizeof(cpt::MappingWord)});
  w.Key("structs");
  w.BeginObject();
  DumpStructs();
  w.EndObject();
  w.EndObject();
  std::cout << '\n';
  return 0;
}
