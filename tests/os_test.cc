// Tests for the OS substrate: demand paging, page-size assignment policy,
// promotion/demotion, PSB vector maintenance, and unmap paths — against
// both clustered and multi-table-hashed page tables.
#include "os/address_space.h"

#include <gtest/gtest.h>

#include "core/clustered.h"
#include "mem/cache_model.h"
#include "mem/reservation.h"
#include "pt/multi_hashed.h"

namespace cpt::os {
namespace {

class OsClusteredTest : public ::testing::Test {
 protected:
  OsClusteredTest()
      : cache_(256),
        frames_(1 << 16, 16),
        table_(cache_, {}),
        strategy_(PteStrategy::kBaseOnly) {}

  void MakeAspace(PteStrategy strategy) {
    strategy_ = strategy;
    aspace_ = std::make_unique<AddressSpace>(
        0, table_, frames_, AddressSpaceOptions{.strategy = strategy, .subblock_factor = 16});
  }

  std::optional<pt::TlbFill> Lookup(Vpn vpn) {
    mem::WalkScope scope(cache_);
    return table_.Lookup(VaOf(vpn));
  }

  mem::CacheTouchModel cache_;
  mem::ReservationAllocator frames_;
  core::ClusteredPageTable table_;
  PteStrategy strategy_;
  std::unique_ptr<AddressSpace> aspace_;
};

TEST_F(OsClusteredTest, TouchMapsAndRepeatTouchIsIdempotent) {
  MakeAspace(PteStrategy::kBaseOnly);
  EXPECT_TRUE(aspace_->TouchPage(VaOf(Vpn{0x100})));
  EXPECT_TRUE(aspace_->TouchPage(VaOf(Vpn{0x100})));
  EXPECT_EQ(aspace_->resident_pages(), 1u);
  EXPECT_EQ(aspace_->stats().faults, 1u);
  EXPECT_TRUE(Lookup(Vpn{0x100}).has_value());
  EXPECT_TRUE(aspace_->IsResident(Vpn{0x100}));
  EXPECT_FALSE(aspace_->IsResident(Vpn{0x101}));
}

TEST_F(OsClusteredTest, SuperpagePolicyPromotesFullBlock) {
  MakeAspace(PteStrategy::kSuperpage);
  for (unsigned i = 0; i < 16; ++i) {
    ASSERT_TRUE(aspace_->TouchPage(VaOf(Vpn{0x100} + i)));
  }
  EXPECT_EQ(aspace_->stats().promotions, 1u);
  const auto fill = Lookup(Vpn{0x105});
  ASSERT_TRUE(fill.has_value());
  EXPECT_EQ(fill->kind, MappingKind::kSuperpage);
  EXPECT_EQ(fill->pages_log2, 4u);
  // A promoted block is one compact 24-byte node.
  EXPECT_EQ(table_.SizeBytesPaperModel(), 24u);
  EXPECT_EQ(aspace_->Census().super_blocks, 1u);
}

TEST_F(OsClusteredTest, SuperpagePolicyKeepsPartialBlocksAsBase) {
  MakeAspace(PteStrategy::kSuperpage);
  for (unsigned i = 0; i < 15; ++i) {
    ASSERT_TRUE(aspace_->TouchPage(VaOf(Vpn{0x100} + i)));
  }
  EXPECT_EQ(aspace_->stats().promotions, 0u);
  EXPECT_EQ(Lookup(Vpn{0x105})->kind, MappingKind::kBase);
  EXPECT_EQ(aspace_->Census().base_blocks, 1u);
}

TEST_F(OsClusteredTest, UnmapDemotesSuperpage) {
  MakeAspace(PteStrategy::kSuperpage);
  for (unsigned i = 0; i < 16; ++i) {
    ASSERT_TRUE(aspace_->TouchPage(VaOf(Vpn{0x100} + i)));
  }
  aspace_->UnmapRange(Vpn{0x103}, 1);
  EXPECT_EQ(aspace_->stats().demotions, 1u);
  EXPECT_FALSE(Lookup(Vpn{0x103}).has_value());
  for (unsigned i = 0; i < 16; ++i) {
    if (i == 3) {
      continue;
    }
    const auto fill = Lookup(Vpn{0x100} + i);
    ASSERT_TRUE(fill.has_value()) << "page " << i;
    EXPECT_EQ(fill->kind, MappingKind::kBase);
  }
  EXPECT_EQ(aspace_->resident_pages(), 15u);
}

TEST_F(OsClusteredTest, RetouchAfterDemotionRepromotes) {
  MakeAspace(PteStrategy::kSuperpage);
  for (unsigned i = 0; i < 16; ++i) {
    ASSERT_TRUE(aspace_->TouchPage(VaOf(Vpn{0x100} + i)));
  }
  aspace_->UnmapRange(Vpn{0x103}, 1);
  ASSERT_TRUE(aspace_->TouchPage(VaOf(Vpn{0x103})));
  EXPECT_EQ(aspace_->stats().promotions, 2u);
  EXPECT_EQ(Lookup(Vpn{0x103})->kind, MappingKind::kSuperpage);
}

TEST_F(OsClusteredTest, PsbPolicyBuildsVectorIncrementally) {
  MakeAspace(PteStrategy::kPartialSubblock);
  ASSERT_TRUE(aspace_->TouchPage(VaOf(Vpn{0x200})));
  ASSERT_TRUE(aspace_->TouchPage(VaOf(Vpn{0x207})));
  ASSERT_TRUE(aspace_->TouchPage(VaOf(Vpn{0x20F})));
  const auto fill = Lookup(Vpn{0x207});
  ASSERT_TRUE(fill.has_value());
  EXPECT_EQ(fill->kind, MappingKind::kPartialSubblock);
  EXPECT_EQ(fill->word.valid_vector(), 0b1000'0000'1000'0001);
  EXPECT_FALSE(Lookup(Vpn{0x201}).has_value());
  EXPECT_EQ(table_.SizeBytesPaperModel(), 24u) << "one compact PSB node";
}

TEST_F(OsClusteredTest, PsbUnmapShrinksVectorAndFreesNode) {
  MakeAspace(PteStrategy::kPartialSubblock);
  for (unsigned i = 0; i < 4; ++i) {
    ASSERT_TRUE(aspace_->TouchPage(VaOf(Vpn{0x200} + i)));
  }
  aspace_->UnmapRange(Vpn{0x200}, 2);
  EXPECT_FALSE(Lookup(Vpn{0x200}).has_value());
  EXPECT_TRUE(Lookup(Vpn{0x202}).has_value());
  aspace_->UnmapRange(Vpn{0x202}, 2);
  EXPECT_EQ(table_.SizeBytesPaperModel(), 0u);
  EXPECT_EQ(aspace_->resident_pages(), 0u);
}

TEST_F(OsClusteredTest, PsbPlacementFailureFallsBackToBasePte) {
  // A tiny frame pool: 2 blocks of 16.  Touch one page in each of three
  // virtual blocks; the third must break a reservation and get an unplaced
  // frame, mapped by a base PTE.
  mem::ReservationAllocator small(32, 16);
  AddressSpace as(0, table_, small,
                  AddressSpaceOptions{.strategy = PteStrategy::kPartialSubblock,
                                      .subblock_factor = 16});
  ASSERT_TRUE(as.TouchPage(VaOf(Vpn{0x100})));
  ASSERT_TRUE(as.TouchPage(VaOf(Vpn{0x200})));
  ASSERT_TRUE(as.TouchPage(VaOf(Vpn{0x300})));
  EXPECT_EQ(as.stats().placement_failures, 1u);
  const auto fill = Lookup(Vpn{0x300});
  ASSERT_TRUE(fill.has_value());
  EXPECT_EQ(fill->kind, MappingKind::kBase);
}

TEST_F(OsClusteredTest, OutOfMemoryReportsFalse) {
  mem::ReservationAllocator tiny(16, 16);
  AddressSpace as(0, table_, tiny, AddressSpaceOptions{.subblock_factor = 16});
  for (unsigned i = 0; i < 16; ++i) {
    ASSERT_TRUE(as.TouchPage(VaOf(Vpn{0x100} + i)));
  }
  EXPECT_FALSE(as.TouchPage(VaOf(Vpn{0x200})));
  EXPECT_EQ(as.stats().oom_faults, 1u);
}

TEST_F(OsClusteredTest, UnmapFreesFramesForReuse) {
  mem::ReservationAllocator tiny(16, 16);
  AddressSpace as(0, table_, tiny, AddressSpaceOptions{.subblock_factor = 16});
  for (unsigned i = 0; i < 16; ++i) {
    ASSERT_TRUE(as.TouchPage(VaOf(Vpn{0x100} + i)));
  }
  as.UnmapRange(Vpn{0x100}, 16);
  EXPECT_EQ(tiny.frames_used(), 0u);
  for (unsigned i = 0; i < 16; ++i) {
    EXPECT_TRUE(as.TouchPage(VaOf(Vpn{0x900} + i))) << "page " << i;
  }
}

TEST_F(OsClusteredTest, CensusCountsMixedBlocks) {
  MakeAspace(PteStrategy::kPartialSubblock);
  mem::ReservationAllocator small(32, 16);
  AddressSpace as(1, table_, small,
                  AddressSpaceOptions{.strategy = PteStrategy::kPartialSubblock,
                                      .subblock_factor = 16});
  // Fill two blocks' reservations, then force a third block's page to be
  // unplaced while also adding placed pages to it?  With 2 groups the third
  // block is entirely unplaced: it becomes a base-only block.
  ASSERT_TRUE(as.TouchPage(VaOf(Vpn{0x100})));
  ASSERT_TRUE(as.TouchPage(VaOf(Vpn{0x200})));
  ASSERT_TRUE(as.TouchPage(VaOf(Vpn{0x300})));
  const auto census = as.Census();
  EXPECT_EQ(census.psb_blocks, 2u);
  EXPECT_EQ(census.base_blocks, 1u);
}

// The same policies must work via the multi-table hashed organization.
TEST(OsMultiHashedTest, SuperpagePolicyUsesBlockTable) {
  mem::CacheTouchModel cache(256);
  pt::MultiTableHashed table(cache, {});
  mem::ReservationAllocator frames(1 << 12, 16);
  AddressSpace as(0, table, frames,
                  AddressSpaceOptions{.strategy = PteStrategy::kSuperpage,
                                      .subblock_factor = 16});
  for (unsigned i = 0; i < 16; ++i) {
    ASSERT_TRUE(as.TouchPage(VaOf(Vpn{0x100} + i)));
  }
  EXPECT_EQ(as.stats().promotions, 1u);
  EXPECT_EQ(table.base_table().node_count(), 0u) << "base PTEs removed on promotion";
  EXPECT_EQ(table.block_table().node_count(), 1u);
  mem::WalkScope scope(cache);
  const auto fill = table.Lookup(VaOf(Vpn{0x108}));
  ASSERT_TRUE(fill.has_value());
  EXPECT_EQ(fill->kind, MappingKind::kSuperpage);
  EXPECT_EQ(fill->Translate(Vpn{0x108}), fill->word.ppn() + 8);
}

TEST(OsMultiHashedTest, PsbPolicyKeepsBaseTableForUnplacedOnly) {
  mem::CacheTouchModel cache(256);
  pt::MultiTableHashed table(cache, {});
  mem::ReservationAllocator frames(32, 16);
  AddressSpace as(0, table, frames,
                  AddressSpaceOptions{.strategy = PteStrategy::kPartialSubblock,
                                      .subblock_factor = 16});
  ASSERT_TRUE(as.TouchPage(VaOf(Vpn{0x100})));  // placed -> PSB
  ASSERT_TRUE(as.TouchPage(VaOf(Vpn{0x200})));  // placed -> PSB
  ASSERT_TRUE(as.TouchPage(VaOf(Vpn{0x300})));  // unplaced -> base
  EXPECT_EQ(table.block_table().node_count(), 2u);
  EXPECT_EQ(table.base_table().node_count(), 1u);
}

}  // namespace
}  // namespace cpt::os
