// Cross-product integration tests: every page-table organization under
// every TLB design (where the combination is meaningful) runs a real
// workload slice through the full machine and must uphold the global
// invariants of the simulation.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "sim/analytic.h"
#include "sim/experiments.h"
#include "sim/machine.h"
#include "workload/workload.h"

namespace cpt::sim {
namespace {

using MatrixParam = std::tuple<PtKind, TlbKind>;

bool CombinationSupported(PtKind pt, TlbKind tlb) {
  // Plain hashed tables cannot store superpage/PSB PTEs (Section 4: they
  // need the two-table or superpage-index strategy).
  const bool needs_sp = tlb == TlbKind::kSuperpage || tlb == TlbKind::kPartialSubblock;
  if (!needs_sp) {
    return true;
  }
  // Intentionally non-exhaustive: this is a filter naming the unsupported
  // organizations, not a per-kind dispatch.
  switch (pt) {  // cpt-lint: allow(exhaustive-enum-switch)
    case PtKind::kHashed:
    case PtKind::kHashedInverted:
      return false;
    default:
      return true;
  }
}

class MachineMatrixTest : public ::testing::TestWithParam<MatrixParam> {};

TEST_P(MachineMatrixTest, RunsWorkloadSliceWithInvariantsIntact) {
  const auto [pt, tlb] = GetParam();
  if (!CombinationSupported(pt, tlb)) {
    GTEST_SKIP() << "combination not supported by design";
  }
  MachineOptions opts;
  opts.pt_kind = pt;
  opts.tlb_kind = tlb;
  // Differential oracle: every Insert/Remove is mirrored into a shadow map
  // and every Lookup cross-checked; AuditAll() then verifies the structural
  // invariants of the table, the frame allocator, and the TLB.
  opts.audit = true;
  const auto& spec = workload::GetPaperWorkload("mp3d");
  const AccessMeasurement m = MeasureAccessTime(spec, opts, 60000);

  // Global invariants of any valid run:
  EXPECT_EQ(m.audit_defects, 0u) << m.audit_summary;
  EXPECT_GT(m.denominator_misses, 0u) << "the trace must stress the TLB";
  EXPECT_GE(m.avg_lines_per_miss, 0.99) << "every counted miss touches >= 1 line";
  EXPECT_GT(m.pt_bytes, 0u);
  EXPECT_LE(m.miss_ratio, 1.0);
  if (tlb == TlbKind::kCompleteSubblock) {
    EXPECT_EQ(m.block_misses + m.subblock_misses, m.effective_misses);
  }
  // Known cost ceilings: nothing should cost more than a forward-mapped
  // walk except the hashed family under complete-subblock prefetch
  // (16 independent probes).
  const bool hashed_family = pt == PtKind::kHashed || pt == PtKind::kHashedInverted ||
                             pt == PtKind::kHashedSpIndex || pt == PtKind::kHashedMulti;
  if (!hashed_family) {
    EXPECT_LE(m.avg_lines_per_miss, 8.0) << "unexpectedly expensive walk";
  }
}

std::string MatrixName(const ::testing::TestParamInfo<MatrixParam>& info) {
  std::string n = ToString(std::get<0>(info.param)) + "_" + ToString(std::get<1>(info.param));
  for (char& c : n) {
    if (c == '-') {
      c = '_';
    }
  }
  return n;
}

INSTANTIATE_TEST_SUITE_P(
    AllCombinations, MachineMatrixTest,
    ::testing::Combine(::testing::Values(PtKind::kLinear6, PtKind::kLinear1,
                                         PtKind::kLinearHashed, PtKind::kForward,
                                         PtKind::kHashed, PtKind::kHashedMulti,
                                         PtKind::kHashedSpIndex, PtKind::kClustered,
                                         PtKind::kClusteredAdaptive, PtKind::kHashedInverted),
                       ::testing::Values(TlbKind::kSinglePage, TlbKind::kSuperpage,
                                         TlbKind::kPartialSubblock,
                                         TlbKind::kCompleteSubblock)),
    MatrixName);

// The same matrix under a software TLB layer.
class SwTlbMatrixTest : public ::testing::TestWithParam<PtKind> {};

TEST_P(SwTlbMatrixTest, SoftwareTlbWrapsEveryOrganization) {
  MachineOptions opts;
  opts.pt_kind = GetParam();
  opts.swtlb_sets = 1024;
  // The oracle wraps above the software TLB, so a stale cached fill that
  // escaped write-through invalidation would surface as a defect here.
  opts.audit = true;
  const auto& spec = workload::GetPaperWorkload("compress");
  const AccessMeasurement m = MeasureAccessTime(spec, opts, 60000);
  EXPECT_EQ(m.audit_defects, 0u) << m.audit_summary;
  EXPECT_GT(m.denominator_misses, 0u);
  EXPECT_GE(m.avg_lines_per_miss, 0.99);
}

INSTANTIATE_TEST_SUITE_P(AllPts, SwTlbMatrixTest,
                         ::testing::Values(PtKind::kLinear1, PtKind::kForward, PtKind::kHashed,
                                           PtKind::kHashedMulti, PtKind::kClustered,
                                           PtKind::kClusteredAdaptive),
                         [](const ::testing::TestParamInfo<PtKind>& param_info) {
                           std::string n = ToString(param_info.param);
                           for (char& c : n) {
                             if (c == '-') {
                               c = '_';
                             }
                           }
                           return n;
                         });

// ---------------------------------------------------------------------------
// Shared page table mode (Section 7).
// ---------------------------------------------------------------------------

TEST(SharedTableTest, ProcessesShareOneTableWithoutAliasing) {
  MachineOptions opts;
  opts.pt_kind = PtKind::kClustered;
  opts.shared_page_table = true;
  Machine m(opts, 2);
  m.Access(0, VaOf(Vpn{0x100}));
  m.Access(1, VaOf(Vpn{0x100}));  // Same VA, different process.
  EXPECT_EQ(&m.page_table(0), &m.page_table(1)) << "one shared table";
  EXPECT_EQ(m.page_table(0).live_translations(), 2u)
      << "both processes' pages coexist without aliasing";
  // Each process sees its own translation, and the TLB separates them too.
  m.Access(0, VaOf(Vpn{0x100}));
  m.Access(1, VaOf(Vpn{0x100}));
  EXPECT_EQ(m.tlb().stats().hits, 2u);
}

TEST(SharedTableTest, SharedHashedLoadGrowsWithProcessCount) {
  const auto& spec = workload::GetPaperWorkload("compress");
  const auto snap = workload::BuildSnapshot(spec);
  MachineOptions per;
  per.pt_kind = PtKind::kHashed;
  MachineOptions shared = per;
  shared.shared_page_table = true;
  Machine a(per, 2);
  a.Preload(snap);
  Machine b(shared, 2);
  b.Preload(snap);
  // Same total PTE bytes, but one table holds them all.
  EXPECT_EQ(a.TotalPtBytesPaperModel(), b.TotalPtBytesPaperModel());
  EXPECT_EQ(b.page_table(0).live_translations(),
            a.page_table(0).live_translations() + a.page_table(1).live_translations());
}

TEST(SharedTableTest, WorksAcrossTraceRun) {
  const auto& spec = workload::GetPaperWorkload("gcc");
  MachineOptions opts;
  opts.pt_kind = PtKind::kClustered;
  opts.shared_page_table = true;
  const AccessMeasurement m = MeasureAccessTime(spec, opts, 100000);
  EXPECT_GT(m.denominator_misses, 0u);
  EXPECT_GE(m.avg_lines_per_miss, 0.99);
  EXPECT_LE(m.avg_lines_per_miss, 2.0);
}

// ---------------------------------------------------------------------------
// Linear-with-hashed size model (Table 2 row).
// ---------------------------------------------------------------------------

TEST(LinearHashedTest, SizeMatchesTable2Formula) {
  for (const char* name : {"coral", "gcc"}) {
    const auto& spec = workload::GetPaperWorkload(name);
    const auto snap = workload::BuildSnapshot(spec);
    std::uint64_t expected = 0;
    for (std::size_t p = 0; p < snap.pages.size(); ++p) {
      expected += analytic::LinearWithHashedBytes(snap.FlatProcess(p));
    }
    const auto m = MeasurePtSize(spec, {"lh", PtKind::kLinearHashed});
    EXPECT_EQ(m.bytes, expected) << name;
  }
}

TEST(LinearHashedTest, SitsBetweenOneAndSixLevels) {
  const auto& spec = workload::GetPaperWorkload("gcc");
  const auto one = MeasurePtSize(spec, {"l1", PtKind::kLinear1});
  const auto hashed_upper = MeasurePtSize(spec, {"lh", PtKind::kLinearHashed});
  const auto six = MeasurePtSize(spec, {"l6", PtKind::kLinear6});
  EXPECT_GT(hashed_upper.bytes, one.bytes);
  EXPECT_LT(hashed_upper.bytes, six.bytes);
}

}  // namespace
}  // namespace cpt::sim
