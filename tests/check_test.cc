// Tests for the invariant-audit subsystem (src/check).
//
// Two halves:
//   1. Clean structures audit clean — every organization, exercised through
//      its public API with every PTE format it supports, yields an empty
//      AuditReport.
//   2. Corrupted structures audit dirty — check::TestBackdoor breaks one
//      invariant at a time (misaligned tag, duplicated base-page coverage,
//      hash-chain cycle, inconsistent reservation masks, mis-placed grant)
//      and the auditor must name the defect.  Without these tests a
//      vacuously-green auditor would be indistinguishable from a working
//      one.
#include <gtest/gtest.h>

#include <string>

#include "check/auditor.h"
#include "check/shadow_oracle.h"
#include "check/test_backdoor.h"
#include "common/check.h"
#include "core/adaptive.h"
#include "core/clustered.h"
#include "mem/cache_model.h"
#include "mem/reservation.h"
#include "pt/forward.h"
#include "pt/linear.h"
#include "pt/multi_hashed.h"
#include "sim/experiments.h"
#include "sim/machine.h"
#include "tlb/dual_size_setassoc.h"
#include "workload/workload.h"

namespace cpt::check {
namespace {

using ::testing::AssertionResult;

// ---------------------------------------------------------------------------
// Clean structures audit clean.
// ---------------------------------------------------------------------------

class CleanAuditTest : public ::testing::Test {
 protected:
  CleanAuditTest() : cache_(256) {}

  // Exercises every format the table supports: scattered base pages, a
  // block-sized superpage, a sub-block superpage (where supported — the
  // adaptive organization only stores block-sized-or-larger superpages),
  // and a PSB entry.
  template <typename Table>
  void Populate(Table& t, bool sub_block_superpage = true) {
    for (unsigned i = 0; i < 40; ++i) {
      t.InsertBase(Vpn{0x1000 + 7 * i}, Ppn{100 + i}, Attr::ReadWrite());
    }
    if (t.features().superpages) {
      t.InsertSuperpage(Vpn{0x4000}, kPage64K, Ppn{0x100}, Attr::ReadWrite());
      if (sub_block_superpage) {
        t.InsertSuperpage(Vpn{0x8000}, kPage8K, Ppn{0x200}, Attr::ReadWrite());
      }
    }
    if (t.features().partial_subblock) {
      t.UpsertPartialSubblock(Vpn{0x10000}, 16, Ppn{0x300}, Attr::ReadWrite(), 0x0F0F);
    }
    // Some removals so freed nodes and shrunk chains get audited too.
    for (unsigned i = 0; i < 10; ++i) {
      t.RemoveBase(Vpn{0x1000 + 7 * i});
    }
  }

  mem::CacheTouchModel cache_;
};

TEST_F(CleanAuditTest, Clustered) {
  core::ClusteredPageTable t(cache_, {});
  Populate(t);
  const AuditReport r = StructuralAuditor::Audit(t);
  EXPECT_TRUE(r.ok()) << r.Summary();
}

TEST_F(CleanAuditTest, ClusteredAdaptive) {
  core::AdaptiveClusteredPageTable t(cache_, {});
  Populate(t, /*sub_block_superpage=*/false);
  const AuditReport r = StructuralAuditor::Audit(t);
  EXPECT_TRUE(r.ok()) << r.Summary();
}

TEST_F(CleanAuditTest, Hashed) {
  pt::HashedPageTable t(cache_, {});
  for (unsigned i = 0; i < 40; ++i) {
    t.InsertBase(Vpn{0x1000 + 7 * i}, Ppn{100 + i}, Attr::ReadWrite());
  }
  t.RemoveBase(Vpn{0x1000});
  const AuditReport r = StructuralAuditor::Audit(t);
  EXPECT_TRUE(r.ok()) << r.Summary();
}

TEST_F(CleanAuditTest, HashedMulti) {
  pt::MultiTableHashed t(cache_, {});
  Populate(t);
  const AuditReport r = StructuralAuditor::Audit(t);
  EXPECT_TRUE(r.ok()) << r.Summary();
}

TEST_F(CleanAuditTest, HashedSpIndex) {
  pt::SuperpageIndexHashed t(cache_, {});
  Populate(t);
  const AuditReport r = StructuralAuditor::Audit(t);
  EXPECT_TRUE(r.ok()) << r.Summary();
}

TEST_F(CleanAuditTest, Linear) {
  pt::LinearPageTable t(cache_, {});
  Populate(t);
  const AuditReport r = StructuralAuditor::Audit(t);
  EXPECT_TRUE(r.ok()) << r.Summary();
}

TEST_F(CleanAuditTest, Forward) {
  pt::ForwardMappedPageTable t(cache_, {});
  Populate(t);
  const AuditReport r = StructuralAuditor::Audit(t);
  EXPECT_TRUE(r.ok()) << r.Summary();
}

TEST_F(CleanAuditTest, ReservationAllocator) {
  mem::ReservationAllocator alloc(1024, 16);
  alloc.EnableGrantLog();
  for (unsigned blk = 0; blk < 8; ++blk) {
    for (unsigned boff = 0; boff < 16; boff += 2) {
      ASSERT_TRUE(alloc.Allocate(blk, boff).has_value());
    }
  }
  const AuditReport r = StructuralAuditor::Audit(alloc);
  EXPECT_TRUE(r.ok()) << r.Summary();
}

// The dual-size set-associative TLB is not driven by Machine, so exercise
// its audit (set placement, size discrimination, invalid-entry accounting)
// directly.
TEST_F(CleanAuditTest, DualSizeSetAssocTlb) {
  tlb::DualSizeSetAssocTlb t(/*num_sets=*/8, /*ways=*/2, /*superpage_log2=*/4);
  t.Insert(0, Vpn{0x4000},
           pt::TlbFill{.kind = MappingKind::kSuperpage,
                       .base_vpn = Vpn{0x4000},
                       .pages_log2 = 4,
                       .word = MappingWord::Superpage(Ppn{0x100}, Attr::ReadWrite(),
                                                      kPage64K)});
  for (unsigned i = 0; i < 24; ++i) {
    t.Insert(1, Vpn{0x9000 + 16 * i},
             pt::TlbFill{.kind = MappingKind::kBase,
                         .base_vpn = Vpn{0x9000 + 16 * i},
                         .pages_log2 = 0,
                         .word = MappingWord::Base(Ppn{7 + i}, Attr::ReadWrite())});
  }
  const AuditReport r = StructuralAuditor::AuditTlb(t);
  EXPECT_TRUE(r.ok()) << r.Summary();
}

// A full machine run audits clean for every TLB design (TLB occupancy,
// set placement, and invalid-entry accounting included).
class MachineAuditTest : public ::testing::TestWithParam<sim::TlbKind> {};

TEST_P(MachineAuditTest, WorkloadRunAuditsClean) {
  sim::MachineOptions opts;
  opts.pt_kind = sim::PtKind::kClustered;
  opts.tlb_kind = GetParam();
  opts.audit = true;
  const auto& spec = workload::GetPaperWorkload("compress");
  const sim::AccessMeasurement m = sim::MeasureAccessTime(spec, opts, 40000);
  EXPECT_EQ(m.audit_defects, 0u) << m.audit_summary;
}

INSTANTIATE_TEST_SUITE_P(AllTlbs, MachineAuditTest,
                         ::testing::Values(sim::TlbKind::kSinglePage, sim::TlbKind::kSuperpage,
                                           sim::TlbKind::kPartialSubblock,
                                           sim::TlbKind::kCompleteSubblock),
                         [](const ::testing::TestParamInfo<sim::TlbKind>& info) {
                           std::string n = sim::ToString(info.param);
                           for (char& c : n) {
                             if (c == '-') {
                               c = '_';
                             }
                           }
                           return n;
                         });

// ---------------------------------------------------------------------------
// Seeded corruption must be detected — and named.
// ---------------------------------------------------------------------------

TEST(CorruptionTest, MisalignedTagIsDetected) {
  mem::CacheTouchModel cache(256);
  pt::HashedPageTable t(cache, {});
  for (unsigned i = 0; i < 8; ++i) {
    t.InsertBase(Vpn{0x500 + i}, Ppn{10 + i}, Attr::ReadWrite());
  }
  ASSERT_TRUE(StructuralAuditor::Audit(t).ok());
  ASSERT_TRUE(TestBackdoor::CorruptHashedBaseVpn(t));
  const AuditReport r = StructuralAuditor::Audit(t);
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.Summary().find("misaligned tag"), std::string::npos) << r.Summary();
}

TEST(CorruptionTest, DuplicateCoverageIsDetected) {
  mem::CacheTouchModel cache(256);
  core::ClusteredPageTable t(cache, {});
  for (unsigned i = 0; i < 32; ++i) {
    t.InsertBase(Vpn{0x900 + i}, Ppn{40 + i}, Attr::ReadWrite());
  }
  ASSERT_TRUE(StructuralAuditor::Audit(t).ok());
  ASSERT_TRUE(TestBackdoor::SeedDuplicateCoverage(t));
  const AuditReport r = StructuralAuditor::Audit(t);
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.Summary().find("covered by more than one valid mapping"), std::string::npos)
      << r.Summary();
}

TEST(CorruptionTest, ChainCycleIsDetected) {
  mem::CacheTouchModel cache(256);
  core::ClusteredPageTable t(cache, {});
  for (unsigned i = 0; i < 32; ++i) {
    t.InsertBase(Vpn{0x900 + 16 * i}, Ppn{40 + i}, Attr::ReadWrite());
  }
  ASSERT_TRUE(StructuralAuditor::Audit(t).ok());
  ASSERT_TRUE(TestBackdoor::SeedChainCycle(t));
  const AuditReport r = StructuralAuditor::Audit(t);
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.Summary().find("cyclic"), std::string::npos) << r.Summary();
}

TEST(CorruptionTest, ReservationMaskMismatchIsDetected) {
  mem::ReservationAllocator alloc(256, 16);
  for (unsigned boff = 0; boff < 8; ++boff) {
    ASSERT_TRUE(alloc.Allocate(1, boff).has_value());
  }
  ASSERT_TRUE(StructuralAuditor::Audit(alloc).ok());
  ASSERT_TRUE(TestBackdoor::CorruptReservationMask(alloc));
  const AuditReport r = StructuralAuditor::Audit(alloc);
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.Summary().find("group masks account for"), std::string::npos) << r.Summary();
}

TEST(CorruptionTest, MisplacedGrantIsDetected) {
  mem::ReservationAllocator alloc(256, 16);
  alloc.EnableGrantLog();
  ASSERT_TRUE(alloc.Allocate(3, 5).has_value());
  ASSERT_TRUE(StructuralAuditor::Audit(alloc).ok());
  ASSERT_TRUE(TestBackdoor::MisplaceGrant(alloc));
  const AuditReport r = StructuralAuditor::Audit(alloc);
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.Summary().find("claims proper placement"), std::string::npos) << r.Summary();
}

// ---------------------------------------------------------------------------
// Shadow-map differential oracle.
// ---------------------------------------------------------------------------

TEST(ShadowOracleTest, CleanUsageHasNoDefects) {
  mem::CacheTouchModel cache(256);
  ShadowedPageTable t(cache, std::make_unique<core::ClusteredPageTable>(
                                 cache, core::ClusteredPageTable::Options{}));
  for (unsigned i = 0; i < 64; ++i) {
    t.InsertBase(Vpn{0x2000} + i, Ppn{500} + i, Attr::ReadWrite());
  }
  for (unsigned i = 0; i < 64; ++i) {
    EXPECT_TRUE(t.Lookup(VaOf(Vpn{0x2000} + i)).has_value());
  }
  EXPECT_FALSE(t.Lookup(VaOf(Vpn{0x9999})).has_value());
  for (unsigned i = 0; i < 16; ++i) {
    t.RemoveBase(Vpn{0x2000} + i);
    EXPECT_FALSE(t.Lookup(VaOf(Vpn{0x2000} + i)).has_value());
  }
  EXPECT_EQ(t.lookups_checked(), 64u + 1 + 16);
  const AuditReport r = t.FinalCheck();
  EXPECT_TRUE(r.ok()) << r.Summary();
}

TEST(ShadowOracleTest, CatchesLostMapping) {
  mem::CacheTouchModel cache(256);
  ShadowedPageTable t(cache, std::make_unique<core::ClusteredPageTable>(
                                 cache, core::ClusteredPageTable::Options{}));
  t.InsertBase(Vpn{0x2000}, Ppn{500}, Attr::ReadWrite());
  // Remove directly from the wrapped table, behind the oracle's back — the
  // stand-in for a buggy organization losing a mapping.
  ASSERT_TRUE(t.inner().RemoveBase(Vpn{0x2000}));
  EXPECT_FALSE(t.Lookup(VaOf(Vpn{0x2000})).has_value());
  const AuditReport r = t.FinalCheck();
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.Summary().find("page-faulted"), std::string::npos) << r.Summary();
}

TEST(ShadowOracleTest, CatchesWrongTranslation) {
  mem::CacheTouchModel cache(256);
  ShadowedPageTable t(cache, std::make_unique<core::ClusteredPageTable>(
                                 cache, core::ClusteredPageTable::Options{}));
  t.InsertBase(Vpn{0x2000}, Ppn{500}, Attr::ReadWrite());
  // Remap behind the oracle's back: the table now answers with a PPN the
  // shadow never saw.
  t.inner().InsertBase(Vpn{0x2000}, Ppn{777}, Attr::ReadWrite());
  EXPECT_TRUE(t.Lookup(VaOf(Vpn{0x2000})).has_value());
  const AuditReport r = t.defects();
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.Summary().find("shadow expects"), std::string::npos) << r.Summary();
}

// ---------------------------------------------------------------------------
// CPT_CHECK macros die loudly.
// ---------------------------------------------------------------------------

TEST(CheckMacroDeathTest, FailedCheckAborts) {
  EXPECT_DEATH(CPT_CHECK(1 + 1 == 3, "arithmetic is broken"), "CPT_CHECK failed");
}

TEST(CheckMacroDeathTest, FailedDcheckAbortsWhenEnabled) {
#ifdef NDEBUG
  GTEST_SKIP() << "CPT_DCHECK compiled out";
#else
  EXPECT_DEATH(CPT_DCHECK(false), "CPT_DCHECK failed");
#endif
}

}  // namespace
}  // namespace cpt::check
