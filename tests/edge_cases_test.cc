// Edge-case and stress tests across modules: boundary VPNs, mixed-format
// churn, memory-pressure policy behaviour, partial-range operations, and
// software-TLB consistency under structural change.
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "common/rng.h"
#include "core/adaptive.h"
#include "core/clustered.h"
#include "mem/cache_model.h"
#include "os/address_space.h"
#include "pt/hashed.h"
#include "pt/software_tlb.h"
#include "sim/analytic.h"
#include "sim/machine.h"

namespace cpt {
namespace {

// ---------------------------------------------------------------------------
// Boundary addresses.
// ---------------------------------------------------------------------------

class BoundaryTest : public ::testing::TestWithParam<sim::PtKind> {};

TEST_P(BoundaryTest, ExtremeVpnsRoundTrip) {
  mem::CacheTouchModel cache(256);
  sim::MachineOptions opts;
  auto table = sim::MakePageTable(GetParam(), cache, opts);
  const Vpn extremes[] = {
      Vpn{0},                    // First page of the address space.
      Vpn{15},                   // Last page of block 0.
      Vpn{16},                   // First page of block 1.
      Vpn{(1ull << 52) - 1},     // Last page of the 64-bit VPN space.
      Vpn{(1ull << 52) - 16},    // First page of the last block.
      Vpn{1ull << 51},           // Kernel-half style address.
  };
  Ppn next{1};
  for (const Vpn vpn : extremes) {
    table->InsertBase(vpn, next++, Attr::ReadWrite());
  }
  next = Ppn{1};
  for (const Vpn vpn : extremes) {
    mem::WalkScope scope(cache);
    const auto fill = table->Lookup(VaOf(vpn));
    ASSERT_TRUE(fill.has_value()) << vpn;
    EXPECT_EQ(fill->Translate(vpn), next++) << vpn;
  }
  for (const Vpn vpn : extremes) {
    EXPECT_TRUE(table->RemoveBase(vpn)) << vpn;
  }
  EXPECT_EQ(table->SizeBytesPaperModel(), 0u);
}

INSTANTIATE_TEST_SUITE_P(AllTables, BoundaryTest,
                         ::testing::Values(sim::PtKind::kLinear6, sim::PtKind::kForward,
                                           sim::PtKind::kHashed, sim::PtKind::kClustered,
                                           sim::PtKind::kClusteredAdaptive),
                         [](const ::testing::TestParamInfo<sim::PtKind>& info) {
                           std::string n = sim::ToString(info.param);
                           for (char& c : n) {
                             if (c == '-') {
                               c = '_';
                             }
                           }
                           return n;
                         });

TEST(BoundaryTest, MaxPpnSurvivesEveryFormat) {
  mem::CacheTouchModel cache(256);
  core::ClusteredPageTable t(cache, {});
  t.InsertBase(Vpn{0x10}, kMaxPpn, Attr::ReadWrite());
  t.InsertSuperpage(Vpn{0x4000}, kPage64K, Ppn{kPpnMask & ~0xFull}, Attr::ReadWrite());
  t.UpsertPartialSubblock(Vpn{0x8000}, 16, Ppn{kPpnMask & ~0xFull}, Attr::ReadWrite(), 0xFFFF);
  mem::WalkScope scope(cache);
  EXPECT_EQ(t.Lookup(VaOf(Vpn{0x10}))->Translate(Vpn{0x10}), kMaxPpn);
  EXPECT_EQ(t.Lookup(VaOf(Vpn{0x400F}))->Translate(Vpn{0x400F}), kMaxPpn);
  EXPECT_EQ(t.Lookup(VaOf(Vpn{0x800F}))->Translate(Vpn{0x800F}), kMaxPpn);
}

// ---------------------------------------------------------------------------
// Mixed-format churn on one clustered page block.
// ---------------------------------------------------------------------------

TEST(MixedFormatChurnTest, BlockCyclesThroughAllFormats) {
  mem::CacheTouchModel cache(256);
  core::ClusteredPageTable t(cache, {});
  const Vpn first{0x4000};
  for (int cycle = 0; cycle < 20; ++cycle) {
    // Base pages...
    for (unsigned i = 0; i < 16; ++i) {
      t.InsertBase(first + i, Ppn{0x100} + i, Attr::ReadWrite());
    }
    ASSERT_TRUE(t.BlockReadyForPromotion(VpbnOf(first, 16)));
    // ...promoted to a superpage...
    for (unsigned i = 0; i < 16; ++i) {
      t.RemoveBase(first + i);
    }
    t.InsertSuperpage(first, kPage64K, Ppn{0x100}, Attr::ReadWrite());
    {
      mem::WalkScope scope(cache);
      ASSERT_EQ(t.Lookup(VaOf(first + 7))->Translate(first + 7), Ppn{0x107});
    }
    // ...demoted to a partial-subblock PTE (one page evicted)...
    ASSERT_TRUE(t.RemoveSuperpage(first, kPage64K));
    t.UpsertPartialSubblock(first, 16, Ppn{0x100}, Attr::ReadWrite(), 0x7FFF);
    {
      mem::WalkScope scope(cache);
      ASSERT_FALSE(t.Lookup(VaOf(first + 15)).has_value());
      ASSERT_TRUE(t.Lookup(VaOf(first + 3)).has_value());
    }
    // ...and back to nothing.
    ASSERT_TRUE(t.RemovePartialSubblock(first, 16));
    ASSERT_EQ(t.SizeBytesPaperModel(), 0u) << "cycle " << cycle;
    ASSERT_EQ(t.node_count(), 0u);
  }
}

TEST(MixedFormatChurnTest, AdaptiveSurvivesPromoteDemoteStorm) {
  mem::CacheTouchModel cache(256);
  core::AdaptiveClusteredPageTable t(cache, {});
  Rng rng(4242);
  std::map<Vpn, Ppn> ref;
  const Vpn base{0x10000};
  for (int step = 0; step < 8000; ++step) {
    // Confined to 8 blocks so promote/demote churns constantly.
    const Vpn vpn = base + rng.Below(8 * 16);
    if (rng.Chance(0.55)) {
      const Ppn ppn{rng.Below(kPpnMask)};
      t.InsertBase(vpn, ppn, Attr::ReadWrite());
      ref[vpn] = ppn;
    } else {
      const bool removed = t.RemoveBase(vpn);
      ASSERT_EQ(removed, ref.erase(vpn) > 0) << "step " << step;
    }
  }
  EXPECT_EQ(t.live_translations(), ref.size());
  for (const auto& [vpn, ppn] : ref) {
    mem::WalkScope scope(cache);
    const auto fill = t.Lookup(VaOf(vpn));
    ASSERT_TRUE(fill.has_value());
    EXPECT_EQ(fill->Translate(vpn), ppn);
  }
}

// ---------------------------------------------------------------------------
// Partial-range operations.
// ---------------------------------------------------------------------------

TEST(PartialRangeTest, ProtectRangeTouchesOnlyTheRange) {
  mem::CacheTouchModel cache(256);
  core::ClusteredPageTable t(cache, {});
  for (Vpn vpn{0x100}; vpn < Vpn{0x130}; ++vpn) {
    t.InsertBase(vpn, Ppn{vpn.raw()}, Attr::ReadWrite());
  }
  // Protect a range that starts and ends mid-block.
  t.ProtectRange(Vpn{0x108}, 0x18, Attr::ReadOnly());
  mem::WalkScope scope(cache);
  EXPECT_EQ(t.Lookup(VaOf(Vpn{0x107}))->word.attr(), Attr::ReadWrite());
  EXPECT_EQ(t.Lookup(VaOf(Vpn{0x108}))->word.attr(), Attr::ReadOnly());
  EXPECT_EQ(t.Lookup(VaOf(Vpn{0x11F}))->word.attr(), Attr::ReadOnly());
  EXPECT_EQ(t.Lookup(VaOf(Vpn{0x120}))->word.attr(), Attr::ReadWrite());
}

TEST(PartialRangeTest, UnmapRangePartiallyOverlapsBlocks) {
  mem::CacheTouchModel cache(256);
  core::ClusteredPageTable table(cache, {});
  mem::ReservationAllocator frames(1 << 12, 16);
  os::AddressSpace as(0, table, frames, {});
  for (Vpn vpn{0x100}; vpn < Vpn{0x140}; ++vpn) {
    ASSERT_TRUE(as.TouchPage(VaOf(vpn)));
  }
  as.UnmapRange(Vpn{0x10A}, 0x20);  // Mid-block to mid-block.
  for (Vpn vpn{0x100}; vpn < Vpn{0x140}; ++vpn) {
    const bool inside = vpn >= Vpn{0x10A} && vpn < Vpn{0x12A};
    EXPECT_EQ(as.IsResident(vpn), !inside) << vpn;
    mem::WalkScope scope(cache);
    EXPECT_EQ(table.Lookup(VaOf(vpn)).has_value(), !inside) << vpn;
  }
  EXPECT_EQ(as.resident_pages(), 0x40u - 0x20u);
}

// ---------------------------------------------------------------------------
// OS policy under memory pressure.
// ---------------------------------------------------------------------------

TEST(PressureTest, SuperpagePolicyDegradesGracefully) {
  // Only 3 blocks of frames for 4 blocks of virtual pages, faulted
  // interleaved so reservations break: promotion must simply not happen
  // for unplaced blocks, and every page must still map correctly.
  mem::CacheTouchModel cache(256);
  core::ClusteredPageTable table(cache, {});
  mem::ReservationAllocator frames(48, 16);
  os::AddressSpace as(0, table, frames,
                      {.strategy = os::PteStrategy::kSuperpage, .subblock_factor = 16});
  unsigned mapped = 0;
  for (unsigned i = 0; i < 16 && mapped < 48; ++i) {
    for (unsigned blk = 0; blk < 4 && mapped < 48; ++blk) {
      if (as.TouchPage(VaOf(Vpn{0x100 + blk * 16 + i}))) {
        ++mapped;
      }
    }
  }
  EXPECT_EQ(mapped, 48u);
  unsigned translated = 0;
  for (unsigned blk = 0; blk < 4; ++blk) {
    for (unsigned i = 0; i < 16; ++i) {
      mem::WalkScope scope(cache);
      translated += table.Lookup(VaOf(Vpn{0x100 + blk * 16 + i})).has_value() ? 1 : 0;
    }
  }
  EXPECT_EQ(translated, 48u) << "every granted frame is mapped";
  const auto census = as.Census();
  EXPECT_EQ(census.super_blocks, 0u) << "interleaved faulting prevents full placement";
}

TEST(PressureTest, PsbPolicyMixesPlacedAndUnplacedWithinBlock) {
  mem::CacheTouchModel cache(256);
  core::ClusteredPageTable table(cache, {});
  // One reservable group; the second block's pages all go unplaced, and a
  // later fault on the FIRST block (whose reservation got broken) also
  // lands unplaced, producing a mixed block.
  mem::ReservationAllocator frames(16, 16);
  os::AddressSpace as(0, table, frames,
                      {.strategy = os::PteStrategy::kPartialSubblock, .subblock_factor = 16});
  ASSERT_TRUE(as.TouchPage(VaOf(Vpn{0x100})));  // Reserves the only group.
  ASSERT_TRUE(as.TouchPage(VaOf(Vpn{0x200})));  // Breaks it; unplaced.
  ASSERT_TRUE(as.TouchPage(VaOf(Vpn{0x101})));  // Reservation gone: unplaced.
  const auto census = as.Census();
  EXPECT_EQ(census.mixed_blocks, 1u);
  mem::WalkScope scope(cache);
  EXPECT_TRUE(table.Lookup(VaOf(Vpn{0x100})).has_value());
  EXPECT_TRUE(table.Lookup(VaOf(Vpn{0x101})).has_value());
  EXPECT_TRUE(table.Lookup(VaOf(Vpn{0x200})).has_value());
}

// ---------------------------------------------------------------------------
// Software TLB consistency under structural change.
// ---------------------------------------------------------------------------

TEST(SwTlbConsistencyTest, PromotionInvalidatesStaleBaseEntries) {
  mem::CacheTouchModel cache(256);
  auto backing = std::make_unique<core::ClusteredPageTable>(
      cache, core::ClusteredPageTable::Options{});
  pt::SoftwareTlb t(cache, std::move(backing), {.num_sets = 64, .ways = 2});
  for (unsigned i = 0; i < 16; ++i) {
    t.InsertBase(Vpn{0x4000} + i, Ppn{0x100} + i, Attr::ReadWrite());
  }
  // Cache a few base translations.
  for (unsigned i = 0; i < 16; ++i) {
    mem::WalkScope scope(cache);
    t.Lookup(VaOf(Vpn{0x4000} + i));
  }
  // OS promotes the block.
  for (unsigned i = 0; i < 16; ++i) {
    t.RemoveBase(Vpn{0x4000} + i);
  }
  t.InsertSuperpage(Vpn{0x4000}, kPage64K, Ppn{0x200}, Attr::ReadWrite());
  for (unsigned i = 0; i < 16; ++i) {
    mem::WalkScope scope(cache);
    const auto fill = t.Lookup(VaOf(Vpn{0x4000} + i));
    ASSERT_TRUE(fill.has_value());
    EXPECT_EQ(fill->Translate(Vpn{0x4000} + i), Ppn{0x200} + i) << "stale swtlb entry served";
  }
}

TEST(SwTlbConsistencyTest, WaysEvictWithinOneSetOnly) {
  mem::CacheTouchModel cache(256);
  auto backing =
      std::make_unique<pt::HashedPageTable>(cache, pt::HashedPageTable::Options{});
  // Direct-mapped: two pages hashing to different sets never evict each
  // other, however often they alternate.
  pt::SoftwareTlb t(cache, std::move(backing), {.num_sets = 256, .ways = 1});
  t.InsertBase(Vpn{0x1}, Ppn{0x1}, Attr::ReadWrite());
  t.InsertBase(Vpn{0x2}, Ppn{0x2}, Attr::ReadWrite());
  {
    mem::WalkScope scope(cache);
    t.Lookup(VaOf(Vpn{0x1}));
    t.Lookup(VaOf(Vpn{0x2}));
  }
  const auto misses = t.probe_misses();
  for (int i = 0; i < 10; ++i) {
    mem::WalkScope scope(cache);
    t.Lookup(VaOf(Vpn{0x1}));
    t.Lookup(VaOf(Vpn{0x2}));
  }
  EXPECT_EQ(t.probe_misses(), misses) << "no thrashing across distinct sets";
}

// ---------------------------------------------------------------------------
// Analytic model properties.
// ---------------------------------------------------------------------------

TEST(AnalyticPropertyTest, NactiveMonotoneInRegionSize) {
  Rng rng(55);
  std::vector<Vpn> mapped;
  for (int i = 0; i < 500; ++i) {
    mapped.push_back(Vpn{rng.Below(1 << 24)});
  }
  std::uint64_t prev = mapped.size() + 1;
  for (std::uint64_t region = 1; region <= (1 << 20); region *= 4) {
    const std::uint64_t n = sim::analytic::Nactive(mapped, region);
    EXPECT_LE(n, prev) << "region " << region;
    EXPECT_GE(n, 1u);
    prev = n;
  }
  EXPECT_EQ(sim::analytic::Nactive(mapped, 1),
            sim::analytic::Nactive(mapped, 1));  // Deterministic.
}

TEST(AnalyticPropertyTest, ClusteredNeverAboveSixteenthOfHashedBlocks) {
  Rng rng(56);
  std::vector<Vpn> mapped;
  for (int i = 0; i < 300; ++i) {
    mapped.push_back(Vpn{rng.Below(1 << 20)});
  }
  const std::uint64_t pages = sim::analytic::Nactive(mapped, 1);
  const std::uint64_t blocks = sim::analytic::Nactive(mapped, 16);
  EXPECT_GE(blocks * 16, pages);
  EXPECT_LE(blocks, pages);
}

}  // namespace
}  // namespace cpt
