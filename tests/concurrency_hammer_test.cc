// Concurrency hammer for the thread-safety contracts (DESIGN.md
// "Concurrency contracts"), meant to run under ThreadSanitizer (the `tsan`
// CMake preset; these tests carry the `concurrency` ctest label).
//
// Contract under test:
//   - mapping words are atomic cells: concurrent Lookup + R/M-bit updates
//     (Section 3.1) are safe on any table, in any mode;
//   - HashedPageTable with Options::lock_stripes > 0 additionally allows
//     concurrent inserts (release-published nodes, stripe-serialized chain
//     mutation);
//   - the cache-touch model is single-walker: exactly one thread performs
//     counted walks, so every other thread sticks to uncounted operations
//     (UpdateAttrFlags, Peek/PeekBase, InsertBase).
//
// gtest assertions are not thread-safe, so worker threads record failures
// in atomics and the main thread asserts after joining.
#include <gtest/gtest.h>

#include "common/hotguard.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "check/auditor.h"
#include "check/shadow_oracle.h"
#include "core/clustered.h"
#include "mem/cache_model.h"
#include "pt/hashed.h"
#include "pt/page_table.h"

namespace cpt {
namespace {

constexpr std::uint16_t kRefMod = Attr::kReferenced | Attr::kModified;

// Deterministic VPN->PPN mapping so every thread can verify translations
// without shared bookkeeping.
Ppn PpnFor(Vpn vpn) { return Ppn{vpn.raw() ^ 0xA5A5u}; }

void JoinAll(std::vector<std::thread>& threads) {
  for (std::thread& t : threads) {
    t.join();
  }
}

// N threads hammer one striped hashed table: a single counted walker, two
// R/M updaters over the seeded range, and two inserters filling disjoint
// fresh ranges.  Afterwards the structure, the translations, the monotonic
// R/M bits, and the shadow oracle must all agree.
TEST(ConcurrencyHammerTest, StripedHashedInsertLookupUpdate) {
  constexpr unsigned kSeedPages = 512;
  constexpr unsigned kNewPerThread = 2048;
  constexpr unsigned kInserters = 2;
  constexpr unsigned kUpdaters = 2;
  constexpr unsigned kPasses = 40;
  const Vpn seed_base{0x1000};

  mem::CacheTouchModel cache(256);
  auto owned = std::make_unique<pt::HashedPageTable>(
      cache, pt::HashedPageTable::Options{.num_buckets = 1024,
                                          .lock_stripes = 8,
                                          .striped_node_capacity = 1u << 16});
  pt::HashedPageTable& table = *owned;
  check::ShadowedPageTable oracle(cache, std::move(owned));

  // Single-threaded setup phase, mirrored into the shadow.
  for (unsigned i = 0; i < kSeedPages; ++i) {
    oracle.InsertBase(seed_base + i, PpnFor(seed_base + i), Attr::ReadWrite());
  }

  std::atomic<std::uint64_t> walker_misses{0};
  std::atomic<std::uint64_t> walker_wrong_ppn{0};
  std::atomic<std::uint64_t> update_failures{0};
  std::vector<std::thread> threads;

  // The one counted walker (single-walker cache-model contract).
  threads.emplace_back([&] {
    auto sweep = [&] {
      for (unsigned i = 0; i < kSeedPages; ++i) {
        const Vpn vpn = seed_base + i;
        const auto fill = table.Lookup(VaOf(vpn));
        if (!fill.has_value()) {
          walker_misses.fetch_add(1, std::memory_order_relaxed);
        } else if (fill->word.ppn() != PpnFor(vpn)) {
          walker_wrong_ppn.fetch_add(1, std::memory_order_relaxed);
        }
      }
    };
    // First pass grows the cache model's scratch to its high-water mark;
    // later passes run under the thread-local allocation guard while the
    // inserter threads allocate freely (common/hotguard.h).
    sweep();
    HotPathScope guard("hammer.counted_walker");
    for (unsigned pass = 1; pass < kPasses; ++pass) {
      sweep();
    }
  });
  // Uncounted R/M-bit updaters: set-only, so the bits are monotonic and the
  // post-join check is exact.
  for (unsigned u = 0; u < kUpdaters; ++u) {
    threads.emplace_back([&, u] {
      for (unsigned pass = 0; pass < kPasses; ++pass) {
        for (unsigned i = u; i < kSeedPages; ++i) {
          if (!table.UpdateAttrFlags(seed_base + i, kRefMod, 0)) {
            update_failures.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  // Inserters on disjoint VPN ranges; their chains still collide in the
  // shared bucket space, which is exactly what the stripes must survive.
  for (unsigned t = 0; t < kInserters; ++t) {
    threads.emplace_back([&, t] {
      const Vpn first{0x100000 + std::uint64_t{t} * kNewPerThread};
      for (unsigned i = 0; i < kNewPerThread; ++i) {
        table.InsertBase(first + i, PpnFor(first + i), Attr::ReadWrite());
      }
    });
  }
  JoinAll(threads);

  EXPECT_EQ(walker_misses.load(), 0u);
  EXPECT_EQ(walker_wrong_ppn.load(), 0u);
  EXPECT_EQ(update_failures.load(), 0u);

  // Contention telemetry must reconcile exactly now that the workers have
  // quiesced (and before the oracle-mirroring below re-upserts the hammered
  // keys): every insert so far (seed + hammered) took exactly one stripe
  // lock, Lookup / UpdateAttrFlags took none, and each fresh key allocated
  // one node under the allocator lock.  The per-stripe counters must in
  // turn sum to the set-level total.
  const std::uint64_t inserts_so_far = kSeedPages + kInserters * std::uint64_t{kNewPerThread};
  ASSERT_TRUE(table.striped());
  EXPECT_EQ(table.stripe_set().total_acquisitions(), inserts_so_far);
  EXPECT_EQ(table.alloc_mutex().acquisitions(), inserts_so_far);
  std::uint64_t per_stripe = 0;
  for (unsigned s = 0; s < table.stripe_set().count(); ++s) {
    per_stripe += table.stripe_set().stripe(s).acquisitions();
  }
  EXPECT_EQ(per_stripe, table.stripe_set().total_acquisitions());

  // R/M bits first: mirroring the hammered inserts below rewrites words and
  // InsertBase wipes attributes.
  for (unsigned i = 0; i < kSeedPages; ++i) {
    const auto attr = table.PeekAttr(seed_base + i);
    ASSERT_TRUE(attr.has_value());
    EXPECT_TRUE(attr->test(Attr::kReferenced));
    EXPECT_TRUE(attr->test(Attr::kModified));
  }

  // Every hammered insert must have survived (a lost bucket head drops
  // whole chains), then gets mirrored so the shadow knows about it.
  for (unsigned t = 0; t < kInserters; ++t) {
    const Vpn first{0x100000 + std::uint64_t{t} * kNewPerThread};
    for (unsigned i = 0; i < kNewPerThread; ++i) {
      const Vpn vpn = first + i;
      const auto word = table.Peek(vpn.raw());
      ASSERT_TRUE(word.has_value()) << "lost insert at vpn " << vpn.raw();
      EXPECT_EQ(word->ppn(), PpnFor(vpn));
      oracle.InsertBase(vpn, PpnFor(vpn), Attr::ReadWrite());
    }
  }

  const std::uint64_t expected = kSeedPages + kInserters * std::uint64_t{kNewPerThread};
  EXPECT_EQ(table.node_count(), expected);
  EXPECT_EQ(table.live_translations(), expected);

  // The mirroring upserts above each took a stripe lock (chain mutation)
  // but allocated nothing: the allocator count is unchanged while the
  // stripe count grew by exactly the re-upserted keys.
  EXPECT_EQ(table.stripe_set().total_acquisitions(),
            expected + kInserters * std::uint64_t{kNewPerThread});
  EXPECT_EQ(table.alloc_mutex().acquisitions(), expected);

  // Cross-checked sweep through the oracle, plus a guaranteed miss.
  for (unsigned i = 0; i < kSeedPages; ++i) {
    EXPECT_TRUE(oracle.Lookup(VaOf(seed_base + i)).has_value());
  }
  EXPECT_FALSE(oracle.Lookup(VaOf(Vpn{0xDEAD0000})).has_value());
  EXPECT_TRUE(oracle.FinalCheck().ok()) << oracle.FinalCheck().Summary();

  const check::AuditReport report = check::StructuralAuditor::Audit(table);
  EXPECT_TRUE(report.ok()) << report.Summary();
}

// Default (unstriped) mode still guarantees safe concurrent readers and
// R/M updaters against a structurally frozen table.
TEST(ConcurrencyHammerTest, UnstripedHashedLookupUpdate) {
  constexpr unsigned kPages = 1024;
  constexpr unsigned kUpdaters = 2;
  constexpr unsigned kPasses = 40;
  const Vpn base{0x7000};

  mem::CacheTouchModel cache(256);
  pt::HashedPageTable table(cache, pt::HashedPageTable::Options{.num_buckets = 512});
  for (unsigned i = 0; i < kPages; ++i) {
    table.InsertBase(base + i, PpnFor(base + i), Attr::ReadWrite());
  }

  std::atomic<std::uint64_t> failures{0};
  std::vector<std::thread> threads;
  threads.emplace_back([&] {  // counted walker
    for (unsigned pass = 0; pass < kPasses; ++pass) {
      for (unsigned i = 0; i < kPages; ++i) {
        const Vpn vpn = base + i;
        const auto fill = table.Lookup(VaOf(vpn));
        if (!fill.has_value() || fill->word.ppn() != PpnFor(vpn)) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
  });
  threads.emplace_back([&] {  // uncounted reader
    for (unsigned pass = 0; pass < kPasses; ++pass) {
      for (unsigned i = 0; i < kPages; ++i) {
        const Vpn vpn = base + i;
        const auto word = table.Peek(vpn.raw());
        if (!word.has_value() || !word->valid()) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
  });
  for (unsigned u = 0; u < kUpdaters; ++u) {
    threads.emplace_back([&] {
      for (unsigned pass = 0; pass < kPasses; ++pass) {
        for (unsigned i = 0; i < kPages; ++i) {
          if (!table.UpdateAttrFlags(base + i, kRefMod, 0)) {
            failures.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  JoinAll(threads);

  EXPECT_EQ(failures.load(), 0u);
  for (unsigned i = 0; i < kPages; ++i) {
    const auto attr = table.PeekAttr(base + i);
    ASSERT_TRUE(attr.has_value());
    EXPECT_TRUE(attr->test(Attr::kReferenced));
    EXPECT_TRUE(attr->test(Attr::kModified));
    EXPECT_TRUE(attr->test(Attr::kWrite)) << "protection bits must survive the hammer";
  }
  const check::AuditReport report = check::StructuralAuditor::Audit(table);
  EXPECT_TRUE(report.ok()) << report.Summary();
}

// Clustered table: concurrent Lookup, PeekBase, and R/M updates over base
// pages and a superpage word (whose single PTE all covered pages share).
TEST(ConcurrencyHammerTest, ClusteredLookupUpdate) {
  constexpr unsigned kPages = 512;
  constexpr unsigned kUpdaters = 2;
  constexpr unsigned kPasses = 40;
  const Vpn base{0x2000};
  const Vpn super_base{0x40000};  // 64KB-aligned.

  mem::CacheTouchModel cache(256);
  core::ClusteredPageTable table(cache, core::ClusteredPageTable::Options{.num_buckets = 512});
  for (unsigned i = 0; i < kPages; ++i) {
    table.InsertBase(base + i, PpnFor(base + i), Attr::ReadWrite());
  }
  table.InsertSuperpage(super_base, kPage64K, Ppn{0x5000}, Attr::ReadWrite());
  const unsigned super_pages = kPage64K.pages();

  std::atomic<std::uint64_t> failures{0};
  std::vector<std::thread> threads;
  threads.emplace_back([&] {  // counted walker
    for (unsigned pass = 0; pass < kPasses; ++pass) {
      for (unsigned i = 0; i < kPages; ++i) {
        if (!table.Lookup(VaOf(base + i)).has_value()) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
      for (unsigned i = 0; i < super_pages; ++i) {
        if (!table.Lookup(VaOf(super_base + i)).has_value()) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
  });
  threads.emplace_back([&] {  // uncounted reader
    for (unsigned pass = 0; pass < kPasses; ++pass) {
      for (unsigned i = 0; i < kPages; ++i) {
        if (!table.PeekBase(base + i).has_value()) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
  });
  for (unsigned u = 0; u < kUpdaters; ++u) {
    threads.emplace_back([&, u] {
      for (unsigned pass = 0; pass < kPasses; ++pass) {
        for (unsigned i = 0; i < kPages; ++i) {
          if (!table.UpdateAttrFlags(base + i, kRefMod, 0)) {
            failures.fetch_add(1, std::memory_order_relaxed);
          }
        }
        // Both updaters hit the same superpage word through different
        // covered pages: one PTE, concurrently fetch_or'd.
        if (!table.UpdateAttrFlags(super_base + u, Attr::kReferenced, 0)) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  JoinAll(threads);

  EXPECT_EQ(failures.load(), 0u);
  for (unsigned i = 0; i < kPages; ++i) {
    const auto attr = table.PeekAttr(base + i);
    ASSERT_TRUE(attr.has_value());
    EXPECT_TRUE(attr->test(Attr::kReferenced));
    EXPECT_TRUE(attr->test(Attr::kModified));
  }
  // The superpage's one PTE is referenced and counts exactly once.
  EXPECT_TRUE(table.PeekAttr(super_base + super_pages - 1)->test(Attr::kReferenced));
  EXPECT_EQ(table.ScanAndClearReferenced(super_base, super_pages), 1u);

  const check::AuditReport report = check::StructuralAuditor::Audit(table);
  EXPECT_TRUE(report.ok()) << report.Summary();
}

}  // namespace
}  // namespace cpt
