#!/usr/bin/env python3
"""Golden-file tests for tools/cpt_lint.py.

Each fixture under tests/lint/fixtures/ carries seeded contract violations;
tests/lint/expected/<fixture>.expected lists the findings the linter must
produce, one `line:rule` per line (empty file = the linter must stay silent,
which is how the suppression fixture is pinned).  On top of the goldens this
runner exercises the baseline round-trip (grandfathering silences a finding,
a *new* finding still fails) and --fix (autofixed files re-lint clean).

Run directly or through ctest (`lint_fixtures`).  Exits non-zero with a
unified diff of expected-vs-actual on any mismatch.
"""
import json
import shutil
import subprocess
import sys
import tempfile
from pathlib import Path

TEST_DIR = Path(__file__).resolve().parent
REPO_ROOT = TEST_DIR.parents[1]
LINT = REPO_ROOT / "tools" / "cpt_lint.py"
FIXTURES = TEST_DIR / "fixtures"
EXPECTED = TEST_DIR / "expected"

FAILURES = []


def fail(name, message):
    FAILURES.append(name)
    print(f"FAIL {name}: {message}")


def run_lint(*argv, cwd=REPO_ROOT):
    return subprocess.run(
        [sys.executable, str(LINT), *argv],
        cwd=cwd, capture_output=True, text=True, check=False)


def lint_findings(path, *extra):
    proc = run_lint("--ignore-scope", "--no-baseline", "--json", *extra, str(path))
    try:
        data = json.loads(proc.stdout)
    except json.JSONDecodeError:
        raise AssertionError(
            f"non-JSON linter output for {path}:\n{proc.stdout}\n{proc.stderr}")
    return proc.returncode, data["findings"]


def golden_tests():
    fixtures = sorted(FIXTURES.glob("*.cc")) + sorted(FIXTURES.glob("*.h"))
    assert fixtures, f"no fixtures found under {FIXTURES}"
    for fixture in fixtures:
        name = f"golden/{fixture.name}"
        golden = EXPECTED / (fixture.name + ".expected")
        if not golden.exists():
            fail(name, f"missing golden file {golden}")
            continue
        want = [ln for ln in golden.read_text().splitlines() if ln.strip()]
        code, findings = lint_findings(fixture)
        got = [f"{f['line']}:{f['rule']}" for f in findings]
        if got != want:
            fail(name, "findings mismatch\n  expected: " + repr(want) +
                 "\n  actual:   " + repr(got))
            continue
        want_code = 1 if want else 0
        if code != want_code:
            fail(name, f"exit code {code}, expected {want_code}")
            continue
        print(f"ok   {name} ({len(want)} findings)")


def baseline_roundtrip_test():
    """Grandfathered findings pass; a new finding still fails."""
    name = "baseline/roundtrip"
    fixture = FIXTURES / "determinism.cc"
    with tempfile.TemporaryDirectory() as tmp:
        baseline = Path(tmp) / "baseline.json"
        # Grandfather the current findings.
        proc = run_lint("--ignore-scope", "--baseline", str(baseline),
                        "--write-baseline", str(fixture))
        if proc.returncode != 0:
            return fail(name, f"--write-baseline failed:\n{proc.stdout}{proc.stderr}")
        # Same file against the fresh baseline: everything grandfathered.
        proc = run_lint("--ignore-scope", "--baseline", str(baseline), str(fixture))
        if proc.returncode != 0:
            return fail(name, f"grandfathered run not clean:\n{proc.stdout}")
        if "grandfathered" not in proc.stdout:
            return fail(name, f"expected grandfathered count in:\n{proc.stdout}")
        # Seed one more violation: a new finding must fail despite the baseline.
        bad = Path(tmp) / "determinism.cc"
        bad.write_text(fixture.read_text() +
                       "\nnamespace fx { int Extra() { return std::rand(); } }\n")
        proc = run_lint("--ignore-scope", "--baseline", str(baseline),
                        "--root", tmp, str(bad))
        if proc.returncode == 0:
            return fail(name, f"new finding slipped past the baseline:\n{proc.stdout}")
    print(f"ok   {name}")


def fix_test():
    """--fix rewrites raw assert()/<cassert>; the fixed file re-lints clean."""
    name = "fix/raw_assert"
    with tempfile.TemporaryDirectory() as tmp:
        victim = Path(tmp) / "raw_assert.cc"
        shutil.copy(FIXTURES / "raw_assert.cc", victim)
        proc = run_lint("--ignore-scope", "--no-baseline", "--fix",
                        "--rules", "check-macro-hygiene",
                        "--root", tmp, str(victim))
        del proc  # Exit code reflects pre-fix findings; re-lint decides.
        text = victim.read_text()
        if "CPT_DCHECK(v >= 0)" not in text:
            return fail(name, f"assert not rewritten:\n{text}")
        if "#include <cassert>" in text:
            return fail(name, f"<cassert> include not removed:\n{text}")
        # Only the (unfixable) raw aborts may remain.
        code, findings = lint_findings(victim, "--root", tmp,
                                       "--rules", "check-macro-hygiene")
        leftover = {f["message"].split(";")[0] for f in findings}
        if leftover != {'raw abort()'}:
            return fail(name, f"unexpected post-fix findings: {findings}")
    print(f"ok   {name}")


def nodiscard_fix_test():
    """--fix inserts [[nodiscard]] and the result re-lints clean."""
    name = "fix/nodiscard"
    with tempfile.TemporaryDirectory() as tmp:
        victim = Path(tmp) / "nodiscard.h"
        shutil.copy(FIXTURES / "nodiscard.h", victim)
        run_lint("--ignore-scope", "--no-baseline", "--fix",
                 "--rules", "nodiscard-query", "--root", tmp, str(victim))
        text = victim.read_text()
        if "[[nodiscard]] Result Lookup(" not in text:
            return fail(name, f"[[nodiscard]] not inserted:\n{text}")
        code, findings = lint_findings(victim, "--root", tmp,
                                       "--rules", "nodiscard-query")
        if code != 0 or findings:
            return fail(name, f"post-fix findings remain: {findings}")
    print(f"ok   {name}")


def fix_idempotency_test():
    """--fix is a fixed point: a second pass changes nothing, byte for byte."""
    name = "fix/idempotent"
    with tempfile.TemporaryDirectory() as tmp:
        victims = []
        for fixture in ("raw_assert.cc", "nodiscard.h"):
            victim = Path(tmp) / fixture
            shutil.copy(FIXTURES / fixture, victim)
            victims.append(victim)
        args = ("--ignore-scope", "--no-baseline", "--fix", "--root", tmp,
                *(str(v) for v in victims))
        run_lint(*args)
        first = {v.name: v.read_bytes() for v in victims}
        run_lint(*args)
        second = {v.name: v.read_bytes() for v in victims}
        if first != second:
            changed = [n for n in first if first[n] != second[n]]
            return fail(name, f"second --fix pass rewrote {changed}")
    print(f"ok   {name}")


def exit_code_test():
    """0 = clean, 1 = findings, 2 = internal error — never conflated."""
    name = "exit/codes"
    with tempfile.TemporaryDirectory() as tmp:
        clean = Path(tmp) / "clean.cc"
        clean.write_text("namespace fx {\nint Identity(int v) { return v; }\n"
                         "}  // namespace fx\n")
        proc = run_lint("--ignore-scope", "--no-baseline", str(clean))
        if proc.returncode != 0:
            return fail(name, f"clean file exited {proc.returncode}:\n{proc.stdout}")
        proc = run_lint("--ignore-scope", "--no-baseline",
                        str(FIXTURES / "determinism.cc"))
        if proc.returncode != 1:
            return fail(name, f"findings exited {proc.returncode}, want 1")
        # An unreadable input is an internal error, not a lint verdict.
        garbled = Path(tmp) / "garbled.cc"
        garbled.write_bytes(b"int x = \xff\xfe;\n")
        proc = run_lint("--ignore-scope", "--no-baseline", str(garbled))
        if proc.returncode != 2:
            return fail(name, f"unreadable input exited {proc.returncode}, want 2")
        if "internal error" not in proc.stderr:
            return fail(name, f"missing internal-error diagnostic:\n{proc.stderr}")
        # A malformed baseline is an internal error too.
        broken = Path(tmp) / "baseline.json"
        broken.write_text("{not json")
        proc = run_lint("--ignore-scope", "--baseline", str(broken), str(clean))
        if proc.returncode != 2:
            return fail(name, f"broken baseline exited {proc.returncode}, want 2")
    print(f"ok   {name}")


def timing_keys_test():
    """Shared parses are accounted once: file-parse + hot-call-graph keys."""
    name = "timing/shared-parse"
    proc = run_lint("--ignore-scope", "--no-baseline", "--json",
                    str(FIXTURES / "hotpath_alloc.cc"))
    data = json.loads(proc.stdout)
    timing = data.get("rule_timing_ms", {})
    missing = {"file-parse", "hot-call-graph", "layout-model"} - set(timing)
    if missing:
        return fail(name, f"missing rule_timing_ms keys: {sorted(missing)}")
    if timing["file-parse"] <= 0:
        return fail(name, f"file-parse not accounted: {timing}")
    print(f"ok   {name}")


def layout_ledger_tamper_test():
    """A tampered ledger turns layout-ledger red; the committed one is green."""
    name = "layout/ledger-tamper"
    ledger_path = REPO_ROOT / "tools" / "layout_ledger.json"
    victim = "src/pt/hashed.h"
    with tempfile.TemporaryDirectory() as tmp:
        tampered = Path(tmp) / "layout_ledger.json"
        bad = json.loads(ledger_path.read_text())
        bad["structs"]["HashedPageTable::Node"]["size"] -= 8
        tampered.write_text(json.dumps(bad))
        proc = run_lint("--no-baseline", "--layout-ledger", str(tampered), victim)
        if proc.returncode != 1 or "layout-ledger" not in proc.stdout:
            return fail(name, f"shrunken ledger entry not flagged "
                              f"(exit {proc.returncode}):\n{proc.stdout}")
        if "grew from" not in proc.stdout:
            return fail(name, f"missing ratchet notice:\n{proc.stdout}")
    proc = run_lint("--no-baseline", victim)
    if proc.returncode != 0:
        return fail(name, f"committed ledger not clean:\n{proc.stdout}")
    print(f"ok   {name}")


def model_truth_tamper_test():
    """Drifted model-truth accounting turns model-truth-sync red."""
    name = "layout/model-truth-tamper"
    ledger_path = REPO_ROOT / "tools" / "layout_ledger.json"
    victim = "src/common/types.h"
    with tempfile.TemporaryDirectory() as tmp:
        tampered = Path(tmp) / "layout_ledger.json"
        bad = json.loads(ledger_path.read_text())
        bad["model_truth"]["hashed-node"]["accounting_bytes"] = [512]
        tampered.write_text(json.dumps(bad))
        proc = run_lint("--no-baseline", "--layout-ledger", str(tampered), victim)
        if proc.returncode != 1 or "model-truth drift" not in proc.stdout:
            return fail(name, f"model-truth drift not flagged "
                              f"(exit {proc.returncode}):\n{proc.stdout}")
    proc = run_lint("--no-baseline", victim)
    if proc.returncode != 0:
        return fail(name, f"committed ledger not clean:\n{proc.stdout}")
    print(f"ok   {name}")


def write_layout_roundtrip_test():
    """--write-layout is deterministic and reproduces the committed ledger."""
    name = "layout/write-roundtrip"
    committed = (REPO_ROOT / "tools" / "layout_ledger.json").read_text()
    with tempfile.TemporaryDirectory() as tmp:
        fresh = Path(tmp) / "layout_ledger.json"
        proc = run_lint("--write-layout", "--layout-ledger", str(fresh))
        if proc.returncode != 0:
            return fail(name, f"--write-layout failed:\n{proc.stdout}{proc.stderr}")
        if json.loads(fresh.read_text()) != json.loads(committed):
            return fail(name, "regenerated ledger differs from the committed "
                              "tools/layout_ledger.json; it is stale — re-run "
                              "--write-layout and commit")
        # A fresh regeneration must also lint clean.
        proc = run_lint("--no-baseline", "--layout-ledger", str(fresh),
                        "src/pt/hashed.h")
        if proc.returncode != 0:
            return fail(name, f"fresh ledger not clean:\n{proc.stdout}")
    print(f"ok   {name}")


def sarif_output_test():
    """--sarif emits valid SARIF 2.1.0 with stable fingerprints for findings."""
    name = "sarif/output"
    with tempfile.TemporaryDirectory() as tmp:
        out = Path(tmp) / "lint.sarif"
        proc = run_lint("--ignore-scope", "--no-baseline", "--sarif", str(out),
                        str(FIXTURES / "determinism.cc"))
        if proc.returncode != 1:
            return fail(name, f"expected findings (exit 1), got {proc.returncode}")
        sarif = json.loads(out.read_text())
        if sarif.get("version") != "2.1.0":
            return fail(name, f"bad SARIF version: {sarif.get('version')}")
        runs = sarif.get("runs") or [{}]
        results = runs[0].get("results", [])
        if not results:
            return fail(name, "no SARIF results for a fixture with findings")
        r = results[0]
        need = {"ruleId", "message", "locations", "partialFingerprints"}
        if not need <= set(r):
            return fail(name, f"SARIF result missing keys: {sorted(need - set(r))}")
        rules = {d["id"] for d in runs[0]["tool"]["driver"]["rules"]}
        if not {x["ruleId"] for x in results} <= rules:
            return fail(name, "SARIF results reference undeclared rules")
    print(f"ok   {name}")


def main():
    golden_tests()
    baseline_roundtrip_test()
    fix_test()
    nodiscard_fix_test()
    fix_idempotency_test()
    exit_code_test()
    timing_keys_test()
    layout_ledger_tamper_test()
    model_truth_tamper_test()
    write_layout_roundtrip_test()
    sarif_output_test()
    if FAILURES:
        print(f"\n{len(FAILURES)} lint fixture test(s) failed")
        return 1
    print("\nall lint fixture tests passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
