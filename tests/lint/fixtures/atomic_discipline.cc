// Fixture: atomic-discipline.
//
// Every explicit memory_order_* argument states why that order suffices in
// an adjacent comment, and a member accessed through the atomic API is
// never also mutated with raw assignment sugar in the same file.
#include <atomic>

namespace fx {

class Publisher {
 public:
  // release: publishes the payload written before the flag flip.
  void Publish() { ready_.store(true, std::memory_order_release); }

  // (The next load is BAD: no justification comment anywhere near it --
  // not even this one, which sits too far above to count as adjacent.)

  bool ReadyBad() const {
    return ready_.load(std::memory_order_acquire);
  }

  bool ReadyGood() const {
    // acquire: pairs with the release store in Publish().
    return ready_.load(std::memory_order_acquire);
  }

  void Tick() {
    // relaxed: statistics counter; readers only need the total.
    ticks_.fetch_add(1, std::memory_order_relaxed);
  }

  // BAD: ticks_ uses the atomic API above, so raw `=` sugar (seq_cst
  // assignment hiding as a plain write) is mixing disciplines.
  void Reset() { ticks_ = 0; }

 private:
  std::atomic<bool> ready_{false};
  std::atomic<long> ticks_{0};
};

}  // namespace fx
