// Fixture: suppression machinery.  Every violation below is covered by a
// line allow() or an off()/on() block, so the expected finding set is empty.
#include <cstdlib>

namespace fx {

void LineSuppressed() {
  std::abort();  // cpt-lint: allow(check-macro-hygiene) — exercised on purpose
}

// cpt-lint: off(determinism-guards)
int BlockSuppressed() {
  return std::rand();
}
// cpt-lint: on(determinism-guards)

// cpt-lint: allow(check-macro-hygiene)
void NextLineSuppressed() { std::abort(); }

}  // namespace fx
