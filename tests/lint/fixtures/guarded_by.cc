// Fixture: guarded-by-coverage.
//
// A class marked CPT_SHARED promises cross-thread use, so every mutable
// data member must name its synchronization story: CPT_GUARDED_BY a
// capability, an atomic type, or const.  Unmarked classes are exempt.
namespace fx {

class CPT_SHARED Disciplined {
 public:
  void Bump();

 private:
  const int limit_ = 8;                 // const: exempt
  int count_ CPT_GUARDED_BY(mu_) = 0;   // guarded: ok
  AtomicCell<int> hits_;                // atomic wrapper: ok
  std::atomic<int> raw_hits_{0};        // std::atomic: ok
  AtomicMappingWord word_;              // atomic PTE cell: ok
  mutable Mutex mu_;                    // the capability itself: ok
  static int shared_statics_are_not_members_;
};

class CPT_SHARED Sloppy {
 public:
  int Total() const;

 private:
  // BAD: plain mutable members of a shared class with no declared guard.
  int counter_ = 0;
  std::vector<int> items_;
  // A deliberate, documented exception stays allowed:
  long grandfathered_ = 0;  // cpt-lint: allow(guarded-by-coverage)
};

class SingleThreaded {
 private:
  int anything_goes_ = 0;  // not CPT_SHARED: out of the rule's scope
};

}  // namespace fx
