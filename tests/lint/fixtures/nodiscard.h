// Fixture: nodiscard-query.  Lookup-style query declarations must be
// [[nodiscard]] — discarding a lookup result is always a bug.
#ifndef CPT_TESTS_LINT_FIXTURES_NODISCARD_H_
#define CPT_TESTS_LINT_FIXTURES_NODISCARD_H_

#include <cstdint>

namespace fx {

struct Result {
  bool hit = false;
};

class Table {
 public:
  // BAD: missing [[nodiscard]].
  Result Lookup(std::uint64_t slot) const;

  // GOOD: already annotated.
  [[nodiscard]] Result LookupKey(std::uint64_t key) const;

  // GOOD: void-returning mutator named Lookup-ish is not a query.
  void Insert(std::uint64_t slot);
};

}  // namespace fx

#endif  // CPT_TESTS_LINT_FIXTURES_NODISCARD_H_
