// Fixture: check-macro-hygiene.
//
// Raw assert()/abort() bypass the simulator's always-on CPT_CHECK contract
// (CMake strips NDEBUG precisely so checks stay live in Release benches).
#include <cassert>
#include <cstdlib>

namespace fx {

// BAD: raw assert compiles out under NDEBUG.
int Narrow(long v) {
  assert(v >= 0);
  return static_cast<int>(v);
}

// BAD: raw abort gives no expression/location context.
void Fail() {
  std::abort();
}

// GOOD: suppressed with a justification.
void FailHard() {
  std::abort();  // cpt-lint: allow(check-macro-hygiene) — fixture's own failure path
}

}  // namespace fx
