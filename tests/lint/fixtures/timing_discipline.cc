// Fixture: timing-discipline.
//
// Every host-time measurement flows through obs/timer.h (ScopedTimer /
// PhaseProfiler) or obs/perf.h (HostPerfCounters); raw std::chrono clock
// reads and POSIX clock syscalls anywhere else make reported numbers
// incomparable across the tree.
#include <chrono>
#include <ctime>

namespace fx {

// BAD: raw steady_clock read outside obs/timer.* / obs/perf.*.
double NowSeconds() {
  const auto t = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t.time_since_epoch()).count();
}

// BAD: high_resolution_clock is the same raw read with a fancier name.
long HighResTick() {
  return std::chrono::high_resolution_clock::now().time_since_epoch().count();
}

// BAD: wall-clock reads double down by being non-monotonic too.
long WallTick() {
  return std::chrono::system_clock::now().time_since_epoch().count();
}

// BAD: POSIX clock syscall bypasses the shared timing layer.
double PosixNow() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<double>(ts.tv_sec);
}

// GOOD: duration types and arithmetic are fine; only clock reads are banned.
std::chrono::milliseconds Backoff(int attempt) {
  return std::chrono::milliseconds(1 << attempt);
}

}  // namespace fx
