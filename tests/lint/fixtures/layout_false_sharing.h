// Fixture: false-sharing.  Two shapes of the defect:
//   (A) per-shard/per-stripe containers whose element type is smaller than
//       a destructive-interference line — adjacent shards ping-pong one
//       host cache line between writer threads;
//   (B) inside a CPT_SHARED class, fields that different threads update
//       independently (distinct guards, or an atomic next to a lock)
//       landing on one 64-byte line.
// Aligned / regrouped variants of both must stay silent, as must the
// at-site suppression.
#ifndef CPT_TESTS_LINT_FIXTURES_LAYOUT_FALSE_SHARING_H_
#define CPT_TESTS_LINT_FIXTURES_LAYOUT_FALSE_SHARING_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/hotpath.h"
#include "common/sync.h"

namespace fx {

// 16 bytes: four of these share every destructive-interference line.
struct Counter {
  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> misses{0};
};

// One full line per element: adjacent shards cannot interfere.
struct CPT_CACHE_ALIGNED AlignedCounter {
  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> misses{0};
};

// Plain alignas works too — the macro is not magic.
struct alignas(64) PaddedSlot {
  std::uint64_t value = 0;
};

class ShardedCounters {
 public:
  void Bump(unsigned shard);

 private:
  // BAD: 16-byte elements, four shards per line.
  std::vector<Counter> shards_;

  // GOOD: the element type is CPT_CACHE_ALIGNED.
  std::vector<AlignedCounter> stripes_;

  // GOOD: alignas(64) on the element type.
  std::unique_ptr<PaddedSlot[]> slot_shards_;

  // GOOD: a shard *count* is not per-shard storage.
  unsigned num_shards_ = 0;

  // GOOD (suppressed): cold snapshot copy, never written concurrently.
  std::vector<Counter> dead_shards_;  // cpt-lint: allow(false-sharing)
};

// BAD: two capabilities carve this class into independently-updated halves,
// but both guarded fields land on host line 0.
class CPT_SHARED SplitCounters {
 public:
  void BumpFast();
  void BumpSlow();

 private:
  std::uint64_t fast_total_ CPT_GUARDED_BY(fast_mu_) = 0;
  std::uint64_t slow_total_ CPT_GUARDED_BY(slow_mu_) = 0;
  Mutex fast_mu_;
  Mutex slow_mu_;
};

// GOOD: same two capabilities, but each guarded field sits on its own line
// (CPT_CACHE_ALIGNED hoists the field to a fresh 64-byte boundary).
class CPT_SHARED RegroupedCounters {
 public:
  void BumpFast();
  void BumpSlow();

 private:
  CPT_CACHE_ALIGNED std::uint64_t fast_total_ CPT_GUARDED_BY(fast_mu_) = 0;
  CPT_CACHE_ALIGNED std::uint64_t slow_total_ CPT_GUARDED_BY(slow_mu_) = 0;
  Mutex fast_mu_;
  Mutex slow_mu_;
};

}  // namespace fx

#endif  // CPT_TESTS_LINT_FIXTURES_LAYOUT_FALSE_SHARING_H_
