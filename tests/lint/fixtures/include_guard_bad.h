// Fixture: include-guard.  Guard name does not follow the
// CPT_<PATH>_H_ convention for this path.
#ifndef WRONG_GUARD_NAME_H
#define WRONG_GUARD_NAME_H

namespace fx {
inline int Answer() { return 42; }
}  // namespace fx

#endif  // WRONG_GUARD_NAME_H
