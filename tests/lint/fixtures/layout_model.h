// Fixture: layout-ledger (static_assert cross-check) and the layout model
// itself.  The structs below exercise the padding arithmetic the layout
// rules reason from — bit-fields, alignas, nested structs,
// [[no_unique_address]], arrays — and pin it with literal static_asserts.
// Deliberately wrong pins must be flagged; correct ones must stay silent.
// The template at the bottom must be skipped with a notice, not crash the
// model or produce findings.
#ifndef CPT_TESTS_LINT_FIXTURES_LAYOUT_MODEL_H_
#define CPT_TESTS_LINT_FIXTURES_LAYOUT_MODEL_H_

#include <cstdint>

namespace fx {

// Bit-fields pack into their container type: 3 + 7 bits share one uint32,
// then padding aligns the uint64 tail.
struct BitPacked {
  std::uint32_t kind : 3;
  std::uint32_t flags : 7;
  std::uint64_t payload;
};
// GOOD: matches the model (and the compiler).
static_assert(sizeof(BitPacked) == 16 && alignof(BitPacked) == 8);

// BAD: claims a size the model refutes (the real size is 16).
static_assert(sizeof(BitPacked) == 24);

struct Empty {};

// Nested struct + [[no_unique_address]] empty member + trailing array.
struct Outer {
  struct Inner {
    std::uint16_t tag = 0;
    std::uint8_t kind = 0;
  };
  [[no_unique_address]] Empty stateless;
  Inner inner;
  std::uint8_t slots[3];
};
// GOOD: Inner is {u16, u8, pad} = 4 bytes; Outer packs Empty into the
// padding and ends 4 + 3 rounded to alignment 2.
static_assert(sizeof(Outer::Inner) == 4 && alignof(Outer::Inner) == 2);
static_assert(sizeof(Outer) == 8);

// An alignas member hoists the whole struct's alignment.
struct Overaligned {
  alignas(32) std::uint8_t ring[24];
  std::uint32_t head = 0;
};
// BAD: alignof is 32, not 1 — the alignas on the member is load-bearing.
static_assert(alignof(Overaligned) == 1);
// GOOD: 24 + 4 rounded up to the 32-byte boundary.
static_assert(sizeof(Overaligned) == 32);

// Template-dependent layout cannot be modeled from source; the analyzer
// must record a skip notice for this struct and move on silently.
template <typename T>
struct Slot {
  T value;
  std::uint32_t stamp = 0;
};

}  // namespace fx

#endif  // CPT_TESTS_LINT_FIXTURES_LAYOUT_MODEL_H_
