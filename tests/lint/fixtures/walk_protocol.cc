// Fixture: walk-protocol-pairing.
//
// Walk brackets (BeginWalk/EndWalk/AbortWalk) must pair within a function
// body, and among emitted walk events kWalkHit must precede kWalkEnd.
namespace fx {

struct Event {
  int kind;
};

enum class EventKind { kWalkStep, kWalkHit, kWalkEnd, kWalkAbort };

struct Cache {
  void BeginWalk();
  void EndWalk();
  void AbortWalk();
};

struct Tracer {
  void Record(EventKind k);
};

// BAD: BeginWalk with no EndWalk/AbortWalk on any path.
void LeakyWalk(Cache& cache) {
  cache.BeginWalk();
}

// BAD: kWalkEnd emitted before kWalkHit.
void BackwardsProtocol(Cache& cache, Tracer& tracer) {
  cache.BeginWalk();
  tracer.Record(EventKind::kWalkEnd);
  tracer.Record(EventKind::kWalkHit);
  cache.EndWalk();
}

// GOOD: begin/end paired, hit before end.
void ProperWalk(Cache& cache, Tracer& tracer) {
  cache.BeginWalk();
  tracer.Record(EventKind::kWalkStep);
  tracer.Record(EventKind::kWalkHit);
  tracer.Record(EventKind::kWalkEnd);
  cache.EndWalk();
}

// GOOD: abort path closes the bracket too.
void AbortedWalk(Cache& cache, Tracer& tracer) {
  cache.BeginWalk();
  tracer.Record(EventKind::kWalkAbort);
  cache.AbortWalk();
}

}  // namespace fx
