// Fixture: raw-sync-primitive.
//
// Synchronization primitives outside common/sync.h must be the annotated
// cpt wrappers (cpt::Mutex, cpt::MutexLock, ...), never bare std or
// pthread primitives, so Clang TSA sees every capability.
#include <mutex>

namespace fx {

std::mutex g_lock;  // BAD: bare std::mutex

int Critical(int v) {
  std::lock_guard<std::mutex> hold(g_lock);  // BAD twice: lock_guard + mutex
  return v + 1;
}

pthread_mutex_t g_raw;  // BAD: pthread primitive

void InitRaw() {
  pthread_mutex_init(&g_raw, nullptr);  // BAD: pthread call
}

std::condition_variable g_cv;  // BAD: condition variables have no wrapper yet

std::atomic_flag g_spin = ATOMIC_FLAG_INIT;  // BAD: use cpt::AtomicCell

void SpawnDetached() {
  std::thread worker([] {});  // BAD: bare thread; use cpt::ThreadGroup
  worker.detach();
}

// A documented exception stays allowed:
std::mutex g_grandfathered;  // cpt-lint: allow(raw-sync-primitive)

}  // namespace fx
