// Fixture: name-table-sync.
//
// Name tables adjacent to a contract enum must be pinned to the enum's count
// constant by a static_assert.
#include <cstdint>
#include <iterator>

namespace fx {

// BAD: table with no static_assert tying it to kEventKindCount.
enum class EventKind : std::uint8_t {
  kTlbHit = 0,
  kTlbMiss,
};
inline constexpr std::size_t kEventKindCount = 2;
inline constexpr const char* kEventKindNames[] = {
    "tlb_hit",
    "tlb_miss",
};

// GOOD: table pinned to the count constant.
enum class WalkHitClass : std::uint8_t {
  kBase = 0,
  kSuperpage,
};
inline constexpr std::size_t kWalkHitClassCount = 2;
inline constexpr const char* kWalkHitClassNames[] = {
    "base",
    "superpage",
};
static_assert(std::size(kWalkHitClassNames) == kWalkHitClassCount,
              "every WalkHitClass needs a name");

}  // namespace fx
