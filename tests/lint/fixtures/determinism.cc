// Fixture: determinism-guards.
//
// The simulator must be bit-identical run to run: all randomness goes
// through cpt::Rng, all timing through obs/timer.h, and floats never get
// compared with == (the bench gate compares serialized decimals instead).
#include <cstdlib>
#include <ctime>
#include <random>

namespace fx {

// BAD: libc rand() draws from hidden global state.
int RollDie() {
  return std::rand() % 6;
}

// BAD: seeding from the wall clock makes runs unrepeatable.
unsigned ClockSeed() {
  return static_cast<unsigned>(std::time(nullptr));
}

// BAD: random_device is nondeterministic by design.
unsigned HardwareSeed() {
  std::random_device rd;
  return rd();
}

// BAD: exact float equality.
bool Converged(double ratio) {
  return ratio == 1.0;
}

// GOOD: integer comparison is exact; nothing to flag.
bool Done(int remaining) {
  return remaining == 0;
}

}  // namespace fx
