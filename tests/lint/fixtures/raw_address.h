// Fixture: raw-address-param.  Address-domain values (VAs, VPNs, VPBNs,
// PPNs, block numbers) cross public-header APIs as the strong types from
// common/types.h; raw std::uint64_t parameters and returns named after an
// address domain are flagged.
#ifndef CPT_TESTS_LINT_FIXTURES_RAW_ADDRESS_H_
#define CPT_TESTS_LINT_FIXTURES_RAW_ADDRESS_H_

#include <cstdint>

namespace fx {

class Table {
 public:
  // BAD: a VPN and a PPN crossing as raw integers (two findings).
  void Insert(std::uint64_t vpn, std::uint64_t ppn);

  // BAD: returns a PPN raw, and takes a raw VPN (two findings).
  std::uint64_t TranslatePpn(std::uint64_t vpn) const;

  // GOOD: counts, factors, and opaque hash keys are genuinely integral.
  void Reserve(std::uint64_t npages, unsigned subblock_factor);
  void Probe(std::uint64_t key) const;
  std::uint64_t node_count() const;

  // GOOD: a sanctioned domain crossing carries a suppression.
  // cpt-lint: allow(raw-address-param)
  std::uint64_t BlockKeyOf(std::uint64_t raw) const;

  // BAD: snake_case domain word inside the parameter name.
  void MapRange(std::uint64_t first_vpn, std::uint64_t n);
};

// BAD: free function returning a fault VA as a raw integer.
std::uint64_t FaultVaOf(std::uint64_t cause);

}  // namespace fx

#endif  // CPT_TESTS_LINT_FIXTURES_RAW_ADDRESS_H_
