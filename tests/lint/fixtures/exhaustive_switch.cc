// Fixture: exhaustive-enum-switch.
//
// A pared-down clone of the real EventKind contract enum with switches that
// drop cases.  The linter infers the switched enum from the case labels, so
// these local definitions exercise the same paths the real tree does.
#include <cstdint>

namespace fx {

enum class EventKind : std::uint8_t {
  kTlbHit = 0,
  kTlbMiss,
  kWalkStep,
  kWalkEnd,
};

enum class WalkHitClass : std::uint8_t {
  kBase = 0,
  kSuperpage,
};

// BAD: misses kWalkEnd, and the default hides it.
const char* Name(EventKind kind) {
  switch (kind) {
    case EventKind::kTlbHit:
      return "tlb_hit";
    case EventKind::kTlbMiss:
      return "tlb_miss";
    case EventKind::kWalkStep:
      return "walk_step";
    default:
      return "?";
  }
}

// BAD: misses kSuperpage with no default at all.
int Weight(WalkHitClass cls) {
  switch (cls) {
    case WalkHitClass::kBase:
      return 1;
  }
  return 0;
}

// GOOD: covers every enumerator (default allowed on top).
const char* FullName(EventKind kind) {
  switch (kind) {
    case EventKind::kTlbHit:
      return "tlb_hit";
    case EventKind::kTlbMiss:
      return "tlb_miss";
    case EventKind::kWalkStep:
      return "walk_step";
    case EventKind::kWalkEnd:
      return "walk_end";
  }
  return "?";
}

// GOOD: non-exhaustive but justified and suppressed.
bool IsMiss(EventKind kind) {
  switch (kind) {  // cpt-lint: allow(exhaustive-enum-switch)
    case EventKind::kTlbMiss:
      return true;
    default:
      return false;
  }
}

}  // namespace fx
