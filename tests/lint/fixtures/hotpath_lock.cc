// Fixture: hot-lock-discipline (whole-program; see common/hotpath.h).
//
// FxRootLock is a CPT_HOT root.  cpt wrapper locks it reaches need an
// adjacent '// hot-lock:' justification (and are budgeted in the debt
// ledger); bare blocking calls never pass, justified or not.
namespace fxlock {

struct Mutex {};
struct MutexLock {
  explicit MutexLock(Mutex& m);
};
struct Clock {
  void wait();
};

Mutex g_mu;

// BAD: lock without an adjacent justification comment.
int FxUnjustified(int v) {
  MutexLock lock(g_mu);
  return v + 1;
}

// GOOD: justified lock (still budgeted in tools/hotpath_debt.json).
int FxJustified(int v) {
  // hot-lock: single counter increment; bounded, no nested locks.
  MutexLock lock(g_mu);
  return v + 2;
}

// BAD: bare blocking call — a justification does not help.
void FxBackoff(Clock& clk) {
  // hot-lock: irrelevant; sleeps and waits are never hot-path legal.
  clk.wait();
}

int FxSpin(Clock& clk, int v) {
  FxBackoff(clk);
  return FxUnjustified(v) + FxJustified(v);
}

// The hot root.
CPT_HOT int FxRootLock(Clock& clk) {
  return FxSpin(clk, 1);
}

}  // namespace fxlock
