// Fixture: hot-no-throw (whole-program; see common/hotpath.h).
//
// FxRootThrow is a CPT_HOT root.  Exceptions and throwing std calls are
// banned everywhere it reaches; hot-path failures are CPT_CHECK aborts.
#include <vector>

namespace fxthrow {

struct Index {
  std::vector<int> dense_;

  // BAD: .at() throws on the failure path.
  int Get(int i) {
    return dense_.at(i);
  }

  // GOOD: suppressed with a rationale comment.
  int First() {
    // cpt-lint: allow(hot-no-throw)
    return dense_.at(0);
  }
};

// BAD: a throw statement behind one call level.
int FxParse(int raw) {
  if (raw < 0) {
    throw raw;
  }
  return raw;
}

int FxStep(Index& idx, int i) {
  return idx.Get(i) + FxParse(i);
}

// The hot root.
CPT_HOT int FxRootThrow(Index& idx) {
  return FxStep(idx, 3) + idx.First();
}

}  // namespace fxthrow
