// Fixture: hot-no-alloc (whole-program; see common/hotpath.h).
//
// FxRootAlloc is a CPT_HOT root: everything it reaches transitively is held
// to the no-allocation rule.  FxColdRepair is CPT_COLD, so the traversal
// prunes there and its resize is fine; spare_ is sanctioned by the reserve
// in FxWarm.
#include <vector>

namespace fxhot {

struct Fill {
  int x;
};

struct Table {
  std::vector<int> slots_;
  std::vector<Fill> spare_;

  // BAD: unreserved growth on a hot path.
  void Insert(int v) {
    slots_.push_back(v);
  }

  // GOOD: the reserve here sanctions spare_ everywhere.
  void FxWarm() {
    spare_.reserve(64);
  }

  // GOOD: reserved receiver.
  void Recycle(Fill f) {
    spare_.push_back(f);
  }
};

// BAD: operator new behind one call level.
int* FxDeepAlloc() {
  return new int(7);
}

int FxMiddle(Table& t) {
  t.Insert(1);
  t.Recycle(Fill{2});
  return *FxDeepAlloc();
}

// GOOD: CPT_COLD prunes the traversal here (the repair path is OS work).
CPT_COLD void FxColdRepair(Table& t) {
  t.slots_.resize(1024);
}

// The hot root.  Calling the cold function is fine; its body is exempt.
CPT_HOT int FxRootAlloc(Table& t) {
  FxColdRepair(t);
  return FxMiddle(t);
}

}  // namespace fxhot
