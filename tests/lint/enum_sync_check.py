#!/usr/bin/env python3
"""Agreement check: the compiled binary vs the linter's source parse.

Runs the cpt_dump_enums helper (path passed as argv[1]) and
`tools/cpt_lint.py --export-enums`, then requires that for every enum the
binary dumps, the linter parsed the same enumerator count and — where a
k<Enum>Names table exists — the same wire names in the same order.  This is
the drift gate for tools/check_bench_json.py, which consumes the linter's
export: if this passes, the Python validator's name list is exactly what
ToString() compiles to.
"""
import json
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
LINT = REPO_ROOT / "tools" / "cpt_lint.py"


def main():
    if len(sys.argv) != 2:
        print("usage: enum_sync_check.py <path-to-cpt_dump_enums>")
        return 2
    dumped = json.loads(subprocess.run(
        [sys.argv[1]], capture_output=True, text=True, check=True).stdout)
    exported = json.loads(subprocess.run(
        [sys.executable, str(LINT), "--export-enums"],
        cwd=REPO_ROOT, capture_output=True, text=True, check=True).stdout)

    assert dumped["schema"] == "cpt-dump-enums", dumped["schema"]
    assert exported["schema"] == "cpt-lint-enums", exported["schema"]

    errors = []
    for name, binary in dumped["enums"].items():
        parsed = exported["enums"].get(name)
        if parsed is None:
            errors.append(f"{name}: binary dumps it, linter never parsed it")
            continue
        if binary["count"] != len(parsed["enumerators"]):
            errors.append(
                f"{name}: binary count {binary['count']} != parsed "
                f"{len(parsed['enumerators'])} enumerators")
        parsed_names = parsed.get("names")
        if parsed_names is not None and binary["names"] != parsed_names:
            errors.append(
                f"{name}: name mismatch\n  binary: {binary['names']}\n"
                f"  parsed: {parsed_names}")
        if parsed_names is None:
            errors.append(
                f"{name}: linter found no k{name}Names table to pin")
    if errors:
        print("enum sync check FAILED:")
        for e in errors:
            print(" ", e)
        return 1
    print(f"enum sync check passed: {len(dumped['enums'])} enums agree "
          "(binary == linter parse)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
