#!/usr/bin/env python3
"""Agreement check: the compiled binary's ABI vs the linter's layout model.

Runs the cpt_dump_layout helper (path passed as argv[1]) and
`tools/cpt_lint.py --layout-report`, then requires that every struct the
binary dumps was resolved by the linter's layout model with the identical
size, alignment, and — for every field the binary probed with offsetof —
the identical field offset.  The global contract values (host cache line,
simulated cache line, mapping-word width) must agree too.

This is the drift gate for the layout-discipline rules: the false-sharing
and model-truth-sync rules reason entirely from the Python model's padding
arithmetic, and tools/layout_ledger.json is generated from it.  If this
check passes, every byte count those rules gate on is exactly what the C++
compiler built.
"""
import json
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
LINT = REPO_ROOT / "tools" / "cpt_lint.py"


def main():
    if len(sys.argv) != 2:
        print("usage: layout_sync_check.py <path-to-cpt_dump_layout>")
        return 2
    dumped = json.loads(subprocess.run(
        [sys.argv[1]], capture_output=True, text=True, check=True).stdout)
    report = json.loads(subprocess.run(
        [sys.executable, str(LINT), "--layout-report"],
        cwd=REPO_ROOT, capture_output=True, text=True, check=True).stdout)

    assert dumped["schema"] == "cpt-dump-layout", dumped["schema"]
    model = report["resolved"]

    errors = []
    for key in ("host_line_bytes", "sim_line_bytes", "word_bytes"):
        if dumped[key] != report["ledger"][key]:
            errors.append(
                f"{key}: binary {dumped[key]} != model {report['ledger'][key]}")

    checked_fields = 0
    for qual, binary in dumped["structs"].items():
        resolved = model.get(qual)
        if resolved is None:
            errors.append(f"{qual}: binary dumps it, layout model never "
                          "resolved it (skipped or missing)")
            continue
        if binary["size"] != resolved["size"]:
            errors.append(f"{qual}: sizeof {binary['size']} (binary) != "
                          f"{resolved['size']} (model)")
        if binary["align"] != resolved["align"]:
            errors.append(f"{qual}: alignof {binary['align']} (binary) != "
                          f"{resolved['align']} (model)")
        model_offsets = {f["name"]: f["offset"] for f in resolved["fields"]}
        for fname, off in binary["fields"].items():
            if fname not in model_offsets:
                errors.append(f"{qual}::{fname}: binary probes it, model "
                              "has no such field")
            elif model_offsets[fname] != off:
                errors.append(f"{qual}::{fname}: offsetof {off} (binary) != "
                              f"{model_offsets[fname]} (model)")
            checked_fields += 1

    if errors:
        print("layout sync check FAILED:")
        for e in errors:
            print(" ", e)
        return 1
    print(f"layout sync check passed: {len(dumped['structs'])} structs, "
          f"{checked_fields} field offsets agree (binary ABI == linter model)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
