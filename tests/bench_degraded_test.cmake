# Script-mode ctest helper: the host-perf degradation contract, end to end.
# Runs a bench binary with CPT_NO_HOST_PERF=1 (the deterministic stand-in
# for EPERM/ENOSYS perf_event_open environments) and requires that it
#   1. exits 0 — a perf-less host must never fail a bench run,
#   2. produces a report that tools/check_bench_json.py accepts — the JSON
#      shape is availability-invariant, and
#   3. stamps the degraded mode honestly (available false, rusage source,
#      a non-empty reason naming the override).
#
# Invoked as:
#   cmake -DBENCH=<binary> -DCHECKER=<check_bench_json.py> -DPYTHON=<python3>
#         -DOUT=<scratch.json> -P this_file
execute_process(
  COMMAND ${CMAKE_COMMAND} -E env CPT_NO_HOST_PERF=1 CPT_TRACE_LEN=2000
          "${BENCH}" "--json=${OUT}"
  RESULT_VARIABLE result
  ERROR_VARIABLE err)
if(NOT result EQUAL 0)
  message(FATAL_ERROR "degraded bench run failed (exit ${result}): ${err}")
endif()

execute_process(
  COMMAND "${PYTHON}" "${CHECKER}" "${OUT}"
  RESULT_VARIABLE result
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT result EQUAL 0)
  message(FATAL_ERROR
          "degraded report failed schema validation: ${out} ${err}")
endif()

file(READ "${OUT}" report)
if(NOT report MATCHES "\"available\": false")
  message(FATAL_ERROR "degraded report does not stamp available:false")
endif()
if(NOT report MATCHES "\"source\": \"rusage\"")
  message(FATAL_ERROR "degraded report does not stamp source:rusage")
endif()
if(NOT report MATCHES "disabled by CPT_NO_HOST_PERF")
  message(FATAL_ERROR "degraded report does not carry the forced-off reason")
endif()
message(STATUS "degraded bench report is schema-valid and honestly stamped")
