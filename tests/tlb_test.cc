// Tests for the four TLB simulators: hit/miss semantics, LRU replacement,
// asid isolation, superpage coverage, PSB vectors, and complete-subblock
// block/subblock miss classification with prefetch.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "tlb/complete_subblock.h"
#include "tlb/partial_subblock.h"
#include "tlb/single_page.h"
#include "tlb/superpage.h"

namespace cpt::tlb {
namespace {

pt::TlbFill BaseFill(Vpn vpn, Ppn ppn) {
  return pt::TlbFill{.kind = MappingKind::kBase,
                     .base_vpn = vpn,
                     .pages_log2 = 0,
                     .word = MappingWord::Base(ppn, Attr::ReadWrite())};
}

pt::TlbFill SuperFill(Vpn base_vpn, Ppn base_ppn, PageSize size) {
  return pt::TlbFill{.kind = MappingKind::kSuperpage,
                     .base_vpn = base_vpn,
                     .pages_log2 = size.size_log2,
                     .word = MappingWord::Superpage(base_ppn, Attr::ReadWrite(), size)};
}

pt::TlbFill PsbFill(Vpn block_base, Ppn block_ppn, std::uint16_t vector) {
  return pt::TlbFill{
      .kind = MappingKind::kPartialSubblock,
      .base_vpn = block_base,
      .pages_log2 = 4,
      .word = MappingWord::PartialSubblock(block_ppn, Attr::ReadWrite(), vector)};
}

// ---------------------------------------------------------------------------
// SinglePageTlb
// ---------------------------------------------------------------------------

TEST(SinglePageTlbTest, MissThenHit) {
  SinglePageTlb tlb(4);
  EXPECT_EQ(tlb.Lookup(0, Vpn{0x100}), LookupOutcome::kMiss);
  tlb.Insert(0, Vpn{0x100}, BaseFill(Vpn{0x100}, Ppn{1}));
  EXPECT_EQ(tlb.Lookup(0, Vpn{0x100}), LookupOutcome::kHit);
  EXPECT_EQ(tlb.stats().accesses, 2u);
  EXPECT_EQ(tlb.stats().hits, 1u);
  EXPECT_EQ(tlb.stats().misses, 1u);
}

TEST(SinglePageTlbTest, LruEvictsLeastRecentlyUsed) {
  SinglePageTlb tlb(2);
  tlb.Insert(0, Vpn{1}, BaseFill(Vpn{1}, Ppn{1}));
  tlb.Insert(0, Vpn{2}, BaseFill(Vpn{2}, Ppn{2}));
  EXPECT_EQ(tlb.Lookup(0, Vpn{1}), LookupOutcome::kHit);  // 2 becomes LRU.
  tlb.Insert(0, Vpn{3}, BaseFill(Vpn{3}, Ppn{3}));                   // Evicts 2.
  EXPECT_EQ(tlb.Lookup(0, Vpn{1}), LookupOutcome::kHit);
  EXPECT_EQ(tlb.Lookup(0, Vpn{3}), LookupOutcome::kHit);
  EXPECT_EQ(tlb.Lookup(0, Vpn{2}), LookupOutcome::kMiss);
}

TEST(SinglePageTlbTest, AsidsDoNotAlias) {
  SinglePageTlb tlb(4);
  tlb.Insert(0, Vpn{0x100}, BaseFill(Vpn{0x100}, Ppn{1}));
  EXPECT_EQ(tlb.Lookup(1, Vpn{0x100}), LookupOutcome::kMiss);
  EXPECT_EQ(tlb.Lookup(0, Vpn{0x100}), LookupOutcome::kHit);
}

TEST(SinglePageTlbTest, SuperpageFillInstallsOnlyFaultingPage) {
  SinglePageTlb tlb(4);
  tlb.Insert(0, Vpn{0x4005}, SuperFill(Vpn{0x4000}, Ppn{0x100}, kPage64K));
  EXPECT_EQ(tlb.Lookup(0, Vpn{0x4005}), LookupOutcome::kHit);
  EXPECT_EQ(tlb.Lookup(0, Vpn{0x4006}), LookupOutcome::kMiss);
}

TEST(SinglePageTlbTest, FlushInvalidatesEverything) {
  SinglePageTlb tlb(4);
  tlb.Insert(0, Vpn{1}, BaseFill(Vpn{1}, Ppn{1}));
  tlb.Flush();
  EXPECT_EQ(tlb.Lookup(0, Vpn{1}), LookupOutcome::kMiss);
}

TEST(SinglePageTlbTest, ReinsertDoesNotDuplicate) {
  SinglePageTlb tlb(2);
  tlb.Insert(0, Vpn{1}, BaseFill(Vpn{1}, Ppn{1}));
  tlb.Insert(0, Vpn{1}, BaseFill(Vpn{1}, Ppn{9}));
  tlb.Insert(0, Vpn{2}, BaseFill(Vpn{2}, Ppn{2}));
  // Both entries must still fit: the re-insert reused 1's slot.
  EXPECT_EQ(tlb.Lookup(0, Vpn{1}), LookupOutcome::kHit);
  EXPECT_EQ(tlb.Lookup(0, Vpn{2}), LookupOutcome::kHit);
}

// ---------------------------------------------------------------------------
// SuperpageTlb
// ---------------------------------------------------------------------------

TEST(SuperpageTlbTest, SuperpageEntryCoversWholeRange) {
  SuperpageTlb tlb(4);
  tlb.Insert(0, Vpn{0x4003}, SuperFill(Vpn{0x4000}, Ppn{0x100}, kPage64K));
  for (unsigned i = 0; i < 16; ++i) {
    EXPECT_EQ(tlb.Lookup(0, Vpn{0x4000} + i), LookupOutcome::kHit) << i;
  }
  EXPECT_EQ(tlb.Lookup(0, Vpn{0x3FFF}), LookupOutcome::kMiss);
  EXPECT_EQ(tlb.Lookup(0, Vpn{0x4010}), LookupOutcome::kMiss);
  EXPECT_GT(tlb.SuperpageHitFraction(), 0.9);
}

TEST(SuperpageTlbTest, MixedSizesCoexist) {
  SuperpageTlb tlb(4);
  tlb.Insert(0, Vpn{0x4000}, SuperFill(Vpn{0x4000}, Ppn{0x100}, kPage64K));
  tlb.Insert(0, Vpn{0x9000}, BaseFill(Vpn{0x9000}, Ppn{0x7}));
  tlb.Insert(0, Vpn{0x8002}, SuperFill(Vpn{0x8002}, Ppn{0x52}, kPage8K));
  EXPECT_EQ(tlb.Lookup(0, Vpn{0x400F}), LookupOutcome::kHit);
  EXPECT_EQ(tlb.Lookup(0, Vpn{0x9000}), LookupOutcome::kHit);
  EXPECT_EQ(tlb.Lookup(0, Vpn{0x8003}), LookupOutcome::kHit);
  EXPECT_EQ(tlb.Lookup(0, Vpn{0x8004}), LookupOutcome::kMiss);
}

TEST(SuperpageTlbTest, PsbFillDegradesToBaseEntry) {
  SuperpageTlb tlb(4);
  tlb.Insert(0, Vpn{0x8005}, PsbFill(Vpn{0x8000}, Ppn{0x40}, 0xFFFF));
  EXPECT_EQ(tlb.Lookup(0, Vpn{0x8005}), LookupOutcome::kHit);
  EXPECT_EQ(tlb.Lookup(0, Vpn{0x8006}), LookupOutcome::kMiss);
}

TEST(SuperpageTlbTest, LruAcrossMixedSizes) {
  SuperpageTlb tlb(2);
  tlb.Insert(0, Vpn{0x4000}, SuperFill(Vpn{0x4000}, Ppn{0x100}, kPage64K));
  tlb.Insert(0, Vpn{0x9000}, BaseFill(Vpn{0x9000}, Ppn{0x7}));
  EXPECT_EQ(tlb.Lookup(0, Vpn{0x4001}), LookupOutcome::kHit);
  tlb.Insert(0, Vpn{0xA000}, BaseFill(Vpn{0xA000}, Ppn{0x8}));  // Evicts 0x9000.
  EXPECT_EQ(tlb.Lookup(0, Vpn{0x9000}), LookupOutcome::kMiss);
  EXPECT_EQ(tlb.Lookup(0, Vpn{0x4002}), LookupOutcome::kHit);
}

// ---------------------------------------------------------------------------
// PartialSubblockTlb
// ---------------------------------------------------------------------------

TEST(PartialSubblockTlbTest, VectorControlsHits) {
  PartialSubblockTlb tlb(4, 16);
  tlb.Insert(0, Vpn{0x8000}, PsbFill(Vpn{0x8000}, Ppn{0x40}, 0b0000'0000'1010'0001));
  EXPECT_EQ(tlb.Lookup(0, Vpn{0x8000}), LookupOutcome::kHit);
  EXPECT_EQ(tlb.Lookup(0, Vpn{0x8005}), LookupOutcome::kHit);
  EXPECT_EQ(tlb.Lookup(0, Vpn{0x8007}), LookupOutcome::kHit);
  EXPECT_EQ(tlb.Lookup(0, Vpn{0x8001}), LookupOutcome::kMiss);
  EXPECT_EQ(tlb.Lookup(0, Vpn{0x800F}), LookupOutcome::kMiss);
}

TEST(PartialSubblockTlbTest, VectorRefreshGrowsCoverage) {
  PartialSubblockTlb tlb(4, 16);
  tlb.Insert(0, Vpn{0x8000}, PsbFill(Vpn{0x8000}, Ppn{0x40}, 0x0001));
  EXPECT_EQ(tlb.Lookup(0, Vpn{0x8001}), LookupOutcome::kMiss);
  tlb.Insert(0, Vpn{0x8001}, PsbFill(Vpn{0x8000}, Ppn{0x40}, 0x0003));
  EXPECT_EQ(tlb.Lookup(0, Vpn{0x8001}), LookupOutcome::kHit);
  EXPECT_EQ(tlb.Lookup(0, Vpn{0x8000}), LookupOutcome::kHit);
}

TEST(PartialSubblockTlbTest, NotProperlyPlacedPagesUseSingleEntries) {
  PartialSubblockTlb tlb(4, 16);
  tlb.Insert(0, Vpn{0x8003}, BaseFill(Vpn{0x8003}, Ppn{0x123}));  // Unplaced page.
  tlb.Insert(0, Vpn{0x8000}, PsbFill(Vpn{0x8000}, Ppn{0x40}, 0x0001));
  EXPECT_EQ(tlb.Lookup(0, Vpn{0x8003}), LookupOutcome::kHit);
  EXPECT_EQ(tlb.Lookup(0, Vpn{0x8000}), LookupOutcome::kHit);
  EXPECT_EQ(tlb.Lookup(0, Vpn{0x8004}), LookupOutcome::kMiss);
}

TEST(PartialSubblockTlbTest, BlockSizedSuperpageBecomesFullVector) {
  PartialSubblockTlb tlb(4, 16);
  tlb.Insert(0, Vpn{0x4000}, SuperFill(Vpn{0x4000}, Ppn{0x100}, kPage64K));
  for (unsigned i = 0; i < 16; ++i) {
    EXPECT_EQ(tlb.Lookup(0, Vpn{0x4000} + i), LookupOutcome::kHit) << i;
  }
  EXPECT_GT(tlb.SubblockHitFraction(), 0.9);
}

TEST(PartialSubblockTlbTest, SmallerFactorMasksVector) {
  PartialSubblockTlb tlb(4, 4);
  tlb.Insert(0, Vpn{0x8000}, pt::TlbFill{.kind = MappingKind::kPartialSubblock,
                                    .base_vpn = Vpn{0x8000},
                                    .pages_log2 = 2,
                                    .word = MappingWord::PartialSubblock(
                                        Ppn{0x40}, Attr::ReadWrite(), 0b0101)});
  EXPECT_EQ(tlb.Lookup(0, Vpn{0x8000}), LookupOutcome::kHit);
  EXPECT_EQ(tlb.Lookup(0, Vpn{0x8002}), LookupOutcome::kHit);
  EXPECT_EQ(tlb.Lookup(0, Vpn{0x8001}), LookupOutcome::kMiss);
  EXPECT_EQ(tlb.Lookup(0, Vpn{0x8004}), LookupOutcome::kMiss) << "next block over";
}

// ---------------------------------------------------------------------------
// CompleteSubblockTlb
// ---------------------------------------------------------------------------

TEST(CompleteSubblockTlbTest, DistinguishesBlockAndSubblockMisses) {
  CompleteSubblockTlb tlb(4, 16);
  EXPECT_EQ(tlb.Lookup(0, Vpn{0x8000}), LookupOutcome::kBlockMiss);
  tlb.Insert(0, Vpn{0x8000}, BaseFill(Vpn{0x8000}, Ppn{1}));
  EXPECT_EQ(tlb.Lookup(0, Vpn{0x8000}), LookupOutcome::kHit);
  EXPECT_EQ(tlb.Lookup(0, Vpn{0x8001}), LookupOutcome::kSubblockMiss);
  tlb.Insert(0, Vpn{0x8001}, BaseFill(Vpn{0x8001}, Ppn{2}));
  EXPECT_EQ(tlb.Lookup(0, Vpn{0x8001}), LookupOutcome::kHit);
  EXPECT_EQ(tlb.stats().block_misses, 1u);
  EXPECT_EQ(tlb.stats().subblock_misses, 1u);
}

TEST(CompleteSubblockTlbTest, SubblockMissDoesNotEvict) {
  CompleteSubblockTlb tlb(2, 16);
  tlb.Insert(0, Vpn{0x8000}, BaseFill(Vpn{0x8000}, Ppn{1}));
  tlb.Insert(0, Vpn{0x9000}, BaseFill(Vpn{0x9000}, Ppn{2}));
  // Subblock insert into the 0x8000 block must not displace 0x9000's entry.
  EXPECT_EQ(tlb.Lookup(0, Vpn{0x8001}), LookupOutcome::kSubblockMiss);
  tlb.Insert(0, Vpn{0x8001}, BaseFill(Vpn{0x8001}, Ppn{3}));
  EXPECT_EQ(tlb.Lookup(0, Vpn{0x9000}), LookupOutcome::kHit);
  EXPECT_EQ(tlb.Lookup(0, Vpn{0x8001}), LookupOutcome::kHit);
}

TEST(CompleteSubblockTlbTest, PrefetchLoadsWholeBlock) {
  CompleteSubblockTlb tlb(4, 16);
  std::vector<pt::TlbFill> fills;
  for (unsigned i = 0; i < 16; i += 2) {  // Even pages resident.
    fills.push_back(BaseFill(Vpn{0x8000} + i, Ppn{0x100} + i));
  }
  tlb.InsertBlock(0, Vpn{0x8005}, fills);
  for (unsigned i = 0; i < 16; ++i) {
    const auto expect = (i % 2 == 0) ? LookupOutcome::kHit : LookupOutcome::kSubblockMiss;
    EXPECT_EQ(tlb.Lookup(0, Vpn{0x8000} + i), expect) << "page " << i;
  }
}

TEST(CompleteSubblockTlbTest, PrefetchExpandsSuperpageFills) {
  CompleteSubblockTlb tlb(4, 16);
  const pt::TlbFill fill = SuperFill(Vpn{0x4000}, Ppn{0x100}, kPage64K);
  tlb.InsertBlock(0, Vpn{0x4000}, std::span<const pt::TlbFill>(&fill, 1));
  for (unsigned i = 0; i < 16; ++i) {
    EXPECT_EQ(tlb.Lookup(0, Vpn{0x4000} + i), LookupOutcome::kHit) << i;
  }
}

TEST(CompleteSubblockTlbTest, BlockMissEvictsLruEntry) {
  CompleteSubblockTlb tlb(2, 16);
  tlb.Insert(0, Vpn{0x1000}, BaseFill(Vpn{0x1000}, Ppn{1}));
  tlb.Insert(0, Vpn{0x2000}, BaseFill(Vpn{0x2000}, Ppn{2}));
  EXPECT_EQ(tlb.Lookup(0, Vpn{0x1000}), LookupOutcome::kHit);  // 0x2000 is LRU.
  tlb.Insert(0, Vpn{0x3000}, BaseFill(Vpn{0x3000}, Ppn{3}));
  EXPECT_EQ(tlb.Lookup(0, Vpn{0x2000}), LookupOutcome::kBlockMiss);
  EXPECT_EQ(tlb.Lookup(0, Vpn{0x1000}), LookupOutcome::kHit);
}

// Property: a single-page TLB with N entries and a complete-subblock TLB
// with N entries never disagree on a hit for the complete-subblock's favor
// when accesses stay within one page block (the subblock TLB maps a superset
// per tag).
TEST(TlbPropertyTest, SubblockTlbDominatesSinglePageWithinOneBlock) {
  SinglePageTlb single(4);
  CompleteSubblockTlb subblock(4, 16);
  Rng rng(5);
  for (int i = 0; i < 2000; ++i) {
    const Vpn vpn = Vpn{0x8000} + rng.Below(16);  // One block.
    const bool single_hit = single.Lookup(0, vpn) == LookupOutcome::kHit;
    const bool sub_hit = subblock.Lookup(0, vpn) == LookupOutcome::kHit;
    if (single_hit) {
      EXPECT_TRUE(sub_hit) << "iteration " << i;
    }
    if (!single_hit) {
      single.Insert(0, vpn, BaseFill(vpn, Ppn{vpn.raw()}));
    }
    if (!sub_hit) {
      subblock.Insert(0, vpn, BaseFill(vpn, Ppn{vpn.raw()}));
    }
  }
  EXPECT_LE(subblock.stats().misses, single.stats().misses);
}

// Property: LRU inclusion — a bigger single-page TLB's contents include a
// smaller one's under the same access stream, so misses(64) <= misses(56).
TEST(TlbPropertyTest, LruInclusionAcrossSizes) {
  SinglePageTlb small(8);
  SinglePageTlb big(16);
  Rng rng(6);
  for (int i = 0; i < 5000; ++i) {
    const Vpn vpn{rng.Below(40)};
    const bool small_hit = small.Lookup(0, vpn) == LookupOutcome::kHit;
    const bool big_hit = big.Lookup(0, vpn) == LookupOutcome::kHit;
    if (small_hit) {
      EXPECT_TRUE(big_hit) << "inclusion violated at " << i;
    }
    if (!small_hit) {
      small.Insert(0, vpn, BaseFill(vpn, Ppn{vpn.raw()}));
    }
    if (!big_hit) {
      big.Insert(0, vpn, BaseFill(vpn, Ppn{vpn.raw()}));
    }
  }
  EXPECT_LE(big.stats().misses, small.stats().misses);
}

}  // namespace
}  // namespace cpt::tlb
