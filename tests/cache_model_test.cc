// Unit tests for the cache-line touch model.
#include "mem/cache_model.h"

#include <gtest/gtest.h>

namespace cpt::mem {
namespace {

TEST(CacheTouchModelTest, SingleTouchIsOneLine) {
  CacheTouchModel m(256);
  m.BeginWalk();
  m.Touch(PhysAddr{0x1000}, 8);
  EXPECT_EQ(m.LinesThisWalk(), 1u);
  m.EndWalk();
  EXPECT_EQ(m.total_lines(), 1u);
  EXPECT_EQ(m.total_walks(), 1u);
}

TEST(CacheTouchModelTest, SameLineTouchesDeduplicate) {
  CacheTouchModel m(256);
  m.BeginWalk();
  m.Touch(PhysAddr{0x1000}, 8);
  m.Touch(PhysAddr{0x1008}, 8);
  m.Touch(PhysAddr{0x10F8}, 8);
  EXPECT_EQ(m.LinesThisWalk(), 1u);
  m.EndWalk();
  EXPECT_EQ(m.total_lines(), 1u);
}

TEST(CacheTouchModelTest, StraddlingTouchCountsBothLines) {
  CacheTouchModel m(256);
  m.BeginWalk();
  m.Touch(PhysAddr{0x10F8}, 16);  // Crosses the 0x1100 boundary.
  EXPECT_EQ(m.LinesThisWalk(), 2u);
  m.EndWalk();
}

TEST(CacheTouchModelTest, LargeTouchSpansManyLines) {
  CacheTouchModel m(64);
  m.BeginWalk();
  m.Touch(PhysAddr{0x2000}, 256);  // 4 lines of 64 bytes.
  EXPECT_EQ(m.LinesThisWalk(), 4u);
  m.EndWalk();
}

TEST(CacheTouchModelTest, TouchOutsideWalkIgnored) {
  CacheTouchModel m(256);
  m.Touch(PhysAddr{0x1000}, 8);
  EXPECT_EQ(m.total_lines(), 0u);
  EXPECT_EQ(m.total_walks(), 0u);
}

TEST(CacheTouchModelTest, ZeroSizeTouchIgnored) {
  CacheTouchModel m(256);
  m.BeginWalk();
  m.Touch(PhysAddr{0x1000}, 0);
  EXPECT_EQ(m.LinesThisWalk(), 0u);
  m.EndWalk();
}

TEST(CacheTouchModelTest, AbortWalkDiscardsCounting) {
  CacheTouchModel m(256);
  m.BeginWalk();
  m.Touch(PhysAddr{0x1000}, 8);
  m.AbortWalk();
  EXPECT_EQ(m.total_lines(), 0u);
  EXPECT_EQ(m.total_walks(), 0u);
  // A subsequent counted walk works normally.
  m.BeginWalk();
  m.Touch(PhysAddr{0x2000}, 8);
  m.EndWalk();
  EXPECT_EQ(m.total_lines(), 1u);
  EXPECT_EQ(m.total_walks(), 1u);
}

TEST(CacheTouchModelTest, AveragesAcrossWalks) {
  CacheTouchModel m(256);
  m.BeginWalk();
  m.Touch(PhysAddr{0x0}, 8);
  m.EndWalk();
  m.BeginWalk();
  m.Touch(PhysAddr{0x0}, 8);
  m.Touch(PhysAddr{0x1000}, 8);
  m.Touch(PhysAddr{0x2000}, 8);
  m.EndWalk();
  EXPECT_EQ(m.total_walks(), 2u);
  EXPECT_EQ(m.total_lines(), 4u);
  EXPECT_DOUBLE_EQ(m.AvgLinesPerWalk(), 2.0);
  EXPECT_EQ(m.per_walk_histogram().count(1), 1u);
  EXPECT_EQ(m.per_walk_histogram().count(3), 1u);
}

TEST(CacheTouchModelTest, ResetClearsEverything) {
  CacheTouchModel m(256);
  m.BeginWalk();
  m.Touch(PhysAddr{0x0}, 8);
  m.EndWalk();
  m.Reset();
  EXPECT_EQ(m.total_lines(), 0u);
  EXPECT_EQ(m.total_walks(), 0u);
  EXPECT_DOUBLE_EQ(m.AvgLinesPerWalk(), 0.0);
}

TEST(CacheTouchModelTest, WalkScopeBracketsWalk) {
  CacheTouchModel m(256);
  {
    WalkScope scope(m);
    m.Touch(PhysAddr{0x1000}, 8);
  }
  EXPECT_EQ(m.total_walks(), 1u);
  EXPECT_EQ(m.total_lines(), 1u);
}

class CacheLineSizeTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(CacheLineSizeTest, LineIdGranularityMatchesLineSize) {
  const std::uint32_t line = GetParam();
  CacheTouchModel m(line);
  m.BeginWalk();
  m.Touch(PhysAddr{0}, 1);
  m.Touch(PhysAddr{line - 1}, 1);  // Same line.
  m.Touch(PhysAddr{line}, 1);      // Next line.
  EXPECT_EQ(m.LinesThisWalk(), 2u);
  m.EndWalk();
}

INSTANTIATE_TEST_SUITE_P(AllLineSizes, CacheLineSizeTest,
                         ::testing::Values(32, 64, 128, 256, 512));

}  // namespace
}  // namespace cpt::mem
