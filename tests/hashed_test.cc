// Unit tests for the hashed page table and its superpage/PSB strategies:
// chain behaviour, packed PTEs, block-keyed tables, two-table search order,
// and the superpage-index variant's chain packing.
#include "pt/hashed.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "mem/cache_model.h"
#include "pt/multi_hashed.h"

namespace cpt::pt {
namespace {

class HashedTest : public ::testing::Test {
 protected:
  HashedTest() : cache_(256), table_(cache_, {}) {}

  std::optional<TlbFill> Lookup(Vpn vpn) {
    mem::WalkScope scope(cache_);
    return table_.Lookup(VaOf(vpn));
  }

  unsigned LinesFor(Vpn vpn) {
    cache_.Reset();
    Lookup(vpn);
    return static_cast<unsigned>(cache_.total_lines());
  }

  mem::CacheTouchModel cache_;
  HashedPageTable table_;
};

TEST_F(HashedTest, TwentyFourBytesPerPte) {
  for (std::uint64_t i = 0; i < 10; ++i) {
    table_.InsertBase(Vpn{0x5000 + i}, Ppn{i}, Attr::ReadWrite());
  }
  EXPECT_EQ(table_.SizeBytesPaperModel(), 240u);
  EXPECT_EQ(table_.node_count(), 10u);
}

TEST_F(HashedTest, SingleNodeLookupTouchesOneLine) {
  table_.InsertBase(Vpn{0x100}, Ppn{1}, Attr::ReadWrite());
  EXPECT_EQ(LinesFor(Vpn{0x100}), 1u);
}

TEST_F(HashedTest, EmptyBucketProbeTouchesHeadLine) {
  EXPECT_EQ(LinesFor(Vpn{0xABCDE}), 1u) << "the embedded head slot is always read";
}

TEST_F(HashedTest, ChainCollisionsCostExtraLines) {
  // Force collisions with a tiny table: 4 buckets, 64 PTEs -> chains of ~16.
  mem::CacheTouchModel cache(256);
  HashedPageTable t(cache, {.num_buckets = 4});
  for (Vpn vpn{}; vpn < Vpn{64}; ++vpn) {
    t.InsertBase(vpn, Ppn{vpn.raw()}, Attr::ReadWrite());
  }
  const Histogram chains = t.ChainLengthHistogram();
  EXPECT_EQ(chains.total(), 4u);
  EXPECT_DOUBLE_EQ(chains.mean(), 16.0);
  // Looking up the chain tail touches many distinct lines.
  std::uint64_t max_lines = 0;
  for (Vpn vpn{}; vpn < Vpn{64}; ++vpn) {
    cache.Reset();
    {
      mem::WalkScope scope(cache);
      ASSERT_TRUE(t.Lookup(VaOf(vpn)).has_value());
    }
    max_lines = std::max(max_lines, cache.total_lines());
  }
  EXPECT_GE(max_lines, 8u);
}

TEST_F(HashedTest, PackedVariantShrinksSizeOnly) {
  mem::CacheTouchModel cache(256);
  HashedPageTable packed(cache, {.packed_pte = true});
  for (std::uint64_t i = 0; i < 10; ++i) {
    packed.InsertBase(Vpn{i * 997}, Ppn{i}, Attr::ReadWrite());
    table_.InsertBase(Vpn{i * 997}, Ppn{i}, Attr::ReadWrite());
  }
  EXPECT_EQ(packed.SizeBytesPaperModel(), 160u);  // 16 bytes per PTE.
  EXPECT_EQ(table_.SizeBytesPaperModel(), 240u);
  EXPECT_EQ(packed.SizeBytesPaperModel() * 3, table_.SizeBytesPaperModel() * 2)
      << "Section 7: packing saves 33%";
  for (std::uint64_t i = 0; i < 10; ++i) {
    mem::WalkScope scope(cache);
    EXPECT_TRUE(packed.Lookup(VaOf(Vpn{i * 997})).has_value());
  }
}

TEST_F(HashedTest, BlockKeyedTableStoresSuperpageAndPsb) {
  mem::CacheTouchModel cache(256);
  HashedPageTable block(cache, {.tag_shift = 4});
  block.UpsertWord(Vpn{0x4000}, MappingWord::Superpage(Ppn{0x100}, Attr::ReadWrite(), kPage64K));
  {
    mem::WalkScope scope(cache);
    const auto fill = block.Lookup(VaOf(Vpn{0x4009}));
    ASSERT_TRUE(fill.has_value());
    EXPECT_EQ(fill->Translate(Vpn{0x4009}), Ppn{0x109});
  }
  block.UpsertWord(Vpn{0x8000},
                   MappingWord::PartialSubblock(Ppn{0x200}, Attr::ReadWrite(), 0x0010));
  {
    mem::WalkScope scope(cache);
    EXPECT_TRUE(block.Lookup(VaOf(Vpn{0x8004})).has_value());
    EXPECT_FALSE(block.Lookup(VaOf(Vpn{0x8005})).has_value());
  }
  EXPECT_EQ(block.live_translations(), 17u);
}

TEST_F(HashedTest, UpsertReplacesPsbVectorInPlace) {
  mem::CacheTouchModel cache(256);
  HashedPageTable block(cache, {.tag_shift = 4});
  block.UpsertWord(Vpn{0x8000},
                   MappingWord::PartialSubblock(Ppn{0x200}, Attr::ReadWrite(), 0x0001));
  block.UpsertWord(Vpn{0x8000},
                   MappingWord::PartialSubblock(Ppn{0x200}, Attr::ReadWrite(), 0x0003));
  EXPECT_EQ(block.node_count(), 1u);
  EXPECT_EQ(block.live_translations(), 2u);
}

TEST_F(HashedTest, PeekDoesNotTouchCache) {
  table_.InsertBase(Vpn{0x42}, Ppn{0x7}, Attr::ReadWrite());
  cache_.Reset();
  const auto word = table_.Peek(0x42);  // Peek takes a raw chain key (tag_shift == 0).
  ASSERT_TRUE(word.has_value());
  EXPECT_EQ(word->ppn(), Ppn{0x7});
  EXPECT_EQ(cache_.total_lines(), 0u);
}

TEST_F(HashedTest, RandomChurnKeepsStructureConsistent) {
  Rng rng(17);
  std::uint64_t inserted = 0;
  for (int step = 0; step < 3000; ++step) {
    const Vpn vpn{rng.Below(2000)};
    if (rng.Chance(0.6)) {
      const bool fresh = !table_.Peek(vpn.raw()).has_value();
      table_.InsertBase(vpn, Ppn{vpn.raw()}, Attr::ReadWrite());
      inserted += fresh ? 1 : 0;
    } else {
      inserted -= table_.RemoveBase(vpn) ? 1 : 0;
    }
    ASSERT_EQ(table_.node_count(), inserted);
    ASSERT_EQ(table_.SizeBytesPaperModel(), inserted * 24);
  }
}

// ---------------------------------------------------------------------------
// MultiTableHashed
// ---------------------------------------------------------------------------

TEST(MultiTableHashedTest, BaseFirstPaysTwoSearchesForSuperpages) {
  mem::CacheTouchModel cache(256);
  MultiTableHashed t(cache, {});
  t.InsertSuperpage(Vpn{0x4000}, kPage64K, Ppn{0x100}, Attr::ReadWrite());
  t.InsertBase(Vpn{0x9000}, Ppn{0x1}, Attr::ReadWrite());
  cache.Reset();
  {
    mem::WalkScope scope(cache);
    ASSERT_TRUE(t.Lookup(VaOf(Vpn{0x4005})).has_value());
  }
  const auto superpage_lines = cache.total_lines();
  cache.Reset();
  {
    mem::WalkScope scope(cache);
    ASSERT_TRUE(t.Lookup(VaOf(Vpn{0x9000})).has_value());
  }
  const auto base_lines = cache.total_lines();
  EXPECT_EQ(base_lines, 1u) << "base PTE found in the first table";
  EXPECT_EQ(superpage_lines, 2u) << "superpage PTE pays the empty 4KB search first";
}

TEST(MultiTableHashedTest, BlockFirstReversesTheCost) {
  mem::CacheTouchModel cache(256);
  MultiTableHashed t(cache, {.order = MultiTableHashed::SearchOrder::kBlockFirst});
  t.InsertSuperpage(Vpn{0x4000}, kPage64K, Ppn{0x100}, Attr::ReadWrite());
  t.InsertBase(Vpn{0x9000}, Ppn{0x1}, Attr::ReadWrite());
  cache.Reset();
  {
    mem::WalkScope scope(cache);
    ASSERT_TRUE(t.Lookup(VaOf(Vpn{0x4005})).has_value());
  }
  EXPECT_EQ(cache.total_lines(), 1u);
  cache.Reset();
  {
    mem::WalkScope scope(cache);
    ASSERT_TRUE(t.Lookup(VaOf(Vpn{0x9000})).has_value());
  }
  EXPECT_EQ(cache.total_lines(), 2u);
}

TEST(MultiTableHashedTest, SizeSumsBothTables) {
  mem::CacheTouchModel cache(256);
  MultiTableHashed t(cache, {});
  t.InsertBase(Vpn{0x9000}, Ppn{0x1}, Attr::ReadWrite());
  t.InsertSuperpage(Vpn{0x4000}, kPage64K, Ppn{0x100}, Attr::ReadWrite());
  EXPECT_EQ(t.SizeBytesPaperModel(), 48u);
  EXPECT_EQ(t.live_translations(), 17u);
}

TEST(MultiTableHashedTest, ProtectRangeCoversBothTables) {
  mem::CacheTouchModel cache(256);
  MultiTableHashed t(cache, {});
  t.InsertBase(Vpn{0x4010}, Ppn{0x1}, Attr::ReadWrite());
  t.InsertSuperpage(Vpn{0x4000}, kPage64K, Ppn{0x100}, Attr::ReadWrite());
  t.ProtectRange(Vpn{0x4000}, 32, Attr::ReadOnly());
  mem::WalkScope scope(cache);
  EXPECT_EQ(t.Lookup(VaOf(Vpn{0x4005}))->word.attr(), Attr::ReadOnly());
  EXPECT_EQ(t.Lookup(VaOf(Vpn{0x4010}))->word.attr(), Attr::ReadOnly());
}

// ---------------------------------------------------------------------------
// SuperpageIndexHashed
// ---------------------------------------------------------------------------

TEST(SuperpageIndexTest, OneProbeButLongerChains) {
  mem::CacheTouchModel cache(256);
  SuperpageIndexHashed t(cache, {});
  // Sixteen base pages of one block all chain into one bucket.
  for (unsigned i = 0; i < 16; ++i) {
    t.InsertBase(Vpn{0x100} + i, Ppn{i}, Attr::ReadWrite());
  }
  const Histogram chains = t.ChainLengthHistogram();
  EXPECT_EQ(chains.max_value(), 16u) << "the whole block shares a bucket";
  // A lookup still needs only one bucket search, but may visit many nodes.
  cache.Reset();
  {
    mem::WalkScope scope(cache);
    ASSERT_TRUE(t.Lookup(VaOf(Vpn{0x100})).has_value());
  }
  EXPECT_GE(cache.total_lines(), 1u);
}

TEST(SuperpageIndexTest, PsbPteShortensChains) {
  mem::CacheTouchModel cache(256);
  SuperpageIndexHashed t(cache, {});
  t.UpsertPartialSubblock(Vpn{0x100}, 16, Ppn{0x40}, Attr::ReadWrite(), 0xFFFF);
  EXPECT_EQ(t.ChainLengthHistogram().max_value(), 1u)
      << "one PSB PTE replaces sixteen chained base PTEs (Section 4.3)";
  for (unsigned i = 0; i < 16; ++i) {
    mem::WalkScope scope(cache);
    EXPECT_TRUE(t.Lookup(VaOf(Vpn{0x100} + i)).has_value());
  }
}

TEST(SuperpageIndexTest, SmallerSuperpagesCoResideInBucket) {
  mem::CacheTouchModel cache(256);
  SuperpageIndexHashed t(cache, {});
  t.InsertSuperpage(Vpn{0x100}, kPage16K, Ppn{0x20}, Attr::ReadWrite());   // Pages 0-3.
  t.InsertSuperpage(Vpn{0x104}, kPage16K, Ppn{0x60}, Attr::ReadWrite());   // Pages 4-7.
  t.InsertBase(Vpn{0x108}, Ppn{0x99}, Attr::ReadWrite());
  mem::WalkScope scope(cache);
  EXPECT_EQ(t.Lookup(VaOf(Vpn{0x102}))->Translate(Vpn{0x102}), Ppn{0x22});
  EXPECT_EQ(t.Lookup(VaOf(Vpn{0x105}))->Translate(Vpn{0x105}), Ppn{0x61});
  EXPECT_EQ(t.Lookup(VaOf(Vpn{0x108}))->Translate(Vpn{0x108}), Ppn{0x99});
  EXPECT_FALSE(t.Lookup(VaOf(Vpn{0x109})).has_value());
}

TEST(SuperpageIndexTest, RejectsSuperpagesLargerThanIndex) {
  mem::CacheTouchModel cache(256);
  SuperpageIndexHashed t(cache, {});
  // A 64KB superpage equals the index size and is fine; larger must be
  // "handled another way" (Section 4.2) and is rejected by contract.
  t.InsertSuperpage(Vpn{0x4000}, kPage64K, Ppn{0x100}, Attr::ReadWrite());
  EXPECT_EQ(t.live_translations(), 16u);
  EXPECT_DEBUG_DEATH(t.InsertSuperpage(Vpn{0x8000}, PageSize{5}, Ppn{0x200}, Attr::ReadWrite()), "");
}

}  // namespace
}  // namespace cpt::pt
