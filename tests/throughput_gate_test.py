#!/usr/bin/env python3
"""End-to-end test of the refs/sec throughput gate.

Runs bench_micro three times — twice at normal speed, once with
CPT_MICRO_SLOWDOWN spinning inside the timed region — and drives
tools/bench_diff.py --throughput-tol over the reports:

  green: two honest runs of the same binary must pass the gate (the
         tolerance absorbs scheduler noise on shared runners);
  red:   a binary made ~10x slower must fail, and must fail *through the
         gate* (the "THROUGHPUT REGRESSION" verdict), not merely through
         some incidental structural diff.

Usage: throughput_gate_test.py <bench_micro> <bench_diff.py> <scratch-dir>
"""

import json
import os
import pathlib
import subprocess
import sys


def run_micro(bench, out_path, slowdown=0):
    env = dict(os.environ)
    # Small but non-trivial: big enough that refs/sec is rate-limited by
    # the lookup loop, small enough that three runs stay fast in CI.
    env["CPT_MICRO_ITERS"] = "200000"
    env["CPT_MICRO_REPS"] = "3"
    env["CPT_MICRO_WARMUP"] = "1"
    if slowdown:
        env["CPT_MICRO_SLOWDOWN"] = str(slowdown)
    else:
        env.pop("CPT_MICRO_SLOWDOWN", None)
    proc = subprocess.run(
        [bench, f"--json={out_path}", "--filter=lookup/clustered"],
        env=env, capture_output=True, text=True)
    if proc.returncode != 0:
        raise SystemExit(
            f"bench_micro failed (exit {proc.returncode}): {proc.stderr}")
    with open(out_path, encoding="utf-8") as f:
        report = json.load(f)
    micros = [e for e in report.get("entries", []) if e.get("type") == "micro"]
    if len(micros) != 1:
        raise SystemExit(f"expected exactly one micro entry, got {len(micros)}")
    return report


def run_diff(diff_tool, baseline, current, tol):
    return subprocess.run(
        [sys.executable, diff_tool, str(baseline), str(current),
         "--throughput-tol", str(tol)],
        capture_output=True, text=True)


def main():
    if len(sys.argv) != 4:
        print(__doc__, file=sys.stderr)
        return 2
    bench, diff_tool, scratch = sys.argv[1], sys.argv[2], pathlib.Path(sys.argv[3])
    scratch.mkdir(parents=True, exist_ok=True)

    # The noise band on a shared 1-core runner is wide (medians have been
    # observed ~30% apart across back-to-back runs); 0.6 keeps the green
    # path honest while the deliberate ~90% slowdown still lands far red.
    tol = 0.6

    base_path = scratch / "base.json"
    same_path = scratch / "same.json"
    slow_path = scratch / "slow.json"
    base = run_micro(bench, base_path)
    run_micro(bench, same_path)
    run_micro(bench, slow_path, slowdown=3000)

    failures = []

    # Sanity: the baseline carries both gate points (aggregate + micro).
    if not isinstance(base.get("throughput", {}).get("refs_per_sec"), (int, float)):
        failures.append("baseline lacks aggregate throughput.refs_per_sec")
    micro = next(e for e in base["entries"] if e.get("type") == "micro")
    if "median_refs_per_sec" not in micro.get("throughput", {}):
        failures.append("baseline micro entry lacks median_refs_per_sec")

    green = run_diff(diff_tool, base_path, same_path, tol)
    if green.returncode != 0:
        failures.append(
            f"green path: identical binary failed the gate (exit "
            f"{green.returncode}):\n{green.stdout}{green.stderr}")
    elif "within band" not in green.stdout and "FASTER" not in green.stdout:
        failures.append(
            f"green path: gate rows missing from output:\n{green.stdout}")

    red = run_diff(diff_tool, base_path, slow_path, tol)
    if red.returncode != 1:
        failures.append(
            f"red path: slowed binary got exit {red.returncode}, wanted 1:\n"
            f"{red.stdout}{red.stderr}")
    # The failure must be the throughput verdict itself: a config-key
    # mismatch (slowdown is stamped in the entry) also fails the diff, but
    # structurally — that alone would not prove the gate fired.
    if "THROUGHPUT REGRESSION" not in red.stdout:
        failures.append(
            f"red path: no THROUGHPUT REGRESSION verdict in:\n{red.stdout}")

    if failures:
        print("throughput_gate_test: FAIL", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print("throughput_gate_test: OK (green passed, slowdown=3000 gated red)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
