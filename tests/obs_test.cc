// Tests for the telemetry layer (src/obs): JSON emission, the metric
// registry, the tracer implementations, and the end-to-end guarantee the
// benches rely on — that the events a Machine publishes agree with the
// simulated counters they mirror.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>

#include "common/stats.h"
#include "obs/json_writer.h"
#include "obs/metrics.h"
#include "obs/timer.h"
#include "obs/trace.h"
#include "sim/machine.h"

namespace cpt::obs {
namespace {

// --- JsonWriter ----------------------------------------------------------

TEST(JsonWriterTest, EscapesSpecialCharacters) {
  EXPECT_EQ(JsonWriter::Escape("plain"), "plain");
  EXPECT_EQ(JsonWriter::Escape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonWriter::Escape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonWriter::Escape("a\nb\tc\rd"), "a\\nb\\tc\\rd");
  EXPECT_EQ(JsonWriter::Escape(std::string_view("\x01\x1f", 2)), "\\u0001\\u001f");
  // Multi-byte UTF-8 passes through untouched.
  EXPECT_EQ(JsonWriter::Escape("caf\xc3\xa9"), "caf\xc3\xa9");
}

TEST(JsonWriterTest, CompactDocumentRoundTripsStructure) {
  std::ostringstream os;
  {
    JsonWriter w(os, /*pretty=*/false);
    w.BeginObject();
    w.KV("name", "chain \"walk\"");
    w.KV("count", std::uint64_t{42});
    w.KV("neg", std::int64_t{-7});
    w.KV("ratio", 0.5);
    w.KV("flag", true);
    w.Key("none");
    w.Null();
    w.Key("list");
    w.BeginArray();
    w.Uint(1);
    w.Uint(2);
    w.EndArray();
    w.EndObject();
    EXPECT_TRUE(w.Complete());
  }
  EXPECT_EQ(os.str(),
            "{\"name\":\"chain \\\"walk\\\"\",\"count\":42,\"neg\":-7,"
            "\"ratio\":0.5,\"flag\":true,\"none\":null,\"list\":[1,2]}");
}

TEST(JsonWriterTest, NonFiniteDoublesBecomeNull) {
  std::ostringstream os;
  JsonWriter w(os, /*pretty=*/false);
  w.BeginArray();
  w.Double(std::nan(""));
  w.Double(std::numeric_limits<double>::infinity());
  w.EndArray();
  EXPECT_EQ(os.str(), "[null,null]");
}

TEST(JsonWriterTest, DoublesRoundTripThroughText) {
  std::ostringstream os;
  JsonWriter w(os, /*pretty=*/false);
  const double value = 1.0 / 3.0;
  w.BeginArray();
  w.Double(value);
  w.EndArray();
  // %.17g carries enough digits that parsing the text recovers the bits.
  std::string text = os.str();
  text = text.substr(1, text.size() - 2);
  EXPECT_EQ(std::stod(text), value);
}

TEST(JsonWriterTest, CompleteOnlyAfterAllContainersClose) {
  std::ostringstream os;
  JsonWriter w(os, /*pretty=*/false);
  EXPECT_FALSE(w.Complete());
  w.BeginObject();
  EXPECT_FALSE(w.Complete());
  w.EndObject();
  EXPECT_TRUE(w.Complete());
}

// --- MetricRegistry ------------------------------------------------------

TEST(MetricRegistryTest, InterningReturnsStableReferences) {
  MetricRegistry reg;
  std::uint64_t& misses = reg.Counter("tlb_misses", {{"workload", "coral"}});
  misses = 3;
  // Same name + labels resolves to the same instrument.
  reg.Counter("tlb_misses", {{"workload", "coral"}}) += 2;
  EXPECT_EQ(misses, 5u);
  EXPECT_EQ(reg.size(), 1u);
  // Different labels are a different series.
  reg.Counter("tlb_misses", {{"workload", "mp3d"}}) = 9;
  EXPECT_EQ(reg.size(), 2u);
  EXPECT_EQ(misses, 5u);
}

TEST(MetricRegistryTest, HoldsAllFourInstrumentTypes) {
  MetricRegistry reg;
  reg.Counter("walks") = 7;
  reg.Gauge("load_factor") = 0.75;
  reg.Histo("chain_length").Add(2);
  reg.Stats("wall_seconds").Add(1.5);
  EXPECT_EQ(reg.size(), 4u);
  EXPECT_EQ(reg.Counter("walks"), 7u);
  EXPECT_DOUBLE_EQ(reg.Gauge("load_factor"), 0.75);
  EXPECT_EQ(reg.Histo("chain_length").total(), 1u);
  EXPECT_EQ(reg.Stats("wall_seconds").count(), 1u);
}

TEST(MetricRegistryTest, ToJsonEmitsEverySeries) {
  MetricRegistry reg;
  reg.Counter("b_counter") = 1;
  reg.Gauge("a_gauge") = 2.0;
  std::ostringstream os;
  {
    JsonWriter w(os, /*pretty=*/false);
    reg.ToJson(w);
  }
  const std::string out = os.str();
  EXPECT_NE(out.find("\"a_gauge\""), std::string::npos);
  EXPECT_NE(out.find("\"b_counter\""), std::string::npos);
  // std::map ordering: a_gauge serialized before b_counter.
  EXPECT_LT(out.find("a_gauge"), out.find("b_counter"));
}

// --- Histogram / RunningStats (satellite hardening) ----------------------

TEST(HistogramTest, OverflowSamplesAreClampedNotAllocated) {
  Histogram h(/*max_buckets=*/8);
  h.Add(3);
  h.Add(1'000'000);  // Must not allocate a million buckets.
  EXPECT_EQ(h.total(), 2u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.count(3), 1u);
  EXPECT_EQ(h.count(1'000'000), 0u);
  EXPECT_LE(h.max_value(), 7u);
  EXPECT_EQ(h.max_seen(), 1'000'000u);
  // Overflow samples still contribute to the mean.
  EXPECT_DOUBLE_EQ(h.mean(), (3.0 + 1'000'000.0) / 2.0);
}

TEST(RunningStatsTest, WelfordVarianceMatchesClosedForm) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.Add(x);
  }
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStatsTest, DegenerateCountsAreZero) {
  RunningStats s;
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  s.Add(3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

// --- RingBufferTracer ----------------------------------------------------

WalkEvent StepEvent(std::uint64_t vpn) {
  return {.kind = EventKind::kWalkStep, .vpn = Vpn{vpn}, .step = 1, .lines = 1};
}

TEST(RingBufferTracerTest, OverflowKeepsNewestOldestFirst) {
  RingBufferTracer ring(4);
  for (std::uint64_t i = 0; i < 6; ++i) {
    ring.Record(StepEvent(i));
  }
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.dropped(), 2u);
  EXPECT_EQ(ring.total_recorded(), 6u);
  EXPECT_EQ(ring.counts()[EventKind::kWalkStep], 6u)
      << "counts cover dropped events too";
  const auto events = ring.Events();
  ASSERT_EQ(events.size(), 4u);
  for (std::uint64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(events[i].vpn, Vpn{i + 2}) << "oldest surviving event first";
  }
}

TEST(RingBufferTracerTest, ClearResetsEverything) {
  RingBufferTracer ring(2);
  for (std::uint64_t i = 0; i < 5; ++i) {
    ring.Record(StepEvent(i));
  }
  ring.Clear();
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.dropped(), 0u);
  EXPECT_EQ(ring.total_recorded(), 0u);
  EXPECT_EQ(ring.counts().total(), 0u);
  // The ring is usable again after Clear and fills from the start.
  ring.Record(StepEvent(7));
  const auto events = ring.Events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].vpn, Vpn{7});
}

TEST(RingBufferTracerTest, WriteJsonlEmitsOneParsableObjectPerEvent) {
  RingBufferTracer ring(8);
  ring.Record({.kind = EventKind::kTlbMiss, .asid = 3, .vpn = Vpn{0x2a}});
  ring.Record({.kind = EventKind::kWalkStep, .vpn = Vpn{0x2a}, .step = 2, .lines = 2});
  ring.Record({.kind = EventKind::kReservationGrant, .vpn = Vpn{1}, .value = 1});
  std::ostringstream os;
  ring.WriteJsonl(os);
  EXPECT_EQ(os.str(),
            "{\"kind\":\"tlb_miss\",\"asid\":3,\"vpn\":42}\n"
            "{\"kind\":\"walk_step\",\"asid\":0,\"vpn\":42,\"step\":2,\"lines\":2}\n"
            "{\"kind\":\"reservation_grant\",\"asid\":0,\"vpn\":1,"
            "\"properly_placed\":true}\n");
}

TEST(RingBufferTracerTest, WriteJsonlAfterWraparoundIsChronological) {
  // The dump a --trace file gets after the ring wrapped: exactly the newest
  // `capacity` events, oldest first, with the overflow visible in dropped().
  RingBufferTracer ring(3);
  for (std::uint64_t i = 0; i < 10; ++i) {
    ring.Record(StepEvent(i));
  }
  EXPECT_EQ(ring.dropped(), 7u);
  EXPECT_EQ(ring.total_recorded(), 10u);
  std::ostringstream os;
  ring.WriteJsonl(os);
  EXPECT_EQ(os.str(),
            "{\"kind\":\"walk_step\",\"asid\":0,\"vpn\":7,\"step\":1,\"lines\":1}\n"
            "{\"kind\":\"walk_step\",\"asid\":0,\"vpn\":8,\"step\":1,\"lines\":1}\n"
            "{\"kind\":\"walk_step\",\"asid\":0,\"vpn\":9,\"step\":1,\"lines\":1}\n");
  // A wrap that lands mid-buffer (insertion cursor not at slot 0) must still
  // dump in chronological order.
  ring.Clear();
  for (std::uint64_t i = 0; i < 4; ++i) {  // 4 = one past capacity.
    ring.Record(StepEvent(i));
  }
  EXPECT_EQ(ring.dropped(), 1u);
  std::ostringstream os2;
  ring.WriteJsonl(os2);
  EXPECT_EQ(os2.str(),
            "{\"kind\":\"walk_step\",\"asid\":0,\"vpn\":1,\"step\":1,\"lines\":1}\n"
            "{\"kind\":\"walk_step\",\"asid\":0,\"vpn\":2,\"step\":1,\"lines\":1}\n"
            "{\"kind\":\"walk_step\",\"asid\":0,\"vpn\":3,\"step\":1,\"lines\":1}\n");
}

// --- StatsTracer ---------------------------------------------------------

TEST(StatsTracerTest, ChainLengthCountsStepsPerCountedWalk) {
  StatsTracer stats;
  // Walk 1: two steps, then end.
  stats.Record(StepEvent(1));
  stats.Record(StepEvent(1));
  stats.Record({.kind = EventKind::kWalkEnd, .vpn = Vpn{1}, .lines = 2});
  // Walk 2: one step, then end.
  stats.Record(StepEvent(2));
  stats.Record({.kind = EventKind::kWalkEnd, .vpn = Vpn{2}, .lines = 1});
  EXPECT_EQ(stats.chain_length().total(), 2u);
  EXPECT_EQ(stats.chain_length().count(2), 1u);
  EXPECT_EQ(stats.chain_length().count(1), 1u);
  EXPECT_EQ(stats.lines_per_walk().total(), 2u);
  EXPECT_DOUBLE_EQ(stats.lines_per_walk().mean(), 1.5);
}

TEST(StatsTracerTest, AbortedWalkStepsAreDiscarded) {
  StatsTracer stats;
  // A faulting walk takes three steps and is aborted; the re-run walk takes
  // one step.  Only the re-run belongs in the histogram.
  stats.Record(StepEvent(1));
  stats.Record(StepEvent(1));
  stats.Record(StepEvent(1));
  stats.Record({.kind = EventKind::kWalkAbort, .vpn = Vpn{1}});
  stats.Record(StepEvent(1));
  stats.Record({.kind = EventKind::kWalkEnd, .vpn = Vpn{1}, .lines = 1});
  EXPECT_EQ(stats.chain_length().total(), 1u);
  EXPECT_EQ(stats.chain_length().count(1), 1u);
  EXPECT_EQ(stats.chain_length().count(3), 0u)
      << "aborted steps must not fold into the next counted walk";
}

TEST(StatsTracerTest, ForwardsEveryEventDownstream) {
  RingBufferTracer ring(16);
  StatsTracer stats(&ring);
  stats.Record(StepEvent(1));
  stats.Record({.kind = EventKind::kWalkEnd, .vpn = Vpn{1}, .lines = 1});
  stats.Record({.kind = EventKind::kPageFault, .vpn = Vpn{2}});
  EXPECT_EQ(ring.total_recorded(), 3u);
  EXPECT_EQ(ring.counts()[EventKind::kPageFault], 1u);
}

// --- Timers --------------------------------------------------------------

TEST(TimerTest, ScopedTimerAccumulatesIntoBothSinks) {
  double seconds = 0.0;
  RunningStats samples;
  { ScopedTimer t(&seconds, &samples); }
  { ScopedTimer t(&seconds, &samples); }
  EXPECT_GE(seconds, 0.0);
  EXPECT_EQ(samples.count(), 2u);
}

TEST(TimerTest, PhaseProfilerAccumulatesRepeatedPhases) {
  PhaseProfiler prof;
  { PhaseProfiler::Scope s(prof, "preload"); }
  { PhaseProfiler::Scope s(prof, "replay"); }
  { PhaseProfiler::Scope s(prof, "replay"); }
  ASSERT_EQ(prof.phases().size(), 2u);
  EXPECT_EQ(prof.phases()[0].name, "preload");
  EXPECT_EQ(prof.phases()[0].count, 1u);
  EXPECT_EQ(prof.phases()[1].name, "replay");
  EXPECT_EQ(prof.phases()[1].count, 2u);
  EXPECT_GE(prof.TotalSeconds(), 0.0);
}

// --- Machine integration -------------------------------------------------

// The contract the --json benches depend on: a tracer attached to a Machine
// sees exactly the misses the simulator counts, and one counted walk per
// kWalkEnd.
TEST(MachineTracingTest, TracedMissesMatchDenominatorMisses) {
  sim::MachineOptions opts;
  opts.pt_kind = sim::PtKind::kClustered;
  sim::Machine machine(opts, 1);
  StatsTracer stats;
  machine.AttachTracer(&stats);
  // Sweep more pages than the TLB holds, twice, to mix cold faults,
  // capacity misses, and hits.
  for (int round = 0; round < 2; ++round) {
    for (std::uint64_t i = 0; i < 100; ++i) {
      machine.Access(0, VaOf(Vpn{0x1000 + i * 3}));
    }
  }
  EXPECT_GT(stats.counts().TlbMisses(), 0u);
  EXPECT_EQ(stats.counts().TlbMisses(), machine.DenominatorMisses());
  EXPECT_EQ(stats.counts()[EventKind::kTlbHit], machine.tlb().stats().hits);
  EXPECT_EQ(stats.counts()[EventKind::kWalkEnd], machine.cache().total_walks());
  EXPECT_EQ(stats.counts()[EventKind::kPageFault], machine.TotalPageFaults());
  // Every counted walk contributed one chain-length sample.
  EXPECT_EQ(stats.chain_length().total(), machine.cache().total_walks());
  EXPECT_GE(stats.chain_length().mean(), 1.0);
}

TEST(MachineTracingTest, DetachedMachineCountsAreUnchangedByTracing) {
  const auto run = [](bool traced) {
    sim::MachineOptions opts;
    opts.pt_kind = sim::PtKind::kHashed;
    sim::Machine machine(opts, 1);
    StatsTracer stats;
    if (traced) {
      machine.AttachTracer(&stats);
    }
    for (std::uint64_t i = 0; i < 200; ++i) {
      machine.Access(0, VaOf(Vpn{0x400 + i * 5}));
    }
    return std::pair<std::uint64_t, double>(machine.DenominatorMisses(),
                                            machine.AvgLinesPerMiss());
  };
  // Bit-identical simulated figures with and without a tracer attached.
  EXPECT_EQ(run(false), run(true));
}

}  // namespace
}  // namespace cpt::obs
