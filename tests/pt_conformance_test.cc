// Conformance and property tests run against EVERY page-table organization
// through the common pt::PageTable interface: all must implement identical
// translation semantics, whatever their internal structure.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>

#include "common/rng.h"
#include "mem/cache_model.h"
#include "sim/machine.h"

namespace cpt {
namespace {

using sim::PtKind;

class PtConformanceTest : public ::testing::TestWithParam<PtKind> {
 protected:
  PtConformanceTest() : cache_(256) {
    sim::MachineOptions opts;
    table_ = sim::MakePageTable(GetParam(), cache_, opts);
  }

  std::optional<pt::TlbFill> Lookup(Vpn vpn) {
    mem::WalkScope scope(cache_);
    return table_->Lookup(VaOf(vpn));
  }

  mem::CacheTouchModel cache_;
  std::unique_ptr<pt::PageTable> table_;
};

TEST_P(PtConformanceTest, EmptyTableFaultsEverywhere) {
  EXPECT_FALSE(Lookup(Vpn{0}).has_value());
  EXPECT_FALSE(Lookup(Vpn{0x12345}).has_value());
  EXPECT_FALSE(Lookup(Vpn{(1ull << 51) + 17}).has_value());
  EXPECT_EQ(table_->live_translations(), 0u);
}

TEST_P(PtConformanceTest, InsertThenLookupTranslates) {
  table_->InsertBase(Vpn{0x1234}, Ppn{0x777}, Attr::ReadWrite());
  const auto fill = Lookup(Vpn{0x1234});
  ASSERT_TRUE(fill.has_value());
  EXPECT_TRUE(fill->Covers(Vpn{0x1234}));
  EXPECT_EQ(fill->Translate(Vpn{0x1234}), Ppn{0x777});
  EXPECT_EQ(fill->kind, MappingKind::kBase);
  EXPECT_EQ(table_->live_translations(), 1u);
}

TEST_P(PtConformanceTest, LookupUsesFullVaNotJustVpn) {
  table_->InsertBase(Vpn{0x1234}, Ppn{0x777}, Attr::ReadWrite());
  mem::WalkScope scope(cache_);
  const auto fill = table_->Lookup(VaOf(Vpn{0x1234}) + 0xABC);  // Offset within page.
  ASSERT_TRUE(fill.has_value());
  EXPECT_EQ(fill->Translate(Vpn{0x1234}), Ppn{0x777});
}

TEST_P(PtConformanceTest, NeighborPagesAreIndependent) {
  table_->InsertBase(Vpn{0x1000}, Ppn{0x10}, Attr::ReadWrite());
  EXPECT_TRUE(Lookup(Vpn{0x1000}).has_value());
  EXPECT_FALSE(Lookup(Vpn{0x1001}).has_value());
  EXPECT_FALSE(Lookup(Vpn{0xFFF}).has_value());
}

TEST_P(PtConformanceTest, ReinsertOverwritesMapping) {
  table_->InsertBase(Vpn{0x99}, Ppn{0x1}, Attr::ReadWrite());
  table_->InsertBase(Vpn{0x99}, Ppn{0x2}, Attr::ReadOnly());
  const auto fill = Lookup(Vpn{0x99});
  ASSERT_TRUE(fill.has_value());
  EXPECT_EQ(fill->Translate(Vpn{0x99}), Ppn{0x2});
  EXPECT_EQ(table_->live_translations(), 1u);
}

TEST_P(PtConformanceTest, RemoveBaseMakesPageFault) {
  table_->InsertBase(Vpn{0x55}, Ppn{0x5}, Attr::ReadWrite());
  EXPECT_TRUE(table_->RemoveBase(Vpn{0x55}));
  EXPECT_FALSE(Lookup(Vpn{0x55}).has_value());
  EXPECT_EQ(table_->live_translations(), 0u);
  EXPECT_FALSE(table_->RemoveBase(Vpn{0x55})) << "double remove must report false";
}

TEST_P(PtConformanceTest, SizeReturnsToZeroAfterRemovingAll) {
  for (Vpn vpn{0x4000}; vpn < Vpn{0x4040}; ++vpn) {
    table_->InsertBase(vpn, Ppn{vpn.raw() & kPpnMask}, Attr::ReadWrite());
  }
  EXPECT_GT(table_->SizeBytesPaperModel(), 0u);
  for (Vpn vpn{0x4000}; vpn < Vpn{0x4040}; ++vpn) {
    EXPECT_TRUE(table_->RemoveBase(vpn));
  }
  EXPECT_EQ(table_->SizeBytesPaperModel(), 0u)
      << table_->name() << " must free all structure memory";
  EXPECT_EQ(table_->live_translations(), 0u);
}

TEST_P(PtConformanceTest, SparseHighAddressesWork) {
  // Exercise 64-bit sparsity: pages scattered across the full VPN space.
  const Vpn vpns[] = {Vpn{0x1},
                      Vpn{0xFFFF},
                      Vpn{(1ull << 30) + 3},
                      Vpn{(1ull << 40) + 12345},
                      Vpn{(1ull << 51) + 7},
                      Vpn{(1ull << 52) - 1}};
  Ppn next{100};
  for (const Vpn vpn : vpns) {
    table_->InsertBase(vpn, next++, Attr::ReadWrite());
  }
  next = Ppn{100};
  for (const Vpn vpn : vpns) {
    const auto fill = Lookup(vpn);
    ASSERT_TRUE(fill.has_value()) << "vpn 0x" << std::hex << vpn;
    EXPECT_EQ(fill->Translate(vpn), next++);
  }
  EXPECT_EQ(table_->live_translations(), 6u);
}

TEST_P(PtConformanceTest, ProtectRangeRewritesAttributes) {
  for (Vpn vpn{0x800}; vpn < Vpn{0x810}; ++vpn) {
    table_->InsertBase(vpn, Ppn{vpn.raw()}, Attr::ReadWrite());
  }
  const std::uint64_t searches = table_->ProtectRange(Vpn{0x800}, 16, Attr::ReadOnly());
  EXPECT_GT(searches, 0u);
  for (Vpn vpn{0x800}; vpn < Vpn{0x810}; ++vpn) {
    const auto fill = Lookup(vpn);
    ASSERT_TRUE(fill.has_value());
    EXPECT_EQ(fill->word.attr(), Attr::ReadOnly()) << "vpn 0x" << std::hex << vpn;
  }
}

TEST_P(PtConformanceTest, WalksAlwaysTouchAtLeastOneLineWhenMapped) {
  table_->InsertBase(Vpn{0x3210}, Ppn{0x99}, Attr::ReadWrite());
  cache_.Reset();
  Lookup(Vpn{0x3210});
  EXPECT_GE(cache_.total_lines(), 1u);
  EXPECT_EQ(cache_.total_walks(), 1u);
}

// Randomized differential test against a std::map reference model.
TEST_P(PtConformanceTest, RandomOpsMatchReferenceModel) {
  Rng rng(2024);
  std::map<Vpn, Ppn> ref;
  // Two clusters of VPNs: one dense window, one sparse high region.
  auto random_vpn = [&]() -> Vpn {
    if (rng.Chance(0.7)) {
      return Vpn{0x10000 + rng.Below(512)};
    }
    return Vpn{(1ull << 44) + rng.Below(100000) * 16};
  };
  for (int step = 0; step < 4000; ++step) {
    const Vpn vpn = random_vpn();
    const double dice = rng.NextDouble();
    if (dice < 0.5) {
      const Ppn ppn{rng.Below(kPpnMask)};
      table_->InsertBase(vpn, ppn, Attr::ReadWrite());
      ref[vpn] = ppn;
    } else if (dice < 0.75) {
      const bool removed = table_->RemoveBase(vpn);
      EXPECT_EQ(removed, ref.erase(vpn) > 0) << "step " << step;
    } else {
      const auto fill = Lookup(vpn);
      const auto it = ref.find(vpn);
      ASSERT_EQ(fill.has_value(), it != ref.end()) << "step " << step;
      if (fill.has_value()) {
        EXPECT_EQ(fill->Translate(vpn), it->second) << "step " << step;
      }
    }
  }
  EXPECT_EQ(table_->live_translations(), ref.size());
  // Full differential sweep at the end.
  for (const auto& [vpn, ppn] : ref) {
    const auto fill = Lookup(vpn);
    ASSERT_TRUE(fill.has_value()) << "vpn 0x" << std::hex << vpn;
    EXPECT_EQ(fill->Translate(vpn), ppn);
  }
}

INSTANTIATE_TEST_SUITE_P(AllPageTables, PtConformanceTest,
                         ::testing::Values(PtKind::kLinear6, PtKind::kLinear1, PtKind::kForward,
                                           PtKind::kHashed, PtKind::kHashedMulti,
                                           PtKind::kHashedSpIndex, PtKind::kClustered,
                                           PtKind::kClusteredAdaptive, PtKind::kHashedInverted),
                         [](const ::testing::TestParamInfo<PtKind>& param_info) {
                           std::string n = sim::ToString(param_info.param);
                           for (char& c : n) {
                             if (c == '-') {
                               c = '_';
                             }
                           }
                           return n;
                         });

// ---------------------------------------------------------------------------
// Superpage / partial-subblock conformance for the tables that support them.
// ---------------------------------------------------------------------------

class PtSpPsbConformanceTest : public PtConformanceTest {};

TEST_P(PtSpPsbConformanceTest, SuperpageCoversAllBasePages) {
  ASSERT_TRUE(table_->features().superpages);
  table_->InsertSuperpage(Vpn{0x4000}, kPage64K, Ppn{0x1000}, Attr::ReadWrite());
  for (unsigned i = 0; i < 16; ++i) {
    const auto fill = Lookup(Vpn{0x4000} + i);
    ASSERT_TRUE(fill.has_value()) << "page " << i;
    EXPECT_EQ(fill->kind, MappingKind::kSuperpage);
    EXPECT_EQ(fill->Translate(Vpn{0x4000} + i), Ppn{0x1000} + i);
    EXPECT_EQ(fill->base_vpn, Vpn{0x4000});
    EXPECT_EQ(fill->pages_log2, 4u);
  }
  EXPECT_FALSE(Lookup(Vpn{0x3FFF}).has_value());
  EXPECT_FALSE(Lookup(Vpn{0x4010}).has_value());
  EXPECT_EQ(table_->live_translations(), 16u);
}

TEST_P(PtSpPsbConformanceTest, RemoveSuperpageClearsAllPages) {
  table_->InsertSuperpage(Vpn{0x4000}, kPage64K, Ppn{0x1000}, Attr::ReadWrite());
  EXPECT_TRUE(table_->RemoveSuperpage(Vpn{0x4000}, kPage64K));
  for (unsigned i = 0; i < 16; ++i) {
    EXPECT_FALSE(Lookup(Vpn{0x4000} + i).has_value());
  }
  EXPECT_EQ(table_->live_translations(), 0u);
  EXPECT_EQ(table_->SizeBytesPaperModel(), 0u);
}

TEST_P(PtSpPsbConformanceTest, PartialSubblockHonorsValidVector) {
  ASSERT_TRUE(table_->features().partial_subblock);
  const std::uint16_t vector = 0b0101'0000'1111'0011;
  table_->UpsertPartialSubblock(Vpn{0x8000}, 16, Ppn{0x2000}, Attr::ReadWrite(), vector);
  for (unsigned i = 0; i < 16; ++i) {
    const auto fill = Lookup(Vpn{0x8000} + i);
    const bool expected = (vector >> i) & 1;
    ASSERT_EQ(fill.has_value(), expected) << "page " << i;
    if (expected) {
      EXPECT_EQ(fill->kind, MappingKind::kPartialSubblock);
      EXPECT_EQ(fill->Translate(Vpn{0x8000} + i), Ppn{0x2000} + i);
    }
  }
  EXPECT_EQ(table_->live_translations(), 8u);
}

TEST_P(PtSpPsbConformanceTest, PsbVectorGrowsIncrementally) {
  table_->UpsertPartialSubblock(Vpn{0x8000}, 16, Ppn{0x2000}, Attr::ReadWrite(), 0x0001);
  EXPECT_TRUE(Lookup(Vpn{0x8000}).has_value());
  EXPECT_FALSE(Lookup(Vpn{0x8001}).has_value());
  table_->UpsertPartialSubblock(Vpn{0x8000}, 16, Ppn{0x2000}, Attr::ReadWrite(), 0x0003);
  EXPECT_TRUE(Lookup(Vpn{0x8001}).has_value());
  EXPECT_EQ(table_->live_translations(), 2u);
}

TEST_P(PtSpPsbConformanceTest, RemovePartialSubblockClearsBlock) {
  table_->UpsertPartialSubblock(Vpn{0x8000}, 16, Ppn{0x2000}, Attr::ReadWrite(), 0xFFFF);
  EXPECT_TRUE(table_->RemovePartialSubblock(Vpn{0x8000}, 16));
  for (unsigned i = 0; i < 16; ++i) {
    EXPECT_FALSE(Lookup(Vpn{0x8000} + i).has_value());
  }
  EXPECT_EQ(table_->SizeBytesPaperModel(), 0u);
}

TEST_P(PtSpPsbConformanceTest, SuperpagesAndBasePagesCoexist) {
  table_->InsertSuperpage(Vpn{0x4000}, kPage64K, Ppn{0x1000}, Attr::ReadWrite());
  table_->InsertBase(Vpn{0x4010}, Ppn{0x555}, Attr::ReadWrite());  // Next block over.
  const auto sp = Lookup(Vpn{0x4007});
  const auto base = Lookup(Vpn{0x4010});
  ASSERT_TRUE(sp && base);
  EXPECT_EQ(sp->Translate(Vpn{0x4007}), Ppn{0x1007});
  EXPECT_EQ(base->Translate(Vpn{0x4010}), Ppn{0x555});
  EXPECT_EQ(table_->live_translations(), 17u);
}

TEST_P(PtSpPsbConformanceTest, MixedPsbAndBaseWithinOneBlock) {
  // Properly-placed pages in the PSB PTE; a straggler page (placement
  // failed) as a base PTE in the same block.
  table_->UpsertPartialSubblock(Vpn{0x8000}, 16, Ppn{0x2000}, Attr::ReadWrite(), 0x00FF);
  table_->InsertBase(Vpn{0x800A}, Ppn{0x12345}, Attr::ReadWrite());
  const auto psb = Lookup(Vpn{0x8003});
  const auto straggler = Lookup(Vpn{0x800A});
  ASSERT_TRUE(psb && straggler);
  EXPECT_EQ(psb->Translate(Vpn{0x8003}), Ppn{0x2003});
  EXPECT_EQ(straggler->Translate(Vpn{0x800A}), Ppn{0x12345});
  EXPECT_FALSE(Lookup(Vpn{0x800C}).has_value()) << "neither PTE covers page 12";
}

INSTANTIATE_TEST_SUITE_P(SpPsbTables, PtSpPsbConformanceTest,
                         ::testing::Values(PtKind::kLinear6, PtKind::kLinear1, PtKind::kForward,
                                           PtKind::kHashedMulti, PtKind::kHashedSpIndex,
                                           PtKind::kClustered, PtKind::kClusteredAdaptive),
                         [](const ::testing::TestParamInfo<PtKind>& param_info) {
                           std::string n = sim::ToString(param_info.param);
                           for (char& c : n) {
                             if (c == '-') {
                               c = '_';
                             }
                           }
                           return n;
                         });

// ---------------------------------------------------------------------------
// Block-fetch (complete-subblock prefetch) conformance.
// ---------------------------------------------------------------------------

class PtBlockFetchTest : public PtConformanceTest {};

TEST_P(PtBlockFetchTest, LookupBlockReturnsAllResidentPages) {
  // Map 10 of 16 pages of one block.
  const std::uint16_t mask = 0b0011'1111'1100'0001;
  for (unsigned i = 0; i < 16; ++i) {
    if ((mask >> i) & 1) {
      table_->InsertBase(Vpn{0x6000} + i, Ppn{0x100} + i, Attr::ReadWrite());
    }
  }
  std::vector<pt::TlbFill> fills;
  {
    mem::WalkScope scope(cache_);
    table_->LookupBlock(VaOf(Vpn{0x6005}), 16, fills);
  }
  // Every resident page must be covered by some fill; no absent page may be.
  for (unsigned i = 0; i < 16; ++i) {
    bool covered = false;
    for (const auto& f : fills) {
      covered |= f.Covers(Vpn{0x6000} + i);
    }
    EXPECT_EQ(covered, ((mask >> i) & 1) != 0) << "page " << i;
  }
  for (const auto& f : fills) {
    for (unsigned i = 0; i < 16; ++i) {
      if (f.Covers(Vpn{0x6000} + i)) {
        EXPECT_EQ(f.Translate(Vpn{0x6000} + i), Ppn{0x100} + i);
      }
    }
  }
}

TEST_P(PtBlockFetchTest, AdjacentTablesFetchBlocksCheaperThanHashed) {
  // The paper's Section 4.4 point: block prefetch costs ~1 line for tables
  // with adjacent PTEs and ~s probes for hashed tables.
  for (unsigned i = 0; i < 16; ++i) {
    table_->InsertBase(Vpn{0x6000} + i, Ppn{0x100} + i, Attr::ReadWrite());
  }
  cache_.Reset();
  std::vector<pt::TlbFill> fills;
  {
    mem::WalkScope scope(cache_);
    table_->LookupBlock(VaOf(Vpn{0x6000}), 16, fills);
  }
  if (GetParam() == PtKind::kForward) {
    // Adjacent at the leaf, but the descent itself costs one line per level.
    EXPECT_LE(cache_.total_lines(), 8u) << table_->name();
  } else if (table_->features().adjacent_block_fetch) {
    EXPECT_LE(cache_.total_lines(), 2u) << table_->name();
  } else {
    EXPECT_GE(cache_.total_lines(), 16u) << table_->name();
  }
}

INSTANTIATE_TEST_SUITE_P(BlockFetch, PtBlockFetchTest,
                         ::testing::Values(PtKind::kLinear1, PtKind::kForward, PtKind::kHashed,
                                           PtKind::kClustered, PtKind::kClusteredAdaptive),
                         [](const ::testing::TestParamInfo<PtKind>& param_info) {
                           std::string n = sim::ToString(param_info.param);
                           for (char& c : n) {
                             if (c == '-') {
                               c = '_';
                             }
                           }
                           return n;
                         });

}  // namespace
}  // namespace cpt
