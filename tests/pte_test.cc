// Unit tests for the bit-level mapping-word formats (Figures 1, 6, 7).
#include "common/pte.h"

#include <gtest/gtest.h>

#include "common/types.h"

namespace cpt {
namespace {

TEST(AttrTest, FlagOperations) {
  Attr a = Attr::ReadWrite();
  EXPECT_TRUE(a.test(Attr::kRead));
  EXPECT_TRUE(a.test(Attr::kWrite));
  EXPECT_TRUE(a.test(Attr::kCacheable));
  EXPECT_FALSE(a.test(Attr::kExecute));

  const Attr b = a.with(Attr::kExecute);
  EXPECT_TRUE(b.test(Attr::kExecute));
  EXPECT_FALSE(a.test(Attr::kExecute)) << "with() must not mutate";

  const Attr c = b.without(Attr::kWrite);
  EXPECT_FALSE(c.test(Attr::kWrite));
  EXPECT_TRUE(c.test(Attr::kRead));
}

TEST(MappingWordTest, BaseRoundTrip) {
  const MappingWord w = MappingWord::Base(Ppn{0xABCDEF1}, Attr::ReadOnly());
  EXPECT_TRUE(w.valid());
  EXPECT_EQ(w.kind(), MappingKind::kBase);
  EXPECT_EQ(w.ppn(), Ppn{0xABCDEF1});
  EXPECT_EQ(w.attr(), Attr::ReadOnly());
}

TEST(MappingWordTest, BaseMaxPpnRoundTrip) {
  const MappingWord w = MappingWord::Base(kMaxPpn, Attr{0xFFF});
  EXPECT_EQ(w.ppn(), kMaxPpn);
  EXPECT_EQ(w.attr().bits, 0xFFF);
  EXPECT_EQ(w.kind(), MappingKind::kBase);
}

TEST(MappingWordTest, InvalidIsNotValid) {
  EXPECT_FALSE(MappingWord::Invalid().valid());
  EXPECT_EQ(MappingWord::Invalid().kind(), MappingKind::kBase);
  EXPECT_EQ(MappingWord::Invalid().bits(), 0u);
}

TEST(MappingWordTest, SuperpageRoundTrip) {
  const MappingWord w = MappingWord::Superpage(Ppn{0x1000}, Attr::ReadWrite(), kPage64K);
  EXPECT_TRUE(w.valid());
  EXPECT_EQ(w.kind(), MappingKind::kSuperpage);
  EXPECT_EQ(w.page_size(), kPage64K);
  EXPECT_EQ(w.page_size().pages(), 16u);
  EXPECT_EQ(w.ppn(), Ppn{0x1000});
}

TEST(MappingWordTest, SuperpageSizesEncodeInSzField) {
  for (unsigned log2 = 1; log2 <= 15; ++log2) {
    const MappingWord w = MappingWord::Superpage(Ppn{0}, Attr{}, PageSize{log2});
    EXPECT_EQ(w.page_size().size_log2, log2) << "SZ=" << log2;
    EXPECT_TRUE(w.valid());
  }
}

TEST(MappingWordTest, InvalidSuperpageKeepsSzReadable) {
  const MappingWord w = MappingWord::InvalidSuperpage(kPage16K);
  EXPECT_FALSE(w.valid());
  EXPECT_EQ(w.kind(), MappingKind::kSuperpage);
  EXPECT_EQ(w.page_size(), kPage16K);
}

TEST(MappingWordTest, PartialSubblockRoundTrip) {
  const MappingWord w = MappingWord::PartialSubblock(Ppn{0x40}, Attr::ReadWrite(), 0x8421);
  EXPECT_EQ(w.kind(), MappingKind::kPartialSubblock);
  EXPECT_EQ(w.valid_vector(), 0x8421);
  EXPECT_EQ(w.ppn(), Ppn{0x40});
  EXPECT_TRUE(w.valid());
}

TEST(MappingWordTest, PartialSubblockValidityTracksVector) {
  const MappingWord empty = MappingWord::PartialSubblock(Ppn{0x40}, Attr{}, 0);
  EXPECT_FALSE(empty.valid());
  const MappingWord one = empty.with_subpage_valid(7);
  EXPECT_TRUE(one.valid());
  EXPECT_TRUE(one.subpage_valid(7));
  EXPECT_FALSE(one.subpage_valid(6));
  const MappingWord back = one.without_subpage_valid(7);
  EXPECT_FALSE(back.valid());
}

TEST(MappingWordTest, PartialSubblockSubpagePpn) {
  // Block-aligned PPN 0x40; page at offset 5 lives at frame 0x45 when the
  // block is properly placed.
  const MappingWord w = MappingWord::PartialSubblock(Ppn{0x40}, Attr{}, 0xFFFF);
  for (unsigned boff = 0; boff < 16; ++boff) {
    EXPECT_EQ(w.subpage_ppn(boff), Ppn{0x40} + boff);
  }
}

TEST(MappingWordTest, PsbVectorDoesNotCorruptPpnOrAttr) {
  const MappingWord w =
      MappingWord::PartialSubblock(Ppn{kPpnMask & ~0xFull}, Attr{0xABC}, 0xFFFF);
  EXPECT_EQ(w.ppn(), Ppn{kPpnMask & ~0xFull});
  EXPECT_EQ(w.attr().bits, 0xABC);
  EXPECT_EQ(w.valid_vector(), 0xFFFF);
}

TEST(MappingWordTest, WithAttrPreservesEverythingElse) {
  const MappingWord w = MappingWord::Superpage(Ppn{0x777}, Attr{0x111}, kPage64K);
  const MappingWord w2 = w.with_attr(Attr{0xFFF});
  EXPECT_EQ(w2.attr().bits, 0xFFF);
  EXPECT_EQ(w2.ppn(), Ppn{0x777});
  EXPECT_EQ(w2.page_size(), kPage64K);
  EXPECT_EQ(w2.kind(), MappingKind::kSuperpage);
}

TEST(MappingWordTest, EightBytes) { EXPECT_EQ(sizeof(MappingWord), 8u); }

TEST(TypesTest, VpnDecomposition) {
  const VirtAddr va{0x0000123456789ABCull};
  EXPECT_EQ(VpnOf(va), Vpn{0x0000123456789ull});
  EXPECT_EQ(PageOffset(va), 0xABCull);
  EXPECT_EQ(VaOf(VpnOf(va)), VirtAddr{0x0000123456789000ull});
}

TEST(TypesTest, BlockDecomposition) {
  const Vpn vpn{0x12345};
  EXPECT_EQ(VpbnOf(vpn, 16), Vpbn{0x1234});
  EXPECT_EQ(BoffOf(vpn, 16), 5u);
  EXPECT_EQ(FirstVpnOfBlock(VpbnOf(vpn, 16), 16) + BoffOf(vpn, 16), vpn);
}

TEST(TypesTest, PageSizeBytes) {
  EXPECT_EQ(kPage4K.bytes(), 4096u);
  EXPECT_EQ(kPage64K.bytes(), 65536u);
  EXPECT_EQ(kPage64K.pages(), 16u);
  EXPECT_TRUE(kPage4K.is_base());
  EXPECT_FALSE(kPage64K.is_base());
}

TEST(TypesTest, Log2AndPowers) {
  EXPECT_EQ(Log2(1), 0u);
  EXPECT_EQ(Log2(16), 4u);
  EXPECT_EQ(Log2(4096), 12u);
  EXPECT_TRUE(IsPowerOfTwo(64));
  EXPECT_FALSE(IsPowerOfTwo(48));
  EXPECT_FALSE(IsPowerOfTwo(0));
}

}  // namespace
}  // namespace cpt
