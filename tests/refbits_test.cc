// Tests for referenced/modified-bit maintenance (Section 3.1): lock-free
// handler updates, clock-daemon scans, across all page-table organizations.
#include <gtest/gtest.h>

#include <memory>

#include "mem/cache_model.h"
#include "sim/experiments.h"
#include "sim/machine.h"
#include "workload/workload.h"

namespace cpt {
namespace {

using sim::PtKind;

class RefBitsTest : public ::testing::TestWithParam<PtKind> {
 protected:
  RefBitsTest() : cache_(256) {
    sim::MachineOptions opts;
    table_ = sim::MakePageTable(GetParam(), cache_, opts);
  }

  mem::CacheTouchModel cache_;
  std::unique_ptr<pt::PageTable> table_;
};

TEST_P(RefBitsTest, UpdateSetsAndClearsFlags) {
  table_->InsertBase(Vpn{0x100}, Ppn{0x1}, Attr::ReadWrite());
  EXPECT_FALSE(table_->PeekAttr(Vpn{0x100})->test(Attr::kReferenced));
  EXPECT_TRUE(table_->UpdateAttrFlags(Vpn{0x100}, Attr::kReferenced | Attr::kModified, 0));
  const Attr attr = *table_->PeekAttr(Vpn{0x100});
  EXPECT_TRUE(attr.test(Attr::kReferenced));
  EXPECT_TRUE(attr.test(Attr::kModified));
  EXPECT_TRUE(attr.test(Attr::kWrite)) << "protection bits must survive";
  EXPECT_TRUE(table_->UpdateAttrFlags(Vpn{0x100}, 0, Attr::kReferenced));
  EXPECT_FALSE(table_->PeekAttr(Vpn{0x100})->test(Attr::kReferenced));
  EXPECT_TRUE(table_->PeekAttr(Vpn{0x100})->test(Attr::kModified));
}

TEST_P(RefBitsTest, UpdateOnUnmappedPageFails) {
  EXPECT_FALSE(table_->UpdateAttrFlags(Vpn{0xDEAD}, Attr::kReferenced, 0));
  EXPECT_FALSE(table_->PeekAttr(Vpn{0xDEAD}).has_value());
}

TEST_P(RefBitsTest, UpdatesAreUncounted) {
  table_->InsertBase(Vpn{0x100}, Ppn{0x1}, Attr::ReadWrite());
  cache_.Reset();
  table_->UpdateAttrFlags(Vpn{0x100}, Attr::kReferenced, 0);
  table_->PeekAttr(Vpn{0x100});
  EXPECT_EQ(cache_.total_walks(), 0u) << "R/M maintenance is not walk cost";
}

TEST_P(RefBitsTest, ScanCountsAndClears) {
  for (Vpn vpn{0x200}; vpn < Vpn{0x220}; ++vpn) {
    table_->InsertBase(vpn, Ppn{vpn.raw()}, Attr::ReadWrite());
  }
  // Touch a subset.
  for (const Vpn vpn : {Vpn{0x200}, Vpn{0x205}, Vpn{0x21F}}) {
    table_->UpdateAttrFlags(vpn, Attr::kReferenced, 0);
  }
  EXPECT_EQ(table_->ScanAndClearReferenced(Vpn{0x200}, 32), 3u);
  EXPECT_EQ(table_->ScanAndClearReferenced(Vpn{0x200}, 32), 0u) << "bits cleared by first sweep";
}

TEST_P(RefBitsTest, SuperpageWordCarriesOneReferencedBit) {
  if (!table_->features().superpages) {
    GTEST_SKIP();
  }
  table_->InsertSuperpage(Vpn{0x4000}, kPage64K, Ppn{0x100}, Attr::ReadWrite());
  EXPECT_TRUE(table_->UpdateAttrFlags(Vpn{0x4007}, Attr::kReferenced, 0));
  // The single superpage PTE is referenced, visible through any covered page.
  EXPECT_TRUE(table_->PeekAttr(Vpn{0x4000})->test(Attr::kReferenced));
  EXPECT_TRUE(table_->PeekAttr(Vpn{0x400F})->test(Attr::kReferenced));
  // One PTE, so the sweep counts it once.
  EXPECT_EQ(table_->ScanAndClearReferenced(Vpn{0x4000}, 16), 1u);
  EXPECT_FALSE(table_->PeekAttr(Vpn{0x4003})->test(Attr::kReferenced));
}

INSTANTIATE_TEST_SUITE_P(AllPageTables, RefBitsTest,
                         ::testing::Values(PtKind::kLinear1, PtKind::kForward, PtKind::kHashed,
                                           PtKind::kHashedMulti, PtKind::kHashedSpIndex,
                                           PtKind::kClustered, PtKind::kClusteredAdaptive),
                         [](const ::testing::TestParamInfo<PtKind>& param_info) {
                           std::string n = sim::ToString(param_info.param);
                           for (char& c : n) {
                             if (c == '-') {
                               c = '_';
                             }
                           }
                           return n;
                         });

TEST(RefBitsMachineTest, MissHandlerSetsReferencedAndModified) {
  sim::MachineOptions opts;
  opts.pt_kind = sim::PtKind::kClustered;
  opts.maintain_ref_bits = true;
  sim::Machine m(opts, 1);
  m.Access(0, VaOf(Vpn{0x100}), /*is_write=*/false);
  m.Access(0, VaOf(Vpn{0x101}), /*is_write=*/true);
  const Attr read_attr = *m.page_table(0).PeekAttr(Vpn{0x100});
  const Attr write_attr = *m.page_table(0).PeekAttr(Vpn{0x101});
  EXPECT_TRUE(read_attr.test(Attr::kReferenced));
  EXPECT_FALSE(read_attr.test(Attr::kModified));
  EXPECT_TRUE(write_attr.test(Attr::kReferenced));
  EXPECT_TRUE(write_attr.test(Attr::kModified));
}

TEST(RefBitsMachineTest, DisabledByDefault) {
  sim::MachineOptions opts;
  opts.pt_kind = sim::PtKind::kClustered;
  sim::Machine m(opts, 1);
  m.Access(0, VaOf(Vpn{0x100}), /*is_write=*/true);
  EXPECT_FALSE(m.page_table(0).PeekAttr(Vpn{0x100})->test(Attr::kReferenced));
}

TEST(RefBitsMachineTest, TraceDrivenSweepFindsHotPages) {
  const auto& spec = workload::GetPaperWorkload("mp3d");
  const auto snap = workload::BuildSnapshot(spec);
  sim::MachineOptions opts;
  opts.pt_kind = sim::PtKind::kClustered;
  opts.maintain_ref_bits = true;
  sim::Machine m(opts, 1);
  m.Preload(snap);
  workload::TraceGenerator gen(spec, snap);
  for (int i = 0; i < 100000; ++i) {
    const auto r = gen.Next();
    m.Access(r.asid, r.va, r.is_write);
  }
  // The heap was exercised: a sweep over it finds referenced mappings.
  const std::uint64_t hot = m.page_table(0).ScanAndClearReferenced(VpnOf(VirtAddr{0x10000000ull}), 1100);
  EXPECT_GT(hot, 0u);
  EXPECT_EQ(m.page_table(0).ScanAndClearReferenced(VpnOf(VirtAddr{0x10000000ull}), 1100), 0u);
}

TEST(RefBitsMachineTest, WritesAppearInTraces) {
  const auto& spec = workload::GetPaperWorkload("coral");
  const auto snap = workload::BuildSnapshot(spec);
  workload::TraceGenerator gen(spec, snap);
  unsigned writes = 0;
  for (int i = 0; i < 20000; ++i) {
    writes += gen.Next().is_write ? 1 : 0;
  }
  EXPECT_GT(writes, 2000u);
  EXPECT_LT(writes, 12000u);
}

}  // namespace
}  // namespace cpt
