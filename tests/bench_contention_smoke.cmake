# Script-mode ctest helper: the contention bench, end to end at smoke scale.
# Runs bench_contention with a reduced insert budget and requires that it
#   1. exits 0 — the in-bench reconciliation CPT_CHECKs (stripe acquisitions
#      == inserts, alloc acquisitions == inserts, per run) all held,
#   2. produces a report that tools/check_bench_json.py accepts — which
#      validates the `concurrency` section's internal sums exactly, and
#   3. actually exercised the striped paths: the report names the stripe and
#      allocator sites and records nonzero stripe acquisitions.
#
# Invoked as:
#   cmake -DBENCH=<binary> -DCHECKER=<check_bench_json.py> -DPYTHON=<python3>
#         -DOUT=<scratch.json> -P this_file
execute_process(
  COMMAND ${CMAKE_COMMAND} -E env CPT_CONTENTION_INSERTS=20000
          CPT_CONTENTION_THREADS=4
          "${BENCH}" "--json=${OUT}"
  RESULT_VARIABLE result
  ERROR_VARIABLE err)
if(NOT result EQUAL 0)
  message(FATAL_ERROR "contention bench run failed (exit ${result}): ${err}")
endif()

execute_process(
  COMMAND "${PYTHON}" "${CHECKER}" "${OUT}"
  RESULT_VARIABLE result
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT result EQUAL 0)
  message(FATAL_ERROR
          "contention report failed schema validation: ${out} ${err}")
endif()

file(READ "${OUT}" report)
if(NOT report MATCHES "\"name\": \"pt.hashed.stripes\"")
  message(FATAL_ERROR "contention report does not name the stripe site")
endif()
if(NOT report MATCHES "\"name\": \"pt.hashed.alloc\"")
  message(FATAL_ERROR "contention report does not name the allocator site")
endif()
if(NOT report MATCHES "\"stripe_acquisitions\": [1-9]")
  message(FATAL_ERROR "contention report records no stripe acquisitions")
endif()
message(STATUS "contention bench report is schema-valid with live stripe sites")
