// Tests for the set-associative two-page-size TLB ([Tall92], the hardware
// analog of superpage-index hashing).
#include "tlb/dual_size_setassoc.h"

#include <gtest/gtest.h>

namespace cpt::tlb {
namespace {

pt::TlbFill BaseFill(Vpn vpn, Ppn ppn) {
  return pt::TlbFill{.kind = MappingKind::kBase,
                     .base_vpn = vpn,
                     .pages_log2 = 0,
                     .word = MappingWord::Base(ppn, Attr::ReadWrite())};
}

pt::TlbFill SuperFill(Vpn base_vpn, Ppn base_ppn) {
  return pt::TlbFill{.kind = MappingKind::kSuperpage,
                     .base_vpn = base_vpn,
                     .pages_log2 = 4,
                     .word = MappingWord::Superpage(base_ppn, Attr::ReadWrite(), kPage64K)};
}

TEST(DualSizeTlbTest, BothSizesHitViaSuperpageIndex) {
  DualSizeSetAssocTlb tlb(16, 2);
  tlb.Insert(0, Vpn{0x4000}, SuperFill(Vpn{0x4000}, Ppn{0x100}));
  tlb.Insert(0, Vpn{0x9003}, BaseFill(Vpn{0x9003}, Ppn{0x7}));
  for (unsigned i = 0; i < 16; ++i) {
    EXPECT_EQ(tlb.Lookup(0, Vpn{0x4000} + i), LookupOutcome::kHit) << i;
  }
  EXPECT_EQ(tlb.Lookup(0, Vpn{0x9003}), LookupOutcome::kHit);
  EXPECT_EQ(tlb.Lookup(0, Vpn{0x9004}), LookupOutcome::kMiss);
}

TEST(DualSizeTlbTest, BasePagesOfOneBlockCompeteForOneSet) {
  // 2-way sets: three base pages from one 16-page block all index the same
  // set and cannot coexist — the crowding superpage indexing causes.
  DualSizeSetAssocTlb tlb(16, 2);
  tlb.Insert(0, Vpn{0x8000}, BaseFill(Vpn{0x8000}, Ppn{1}));
  tlb.Insert(0, Vpn{0x8001}, BaseFill(Vpn{0x8001}, Ppn{2}));
  tlb.Insert(0, Vpn{0x8002}, BaseFill(Vpn{0x8002}, Ppn{3}));  // Evicts one of the first two.
  unsigned hits = 0;
  for (const Vpn vpn : {Vpn{0x8000}, Vpn{0x8001}, Vpn{0x8002}}) {
    hits += tlb.Lookup(0, vpn) == LookupOutcome::kHit ? 1 : 0;
  }
  EXPECT_EQ(hits, 2u);
  EXPECT_GE(tlb.conflict_evictions(), 1u) << "capacity existed in other sets";
}

TEST(DualSizeTlbTest, DistinctBlocksSpreadAcrossSets) {
  DualSizeSetAssocTlb tlb(16, 2);
  for (unsigned b = 0; b < 16; ++b) {
    tlb.Insert(0, Vpn{(0x100 + b) * 16ull}, BaseFill(Vpn{(0x100 + b) * 16ull}, Ppn{b}));
  }
  for (unsigned b = 0; b < 16; ++b) {
    EXPECT_EQ(tlb.Lookup(0, Vpn{(0x100 + b) * 16ull}), LookupOutcome::kHit) << b;
  }
  EXPECT_EQ(tlb.conflict_evictions(), 0u);
}

TEST(DualSizeTlbTest, SetLruReplacement) {
  DualSizeSetAssocTlb tlb(16, 2);
  tlb.Insert(0, Vpn{0x8000}, BaseFill(Vpn{0x8000}, Ppn{1}));
  tlb.Insert(0, Vpn{0x8001}, BaseFill(Vpn{0x8001}, Ppn{2}));
  EXPECT_EQ(tlb.Lookup(0, Vpn{0x8000}), LookupOutcome::kHit);  // 0x8001 is LRU.
  tlb.Insert(0, Vpn{0x8002}, BaseFill(Vpn{0x8002}, Ppn{3}));
  EXPECT_EQ(tlb.Lookup(0, Vpn{0x8000}), LookupOutcome::kHit);
  EXPECT_EQ(tlb.Lookup(0, Vpn{0x8001}), LookupOutcome::kMiss);
}

TEST(DualSizeTlbTest, PsbFillDegradesToBaseEntry) {
  DualSizeSetAssocTlb tlb(16, 2);
  tlb.Insert(0, Vpn{0x8005},
             pt::TlbFill{.kind = MappingKind::kPartialSubblock,
                         .base_vpn = Vpn{0x8000},
                         .pages_log2 = 4,
                         .word = MappingWord::PartialSubblock(Ppn{0x40}, Attr::ReadWrite(), 0xFFFF)});
  EXPECT_EQ(tlb.Lookup(0, Vpn{0x8005}), LookupOutcome::kHit);
  EXPECT_EQ(tlb.Lookup(0, Vpn{0x8006}), LookupOutcome::kMiss);
}

TEST(DualSizeTlbTest, AsidsSeparate) {
  DualSizeSetAssocTlb tlb(16, 2);
  tlb.Insert(0, Vpn{0x4000}, SuperFill(Vpn{0x4000}, Ppn{0x100}));
  EXPECT_EQ(tlb.Lookup(1, Vpn{0x4000}), LookupOutcome::kMiss);
  EXPECT_EQ(tlb.Lookup(0, Vpn{0x4000}), LookupOutcome::kHit);
}

TEST(DualSizeTlbTest, FlushResetsEverything) {
  DualSizeSetAssocTlb tlb(16, 2);
  tlb.Insert(0, Vpn{0x4000}, SuperFill(Vpn{0x4000}, Ppn{0x100}));
  tlb.Flush();
  EXPECT_EQ(tlb.Lookup(0, Vpn{0x4000}), LookupOutcome::kMiss);
}

}  // namespace
}  // namespace cpt::tlb
