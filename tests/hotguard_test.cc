// The runtime half of the hot-path discipline (common/hotguard.h): a
// HotPathScope makes any heap allocation on its thread abort with an
// attributable message, and a preloaded replay of a paper workload runs its
// steady state under the guard without tripping — the dynamic proof of the
// property the hot-no-alloc lint rule checks statically.
#include "common/hotguard.h"

#include <gtest/gtest.h>

#include <new>
#include <vector>

#include "sim/machine.h"
#include "workload/workload.h"

namespace cpt {
namespace {

TEST(HotGuardTest, InactiveByDefault) {
  EXPECT_FALSE(HotPathScope::ActiveOnThisThread());
  std::vector<int> v;
  v.push_back(1);  // Allocates through the replaced operator new; legal here.
  EXPECT_EQ(v.size(), 1u);
}

TEST(HotGuardTest, ScopeNestsAndUnwinds) {
  {
    HotPathScope outer("outer");
    EXPECT_TRUE(HotPathScope::ActiveOnThisThread());
    {
      HotPathScope inner("inner");
      EXPECT_TRUE(HotPathScope::ActiveOnThisThread());
    }
    EXPECT_TRUE(HotPathScope::ActiveOnThisThread());
  }
  EXPECT_FALSE(HotPathScope::ActiveOnThisThread());
}

TEST(HotGuardTest, FreeingInsideScopeIsLegal) {
  // Deletes never trip: releasing memory is not the failure mode the guard
  // hunts, and steady-state code may legitimately return nodes to pools.
  void* p = ::operator new(64);
  {
    HotPathScope guard("free-only");
    ::operator delete(p);
  }
}

TEST(HotGuardDeathTest, AllocationInsideScopeTrips) {
  // A direct operator-new call cannot be elided, unlike a new-expression.
  EXPECT_DEATH(
      {
        HotPathScope guard("hotguard_test.deliberate_alloc");
        void* p = ::operator new(16);
        ::operator delete(p);  // Unreachable; silences the unused result.
      },
      "HotPathScope violation: .*hotguard_test.deliberate_alloc");
}

TEST(HotGuardDeathTest, ContainerGrowthInsideScopeTrips) {
  std::vector<int> v;
  EXPECT_DEATH(
      {
        HotPathScope guard("hotguard_test.container_growth");
        for (int i = 0; i < 1024; ++i) {
          v.push_back(i);
        }
      },
      "HotPathScope violation");
}

// The integration proof behind the lint rules: after Preload() and a warm-up
// replay has grown every pool and scratch buffer to its high-water mark, a
// further replay slice performs zero heap allocations — on the conventional
// hashed organization and on the paper's clustered table.
TEST(HotGuardTest, SteadyStateReplayDoesNotAllocate) {
  for (const sim::PtKind pt : {sim::PtKind::kHashed, sim::PtKind::kClustered}) {
    SCOPED_TRACE(sim::ToString(pt));
    sim::MachineOptions opts;
    opts.pt_kind = pt;
    const auto& spec = workload::GetPaperWorkload("mp3d");
    const auto snap = workload::BuildSnapshot(spec);
    sim::Machine m(opts, 1);
    m.Preload(snap);
    workload::TraceGenerator gen(spec, snap);
    for (int i = 0; i < 30000; ++i) {
      const auto r = gen.Next();
      m.Access(r.asid, r.va);
    }
    // Steady state: the guard aborts the test on the first allocation.
    HotPathScope guard("hotguard_test.steady_state_replay");
    for (int i = 0; i < 30000; ++i) {
      const auto r = gen.Next();
      m.Access(r.asid, r.va);
    }
  }
}

}  // namespace
}  // namespace cpt
