// Tests for the concurrency-observability layer: the named lock-site
// registry (obs/contention.h) and the thread-sharded telemetry fan-in
// (obs/sharded.h), plus the Perfetto exporter's per-shard track mapping.
//
// The contention tests share the process-wide ContentionRegistry::Global(),
// so each one starts from ResetForTest() and keeps every ContentionSite it
// creates scoped inside the test body.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/sync.h"
#include "obs/contention.h"
#include "obs/json_writer.h"
#include "obs/metrics.h"
#include "obs/perfetto.h"
#include "obs/sharded.h"
#include "obs/trace.h"

namespace cpt::obs {
namespace {

// ---------------------------------------------------------------------------
// ContentionRegistry

class ContentionRegistryTest : public ::testing::Test {
 protected:
  void SetUp() override { ContentionRegistry::Global().ResetForTest(); }
  void TearDown() override { ContentionRegistry::Global().ResetForTest(); }
};

TEST_F(ContentionRegistryTest, LiveSiteSnapshotAndRetiredFold) {
  {
    Mutex mu;
    ContentionSite site("test.mu", &mu);
    for (int i = 0; i < 3; ++i) {
      mu.lock();
      mu.unlock();
    }

    std::vector<ContentionSiteSnapshot> live = ContentionRegistry::Global().Snapshot();
    ASSERT_EQ(live.size(), 1u);
    EXPECT_EQ(live[0].name, "test.mu");
    EXPECT_EQ(live[0].acquisitions, 3u);
    EXPECT_EQ(live[0].contended, 0u);
    EXPECT_EQ(live[0].shared_acquisitions, 0u);
    EXPECT_TRUE(live[0].stripes.empty());
    EXPECT_EQ(live[0].total_acquisitions(), 3u);
    EXPECT_DOUBLE_EQ(live[0].contended_fraction(), 0.0);
  }

  // The site (and its mutex) are gone, but the name's counters survive in
  // the retired aggregate — a report written after teardown sees them.
  std::vector<ContentionSiteSnapshot> retired = ContentionRegistry::Global().Snapshot();
  ASSERT_EQ(retired.size(), 1u);
  EXPECT_EQ(retired[0].name, "test.mu");
  EXPECT_EQ(retired[0].acquisitions, 3u);
}

TEST_F(ContentionRegistryTest, SameNameAggregatesAcrossRegistrations) {
  Mutex a;
  Mutex b;
  ContentionSite site_a("test.shared_name", &a);

  for (int i = 0; i < 2; ++i) {
    a.lock();
    a.unlock();
  }
  {
    // `b` registers, acquires 5 times, and retires while `a` stays live:
    // the snapshot must fold live + retired counters under one name.
    ContentionSite site_b("test.shared_name", &b);
    for (int i = 0; i < 5; ++i) {
      b.lock();
      b.unlock();
    }
  }

  std::vector<ContentionSiteSnapshot> snap = ContentionRegistry::Global().Snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].name, "test.shared_name");
  EXPECT_EQ(snap[0].acquisitions, 7u);
}

TEST_F(ContentionRegistryTest, SharedMutexSplitsSharedAndExclusive) {
  SharedMutex mu;
  ContentionSite site("test.rw", &mu);

  mu.lock_shared();
  mu.unlock_shared();
  mu.lock_shared();
  mu.unlock_shared();
  mu.lock();
  mu.unlock();

  std::vector<ContentionSiteSnapshot> snap = ContentionRegistry::Global().Snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].acquisitions, 1u);
  EXPECT_EQ(snap[0].shared_acquisitions, 2u);
  EXPECT_EQ(snap[0].total_acquisitions(), 3u);
}

TEST_F(ContentionRegistryTest, StripeSetSnapshotReconcilesPerStripe) {
  StripeSet stripes(4);
  ContentionSite site("test.stripes", &stripes);

  // Hit stripe 1 twice and stripe 3 once via the hash-selection path the
  // page tables use (StripeFor masks the hash, so hash == stripe index here).
  for (std::uint64_t hash : {1u, 1u, 3u}) {
    MutexLock lock(stripes.StripeFor(hash));
  }

  std::vector<ContentionSiteSnapshot> snap = ContentionRegistry::Global().Snapshot();
  ASSERT_EQ(snap.size(), 1u);
  ASSERT_EQ(snap[0].stripes.size(), 4u);
  EXPECT_EQ(snap[0].stripes[0].acquisitions, 0u);
  EXPECT_EQ(snap[0].stripes[1].acquisitions, 2u);
  EXPECT_EQ(snap[0].stripes[2].acquisitions, 0u);
  EXPECT_EQ(snap[0].stripes[3].acquisitions, 1u);

  // Site-level totals are the per-stripe sums by construction.
  std::uint64_t per_stripe_sum = 0;
  for (const ContentionSiteSnapshot::Stripe& s : snap[0].stripes) {
    per_stripe_sum += s.acquisitions;
  }
  EXPECT_EQ(per_stripe_sum, snap[0].acquisitions);
  EXPECT_EQ(snap[0].acquisitions, 3u);
}

TEST_F(ContentionRegistryTest, EmptyStripeSetRegistersNothing) {
  StripeSet none(0);
  ContentionSite site("test.unstriped", &none);
  EXPECT_TRUE(ContentionRegistry::Global().Snapshot().empty());
}

TEST_F(ContentionRegistryTest, ContendedWaitShowsUpInSnapshotWhenTimed) {
  SetContentionTimingForTest(true);
  Mutex mu;  // Built while timing is on, so it carries a histogram.
  ContentionSite site("test.timed", &mu);

  mu.lock();
  ThreadGroup workers;
  workers.Spawn([&mu] {
    mu.lock();
    mu.unlock();
  });
  // The contended counter is bumped *before* the worker blocks, so polling
  // it is a deterministic rendezvous — no clocks, no sleeps.
  while (mu.contended() == 0) {
  }
  mu.unlock();
  workers.JoinAll();
  SetContentionTimingForTest(false);

  std::vector<ContentionSiteSnapshot> snap = ContentionRegistry::Global().Snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].acquisitions, 2u);
  EXPECT_EQ(snap[0].contended, 1u);
  EXPECT_TRUE(snap[0].has_wait);
  EXPECT_EQ(snap[0].wait_count(), 1u);
}

TEST_F(ContentionRegistryTest, ToJsonEmitsSortedSitesAndExactTotals) {
  Mutex mu;
  StripeSet stripes(2);
  // Registered in reverse-alphabetical order; the dump must sort by name.
  ContentionSite site_z("z.lock", &mu);
  ContentionSite site_a("a.stripes", &stripes);

  mu.lock();
  mu.unlock();
  { MutexLock lock(stripes.StripeFor(0)); }
  { MutexLock lock(stripes.StripeFor(1)); }

  std::ostringstream os;
  {
    JsonWriter w(os, /*pretty=*/false);
    ContentionRegistry::Global().ToJson(w);
    EXPECT_TRUE(w.Complete());
  }
  const std::string json = os.str();

  EXPECT_NE(json.find("\"contention_timing\":false"), std::string::npos) << json;
  const std::size_t a_pos = json.find("\"name\":\"a.stripes\"");
  const std::size_t z_pos = json.find("\"name\":\"z.lock\"");
  ASSERT_NE(a_pos, std::string::npos) << json;
  ASSERT_NE(z_pos, std::string::npos) << json;
  EXPECT_LT(a_pos, z_pos) << "sites must be name-sorted";
  EXPECT_NE(json.find("\"stripes\":[{\"index\":0,\"acquisitions\":1,\"contended\":0},"
                      "{\"index\":1,\"acquisitions\":1,\"contended\":0}]"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"totals\":{\"acquisitions\":3,\"contended\":0"), std::string::npos)
      << json;
  // Timing was off for these locks: no wait subtree anywhere.
  EXPECT_EQ(json.find("\"wait\""), std::string::npos) << json;
}

// ---------------------------------------------------------------------------
// ShardedMetricRegistry

std::string RegistryJson(const MetricRegistry& reg) {
  std::ostringstream os;
  JsonWriter w(os, /*pretty=*/false);
  reg.ToJson(w);
  return os.str();
}

TEST(ShardedMetricRegistryTest, MergedFoldsCountersHistosStatsAndGauges) {
  ShardedMetricRegistry sharded(3);

  sharded.shard(0).Counter("refs") = 5;
  sharded.shard(1).Counter("refs") = 7;
  sharded.shard(2).Counter("faults") = 1;  // Only present in shard 2.

  sharded.shard(0).Gauge("load_factor") = 0.25;
  sharded.shard(2).Gauge("load_factor") = 0.75;  // Last shard wins.

  sharded.shard(0).Histo("chain").Add(1);
  sharded.shard(0).Histo("chain").Add(2);
  sharded.shard(1).Histo("chain").Add(2);

  sharded.shard(0).Stats("secs").Add(1.0);
  sharded.shard(1).Stats("secs").Add(3.0);

  MetricRegistry merged = sharded.Merged();
  EXPECT_EQ(merged.Counter("refs"), 12u);
  EXPECT_EQ(merged.Counter("faults"), 1u);
  EXPECT_DOUBLE_EQ(merged.Gauge("load_factor"), 0.75);
  EXPECT_EQ(merged.Histo("chain").total(), 3u);
  EXPECT_EQ(merged.Histo("chain").count(2), 2u);
  EXPECT_EQ(merged.Stats("secs").count(), 2u);
  EXPECT_DOUBLE_EQ(merged.Stats("secs").mean(), 2.0);
  EXPECT_DOUBLE_EQ(merged.Stats("secs").min(), 1.0);
  EXPECT_DOUBLE_EQ(merged.Stats("secs").max(), 3.0);
}

TEST(ShardedMetricRegistryTest, MergedIsDeterministic) {
  ShardedMetricRegistry sharded(4);
  for (std::size_t s = 0; s < 4; ++s) {
    sharded.shard(s).Counter("walks") = 10 * (s + 1);
    sharded.shard(s).Histo("lines").Add(s);
    sharded.shard(s).Stats("rate").Add(static_cast<double>(s) + 0.5);
  }
  // Two independent folds must serialize byte-identically — the contract a
  // sharded replay's report depends on.
  EXPECT_EQ(RegistryJson(sharded.Merged()), RegistryJson(sharded.Merged()));
}

// ---------------------------------------------------------------------------
// ShardedTraceBuffer

WalkEvent MissAt(std::uint64_t vpn) {
  WalkEvent e;
  e.kind = EventKind::kTlbMiss;
  e.vpn = Vpn{vpn};
  return e;
}

TEST(ShardedTraceBufferTest, MergeOrdersByRefThenShardThenSeq) {
  ShardedTraceBuffer buf(2, /*capacity_per_shard=*/16);

  // Shard 1 records *first* in real time; the merge must still put shard
  // 0's ref-0 events ahead of shard 1's ref-1 events, and keep shard 1's
  // two events for one ref in emission order.
  buf.shard(1).BeginRef(1);
  buf.shard(1).Record(MissAt(0xB1));
  buf.shard(1).Record(MissAt(0xB2));
  buf.shard(0).BeginRef(0);
  buf.shard(0).Record(MissAt(0xA0));
  buf.shard(0).BeginRef(2);
  buf.shard(0).Record(MissAt(0xC0));

  std::vector<WalkEvent> merged = buf.MergedEvents();
  ASSERT_EQ(merged.size(), 4u);
  EXPECT_EQ(merged[0].vpn.raw(), 0xA0u);
  EXPECT_EQ(merged[1].vpn.raw(), 0xB1u);
  EXPECT_EQ(merged[2].vpn.raw(), 0xB2u);
  EXPECT_EQ(merged[3].vpn.raw(), 0xC0u);

  // Each event carries its shard id (0 stays 0, preserving the wire format).
  EXPECT_EQ(merged[0].shard, 0u);
  EXPECT_EQ(merged[1].shard, 1u);
  EXPECT_EQ(merged[2].shard, 1u);
  EXPECT_EQ(merged[3].shard, 0u);
}

TEST(ShardedTraceBufferTest, SameRefTiesBreakByShardIndex) {
  ShardedTraceBuffer buf(2, 16);
  buf.shard(1).BeginRef(7);
  buf.shard(1).Record(MissAt(0xB0));
  buf.shard(0).BeginRef(7);
  buf.shard(0).Record(MissAt(0xA0));

  std::vector<WalkEvent> merged = buf.MergedEvents();
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged[0].vpn.raw(), 0xA0u);  // Shard 0 first on equal refs.
  EXPECT_EQ(merged[1].vpn.raw(), 0xB0u);
}

TEST(ShardedTraceBufferTest, SingleShardWireFormatMatchesRingBuffer) {
  RingBufferTracer plain(16);
  ShardedTraceBuffer sharded(1, 16);
  sharded.shard(0).BeginRef(0);

  for (std::uint64_t vpn : {0x10u, 0x20u, 0x30u}) {
    WalkEvent e = MissAt(vpn);
    e.asid = 3;
    e.lines = 2;
    plain.Record(e);
    sharded.shard(0).Record(e);
  }

  std::ostringstream plain_os;
  std::ostringstream sharded_os;
  plain.WriteJsonl(plain_os);
  sharded.WriteMergedJsonl(sharded_os);
  // Byte-identical: shard 0 keeps shard == 0, which the serializer omits.
  EXPECT_EQ(sharded_os.str(), plain_os.str());
  EXPECT_EQ(sharded_os.str().find("\"shard\""), std::string::npos);
}

TEST(ShardedTraceBufferTest, NonzeroShardAppearsOnTheWire) {
  ShardedTraceBuffer buf(2, 16);
  buf.shard(1).BeginRef(0);
  buf.shard(1).Record(MissAt(0x40));

  std::ostringstream os;
  buf.WriteMergedJsonl(os);
  EXPECT_NE(os.str().find("\"shard\":1"), std::string::npos) << os.str();
}

TEST(ShardedTraceBufferTest, RingsDropIndependentlyButCountsStayExact) {
  ShardedTraceBuffer buf(2, /*capacity_per_shard=*/4);
  buf.shard(0).BeginRef(0);
  buf.shard(1).BeginRef(0);

  for (int i = 0; i < 10; ++i) {
    buf.shard(0).Record(MissAt(static_cast<std::uint64_t>(i)));
  }
  buf.shard(1).Record(MissAt(0x100));
  buf.shard(1).Record(MissAt(0x101));

  // The chatty shard dropped; the quiet one kept everything.
  EXPECT_EQ(buf.shard(0).dropped(), 6u);
  EXPECT_EQ(buf.shard(0).size(), 4u);
  EXPECT_EQ(buf.shard(1).dropped(), 0u);
  EXPECT_EQ(buf.shard(1).size(), 2u);
  EXPECT_EQ(buf.TotalRecorded(), 12u);
  EXPECT_EQ(buf.TotalDropped(), 6u);

  // Per-kind counts aggregate everything *recorded*, not just survivors.
  EXPECT_EQ(buf.MergedCounts()[EventKind::kTlbMiss], 12u);
  EXPECT_EQ(buf.MergedEvents().size(), 6u);
}

// ---------------------------------------------------------------------------
// Perfetto per-shard tracks

TEST(PerfettoShardTest, ShardEventsRenderOnTheirOwnTracks) {
  std::ostringstream os;
  {
    PerfettoExporter exporter(os);
    WalkEvent miss = MissAt(0x50);
    exporter.Record(miss);  // Shard 0.
    miss.shard = 1;
    exporter.Record(miss);  // Shard 1: announces its own track set.
    exporter.Finish();
  }
  const std::string trace = os.str();

  // Shard 1's TLB track is named with the shard suffix and lives at
  // tid = shard * stride + track = 1 * 8 + 1 = 9.
  EXPECT_NE(trace.find("TLB (shard 1)"), std::string::npos) << trace;
  EXPECT_NE(trace.find("\"tid\":9"), std::string::npos) << trace;
}

TEST(PerfettoShardTest, SingleShardTraceHasNoShardSuffixes) {
  std::ostringstream os;
  {
    PerfettoExporter exporter(os);
    exporter.Record(MissAt(0x60));
    exporter.Finish();
  }
  EXPECT_EQ(os.str().find("(shard"), std::string::npos);
}

}  // namespace
}  // namespace cpt::obs
