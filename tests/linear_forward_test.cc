// Unit tests specific to the tree-structured page tables: multi-level
// linear (level accounting, virtual-array semantics) and forward-mapped
// (seven-level walks, intermediate-node superpages).
#include <gtest/gtest.h>

#include "mem/cache_model.h"
#include "pt/forward.h"
#include "pt/linear.h"

namespace cpt::pt {
namespace {

// ---------------------------------------------------------------------------
// LinearPageTable
// ---------------------------------------------------------------------------

class LinearTest : public ::testing::Test {
 protected:
  LinearTest() : cache_(256), table_(cache_, {}) {}

  std::optional<TlbFill> Lookup(Vpn vpn) {
    mem::WalkScope scope(cache_);
    return table_.Lookup(VaOf(vpn));
  }

  mem::CacheTouchModel cache_;
  LinearPageTable table_;
};

TEST_F(LinearTest, OneLeafPagePer512Vpns) {
  table_.InsertBase(Vpn{0}, Ppn{1}, Attr::ReadWrite());
  table_.InsertBase(Vpn{511}, Ppn{2}, Attr::ReadWrite());
  const auto counts = table_.ActiveNodesPerLevel();
  EXPECT_EQ(counts[0], 1u) << "both PTEs share one leaf page";
  table_.InsertBase(Vpn{512}, Ppn{3}, Attr::ReadWrite());
  EXPECT_EQ(table_.ActiveNodesPerLevel()[0], 2u);
}

TEST_F(LinearTest, SixLevelSizeChargesAllLevels) {
  table_.InsertBase(Vpn{0x100}, Ppn{1}, Attr::ReadWrite());
  // One page per level: 6 * 4KB.
  EXPECT_EQ(table_.SizeBytesPaperModel(), 6u * kBasePageSize);
  const auto counts = table_.ActiveNodesPerLevel();
  for (unsigned level = 0; level < LinearPageTable::kNumLevels; ++level) {
    EXPECT_EQ(counts[level], 1u) << "level " << level + 1;
  }
}

TEST_F(LinearTest, DistantRegionsShareOnlyUpperLevels) {
  table_.InsertBase(Vpn{0x100}, Ppn{1}, Attr::ReadWrite());
  table_.InsertBase(Vpn{1ull << 30}, Ppn{2}, Attr::ReadWrite());
  const auto counts = table_.ActiveNodesPerLevel();
  EXPECT_EQ(counts[0], 2u);  // Distinct leaves (level 1 covers 2^9 pages).
  EXPECT_EQ(counts[1], 2u);  // Level 2 covers 2^18 pages: still distinct.
  EXPECT_EQ(counts[2], 2u);  // Level 3 covers 2^27 pages: still distinct.
  EXPECT_EQ(counts[3], 1u);  // Level 4 covers 2^36 pages: shared from here up.
  EXPECT_EQ(counts[4], 1u);
  EXPECT_EQ(counts[5], 1u);
}

TEST_F(LinearTest, OneLevelModeChargesLeavesOnly) {
  mem::CacheTouchModel cache(256);
  LinearPageTable one(cache, {.size_model = LinearPageTable::SizeModel::kOneLevel});
  one.InsertBase(Vpn{0x100}, Ppn{1}, Attr::ReadWrite());
  one.InsertBase(Vpn{1ull << 40}, Ppn{2}, Attr::ReadWrite());
  EXPECT_EQ(one.SizeBytesPaperModel(), 2u * kBasePageSize);
}

TEST_F(LinearTest, LookupTouchesExactlyOneLine) {
  table_.InsertBase(Vpn{0x1234}, Ppn{0x9}, Attr::ReadWrite());
  cache_.Reset();
  Lookup(Vpn{0x1234});
  EXPECT_EQ(cache_.total_lines(), 1u) << "a linear walk reads one PTE slot";
}

TEST_F(LinearTest, EmptyLeafIsFreedAndLevelsUnwind) {
  table_.InsertBase(Vpn{0x100}, Ppn{1}, Attr::ReadWrite());
  EXPECT_TRUE(table_.RemoveBase(Vpn{0x100}));
  EXPECT_EQ(table_.SizeBytesPaperModel(), 0u);
  for (const auto count : table_.ActiveNodesPerLevel()) {
    EXPECT_EQ(count, 0u);
  }
}

TEST_F(LinearTest, ReplicatedSuperpageFillsSixteenSlots) {
  table_.InsertSuperpage(Vpn{0x4000}, kPage64K, Ppn{0x100}, Attr::ReadWrite());
  // All replicas live in one leaf: size is one page (+ upper levels).
  EXPECT_EQ(table_.ActiveNodesPerLevel()[0], 1u);
  EXPECT_EQ(table_.live_translations(), 16u);
  // Each slot returns the full superpage fill.
  const auto fill = Lookup(Vpn{0x400B});
  ASSERT_TRUE(fill.has_value());
  EXPECT_EQ(fill->kind, MappingKind::kSuperpage);
  EXPECT_EQ(fill->base_vpn, Vpn{0x4000});
}

TEST_F(LinearTest, SuperpageReplicasCannotShrinkTable) {
  // The paper's point: replication supports superpage TLBs but the linear
  // table stays the same size as with base PTEs.
  mem::CacheTouchModel cache(256);
  LinearPageTable base_only(cache, {});
  for (unsigned i = 0; i < 16; ++i) {
    base_only.InsertBase(Vpn{0x4000} + i, Ppn{0x100} + i, Attr::ReadWrite());
  }
  table_.InsertSuperpage(Vpn{0x4000}, kPage64K, Ppn{0x100}, Attr::ReadWrite());
  EXPECT_EQ(table_.SizeBytesPaperModel(), base_only.SizeBytesPaperModel());
}

// ---------------------------------------------------------------------------
// ForwardMappedPageTable
// ---------------------------------------------------------------------------

class ForwardTest : public ::testing::Test {
 protected:
  ForwardTest() : cache_(256), table_(cache_, {}) {}

  std::optional<TlbFill> Lookup(Vpn vpn) {
    mem::WalkScope scope(cache_);
    return table_.Lookup(VaOf(vpn));
  }

  mem::CacheTouchModel cache_;
  ForwardMappedPageTable table_;
};

TEST_F(ForwardTest, WalkTouchesSevenLines) {
  table_.InsertBase(Vpn{0x1234}, Ppn{0x9}, Attr::ReadWrite());
  cache_.Reset();
  Lookup(Vpn{0x1234});
  EXPECT_EQ(cache_.total_lines(), 7u) << "one PTP/PTE read per level";
}

TEST_F(ForwardTest, NodeSizesFollowLevelSplit) {
  table_.InsertBase(Vpn{0}, Ppn{1}, Attr::ReadWrite());
  // Leaf 256*8 + five 256*8 inner + one 16*8 root.
  EXPECT_EQ(table_.SizeBytesPaperModel(), 6u * 2048 + 128);
}

TEST_F(ForwardTest, LeavesCover256Pages) {
  table_.InsertBase(Vpn{0}, Ppn{1}, Attr::ReadWrite());
  table_.InsertBase(Vpn{255}, Ppn{2}, Attr::ReadWrite());
  EXPECT_EQ(table_.ActiveNodesPerLevel()[0], 1u);
  table_.InsertBase(Vpn{256}, Ppn{3}, Attr::ReadWrite());
  EXPECT_EQ(table_.ActiveNodesPerLevel()[0], 2u);
}

TEST_F(ForwardTest, TreeUnwindsOnRemoval) {
  table_.InsertBase(Vpn{0x1234}, Ppn{1}, Attr::ReadWrite());
  table_.InsertBase(Vpn{(1ull << 50) + 5}, Ppn{2}, Attr::ReadWrite());
  EXPECT_TRUE(table_.RemoveBase(Vpn{0x1234}));
  EXPECT_TRUE(table_.RemoveBase(Vpn{(1ull << 50) + 5}));
  EXPECT_EQ(table_.SizeBytesPaperModel(), 0u);
  for (const auto count : table_.ActiveNodesPerLevel()) {
    EXPECT_EQ(count, 0u);
  }
}

TEST_F(ForwardTest, IntermediateSuperpageShortCircuitsWalk) {
  mem::CacheTouchModel cache(256);
  ForwardMappedPageTable t(cache, {.intermediate_superpages = true});
  // A 1MB superpage (2^8 pages) matches a full leaf's coverage, so it can
  // live in the level-2 PTP slot.
  t.InsertSuperpage(Vpn{0x4000}, PageSize{8}, Ppn{0x1000}, Attr::ReadWrite());
  cache.Reset();
  {
    mem::WalkScope scope(cache);
    const auto fill = t.Lookup(VaOf(Vpn{0x4055}));
    ASSERT_TRUE(fill.has_value());
    EXPECT_EQ(fill->kind, MappingKind::kSuperpage);
    EXPECT_EQ(fill->Translate(Vpn{0x4055}), Ppn{0x1055});
  }
  EXPECT_EQ(cache.total_lines(), 6u) << "the walk stops one level early";
  EXPECT_EQ(t.ActiveNodesPerLevel()[0], 0u) << "no leaf node allocated";
  EXPECT_TRUE(t.RemoveSuperpage(Vpn{0x4000}, PageSize{8}));
  EXPECT_EQ(t.SizeBytesPaperModel(), 0u);
}

TEST_F(ForwardTest, NonLevelAlignedSuperpageStillReplicates) {
  mem::CacheTouchModel cache(256);
  ForwardMappedPageTable t(cache, {.intermediate_superpages = true});
  // 64KB (2^4 pages) matches no level boundary: falls back to replication.
  t.InsertSuperpage(Vpn{0x4000}, kPage64K, Ppn{0x100}, Attr::ReadWrite());
  EXPECT_EQ(t.ActiveNodesPerLevel()[0], 1u);
  mem::WalkScope scope(cache);
  EXPECT_TRUE(t.Lookup(VaOf(Vpn{0x4005})).has_value());
}

TEST_F(ForwardTest, LevelSplitCoversFiftyTwoBits) {
  unsigned total = 0;
  for (const unsigned bits : ForwardMappedPageTable::kLevelBits) {
    total += bits;
  }
  EXPECT_EQ(total, 52u);
}

}  // namespace
}  // namespace cpt::pt
