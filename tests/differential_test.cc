// Differential invariants across the whole simulator:
//   - the TLB's behaviour must be independent of the page-table choice
//     (same strategy => identical miss streams, Section 6.1's premise that
//     the normalization denominator "is independent of the page table type");
//   - runs are bit-for-bit deterministic;
//   - structural size identities hold between organizations.
#include <gtest/gtest.h>

#include "sim/experiments.h"
#include "sim/machine.h"
#include "workload/workload.h"

namespace cpt::sim {
namespace {

TEST(DifferentialTest, TlbMissesIndependentOfPageTableKind) {
  // Under the base-only strategy, every PT kind serves identical fills, so
  // the 64-entry TLB must miss identically.
  const auto& spec = workload::GetPaperWorkload("compress");
  std::uint64_t reference_misses = 0;
  for (const PtKind pt : {PtKind::kHashed, PtKind::kClustered, PtKind::kForward,
                          PtKind::kHashedSpIndex, PtKind::kClusteredAdaptive}) {
    MachineOptions opts;
    opts.pt_kind = pt;
    const auto m = MeasureAccessTime(spec, opts, 120000);
    if (reference_misses == 0) {
      reference_misses = m.denominator_misses;
    }
    EXPECT_EQ(m.denominator_misses, reference_misses) << ToString(pt);
  }
}

TEST(DifferentialTest, SuperpageTlbMissesIndependentOfSpCapableTables) {
  const auto& spec = workload::GetPaperWorkload("mp3d");
  std::uint64_t reference_misses = 0;
  for (const PtKind pt :
       {PtKind::kHashedMulti, PtKind::kClustered, PtKind::kLinear1, PtKind::kForward}) {
    MachineOptions opts;
    opts.pt_kind = pt;
    opts.tlb_kind = TlbKind::kSuperpage;
    const auto m = MeasureAccessTime(spec, opts, 120000);
    if (reference_misses == 0) {
      reference_misses = m.denominator_misses;
    }
    EXPECT_EQ(m.denominator_misses, reference_misses) << ToString(pt);
  }
}

TEST(DifferentialTest, RunsAreDeterministic) {
  const auto& spec = workload::GetPaperWorkload("coral");
  MachineOptions opts;
  opts.pt_kind = PtKind::kClustered;
  const auto a = MeasureAccessTime(spec, opts, 150000);
  const auto b = MeasureAccessTime(spec, opts, 150000);
  EXPECT_EQ(a.denominator_misses, b.denominator_misses);
  EXPECT_DOUBLE_EQ(a.avg_lines_per_miss, b.avg_lines_per_miss);
  EXPECT_EQ(a.pt_bytes, b.pt_bytes);
}

TEST(DifferentialTest, ClusteredSizeIdentityAgainstHashed) {
  // For any snapshot: clustered bytes = 144 * blocks, hashed = 24 * pages,
  // and blocks <= pages <= 16 * blocks.
  for (const auto& name : AllWorkloadNames()) {
    const auto& spec = workload::GetPaperWorkload(name);
    const auto hashed = MeasurePtSize(spec, {"h", PtKind::kHashed});
    const auto clustered = MeasurePtSize(spec, {"c", PtKind::kClustered});
    const std::uint64_t pages = hashed.bytes / 24;
    const std::uint64_t blocks = clustered.bytes / 144;
    EXPECT_LE(blocks, pages) << name;
    EXPECT_LE(pages, blocks * 16) << name;
  }
}

TEST(DifferentialTest, SwTlbNeverChangesTranslationResults) {
  // Wrapping any table in a software TLB must not change which pages
  // translate or to what — only the cost.
  const auto& spec = workload::GetPaperWorkload("compress");
  MachineOptions plain;
  plain.pt_kind = PtKind::kClustered;
  MachineOptions cached = plain;
  cached.swtlb_sets = 256;
  const auto a = MeasureAccessTime(spec, plain, 100000);
  const auto b = MeasureAccessTime(spec, cached, 100000);
  EXPECT_EQ(a.denominator_misses, b.denominator_misses);
  EXPECT_EQ(a.miss_ratio, b.miss_ratio);
}

TEST(DifferentialTest, PrefetchNeverIncreasesMisses) {
  // Section 4.4: prefetch cannot pollute, so misses with prefetch <= without.
  for (const char* name : {"coral", "mp3d", "fftpde"}) {
    const auto& spec = workload::GetPaperWorkload(name);
    MachineOptions with;
    with.pt_kind = PtKind::kClustered;
    with.tlb_kind = TlbKind::kCompleteSubblock;
    with.prefetch_on_block_miss = true;
    MachineOptions without = with;
    without.prefetch_on_block_miss = false;
    const auto a = MeasureAccessTime(spec, with, 150000);
    const auto b = MeasureAccessTime(spec, without, 150000);
    EXPECT_LE(a.denominator_misses, b.denominator_misses) << name;
    EXPECT_EQ(a.block_misses, b.block_misses) << name
        << ": prefetch only removes subblock misses";
  }
}

TEST(DifferentialTest, BlockMissesBoundedByBlockCount) {
  // A complete-subblock TLB's distinct tags cover all mapped blocks; with
  // prefetch, subblock misses only occur for pages faulted in after their
  // block's last block-miss — zero here because Preload precedes the trace.
  const auto& spec = workload::GetPaperWorkload("mp3d");
  MachineOptions opts;
  opts.pt_kind = PtKind::kClustered;
  opts.tlb_kind = TlbKind::kCompleteSubblock;
  const auto m = MeasureAccessTime(spec, opts, 150000);
  EXPECT_EQ(m.subblock_misses, 0u);
  EXPECT_EQ(m.block_misses, m.effective_misses);
}

}  // namespace
}  // namespace cpt::sim
