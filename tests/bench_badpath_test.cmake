# Script-mode ctest helper: runs a bench binary with a bad telemetry flag and
# requires BOTH a nonzero exit status and a stderr message matching EXPECT —
# a truncated or missing report must never look like success, and the error
# must name the problem (bench_flags.h's Die/DieLate contract).
#
# Invoked as:
#   cmake -DBENCH=<binary> "-DARG=<flag>" "-DEXPECT=<regex>" -P this_file
execute_process(
  COMMAND "${BENCH}" "${ARG}"
  RESULT_VARIABLE result
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(result EQUAL 0)
  message(FATAL_ERROR "expected a nonzero exit for '${ARG}', got 0")
endif()
if(NOT err MATCHES "${EXPECT}")
  message(FATAL_ERROR
          "stderr does not match '${EXPECT}' for '${ARG}'; got: ${err}")
endif()
message(STATUS "exit ${result}, message ok: ${err}")
