// Unit and property tests for the memory substrate: simulated-address
// allocator, physical frame pool, and the page-reservation allocator.
#include <gtest/gtest.h>

#include <set>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "mem/phys_mem.h"
#include "mem/reservation.h"
#include "mem/sim_alloc.h"

namespace cpt::mem {
namespace {

// ---------------------------------------------------------------------------
// SimAllocator
// ---------------------------------------------------------------------------

TEST(SimAllocatorTest, AllocationsAreLineAlignedByDefault) {
  SimAllocator a(256);
  for (int i = 0; i < 16; ++i) {
    const PhysAddr addr = a.Allocate(24);
    EXPECT_EQ(addr.raw() % 256, 0u) << "allocation " << i;
  }
}

TEST(SimAllocatorTest, PackedPlacementUsesEightByteAlignment) {
  SimAllocator a(256, NodePlacement::kPacked);
  const PhysAddr first = a.Allocate(24);
  const PhysAddr second = a.Allocate(24);
  EXPECT_EQ(first.raw() % 8, 0u);
  EXPECT_EQ(second - first, 24u) << "packed nodes are contiguous";
}

TEST(SimAllocatorTest, PageSizedAllocationsArePageAligned) {
  SimAllocator a(256);
  const PhysAddr addr = a.Allocate(kBasePageSize);
  EXPECT_EQ(addr.raw() % kBasePageSize, 0u);
}

TEST(SimAllocatorTest, LiveBytesTrackAllocateAndFree) {
  SimAllocator a(256);
  const PhysAddr p1 = a.Allocate(100);
  const PhysAddr p2 = a.Allocate(200);
  EXPECT_EQ(a.bytes_live(), 300u);
  a.Free(p1, 100);
  EXPECT_EQ(a.bytes_live(), 200u);
  a.Free(p2, 200);
  EXPECT_EQ(a.bytes_live(), 0u);
  EXPECT_EQ(a.high_water_bytes(), 300u);
}

TEST(SimAllocatorTest, FreedBlocksAreReused) {
  SimAllocator a(256);
  const PhysAddr p1 = a.Allocate(144);
  a.Free(p1, 144);
  const PhysAddr p2 = a.Allocate(144);
  EXPECT_EQ(p1, p2);
}

TEST(SimAllocatorTest, DistinctAllocatorsUseDisjointRegions) {
  SimAllocator a(256);
  SimAllocator b(256);
  const PhysAddr pa = a.Allocate(64);
  const PhysAddr pb = b.Allocate(64);
  EXPECT_NE(pa.raw() >> 44, pb.raw() >> 44) << "regions must not alias in the line model";
}

TEST(SimAllocatorTest, NeverReturnsNull) {
  SimAllocator a(64);
  for (int i = 0; i < 100; ++i) {
    EXPECT_NE(a.Allocate(8), PhysAddr{0});
  }
}

// Property: allocations of mixed sizes never overlap.
TEST(SimAllocatorPropertyTest, NoOverlappingAllocations) {
  SimAllocator a(128);
  Rng rng(42);
  struct Block {
    PhysAddr addr;
    std::uint64_t size;
  };
  std::vector<Block> live;
  for (int step = 0; step < 2000; ++step) {
    if (live.empty() || rng.Chance(0.6)) {
      const std::uint64_t size = 8 + rng.Below(300);
      const PhysAddr addr = a.Allocate(size);
      for (const Block& b : live) {
        EXPECT_FALSE(addr < b.addr + b.size && b.addr < addr + size)
            << "overlap at step " << step;
      }
      live.push_back({addr, size});
    } else {
      const std::size_t i = rng.Below(live.size());
      a.Free(live[i].addr, live[i].size);
      live[i] = live.back();
      live.pop_back();
    }
  }
}

// ---------------------------------------------------------------------------
// PhysicalMemory
// ---------------------------------------------------------------------------

TEST(PhysicalMemoryTest, AllocatesAllFramesExactlyOnce) {
  PhysicalMemory pm(64);
  std::set<Ppn> seen;
  for (int i = 0; i < 64; ++i) {
    auto f = pm.AllocFrame();
    ASSERT_TRUE(f.has_value());
    EXPECT_TRUE(seen.insert(*f).second) << "duplicate frame " << *f;
  }
  EXPECT_FALSE(pm.AllocFrame().has_value());
  EXPECT_EQ(pm.frames_free(), 0u);
}

TEST(PhysicalMemoryTest, FreeMakesFrameAvailableAgain) {
  PhysicalMemory pm(4);
  const Ppn a = *pm.AllocFrame();
  pm.FreeFrame(a);
  EXPECT_TRUE(pm.IsFree(a));
  EXPECT_EQ(pm.frames_free(), 4u);
}

TEST(PhysicalMemoryTest, AllocSpecificRespectsOccupancy) {
  PhysicalMemory pm(8);
  EXPECT_TRUE(pm.AllocSpecific(Ppn{5}));
  EXPECT_FALSE(pm.AllocSpecific(Ppn{5}));
  pm.FreeFrame(Ppn{5});
  EXPECT_TRUE(pm.AllocSpecific(Ppn{5}));
}

// ---------------------------------------------------------------------------
// ReservationAllocator
// ---------------------------------------------------------------------------

TEST(ReservationTest, FirstTouchReservesAlignedBlock) {
  ReservationAllocator ra(256, 16);
  const auto g = ra.Allocate(/*block_key=*/1, /*boff=*/5);
  ASSERT_TRUE(g.has_value());
  EXPECT_TRUE(g->properly_placed);
  EXPECT_EQ(g->ppn.raw() % 16, 5u) << "frame must sit at its block offset";
}

TEST(ReservationTest, SameBlockGetsMatchingSlots) {
  ReservationAllocator ra(256, 16);
  const Ppn base = ra.Allocate(7, 0)->ppn;
  for (unsigned boff = 1; boff < 16; ++boff) {
    const auto g = ra.Allocate(7, boff);
    ASSERT_TRUE(g.has_value());
    EXPECT_TRUE(g->properly_placed);
    EXPECT_EQ(g->ppn, base + boff);
  }
}

TEST(ReservationTest, DistinctBlocksGetDistinctGroups) {
  ReservationAllocator ra(256, 16);
  const Ppn a = ra.Allocate(1, 0)->ppn;
  const Ppn b = ra.Allocate(2, 0)->ppn;
  EXPECT_NE(a.raw() / 16, b.raw() / 16);
}

TEST(ReservationTest, PressureBreaksReservationsButStillAllocates) {
  // 2 groups of 4 frames; reserve both, then demand more single frames.
  ReservationAllocator ra(8, 4);
  ASSERT_TRUE(ra.Allocate(1, 0));  // Reserves group A (3 slots unused).
  ASSERT_TRUE(ra.Allocate(2, 0));  // Reserves group B (3 slots unused).
  // Six more single-page blocks: must break the reservations.
  unsigned placed = 0;
  for (int i = 0; i < 6; ++i) {
    const auto g = ra.Allocate(100 + i, 0);
    ASSERT_TRUE(g.has_value()) << "frame " << i;
    placed += g->properly_placed ? 1 : 0;
  }
  EXPECT_EQ(placed, 0u) << "pressure allocations are not properly placed";
  EXPECT_EQ(ra.frames_used(), 8u);
  EXPECT_FALSE(ra.Allocate(200, 0).has_value()) << "memory exhausted";
  EXPECT_GE(ra.reservations_broken(), 2u);
}

TEST(ReservationTest, FreeReturnsFramesForReuse) {
  ReservationAllocator ra(16, 4);
  std::vector<Ppn> got;
  for (unsigned k = 0; k < 4; ++k) {
    got.push_back(ra.Allocate(k, 0)->ppn);
  }
  for (const Ppn p : got) {
    ra.Free(p);
  }
  EXPECT_EQ(ra.frames_used(), 0u);
  // Everything can be reallocated, properly placed again.
  for (unsigned k = 10; k < 14; ++k) {
    const auto g = ra.Allocate(k, 3);
    ASSERT_TRUE(g.has_value());
    EXPECT_TRUE(g->properly_placed);
  }
}

TEST(ReservationTest, FullyFreedReservedGroupBecomesFreeAgain) {
  ReservationAllocator ra(8, 4);
  const Ppn a = ra.Allocate(1, 2)->ppn;
  ra.Free(a);
  // The group must be reusable for a different block with full placement.
  const auto g1 = ra.Allocate(2, 0);
  const auto g2 = ra.Allocate(3, 0);
  ASSERT_TRUE(g1 && g2);
  EXPECT_TRUE(g1->properly_placed);
  EXPECT_TRUE(g2->properly_placed);
}

TEST(ReservationTest, PlacementStatsAccumulate) {
  ReservationAllocator ra(64, 16);
  for (unsigned boff = 0; boff < 16; ++boff) {
    ra.Allocate(5, boff);
  }
  EXPECT_EQ(ra.grants(), 16u);
  EXPECT_EQ(ra.properly_placed_grants(), 16u);
  EXPECT_EQ(ra.reservations_made(), 1u);
}

// Property: no frame is ever granted twice while in use, under a random
// mix of allocations and frees with heavy memory pressure.
TEST(ReservationPropertyTest, NoDoubleGrantsUnderPressure) {
  ReservationAllocator ra(128, 8);
  Rng rng(99);
  struct Owner {
    std::uint64_t key;
    unsigned boff;
  };
  std::unordered_map<Ppn, Owner> in_use;                        // ppn -> (key, boff)
  std::unordered_map<std::uint64_t, std::uint32_t> block_masks;  // key -> allocated boffs
  for (int step = 0; step < 5000; ++step) {
    if (rng.Chance(0.55)) {
      const std::uint64_t key = rng.Below(40);
      const unsigned boff = static_cast<unsigned>(rng.Below(8));
      if (block_masks[key] & (1u << boff)) {
        continue;  // Already allocated (the API forbids double-alloc).
      }
      const auto g = ra.Allocate(key, boff);
      if (!g.has_value()) {
        EXPECT_EQ(ra.frames_free(), 0u) << "refusal only when truly full";
        continue;
      }
      EXPECT_EQ(in_use.count(g->ppn), 0u) << "double grant at step " << step;
      if (g->properly_placed) {
        EXPECT_EQ(g->ppn.raw() % 8, boff);
      }
      in_use[g->ppn] = Owner{key, boff};
      block_masks[key] |= 1u << boff;
    } else if (!in_use.empty()) {
      auto it = in_use.begin();
      std::advance(it, rng.Below(in_use.size()));
      ra.Free(it->first);
      block_masks[it->second.key] &= ~(1u << it->second.boff);
      in_use.erase(it);
    }
    EXPECT_EQ(ra.frames_used(), in_use.size());
  }
}

TEST(ReservationTest, SubblockFactorAccessor) {
  ReservationAllocator ra(64, 4);
  EXPECT_EQ(ra.subblock_factor(), 4u);
  EXPECT_EQ(ra.num_frames(), 64u);
}

TEST(ReservationTest, RoundsDownToWholeBlocks) {
  ReservationAllocator ra(19, 4);  // 19 frames -> 4 groups of 4.
  EXPECT_EQ(ra.num_frames(), 16u);
}

}  // namespace
}  // namespace cpt::mem
