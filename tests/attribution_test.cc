// Tests for obs layer two: the attribution tracer (per-dimension lines/miss
// breakdown), the TeeTracer fan-out, the Perfetto exporter, and the
// end-to-end reconciliation guarantee the bench regression gate relies on —
// that every attribution dimension's lines sum to the numerator of the
// headline cache-lines-per-miss figure.
#include <gtest/gtest.h>

#include <cctype>
#include <cstddef>
#include <cstdint>
#include <sstream>
#include <string>
#include <string_view>

#include "obs/attribution.h"
#include "obs/json_writer.h"
#include "obs/metrics.h"
#include "obs/perfetto.h"
#include "obs/trace.h"
#include "sim/experiments.h"
#include "sim/machine.h"
#include "workload/workload.h"

namespace cpt::obs {
namespace {

// --- Minimal JSON well-formedness validator ------------------------------
//
// Recursive-descent parser over the JSON grammar; accepts iff the whole
// input is exactly one valid JSON value.  Enough to certify that the
// Perfetto exporter's output would load in a real parser, with no JSON
// library dependency.
class MiniJson {
 public:
  explicit MiniJson(std::string_view text) : text_(text) {}

  bool Valid() {
    SkipWs();
    if (!Value()) {
      return false;
    }
    SkipWs();
    return pos_ == text_.size();
  }

 private:
  bool Value() {
    if (pos_ >= text_.size()) {
      return false;
    }
    switch (text_[pos_]) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }

  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      if (!String()) {
        return false;
      }
      SkipWs();
      if (Peek() != ':') {
        return false;
      }
      ++pos_;
      SkipWs();
      if (!Value()) {
        return false;
      }
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (Peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      if (!Value()) {
        return false;
      }
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool String() {
    if (Peek() != '"') {
      return false;
    }
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) {
          return false;
        }
        const char esc = text_[pos_];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= text_.size() || std::isxdigit(static_cast<unsigned char>(text_[pos_])) == 0) {
              return false;
            }
          }
        } else if (std::string_view("\"\\/bfnrt").find(esc) == std::string_view::npos) {
          return false;
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return false;  // Raw control characters are invalid inside strings.
      }
      ++pos_;
    }
    return false;
  }

  bool Number() {
    const std::size_t start = pos_;
    if (Peek() == '-') {
      ++pos_;
    }
    if (std::isdigit(static_cast<unsigned char>(Peek())) == 0) {
      return false;
    }
    while (std::isdigit(static_cast<unsigned char>(Peek())) != 0) {
      ++pos_;
    }
    if (Peek() == '.') {
      ++pos_;
      if (std::isdigit(static_cast<unsigned char>(Peek())) == 0) {
        return false;
      }
      while (std::isdigit(static_cast<unsigned char>(Peek())) != 0) {
        ++pos_;
      }
    }
    if (Peek() == 'e' || Peek() == 'E') {
      ++pos_;
      if (Peek() == '+' || Peek() == '-') {
        ++pos_;
      }
      if (std::isdigit(static_cast<unsigned char>(Peek())) == 0) {
        return false;
      }
      while (std::isdigit(static_cast<unsigned char>(Peek())) != 0) {
        ++pos_;
      }
    }
    return pos_ > start;
  }

  bool Literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) {
      return false;
    }
    pos_ += word.size();
    return true;
  }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

TEST(MiniJsonTest, AcceptsValidRejectsInvalid) {
  EXPECT_TRUE(MiniJson(R"({"a":[1,2.5,-3e2],"b":{"c":"x\n"},"d":null})").Valid());
  EXPECT_FALSE(MiniJson(R"({"a":1)").Valid());
  EXPECT_FALSE(MiniJson(R"([1,])").Valid());
  EXPECT_FALSE(MiniJson("{} trailing").Valid());
}

// --- SegmentMap ----------------------------------------------------------

TEST(SegmentMapTest, ClassifiesPerAsidRanges) {
  SegmentMap map;
  map.Add(0, Vpn{100}, Vpn{200}, SegmentClass::kText);
  map.Add(0, Vpn{500}, Vpn{600}, SegmentClass::kHeap);
  map.Add(1, Vpn{100}, Vpn{200}, SegmentClass::kStack);
  EXPECT_EQ(map.Classify(0, Vpn{100}), SegmentClass::kText);
  EXPECT_EQ(map.Classify(0, Vpn{199}), SegmentClass::kText);
  EXPECT_EQ(map.Classify(0, Vpn{200}), SegmentClass::kUnknown) << "end is exclusive";
  EXPECT_EQ(map.Classify(0, Vpn{550}), SegmentClass::kHeap);
  EXPECT_EQ(map.Classify(1, Vpn{150}), SegmentClass::kStack);
  EXPECT_EQ(map.Classify(2, Vpn{150}), SegmentClass::kUnknown);
  EXPECT_EQ(map.Classify(0, Vpn{50}), SegmentClass::kUnknown);
}

TEST(SegmentMapTest, EmptyMapClassifiesEverythingUnknown) {
  SegmentMap map;
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.Classify(0, Vpn{0}), SegmentClass::kUnknown);
}

// --- TeeTracer -----------------------------------------------------------

TEST(TeeTracerTest, FansOutToEverySinkIgnoringNull) {
  RingBufferTracer a(8);
  RingBufferTracer b(8);
  TeeTracer tee{&a, nullptr, &b};
  EXPECT_EQ(tee.size(), 2u);
  tee.Record({.kind = EventKind::kTlbMiss, .vpn = Vpn{1}});
  tee.Record({.kind = EventKind::kWalkEnd, .vpn = Vpn{1}, .lines = 2});
  EXPECT_EQ(a.total_recorded(), 2u);
  EXPECT_EQ(b.total_recorded(), 2u);
  EXPECT_EQ(a.counts()[EventKind::kWalkEnd], 1u);
}

// --- AttributionTracer: synthetic event streams --------------------------

WalkEvent Miss(std::uint16_t asid, std::uint64_t vpn) {
  return {.kind = EventKind::kTlbMiss, .asid = asid, .vpn = Vpn{vpn}};
}
WalkEvent Step(std::uint64_t vpn, std::uint32_t step) {
  return {.kind = EventKind::kWalkStep, .vpn = Vpn{vpn}, .step = step, .lines = step};
}
WalkEvent Hit(std::uint64_t vpn, WalkHitClass cls, unsigned pages_log2 = 0) {
  return {.kind = EventKind::kWalkHit, .vpn = Vpn{vpn},
          .value = EncodeWalkHitClass(cls, pages_log2)};
}
WalkEvent End(std::uint64_t vpn, std::uint32_t lines) {
  return {.kind = EventKind::kWalkEnd, .vpn = Vpn{vpn}, .lines = lines};
}

TEST(AttributionTracerTest, PlainWalkLandsInAllThreeDimensions) {
  SegmentMap map;
  map.Add(0, Vpn{0x100}, Vpn{0x200}, SegmentClass::kHeap);
  AttributionTracer attr(&map);
  attr.Record(Miss(0, 0x150));
  attr.Record(Step(0x150, 1));
  attr.Record(Step(0x150, 2));
  attr.Record(Hit(0x150, WalkHitClass::kBase));
  attr.Record(End(0x150, 3));
  AttributionResult r = attr.Result();
  EXPECT_EQ(r.walks, 1u);
  EXPECT_EQ(r.lines, 3u);
  EXPECT_EQ(r.steps, 2u);
  ASSERT_EQ(r.by_segment.size(), 1u);
  EXPECT_EQ(r.by_segment[0].label, "heap");
  EXPECT_EQ(r.by_segment[0].lines, 3u);
  ASSERT_EQ(r.by_page_class.size(), 1u);
  EXPECT_EQ(r.by_page_class[0].label, "base");
  ASSERT_EQ(r.by_outcome.size(), 1u);
  EXPECT_EQ(r.by_outcome[0].label, "hit@2");
}

TEST(AttributionTracerTest, FaultedServiceCountsOnceAsFaultOutcome) {
  AttributionTracer attr;
  attr.Record(Miss(0, 7));
  attr.Record(Step(7, 1));
  attr.Record({.kind = EventKind::kWalkAbort, .vpn = Vpn{7}});
  attr.Record({.kind = EventKind::kPageFault, .vpn = Vpn{7}});
  attr.Record(Step(7, 2));
  attr.Record(Hit(7, WalkHitClass::kBase));
  attr.Record(End(7, 2));
  AttributionResult r = attr.Result();
  EXPECT_EQ(r.walks, 1u) << "one service, not one per walk attempt";
  ASSERT_EQ(r.by_outcome.size(), 1u);
  EXPECT_EQ(r.by_outcome[0].label, "fault");
  ASSERT_EQ(r.by_page_class.size(), 1u);
  EXPECT_EQ(r.by_page_class[0].label, "base") << "hit class still attributed";
}

TEST(AttributionTracerTest, BlockPrefetchMarkerCommitsLazily) {
  AttributionTracer attr;
  attr.Record({.kind = EventKind::kTlbBlockMiss, .vpn = Vpn{16}});
  attr.Record(Step(16, 1));
  attr.Record(End(16, 4));
  // The complete-subblock path publishes the prefetch marker *after* the
  // walk ends; it must re-label the walk it follows.
  attr.Record({.kind = EventKind::kBlockPrefetch, .vpn = Vpn{16}, .value = 4});
  AttributionResult r = attr.Result();
  EXPECT_EQ(r.walks, 1u);
  ASSERT_EQ(r.by_page_class.size(), 1u);
  EXPECT_EQ(r.by_page_class[0].label, "block");
  ASSERT_EQ(r.by_outcome.size(), 1u);
  EXPECT_EQ(r.by_outcome[0].label, "prefetch");
}

TEST(AttributionTracerTest, SwTlbHitIsZeroStepOutcome) {
  AttributionTracer attr;
  attr.Record(Miss(0, 9));
  attr.Record(Hit(9, WalkHitClass::kSwTlb));
  attr.Record(End(9, 1));
  AttributionResult r = attr.Result();
  ASSERT_EQ(r.by_outcome.size(), 1u);
  EXPECT_EQ(r.by_outcome[0].label, "swtlb");
  ASSERT_EQ(r.by_page_class.size(), 1u);
  EXPECT_EQ(r.by_page_class[0].label, "swtlb");
}

TEST(AttributionTracerTest, DeepChainHitOverflows) {
  AttributionTracer attr;
  attr.Record(Miss(0, 5));
  for (std::uint32_t s = 1; s <= 9; ++s) {
    attr.Record(Step(5, s));
  }
  attr.Record(Hit(5, WalkHitClass::kBase));
  attr.Record(End(5, 9));
  AttributionResult r = attr.Result();
  ASSERT_EQ(r.by_outcome.size(), 1u);
  EXPECT_EQ(r.by_outcome[0].label, "overflow");
}

TEST(AttributionTracerTest, EventsOutsideAServiceAreUncounted) {
  AttributionTracer attr;
  // Reference-TLB refills and PeekAttr probes walk without a preceding miss
  // event; they must not pollute the breakdown.
  attr.Record(Step(1, 1));
  attr.Record(End(1, 1));
  attr.Record({.kind = EventKind::kWalkAbort, .vpn = Vpn{2}});
  AttributionResult r = attr.Result();
  EXPECT_TRUE(r.empty());
  EXPECT_EQ(r.walks, 0u);
}

TEST(AttributionTracerTest, ForwardsEveryEventDownstream) {
  RingBufferTracer ring(16);
  AttributionTracer attr(nullptr, &ring);
  attr.Record(Miss(0, 1));
  attr.Record(Step(1, 1));
  attr.Record(End(1, 1));
  attr.Record({.kind = EventKind::kBlockPrefetch, .vpn = Vpn{1}});
  attr.Record({.kind = EventKind::kSwTlbMiss, .vpn = Vpn{2}});
  EXPECT_EQ(ring.total_recorded(), 5u);
  EXPECT_EQ(ring.counts()[EventKind::kBlockPrefetch], 1u);
}

TEST(AttributionTracerTest, EveryDimensionSumsToTheTotals) {
  SegmentMap map;
  map.Add(0, Vpn{0}, Vpn{100}, SegmentClass::kText);
  map.Add(1, Vpn{0}, Vpn{100}, SegmentClass::kHeap);
  AttributionTracer attr(&map);
  // A mix: plain hits at different depths, a fault, a block prefetch, and
  // an out-of-map VPN.
  attr.Record(Miss(0, 10));
  attr.Record(Step(10, 1));
  attr.Record(Hit(10, WalkHitClass::kBase));
  attr.Record(End(10, 1));
  attr.Record(Miss(1, 20));
  attr.Record(Step(20, 1));
  attr.Record(Step(20, 2));
  attr.Record(Hit(20, WalkHitClass::kSuperpage, 6));
  attr.Record(End(20, 2));
  attr.Record(Miss(0, 5000));  // Unknown segment.
  attr.Record(Step(5000, 1));
  attr.Record({.kind = EventKind::kWalkAbort, .vpn = Vpn{5000}});
  attr.Record(Step(5000, 1));
  attr.Record(Hit(5000, WalkHitClass::kBase));
  attr.Record(End(5000, 5));
  attr.Record({.kind = EventKind::kTlbBlockMiss, .asid = 1, .vpn = Vpn{32}});
  attr.Record(Step(32, 1));
  attr.Record(End(32, 4));
  attr.Record({.kind = EventKind::kBlockPrefetch, .vpn = Vpn{32}, .value = 4});
  AttributionResult r = attr.Result();
  EXPECT_EQ(r.walks, 4u);
  EXPECT_EQ(r.lines, 12u);
  for (const auto* dim : {&r.by_segment, &r.by_page_class, &r.by_outcome}) {
    std::uint64_t walks = 0;
    std::uint64_t lines = 0;
    for (const AttributionCell& c : *dim) {
      walks += c.walks;
      lines += c.lines;
    }
    EXPECT_EQ(walks, r.walks);
    EXPECT_EQ(lines, r.lines);
  }
}

TEST(AttributionTracerTest, ToJsonAndExportToEmitEveryCell) {
  SegmentMap map;
  map.Add(0, Vpn{0}, Vpn{100}, SegmentClass::kData);
  AttributionTracer attr(&map);
  attr.Record(Miss(0, 1));
  attr.Record(Step(1, 1));
  attr.Record(Hit(1, WalkHitClass::kBase));
  attr.Record(End(1, 2));
  const AttributionResult r = attr.Result();

  std::ostringstream os;
  {
    JsonWriter w(os, /*pretty=*/false);
    ToJson(w, r);
    EXPECT_TRUE(w.Complete());
  }
  EXPECT_TRUE(MiniJson(os.str()).Valid());
  EXPECT_NE(os.str().find("\"by_segment\""), std::string::npos);
  EXPECT_NE(os.str().find("\"data\""), std::string::npos);

  MetricRegistry reg;
  ExportTo(reg, r, {{"workload", "unit"}});
  // 3 dimensions x 1 cell x 2 instruments.
  EXPECT_EQ(reg.size(), 6u);
  EXPECT_EQ(reg.Counter("attribution_lines", {{"workload", "unit"},
                                              {"dim", "segment"},
                                              {"value", "data"}}),
            2u);
}

// --- PerfettoExporter ----------------------------------------------------

TEST(PerfettoExporterTest, EmitsWellFormedChromeTraceJson) {
  std::ostringstream os;
  {
    PerfettoExporter exporter(os);
    exporter.BeginSection("access series/workload");
    exporter.Record(Miss(0, 0x42));
    exporter.Record(Step(0x42, 1));
    exporter.Record(Hit(0x42, WalkHitClass::kBase));
    exporter.Record(End(0x42, 2));
    exporter.Record({.kind = EventKind::kPageFault, .vpn = Vpn{0x43}});
    exporter.Record({.kind = EventKind::kPtePromotion, .vpn = Vpn{0x43}, .value = 64});
    exporter.Record({.kind = EventKind::kReservationGrant, .vpn = Vpn{0x44}, .value = 1});
    exporter.Record({.kind = EventKind::kSwTlbHit, .vpn = Vpn{0x45}});
    exporter.Record({.kind = EventKind::kBlockPrefetch, .vpn = Vpn{0x46}, .value = 3});
    exporter.Finish();
    EXPECT_GT(exporter.events_written(), 0u);
    EXPECT_EQ(exporter.events_dropped(), 0u);
  }
  const std::string out = os.str();
  EXPECT_TRUE(MiniJson(out).Valid()) << out;
  EXPECT_NE(out.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(out.find("\"ph\":\"X\""), std::string::npos) << "walk slice present";
  EXPECT_NE(out.find("\"trace_end\""), std::string::npos);
  // One thread-name metadata record per track.
  EXPECT_NE(out.find("\"thread_name\""), std::string::npos);
}

TEST(PerfettoExporterTest, BudgetDropsEventsButStaysWellFormed) {
  std::ostringstream os;
  std::uint64_t dropped = 0;
  {
    PerfettoExporter::Options opts;
    opts.max_events = 4;
    PerfettoExporter exporter(os, opts);
    for (int i = 0; i < 50; ++i) {
      exporter.Record(Miss(0, static_cast<std::uint64_t>(i)));
      exporter.Record(End(static_cast<std::uint64_t>(i), 1));
    }
    exporter.Finish();
    dropped = exporter.events_dropped();
    EXPECT_LE(exporter.events_written(), 4u + 1u /* trace_end */);
  }
  EXPECT_GT(dropped, 0u);
  EXPECT_TRUE(MiniJson(os.str()).Valid()) << os.str();
  EXPECT_NE(os.str().find("\"events_dropped\""), std::string::npos);
}

TEST(PerfettoExporterTest, DestructorFinishesTheDocument) {
  std::ostringstream os;
  {
    PerfettoExporter exporter(os);
    exporter.Record(Miss(0, 1));
    exporter.Record(End(1, 1));
    // No explicit Finish(): the destructor must close the JSON.
  }
  EXPECT_TRUE(MiniJson(os.str()).Valid());
}

// --- End-to-end reconciliation (the acceptance-criteria assertion) -------

class AttributionReconciliationTest : public ::testing::TestWithParam<sim::PtKind> {};

TEST_P(AttributionReconciliationTest, DimensionLinesSumToHeadlineNumerator) {
  const workload::WorkloadSpec& spec = workload::GetPaperWorkload("compress");
  sim::MachineOptions opts;
  opts.pt_kind = GetParam();
  sim::MeasureHooks hooks;
  hooks.collect = true;
  const sim::AccessMeasurement m =
      sim::MeasureAccessTime(spec, opts, /*trace_len=*/30'000, hooks);
  ASSERT_TRUE(m.telemetry_valid);
  const AttributionResult& r = m.attribution;
  ASSERT_GT(r.walks, 0u);

  // Each dimension partitions the counted walks.
  for (const auto* dim : {&r.by_segment, &r.by_page_class, &r.by_outcome}) {
    std::uint64_t walks = 0;
    std::uint64_t lines = 0;
    for (const AttributionCell& c : *dim) {
      walks += c.walks;
      lines += c.lines;
    }
    EXPECT_EQ(walks, r.walks);
    EXPECT_EQ(lines, r.lines);
  }

  // One committed walk per effective-TLB miss.  Linear organizations
  // normalize against a full-size *reference* TLB (Section 6.1) while walks
  // service the smaller effective TLB (entries reserved for the table), so
  // only there do walks and the denominator diverge.
  EXPECT_EQ(r.walks, m.effective_misses);
  if (GetParam() != sim::PtKind::kLinear6) {
    EXPECT_EQ(r.walks, m.denominator_misses);
  }
  // The lines total is exactly the numerator of the headline figure.
  EXPECT_DOUBLE_EQ(m.avg_lines_per_miss,
                   static_cast<double>(r.lines) /
                       static_cast<double>(m.denominator_misses));

  // With per-process page tables every classified walk lands in a real
  // segment: the workload only touches mapped segment pages.
  for (const AttributionCell& c : r.by_segment) {
    EXPECT_NE(c.label, "unknown");
  }
}

INSTANTIATE_TEST_SUITE_P(AllOrganizations, AttributionReconciliationTest,
                         ::testing::Values(sim::PtKind::kHashed, sim::PtKind::kClustered,
                                           sim::PtKind::kForward, sim::PtKind::kLinear6,
                                           sim::PtKind::kHashedMulti,
                                           sim::PtKind::kClusteredAdaptive),
                         [](const ::testing::TestParamInfo<sim::PtKind>& pi) {
                           std::string name = sim::ToString(pi.param);
                           for (char& c : name) {
                             if (std::isalnum(static_cast<unsigned char>(c)) == 0) {
                               c = '_';
                             }
                           }
                           return name;
                         });

TEST(AttributionReconciliationTest, CompleteSubblockTlbReconciles) {
  const workload::WorkloadSpec& spec = workload::GetPaperWorkload("compress");
  sim::MachineOptions opts;
  opts.pt_kind = sim::PtKind::kClustered;
  opts.tlb_kind = sim::TlbKind::kCompleteSubblock;
  sim::MeasureHooks hooks;
  hooks.collect = true;
  const sim::AccessMeasurement m =
      sim::MeasureAccessTime(spec, opts, /*trace_len=*/30'000, hooks);
  ASSERT_TRUE(m.telemetry_valid);
  const AttributionResult& r = m.attribution;
  ASSERT_GT(r.walks, 0u);
  for (const auto* dim : {&r.by_segment, &r.by_page_class, &r.by_outcome}) {
    std::uint64_t lines = 0;
    for (const AttributionCell& c : *dim) {
      lines += c.lines;
    }
    EXPECT_EQ(lines, r.lines);
  }
  EXPECT_EQ(r.walks, m.denominator_misses);
  EXPECT_DOUBLE_EQ(m.avg_lines_per_miss,
                   static_cast<double>(r.lines) /
                       static_cast<double>(m.denominator_misses));
  // Block prefetches must show up as their own page class.
  bool saw_block = false;
  for (const AttributionCell& c : r.by_page_class) {
    saw_block |= c.label == "block";
  }
  EXPECT_TRUE(saw_block);
}

TEST(AttributionReconciliationTest, SoftwareTlbHitsAreAttributed) {
  const workload::WorkloadSpec& spec = workload::GetPaperWorkload("compress");
  sim::MachineOptions opts;
  opts.pt_kind = sim::PtKind::kHashed;
  opts.swtlb_sets = 256;
  sim::MeasureHooks hooks;
  hooks.collect = true;
  const sim::AccessMeasurement m =
      sim::MeasureAccessTime(spec, opts, /*trace_len=*/30'000, hooks);
  ASSERT_TRUE(m.telemetry_valid);
  EXPECT_EQ(m.attribution.walks, m.denominator_misses);
  bool saw_swtlb = false;
  for (const AttributionCell& c : m.attribution.by_outcome) {
    saw_swtlb |= c.label == "swtlb";
  }
  EXPECT_TRUE(saw_swtlb) << "TSB hits should land in the swtlb outcome";
}

}  // namespace
}  // namespace cpt::obs
