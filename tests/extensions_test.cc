// Tests for the paper's Section 2/3/7 extensions: the software TLB (TSB)
// layer with base and clustered entries, the inverted hashed organization,
// and the adaptive (varying-subblock-factor) clustered table.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/adaptive.h"
#include "core/clustered.h"
#include "mem/cache_model.h"
#include "pt/hashed.h"
#include "pt/software_tlb.h"
#include "sim/experiments.h"

namespace cpt {
namespace {

// ---------------------------------------------------------------------------
// SoftwareTlb
// ---------------------------------------------------------------------------

class SwTlbTest : public ::testing::Test {
 protected:
  SwTlbTest() : cache_(256) {}

  std::unique_ptr<pt::SoftwareTlb> Make(bool clustered_entries) {
    auto backing = std::make_unique<pt::HashedPageTable>(cache_, pt::HashedPageTable::Options{});
    return std::make_unique<pt::SoftwareTlb>(
        cache_, std::move(backing),
        pt::SoftwareTlb::Options{.num_sets = 64,
                                 .ways = 2,
                                 .clustered_entries = clustered_entries});
  }

  std::optional<pt::TlbFill> Lookup(pt::PageTable& t, Vpn vpn) {
    mem::WalkScope scope(cache_);
    return t.Lookup(VaOf(vpn));
  }

  mem::CacheTouchModel cache_;
};

TEST_F(SwTlbTest, SecondLookupHitsTheCache) {
  auto t = Make(false);
  t->InsertBase(Vpn{0x1234}, Ppn{0x9}, Attr::ReadWrite());
  ASSERT_TRUE(Lookup(*t, Vpn{0x1234}).has_value());
  EXPECT_EQ(t->probe_misses(), 1u);
  ASSERT_TRUE(Lookup(*t, Vpn{0x1234}).has_value());
  EXPECT_EQ(t->probe_hits(), 1u);
}

TEST_F(SwTlbTest, CacheHitCostsOneLine) {
  auto t = Make(false);
  t->InsertBase(Vpn{0x1234}, Ppn{0x9}, Attr::ReadWrite());
  Lookup(*t, Vpn{0x1234});  // Fill.
  cache_.Reset();
  Lookup(*t, Vpn{0x1234});  // Hit.
  EXPECT_EQ(cache_.total_lines(), 1u) << "a software TLB hit is one memory access";
}

TEST_F(SwTlbTest, MissPaysProbePlusBackingWalk) {
  auto t = Make(false);
  t->InsertBase(Vpn{0x1234}, Ppn{0x9}, Attr::ReadWrite());
  cache_.Reset();
  Lookup(*t, Vpn{0x1234});  // Probe misses, backing walk runs.
  EXPECT_GE(cache_.total_lines(), 2u);
}

TEST_F(SwTlbTest, TranslationsComeFromBacking) {
  auto t = Make(false);
  t->InsertBase(Vpn{0x42}, Ppn{0x7}, Attr::ReadWrite());
  const auto fill = Lookup(*t, Vpn{0x42});
  ASSERT_TRUE(fill.has_value());
  EXPECT_EQ(fill->Translate(Vpn{0x42}), Ppn{0x7});
  EXPECT_EQ(t->live_translations(), 1u);
}

TEST_F(SwTlbTest, UpdatesInvalidateCachedEntries) {
  auto t = Make(false);
  t->InsertBase(Vpn{0x100}, Ppn{0x1}, Attr::ReadWrite());
  Lookup(*t, Vpn{0x100});  // Cache it.
  t->InsertBase(Vpn{0x100}, Ppn{0x2}, Attr::ReadWrite());
  const auto fill = Lookup(*t, Vpn{0x100});
  ASSERT_TRUE(fill.has_value());
  EXPECT_EQ(fill->Translate(Vpn{0x100}), Ppn{0x2}) << "stale slot must have been invalidated";
  t->RemoveBase(Vpn{0x100});
  EXPECT_FALSE(Lookup(*t, Vpn{0x100}).has_value());
}

TEST_F(SwTlbTest, ClusteredEntriesHitOnNeighborPages) {
  auto base = Make(false);
  auto clustered = Make(true);
  for (unsigned i = 0; i < 16; ++i) {
    base->InsertBase(Vpn{0x200} + i, Ppn{i}, Attr::ReadWrite());
    clustered->InsertBase(Vpn{0x200} + i, Ppn{i}, Attr::ReadWrite());
  }
  // Touch page 0 of the block, then page 5.
  Lookup(*base, Vpn{0x200});
  Lookup(*clustered, Vpn{0x200});
  const auto base_misses = base->probe_misses();
  const auto clust_misses = clustered->probe_misses();
  Lookup(*base, Vpn{0x205});
  Lookup(*clustered, Vpn{0x205});
  EXPECT_EQ(base->probe_misses(), base_misses + 1) << "base entry covers one page";
  EXPECT_EQ(clustered->probe_misses(), clust_misses) << "clustered entry covers the block";
}

TEST_F(SwTlbTest, SizeIncludesPreallocatedArray) {
  auto t = Make(false);
  // 64 sets * 2 ways * 16B = 2048, plus backing bytes.
  EXPECT_EQ(t->SizeBytesPaperModel(), 2048u);
  t->InsertBase(Vpn{1}, Ppn{1}, Attr::ReadWrite());
  EXPECT_EQ(t->SizeBytesPaperModel(), 2048u + 24u);
}

TEST_F(SwTlbTest, SuperpageInvalidationCoversWholeRange) {
  auto backing = std::make_unique<pt::HashedPageTable>(cache_, pt::HashedPageTable::Options{});
  // Note: a plain hashed backing cannot store superpages, so use base pages
  // through the decorator and verify range invalidation via ProtectRange.
  auto t = Make(false);
  for (unsigned i = 0; i < 4; ++i) {
    t->InsertBase(Vpn{0x300} + i, Ppn{i}, Attr::ReadWrite());
    Lookup(*t, Vpn{0x300} + i);  // Cache them all.
  }
  t->ProtectRange(Vpn{0x300}, 4, Attr::ReadOnly());
  for (unsigned i = 0; i < 4; ++i) {
    const auto fill = Lookup(*t, Vpn{0x300} + i);
    ASSERT_TRUE(fill.has_value());
    EXPECT_EQ(fill->word.attr(), Attr::ReadOnly()) << "page " << i;
  }
}

TEST_F(SwTlbTest, MakesForwardMappedTablesPractical) {
  // Section 7: "A software TLB ... makes it practical to use a slower
  // forward-mapped page table."  Plain forward-mapped walks cost 7 lines;
  // with a software TLB most hardware-TLB misses resolve in one.
  const auto& spec = workload::GetPaperWorkload("coral");
  sim::MachineOptions without;
  without.pt_kind = sim::PtKind::kForward;
  const auto plain = sim::MeasureAccessTime(spec, without, 800000);
  sim::MachineOptions with = without;
  with.swtlb_sets = 4096;
  const auto cached = sim::MeasureAccessTime(spec, with, 800000);
  EXPECT_NEAR(plain.avg_lines_per_miss, 7.0, 0.05);
  EXPECT_LT(cached.avg_lines_per_miss, plain.avg_lines_per_miss / 1.5);
}

// ---------------------------------------------------------------------------
// Inverted hashed organization
// ---------------------------------------------------------------------------

TEST(InvertedHashedTest, LookupPaysPointerPlusNode) {
  mem::CacheTouchModel cache(256);
  pt::HashedPageTable t(cache, {.inverted = true});
  t.InsertBase(Vpn{0x100}, Ppn{1}, Attr::ReadWrite());
  cache.Reset();
  {
    mem::WalkScope scope(cache);
    ASSERT_TRUE(t.Lookup(VaOf(Vpn{0x100})).has_value());
  }
  EXPECT_EQ(cache.total_lines(), 2u) << "pointer array + node";
}

TEST(InvertedHashedTest, EmptyBucketCostsOnlyThePointer) {
  mem::CacheTouchModel cache(256);
  pt::HashedPageTable t(cache, {.inverted = true});
  cache.Reset();
  {
    mem::WalkScope scope(cache);
    EXPECT_FALSE(t.Lookup(VaOf(Vpn{0x55555})).has_value());
  }
  EXPECT_EQ(cache.total_lines(), 1u);
}

TEST(InvertedHashedTest, BucketArrayIsSmallerThanEmbedded) {
  mem::CacheTouchModel cache(256);
  pt::HashedPageTable inverted(cache, {.inverted = true});
  pt::HashedPageTable embedded(cache, {});
  EXPECT_LT(inverted.SizeBytesActual(), embedded.SizeBytesActual());
}

// ---------------------------------------------------------------------------
// AdaptiveClusteredPageTable
// ---------------------------------------------------------------------------

TEST(AdaptiveTest, IsolatedPagesUseCompactNodes) {
  mem::CacheTouchModel cache(256);
  core::AdaptiveClusteredPageTable t(cache, {});
  t.InsertBase(Vpn{0x100}, Ppn{1}, Attr::ReadWrite());
  EXPECT_EQ(t.SizeBytesPaperModel(), 24u) << "one 24-byte single-page node";
  t.InsertBase(Vpn{0x900}, Ppn{2}, Attr::ReadWrite());
  EXPECT_EQ(t.SizeBytesPaperModel(), 48u);
  EXPECT_EQ(t.promotions(), 0u);
}

TEST(AdaptiveTest, DenseBlockPromotesToArrayNode) {
  mem::CacheTouchModel cache(256);
  core::AdaptiveClusteredPageTable t(cache, {});
  for (unsigned i = 0; i < 6; ++i) {
    t.InsertBase(Vpn{0x100} + i, Ppn{i}, Attr::ReadWrite());
  }
  EXPECT_EQ(t.promotions(), 1u);
  EXPECT_EQ(t.node_count(), 1u);
  EXPECT_EQ(t.SizeBytesPaperModel(), 144u);
  for (unsigned i = 0; i < 6; ++i) {
    mem::WalkScope scope(cache);
    const auto fill = t.Lookup(VaOf(Vpn{0x100} + i));
    ASSERT_TRUE(fill.has_value()) << "page " << i;
    EXPECT_EQ(fill->Translate(Vpn{0x100} + i), Ppn{i});
  }
}

TEST(AdaptiveTest, SparseRemovalDemotesBackToSingles) {
  mem::CacheTouchModel cache(256);
  core::AdaptiveClusteredPageTable t(cache, {});
  for (unsigned i = 0; i < 8; ++i) {
    t.InsertBase(Vpn{0x100} + i, Ppn{i}, Attr::ReadWrite());
  }
  EXPECT_EQ(t.promotions(), 1u);
  for (unsigned i = 0; i < 5; ++i) {
    EXPECT_TRUE(t.RemoveBase(Vpn{0x100} + i));
  }
  EXPECT_EQ(t.demotions(), 1u);
  EXPECT_EQ(t.SizeBytesPaperModel(), 3u * 24) << "three singles again";
  for (unsigned i = 5; i < 8; ++i) {
    mem::WalkScope scope(cache);
    EXPECT_TRUE(t.Lookup(VaOf(Vpn{0x100} + i)).has_value());
  }
}

TEST(AdaptiveTest, NeverWorseThanBothFixedChoices) {
  // Property: the adaptive table is never more than one node over the
  // better of {pure-hashed 24B/page, pure-clustered (8s+16)/block} — the
  // point of Section 3's varying-factor generalization.
  mem::CacheTouchModel cache(256);
  core::AdaptiveClusteredPageTable adaptive(cache, {});
  core::ClusteredPageTable fixed(cache, {});
  pt::HashedPageTable hashed(cache, {});
  Rng rng(77);
  for (int i = 0; i < 2000; ++i) {
    const Vpn vpn{rng.Below(4000)};
    if (rng.Chance(0.65)) {
      adaptive.InsertBase(vpn, Ppn{vpn.raw()}, Attr::ReadWrite());
      fixed.InsertBase(vpn, Ppn{vpn.raw()}, Attr::ReadWrite());
      hashed.InsertBase(vpn, Ppn{vpn.raw()}, Attr::ReadWrite());
    } else {
      adaptive.RemoveBase(vpn);
      fixed.RemoveBase(vpn);
      hashed.RemoveBase(vpn);
    }
  }
  const std::uint64_t best =
      std::min(fixed.SizeBytesPaperModel(), hashed.SizeBytesPaperModel());
  EXPECT_LE(adaptive.SizeBytesPaperModel(), best + 144)
      << "adaptive must track the better fixed choice";
  EXPECT_EQ(adaptive.live_translations(), fixed.live_translations());
}

TEST(AdaptiveTest, MixedSparseAndDenseBlocksGetDifferentFormats) {
  mem::CacheTouchModel cache(256);
  core::AdaptiveClusteredPageTable t(cache, {});
  // A dense block (16 pages) and four isolated pages.
  for (unsigned i = 0; i < 16; ++i) {
    t.InsertBase(Vpn{0x100} + i, Ppn{i}, Attr::ReadWrite());
  }
  for (unsigned i = 0; i < 4; ++i) {
    t.InsertBase(Vpn{0x1000 + i * 64}, Ppn{i}, Attr::ReadWrite());
  }
  EXPECT_EQ(t.SizeBytesPaperModel(), 144u + 4 * 24);
  // Fixed clustered would pay 5 * 144; hashed would pay 20 * 24.
  EXPECT_LT(t.SizeBytesPaperModel(), 5u * 144);
  EXPECT_LT(t.SizeBytesPaperModel(), 20u * 24);
}

TEST(AdaptiveTest, SuperpageAndPsbUseCompactNodes) {
  mem::CacheTouchModel cache(256);
  core::AdaptiveClusteredPageTable t(cache, {});
  t.InsertSuperpage(Vpn{0x4000}, kPage64K, Ppn{0x100}, Attr::ReadWrite());
  t.UpsertPartialSubblock(Vpn{0x8000}, 16, Ppn{0x200}, Attr::ReadWrite(), 0x00FF);
  EXPECT_EQ(t.SizeBytesPaperModel(), 48u);
  {
    mem::WalkScope scope(cache);
    EXPECT_EQ(t.Lookup(VaOf(Vpn{0x4008}))->Translate(Vpn{0x4008}), Ppn{0x108});
    EXPECT_EQ(t.Lookup(VaOf(Vpn{0x8003}))->Translate(Vpn{0x8003}), Ppn{0x203});
    EXPECT_FALSE(t.Lookup(VaOf(Vpn{0x8009})).has_value());
  }
  EXPECT_TRUE(t.RemoveSuperpage(Vpn{0x4000}, kPage64K));
  EXPECT_TRUE(t.RemovePartialSubblock(Vpn{0x8000}, 16));
  EXPECT_EQ(t.SizeBytesPaperModel(), 0u);
}

}  // namespace
}  // namespace cpt
