// IntervalSnapshotter window semantics and the observer-neutrality pin.
//
// Synthetic-event tests pin the window contract from snapshot.h: lazy
// closing (every event of reference i lands in i's window), the final
// partial window always flushing, short traces yielding exactly one
// window, zero-miss windows appearing with zero deltas, and registry
// delta-sampling surviving Reset().  The machine integration test pins the
// tracer guarantee the report format relies on: simulated metrics are
// bit-identical with and without a snapshotter attached.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/snapshot.h"
#include "obs/trace.h"
#include "sim/experiments.h"
#include "workload/workload.h"

namespace cpt::obs {
namespace {

WalkEvent Ev(EventKind kind, std::uint32_t lines = 0) {
  WalkEvent e;
  e.kind = kind;
  e.lines = lines;
  return e;
}

// One reference plus its walk: a miss touching `lines` cache lines.
void Miss(IntervalSnapshotter& s, std::uint32_t lines) {
  s.Record(Ev(EventKind::kTlbMiss));
  s.Record(Ev(EventKind::kWalkStep, lines));
  s.Record(Ev(EventKind::kWalkEnd, lines));
}

TEST(TimeseriesTest, WindowsCloseLazilyOnNextReference) {
  IntervalSnapshotter snap(4);

  // Exactly one window's worth of references: nothing closes yet, because
  // the walk events of reference 3 may still be in flight.
  for (int i = 0; i < 4; ++i) {
    snap.Record(Ev(EventKind::kTlbHit));
  }
  EXPECT_EQ(snap.windows().size(), 0u);

  // The 5th reference begins window 1 and retroactively closes window 0.
  Miss(snap, 3);
  ASSERT_EQ(snap.windows().size(), 1u);
  const auto& w0 = snap.windows()[0];
  EXPECT_EQ(w0.index, 0u);
  EXPECT_EQ(w0.start_ref, 0u);
  EXPECT_EQ(w0.refs, 4u);
  EXPECT_EQ(w0.events[EventKind::kTlbHit], 4u);
  EXPECT_EQ(w0.Misses(), 0u);
  EXPECT_EQ(w0.lines, 0u);

  // The miss (and its walk_end lines) belongs to the in-progress window.
  snap.Finish();
  ASSERT_EQ(snap.windows().size(), 2u);
  const auto& w1 = snap.windows()[1];
  EXPECT_EQ(w1.index, 1u);
  EXPECT_EQ(w1.start_ref, 4u);
  EXPECT_EQ(w1.refs, 1u);
  EXPECT_EQ(w1.Misses(), 1u);
  EXPECT_EQ(w1.lines, 3u);
}

TEST(TimeseriesTest, TraceShorterThanOneWindowYieldsOnePartialWindow) {
  IntervalSnapshotter snap(1000);
  Miss(snap, 2);
  snap.Record(Ev(EventKind::kTlbHit));
  EXPECT_EQ(snap.windows().size(), 0u);

  snap.Finish();
  ASSERT_EQ(snap.windows().size(), 1u);
  EXPECT_EQ(snap.windows()[0].refs, 2u);
  EXPECT_EQ(snap.windows()[0].Misses(), 1u);
  EXPECT_EQ(snap.total_refs(), 2u);
}

TEST(TimeseriesTest, FinishIsIdempotentAndSkipsEmptyPartial) {
  IntervalSnapshotter snap(2);
  for (int i = 0; i < 4; ++i) {
    snap.Record(Ev(EventKind::kTlbHit));
  }
  // 4 refs / window 2: one closed window, one full-but-unclosed window,
  // no in-flight partial beyond it.
  snap.Finish();
  EXPECT_EQ(snap.windows().size(), 2u);
  snap.Finish();
  EXPECT_EQ(snap.windows().size(), 2u);

  // All non-final windows are full; only the final one may be partial.
  for (std::size_t i = 0; i + 1 < snap.windows().size(); ++i) {
    EXPECT_EQ(snap.windows()[i].refs, snap.window_refs());
  }
}

TEST(TimeseriesTest, ZeroMissWindowStillAppearsWithZeroRates) {
  IntervalSnapshotter snap(2);
  snap.Record(Ev(EventKind::kTlbHit));
  snap.Record(Ev(EventKind::kTlbHit));
  snap.Finish();
  ASSERT_EQ(snap.windows().size(), 1u);
  const auto& w = snap.windows()[0];
  EXPECT_EQ(w.refs, 2u);
  EXPECT_DOUBLE_EQ(w.MissRate(), 0.0);
  EXPECT_DOUBLE_EQ(w.LinesPerMiss(), 0.0);
}

TEST(TimeseriesTest, MissRateAndLinesPerMissDeriveFromDeltas) {
  IntervalSnapshotter snap(4);
  Miss(snap, 5);
  Miss(snap, 3);
  snap.Record(Ev(EventKind::kTlbHit));
  snap.Record(Ev(EventKind::kTlbHit));
  snap.Finish();
  ASSERT_EQ(snap.windows().size(), 1u);
  const auto& w = snap.windows()[0];
  EXPECT_EQ(w.refs, 4u);
  EXPECT_EQ(w.Misses(), 2u);
  EXPECT_EQ(w.lines, 8u);
  EXPECT_DOUBLE_EQ(w.MissRate(), 0.5);
  EXPECT_DOUBLE_EQ(w.LinesPerMiss(), 4.0);
}

TEST(TimeseriesTest, ResetKeepsGlobalReferenceCounterMonotonic) {
  IntervalSnapshotter snap(2);
  for (int i = 0; i < 3; ++i) {
    snap.Record(Ev(EventKind::kTlbHit));
  }
  snap.Finish();
  EXPECT_EQ(snap.total_refs(), 3u);
  EXPECT_EQ(snap.windows().size(), 2u);

  // A new section starts empty, but start_ref continues from the global
  // count so sections concatenate on one time axis.
  snap.Reset();
  EXPECT_EQ(snap.windows().size(), 0u);
  EXPECT_EQ(snap.total_refs(), 3u);

  snap.Record(Ev(EventKind::kTlbHit));
  snap.Finish();
  ASSERT_EQ(snap.windows().size(), 1u);
  EXPECT_EQ(snap.windows()[0].index, 0u);
  EXPECT_EQ(snap.windows()[0].start_ref, 3u);
  EXPECT_EQ(snap.total_refs(), 4u);
}

TEST(TimeseriesTest, RegistryCountersAreDeltaSampledPerWindow) {
  MetricRegistry reg;
  std::uint64_t& faults = reg.Counter("page_faults");
  std::uint64_t& grants = reg.Counter("grants", {{"kind", "reserved"}});
  faults = 5;  // Pre-construction activity becomes the baseline, not a delta.

  IntervalSnapshotter snap(2, &reg);
  snap.Record(Ev(EventKind::kTlbHit));
  faults += 2;
  snap.Record(Ev(EventKind::kTlbHit));
  snap.Record(Ev(EventKind::kTlbHit));  // Closes window 0.
  faults += 1;
  grants += 4;
  snap.Finish();

  ASSERT_EQ(snap.windows().size(), 2u);
  const auto find = [](const IntervalSnapshotter::Window& w, const std::string& name) {
    for (const auto& [k, v] : w.metric_deltas) {
      if (k == name) {
        return v;
      }
    }
    ADD_FAILURE() << name << " missing from window " << w.index;
    return std::uint64_t{0};
  };

  // Window 0 saw only the +2; the pre-construction 5 was baselined away.
  // The labeled counter appears with an explicit zero.
  EXPECT_EQ(find(snap.windows()[0], "page_faults"), 2u);
  EXPECT_EQ(find(snap.windows()[0], "grants{kind=reserved}"), 0u);
  EXPECT_EQ(find(snap.windows()[1], "page_faults"), 1u);
  EXPECT_EQ(find(snap.windows()[1], "grants{kind=reserved}"), 4u);
}

TEST(TimeseriesTest, ResetRebaselinesRegistry) {
  MetricRegistry reg;
  std::uint64_t& c = reg.Counter("c");
  IntervalSnapshotter snap(1, &reg);

  c = 10;
  snap.Record(Ev(EventKind::kTlbHit));
  snap.Finish();

  // Counter movement between sections must not leak into the next
  // section's first window: Reset() re-snapshots the baseline.
  c = 100;
  snap.Reset();
  snap.Record(Ev(EventKind::kTlbHit));
  snap.Finish();
  ASSERT_EQ(snap.windows().size(), 1u);
  ASSERT_EQ(snap.windows()[0].metric_deltas.size(), 1u);
  EXPECT_EQ(snap.windows()[0].metric_deltas[0].second, 0u);
}

TEST(TimeseriesTest, WriteJsonlEmitsOneObjectPerWindow) {
  IntervalSnapshotter snap(2);
  Miss(snap, 2);
  snap.Record(Ev(EventKind::kTlbHit));
  snap.Record(Ev(EventKind::kTlbHit));
  snap.Finish();
  ASSERT_EQ(snap.windows().size(), 2u);

  std::ostringstream os;
  snap.WriteJsonl(os);
  std::istringstream lines(os.str());
  std::string line;
  int count = 0;
  while (std::getline(lines, line)) {
    EXPECT_NE(line.find("\"type\":\"window\""), std::string::npos) << line;
    EXPECT_NE(line.find("\"miss_rate\""), std::string::npos) << line;
    ++count;
  }
  EXPECT_EQ(count, 2);
  // Zero-count event kinds are elided from the per-window events object.
  EXPECT_NE(os.str().find("\"tlb_miss\":1"), std::string::npos);
  EXPECT_EQ(os.str().find("\"page_fault\""), std::string::npos);
}

// The tracer guarantee: a snapshotter observes and never steers.  Every
// simulated metric of a measured run must be bit-identical with one
// attached or detached; only host timing may differ.
TEST(TimeseriesTest, SnapshotterDoesNotPerturbSimulatedMetrics) {
  const auto& spec = workload::GetPaperWorkload("compress");
  sim::MachineOptions opts;
  opts.pt_kind = sim::PtKind::kClustered;
  constexpr std::uint64_t kTraceLen = 50'000;

  const auto plain = sim::MeasureAccessTime(spec, opts, kTraceLen);

  IntervalSnapshotter snap(1024);
  sim::MeasureHooks hooks;
  hooks.tracer = &snap;
  const auto traced = sim::MeasureAccessTime(spec, opts, kTraceLen, hooks);
  snap.Finish();

  EXPECT_EQ(traced.denominator_misses, plain.denominator_misses);
  EXPECT_EQ(traced.effective_misses, plain.effective_misses);
  EXPECT_DOUBLE_EQ(traced.avg_lines_per_miss, plain.avg_lines_per_miss);
  EXPECT_DOUBLE_EQ(traced.miss_ratio, plain.miss_ratio);
  EXPECT_EQ(traced.pt_bytes, plain.pt_bytes);
  EXPECT_EQ(traced.page_faults, plain.page_faults);
  EXPECT_EQ(traced.trace_refs, plain.trace_refs);

  // The snapshotter saw exactly the measured trace: per-window refs sum to
  // trace_refs, every non-final window is full, and indexes are contiguous.
  std::uint64_t refs = 0;
  for (std::size_t i = 0; i < snap.windows().size(); ++i) {
    const auto& w = snap.windows()[i];
    EXPECT_EQ(w.index, i);
    if (i + 1 < snap.windows().size()) {
      EXPECT_EQ(w.refs, snap.window_refs());
    }
    refs += w.refs;
  }
  EXPECT_EQ(refs, traced.trace_refs);
  EXPECT_EQ(snap.total_refs(), traced.trace_refs);
}

}  // namespace
}  // namespace cpt::obs
