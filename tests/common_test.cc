// Tests for common utilities: deterministic RNG, bucket hashing, the
// statistics helpers (including the parallel-merge combines), and the lock
// telemetry counters in common/sync.h.
#include <gtest/gtest.h>

#include <bit>
#include <set>
#include <vector>

#include "common/hash.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/sync.h"

namespace cpt {
namespace {

// ---------------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------------

TEST(RngTest, DeterministicPerSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
  Rng c(43);
  bool any_diff = false;
  Rng a2(42);
  for (int i = 0; i < 100; ++i) {
    any_diff |= a2.Next() != c.Next();
  }
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Below(17), 17u);
  }
}

TEST(RngTest, RangeInclusive) {
  Rng rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.Range(5, 8);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 8u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BurstLengthHasRequestedMean) {
  Rng rng(11);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    sum += static_cast<double>(rng.BurstLength(16.0));
  }
  EXPECT_NEAR(sum / n, 16.0, 1.0);
}

TEST(RngTest, BurstLengthIsAtLeastOne) {
  Rng rng(12);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(rng.BurstLength(0.1), 1u);
  }
}

// ---------------------------------------------------------------------------
// BucketHasher
// ---------------------------------------------------------------------------

TEST(HashTest, StaysInBucketRange) {
  const BucketHasher h(4096);
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(h(rng.Next()), 4096u);
  }
}

TEST(HashTest, MixSpreadsAlignedSegmentBases) {
  // Region bases that are multiples of the bucket count must not collapse
  // onto overlapping bucket ranges (the aliasing the fold hash suffers).
  const BucketHasher mix(4096, HashKind::kMix);
  std::set<std::uint32_t> buckets;
  for (std::uint64_t base = 0; base < 64; ++base) {
    buckets.insert(mix(base * 4096));
  }
  EXPECT_GT(buckets.size(), 56u) << "near-perfect spread expected";
}

TEST(HashTest, FoldIsDeterministicAndCheap) {
  const BucketHasher fold(4096, HashKind::kFold);
  EXPECT_EQ(fold(0x12345), fold(0x12345));
  // Sequential keys map to distinct buckets (no within-range collisions).
  std::set<std::uint32_t> buckets;
  for (std::uint64_t k = 0x1000; k < 0x1100; ++k) {
    buckets.insert(fold(k));
  }
  EXPECT_EQ(buckets.size(), 256u);
}

TEST(HashTest, MixDistributionIsRoughlyUniform) {
  const BucketHasher h(256, HashKind::kMix);
  std::vector<unsigned> counts(256, 0);
  for (std::uint64_t k = 0; k < 256 * 64; ++k) {
    ++counts[h(k * 0x10001)];
  }
  for (const unsigned c : counts) {
    EXPECT_GT(c, 16u);
    EXPECT_LT(c, 256u);
  }
}

TEST(HashTest, SaltSeparatesContexts) {
  const BucketHasher a(4096, HashKind::kMix, /*context_salt=*/1);
  const BucketHasher b(4096, HashKind::kMix, /*context_salt=*/2);
  unsigned differing = 0;
  for (std::uint64_t k = 0; k < 256; ++k) {
    differing += a(k) != b(k) ? 1 : 0;
  }
  EXPECT_GT(differing, 200u);
}

TEST(HashTest, Mix64Avalanche) {
  // Flipping one input bit flips roughly half the output bits.
  for (unsigned bit = 0; bit < 64; bit += 7) {
    const std::uint64_t a = Mix64(0x123456789ABCDEFull);
    const std::uint64_t b = Mix64(0x123456789ABCDEFull ^ (1ull << bit));
    const int flipped = std::popcount(a ^ b);
    EXPECT_GT(flipped, 16) << "bit " << bit;
    EXPECT_LT(flipped, 48) << "bit " << bit;
  }
}

// ---------------------------------------------------------------------------
// Stats
// ---------------------------------------------------------------------------

TEST(StatsTest, RunningStatsBasics) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  s.Add(1.0);
  s.Add(2.0);
  s.Add(6.0);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 6.0);
  EXPECT_DOUBLE_EQ(s.sum(), 9.0);
}

TEST(StatsTest, HistogramCountsAndMean) {
  Histogram h;
  h.Add(1);
  h.Add(1);
  h.Add(4);
  EXPECT_EQ(h.total(), 3u);
  EXPECT_EQ(h.count(1), 2u);
  EXPECT_EQ(h.count(4), 1u);
  EXPECT_EQ(h.count(2), 0u);
  EXPECT_EQ(h.max_value(), 4u);
  EXPECT_DOUBLE_EQ(h.mean(), 2.0);
  EXPECT_NE(h.ToString().find("1:2"), std::string::npos);
}

TEST(StatsTest, FormatBytes) {
  EXPECT_EQ(FormatBytes(512), "512B");
  EXPECT_EQ(FormatBytes(2048), "2KB");
  EXPECT_EQ(FormatBytes(3 * 1024 * 1024), "3MB");
}

// ---------------------------------------------------------------------------
// Parallel merges (sharded-telemetry fan-in; see obs/sharded.h).
// ---------------------------------------------------------------------------

TEST(StatsTest, RunningStatsMergeMatchesSingleStream) {
  // Two disjoint shards of one sample stream must merge to the same summary
  // as a single accumulator that saw every sample.
  RunningStats whole;
  RunningStats left;
  RunningStats right;
  Rng rng(7);
  for (int i = 0; i < 500; ++i) {
    const double x = static_cast<double>(rng.Below(1 << 20)) / 1024.0;
    whole.Add(x);
    (i % 2 == 0 ? left : right).Add(x);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_DOUBLE_EQ(left.sum(), whole.sum());
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  // Chan's combine and sequential Welford round differently; both must agree
  // to far tighter than any consumer of a timing variance cares about.
  EXPECT_NEAR(left.variance(), whole.variance(), whole.variance() * 1e-9);
}

TEST(StatsTest, RunningStatsMergeEmptyCases) {
  RunningStats empty;
  RunningStats s;
  s.Add(2.0);
  s.Add(4.0);

  RunningStats into_empty;
  into_empty.Merge(s);  // empty <- populated adopts the stream.
  EXPECT_EQ(into_empty.count(), 2u);
  EXPECT_DOUBLE_EQ(into_empty.mean(), 3.0);
  EXPECT_DOUBLE_EQ(into_empty.min(), 2.0);

  s.Merge(empty);  // populated <- empty is a no-op.
  EXPECT_EQ(s.count(), 2u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);

  empty.Merge(RunningStats{});  // empty <- empty stays empty.
  EXPECT_EQ(empty.count(), 0u);
  EXPECT_DOUBLE_EQ(empty.mean(), 0.0);
}

TEST(StatsTest, HistogramMergeMatchesSingleStream) {
  Histogram whole;
  Histogram left;
  Histogram right;
  Rng rng(11);
  for (int i = 0; i < 300; ++i) {
    const std::size_t v = rng.Below(32);
    whole.Add(v);
    (i % 3 == 0 ? left : right).Add(v);
  }
  left.Merge(right);
  EXPECT_EQ(left.total(), whole.total());
  EXPECT_EQ(left.max_seen(), whole.max_seen());
  EXPECT_DOUBLE_EQ(left.mean(), whole.mean());
  for (std::size_t v = 0; v < 32; ++v) {
    EXPECT_EQ(left.count(v), whole.count(v)) << "bucket " << v;
  }
}

TEST(StatsTest, HistogramMergeFoldsWiderBucketsIntoOverflow) {
  // The destination clamps at 4 buckets; the source resolved values the
  // destination cannot, so they must land in overflow with total() and
  // mean() preserved exactly.
  Histogram narrow(4);
  narrow.Add(1);
  Histogram wide(64);
  wide.Add(2);
  wide.Add(10);
  wide.Add(100);  // Overflow even in the source (max_buckets 64).

  narrow.Merge(wide);
  EXPECT_EQ(narrow.total(), 4u);
  EXPECT_EQ(narrow.count(1), 1u);
  EXPECT_EQ(narrow.count(2), 1u);
  EXPECT_EQ(narrow.overflow(), 2u);  // 10 folded down + 100 carried over.
  EXPECT_EQ(narrow.max_seen(), 100u);
  EXPECT_DOUBLE_EQ(narrow.mean(), (1.0 + 2.0 + 10.0 + 100.0) / 4.0);
}

// ---------------------------------------------------------------------------
// Lock telemetry (common/sync.h counters; sites render via obs/contention).
// ---------------------------------------------------------------------------

TEST(SyncTelemetryTest, MutexCountsAcquisitions) {
  Mutex mu;
  EXPECT_EQ(mu.acquisitions(), 0u);
  for (int i = 0; i < 3; ++i) {
    MutexLock lock(mu);
  }
  EXPECT_TRUE(mu.try_lock());
  mu.unlock();
  EXPECT_EQ(mu.acquisitions(), 4u);
  // Single-threaded locking never contends.
  EXPECT_EQ(mu.contended(), 0u);
}

TEST(SyncTelemetryTest, MutexContendedAcquisitionIsCounted) {
  Mutex mu;
  mu.lock();
  ThreadGroup worker;
  worker.Spawn([&mu] {
    MutexLock lock(mu);  // Blocks until the main thread releases.
  });
  // The worker bumps `contended` *before* blocking, so polling the counter
  // is a deterministic rendezvous: once it reads 1 the worker is committed
  // to the slow path and unlocking lets it through.
  while (mu.contended() == 0) {
  }
  mu.unlock();
  worker.JoinAll();
  EXPECT_EQ(mu.acquisitions(), 2u);
  EXPECT_EQ(mu.contended(), 1u);
}

TEST(SyncTelemetryTest, SharedMutexSplitsSharedAndExclusiveCounts) {
  SharedMutex mu;
  {
    SharedMutexLock r1(mu);
  }
  {
    SharedMutexLock r2(mu);
  }
  mu.lock();
  mu.unlock();
  EXPECT_EQ(mu.shared_acquisitions(), 2u);
  EXPECT_EQ(mu.acquisitions(), 1u);
  EXPECT_EQ(mu.contended(), 0u);
  EXPECT_EQ(mu.shared_contended(), 0u);
}

TEST(SyncTelemetryTest, WaitHistogramOnlyWhenTimingEnabled) {
  // The flag is snapshotted at lock construction: locks born with it off
  // never allocate the histogram, locks born with it on always do.
  SetContentionTimingForTest(false);
  const Mutex cold;
  EXPECT_EQ(cold.wait_histogram(), nullptr);

  SetContentionTimingForTest(true);
  Mutex hot;
  ASSERT_NE(hot.wait_histogram(), nullptr);
  SetContentionTimingForTest(false);

  hot.lock();
  ThreadGroup worker;
  worker.Spawn([&hot] {
    MutexLock lock(hot);
  });
  while (hot.contended() == 0) {
  }
  hot.unlock();
  worker.JoinAll();
  // Every contended acquisition records exactly one timed wait.
  EXPECT_EQ(hot.wait_histogram()->total_count(), 1u);
}

TEST(SyncTelemetryTest, WaitHistogramBucketsAreLog2) {
  WaitHistogram h;
  h.Record(0);     // bit_width(0) == 0.
  h.Record(1);     // bit_width(1) == 1.
  h.Record(1023);  // bit_width == 10.
  h.Record(~std::uint64_t{0});  // Clamped into the last bucket.
  EXPECT_EQ(h.counts[0].load_relaxed(), 1u);
  EXPECT_EQ(h.counts[1].load_relaxed(), 1u);
  EXPECT_EQ(h.counts[10].load_relaxed(), 1u);
  EXPECT_EQ(h.counts[WaitHistogram::kBuckets - 1].load_relaxed(), 1u);
  EXPECT_EQ(h.total_count(), 4u);
}

// ---------------------------------------------------------------------------
// Stripe selection (common/sync.h StripeSet).
// ---------------------------------------------------------------------------

TEST(StripeSetTest, IndexForMatchesStripeFor) {
  const StripeSet stripes(8);
  for (std::uint64_t h = 0; h < 64; ++h) {
    EXPECT_EQ(&stripes.StripeFor(h), &stripes.stripe(stripes.IndexFor(h)));
    EXPECT_EQ(stripes.IndexFor(h), h & 7u);
  }
}

TEST(StripeSetTest, MixedHashesSpreadAcrossStripes) {
  // Stripe selection masks the low bits, so anything upstream must feed it
  // mixed hashes (HashedPageTable stripes by bucket index, post-hasher).
  // Mixing sequential keys must land within 25% of the uniform share.
  constexpr unsigned kStripes = 16;
  constexpr std::uint64_t kSamples = 1 << 14;
  const StripeSet stripes(kStripes);
  std::vector<std::uint64_t> hits(kStripes, 0);
  for (std::uint64_t k = 0; k < kSamples; ++k) {
    ++hits[stripes.IndexFor(Mix64(k))];
  }
  const double share = static_cast<double>(kSamples) / kStripes;
  for (unsigned i = 0; i < kStripes; ++i) {
    EXPECT_GT(hits[i], share * 0.75) << "stripe " << i;
    EXPECT_LT(hits[i], share * 1.25) << "stripe " << i;
  }
}

TEST(StripeSetTest, TotalsSumPerStripeCounters) {
  const StripeSet stripes(4);
  // Lock stripe 1 twice and stripe 3 once; totals must reconcile exactly.
  for (const std::uint64_t hash : {1u, 5u, 3u}) {
    MutexLock lock(stripes.StripeFor(hash));
  }
  EXPECT_EQ(stripes.stripe(1).acquisitions(), 2u);
  EXPECT_EQ(stripes.stripe(3).acquisitions(), 1u);
  EXPECT_EQ(stripes.total_acquisitions(), 3u);
  EXPECT_EQ(stripes.total_contended(), 0u);
}

// ---------------------------------------------------------------------------
// AtomicCell structural-copy contract (single-threaded phases only).
// ---------------------------------------------------------------------------

TEST(AtomicCellTest, StructuralCopyPreservesValues) {
  AtomicCell<std::uint64_t> a{41};
  a.fetch_add_relaxed(1);
  const AtomicCell<std::uint64_t> b(a);  // NOLINT(performance-unnecessary-copy-initialization)
  EXPECT_EQ(b.load_relaxed(), 42u);
  AtomicCell<std::uint64_t> c;
  c = a;
  EXPECT_EQ(c.load_relaxed(), 42u);
  // The copy is a snapshot, not an alias.
  a.fetch_add_relaxed(1);
  EXPECT_EQ(b.load_relaxed(), 42u);
  EXPECT_EQ(c.load_relaxed(), 42u);
}

TEST(AtomicCellTest, VectorGrowthCopiesCells) {
  // The structural-copy carve-out exists exactly for this: containers of
  // cells (bucket heads, per-stripe counters) may grow during
  // single-threaded setup phases without losing their values.
  std::vector<AtomicCell<std::uint64_t>> cells;
  for (std::uint64_t i = 0; i < 100; ++i) {
    cells.emplace_back(i);
  }
  for (std::uint64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(cells[i].load_relaxed(), i);
  }
}

TEST(StripeSetDeathTest, OutOfRangeStripeIndexDies) {
#ifdef NDEBUG
  GTEST_SKIP() << "CPT_DCHECK compiled out";
#else
  const StripeSet stripes(4);
  EXPECT_DEATH(stripes.stripe(4), "stripe index out of range");
  const StripeSet none(0);
  EXPECT_DEATH(none.IndexFor(1), "IndexFor on an empty StripeSet");
#endif
}

}  // namespace
}  // namespace cpt
