// Tests for common utilities: deterministic RNG, bucket hashing, and the
// statistics helpers.
#include <gtest/gtest.h>

#include <bit>
#include <set>
#include <vector>

#include "common/hash.h"
#include "common/rng.h"
#include "common/stats.h"

namespace cpt {
namespace {

// ---------------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------------

TEST(RngTest, DeterministicPerSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
  Rng c(43);
  bool any_diff = false;
  Rng a2(42);
  for (int i = 0; i < 100; ++i) {
    any_diff |= a2.Next() != c.Next();
  }
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Below(17), 17u);
  }
}

TEST(RngTest, RangeInclusive) {
  Rng rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.Range(5, 8);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 8u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BurstLengthHasRequestedMean) {
  Rng rng(11);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    sum += static_cast<double>(rng.BurstLength(16.0));
  }
  EXPECT_NEAR(sum / n, 16.0, 1.0);
}

TEST(RngTest, BurstLengthIsAtLeastOne) {
  Rng rng(12);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(rng.BurstLength(0.1), 1u);
  }
}

// ---------------------------------------------------------------------------
// BucketHasher
// ---------------------------------------------------------------------------

TEST(HashTest, StaysInBucketRange) {
  const BucketHasher h(4096);
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(h(rng.Next()), 4096u);
  }
}

TEST(HashTest, MixSpreadsAlignedSegmentBases) {
  // Region bases that are multiples of the bucket count must not collapse
  // onto overlapping bucket ranges (the aliasing the fold hash suffers).
  const BucketHasher mix(4096, HashKind::kMix);
  std::set<std::uint32_t> buckets;
  for (std::uint64_t base = 0; base < 64; ++base) {
    buckets.insert(mix(base * 4096));
  }
  EXPECT_GT(buckets.size(), 56u) << "near-perfect spread expected";
}

TEST(HashTest, FoldIsDeterministicAndCheap) {
  const BucketHasher fold(4096, HashKind::kFold);
  EXPECT_EQ(fold(0x12345), fold(0x12345));
  // Sequential keys map to distinct buckets (no within-range collisions).
  std::set<std::uint32_t> buckets;
  for (std::uint64_t k = 0x1000; k < 0x1100; ++k) {
    buckets.insert(fold(k));
  }
  EXPECT_EQ(buckets.size(), 256u);
}

TEST(HashTest, MixDistributionIsRoughlyUniform) {
  const BucketHasher h(256, HashKind::kMix);
  std::vector<unsigned> counts(256, 0);
  for (std::uint64_t k = 0; k < 256 * 64; ++k) {
    ++counts[h(k * 0x10001)];
  }
  for (const unsigned c : counts) {
    EXPECT_GT(c, 16u);
    EXPECT_LT(c, 256u);
  }
}

TEST(HashTest, SaltSeparatesContexts) {
  const BucketHasher a(4096, HashKind::kMix, /*context_salt=*/1);
  const BucketHasher b(4096, HashKind::kMix, /*context_salt=*/2);
  unsigned differing = 0;
  for (std::uint64_t k = 0; k < 256; ++k) {
    differing += a(k) != b(k) ? 1 : 0;
  }
  EXPECT_GT(differing, 200u);
}

TEST(HashTest, Mix64Avalanche) {
  // Flipping one input bit flips roughly half the output bits.
  for (unsigned bit = 0; bit < 64; bit += 7) {
    const std::uint64_t a = Mix64(0x123456789ABCDEFull);
    const std::uint64_t b = Mix64(0x123456789ABCDEFull ^ (1ull << bit));
    const int flipped = std::popcount(a ^ b);
    EXPECT_GT(flipped, 16) << "bit " << bit;
    EXPECT_LT(flipped, 48) << "bit " << bit;
  }
}

// ---------------------------------------------------------------------------
// Stats
// ---------------------------------------------------------------------------

TEST(StatsTest, RunningStatsBasics) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  s.Add(1.0);
  s.Add(2.0);
  s.Add(6.0);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 6.0);
  EXPECT_DOUBLE_EQ(s.sum(), 9.0);
}

TEST(StatsTest, HistogramCountsAndMean) {
  Histogram h;
  h.Add(1);
  h.Add(1);
  h.Add(4);
  EXPECT_EQ(h.total(), 3u);
  EXPECT_EQ(h.count(1), 2u);
  EXPECT_EQ(h.count(4), 1u);
  EXPECT_EQ(h.count(2), 0u);
  EXPECT_EQ(h.max_value(), 4u);
  EXPECT_DOUBLE_EQ(h.mean(), 2.0);
  EXPECT_NE(h.ToString().find("1:2"), std::string::npos);
}

TEST(StatsTest, FormatBytes) {
  EXPECT_EQ(FormatBytes(512), "512B");
  EXPECT_EQ(FormatBytes(2048), "2KB");
  EXPECT_EQ(FormatBytes(3 * 1024 * 1024), "3MB");
}

}  // namespace
}  // namespace cpt
