// Tests for the Section 7 multi-page-size system: two clustered tables
// covering every size from 4KB to 1MB.
#include "core/multi_size.h"

#include <gtest/gtest.h>

#include "mem/cache_model.h"

namespace cpt::core {
namespace {

class MultiSizeTest : public ::testing::Test {
 protected:
  MultiSizeTest() : cache_(256), table_(cache_, {}) {}

  std::optional<pt::TlbFill> Lookup(Vpn vpn) {
    mem::WalkScope scope(cache_);
    return table_.Lookup(VaOf(vpn));
  }

  mem::CacheTouchModel cache_;
  MultiSizeClustered table_;
};

TEST_F(MultiSizeTest, BasePagesGoToSmallTable) {
  table_.InsertBase(Vpn{0x100}, Ppn{1}, Attr::ReadWrite());
  EXPECT_EQ(table_.small_table().node_count(), 1u);
  EXPECT_EQ(table_.large_table().node_count(), 0u);
  EXPECT_TRUE(Lookup(Vpn{0x100}).has_value());
}

TEST_F(MultiSizeTest, SmallSuperpagesStayInSmallTable) {
  table_.InsertSuperpage(Vpn{0x4000}, kPage16K, Ppn{0x100}, Attr::ReadWrite());
  table_.InsertSuperpage(Vpn{0x8000}, kPage64K, Ppn{0x200}, Attr::ReadWrite());
  EXPECT_EQ(table_.small_table().node_count(), 2u);
  EXPECT_EQ(table_.large_table().node_count(), 0u);
  EXPECT_EQ(Lookup(Vpn{0x4002})->Translate(Vpn{0x4002}), Ppn{0x102});
  EXPECT_EQ(Lookup(Vpn{0x800F})->Translate(Vpn{0x800F}), Ppn{0x20F});
}

TEST_F(MultiSizeTest, LargeSuperpagesGoToLargeTable) {
  // 256KB = 64 pages: exactly one compact node in the 64-page-block table.
  table_.InsertSuperpage(Vpn{0x10000}, PageSize{6}, Ppn{0x1000}, Attr::ReadWrite());
  EXPECT_EQ(table_.large_table().node_count(), 1u);
  EXPECT_EQ(table_.large_table().SizeBytesPaperModel(), 24u);
  EXPECT_EQ(Lookup(Vpn{0x10020})->Translate(Vpn{0x10020}), Ppn{0x1020});
}

TEST_F(MultiSizeTest, OneMegabyteSuperpageUsesFourReplicas) {
  table_.InsertSuperpage(Vpn{0x20000}, PageSize{8}, Ppn{0x2000}, Attr::ReadWrite());
  EXPECT_EQ(table_.large_table().node_count(), 4u) << "256 pages / 64-page blocks";
  for (unsigned off = 0; off < 256; off += 37) {
    const auto fill = Lookup(Vpn{0x20000} + off);
    ASSERT_TRUE(fill.has_value()) << "offset " << off;
    EXPECT_EQ(fill->Translate(Vpn{0x20000} + off), Ppn{0x2000} + off);
    EXPECT_EQ(fill->base_vpn, Vpn{0x20000});
  }
  EXPECT_TRUE(table_.RemoveSuperpage(Vpn{0x20000}, PageSize{8}));
  EXPECT_EQ(table_.SizeBytesPaperModel(), 0u);
}

TEST_F(MultiSizeTest, AllFiveMipsSizesCoexist) {
  table_.InsertBase(Vpn{0x100}, Ppn{0x1}, Attr::ReadWrite());
  table_.InsertSuperpage(Vpn{0x1000}, kPage16K, Ppn{0x10}, Attr::ReadWrite());
  table_.InsertSuperpage(Vpn{0x2000}, kPage64K, Ppn{0x40}, Attr::ReadWrite());
  table_.InsertSuperpage(Vpn{0x4000}, PageSize{6}, Ppn{0x80}, Attr::ReadWrite());
  table_.InsertSuperpage(Vpn{0x8000}, PageSize{8}, Ppn{0x200}, Attr::ReadWrite());
  EXPECT_EQ(Lookup(Vpn{0x100})->Translate(Vpn{0x100}), Ppn{0x1});
  EXPECT_EQ(Lookup(Vpn{0x1003})->Translate(Vpn{0x1003}), Ppn{0x13});
  EXPECT_EQ(Lookup(Vpn{0x2008})->Translate(Vpn{0x2008}), Ppn{0x48});
  EXPECT_EQ(Lookup(Vpn{0x4030})->Translate(Vpn{0x4030}), Ppn{0xB0});
  EXPECT_EQ(Lookup(Vpn{0x80FF})->Translate(Vpn{0x80FF}), Ppn{0x2FF});
  EXPECT_EQ(table_.live_translations(), 1u + 4 + 16 + 64 + 256);
}

TEST_F(MultiSizeTest, SmallPageMissCostsOnlyOneTableSearch) {
  table_.InsertBase(Vpn{0x100}, Ppn{1}, Attr::ReadWrite());
  cache_.Reset();
  Lookup(Vpn{0x100});
  EXPECT_EQ(cache_.total_lines(), 1u) << "found in the first (small) table";
}

TEST_F(MultiSizeTest, LargeSuperpageMissPaysBothSearches) {
  table_.InsertSuperpage(Vpn{0x10000}, PageSize{6}, Ppn{0x1000}, Attr::ReadWrite());
  cache_.Reset();
  Lookup(Vpn{0x10010});
  EXPECT_EQ(cache_.total_lines(), 2u) << "small-table miss + large-table hit";
}

TEST_F(MultiSizeTest, PsbLivesInSmallTable) {
  table_.UpsertPartialSubblock(Vpn{0x8000}, 16, Ppn{0x40}, Attr::ReadWrite(), 0x00FF);
  EXPECT_EQ(table_.small_table().node_count(), 1u);
  EXPECT_TRUE(Lookup(Vpn{0x8007}).has_value());
  EXPECT_FALSE(Lookup(Vpn{0x8008}).has_value());
  EXPECT_TRUE(table_.RemovePartialSubblock(Vpn{0x8000}, 16));
}

TEST_F(MultiSizeTest, ProtectRangeSpansBothTables) {
  table_.InsertBase(Vpn{0x10000}, Ppn{0x1}, Attr::ReadWrite());
  table_.InsertSuperpage(Vpn{0x10040}, PageSize{6}, Ppn{0x1000}, Attr::ReadWrite());
  table_.ProtectRange(Vpn{0x10000}, 0x80, Attr::ReadOnly());
  EXPECT_EQ(Lookup(Vpn{0x10000})->word.attr(), Attr::ReadOnly());
  EXPECT_EQ(Lookup(Vpn{0x10050})->word.attr(), Attr::ReadOnly());
}

}  // namespace
}  // namespace cpt::core
