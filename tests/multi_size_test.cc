// Tests for the Section 7 multi-page-size system: two clustered tables
// covering every size from 4KB to 1MB.
#include "core/multi_size.h"

#include <gtest/gtest.h>

#include "mem/cache_model.h"

namespace cpt::core {
namespace {

class MultiSizeTest : public ::testing::Test {
 protected:
  MultiSizeTest() : cache_(256), table_(cache_, {}) {}

  std::optional<pt::TlbFill> Lookup(Vpn vpn) {
    mem::WalkScope scope(cache_);
    return table_.Lookup(VaOf(vpn));
  }

  mem::CacheTouchModel cache_;
  MultiSizeClustered table_;
};

TEST_F(MultiSizeTest, BasePagesGoToSmallTable) {
  table_.InsertBase(0x100, 1, Attr::ReadWrite());
  EXPECT_EQ(table_.small_table().node_count(), 1u);
  EXPECT_EQ(table_.large_table().node_count(), 0u);
  EXPECT_TRUE(Lookup(0x100).has_value());
}

TEST_F(MultiSizeTest, SmallSuperpagesStayInSmallTable) {
  table_.InsertSuperpage(0x4000, kPage16K, 0x100, Attr::ReadWrite());
  table_.InsertSuperpage(0x8000, kPage64K, 0x200, Attr::ReadWrite());
  EXPECT_EQ(table_.small_table().node_count(), 2u);
  EXPECT_EQ(table_.large_table().node_count(), 0u);
  EXPECT_EQ(Lookup(0x4002)->Translate(0x4002), 0x102u);
  EXPECT_EQ(Lookup(0x800F)->Translate(0x800F), 0x20Fu);
}

TEST_F(MultiSizeTest, LargeSuperpagesGoToLargeTable) {
  // 256KB = 64 pages: exactly one compact node in the 64-page-block table.
  table_.InsertSuperpage(0x10000, PageSize{6}, 0x1000, Attr::ReadWrite());
  EXPECT_EQ(table_.large_table().node_count(), 1u);
  EXPECT_EQ(table_.large_table().SizeBytesPaperModel(), 24u);
  EXPECT_EQ(Lookup(0x10020)->Translate(0x10020), 0x1020u);
}

TEST_F(MultiSizeTest, OneMegabyteSuperpageUsesFourReplicas) {
  table_.InsertSuperpage(0x20000, PageSize{8}, 0x2000, Attr::ReadWrite());
  EXPECT_EQ(table_.large_table().node_count(), 4u) << "256 pages / 64-page blocks";
  for (unsigned off = 0; off < 256; off += 37) {
    const auto fill = Lookup(0x20000 + off);
    ASSERT_TRUE(fill.has_value()) << "offset " << off;
    EXPECT_EQ(fill->Translate(0x20000 + off), 0x2000u + off);
    EXPECT_EQ(fill->base_vpn, 0x20000u);
  }
  EXPECT_TRUE(table_.RemoveSuperpage(0x20000, PageSize{8}));
  EXPECT_EQ(table_.SizeBytesPaperModel(), 0u);
}

TEST_F(MultiSizeTest, AllFiveMipsSizesCoexist) {
  table_.InsertBase(0x100, 0x1, Attr::ReadWrite());
  table_.InsertSuperpage(0x1000, kPage16K, 0x10, Attr::ReadWrite());
  table_.InsertSuperpage(0x2000, kPage64K, 0x40, Attr::ReadWrite());
  table_.InsertSuperpage(0x4000, PageSize{6}, 0x80, Attr::ReadWrite());
  table_.InsertSuperpage(0x8000, PageSize{8}, 0x200, Attr::ReadWrite());
  EXPECT_EQ(Lookup(0x100)->Translate(0x100), 0x1u);
  EXPECT_EQ(Lookup(0x1003)->Translate(0x1003), 0x13u);
  EXPECT_EQ(Lookup(0x2008)->Translate(0x2008), 0x48u);
  EXPECT_EQ(Lookup(0x4030)->Translate(0x4030), 0xB0u);
  EXPECT_EQ(Lookup(0x80FF)->Translate(0x80FF), 0x2FFu);
  EXPECT_EQ(table_.live_translations(), 1u + 4 + 16 + 64 + 256);
}

TEST_F(MultiSizeTest, SmallPageMissCostsOnlyOneTableSearch) {
  table_.InsertBase(0x100, 1, Attr::ReadWrite());
  cache_.Reset();
  Lookup(0x100);
  EXPECT_EQ(cache_.total_lines(), 1u) << "found in the first (small) table";
}

TEST_F(MultiSizeTest, LargeSuperpageMissPaysBothSearches) {
  table_.InsertSuperpage(0x10000, PageSize{6}, 0x1000, Attr::ReadWrite());
  cache_.Reset();
  Lookup(0x10010);
  EXPECT_EQ(cache_.total_lines(), 2u) << "small-table miss + large-table hit";
}

TEST_F(MultiSizeTest, PsbLivesInSmallTable) {
  table_.UpsertPartialSubblock(0x8000, 16, 0x40, Attr::ReadWrite(), 0x00FF);
  EXPECT_EQ(table_.small_table().node_count(), 1u);
  EXPECT_TRUE(Lookup(0x8007).has_value());
  EXPECT_FALSE(Lookup(0x8008).has_value());
  EXPECT_TRUE(table_.RemovePartialSubblock(0x8000, 16));
}

TEST_F(MultiSizeTest, ProtectRangeSpansBothTables) {
  table_.InsertBase(0x10000, 0x1, Attr::ReadWrite());
  table_.InsertSuperpage(0x10040, PageSize{6}, 0x1000, Attr::ReadWrite());
  table_.ProtectRange(0x10000, 0x80, Attr::ReadOnly());
  EXPECT_EQ(Lookup(0x10000)->word.attr(), Attr::ReadOnly());
  EXPECT_EQ(Lookup(0x10050)->word.attr(), Attr::ReadOnly());
}

}  // namespace
}  // namespace cpt::core
