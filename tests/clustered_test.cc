// Deep unit tests for the clustered page table (the paper's contribution):
// node formats, mixed-format chains, walk costs, size accounting, promotion
// readiness, and subblock-factor generality.
#include "core/clustered.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "mem/cache_model.h"

namespace cpt::core {
namespace {

class ClusteredTest : public ::testing::Test {
 protected:
  ClusteredTest() : cache_(256), table_(cache_, {}) {}

  std::optional<pt::TlbFill> Lookup(Vpn vpn) {
    mem::WalkScope scope(cache_);
    return table_.Lookup(VaOf(vpn));
  }

  unsigned LinesFor(Vpn vpn) {
    cache_.Reset();
    Lookup(vpn);
    return static_cast<unsigned>(cache_.total_lines());
  }

  mem::CacheTouchModel cache_;
  ClusteredPageTable table_;
};

// ---------------------------------------------------------------------------
// Size accounting (Table 2: (8s + 16) per base node, 24 per compact node).
// ---------------------------------------------------------------------------

TEST_F(ClusteredTest, OneBaseNodeCosts144Bytes) {
  table_.InsertBase(Vpn{0x100}, Ppn{1}, Attr::ReadWrite());
  EXPECT_EQ(table_.SizeBytesPaperModel(), 8u * 16 + 16);
  EXPECT_EQ(table_.node_count(), 1u);
}

TEST_F(ClusteredTest, SixteenPagesOfOneBlockShareOneNode) {
  for (unsigned i = 0; i < 16; ++i) {
    table_.InsertBase(Vpn{0x100} + i, Ppn{i}, Attr::ReadWrite());
  }
  EXPECT_EQ(table_.node_count(), 1u);
  EXPECT_EQ(table_.SizeBytesPaperModel(), 144u);
  EXPECT_EQ(table_.live_translations(), 16u);
}

TEST_F(ClusteredTest, BreakEvenVersusHashedAtSixPages) {
  // Section 3: with s=16, clustered (144B/block) matches hashed (24B/page)
  // when six pages of the block are populated.
  for (unsigned i = 0; i < 6; ++i) {
    table_.InsertBase(Vpn{0x200} + i, Ppn{i}, Attr::ReadWrite());
  }
  EXPECT_EQ(table_.SizeBytesPaperModel(), 6u * 24);
}

TEST_F(ClusteredTest, CompactSuperpageNodeCosts24Bytes) {
  table_.InsertSuperpage(Vpn{0x4000}, kPage64K, Ppn{0x100}, Attr::ReadWrite());
  EXPECT_EQ(table_.SizeBytesPaperModel(), 24u);
  EXPECT_EQ(table_.live_translations(), 16u);
}

TEST_F(ClusteredTest, CompactPsbNodeCosts24Bytes) {
  table_.UpsertPartialSubblock(Vpn{0x4000}, 16, Ppn{0x100}, Attr::ReadWrite(), 0x0F0F);
  EXPECT_EQ(table_.SizeBytesPaperModel(), 24u);
  EXPECT_EQ(table_.live_translations(), 8u);
}

TEST_F(ClusteredTest, SubSizeSuperpageNodeCostsProportionally) {
  // Two 8KB superpages fit one block node with s/2 = 8 words: 16+64 bytes.
  table_.InsertSuperpage(Vpn{0x100}, kPage8K, Ppn{0x10}, Attr::ReadWrite());
  EXPECT_EQ(table_.SizeBytesPaperModel(), 16u + 8u * 8);
  EXPECT_EQ(table_.live_translations(), 2u);
}

// ---------------------------------------------------------------------------
// Lookup semantics across node formats.
// ---------------------------------------------------------------------------

TEST_F(ClusteredTest, SubSizeSuperpagesTranslate) {
  table_.InsertSuperpage(Vpn{0x102}, kPage8K, Ppn{0x10}, Attr::ReadWrite());  // Pages 0x102-0x103.
  table_.InsertSuperpage(Vpn{0x104}, kPage16K, Ppn{0x20}, Attr::ReadWrite());  // Pages 0x104-0x107.
  EXPECT_FALSE(Lookup(Vpn{0x100}).has_value());
  EXPECT_FALSE(Lookup(Vpn{0x101}).has_value());
  auto f8 = Lookup(Vpn{0x103});
  ASSERT_TRUE(f8.has_value());
  EXPECT_EQ(f8->Translate(Vpn{0x103}), Ppn{0x11});
  EXPECT_EQ(f8->pages_log2, 1u);
  auto f16 = Lookup(Vpn{0x106});
  ASSERT_TRUE(f16.has_value());
  EXPECT_EQ(f16->Translate(Vpn{0x106}), Ppn{0x22});
  EXPECT_EQ(f16->base_vpn, Vpn{0x104});
}

TEST_F(ClusteredTest, PaperMixedExample8kSuperplusBasePages) {
  // Section 5's example (scaled to s=16): an 8KB superpage plus two base
  // pages coexist in one page block via two nodes on the same chain.
  table_.InsertSuperpage(Vpn{0x100}, kPage8K, Ppn{0x50}, Attr::ReadWrite());
  table_.InsertBase(Vpn{0x105}, Ppn{0x99}, Attr::ReadWrite());
  table_.InsertBase(Vpn{0x107}, Ppn{0x9A}, Attr::ReadWrite());
  EXPECT_EQ(table_.node_count(), 2u);
  EXPECT_EQ(Lookup(Vpn{0x100})->Translate(Vpn{0x100}), Ppn{0x50});
  EXPECT_EQ(Lookup(Vpn{0x101})->Translate(Vpn{0x101}), Ppn{0x51});
  EXPECT_EQ(Lookup(Vpn{0x105})->Translate(Vpn{0x105}), Ppn{0x99});
  EXPECT_EQ(Lookup(Vpn{0x107})->Translate(Vpn{0x107}), Ppn{0x9A});
  EXPECT_FALSE(Lookup(Vpn{0x102}).has_value());
  EXPECT_FALSE(Lookup(Vpn{0x106}).has_value());
}

TEST_F(ClusteredTest, ChainContinuesAfterFailedTagMatch) {
  // A tag match whose word does not cover the page must not stop the search
  // (Section 5).  Put the base node after the superpage node in the chain.
  table_.InsertSuperpage(Vpn{0x100}, kPage8K, Ppn{0x50}, Attr::ReadWrite());  // Covers 0x100-0x101.
  table_.InsertBase(Vpn{0x10F}, Ppn{0x77}, Attr::ReadWrite());
  const auto fill = Lookup(Vpn{0x10F});
  ASSERT_TRUE(fill.has_value());
  EXPECT_EQ(fill->Translate(Vpn{0x10F}), Ppn{0x77});
}

TEST_F(ClusteredTest, LargeSuperpageReplicatesOncePerBlock) {
  // A 256KB superpage covers four 64KB blocks: four compact replicas
  // (conventional tables would need 64 base-site replicas).
  table_.InsertSuperpage(Vpn{0x4000}, PageSize{6}, Ppn{0x1000}, Attr::ReadWrite());
  EXPECT_EQ(table_.node_count(), 4u);
  EXPECT_EQ(table_.SizeBytesPaperModel(), 4u * 24);
  for (unsigned i = 0; i < 64; i += 7) {
    const auto fill = Lookup(Vpn{0x4000} + i);
    ASSERT_TRUE(fill.has_value()) << "page " << i;
    EXPECT_EQ(fill->Translate(Vpn{0x4000} + i), Ppn{0x1000} + i);
    EXPECT_EQ(fill->base_vpn, Vpn{0x4000});
    EXPECT_EQ(fill->pages_log2, 6u);
  }
  EXPECT_TRUE(table_.RemoveSuperpage(Vpn{0x4000}, PageSize{6}));
  EXPECT_EQ(table_.node_count(), 0u);
  EXPECT_EQ(table_.live_translations(), 0u);
}

TEST_F(ClusteredTest, RemoveSubSizeSuperpageKeepsSiblings) {
  table_.InsertSuperpage(Vpn{0x100}, kPage8K, Ppn{0x50}, Attr::ReadWrite());
  table_.InsertSuperpage(Vpn{0x102}, kPage8K, Ppn{0x60}, Attr::ReadWrite());
  EXPECT_EQ(table_.node_count(), 1u) << "both 8KB superpages share one node";
  EXPECT_TRUE(table_.RemoveSuperpage(Vpn{0x100}, kPage8K));
  EXPECT_FALSE(Lookup(Vpn{0x100}).has_value());
  EXPECT_EQ(Lookup(Vpn{0x102})->Translate(Vpn{0x102}), Ppn{0x60});
  EXPECT_EQ(table_.node_count(), 1u);
  EXPECT_TRUE(table_.RemoveSuperpage(Vpn{0x102}, kPage8K));
  EXPECT_EQ(table_.node_count(), 0u);
}

// ---------------------------------------------------------------------------
// Walk cost (the paper's central access-time claim).
// ---------------------------------------------------------------------------

TEST_F(ClusteredTest, SingleNodeLookupTouchesOneLine) {
  // A 144-byte line-aligned node fits in one 256-byte line, including the
  // S-field read of mapping[0] and the mapping[boff] read (Section 6.3).
  for (unsigned i = 0; i < 16; ++i) {
    table_.InsertBase(Vpn{0x100} + i, Ppn{i}, Attr::ReadWrite());
  }
  EXPECT_EQ(LinesFor(Vpn{0x100}), 1u);
  EXPECT_EQ(LinesFor(Vpn{0x10F}), 1u);
}

TEST_F(ClusteredTest, PsbLookupTouchesOneLine) {
  table_.UpsertPartialSubblock(Vpn{0x100}, 16, Ppn{0x40}, Attr::ReadWrite(), 0xFFFF);
  EXPECT_EQ(LinesFor(Vpn{0x105}), 1u);
}

TEST_F(ClusteredTest, MissOnEmptyBucketStillTouchesHeadLine) {
  // The bucket heads are an embedded array of nodes (Figure 4): probing an
  // empty bucket reads its head slot.
  EXPECT_EQ(LinesFor(Vpn{0xDEAD000}), 1u);
}

TEST_F(ClusteredTest, SmallCacheLinesSplitTagAndMapping) {
  // With 64-byte lines a subblock-16 node spans multiple lines: reading the
  // tag and a high mapping costs extra lines (Section 6.3's sensitivity).
  mem::CacheTouchModel small_cache(64);
  ClusteredPageTable t(small_cache, {});
  for (unsigned i = 0; i < 16; ++i) {
    t.InsertBase(Vpn{0x100} + i, Ppn{i}, Attr::ReadWrite());
  }
  small_cache.Reset();
  {
    mem::WalkScope scope(small_cache);
    t.Lookup(VaOf(Vpn{0x10F}));  // mapping[15] at byte offset 136: a different line.
  }
  EXPECT_GE(small_cache.total_lines(), 2u);
  small_cache.Reset();
  {
    mem::WalkScope scope(small_cache);
    t.Lookup(VaOf(Vpn{0x100}));  // mapping[0] shares the tag's line.
  }
  EXPECT_EQ(small_cache.total_lines(), 1u);
}

// ---------------------------------------------------------------------------
// Promotion readiness (Section 5's incremental creation).
// ---------------------------------------------------------------------------

TEST_F(ClusteredTest, BlockReadyForPromotionRequiresFullAlignedBlock) {
  for (unsigned i = 0; i < 15; ++i) {
    table_.InsertBase(Vpn{0x100} + i, Ppn{0x40} + i, Attr::ReadWrite());
  }
  EXPECT_FALSE(table_.BlockReadyForPromotion(Vpbn{0x10})) << "one page missing";
  table_.InsertBase(Vpn{0x10F}, Ppn{0x4F}, Attr::ReadWrite());
  EXPECT_TRUE(table_.BlockReadyForPromotion(Vpbn{0x10}));
}

TEST_F(ClusteredTest, PromotionRejectedWhenNotProperlyPlaced) {
  for (unsigned i = 0; i < 16; ++i) {
    // Frames shuffled: not properly placed.
    table_.InsertBase(Vpn{0x100} + i, Ppn{0x40 + ((i + 1) % 16)}, Attr::ReadWrite());
  }
  EXPECT_FALSE(table_.BlockReadyForPromotion(Vpbn{0x10}));
}

TEST_F(ClusteredTest, PromotionRejectedWhenPhysBaseUnaligned) {
  for (unsigned i = 0; i < 16; ++i) {
    table_.InsertBase(Vpn{0x100} + i, Ppn{0x41} + i, Attr::ReadWrite());  // Base 0x41 unaligned.
  }
  EXPECT_FALSE(table_.BlockReadyForPromotion(Vpbn{0x10}));
}

// ---------------------------------------------------------------------------
// Subblock-factor generality (4, 8, 16, 32, 64 for base arrays).
// ---------------------------------------------------------------------------

class ClusteredFactorTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(ClusteredFactorTest, InsertLookupRemoveAcrossFactors) {
  const unsigned s = GetParam();
  mem::CacheTouchModel cache(256);
  ClusteredPageTable t(cache, {.subblock_factor = s});
  Rng rng(7);
  std::vector<Vpn> vpns;
  for (int i = 0; i < 300; ++i) {
    vpns.push_back(Vpn{rng.Below(1 << 20)});
  }
  for (const Vpn vpn : vpns) {
    t.InsertBase(vpn, Ppn{vpn.raw() & 0xFFFF}, Attr::ReadWrite());
  }
  for (const Vpn vpn : vpns) {
    mem::WalkScope scope(cache);
    const auto fill = t.Lookup(VaOf(vpn));
    ASSERT_TRUE(fill.has_value());
    EXPECT_EQ(fill->Translate(vpn), Ppn{vpn.raw() & 0xFFFF});
  }
  for (const Vpn vpn : vpns) {
    t.RemoveBase(vpn);
  }
  EXPECT_EQ(t.SizeBytesPaperModel(), 0u);
  EXPECT_EQ(t.node_count(), 0u);
}

TEST_P(ClusteredFactorTest, NodeBytesFollowFormula) {
  const unsigned s = GetParam();
  mem::CacheTouchModel cache(256);
  ClusteredPageTable t(cache, {.subblock_factor = s});
  t.InsertBase(Vpn{s * 10}, Ppn{1}, Attr::ReadWrite());
  EXPECT_EQ(t.SizeBytesPaperModel(), 8ull * s + 16);
}

INSTANTIATE_TEST_SUITE_P(Factors, ClusteredFactorTest, ::testing::Values(2, 4, 8, 16, 32, 64));

// Property test: random mixed-format operations keep translation counts and
// sizes consistent with first principles.
TEST(ClusteredPropertyTest, TranslationCountMatchesBruteForceScan) {
  mem::CacheTouchModel cache(256);
  ClusteredPageTable t(cache, {});
  Rng rng(31337);
  // Operate on a confined window of 64 blocks so formats collide often.
  const Vpn base{0x7000};
  for (int step = 0; step < 1500; ++step) {
    const std::uint64_t block = rng.Below(64);
    const Vpn first = base + block * 16;
    switch (rng.Below(6)) {
      case 0:
        t.InsertBase(first + rng.Below(16), Ppn{rng.Below(kPpnMask)}, Attr::ReadWrite());
        break;
      case 1:
        t.RemoveBase(first + rng.Below(16));
        break;
      case 2:
        t.UpsertPartialSubblock(first, 16, Ppn{(rng.Below(1000) + 1) * 16}, Attr::ReadWrite(),
                                static_cast<std::uint16_t>(rng.Below(0x10000)));
        break;
      case 3:
        t.RemovePartialSubblock(first, 16);
        break;
      case 4:
        t.InsertSuperpage(first, kPage64K, Ppn{(rng.Below(1000) + 1) * 16}, Attr::ReadWrite());
        break;
      case 5:
        t.RemoveSuperpage(first, kPage64K);
        break;
    }
    if (step % 100 != 0) {
      continue;
    }
    // Brute-force: count distinct pages with at least one covering mapping.
    std::uint64_t covered = 0;
    for (Vpn vpn = base; vpn < base + 64u * 16u; ++vpn) {
      mem::WalkScope scope(cache);
      covered += t.Lookup(VaOf(vpn)).has_value() ? 1 : 0;
    }
    // live_translations may exceed the covered-page count when several
    // formats map the same page (e.g. a PSB PTE shadowing base PTEs), so
    // check it as an upper bound plus exact agreement when formats are
    // disjoint; covered pages can never exceed live translations.
    EXPECT_LE(covered, t.live_translations()) << "step " << step;
  }
}

TEST(ClusteredOptionsTest, BucketCountAffectsChains) {
  mem::CacheTouchModel cache(256);
  ClusteredPageTable small(cache, {.num_buckets = 16});
  for (Vpn vpn{}; vpn < Vpn{16 * 64}; vpn += 16) {  // 64 blocks into 16 buckets.
    small.InsertBase(vpn, Ppn{1}, Attr::ReadWrite());
  }
  EXPECT_DOUBLE_EQ(small.LoadFactor(), 4.0);
  const Histogram h = small.ChainLengthHistogram();
  EXPECT_EQ(h.total(), 16u);
  EXPECT_DOUBLE_EQ(h.mean(), 4.0);
}

TEST(ClusteredOptionsTest, OccupancyHistogramReflectsBlocks) {
  mem::CacheTouchModel cache(256);
  ClusteredPageTable t(cache, {});
  for (unsigned i = 0; i < 16; ++i) {
    t.InsertBase(Vpn{0x100} + i, Ppn{i}, Attr::ReadWrite());  // Full block.
  }
  t.InsertBase(Vpn{0x200}, Ppn{1}, Attr::ReadWrite());  // Single page.
  const Histogram h = t.BlockOccupancyHistogram();
  EXPECT_EQ(h.count(16), 1u);
  EXPECT_EQ(h.count(1), 1u);
}

}  // namespace
}  // namespace cpt::core
