// Randomized property tests:
//   - PTE words round-trip arbitrary field values bit-exactly;
//   - LookupBlock is observationally equivalent to per-page Lookup on every
//     page-table organization under random mixed-format state;
//   - TlbFill coverage/translation algebra is internally consistent.
#include <gtest/gtest.h>

#include <memory>

#include "common/pte.h"
#include "common/rng.h"
#include "mem/cache_model.h"
#include "sim/machine.h"

namespace cpt {
namespace {

// ---------------------------------------------------------------------------
// PTE word fuzzing.
// ---------------------------------------------------------------------------

TEST(PteFuzzTest, BaseWordsRoundTripRandomFields) {
  Rng rng(1001);
  for (int i = 0; i < 20000; ++i) {
    const Ppn ppn{rng.Below(kPpnMask + 1)};
    const Attr attr{static_cast<std::uint16_t>(rng.Below(0x1000))};
    const MappingWord w = MappingWord::Base(ppn, attr);
    ASSERT_EQ(w.ppn(), ppn);
    ASSERT_EQ(w.attr(), attr);
    ASSERT_EQ(w.kind(), MappingKind::kBase);
    ASSERT_TRUE(w.valid());
    // Serialization round-trip through raw bits.
    ASSERT_EQ(MappingWord::FromBits(w.bits()), w);
  }
}

TEST(PteFuzzTest, SuperpageWordsRoundTripRandomFields) {
  Rng rng(1002);
  for (int i = 0; i < 20000; ++i) {
    const unsigned size_log2 = static_cast<unsigned>(rng.Below(16));
    const Ppn ppn{rng.Below(kPpnMask + 1) & ~((1ull << size_log2) - 1)};
    const Attr attr{static_cast<std::uint16_t>(rng.Below(0x1000))};
    const MappingWord w = MappingWord::Superpage(ppn, attr, PageSize{size_log2});
    ASSERT_EQ(w.ppn(), Ppn{ppn.raw() & kPpnMask});
    ASSERT_EQ(w.attr(), attr);
    ASSERT_EQ(w.page_size().size_log2, size_log2);
    ASSERT_EQ(w.kind(), MappingKind::kSuperpage);
  }
}

TEST(PteFuzzTest, PsbWordsRoundTripRandomFields) {
  Rng rng(1003);
  for (int i = 0; i < 20000; ++i) {
    const Ppn ppn{rng.Below(kPpnMask + 1) & ~0xFull};
    const auto vector = static_cast<std::uint16_t>(rng.Below(0x10000));
    const Attr attr{static_cast<std::uint16_t>(rng.Below(0x1000))};
    const MappingWord w = MappingWord::PartialSubblock(ppn, attr, vector);
    ASSERT_EQ(w.ppn(), ppn);
    ASSERT_EQ(w.attr(), attr);
    ASSERT_EQ(w.valid_vector(), vector);
    ASSERT_EQ(w.valid(), vector != 0);
    for (unsigned boff = 0; boff < 16; ++boff) {
      ASSERT_EQ(w.subpage_valid(boff), ((vector >> boff) & 1) != 0);
      ASSERT_EQ(w.subpage_ppn(boff), ppn + boff);
    }
  }
}

TEST(PteFuzzTest, VectorBitFlipsAreExact) {
  Rng rng(1004);
  MappingWord w = MappingWord::PartialSubblock(Ppn{0x40}, Attr::ReadWrite(), 0);
  std::uint16_t model = 0;
  for (int i = 0; i < 5000; ++i) {
    const unsigned boff = static_cast<unsigned>(rng.Below(16));
    if (rng.Chance(0.5)) {
      w = w.with_subpage_valid(boff);
      model |= static_cast<std::uint16_t>(1u << boff);
    } else {
      w = w.without_subpage_valid(boff);
      model &= static_cast<std::uint16_t>(~(1u << boff));
    }
    ASSERT_EQ(w.valid_vector(), model);
    ASSERT_EQ(w.ppn(), Ppn{0x40}) << "vector updates must not disturb the PPN";
    ASSERT_EQ(w.attr(), Attr::ReadWrite());
  }
}

// ---------------------------------------------------------------------------
// TlbFill algebra.
// ---------------------------------------------------------------------------

TEST(TlbFillTest, CoverageImpliesTranslationConsistency) {
  Rng rng(1005);
  for (int i = 0; i < 10000; ++i) {
    const unsigned pages_log2 = static_cast<unsigned>(rng.Below(5));
    const Vpn base{rng.Below(1 << 28) & ~((1ull << pages_log2) - 1)};
    const Ppn ppn_base{rng.Below(1 << 20) & ~((1ull << pages_log2) - 1)};
    pt::TlbFill fill{.kind = MappingKind::kSuperpage,
                     .base_vpn = base,
                     .pages_log2 = pages_log2,
                     .word = MappingWord::Superpage(ppn_base, Attr::ReadWrite(),
                                                    PageSize{pages_log2})};
    for (unsigned off = 0; off < fill.pages(); ++off) {
      ASSERT_TRUE(fill.Covers(base + off));
      ASSERT_EQ(fill.Translate(base + off), ppn_base + off);
    }
    ASSERT_FALSE(fill.Covers(base + fill.pages()));
    if (base > Vpn{0}) {
      ASSERT_FALSE(fill.Covers(base - 1));
    }
  }
}

// ---------------------------------------------------------------------------
// LookupBlock == per-page Lookup, on every organization.
// ---------------------------------------------------------------------------

class BlockEquivalenceTest : public ::testing::TestWithParam<sim::PtKind> {};

TEST_P(BlockEquivalenceTest, BlockFetchMatchesPointLookups) {
  mem::CacheTouchModel cache(256);
  sim::MachineOptions opts;
  auto table = sim::MakePageTable(GetParam(), cache, opts);
  Rng rng(1006);

  // Random mixed-format population over 64 blocks.
  const Vpn base{0x40000};
  for (int step = 0; step < 600; ++step) {
    const Vpn block_first = base + rng.Below(64) * 16;
    switch (rng.Below(4)) {
      case 0:
        // OS discipline (Section 4.2): never partially overwrite a
        // superpage's replicas — demote the block first.
        if (table->features().superpages) {
          table->RemoveSuperpage(block_first, kPage64K);
        }
        table->InsertBase(block_first + rng.Below(16), Ppn{rng.Below(kPpnMask)},
                          Attr::ReadWrite());
        break;
      case 1:
        if (table->features().superpages) {
          table->RemoveSuperpage(block_first, kPage64K);
        }
        table->RemoveBase(block_first + rng.Below(16));
        break;
      case 2:
        if (table->features().superpages && rng.Chance(0.3)) {
          // Avoid overlapping formats in one block for this equivalence
          // check: clear the block's base pages first.
          for (unsigned i = 0; i < 16; ++i) {
            table->RemoveBase(block_first + i);
          }
          table->InsertSuperpage(block_first, kPage64K, Ppn{(rng.Below(1000) + 1) * 16},
                                 Attr::ReadWrite());
        }
        break;
      case 3:
        if (table->features().superpages) {
          table->RemoveSuperpage(block_first, kPage64K);
        }
        break;
    }
  }

  // For every block: the union of LookupBlock fills must agree with
  // individual Lookups on coverage and translation for all 16 pages.
  for (unsigned blk = 0; blk < 64; ++blk) {
    const Vpn first = base + blk * 16;
    std::vector<pt::TlbFill> fills;
    {
      mem::WalkScope scope(cache);
      table->LookupBlock(VaOf(first), 16, fills);
    }
    for (unsigned i = 0; i < 16; ++i) {
      const Vpn vpn = first + i;
      std::optional<pt::TlbFill> point;
      {
        mem::WalkScope scope(cache);
        point = table->Lookup(VaOf(vpn));
      }
      // A block can legally hold overlapping formats (e.g. a superpage PTE
      // plus a later base PTE), so the point lookup must agree with *some*
      // covering fill, and coverage sets must match exactly.
      bool covered = false;
      bool translation_matches = false;
      for (const auto& f : fills) {
        if (f.Covers(vpn)) {
          covered = true;
          if (point.has_value() && f.Translate(vpn) == point->Translate(vpn)) {
            translation_matches = true;
          }
        }
      }
      ASSERT_EQ(covered, point.has_value())
          << table->name() << " block " << blk << " page " << i;
      if (covered) {
        ASSERT_TRUE(translation_matches)
            << table->name() << " block " << blk << " page " << i;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllTables, BlockEquivalenceTest,
                         ::testing::Values(sim::PtKind::kLinear1, sim::PtKind::kForward,
                                           sim::PtKind::kHashed, sim::PtKind::kClustered,
                                           sim::PtKind::kClusteredAdaptive),
                         [](const ::testing::TestParamInfo<sim::PtKind>& param_info) {
                           std::string n = sim::ToString(param_info.param);
                           for (char& c : n) {
                             if (c == '-') {
                               c = '_';
                             }
                           }
                           return n;
                         });

}  // namespace
}  // namespace cpt
