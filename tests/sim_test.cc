// Tests for the simulation layer: Machine access paths, analytic formulae
// against structural sizes, experiment plumbing, and report formatting.
#include <gtest/gtest.h>

#include "sim/analytic.h"
#include "sim/experiments.h"
#include "sim/machine.h"
#include "sim/report.h"
#include "workload/workload.h"

namespace cpt::sim {
namespace {

TEST(MachineTest, AccessFaultsThenHits) {
  MachineOptions opts;
  opts.pt_kind = PtKind::kClustered;
  Machine m(opts, 1);
  m.Access(0, VaOf(Vpn{0x100}));  // Cold: TLB miss + page fault.
  EXPECT_EQ(m.TotalPageFaults(), 1u);
  EXPECT_EQ(m.tlb().stats().misses, 1u);
  m.Access(0, VaOf(Vpn{0x100}));  // Warm: TLB hit.
  EXPECT_EQ(m.tlb().stats().hits, 1u);
  EXPECT_EQ(m.tlb().stats().misses, 1u);
}

TEST(MachineTest, ColdFaultWalksAreNotCounted) {
  MachineOptions opts;
  opts.pt_kind = PtKind::kHashed;
  Machine m(opts, 1);
  m.Access(0, VaOf(Vpn{0x100}));
  // Exactly one counted walk (the successful one after fault handling).
  EXPECT_EQ(m.cache().total_walks(), 1u);
}

TEST(MachineTest, PreloadMakesTraceFaultFree) {
  const auto& spec = workload::GetPaperWorkload("mp3d");
  const auto snap = workload::BuildSnapshot(spec);
  MachineOptions opts;
  opts.pt_kind = PtKind::kClustered;
  Machine m(opts, 1);
  m.Preload(snap);
  const std::uint64_t preload_faults = m.TotalPageFaults();
  EXPECT_EQ(preload_faults, snap.TotalPages());
  workload::TraceGenerator gen(spec, snap);
  for (int i = 0; i < 20000; ++i) {
    const auto r = gen.Next();
    m.Access(r.asid, r.va);
  }
  EXPECT_EQ(m.TotalPageFaults(), preload_faults) << "no demand faults after preload";
}

TEST(MachineTest, LinearUsesReferenceTlbDenominator) {
  MachineOptions opts;
  opts.pt_kind = PtKind::kLinear1;
  Machine m(opts, 1);
  // Touch more pages than the effective TLB holds; the reference TLB (64
  // entries) must miss at most as often as the 56-entry effective TLB.
  for (int round = 0; round < 4; ++round) {
    for (std::uint64_t i = 0; i < 60; ++i) {
      m.Access(0, VaOf(Vpn{0x1000 + i}));
    }
  }
  EXPECT_LE(m.DenominatorMisses(), m.tlb().stats().misses);
  EXPECT_GT(m.DenominatorMisses(), 0u);
  // Lines counted on effective misses over reference misses => >= 1.
  EXPECT_GE(m.AvgLinesPerMiss(), 1.0);
}

TEST(MachineTest, CompleteSubblockPrefetchEliminatesResidentSubblockMisses) {
  MachineOptions opts;
  opts.pt_kind = PtKind::kClustered;
  opts.tlb_kind = TlbKind::kCompleteSubblock;
  opts.prefetch_on_block_miss = true;
  Machine m(opts, 1);
  // Make a full block resident.
  for (unsigned i = 0; i < 16; ++i) {
    m.Access(0, VaOf(Vpn{0x100} + i));
  }
  m.tlb().Flush();
  m.tlb().ResetStats();
  // One block miss loads all 16 mappings; the rest hit.
  for (unsigned i = 0; i < 16; ++i) {
    m.Access(0, VaOf(Vpn{0x100} + i));
  }
  EXPECT_EQ(m.tlb().stats().block_misses, 1u);
  EXPECT_EQ(m.tlb().stats().subblock_misses, 0u);
  EXPECT_EQ(m.tlb().stats().hits, 15u);
}

TEST(MachineTest, CompleteSubblockWithoutPrefetchTakesSubblockMisses) {
  MachineOptions opts;
  opts.pt_kind = PtKind::kClustered;
  opts.tlb_kind = TlbKind::kCompleteSubblock;
  opts.prefetch_on_block_miss = false;
  Machine m(opts, 1);
  for (unsigned i = 0; i < 16; ++i) {
    m.Access(0, VaOf(Vpn{0x100} + i));
  }
  m.tlb().Flush();
  m.tlb().ResetStats();
  for (unsigned i = 0; i < 16; ++i) {
    m.Access(0, VaOf(Vpn{0x100} + i));
  }
  EXPECT_EQ(m.tlb().stats().block_misses, 1u);
  EXPECT_EQ(m.tlb().stats().subblock_misses, 15u);
}

TEST(MachineTest, SuperpageTlbReducesMissesVersusSinglePage) {
  const auto& spec = workload::GetPaperWorkload("nasa7");
  MachineOptions single;
  single.pt_kind = PtKind::kClustered;
  single.tlb_kind = TlbKind::kSinglePage;
  const auto a = MeasureAccessTime(spec, single, 300000);
  MachineOptions super;
  super.pt_kind = PtKind::kClustered;
  super.tlb_kind = TlbKind::kSuperpage;
  const auto b = MeasureAccessTime(spec, super, 300000);
  // The paper reports 50-99% miss reductions from superpages.
  EXPECT_LT(b.denominator_misses, a.denominator_misses / 2)
      << "superpages must cut misses by >50% on nasa7";
}

TEST(MachineTest, PerProcessPageTablesAreIsolated) {
  MachineOptions opts;
  opts.pt_kind = PtKind::kClustered;
  Machine m(opts, 2);
  m.Access(0, VaOf(Vpn{0x100}));
  EXPECT_EQ(m.page_table(0).live_translations(), 1u);
  EXPECT_EQ(m.page_table(1).live_translations(), 0u);
  m.Access(1, VaOf(Vpn{0x100}));
  EXPECT_EQ(m.page_table(1).live_translations(), 1u);
}

// ---------------------------------------------------------------------------
// Analytic formulae (Table 2) against structural simulation.
// ---------------------------------------------------------------------------

TEST(AnalyticTest, NactiveCountsAlignedRegions) {
  const std::vector<Vpn> mapped = {Vpn{0}, Vpn{1}, Vpn{15}, Vpn{16}, Vpn{100}, Vpn{4096}};
  EXPECT_EQ(analytic::Nactive(mapped, 1), 6u);
  EXPECT_EQ(analytic::Nactive(mapped, 16), 4u);   // {0,1,15}, {16}, {100}, {4096}.
  EXPECT_EQ(analytic::Nactive(mapped, 4096), 2u);  // {0..4095}, {4096}.
}

TEST(AnalyticTest, HashedFormulaExact) {
  const std::vector<Vpn> mapped = {Vpn{1}, Vpn{2}, Vpn{3}, Vpn{100}, Vpn{5000}};
  EXPECT_EQ(analytic::HashedBytes(mapped), 5u * 24);
}

TEST(AnalyticTest, ClusteredFormulaExact) {
  const std::vector<Vpn> mapped = {Vpn{0}, Vpn{1}, Vpn{2}, Vpn{16}, Vpn{33}};
  // Blocks {0},{1},{2} with s=16 -> 3 * (8*16+16) = 432.
  EXPECT_EQ(analytic::ClusteredBytes(mapped, 16), 3u * 144);
}

TEST(AnalyticTest, ClusteredWithSpInterpolates) {
  const std::vector<Vpn> mapped = {Vpn{0}, Vpn{16}, Vpn{32}, Vpn{48}};  // 4 blocks.
  EXPECT_DOUBLE_EQ(analytic::ClusteredWithSpBytes(mapped, 16, 0.0), 4.0 * 144);
  EXPECT_DOUBLE_EQ(analytic::ClusteredWithSpBytes(mapped, 16, 1.0), 4.0 * 24);
  EXPECT_DOUBLE_EQ(analytic::ClusteredWithSpBytes(mapped, 16, 0.5), 2.0 * 144 + 2.0 * 24);
}

TEST(AnalyticTest, AccessFormulae) {
  EXPECT_DOUBLE_EQ(analytic::HashChainLines(1.0), 1.5);
  EXPECT_DOUBLE_EQ(analytic::LinearLines(0.1, 2.0), 1.2);
  EXPECT_DOUBLE_EQ(analytic::ForwardLines(), 7.0);
}

// Property: the closed forms match the structural tables exactly on every
// paper workload (the accounting is exact for these four organizations).
TEST(AnalyticStructuralTest, FormulaeMatchBuiltTables) {
  for (const char* name : {"coral", "gcc", "compress", "kernel"}) {
    const auto& spec = workload::GetPaperWorkload(name);
    const auto snap = workload::BuildSnapshot(spec);
    std::uint64_t eq_hashed = 0;
    std::uint64_t eq_clustered = 0;
    std::uint64_t eq_linear6 = 0;
    std::uint64_t eq_forward = 0;
    for (std::size_t p = 0; p < snap.pages.size(); ++p) {
      const auto mapped = snap.FlatProcess(p);
      eq_hashed += analytic::HashedBytes(mapped);
      eq_clustered += analytic::ClusteredBytes(mapped, 16);
      eq_linear6 += analytic::MultiLevelLinearBytes(mapped);
      eq_forward += analytic::ForwardMappedBytes(mapped);
    }
    EXPECT_EQ(MeasurePtSize(spec, {"h", PtKind::kHashed}).bytes, eq_hashed) << name;
    EXPECT_EQ(MeasurePtSize(spec, {"c", PtKind::kClustered}).bytes, eq_clustered) << name;
    EXPECT_EQ(MeasurePtSize(spec, {"l", PtKind::kLinear6}).bytes, eq_linear6) << name;
    EXPECT_EQ(MeasurePtSize(spec, {"f", PtKind::kForward}).bytes, eq_forward) << name;
  }
}

// ---------------------------------------------------------------------------
// Paper-shape integration tests: the headline claims, asserted.
// ---------------------------------------------------------------------------

TEST(PaperShapeTest, Figure9ClusteredBeatsHashedEverywhere) {
  for (const auto& name : AllWorkloadNames()) {
    const auto& spec = workload::GetPaperWorkload(name);
    const auto m = MeasurePtSize(spec, {"clustered", PtKind::kClustered});
    EXPECT_LT(m.normalized, 1.0) << name;
  }
}

TEST(PaperShapeTest, Figure9LinearExplodesForSparseWorkloads) {
  for (const char* name : {"gcc", "compress"}) {
    const auto& spec = workload::GetPaperWorkload(name);
    const auto m = MeasurePtSize(spec, {"linear6", PtKind::kLinear6});
    EXPECT_GT(m.normalized, 3.0) << name;
  }
}

TEST(PaperShapeTest, Figure10PsbCutsClusteredSize) {
  const auto& spec = workload::GetPaperWorkload("coral");
  const auto base = MeasurePtSize(spec, {"c", PtKind::kClustered});
  const auto psb =
      MeasurePtSize(spec, {"p", PtKind::kClustered, os::PteStrategy::kPartialSubblock});
  EXPECT_LT(psb.bytes, base.bytes / 3) << "PSB PTEs must cut size by >66% on coral";
}

TEST(PaperShapeTest, Figure11aForwardMappedCostsSevenLines) {
  const auto& spec = workload::GetPaperWorkload("compress");
  MachineOptions opts;
  opts.pt_kind = PtKind::kForward;
  const auto m = MeasureAccessTime(spec, opts, 200000);
  EXPECT_NEAR(m.avg_lines_per_miss, 7.0, 0.05);
}

TEST(PaperShapeTest, Figure11dHashedPaysMultipleProbes) {
  const auto& spec = workload::GetPaperWorkload("mp3d");
  MachineOptions hashed;
  hashed.pt_kind = PtKind::kHashed;
  hashed.tlb_kind = TlbKind::kCompleteSubblock;
  const auto h = MeasureAccessTime(spec, hashed, 200000);
  MachineOptions clustered;
  clustered.pt_kind = PtKind::kClustered;
  clustered.tlb_kind = TlbKind::kCompleteSubblock;
  const auto c = MeasureAccessTime(spec, clustered, 200000);
  EXPECT_GT(h.avg_lines_per_miss, 8.0);
  EXPECT_LT(c.avg_lines_per_miss, 1.5);
}

// ---------------------------------------------------------------------------
// Report formatting.
// ---------------------------------------------------------------------------

TEST(ReportTest, AlignsColumnsAndFormatsCells) {
  Report r({"name", "value"});
  r.AddRow({"x", Report::Fixed(1.5, 2)});
  r.AddRow({"longer-name", Report::Num(42)});
  const std::string s = r.ToString();
  EXPECT_NE(s.find("longer-name"), std::string::npos);
  EXPECT_NE(s.find("1.50"), std::string::npos);
  EXPECT_NE(s.find("42"), std::string::npos);
  EXPECT_EQ(Report::Kb(2048), "2KB");
}

TEST(ExperimentsTest, TraceLengthEnvOverride) {
  EXPECT_EQ(TraceLengthFromEnv(123), 123u);
}

TEST(ExperimentsTest, WorkloadNameLists) {
  EXPECT_EQ(TraceWorkloadNames().size(), 10u);
  EXPECT_EQ(AllWorkloadNames().size(), 11u);
  EXPECT_EQ(AllWorkloadNames().back(), "kernel");
}

}  // namespace
}  // namespace cpt::sim
