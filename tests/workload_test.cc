// Tests for the workload generators: determinism, calibration against
// Table 1, density/burstiness properties, and trace well-formedness.
#include "workload/workload.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace cpt::workload {
namespace {

TEST(SnapshotTest, DeterministicForSameSeed) {
  const WorkloadSpec& spec = GetPaperWorkload("coral");
  const Snapshot a = BuildSnapshot(spec);
  const Snapshot b = BuildSnapshot(spec);
  ASSERT_EQ(a.pages.size(), b.pages.size());
  EXPECT_EQ(a.pages, b.pages);
}

TEST(SnapshotTest, DifferentSeedsDiffer) {
  WorkloadSpec spec = GetPaperWorkload("coral");
  const Snapshot a = BuildSnapshot(spec);
  spec.seed ^= 0x5555;
  const Snapshot b = BuildSnapshot(spec);
  EXPECT_NE(a.pages, b.pages);
}

TEST(SnapshotTest, PagesAreSortedUniqueAndInSegment) {
  for (const WorkloadSpec& spec : PaperWorkloads()) {
    const Snapshot snap = BuildSnapshot(spec);
    ASSERT_EQ(snap.pages.size(), spec.processes.size()) << spec.name;
    for (std::size_t p = 0; p < snap.pages.size(); ++p) {
      ASSERT_EQ(snap.pages[p].size(), spec.processes[p].segments.size());
      for (std::size_t s = 0; s < snap.pages[p].size(); ++s) {
        const auto& pages = snap.pages[p][s];
        const Segment& seg = spec.processes[p].segments[s];
        EXPECT_TRUE(std::is_sorted(pages.begin(), pages.end()));
        EXPECT_TRUE(std::adjacent_find(pages.begin(), pages.end()) == pages.end())
            << "duplicates in " << spec.name;
        if (!pages.empty()) {
          EXPECT_GE(pages.front(), VpnOf(seg.base));
          EXPECT_LE(pages.back(), VpnOf(seg.base) + seg.span_pages);
        }
      }
    }
  }
}

TEST(SnapshotTest, DensityRoughlyHonored) {
  for (const WorkloadSpec& spec : PaperWorkloads()) {
    const Snapshot snap = BuildSnapshot(spec);
    for (std::size_t p = 0; p < snap.pages.size(); ++p) {
      for (std::size_t s = 0; s < snap.pages[p].size(); ++s) {
        const Segment& seg = spec.processes[p].segments[s];
        const double got =
            static_cast<double>(snap.pages[p][s].size()) / static_cast<double>(seg.span_pages);
        EXPECT_NEAR(got, seg.density, 0.25) << spec.name << " proc " << p << " seg " << s;
      }
    }
  }
}

TEST(CalibrationTest, HashedPtBytesMatchTable1Within10Percent) {
  for (const PaperReference& ref : PaperTable1()) {
    const WorkloadSpec& spec = GetPaperWorkload(ref.name);
    const Snapshot snap = BuildSnapshot(spec);
    const std::uint64_t hashed_bytes = snap.TotalPages() * 24;
    const double rel = static_cast<double>(hashed_bytes) /
                       static_cast<double>(ref.hashed_pt_bytes);
    EXPECT_GT(rel, 0.90) << ref.name;
    EXPECT_LT(rel, 1.10) << ref.name;
  }
}

TEST(TraceTest, DeterministicForSameSeed) {
  const WorkloadSpec& spec = GetPaperWorkload("mp3d");
  const Snapshot snap = BuildSnapshot(spec);
  TraceGenerator g1(spec, snap);
  TraceGenerator g2(spec, snap);
  for (int i = 0; i < 10000; ++i) {
    const Reference a = g1.Next();
    const Reference b = g2.Next();
    ASSERT_EQ(a.asid, b.asid);
    ASSERT_EQ(a.va, b.va);
  }
}

TEST(TraceTest, ReferencesStayOnMappedPages) {
  for (const char* name : {"coral", "gcc", "compress", "ml"}) {
    const WorkloadSpec& spec = GetPaperWorkload(name);
    const Snapshot snap = BuildSnapshot(spec);
    std::vector<std::set<Vpn>> mapped(snap.pages.size());
    for (std::size_t p = 0; p < snap.pages.size(); ++p) {
      const auto flat = snap.FlatProcess(p);
      mapped[p].insert(flat.begin(), flat.end());
    }
    TraceGenerator gen(spec, snap);
    for (int i = 0; i < 20000; ++i) {
      const Reference r = gen.Next();
      ASSERT_LT(r.asid, mapped.size()) << name;
      EXPECT_TRUE(mapped[r.asid].count(VpnOf(r.va)) == 1)
          << name << ": reference to unmapped page at step " << i;
    }
  }
}

TEST(TraceTest, MultiprogrammedWorkloadsInterleaveAsids) {
  const WorkloadSpec& spec = GetPaperWorkload("compress");
  const Snapshot snap = BuildSnapshot(spec);
  TraceGenerator gen(spec, snap);
  std::set<tlb::Asid> seen;
  for (int i = 0; i < 100000; ++i) {
    seen.insert(gen.Next().asid);
  }
  EXPECT_EQ(seen.size(), 2u);
}

TEST(TraceTest, SequentialProcessesRunInTurn) {
  const WorkloadSpec& spec = GetPaperWorkload("gcc");
  const Snapshot snap = BuildSnapshot(spec);
  TraceGenerator gen(spec, snap);
  // Within the first share, only asid 0 runs.
  const std::uint64_t share = spec.default_trace_length / spec.processes.size();
  for (std::uint64_t i = 0; i + 1 < share; ++i) {
    ASSERT_EQ(gen.Next().asid, 0u) << "step " << i;
  }
  // Across the full schedule every process appears.
  std::set<tlb::Asid> seen;
  for (std::uint64_t i = 0; i < spec.default_trace_length; ++i) {
    seen.insert(gen.Next().asid);
  }
  EXPECT_EQ(seen.size(), spec.processes.size());
}

TEST(TraceTest, SojournControlsPageChangeRate) {
  // Two otherwise-identical single-segment workloads: the one with the
  // larger sojourn must change pages less often.
  auto make = [](double sojourn) {
    WorkloadSpec w;
    w.name = "test";
    w.seed = 9;
    ProcessSpec p;
    p.name = "p";
    Segment seg;
    seg.base = VirtAddr{0x10000000};
    seg.span_pages = 1000;
    seg.density = 1.0;
    seg.pattern = AccessPattern::kRandom;
    seg.sojourn_mean = sojourn;
    p.segments = {seg};
    w.processes = {p};
    return w;
  };
  auto page_changes = [](const WorkloadSpec& spec) {
    const Snapshot snap = BuildSnapshot(spec);
    TraceGenerator gen(spec, snap);
    Vpn last{~std::uint64_t{0}};
    std::uint64_t changes = 0;
    for (int i = 0; i < 50000; ++i) {
      const Vpn vpn = VpnOf(gen.Next().va);
      changes += vpn != last;
      last = vpn;
    }
    return changes;
  };
  const auto fast = page_changes(make(4));
  const auto slow = page_changes(make(64));
  EXPECT_GT(fast, slow * 5);
}

TEST(PaperWorkloadsTest, AllElevenPresent) {
  EXPECT_EQ(PaperWorkloads().size(), 11u);
  for (const char* name : {"coral", "nasa7", "compress", "fftpde", "wave5", "mp3d", "spice",
                           "pthor", "ml", "gcc", "kernel"}) {
    EXPECT_EQ(GetPaperWorkload(name).name, name);
  }
}

TEST(PaperWorkloadsTest, MultiprogrammedShapesMatchPaper) {
  EXPECT_EQ(GetPaperWorkload("compress").processes.size(), 2u);
  EXPECT_EQ(GetPaperWorkload("gcc").processes.size(), 5u);
  EXPECT_TRUE(GetPaperWorkload("gcc").sequential_processes);
  EXPECT_FALSE(GetPaperWorkload("compress").sequential_processes);
}

}  // namespace
}  // namespace cpt::workload
