// Tests for the strong address types (common/types.h): the compile-time
// round-trip identities the domain crossings promise, the non-convertibility
// that makes the tags worth having, and the contract checks (Log2(0),
// non-power-of-two subblock factors) that die instead of corrupting counts.
//
// Most of this file is static_asserts: the crossings are constexpr, so the
// identities are proved at compile time and the TESTs merely anchor them to
// the runner's output.
#include "common/types.h"

#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <type_traits>
#include <unordered_set>

#include "common/sync.h"

namespace cpt {
namespace {

// ---------------------------------------------------------------------------
// VA <-> VPN round trips.
// ---------------------------------------------------------------------------

static_assert(VpnOf(VirtAddr{0x0000123456789ABCull}) == Vpn{0x0000123456789ull});
static_assert(VaOf(Vpn{0x0000123456789ull}) == VirtAddr{0x0000123456789000ull});
static_assert(PageOffset(VirtAddr{0x0000123456789ABCull}) == 0xABCull);
// VaOf . VpnOf truncates to the page base; VpnOf . VaOf is the identity.
static_assert(VpnOf(VaOf(Vpn{0x12345})) == Vpn{0x12345});
static_assert(VaOf(VpnOf(VirtAddr{0x1000F})) == VirtAddr{0x10000});

// PA <-> PPN round trips (28-bit PPNs; Figure 1).
static_assert(PpnOf(PaOf(Ppn{0xABCDEF1})) == Ppn{0xABCDEF1});
static_assert(PpnOf(PaOf(kMaxPpn)) == kMaxPpn);

// ---------------------------------------------------------------------------
// VPN <-> (VPBN, Boff) round trips for every subblock factor the paper's
// evaluation uses (4, 16, 64).
// ---------------------------------------------------------------------------

constexpr bool BlockRoundTrips(std::uint64_t raw_vpn, unsigned factor) {
  const Vpn vpn{raw_vpn};
  const Vpbn vpbn = VpbnOf(vpn, factor);
  const unsigned boff = BoffOf(vpn, factor);
  return boff < factor && FirstVpnOfBlock(vpbn, factor) + boff == vpn &&
         BlockSpanOf(vpbn, factor).Contains(vpn) &&
         BlockSpanContaining(vpn, factor).IndexOf(vpn) == boff;
}

static_assert(BlockRoundTrips(0x12345, 4));
static_assert(BlockRoundTrips(0x12345, 16));
static_assert(BlockRoundTrips(0x12345, 64));
static_assert(BlockRoundTrips(0, 16));
static_assert(BlockRoundTrips((1ull << 52) - 1, 16));
static_assert(BlockRoundTrips((1ull << 52) - 1, 64));

static_assert(VpbnOf(Vpn{0x12345}, 16) == Vpbn{0x1234});
static_assert(BoffOf(Vpn{0x12345}, 16) == 5u);
static_assert(FirstVpnOfBlock(Vpbn{0x1234}, 16) == Vpn{0x12340});

// ---------------------------------------------------------------------------
// PageSize geometry and superpage alignment.
// ---------------------------------------------------------------------------

static_assert(kPage4K.bytes() == 4096u && kPage4K.pages() == 1u && kPage4K.is_base());
static_assert(kPage8K.bytes() == 8192u && kPage8K.pages() == 2u);
static_assert(kPage16K.bytes() == 16384u && kPage16K.pages() == 4u);
static_assert(kPage64K.bytes() == 65536u && kPage64K.pages() == 16u && !kPage64K.is_base());

static_assert(SuperpageBaseVpn(Vpn{0x1234F}, kPage64K) == Vpn{0x12340});
static_assert(SuperpageBasePpn(Ppn{0x8007}, kPage64K) == Ppn{0x8000});
static_assert(IsSuperpageAligned(Vpn{0x12340}, kPage64K));
static_assert(!IsSuperpageAligned(Vpn{0x12341}, kPage64K));
static_assert(IsSuperpageAligned(Ppn{0x8000}, kPage64K));
static_assert(!IsSuperpageAligned(Ppn{0x8008}, kPage64K));

// ---------------------------------------------------------------------------
// Negative checks: the domains must NOT interconvert.  These are the
// guarantees the tree-wide sweep leans on; losing one silently reopens the
// unshifted-address bug class.
// ---------------------------------------------------------------------------

static_assert(!std::is_convertible_v<Vpn, Vpbn>);
static_assert(!std::is_convertible_v<Vpbn, Vpn>);
static_assert(!std::is_convertible_v<Vpn, Ppn>);
static_assert(!std::is_convertible_v<Ppn, Vpn>);
static_assert(!std::is_convertible_v<VirtAddr, Vpn>);
static_assert(!std::is_convertible_v<Vpn, VirtAddr>);
static_assert(!std::is_convertible_v<VirtAddr, PhysAddr>);
static_assert(!std::is_convertible_v<PhysAddr, VirtAddr>);
static_assert(!std::is_convertible_v<std::uint64_t, Vpn>);
static_assert(!std::is_convertible_v<Vpn, std::uint64_t>);
static_assert(!std::is_convertible_v<int, Ppn>);
static_assert(!std::is_constructible_v<Vpn, Vpbn>);
static_assert(!std::is_constructible_v<Ppn, Vpn>);

// Explicit construction from the raw word is the only way in.
static_assert(std::is_constructible_v<Vpn, std::uint64_t>);
static_assert(std::is_nothrow_default_constructible_v<Vpn>);

// ABI pin: the tags add nothing to the representation.
static_assert(sizeof(Vpn) == 8 && std::is_trivially_copyable_v<Vpn>);
static_assert(sizeof(VirtAddr) == 8 && std::is_trivially_copyable_v<VirtAddr>);

// Same-domain affine algebra stays in the domain; distance is a raw count.
static_assert(Vpn{0x100} + 5 == Vpn{0x105});
static_assert(Vpn{0x105} - 5 == Vpn{0x100});
static_assert(Vpn{0x105} - Vpn{0x100} == 5u);
static_assert(std::is_same_v<decltype(Vpn{1} + 1), Vpn>);
static_assert(std::is_same_v<decltype(Vpn{2} - Vpn{1}), std::uint64_t>);

// Log2 / IsPowerOfTwo on valid inputs.
static_assert(Log2(1) == 0u && Log2(16) == 4u && Log2(4096) == 12u);
static_assert(IsPowerOfTwo(64) && !IsPowerOfTwo(48) && !IsPowerOfTwo(0));

TEST(TypesTest, CompileTimeIdentitiesAnchored) {
  // The static_asserts above are the test; this anchors them in the runner.
  SUCCEED();
}

TEST(TypesTest, IncrementWalksThePageSequence) {
  Vpn vpn{0x0FFF};
  EXPECT_EQ(++vpn, Vpn{0x1000});
  EXPECT_EQ(vpn++, Vpn{0x1000});
  EXPECT_EQ(vpn, Vpn{0x1001});
  vpn += 15;
  EXPECT_EQ(vpn, Vpn{0x1010});
  vpn -= 16;
  EXPECT_EQ(vpn, Vpn{0x1000});
}

TEST(TypesTest, StreamInsertionPrintsRawWord) {
  std::ostringstream os;
  os << Vpn{42} << " " << Ppn{7};
  EXPECT_EQ(os.str(), "42 7");
}

TEST(TypesTest, HashesDropIntoUnorderedContainers) {
  std::unordered_set<Vpn> set;
  set.insert(Vpn{0x100});
  set.insert(Vpn{0x100});
  set.insert(Vpn{0x101});
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.count(Vpn{0x100}));
  EXPECT_FALSE(set.count(Vpn{0x102}));
}

TEST(TypesTest, BlockSpanEdges) {
  const BlockSpan span = BlockSpanOf(Vpbn{0x10}, 16);
  EXPECT_EQ(span.first, Vpn{0x100});
  EXPECT_EQ(span.end(), Vpn{0x110});
  EXPECT_TRUE(span.Contains(Vpn{0x100}));
  EXPECT_TRUE(span.Contains(Vpn{0x10F}));
  EXPECT_FALSE(span.Contains(Vpn{0x110}));
  EXPECT_FALSE(span.Contains(Vpn{0xFF}));
  EXPECT_EQ(span.IndexOf(Vpn{0x10F}), 15u);
}

// ---------------------------------------------------------------------------
// Contract checks die loudly instead of producing wrong counts.
// ---------------------------------------------------------------------------

TEST(TypesDeathTest, Log2OfZeroIsAContractViolation) {
#ifdef NDEBUG
  GTEST_SKIP() << "CPT_DCHECK compiled out";
#else
  // A volatile operand keeps the call out of constant evaluation, where the
  // failed DCHECK would be a compile error rather than a death.
  volatile std::uint64_t zero = 0;
  EXPECT_DEATH(Log2(zero), "Log2\\(0\\) is undefined");
#endif
}

TEST(TypesDeathTest, NonPowerOfTwoSubblockFactorsAreRejected) {
#ifdef NDEBUG
  GTEST_SKIP() << "CPT_DCHECK compiled out";
#else
  EXPECT_DEATH(VpbnOf(Vpn{0x100}, 12), "power of two");
  EXPECT_DEATH(BoffOf(Vpn{0x100}, 12), "power of two");
  EXPECT_DEATH(FirstVpnOfBlock(Vpbn{0x10}, 12), "power of two");
#endif
}

TEST(TypesDeathTest, PpnConstructionChecksTheRange) {
#ifdef NDEBUG
  GTEST_SKIP() << "CPT_DCHECK compiled out";
#else
  volatile std::uint64_t too_big = kPpnMask + 1;
  EXPECT_DEATH(Ppn{too_big}, "representable range");
#endif
}

TEST(TypesDeathTest, BlockSpanIndexOfOutsideTheSpan) {
#ifdef NDEBUG
  GTEST_SKIP() << "CPT_DCHECK compiled out";
#else
  const BlockSpan span = BlockSpanOf(Vpbn{0x10}, 16);
  EXPECT_DEATH(span.IndexOf(Vpn{0x110}), "outside the span");
#endif
}

// ---------------------------------------------------------------------------
// Atomic storage of the strong types (Section 3.1's lock-free claim).
// ---------------------------------------------------------------------------

// The concurrency contracts store strong-typed values in atomic cells
// (bucket heads, counters, PTE words); the paper's "lock-free" language only
// holds if none of those specializations fall back to a lock table.
static_assert(std::atomic<Vpn>::is_always_lock_free);
static_assert(std::atomic<Vpbn>::is_always_lock_free);
static_assert(std::atomic<Ppn>::is_always_lock_free);
static_assert(std::atomic<VirtAddr>::is_always_lock_free);
static_assert(std::atomic<PhysAddr>::is_always_lock_free);
static_assert(std::atomic<std::uint64_t>::is_always_lock_free);

// The tags must not grow the cell: an atomic strong type is exactly the
// 8-byte word the size model accounts for.
static_assert(sizeof(std::atomic<Vpn>) == sizeof(std::uint64_t));
static_assert(sizeof(AtomicCell<Vpn>) == sizeof(std::uint64_t));

// ---------------------------------------------------------------------------
// Sync-wrapper misuse dies in debug builds (common/sync.h).
// ---------------------------------------------------------------------------

TEST(SyncDeathTest, UnlockOfAMutexNotHeld) {
#ifdef NDEBUG
  GTEST_SKIP() << "CPT_DCHECK compiled out";
#else
  Mutex mu;
  EXPECT_DEATH(mu.unlock(), "unlock of a Mutex not held");
#endif
}

TEST(SyncDeathTest, SharedUnlockWithNoReaders) {
#ifdef NDEBUG
  GTEST_SKIP() << "CPT_DCHECK compiled out";
#else
  SharedMutex mu;
  EXPECT_DEATH(mu.unlock_shared(), "unlock_shared of a SharedMutex with no readers");
  EXPECT_DEATH(mu.unlock(), "unlock of a SharedMutex not held");
#endif
}

TEST(SyncDeathTest, StripeForOnAnEmptyStripeSet) {
#ifdef NDEBUG
  GTEST_SKIP() << "CPT_DCHECK compiled out";
#else
  const StripeSet stripes(0);
  EXPECT_DEATH(stripes.StripeFor(42), "StripeFor on an empty StripeSet");
#endif
}

TEST(SyncDeathTest, NonPowerOfTwoStripeCountIsRejected) {
  // CPT_CHECK: on in every build type, no NDEBUG guard needed.
  EXPECT_DEATH(StripeSet{12}, "power of two");
}

}  // namespace
}  // namespace cpt
