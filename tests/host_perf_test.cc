// HostPerfCounters contract tests, centered on the degradation path.
//
// perf_event_open is routinely forbidden in containers and CI (EPERM under
// seccomp, EACCES under perf_event_paranoid, ENOSYS/ENOENT elsewhere), so
// the *degraded* mode is the one these tests pin hard: CPT_NO_HOST_PERF=1
// must force it deterministically, samples must still carry rusage and
// wall-clock data, and the JSON shape must be byte-layout identical to the
// available mode (counters read as zero).  Live-counter assertions are
// guarded on available() so the suite passes on perf-less hosts.
#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>

#include "obs/json_writer.h"
#include "obs/perf.h"

namespace cpt::obs {
namespace {

// Scoped CPT_NO_HOST_PERF override; restores the prior value on exit so
// tests cannot leak mode changes into each other.
class ScopedForceOff {
 public:
  explicit ScopedForceOff(bool on) {
    const char* prev = std::getenv("CPT_NO_HOST_PERF");
    had_prev_ = prev != nullptr;
    if (had_prev_) {
      prev_ = prev;
    }
    if (on) {
      ::setenv("CPT_NO_HOST_PERF", "1", 1);
    } else {
      ::unsetenv("CPT_NO_HOST_PERF");
    }
  }
  ~ScopedForceOff() {
    if (had_prev_) {
      ::setenv("CPT_NO_HOST_PERF", prev_.c_str(), 1);
    } else {
      ::unsetenv("CPT_NO_HOST_PERF");
    }
  }

 private:
  bool had_prev_ = false;
  std::string prev_;
};

std::string JsonOf(const HostPerfSample& s) {
  std::ostringstream os;
  JsonWriter w(os);
  ToJson(w, s);
  return os.str();
}

// Burns a little CPU so counters and rusage have something to measure.
volatile std::uint64_t g_sink = 0;
void Spin() {
  std::uint64_t acc = 1;
  for (int i = 0; i < 2'000'000; ++i) {
    acc = acc * 2862933555777941757ULL + 3037000493ULL;
  }
  g_sink = acc;
}

TEST(HostPerfTest, EnvVarForcesDegradedMode) {
  ScopedForceOff force(true);
  EXPECT_TRUE(HostPerfCounters::ForcedOff());

  HostPerfCounters pc;
  EXPECT_FALSE(pc.available());
  EXPECT_FALSE(pc.unavailable_reason().empty());
  EXPECT_NE(pc.unavailable_reason().find("CPT_NO_HOST_PERF"), std::string::npos);
}

TEST(HostPerfTest, DegradedSampleCarriesRusageFallback) {
  ScopedForceOff force(true);
  HostPerfCounters pc;
  pc.Start();
  Spin();
  const HostPerfSample s = pc.Stop();

  EXPECT_FALSE(s.available);
  EXPECT_EQ(s.source, "rusage");
  EXPECT_FALSE(s.reason.empty());

  // The wall clock and rusage side stays live in degraded mode.
  EXPECT_GT(s.wall_seconds, 0.0);
  EXPECT_GE(s.user_seconds + s.sys_seconds, 0.0);
  EXPECT_GT(s.max_rss_kb, 0u);

  // Counters and derived rates all read zero — never garbage.
  EXPECT_EQ(s.cycles, 0u);
  EXPECT_EQ(s.instructions, 0u);
  EXPECT_EQ(s.llc_misses, 0u);
  EXPECT_EQ(s.dtlb_load_misses, 0u);
  EXPECT_EQ(s.branch_misses, 0u);
  EXPECT_EQ(s.time_enabled_ns, 0u);
  EXPECT_EQ(s.time_running_ns, 0u);
  EXPECT_DOUBLE_EQ(s.Ipc(), 0.0);
  EXPECT_DOUBLE_EQ(s.LlcMpki(), 0.0);
  EXPECT_DOUBLE_EQ(s.DtlbMpki(), 0.0);
  EXPECT_DOUBLE_EQ(s.BranchMpki(), 0.0);
}

TEST(HostPerfTest, StartStopReusableAcrossBrackets) {
  ScopedForceOff force(true);
  HostPerfCounters pc;
  for (int i = 0; i < 3; ++i) {
    pc.Start();
    Spin();
    const HostPerfSample s = pc.Stop();
    EXPECT_GT(s.wall_seconds, 0.0) << "bracket " << i;
  }
}

TEST(HostPerfTest, JsonShapeIsAvailabilityInvariant) {
  // The degradation contract: a report from a perf-less host must be
  // schema-identical to one from bare metal.  Compare the emitted key
  // sequence of a degraded sample against a hand-built "available" one.
  ScopedForceOff force(true);
  HostPerfCounters pc;
  pc.Start();
  const HostPerfSample degraded = pc.Stop();

  HostPerfSample live;
  live.available = true;
  live.source = "perf_event";
  live.cycles = 12345;
  live.instructions = 23456;
  live.llc_misses = 7;
  live.wall_seconds = 0.5;

  // Strip values: keep only the quoted key names, in order.
  const auto keys = [](const std::string& json) {
    std::string out;
    bool in_string = false;
    std::string current;
    for (std::size_t i = 0; i < json.size(); ++i) {
      const char c = json[i];
      if (c == '"') {
        if (in_string) {
          // A key is a string immediately followed by ':'.
          if (i + 1 < json.size() && json[i + 1] == ':') {
            out += current;
            out += ',';
          }
          in_string = false;
        } else {
          in_string = true;
          current.clear();
        }
      } else if (in_string) {
        current += c;
      }
    }
    return out;
  };
  EXPECT_EQ(keys(JsonOf(degraded)), keys(JsonOf(live)));

  const std::string json = JsonOf(degraded);
  EXPECT_NE(json.find("\"available\": false"), std::string::npos);
  EXPECT_NE(json.find("\"source\": \"rusage\""), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"derived\""), std::string::npos);
}

TEST(HostPerfTest, LiveCountersAreMonotoneWhenAvailable) {
  ScopedForceOff force(false);
  HostPerfCounters pc;
  if (!pc.available()) {
    GTEST_SKIP() << "perf_event_open unavailable: " << pc.unavailable_reason();
  }
  pc.Start();
  Spin();
  const HostPerfSample s = pc.Stop();
  EXPECT_TRUE(s.available);
  EXPECT_EQ(s.source, "perf_event");
  EXPECT_TRUE(s.reason.empty());
  EXPECT_GT(s.cycles, 0u);
  EXPECT_GT(s.instructions, 0u);
  EXPECT_GT(s.Ipc(), 0.0);
}

TEST(HostPerfTest, AccumulateSumsAndDegradesAvailability) {
  HostPerfSample a;
  a.available = true;
  a.source = "perf_event";
  a.wall_seconds = 1.0;
  a.cycles = 100;
  a.instructions = 400;
  a.max_rss_kb = 50;
  a.minor_faults = 3;

  HostPerfSample b;
  b.available = false;
  b.source = "rusage";
  b.reason = "testing";
  b.wall_seconds = 2.0;
  b.max_rss_kb = 80;
  b.minor_faults = 4;

  HostPerfSample sum;
  sum.Accumulate(a);
  EXPECT_TRUE(sum.available);
  EXPECT_EQ(sum.source, "perf_event");

  sum.Accumulate(b);
  // One degraded contributor degrades the whole aggregate.
  EXPECT_FALSE(sum.available);
  EXPECT_EQ(sum.source, "rusage");
  EXPECT_EQ(sum.reason, "testing");
  EXPECT_DOUBLE_EQ(sum.wall_seconds, 3.0);
  EXPECT_EQ(sum.cycles, 100u);
  EXPECT_EQ(sum.instructions, 400u);
  EXPECT_EQ(sum.max_rss_kb, 80u);  // max, not sum.
  EXPECT_EQ(sum.minor_faults, 7u);
  EXPECT_DOUBLE_EQ(sum.Ipc(), 4.0);
}

TEST(HostPerfTest, DerivedRatesGuardZeroDenominators) {
  const HostPerfSample zero;
  EXPECT_DOUBLE_EQ(zero.Ipc(), 0.0);
  EXPECT_DOUBLE_EQ(zero.LlcMpki(), 0.0);
  EXPECT_DOUBLE_EQ(zero.DtlbMpki(), 0.0);
  EXPECT_DOUBLE_EQ(zero.BranchMpki(), 0.0);

  HostPerfSample s;
  s.instructions = 2000;
  s.llc_misses = 3;
  s.dtlb_load_misses = 4;
  s.branch_misses = 5;
  EXPECT_DOUBLE_EQ(s.LlcMpki(), 1.5);
  EXPECT_DOUBLE_EQ(s.DtlbMpki(), 2.0);
  EXPECT_DOUBLE_EQ(s.BranchMpki(), 2.5);
}

}  // namespace
}  // namespace cpt::obs
