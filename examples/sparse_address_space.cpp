// Sparse 64-bit address spaces: why page-table choice matters.
//
//   $ build/examples/sparse_address_space
//
// Models a 64-bit application (in the style the paper's introduction
// motivates) that maps many scattered objects — memory-mapped files, arenas,
// thread stacks — across the full virtual address space, then compares the
// memory footprint of all four page-table organizations as object count and
// object size vary.
#include <cstdio>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "mem/cache_model.h"
#include "sim/machine.h"

using namespace cpt;

namespace {

// Maps `objects` objects of `pages_each` pages at random 64-bit addresses;
// returns paper-model table bytes.
std::uint64_t TableBytes(sim::PtKind kind, unsigned objects, unsigned pages_each,
                         std::uint64_t seed) {
  mem::CacheTouchModel cache(256);
  sim::MachineOptions opts;
  auto table = sim::MakePageTable(kind, cache, opts);
  Rng rng(seed);
  for (unsigned o = 0; o < objects; ++o) {
    // Anywhere in the 52-bit VPN space, page-block aligned like a real mmap.
    const Vpn base{rng.Below(1ull << 48) & ~0xFull};
    for (unsigned p = 0; p < pages_each; ++p) {
      table->InsertBase(base + p, Ppn{(o * pages_each + p) & kPpnMask}, Attr::ReadWrite());
    }
  }
  return table->SizeBytesPaperModel();
}

}  // namespace

int main() {
  std::printf("page-table bytes for scattered 64-bit objects (paper-model accounting)\n\n");
  const sim::PtKind kKinds[] = {sim::PtKind::kLinear6, sim::PtKind::kForward,
                                sim::PtKind::kHashed, sim::PtKind::kClustered};

  std::printf("%-28s %12s %12s %12s %12s\n", "scenario", "linear-6lvl", "fwd-mapped", "hashed",
              "clustered");
  struct Scenario {
    const char* label;
    unsigned objects;
    unsigned pages_each;
  };
  const Scenario kScenarios[] = {
      {"1024 x 1-page objects", 1024, 1},
      {"256 x 8-page buffers", 256, 8},
      {"128 x 16-page arenas", 128, 16},
      {"32 x 256-page files", 32, 256},
      {"4 x 4096-page heaps", 4, 4096},
  };
  for (const Scenario& s : kScenarios) {
    std::printf("%-28s", s.label);
    for (const sim::PtKind kind : kKinds) {
      const std::uint64_t bytes = TableBytes(kind, s.objects, s.pages_each, 42);
      std::printf(" %11lluK", (unsigned long long)(bytes + 512) / 1024);
    }
    std::printf("\n");
  }
  std::printf(
      "\nIsolated single pages are the clustered table's worst case (a 144-byte\n"
      "node per page vs hashed's 24); as soon as objects span a few pages —\n"
      "the \"bursty\" sparsity the paper argues is typical — clustering wins,\n"
      "while tree-structured tables pay for every 64-bit path they touch.\n");
  return 0;
}
