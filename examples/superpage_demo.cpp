// Superpage demo: how OS policy + page reservation + clustered page tables
// combine to shrink the page table and cut TLB misses.
//
//   $ build/examples/superpage_demo
//
// Simulates an application that maps a 4MB buffer and streams over it, on
// two machines: a single-page-size TLB with base PTEs, and a superpage TLB
// (4KB + 64KB) with the dynamic page-size assignment policy.  Demonstrates
// the paper's Section 4/5 claims end to end: fewer misses, smaller tables,
// unchanged miss penalty.
#include <cstdio>

#include "sim/machine.h"

using namespace cpt;

namespace {

void StreamBuffer(sim::Machine& machine, VirtAddr base, unsigned npages, int rounds) {
  for (int r = 0; r < rounds; ++r) {
    for (unsigned p = 0; p < npages; ++p) {
      // A few accesses per page, like a copy loop.
      for (int k = 0; k < 4; ++k) {
        machine.Access(0, base + p * kBasePageSize + k * 64);
      }
    }
  }
}

void RunOne(const char* label, sim::TlbKind tlb_kind) {
  sim::MachineOptions opts;
  opts.pt_kind = sim::PtKind::kClustered;
  opts.tlb_kind = tlb_kind;
  sim::Machine machine(opts, 1);

  const VirtAddr buffer{0x10000000};
  const unsigned npages = 1024;  // 4MB.
  StreamBuffer(machine, buffer, npages, 8);

  const auto& stats = machine.tlb().stats();
  const auto& as = machine.address_space(0).stats();
  std::printf("%-22s misses=%7llu  miss-ratio=%5.2f%%  pt-bytes=%6llu  "
              "promotions=%llu  lines/miss=%.2f\n",
              label, (unsigned long long)stats.misses, 100.0 * stats.MissRatio(),
              (unsigned long long)machine.TotalPtBytesPaperModel(),
              (unsigned long long)as.promotions, machine.AvgLinesPerMiss());
}

}  // namespace

int main() {
  std::printf("streaming 8 rounds over a 4MB buffer (1024 pages), 4 touches/page\n\n");
  RunOne("single-page TLB:", sim::TlbKind::kSinglePage);
  RunOne("superpage TLB (64KB):", sim::TlbKind::kSuperpage);
  RunOne("partial-subblock TLB:", sim::TlbKind::kPartialSubblock);
  std::printf(
      "\nWith the superpage TLB, the policy promotes every fully-touched 64KB\n"
      "block: 64 superpage PTEs replace 1024 base mappings, the clustered page\n"
      "table shrinks from 64 x 144B nodes to 64 x 24B nodes, and the TLB's\n"
      "reach grows 16x — while each remaining miss still costs ~1 cache line.\n");
  return 0;
}
