// Quickstart: build a clustered page table, map some memory the way an OS
// would, and look at what the TLB miss handler sees.
//
//   $ build/examples/quickstart
//
// Walks through the three clustered PTE formats (base array, superpage,
// partial-subblock) and compares the memory footprint against a conventional
// hashed page table holding the same mappings.
#include <cstdio>

#include "core/clustered.h"
#include "mem/cache_model.h"
#include "pt/hashed.h"

using namespace cpt;

int main() {
  // Every page table charges its walks to a cache-touch model (256-byte
  // level-two lines, as in the paper's evaluation).
  mem::CacheTouchModel cache(256);

  core::ClusteredPageTable clustered(
      cache, {.num_buckets = 4096, .subblock_factor = 16});
  pt::HashedPageTable hashed(cache, {.num_buckets = 4096});

  // --- 1. Map a 40-page buffer with base PTEs (pages 0x100..0x127). ---
  for (Vpn vpn{0x100}; vpn < Vpn{0x128}; ++vpn) {
    const Ppn ppn = Ppn{0x8000} + (vpn - Vpn{0x100});
    clustered.InsertBase(vpn, ppn, Attr::ReadWrite());
    hashed.InsertBase(vpn, ppn, Attr::ReadWrite());
  }
  std::printf("mapped 40 base pages:\n");
  std::printf("  clustered: %llu bytes (%llu-page blocks share one tag+next)\n",
              (unsigned long long)clustered.SizeBytesPaperModel(),
              (unsigned long long)clustered.subblock_factor());
  std::printf("  hashed:    %llu bytes (24 bytes per page)\n\n",
              (unsigned long long)hashed.SizeBytesPaperModel());

  // --- 2. A TLB miss: walk the table, counting cache lines. ---
  cache.BeginWalk();
  auto fill = clustered.Lookup(VaOf(Vpn{0x105}) + 0x44);
  cache.EndWalk();
  if (fill) {
    std::printf("TLB miss on va=0x%llx -> vpn 0x%llx maps to ppn 0x%llx "
                "(%u cache line(s) touched)\n\n",
                (unsigned long long)(VaOf(Vpn{0x105}) + 0x44).raw(), 0x105ull,
                (unsigned long long)fill->Translate(Vpn{0x105}).raw(),
                (unsigned)cache.per_walk_histogram().max_value());
  }

  // --- 3. Promote a fully-mapped, properly-placed block to a superpage. ---
  // Pages 0x100..0x10F form page block 0x10 and frames 0x8000.. are aligned,
  // so the OS can notice the block is promotable.
  if (clustered.BlockReadyForPromotion(Vpbn{0x10})) {
    for (Vpn vpn{0x100}; vpn < Vpn{0x110}; ++vpn) {
      clustered.RemoveBase(vpn);
    }
    clustered.InsertSuperpage(Vpn{0x100}, kPage64K, Ppn{0x8000}, Attr::ReadWrite());
    std::printf("promoted block 0x10 to a 64KB superpage PTE\n");
    std::printf("  clustered now: %llu bytes (24-byte superpage node replaced "
                "a 144-byte base node)\n\n",
                (unsigned long long)clustered.SizeBytesPaperModel());
  }

  // --- 4. Partial-subblock PTE: 13 of 16 pages resident, properly placed. ---
  clustered.UpsertPartialSubblock(/*block_base_vpn=*/Vpn{0x200}, /*subblock_factor=*/16,
                                  /*block_base_ppn=*/Ppn{0x9000}, Attr::ReadWrite(),
                                  /*valid_vector=*/0x1FFF);
  cache.BeginWalk();
  auto psb = clustered.Lookup(VaOf(Vpn{0x205}));
  cache.EndWalk();
  std::printf("partial-subblock PTE maps 13/16 pages of block 0x20 in one "
              "24-byte node; vpn 0x205 -> ppn 0x%llx\n",
              psb ? (unsigned long long)psb->Translate(Vpn{0x205}).raw() : 0ull);
  cache.BeginWalk();
  auto missing = clustered.Lookup(VaOf(Vpn{0x20E}));  // Bit 14 is clear.
  cache.EndWalk();
  std::printf("vpn 0x20E (valid bit clear) %s\n\n",
              missing ? "hit (BUG)" : "page-faults, as it should");

  std::printf("final sizes: clustered=%llu bytes, hashed=%llu bytes\n",
              (unsigned long long)clustered.SizeBytesPaperModel(),
              (unsigned long long)hashed.SizeBytesPaperModel());
  std::printf("avg cache lines per walk: %.2f\n", cache.AvgLinesPerWalk());
  return 0;
}
