// Page-aging (clock daemon) over different page tables — Section 3.1's
// "other operations important to operating systems".
//
//   $ build/examples/clock_daemon
//
// TLB miss handlers set the referenced/modified bits in the PTEs they load,
// lock-free; a page-out daemon periodically sweeps a range, counting and
// clearing referenced bits to find cold pages.  Sweeps are range operations:
// a clustered table visits one node per page block, a hashed table one node
// per page.
#include <cstdio>

#include "sim/machine.h"
#include "workload/workload.h"

using namespace cpt;

int main() {
  const workload::WorkloadSpec& spec = workload::GetPaperWorkload("mp3d");
  const workload::Snapshot snapshot = workload::BuildSnapshot(spec);

  for (const sim::PtKind kind : {sim::PtKind::kHashed, sim::PtKind::kClustered}) {
    sim::MachineOptions opts;
    opts.pt_kind = kind;
    opts.maintain_ref_bits = true;
    sim::Machine machine(opts, 1);
    machine.Preload(snapshot);

    workload::TraceGenerator gen(spec, snapshot);
    std::printf("=== %s ===\n", sim::ToString(kind).c_str());
    for (int epoch = 0; epoch < 3; ++epoch) {
      // Run a burst of references, then sweep the heap like a clock hand.
      for (int i = 0; i < 150000; ++i) {
        const workload::Reference r = gen.Next();
        machine.Access(r.asid, r.va, r.is_write);
      }
      const Vpn heap_first = VpnOf(VirtAddr{0x10000000ull});
      const std::uint64_t referenced =
          machine.page_table(0).ScanAndClearReferenced(heap_first, 1100);
      std::printf("  epoch %d: %llu heap mappings referenced since last sweep\n", epoch,
                  (unsigned long long)referenced);
    }
    // Immediately re-sweeping finds nothing: the bits were cleared.
    const std::uint64_t again =
        machine.page_table(0).ScanAndClearReferenced(VpnOf(VirtAddr{0x10000000ull}), 1100);
    std::printf("  immediate re-sweep: %llu (bits were cleared)\n\n",
                (unsigned long long)again);
  }
  std::printf(
      "Both tables age pages correctly; the clustered table's sweep touches a\n"
      "node per 16-page block, the hashed table's one per page — the Section\n"
      "3.1 range-operation advantage, measured in bench_rangeops.\n");
  return 0;
}
