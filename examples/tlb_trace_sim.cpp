// Full-machine trace simulation: run any paper workload on any page table
// and TLB configuration from the command line.
//
//   $ build/examples/tlb_trace_sim [workload] [pt] [tlb] [refs]
//   $ build/examples/tlb_trace_sim coral clustered complete-subblock 1000000
//
// Prints TLB statistics, cache-lines-per-miss, page-table sizes, and the
// OS's block census — the full set of quantities behind Figures 9-11.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "sim/experiments.h"
#include "sim/machine.h"
#include "workload/workload.h"

using namespace cpt;

namespace {

sim::PtKind ParsePt(const std::string& s) {
  if (s == "linear" || s == "linear-1level") return sim::PtKind::kLinear1;
  if (s == "linear-6level") return sim::PtKind::kLinear6;
  if (s == "forward") return sim::PtKind::kForward;
  if (s == "hashed") return sim::PtKind::kHashed;
  if (s == "hashed-multi") return sim::PtKind::kHashedMulti;
  if (s == "hashed-spindex") return sim::PtKind::kHashedSpIndex;
  if (s == "clustered") return sim::PtKind::kClustered;
  std::fprintf(stderr, "unknown page table '%s'\n", s.c_str());
  std::exit(1);
}

sim::TlbKind ParseTlb(const std::string& s) {
  if (s == "single" || s == "single-page") return sim::TlbKind::kSinglePage;
  if (s == "superpage") return sim::TlbKind::kSuperpage;
  if (s == "partial-subblock" || s == "psb") return sim::TlbKind::kPartialSubblock;
  if (s == "complete-subblock" || s == "csb") return sim::TlbKind::kCompleteSubblock;
  std::fprintf(stderr, "unknown TLB '%s'\n", s.c_str());
  std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string workload = argc > 1 ? argv[1] : "coral";
  sim::MachineOptions opts;
  opts.pt_kind = argc > 2 ? ParsePt(argv[2]) : sim::PtKind::kClustered;
  opts.tlb_kind = argc > 3 ? ParseTlb(argv[3]) : sim::TlbKind::kSinglePage;
  const std::uint64_t refs = argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 0;

  const workload::WorkloadSpec& spec = workload::GetPaperWorkload(workload);
  const workload::Snapshot snapshot = workload::BuildSnapshot(spec);
  sim::Machine machine(opts, static_cast<unsigned>(spec.processes.size()));
  machine.Preload(snapshot);

  const std::uint64_t n = refs != 0 ? refs : spec.default_trace_length;
  workload::TraceGenerator gen(spec, snapshot);
  for (std::uint64_t i = 0; i < n; ++i) {
    const workload::Reference r = gen.Next();
    machine.Access(r.asid, r.va);
  }

  const auto& tlb = machine.tlb().stats();
  std::printf("workload:   %s (%zu process(es), %llu mapped pages)\n", spec.name.c_str(),
              spec.processes.size(), (unsigned long long)snapshot.TotalPages());
  std::printf("config:     pt=%s  tlb=%s  entries=%u  buckets=%u  line=%uB\n",
              sim::ToString(opts.pt_kind).c_str(), sim::ToString(opts.tlb_kind).c_str(),
              opts.tlb_entries, opts.num_buckets, opts.line_size);
  std::printf("trace:      %llu references\n\n", (unsigned long long)n);
  std::printf("TLB:        hits=%llu misses=%llu (%.3f%%)", (unsigned long long)tlb.hits,
              (unsigned long long)tlb.misses, 100.0 * tlb.MissRatio());
  if (opts.tlb_kind == sim::TlbKind::kCompleteSubblock) {
    std::printf("  block=%llu subblock=%llu", (unsigned long long)tlb.block_misses,
                (unsigned long long)tlb.subblock_misses);
  }
  std::printf("\nwalk cost:  %.3f cache lines per TLB miss (normalized to 64-entry TLB)\n",
              machine.AvgLinesPerMiss());
  std::printf("page table: %llu bytes (paper model), %llu bytes (allocated)\n",
              (unsigned long long)machine.TotalPtBytesPaperModel(),
              (unsigned long long)machine.TotalPtBytesActual());

  os::AddressSpace::BlockCensus census;
  std::uint64_t promotions = 0;
  for (unsigned p = 0; p < machine.num_processes(); ++p) {
    const auto c = machine.address_space(p).Census();
    census.base_blocks += c.base_blocks;
    census.super_blocks += c.super_blocks;
    census.psb_blocks += c.psb_blocks;
    census.mixed_blocks += c.mixed_blocks;
    promotions += machine.address_space(p).stats().promotions;
  }
  std::printf("OS blocks:  base=%llu superpage=%llu psb=%llu mixed=%llu (promotions=%llu)\n",
              (unsigned long long)census.base_blocks, (unsigned long long)census.super_blocks,
              (unsigned long long)census.psb_blocks, (unsigned long long)census.mixed_blocks,
              (unsigned long long)promotions);
  return 0;
}
