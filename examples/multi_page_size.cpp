// Multi-page-size page tables (Section 7): two clustered tables cover
// every page size from 4KB to 1MB, where conventional designs need one
// table (or replication blow-up) per size.
//
//   $ build/examples/multi_page_size
//
// Maps a MIPS-R4000-style mix of page sizes and compares:
//   - two clustered tables (4KB-64KB + 128KB-1MB), vs
//   - per-size hashed tables (one per page size in use), vs
//   - a single linear table with replicated PTEs.
#include <cstdio>
#include <memory>
#include <vector>

#include "core/multi_size.h"
#include "mem/cache_model.h"
#include "pt/hashed.h"
#include "pt/linear.h"

using namespace cpt;

namespace {

struct Mapping {
  Vpn base_vpn;
  unsigned size_log2;  // 0 = 4KB base page.
};

// A server-style mix: code/heap base pages, buffer superpages, a frame
// buffer and database pool in large superpages.
std::vector<Mapping> BuildWorkload() {
  std::vector<Mapping> maps;
  for (unsigned i = 0; i < 300; ++i) {
    maps.push_back({Vpn{0x100000 + i}, 0});  // 300 x 4KB.
  }
  for (unsigned i = 0; i < 40; ++i) {
    maps.push_back({Vpn{0x200000 + i * 4}, 2});  // 40 x 16KB.
  }
  for (unsigned i = 0; i < 24; ++i) {
    maps.push_back({Vpn{0x300000 + i * 16}, 4});  // 24 x 64KB.
  }
  for (unsigned i = 0; i < 8; ++i) {
    maps.push_back({Vpn{0x400000 + i * 64}, 6});  // 8 x 256KB.
  }
  for (unsigned i = 0; i < 3; ++i) {
    maps.push_back({Vpn{0x500000 + i * 256}, 8});  // 3 x 1MB.
  }
  return maps;
}

}  // namespace

int main() {
  const std::vector<Mapping> maps = BuildWorkload();
  mem::CacheTouchModel cache(256);

  // --- Two clustered tables ---
  core::MultiSizeClustered clustered(cache, {});
  for (const Mapping& m : maps) {
    if (m.size_log2 == 0) {
      clustered.InsertBase(m.base_vpn, Ppn{m.base_vpn.raw() & kPpnMask}, Attr::ReadWrite());
    } else {
      clustered.InsertSuperpage(
          m.base_vpn, PageSize{m.size_log2},
          Ppn{m.base_vpn.raw() & kPpnMask & ~((1ull << m.size_log2) - 1)},
          Attr::ReadWrite());
    }
  }

  // --- One hashed table per page size (the conventional multi-table way) ---
  std::vector<std::unique_ptr<pt::HashedPageTable>> per_size;
  std::uint64_t hashed_bytes = 0;
  for (const unsigned log2 : {0u, 2u, 4u, 6u, 8u}) {
    auto table = std::make_unique<pt::HashedPageTable>(
        cache, pt::HashedPageTable::Options{.tag_shift = log2});
    for (const Mapping& m : maps) {
      if (m.size_log2 != log2) {
        continue;
      }
      if (log2 == 0) {
        table->InsertBase(m.base_vpn, Ppn{m.base_vpn.raw() & kPpnMask}, Attr::ReadWrite());
      } else {
        table->UpsertWord(
            m.base_vpn,
            MappingWord::Superpage(
                Ppn{m.base_vpn.raw() & kPpnMask & ~((1ull << log2) - 1)},
                Attr::ReadWrite(), PageSize{log2}));
      }
    }
    hashed_bytes += table->SizeBytesPaperModel();
    per_size.push_back(std::move(table));
  }

  // --- Linear with replicated PTEs ---
  pt::LinearPageTable linear(cache, {.size_model = pt::LinearPageTable::SizeModel::kOneLevel});
  for (const Mapping& m : maps) {
    if (m.size_log2 == 0) {
      linear.InsertBase(m.base_vpn, Ppn{m.base_vpn.raw() & kPpnMask}, Attr::ReadWrite());
    } else {
      linear.InsertSuperpage(
          m.base_vpn, PageSize{m.size_log2},
          Ppn{m.base_vpn.raw() & kPpnMask & ~((1ull << m.size_log2) - 1)},
          Attr::ReadWrite());
    }
  }

  std::printf("375 mappings across five page sizes (4KB..1MB), as on a MIPS R4000:\n\n");
  std::printf("  two clustered tables:     %6llu bytes, 2 tables to search\n",
              (unsigned long long)clustered.SizeBytesPaperModel());
  std::printf("  per-size hashed tables:   %6llu bytes, 5 tables to search\n",
              (unsigned long long)hashed_bytes);
  std::printf("  linear w/ replicate-PTEs: %6llu bytes, 1 table (every superpage\n"
              "                            replicated at all of its base sites)\n\n",
              (unsigned long long)linear.SizeBytesPaperModel());

  // Verify the clustered system translates every size correctly.
  unsigned errors = 0;
  for (const Mapping& m : maps) {
    const unsigned span = 1u << m.size_log2;
    for (unsigned off = 0; off < span; off += (span + 3) / 4 + 1) {
      cache.BeginWalk();
      auto fill = clustered.Lookup(VaOf(m.base_vpn + off));
      cache.EndWalk();
      if (!fill || !fill->Covers(m.base_vpn + off)) {
        ++errors;
      }
    }
  }
  std::printf("translation check: %u errors; avg %.2f cache lines per lookup\n", errors,
              cache.AvgLinesPerWalk());
  std::printf(
      "\nSection 7's point: clustered tables co-store sizes up to the block\n"
      "size in place (S field), so two tables cover 4KB-1MB, while larger\n"
      "sizes replicate once per *block* instead of once per *base page*.\n");
  return 0;
}
