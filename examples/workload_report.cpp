// Inspect the synthetic paper workloads: segment layouts, mapped-page
// counts, block occupancy, and how each compares to its Table 1 target.
//
//   $ build/examples/workload_report [workload]
//
// Without arguments, summarizes all eleven workloads; with a name, prints
// that workload's per-segment detail and block-occupancy histogram.
#include <cstdio>
#include <string>

#include "core/clustered.h"
#include "mem/cache_model.h"
#include "sim/analytic.h"
#include "workload/workload.h"

using namespace cpt;

namespace {

void Summary() {
  std::printf("%-10s %5s %7s %8s %8s %9s %10s\n", "workload", "procs", "pages", "blocks",
              "occ/blk", "hashed", "paper");
  for (const workload::WorkloadSpec& spec : workload::PaperWorkloads()) {
    const workload::Snapshot snap = workload::BuildSnapshot(spec);
    std::uint64_t pages = 0;
    std::uint64_t blocks = 0;
    for (std::size_t p = 0; p < snap.pages.size(); ++p) {
      const auto flat = snap.FlatProcess(p);
      pages += flat.size();
      blocks += sim::analytic::Nactive(flat, 16);
    }
    std::uint64_t paper_bytes = 0;
    for (const auto& ref : workload::PaperTable1()) {
      if (ref.name == spec.name) {
        paper_bytes = ref.hashed_pt_bytes;
      }
    }
    std::printf("%-10s %5zu %7llu %8llu %8.1f %8lluKB %8lluKB\n", spec.name.c_str(),
                spec.processes.size(), (unsigned long long)pages, (unsigned long long)blocks,
                blocks == 0 ? 0.0 : static_cast<double>(pages) / static_cast<double>(blocks),
                (unsigned long long)(pages * 24 / 1024), (unsigned long long)paper_bytes / 1024);
  }
  std::printf("\nocc/blk = mean mapped pages per 16-page block: the burstiness that\n"
              "makes clustering effective (break-even vs hashed is 6).\n");
}

void Detail(const std::string& name) {
  const workload::WorkloadSpec& spec = workload::GetPaperWorkload(name);
  const workload::Snapshot snap = workload::BuildSnapshot(spec);
  std::printf("workload %s (seed %llu, trace %llu refs%s)\n\n", spec.name.c_str(),
              (unsigned long long)spec.seed, (unsigned long long)spec.default_trace_length,
              spec.sequential_processes ? ", sequential processes" : "");
  static const char* kPatterns[] = {"sequential", "strided", "random", "pointer-chase"};
  for (std::size_t p = 0; p < spec.processes.size(); ++p) {
    std::printf("process %zu (%s):\n", p, spec.processes[p].name.c_str());
    for (std::size_t s = 0; s < spec.processes[p].segments.size(); ++s) {
      const workload::Segment& seg = spec.processes[p].segments[s];
      std::printf("  seg %zu: base=0x%012llx  %5zu/%llu pages (density %.2f, burst %.0f)  "
                  "%s stride=%llu sojourn=%.0f\n",
                  s, (unsigned long long)seg.base.raw(), snap.pages[p][s].size(),
                  (unsigned long long)seg.span_pages, seg.density, seg.burst_mean,
                  kPatterns[static_cast<int>(seg.pattern)],
                  (unsigned long long)seg.stride_pages, seg.sojourn_mean);
    }
  }
  // Block-occupancy histogram via an actual clustered table.
  mem::CacheTouchModel cache(256);
  core::ClusteredPageTable table(cache, {});
  for (std::size_t p = 0; p < snap.pages.size(); ++p) {
    for (const Vpn vpn : snap.FlatProcess(p)) {
      // Offset per process so all processes fit one diagnostic table.
      table.InsertBase(vpn + (std::uint64_t{p} << 50), Ppn{1}, Attr::ReadWrite());
    }
  }
  std::printf("\nblock occupancy histogram (pages mapped per 16-page block):\n  %s\n",
              table.BlockOccupancyHistogram().ToString().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1) {
    Detail(argv[1]);
  } else {
    Summary();
  }
  return 0;
}
