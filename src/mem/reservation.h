// Page-reservation physical memory allocator.
//
// Superpages and partial-subblock TLB entries require *properly placed*
// pages: the physical frame of base page `boff` within a page block must be
// frame `block_base + boff` of an aligned physical block.  The paper relies
// on the page-reservation algorithm of [Tall94]: on the first fault within a
// virtual page block, reserve an entire aligned physical frame block and
// place each subsequently-faulted page of that virtual block at its matching
// slot.  Under memory pressure, reservations are broken and their unused
// frames handed out individually (losing proper placement for new mappings).
//
// This class implements that algorithm over a pool of frames grouped into
// aligned blocks of `subblock_factor` frames.
#ifndef CPT_MEM_RESERVATION_H_
#define CPT_MEM_RESERVATION_H_

#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_map>
#include <vector>

#include "check/fwd.h"
#include "common/types.h"
#include "obs/trace.h"

namespace cpt::mem {

class ReservationAllocator {
 public:
  // `num_frames` is rounded down to a whole number of blocks.
  ReservationAllocator(std::uint64_t num_frames, unsigned subblock_factor);

  struct FrameGrant {
    Ppn ppn{};
    // True when ppn == block_base + boff within an aligned block reserved
    // for this virtual page block, i.e. the page is properly placed.
    bool properly_placed = false;
  };

  // Allocates a frame for base page `boff` of the virtual page block
  // identified by `block_key` (an (address space, VPBN) key chosen by the
  // caller).  The same (block_key, boff) must not be allocated twice without
  // an intervening Free.  Returns nullopt when physical memory is exhausted.
  // The key is opaque to the allocator, deliberately raw.
  // cpt-lint: allow(raw-address-param)
  std::optional<FrameGrant> Allocate(std::uint64_t block_key, unsigned boff);

  // Releases a frame previously granted.
  void Free(Ppn ppn);

  unsigned subblock_factor() const { return factor_; }
  std::uint64_t num_frames() const { return num_frames_; }
  std::uint64_t frames_used() const { return frames_used_; }
  std::uint64_t frames_free() const { return num_frames_ - frames_used_; }

  // Diagnostics for the evaluation: how often placement succeeded.
  std::uint64_t grants() const { return grants_; }
  std::uint64_t properly_placed_grants() const { return placed_grants_; }
  std::uint64_t reservations_made() const { return reservations_made_; }
  std::uint64_t reservations_broken() const { return reservations_broken_; }

  // ---- Telemetry (src/obs) ----

  // Publishes one kReservationGrant event per Allocate() through the tracer
  // (value = properly placed).  Null tracer (default) costs one branch.
  void set_tracer(obs::WalkTracer* tracer) { tracer_ = tracer; }

  // ---- Invariant auditing (src/check) ----

  // Records every outstanding grant so the auditor can verify that granted
  // frames are marked used and that properly-placed grants really sit at
  // block_base + boff.  Off by default (it costs a hash insert per grant).
  void EnableGrantLog() { grant_log_enabled_ = true; }
  bool grant_log_enabled() const { return grant_log_enabled_; }

  // Reports every group, free-list entry, fragment-pool frame, owner-map
  // entry, and (when the grant log is on) outstanding grant.
  void AuditVisit(check::ReservationAuditVisitor& visitor) const;

 private:
  friend class check::TestBackdoor;

  enum class GroupState : std::uint8_t {
    kFree,        // No frame in use, not reserved.
    kReserved,    // Reserved for one virtual page block; slots map 1:1.
    kFragmented,  // Reservation broken; free slots handed out individually.
  };

  struct Group {
    GroupState state = GroupState::kFree;
    std::uint64_t owner_key = 0;   // Valid when kReserved.
    std::uint32_t used_mask = 0;   // Bit per slot.
  };

  // Frame-group arithmetic unwraps the PPN. // cpt-lint: allow(raw-address-param)
  std::uint64_t GroupOf(Ppn ppn) const { return ppn.raw() / factor_; }
  unsigned SlotOf(Ppn ppn) const { return static_cast<unsigned>(ppn.raw() % factor_); }
  Ppn FrameAt(std::uint64_t group, unsigned slot) const { return Ppn{group * factor_ + slot}; }

  // Breaks the least-recently-reserved reservation, moving its unused slots
  // to the fragment pool.  Returns false if there is nothing to break.
  bool BreakOneReservation();

  // Logs a grant when the grant log is enabled; no-op otherwise.
  // cpt-lint: allow(raw-address-param): same opaque key as Allocate().
  void RecordGrant(Ppn ppn, std::uint64_t block_key, unsigned boff, bool properly_placed);

  unsigned factor_;
  std::uint64_t num_frames_;
  std::uint64_t frames_used_ = 0;
  std::vector<Group> groups_;
  std::vector<std::uint64_t> free_groups_;                    // Stack of kFree group ids.
  std::unordered_map<std::uint64_t, std::uint64_t> by_owner_;  // block_key -> group id.
  std::deque<std::uint64_t> reservation_fifo_;                // Steal victims, oldest first.
  std::vector<Ppn> fragment_pool_;                            // Individually-free frames.

  std::uint64_t grants_ = 0;
  std::uint64_t placed_grants_ = 0;
  std::uint64_t reservations_made_ = 0;
  std::uint64_t reservations_broken_ = 0;

  struct GrantRecord {
    std::uint64_t block_key = 0;
    unsigned boff = 0;
    bool properly_placed = false;
  };
  bool grant_log_enabled_ = false;
  std::unordered_map<Ppn, GrantRecord> live_grants_;  // Grant-log entries.
  obs::WalkTracer* tracer_ = nullptr;
};

}  // namespace cpt::mem

#endif  // CPT_MEM_RESERVATION_H_
