// Simulated physical memory: a pool of 4KB frames.
//
// The paper evaluates on a machine with real DRAM; here the only properties
// that matter are which frame numbers are handed out and how they align, so
// physical memory is just an allocatable set of frame numbers plus counters.
#ifndef CPT_MEM_PHYS_MEM_H_
#define CPT_MEM_PHYS_MEM_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.h"

namespace cpt::mem {

class PhysicalMemory {
 public:
  explicit PhysicalMemory(std::uint64_t num_frames);

  std::uint64_t num_frames() const { return num_frames_; }
  std::uint64_t frames_free() const { return frames_free_; }
  std::uint64_t frames_used() const { return num_frames_ - frames_free_; }

  // Allocates the lowest-numbered free frame, or nullopt when exhausted.
  std::optional<Ppn> AllocFrame();

  // Allocates a specific frame if free; returns false if already in use.
  bool AllocSpecific(Ppn ppn);

  void FreeFrame(Ppn ppn);

  bool IsFree(Ppn ppn) const;

 private:
  std::uint64_t num_frames_;
  std::uint64_t frames_free_;
  std::vector<bool> used_;
  Ppn scan_hint_{};  // Next-fit scan start for AllocFrame.
};

}  // namespace cpt::mem

#endif  // CPT_MEM_PHYS_MEM_H_
