// Simulated-physical-address allocator for page-table structures.
//
// Page tables in this library are ordinary C++ objects, but for cache-line
// accounting each node/array needs a stable *simulated* physical address.
// SimAllocator hands out such addresses from a bump region with per-size
// free lists, and keeps two byte counts:
//   - bytes_live():      bytes currently allocated (actual footprint)
//   - high_water_bytes() peak footprint
//
// The paper's size formulae (appendix Table 2) count only PTE payload bytes
// (e.g. 24 bytes per hashed PTE) and charge nothing for empty buckets; the
// page-table classes compute that "paper model" size themselves and use this
// allocator for the physically-accurate view and for address assignment.
#ifndef CPT_MEM_SIM_ALLOC_H_
#define CPT_MEM_SIM_ALLOC_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.h"

namespace cpt::mem {

// How page-table nodes are placed relative to cache lines.
enum class NodePlacement : std::uint8_t {
  // Every node starts on a cache-line boundary (the paper's Section 6.1
  // assumption: "each PTE starts on a cache line boundary").
  kLineAligned,
  // Nodes are packed at their natural 8-byte alignment; used by the
  // sensitivity ablation to measure straddling costs.
  kPacked,
};

class SimAllocator {
 public:
  // Each allocator instance carves addresses from its own disjoint 16TB
  // region of the simulated physical address space, so structures owned by
  // different tables never alias in the cache-line model.
  explicit SimAllocator(std::uint32_t line_size = kDefaultCacheLineSize,
                        NodePlacement placement = NodePlacement::kLineAligned);

  // Returns a simulated physical address for `size` bytes.  Alignment is
  // cache-line or 8 bytes depending on the placement policy.
  PhysAddr Allocate(std::uint64_t size);

  // Returns the block to the allocator's free list.
  void Free(PhysAddr addr, std::uint64_t size);

  std::uint64_t bytes_live() const { return bytes_live_; }
  std::uint64_t high_water_bytes() const { return high_water_; }
  NodePlacement placement() const { return placement_; }
  std::uint32_t line_size() const { return line_size_; }

 private:
  std::uint64_t AlignmentFor(std::uint64_t size) const;

  std::uint32_t line_size_;
  NodePlacement placement_;
  PhysAddr bump_{};  // Set in the constructor; never 0 so 0 can mean "null".
  std::uint64_t bytes_live_ = 0;
  std::uint64_t high_water_ = 0;
  // Free lists keyed by rounded allocation size.
  std::unordered_map<std::uint64_t, std::vector<PhysAddr>> free_lists_;
};

}  // namespace cpt::mem

#endif  // CPT_MEM_SIM_ALLOC_H_
