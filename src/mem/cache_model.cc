#include "mem/cache_model.h"

#include <algorithm>

#include "common/check.h"
#include "common/types.h"

namespace cpt::mem {

CacheTouchModel::CacheTouchModel(std::uint32_t line_size) : line_size_(line_size) {
  CPT_CHECK(IsPowerOfTwo(line_size));
  line_shift_ = Log2(line_size);
  walk_lines_.reserve(32);
  // Pre-size the per-walk histogram past any realistic lines-per-walk value
  // (the paper's tables top out under 20) so EndWalk never allocates in
  // steady state — the hot-path allocation guard (common/hotguard.h) runs
  // over full replays in tests.
  per_walk_.Reserve(64);
}

void CacheTouchModel::BeginWalk() {
  walk_lines_.clear();
  in_walk_ = true;
}

void CacheTouchModel::Touch(PhysAddr addr, std::uint64_t size) {
  if (!in_walk_ || size == 0) {
    return;
  }
  // Line-id derivation is a bit-packing boundary. // cpt-lint: allow(raw-address-param)
  const std::uint64_t first = addr.raw() >> line_shift_;
  const std::uint64_t last = (addr.raw() + size - 1) >> line_shift_;
  for (std::uint64_t line = first; line <= last; ++line) {
    // Walks touch a handful of lines, so a linear dedup scan beats a set.
    if (std::find(walk_lines_.begin(), walk_lines_.end(), line) == walk_lines_.end()) {
      walk_lines_.push_back(line);
    }
  }
}

void CacheTouchModel::EndWalk() {
  if (!in_walk_) {
    return;
  }
  in_walk_ = false;
  total_lines_ += walk_lines_.size();
  ++total_walks_;
  per_walk_.Add(walk_lines_.size());
  if (tracer_ != nullptr) {
    tracer_->Record({.kind = obs::EventKind::kWalkEnd,
                     .lines = static_cast<std::uint32_t>(walk_lines_.size())});
  }
}

void CacheTouchModel::Reset() {
  walk_lines_.clear();
  in_walk_ = false;
  total_lines_ = 0;
  total_walks_ = 0;
  per_walk_ = Histogram();
}

}  // namespace cpt::mem
