#include "mem/sim_alloc.h"

#include "common/check.h"

namespace cpt::mem {

namespace {
// Monotonic region ids; each allocator gets region_id << 44 (16TB apart).
std::uint64_t next_region_id = 1;
}  // namespace

SimAllocator::SimAllocator(std::uint32_t line_size, NodePlacement placement)
    : line_size_(line_size), placement_(placement) {
  CPT_CHECK(IsPowerOfTwo(line_size));
  bump_ = PhysAddr{(next_region_id++ << 44) + kBasePageSize};
}

std::uint64_t SimAllocator::AlignmentFor(std::uint64_t size) const {
  if (placement_ == NodePlacement::kPacked) {
    return 8;
  }
  // Line-aligned placement: page-sized structures keep page alignment so the
  // linear page table's leaf pages stay page-aligned.
  return size >= kBasePageSize ? kBasePageSize : line_size_;
}

PhysAddr SimAllocator::Allocate(std::uint64_t size) {
  CPT_DCHECK(size > 0);
  const std::uint64_t align = AlignmentFor(size);
  const std::uint64_t rounded = (size + align - 1) & ~(align - 1);

  bytes_live_ += size;
  if (bytes_live_ > high_water_) {
    high_water_ = bytes_live_;
  }

  auto it = free_lists_.find(rounded);
  if (it != free_lists_.end() && !it->second.empty()) {
    const PhysAddr addr = it->second.back();
    it->second.pop_back();
    return addr;
  }

  // Alignment rounding on the raw byte address. // cpt-lint: allow(raw-address-param)
  bump_ = PhysAddr{(bump_.raw() + align - 1) & ~(align - 1)};
  const PhysAddr addr = bump_;
  bump_ += rounded;
  return addr;
}

void SimAllocator::Free(PhysAddr addr, std::uint64_t size) {
  CPT_DCHECK(addr != PhysAddr{} && size > 0);
  CPT_DCHECK(bytes_live_ >= size);
  const std::uint64_t align = AlignmentFor(size);
  const std::uint64_t rounded = (size + align - 1) & ~(align - 1);
  bytes_live_ -= size;
  // The free list is what keeps the steady state allocation-free: it grows
  // only the first time a size class sees a free, then recycles capacity.
  // cpt-lint: allow(hot-no-alloc)
  free_lists_[rounded].push_back(addr);
}

}  // namespace cpt::mem
