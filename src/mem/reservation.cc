#include "mem/reservation.h"

#include <bit>

#include "check/audit_visitor.h"
#include "common/check.h"

namespace cpt::mem {

ReservationAllocator::ReservationAllocator(std::uint64_t num_frames, unsigned subblock_factor)
    : factor_(subblock_factor), num_frames_((num_frames / subblock_factor) * subblock_factor) {
  CPT_CHECK(IsPowerOfTwo(subblock_factor) && subblock_factor <= 32,
            "group masks are 32-bit");
  CPT_CHECK(num_frames_ > 0);
  const std::uint64_t num_groups = num_frames_ / factor_;
  groups_.resize(num_groups);
  free_groups_.reserve(num_groups);
  // Push in reverse so low frame numbers are handed out first.
  for (std::uint64_t g = num_groups; g-- > 0;) {
    free_groups_.push_back(g);
  }
}

std::optional<ReservationAllocator::FrameGrant> ReservationAllocator::Allocate(
    std::uint64_t block_key, unsigned boff) {
  CPT_DCHECK(boff < factor_);
  if (frames_used_ == num_frames_) {
    return std::nullopt;
  }

  // 1. An existing reservation for this virtual block: use the matching slot.
  if (auto it = by_owner_.find(block_key); it != by_owner_.end()) {
    Group& grp = groups_[it->second];
    CPT_DCHECK(grp.state == GroupState::kReserved);
    const std::uint32_t bit = 1u << boff;
    CPT_DCHECK((grp.used_mask & bit) == 0, "double allocation of (block, boff)");
    grp.used_mask |= bit;
    ++frames_used_;
    ++grants_;
    ++placed_grants_;
    const Ppn ppn = FrameAt(it->second, boff);
    RecordGrant(ppn, block_key, boff, /*properly_placed=*/true);
    return FrameGrant{ppn, true};
  }

  // 2. Reserve a fresh aligned group for this virtual block.
  if (!free_groups_.empty()) {
    const std::uint64_t g = free_groups_.back();
    free_groups_.pop_back();
    Group& grp = groups_[g];
    grp.state = GroupState::kReserved;
    grp.owner_key = block_key;
    grp.used_mask = 1u << boff;
    by_owner_.emplace(block_key, g);
    // Fault path only: frames are granted while faulting, which Preload()
    // front-loads; the replay steady state never reaches here.  (The hot
    // traversal sees this through same-name resolution with the PTE-node
    // allocator, not through a real hot call chain.)
    // cpt-lint: allow(hot-no-alloc)
    reservation_fifo_.push_back(g);
    ++reservations_made_;
    ++frames_used_;
    ++grants_;
    ++placed_grants_;
    const Ppn ppn = FrameAt(g, boff);
    RecordGrant(ppn, block_key, boff, /*properly_placed=*/true);
    return FrameGrant{ppn, true};
  }

  // 3. Memory pressure: draw from the fragment pool, breaking reservations
  //    as needed.  The resulting frame is (almost surely) not properly
  //    placed for this virtual block.  Pool entries can go stale (their
  //    group fully emptied and was recycled, or a duplicate entry's frame
  //    was already granted), so validate on pop.
  for (;;) {
    while (fragment_pool_.empty()) {
      if (!BreakOneReservation()) {
        return std::nullopt;  // All frames genuinely in use.
      }
    }
    const Ppn ppn = fragment_pool_.back();
    fragment_pool_.pop_back();
    Group& grp = groups_[GroupOf(ppn)];
    const std::uint32_t bit = 1u << SlotOf(ppn);
    if (grp.state != GroupState::kFragmented || (grp.used_mask & bit) != 0) {
      continue;  // Stale entry.
    }
    grp.used_mask |= bit;
    ++frames_used_;
    ++grants_;
    RecordGrant(ppn, block_key, boff, /*properly_placed=*/false);
    return FrameGrant{ppn, false};
  }
}

void ReservationAllocator::RecordGrant(Ppn ppn, std::uint64_t block_key, unsigned boff,
                                       bool properly_placed) {
  if (tracer_ != nullptr) {
    tracer_->Record({.kind = obs::EventKind::kReservationGrant,
                     .vpn = Vpn{block_key},  // Grant events carry the caller's block key.
                     .step = boff,
                     .value = properly_placed ? 1u : 0u});
  }
  if (grant_log_enabled_) {
    live_grants_[ppn] = GrantRecord{block_key, boff, properly_placed};
  }
}

bool ReservationAllocator::BreakOneReservation() {
  while (!reservation_fifo_.empty()) {
    const std::uint64_t g = reservation_fifo_.front();
    reservation_fifo_.pop_front();
    Group& grp = groups_[g];
    if (grp.state != GroupState::kReserved) {
      continue;  // Stale entry: reservation already released or broken.
    }
    by_owner_.erase(grp.owner_key);
    grp.state = GroupState::kFragmented;
    ++reservations_broken_;
    for (unsigned slot = 0; slot < factor_; ++slot) {
      if ((grp.used_mask & (1u << slot)) == 0) {
        // Fault path only (see Allocate); never on the replay steady state.
        // cpt-lint: allow(hot-no-alloc)
        fragment_pool_.push_back(FrameAt(g, slot));
      }
    }
    if (!fragment_pool_.empty()) {
      return true;
    }
    // A fully-used reservation yielded no frames; keep breaking.
  }
  return false;
}

void ReservationAllocator::Free(Ppn ppn) {
  // Range check on the raw frame index, matching GroupOf/SlotOf's crossing.
  CPT_DCHECK(ppn.raw() < num_frames_);
  const std::uint64_t g = GroupOf(ppn);
  Group& grp = groups_[g];
  const std::uint32_t bit = 1u << SlotOf(ppn);
  CPT_DCHECK((grp.used_mask & bit) != 0, "freeing an unallocated frame");
  grp.used_mask &= ~bit;
  --frames_used_;
  if (grant_log_enabled_) {
    live_grants_.erase(ppn);
  }
  if (grp.state == GroupState::kFragmented) {
    if (grp.used_mask == 0) {
      grp.state = GroupState::kFree;
      free_groups_.push_back(g);
    } else {
      // Unmap/teardown path only; never on the replay steady state.
      // cpt-lint: allow(hot-no-alloc)
      fragment_pool_.push_back(ppn);
    }
  } else if (grp.state == GroupState::kReserved && grp.used_mask == 0) {
    by_owner_.erase(grp.owner_key);
    grp.state = GroupState::kFree;
    free_groups_.push_back(g);
    // Its fifo entry becomes stale and is skipped by BreakOneReservation.
  }
}

void ReservationAllocator::AuditVisit(check::ReservationAuditVisitor& visitor) const {
  for (std::uint64_t g = 0; g < groups_.size(); ++g) {
    const Group& grp = groups_[g];
    check::ReservationGroupView view;
    view.group = g;
    switch (grp.state) {
      case GroupState::kFree:
        view.state = check::GroupStateView::kFree;
        break;
      case GroupState::kReserved:
        view.state = check::GroupStateView::kReserved;
        break;
      case GroupState::kFragmented:
        view.state = check::GroupStateView::kFragmented;
        break;
    }
    view.owner_key = grp.owner_key;
    view.used_mask = grp.used_mask;
    visitor.OnGroup(view);
  }
  for (const std::uint64_t g : free_groups_) {
    visitor.OnFreeListGroup(g);
  }
  for (const Ppn ppn : fragment_pool_) {
    visitor.OnFragmentFrame(ppn);
  }
  for (const auto& [key, g] : by_owner_) {
    visitor.OnOwnerEntry(key, g);
  }
  if (grant_log_enabled_) {
    for (const auto& [ppn, rec] : live_grants_) {
      visitor.OnGrant(ppn, rec.block_key, rec.boff, rec.properly_placed);
    }
  }
}

}  // namespace cpt::mem
