#include "mem/reservation.h"

#include <cassert>

namespace cpt::mem {

ReservationAllocator::ReservationAllocator(std::uint64_t num_frames, unsigned subblock_factor)
    : factor_(subblock_factor), num_frames_((num_frames / subblock_factor) * subblock_factor) {
  assert(IsPowerOfTwo(subblock_factor) && subblock_factor <= 32);
  assert(num_frames_ > 0);
  const std::uint64_t num_groups = num_frames_ / factor_;
  groups_.resize(num_groups);
  free_groups_.reserve(num_groups);
  // Push in reverse so low frame numbers are handed out first.
  for (std::uint64_t g = num_groups; g-- > 0;) {
    free_groups_.push_back(g);
  }
}

std::optional<ReservationAllocator::FrameGrant> ReservationAllocator::Allocate(
    std::uint64_t block_key, unsigned boff) {
  assert(boff < factor_);
  if (frames_used_ == num_frames_) {
    return std::nullopt;
  }

  // 1. An existing reservation for this virtual block: use the matching slot.
  if (auto it = by_owner_.find(block_key); it != by_owner_.end()) {
    Group& grp = groups_[it->second];
    assert(grp.state == GroupState::kReserved);
    const std::uint32_t bit = 1u << boff;
    assert((grp.used_mask & bit) == 0 && "double allocation of (block, boff)");
    grp.used_mask |= bit;
    ++frames_used_;
    ++grants_;
    ++placed_grants_;
    return FrameGrant{it->second * factor_ + boff, true};
  }

  // 2. Reserve a fresh aligned group for this virtual block.
  if (!free_groups_.empty()) {
    const std::uint64_t g = free_groups_.back();
    free_groups_.pop_back();
    Group& grp = groups_[g];
    grp.state = GroupState::kReserved;
    grp.owner_key = block_key;
    grp.used_mask = 1u << boff;
    by_owner_.emplace(block_key, g);
    reservation_fifo_.push_back(g);
    ++reservations_made_;
    ++frames_used_;
    ++grants_;
    ++placed_grants_;
    return FrameGrant{g * factor_ + boff, true};
  }

  // 3. Memory pressure: draw from the fragment pool, breaking reservations
  //    as needed.  The resulting frame is (almost surely) not properly
  //    placed for this virtual block.  Pool entries can go stale (their
  //    group fully emptied and was recycled, or a duplicate entry's frame
  //    was already granted), so validate on pop.
  for (;;) {
    while (fragment_pool_.empty()) {
      if (!BreakOneReservation()) {
        return std::nullopt;  // All frames genuinely in use.
      }
    }
    const Ppn ppn = fragment_pool_.back();
    fragment_pool_.pop_back();
    Group& grp = groups_[GroupOf(ppn)];
    const std::uint32_t bit = 1u << (ppn % factor_);
    if (grp.state != GroupState::kFragmented || (grp.used_mask & bit) != 0) {
      continue;  // Stale entry.
    }
    grp.used_mask |= bit;
    ++frames_used_;
    ++grants_;
    return FrameGrant{ppn, false};
  }
}

bool ReservationAllocator::BreakOneReservation() {
  while (!reservation_fifo_.empty()) {
    const std::uint64_t g = reservation_fifo_.front();
    reservation_fifo_.pop_front();
    Group& grp = groups_[g];
    if (grp.state != GroupState::kReserved) {
      continue;  // Stale entry: reservation already released or broken.
    }
    by_owner_.erase(grp.owner_key);
    grp.state = GroupState::kFragmented;
    ++reservations_broken_;
    for (unsigned slot = 0; slot < factor_; ++slot) {
      if ((grp.used_mask & (1u << slot)) == 0) {
        fragment_pool_.push_back(g * factor_ + slot);
      }
    }
    if (!fragment_pool_.empty()) {
      return true;
    }
    // A fully-used reservation yielded no frames; keep breaking.
  }
  return false;
}

void ReservationAllocator::Free(Ppn ppn) {
  assert(ppn < num_frames_);
  const std::uint64_t g = GroupOf(ppn);
  Group& grp = groups_[g];
  const std::uint32_t bit = 1u << (ppn % factor_);
  assert((grp.used_mask & bit) != 0 && "freeing an unallocated frame");
  grp.used_mask &= ~bit;
  --frames_used_;
  if (grp.state == GroupState::kFragmented) {
    if (grp.used_mask == 0) {
      grp.state = GroupState::kFree;
      free_groups_.push_back(g);
    } else {
      fragment_pool_.push_back(ppn);
    }
  } else if (grp.state == GroupState::kReserved && grp.used_mask == 0) {
    by_owner_.erase(grp.owner_key);
    grp.state = GroupState::kFree;
    free_groups_.push_back(g);
    // Its fifo entry becomes stale and is skipped by BreakOneReservation.
  }
}

}  // namespace cpt::mem
