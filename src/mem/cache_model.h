// Cache-line touch accounting for page-table walks.
//
// The paper's "page table access time" metric is the average number of
// distinct (level-two) cache lines accessed while servicing one TLB miss
// (Section 6.1), assuming page-table data is rarely cache-resident.  Page
// tables in this library place their structures at simulated physical
// addresses; every walk records the byte ranges it reads through this model,
// which counts distinct lines per walk and cumulative totals.
#ifndef CPT_MEM_CACHE_MODEL_H_
#define CPT_MEM_CACHE_MODEL_H_

#include <cstdint>
#include <vector>

#include "common/hotpath.h"
#include "common/stats.h"
#include "common/types.h"
#include "obs/trace.h"

namespace cpt::mem {

class CacheTouchModel {
 public:
  explicit CacheTouchModel(std::uint32_t line_size = kDefaultCacheLineSize);

  std::uint32_t line_size() const { return line_size_; }

  // ---- Telemetry (src/obs) ----
  // The cache model doubles as the walk-event bus: every page table holds a
  // reference to it, so attaching one tracer here makes the whole machine's
  // walk activity observable.  Null (the default) means every emit site is
  // a single predicted-not-taken branch; no simulated count ever depends on
  // whether a tracer is attached.
  void set_tracer(obs::WalkTracer* tracer) { tracer_ = tracer; }
  obs::WalkTracer* tracer() const { return tracer_; }
  bool in_walk() const { return in_walk_; }

  // Starts accounting for one page-table walk (one TLB miss service).
  CPT_HOT void BeginWalk();

  // Records a read of [addr, addr + size) in simulated physical memory.
  CPT_HOT void Touch(PhysAddr addr, std::uint64_t size);

  // Distinct lines touched since BeginWalk().
  CPT_HOT unsigned LinesThisWalk() const { return static_cast<unsigned>(walk_lines_.size()); }

  // Finishes the walk, folding its line count into the totals.
  CPT_HOT void EndWalk();

  // Discards the current walk without counting it (used when a walk turns
  // out to be a page fault, which is OS work rather than TLB-miss service).
  CPT_HOT void AbortWalk() {
    if (tracer_ != nullptr && in_walk_) {
      tracer_->Record({.kind = obs::EventKind::kWalkAbort});
    }
    walk_lines_.clear();
    in_walk_ = false;
  }

  std::uint64_t total_lines() const { return total_lines_; }
  std::uint64_t total_walks() const { return total_walks_; }
  double AvgLinesPerWalk() const {
    return total_walks_ == 0 ? 0.0
                             : static_cast<double>(total_lines_) / static_cast<double>(total_walks_);
  }
  const Histogram& per_walk_histogram() const { return per_walk_; }

  void Reset();

 private:
  std::uint32_t line_size_;
  unsigned line_shift_;
  std::vector<std::uint64_t> walk_lines_;  // distinct line ids of current walk
  bool in_walk_ = false;
  std::uint64_t total_lines_ = 0;
  std::uint64_t total_walks_ = 0;
  Histogram per_walk_;
  obs::WalkTracer* tracer_ = nullptr;
};

// RAII helper: begins a walk on construction, ends it on destruction.
class WalkScope {
 public:
  explicit WalkScope(CacheTouchModel& model) : model_(model) { model_.BeginWalk(); }
  ~WalkScope() { model_.EndWalk(); }
  WalkScope(const WalkScope&) = delete;
  WalkScope& operator=(const WalkScope&) = delete;

 private:
  CacheTouchModel& model_;
};

}  // namespace cpt::mem

#endif  // CPT_MEM_CACHE_MODEL_H_
