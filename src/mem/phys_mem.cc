#include "mem/phys_mem.h"

#include "common/check.h"

namespace cpt::mem {

PhysicalMemory::PhysicalMemory(std::uint64_t num_frames)
    : num_frames_(num_frames), frames_free_(num_frames), used_(num_frames, false) {
  CPT_CHECK(num_frames > 0 && num_frames <= kMaxPpn + 1);
}

std::optional<Ppn> PhysicalMemory::AllocFrame() {
  if (frames_free_ == 0) {
    return std::nullopt;
  }
  for (std::uint64_t i = 0; i < num_frames_; ++i) {
    const Ppn p = (scan_hint_ + i) % num_frames_;
    if (!used_[p]) {
      used_[p] = true;
      --frames_free_;
      scan_hint_ = (p + 1) % num_frames_;
      return p;
    }
  }
  return std::nullopt;
}

bool PhysicalMemory::AllocSpecific(Ppn ppn) {
  CPT_DCHECK(ppn < num_frames_);
  if (used_[ppn]) {
    return false;
  }
  used_[ppn] = true;
  --frames_free_;
  return true;
}

void PhysicalMemory::FreeFrame(Ppn ppn) {
  CPT_DCHECK(ppn < num_frames_);
  CPT_DCHECK(used_[ppn]);
  used_[ppn] = false;
  ++frames_free_;
}

bool PhysicalMemory::IsFree(Ppn ppn) const {
  CPT_DCHECK(ppn < num_frames_);
  return !used_[ppn];
}

}  // namespace cpt::mem
