#include "mem/phys_mem.h"

#include "common/check.h"

namespace cpt::mem {

PhysicalMemory::PhysicalMemory(std::uint64_t num_frames)
    : num_frames_(num_frames), frames_free_(num_frames), used_(num_frames, false) {
  CPT_CHECK(num_frames > 0 && num_frames <= kPpnMask + 1);
}

std::optional<Ppn> PhysicalMemory::AllocFrame() {
  if (frames_free_ == 0) {
    return std::nullopt;
  }
  // Frame-table indexing unwraps the PPN. // cpt-lint: allow(raw-address-param)
  for (std::uint64_t i = 0; i < num_frames_; ++i) {
    const Ppn p{(scan_hint_.raw() + i) % num_frames_};
    if (!used_[p.raw()]) {
      used_[p.raw()] = true;
      --frames_free_;
      scan_hint_ = Ppn{(p.raw() + 1) % num_frames_};
      return p;
    }
  }
  return std::nullopt;
}

bool PhysicalMemory::AllocSpecific(Ppn ppn) {
  // Frame-table indexing unwraps the PPN, as in AllocFrame (here and below).
  CPT_DCHECK(ppn.raw() < num_frames_);
  if (used_[ppn.raw()]) {
    return false;
  }
  used_[ppn.raw()] = true;
  --frames_free_;
  return true;
}

void PhysicalMemory::FreeFrame(Ppn ppn) {
  CPT_DCHECK(ppn.raw() < num_frames_);
  CPT_DCHECK(used_[ppn.raw()]);
  used_[ppn.raw()] = false;
  ++frames_free_;
}

bool PhysicalMemory::IsFree(Ppn ppn) const {
  CPT_DCHECK(ppn.raw() < num_frames_);
  return !used_[ppn.raw()];
}

}  // namespace cpt::mem
