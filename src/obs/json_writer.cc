#include "obs/json_writer.h"

#include <cmath>
#include <cstdio>

#include "common/check.h"

namespace cpt::obs {

JsonWriter::JsonWriter(std::ostream& os, bool pretty) : os_(os), pretty_(pretty) {}

JsonWriter::~JsonWriter() = default;

bool JsonWriter::Complete() const { return done_ && stack_.empty() && !expect_value_; }

void JsonWriter::NewlineIndent() {
  if (!pretty_) {
    return;
  }
  os_ << '\n';
  for (std::size_t i = 0; i < stack_.size(); ++i) {
    os_ << "  ";
  }
}

void JsonWriter::BeforeValue() {
  if (stack_.empty()) {
    CPT_CHECK(!done_, "only one top-level JSON value per writer");
    return;
  }
  if (stack_.back() == Ctx::kObject) {
    CPT_CHECK(expect_value_, "object members need a Key() before each value");
    expect_value_ = false;
    return;
  }
  // Array element.
  if (has_members_.back()) {
    os_ << (pretty_ ? ", " : ",");
  }
  has_members_.back() = true;
}

void JsonWriter::Key(std::string_view key) {
  CPT_CHECK(!stack_.empty() && stack_.back() == Ctx::kObject, "Key() outside an object");
  CPT_CHECK(!expect_value_, "two Key() calls without a value between them");
  if (has_members_.back()) {
    os_ << ',';
  }
  has_members_.back() = true;
  NewlineIndent();
  os_ << '"' << Escape(key) << (pretty_ ? "\": " : "\":");
  expect_value_ = true;
}

void JsonWriter::BeginObject() {
  BeforeValue();
  os_ << '{';
  stack_.push_back(Ctx::kObject);
  has_members_.push_back(false);
}

void JsonWriter::EndObject() {
  CPT_CHECK(!stack_.empty() && stack_.back() == Ctx::kObject, "unbalanced EndObject()");
  CPT_CHECK(!expect_value_, "dangling Key() at EndObject()");
  const bool had = has_members_.back();
  stack_.pop_back();
  has_members_.pop_back();
  if (had) {
    NewlineIndent();
  }
  os_ << '}';
  if (stack_.empty()) {
    done_ = true;
  }
}

void JsonWriter::BeginArray() {
  BeforeValue();
  os_ << '[';
  stack_.push_back(Ctx::kArray);
  has_members_.push_back(false);
}

void JsonWriter::EndArray() {
  CPT_CHECK(!stack_.empty() && stack_.back() == Ctx::kArray, "unbalanced EndArray()");
  stack_.pop_back();
  has_members_.pop_back();
  os_ << ']';
  if (stack_.empty()) {
    done_ = true;
  }
}

void JsonWriter::String(std::string_view v) {
  BeforeValue();
  os_ << '"' << Escape(v) << '"';
  if (stack_.empty()) {
    done_ = true;
  }
}

void JsonWriter::Uint(std::uint64_t v) {
  BeforeValue();
  os_ << v;
  if (stack_.empty()) {
    done_ = true;
  }
}

void JsonWriter::Int(std::int64_t v) {
  BeforeValue();
  os_ << v;
  if (stack_.empty()) {
    done_ = true;
  }
}

void JsonWriter::Double(double v) {
  BeforeValue();
  if (std::isnan(v) || std::isinf(v)) {
    os_ << "null";  // JSON has no NaN/Inf.
  } else {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    os_ << buf;
  }
  if (stack_.empty()) {
    done_ = true;
  }
}

void JsonWriter::Bool(bool v) {
  BeforeValue();
  os_ << (v ? "true" : "false");
  if (stack_.empty()) {
    done_ = true;
  }
}

void JsonWriter::Null() {
  BeforeValue();
  os_ << "null";
  if (stack_.empty()) {
    done_ = true;
  }
}

std::string JsonWriter::Escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", static_cast<unsigned char>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace cpt::obs
