// MetricRegistry: a flat namespace of named telemetry instruments.
//
// Four instrument types, mirroring what the evaluation actually reports:
//   counter — monotonically increasing u64 (misses, faults, grants)
//   gauge   — last-written double (load factor, normalized size)
//   histo   — cpt::Histogram over small integers (chain length, lines/miss)
//   stats   — cpt::RunningStats over doubles (wall seconds, refs/sec)
//
// Instruments are identified by name plus an optional ordered label list
// (e.g. {"workload","coral"}), so one registry can hold a whole bench run's
// per-workload series.  Lookup interns the instrument on first use and
// returns a reference with a stable address, so hot paths can resolve once
// and bump a plain integer thereafter.
#ifndef CPT_OBS_METRICS_H_
#define CPT_OBS_METRICS_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/hotpath.h"
#include "common/stats.h"

namespace cpt::obs {

class JsonWriter;

// Cache-aligned: ShardedMetricRegistry hands each worker thread its own
// registry, and each shard's hot counters must not share a
// destructive-interference line with a neighboring shard's.
class CPT_CACHE_ALIGNED MetricRegistry {
 public:
  using Labels = std::vector<std::pair<std::string, std::string>>;

  std::uint64_t& Counter(std::string_view name, const Labels& labels = {});
  double& Gauge(std::string_view name, const Labels& labels = {});
  Histogram& Histo(std::string_view name, const Labels& labels = {});
  RunningStats& Stats(std::string_view name, const Labels& labels = {});

  std::size_t size() const { return instruments_.size(); }
  bool empty() const { return instruments_.empty(); }

  // Folds `other` into this registry instrument-by-instrument: counters sum,
  // histograms and stats Merge, gauges take `other`'s value (last writer
  // wins, so folding shards in index order is deterministic).  Instruments
  // only present in `other` are interned here; re-merging the same name with
  // a different type trips a CPT_CHECK.
  void MergeFrom(const MetricRegistry& other);

  // Visits every counter instrument in dump order (name, labels, value).
  // Used by IntervalSnapshotter to delta-sample a registry at window
  // boundaries without exposing the instrument map.
  template <typename Fn>
  void ForEachCounter(Fn&& fn) const {
    for (const auto& [key, inst] : instruments_) {
      if (inst.type == Type::kCounter) {
        fn(inst.name, inst.labels, inst.counter);
      }
    }
  }

  // Emits the registry as a JSON array of {name, labels, type, ...} objects,
  // ordered by (name, labels) for deterministic output.
  void ToJson(JsonWriter& w) const;

 private:
  enum class Type : std::uint8_t { kCounter, kGauge, kHisto, kStats };

  struct Instrument {
    std::string name;
    Labels labels;
    Type type = Type::kCounter;
    std::uint64_t counter = 0;
    double gauge = 0.0;
    Histogram histo;
    RunningStats stats;
  };

  Instrument& Intern(std::string_view name, const Labels& labels, Type type);

  // Keyed by name + '\0' + label pairs; std::map keeps references stable
  // across inserts and the dump deterministically ordered.
  std::map<std::string, Instrument> instruments_;
};

// Shared histogram serialization: {"total","mean","overflow","counts":{...}}.
// Used by the registry dump and the bench JSON documents.
void HistogramToJson(JsonWriter& w, const Histogram& h);

// {"count","mean","min","max","stddev"}.
void RunningStatsToJson(JsonWriter& w, const RunningStats& s);

}  // namespace cpt::obs

#endif  // CPT_OBS_METRICS_H_
