// Performance attribution over the walk-event stream.
//
// The paper's headline metric — cache lines touched per TLB miss — is a
// single average; this layer breaks it down by *dimension* so a regression
// (or a win) can be located instead of merely detected:
//
//   segment     — which part of the address space the missing reference hit
//                 (text / heap / data / mmap / stack), classified through a
//                 SegmentMap built from the workload's segment layout;
//   page class  — what kind of PTE ultimately serviced the walk (base page,
//                 superpage, partial-subblock, software-TLB hit, block
//                 prefetch);
//   outcome     — where in the structure the walk ended: hit at chain node
//                 k, chain overflow (deep hit), software-TLB direct hit,
//                 fault-abort (the service included a page fault), or a
//                 complete-subblock block prefetch.
//
// Each dimension partitions the set of counted walks, so for every dimension
// the per-value `lines` sum equals the total lines touched — which is the
// numerator of the headline lines-per-miss figure.  tests/obs_test.cc
// asserts this reconciliation end-to-end against a real Machine run.
//
// The tracer is an ordinary WalkTracer: attach it anywhere in a tracer
// chain; like every obs consumer it never affects simulated counts.
#ifndef CPT_OBS_ATTRIBUTION_H_
#define CPT_OBS_ATTRIBUTION_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace cpt::obs {

class JsonWriter;

// Address-space segment classes (mirrors workload::SegmentKind without a
// dependency on the workload layer; obs sits below it).
enum class SegmentClass : std::uint8_t {
  kText = 0,
  kHeap,
  kData,
  kMmap,
  kStack,
  kUnknown,
};
inline constexpr std::size_t kSegmentClassCount = 6;
static_assert(static_cast<std::size_t>(SegmentClass::kUnknown) + 1 == kSegmentClassCount,
              "kSegmentClassCount must track the last SegmentClass enumerator");
const char* ToString(SegmentClass cls);

// Maps (asid, vpn) to a SegmentClass through a set of half-open VPN ranges.
// Built once per measurement from the workload spec; lookup is a binary
// search, cheap enough for every committed walk.
class SegmentMap {
 public:
  void Add(std::uint16_t asid, Vpn begin_vpn, Vpn end_vpn, SegmentClass cls);
  SegmentClass Classify(std::uint16_t asid, Vpn vpn) const;

  bool empty() const { return ranges_.empty(); }
  std::size_t size() const { return ranges_.size(); }

 private:
  struct Range {
    std::uint16_t asid = 0;
    Vpn begin{};  // Inclusive VPN.
    Vpn end{};    // Exclusive VPN.
    SegmentClass cls = SegmentClass::kUnknown;
  };

  void SortIfNeeded() const;

  mutable std::vector<Range> ranges_;
  mutable bool sorted_ = true;
};

// One cell of a dimension breakdown; `label` is the dimension value.
struct AttributionCell {
  std::string label;
  std::uint64_t walks = 0;
  std::uint64_t lines = 0;
  std::uint64_t steps = 0;
};

// The finished breakdown; zero cells are omitted.  Invariant (per dimension):
// sum(cells.lines) == lines, sum(cells.walks) == walks.
struct AttributionResult {
  std::uint64_t walks = 0;
  std::uint64_t lines = 0;
  std::uint64_t steps = 0;
  std::vector<AttributionCell> by_segment;
  std::vector<AttributionCell> by_page_class;
  std::vector<AttributionCell> by_outcome;

  bool empty() const { return walks == 0; }
};

// Emits one JSON object: {walks, lines, steps, by_segment: [...], ...} with
// per-cell lines_per_walk convenience ratios.
void ToJson(JsonWriter& w, const AttributionResult& r);

// Materializes the breakdown as labeled registry instruments:
//   attribution_walks{dim=..., value=..., <base labels>}
//   attribution_lines{dim=..., value=..., <base labels>}
void ExportTo(MetricRegistry& registry, const AttributionResult& r,
              const MetricRegistry::Labels& base_labels);

// Streams walk events into the per-dimension tables.  Forwarding tracer like
// StatsTracer: pass-through to `forward` keeps one event stream feeding the
// histogram aggregator, the ring buffer, and this attribution pass at once.
class AttributionTracer final : public WalkTracer {
 public:
  explicit AttributionTracer(const SegmentMap* segments = nullptr,
                             WalkTracer* forward = nullptr)
      : segments_(segments), forward_(forward) {}

  void Record(const WalkEvent& event) override;

  // Finalizes any walk whose block-prefetch marker is still pending and
  // returns the breakdown.
  AttributionResult Result();

  std::uint64_t walks() const { return walks_; }
  std::uint64_t lines() const { return lines_total_; }

  // Axis geometry, public so the name tables in attribution.cc (and any
  // validator) can static_assert against it.
  // Page-class axis: WalkHitClass values, then block prefetch, then unknown.
  static constexpr std::size_t kPageClassCount = kWalkHitClassCount + 2;
  static constexpr std::size_t kBlockClassIndex = kWalkHitClassCount;
  static constexpr std::size_t kUnknownClassIndex = kWalkHitClassCount + 1;

  // Outcome axis: fault, prefetch, swtlb (0-step hit), hit@1..hit@8,
  // overflow (hit deeper than node 8).
  static constexpr std::size_t kMaxHitNode = 8;
  static constexpr std::size_t kOutcomeCount = 3 + kMaxHitNode + 1;

 private:
  struct Cell {
    std::uint64_t walks = 0;
    std::uint64_t lines = 0;
    std::uint64_t steps = 0;
  };

  void BeginWalk(const WalkEvent& event);
  void CommitWalk();
  void ResetWalk();

  const SegmentMap* segments_;
  WalkTracer* forward_;

  // Pending-walk state.
  bool armed_ = false;           // A TLB miss opened a walk service.
  bool pending_commit_ = false;  // kWalkEnd seen, waiting for a possible
                                 // kBlockPrefetch marker before committing.
  bool faulted_ = false;         // The service included a fault-abort.
  bool block_ = false;           // The service was a block-prefetch fill.
  bool have_hit_ = false;
  std::uint16_t asid_ = 0;
  Vpn vpn_{};
  std::uint32_t steps_ = 0;
  std::uint64_t hit_value_ = 0;
  std::uint32_t end_lines_ = 0;

  // Totals and per-dimension tables.
  std::uint64_t walks_ = 0;
  std::uint64_t lines_total_ = 0;
  std::uint64_t steps_total_ = 0;
  std::array<Cell, kSegmentClassCount> seg_{};
  std::array<Cell, kPageClassCount> cls_{};
  std::array<Cell, kOutcomeCount> out_{};
};

}  // namespace cpt::obs

#endif  // CPT_OBS_ATTRIBUTION_H_
