#include "obs/metrics.h"

#include "common/check.h"
#include "obs/json_writer.h"

namespace cpt::obs {

namespace {

std::string KeyOf(std::string_view name, const MetricRegistry::Labels& labels) {
  std::string key(name);
  for (const auto& [k, v] : labels) {
    key += '\0';
    key += k;
    key += '\0';
    key += v;
  }
  return key;
}

}  // namespace

MetricRegistry::Instrument& MetricRegistry::Intern(std::string_view name, const Labels& labels,
                                                   Type type) {
  auto [it, inserted] = instruments_.try_emplace(KeyOf(name, labels));
  Instrument& inst = it->second;
  if (inserted) {
    inst.name = std::string(name);
    inst.labels = labels;
    inst.type = type;
  } else {
    CPT_CHECK(inst.type == type, "metric re-registered with a different type");
  }
  return inst;
}

std::uint64_t& MetricRegistry::Counter(std::string_view name, const Labels& labels) {
  return Intern(name, labels, Type::kCounter).counter;
}

double& MetricRegistry::Gauge(std::string_view name, const Labels& labels) {
  return Intern(name, labels, Type::kGauge).gauge;
}

Histogram& MetricRegistry::Histo(std::string_view name, const Labels& labels) {
  return Intern(name, labels, Type::kHisto).histo;
}

RunningStats& MetricRegistry::Stats(std::string_view name, const Labels& labels) {
  return Intern(name, labels, Type::kStats).stats;
}

void MetricRegistry::MergeFrom(const MetricRegistry& other) {
  for (const auto& [key, src] : other.instruments_) {
    Instrument& dst = Intern(src.name, src.labels, src.type);
    switch (src.type) {
      case Type::kCounter:
        dst.counter += src.counter;
        break;
      case Type::kGauge:
        dst.gauge = src.gauge;
        break;
      case Type::kHisto:
        dst.histo.Merge(src.histo);
        break;
      case Type::kStats:
        dst.stats.Merge(src.stats);
        break;
    }
  }
}

void MetricRegistry::ToJson(JsonWriter& w) const {
  w.BeginArray();
  for (const auto& [key, inst] : instruments_) {
    w.BeginObject();
    w.KV("name", inst.name);
    if (!inst.labels.empty()) {
      w.Key("labels");
      w.BeginObject();
      for (const auto& [k, v] : inst.labels) {
        w.KV(k, v);
      }
      w.EndObject();
    }
    switch (inst.type) {
      case Type::kCounter:
        w.KV("type", "counter");
        w.KV("value", inst.counter);
        break;
      case Type::kGauge:
        w.KV("type", "gauge");
        w.KV("value", inst.gauge);
        break;
      case Type::kHisto:
        w.KV("type", "histogram");
        w.Key("value");
        HistogramToJson(w, inst.histo);
        break;
      case Type::kStats:
        w.KV("type", "stats");
        w.Key("value");
        RunningStatsToJson(w, inst.stats);
        break;
    }
    w.EndObject();
  }
  w.EndArray();
}

void HistogramToJson(JsonWriter& w, const Histogram& h) {
  w.BeginObject();
  w.KV("total", h.total());
  w.KV("mean", h.mean());
  w.KV("overflow", h.overflow());
  w.Key("counts");
  w.BeginObject();
  for (std::size_t v = 0; v <= h.max_value(); ++v) {
    if (h.count(v) != 0) {
      w.KV(std::to_string(v), h.count(v));
    }
  }
  w.EndObject();
  w.EndObject();
}

void RunningStatsToJson(JsonWriter& w, const RunningStats& s) {
  w.BeginObject();
  w.KV("count", s.count());
  w.KV("mean", s.mean());
  w.KV("min", s.min());
  w.KV("max", s.max());
  w.KV("stddev", s.stddev());
  w.EndObject();
}

}  // namespace cpt::obs
