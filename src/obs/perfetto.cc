#include "obs/perfetto.h"

#include <string>

#include "common/check.h"
#include "obs/json_writer.h"

namespace cpt::obs {

PerfettoExporter::PerfettoExporter(std::ostream& os, Options opts)
    : opts_(opts), writer_(std::make_unique<JsonWriter>(os, /*pretty=*/false)) {
  CPT_CHECK(opts_.counter_interval > 0);
  writer_->BeginObject();
  writer_->KV("displayTimeUnit", "ms");
  writer_->Key("traceEvents");
  writer_->BeginArray();
  EmitMeta("process_name", 0, "cpt-sim");
  EmitMeta("thread_name", kTrackTlb, "TLB");
  EmitMeta("thread_name", kTrackWalk, "PT walk");
  EmitMeta("thread_name", kTrackOs, "OS");
  EmitMeta("thread_name", kTrackAllocator, "allocator");
  EmitMeta("thread_name", kTrackSwTlb, "softTLB");
  EmitMeta("thread_name", kTrackSections, "sections");
  EmitMeta("thread_name", kTrackTimeseries, "timeseries");
}

PerfettoExporter::~PerfettoExporter() { Finish(); }

void PerfettoExporter::Finish() {
  if (finished_) {
    return;
  }
  // A trailing summary instant makes truncation visible in the UI.
  BeginEvent("i", "trace_end", kTrackSections, now_);
  writer_->KV("s", "g");  // Global-scope instant.
  writer_->Key("args");
  writer_->BeginObject();
  writer_->KV("events_written", events_written_);
  writer_->KV("events_dropped", events_dropped_);
  writer_->EndObject();
  EndEvent();
  writer_->EndArray();
  writer_->EndObject();
  CPT_CHECK(writer_->Complete());
  finished_ = true;
}

bool PerfettoExporter::Budget() {
  if (events_written_ < opts_.max_events) {
    return true;
  }
  ++events_dropped_;
  return false;
}

void PerfettoExporter::BeginEvent(const char* ph, std::string_view name, std::uint32_t tid,
                                  std::uint64_t ts) {
  writer_->BeginObject();
  writer_->KV("ph", ph);
  writer_->KV("name", name);
  writer_->KV("pid", std::uint64_t{0});
  writer_->KV("tid", std::uint64_t{tid});
  writer_->KV("ts", ts);
}

void PerfettoExporter::EndEvent() { writer_->EndObject(); }

void PerfettoExporter::EmitMeta(std::string_view name, std::uint32_t tid,
                                std::string_view value) {
  writer_->BeginObject();
  writer_->KV("ph", "M");
  writer_->KV("name", name);
  writer_->KV("pid", std::uint64_t{0});
  writer_->KV("tid", std::uint64_t{tid});
  writer_->Key("args");
  writer_->BeginObject();
  writer_->KV("name", value);
  writer_->EndObject();
  writer_->EndObject();
}

void PerfettoExporter::Instant(std::string_view name, std::uint32_t tid) {
  if (!Budget()) {
    return;
  }
  BeginEvent("i", name, tid, now_);
  writer_->KV("s", "t");  // Thread-scope instant.
  EndEvent();
  ++events_written_;
}

void PerfettoExporter::CounterSample() {
  if (!Budget()) {
    return;
  }
  BeginEvent("C", "tlb", kTrackTlb, now_);
  writer_->Key("args");
  writer_->BeginObject();
  writer_->KV("misses", misses_);
  writer_->KV("lines_per_miss",
              misses_ == 0 ? 0.0 : static_cast<double>(lines_) / static_cast<double>(misses_));
  writer_->EndObject();
  EndEvent();
  ++events_written_;
}

void PerfettoExporter::CounterTrack(std::string_view name,
                                    std::initializer_list<std::pair<const char*, double>> args) {
  CPT_CHECK(!finished_);
  if (!Budget()) {
    return;
  }
  BeginEvent("C", name, kTrackTimeseries, now_);
  writer_->Key("args");
  writer_->BeginObject();
  for (const auto& [key, value] : args) {
    writer_->KV(key, value);
  }
  writer_->EndObject();
  EndEvent();
  ++events_written_;
}

void PerfettoExporter::BeginSection(std::string_view label) {
  CPT_CHECK(!finished_);
  ++now_;
  if (!Budget()) {
    return;
  }
  BeginEvent("i", label, kTrackSections, now_);
  writer_->KV("s", "g");
  EndEvent();
  ++events_written_;
}

void PerfettoExporter::Record(const WalkEvent& event) {
  CPT_CHECK(!finished_);
  ++now_;
  switch (event.kind) {
    case EventKind::kTlbHit:
      if (opts_.include_hits) {
        Instant("tlb_hit", kTrackTlb);
      }
      break;

    case EventKind::kTlbMiss:
    case EventKind::kTlbBlockMiss:
    case EventKind::kTlbSubblockMiss:
      ++misses_;
      Instant(ToString(event.kind), kTrackTlb);
      walk_open_ = true;
      walk_faulted_ = false;
      walk_start_ = now_;
      walk_vpn_ = event.vpn;
      walk_steps_ = 0;
      break;

    case EventKind::kWalkStep:
      if (walk_open_) {
        ++walk_steps_;
      }
      break;

    case EventKind::kWalkHit:
      break;  // Folded into the slice args via walk_steps_.

    case EventKind::kWalkAbort:
      if (walk_open_) {
        walk_faulted_ = true;
      }
      break;

    case EventKind::kWalkEnd: {
      if (!walk_open_) {
        break;
      }
      walk_open_ = false;
      lines_ += event.lines;
      ++walks_;
      if (Budget()) {
        BeginEvent("X", walk_faulted_ ? "walk+fault" : "walk", kTrackWalk, walk_start_);
        writer_->KV("dur", now_ - walk_start_ + 1);
        writer_->Key("args");
        writer_->BeginObject();
        writer_->KV("vpn", walk_vpn_);
        writer_->KV("steps", std::uint64_t{walk_steps_});
        writer_->KV("lines", std::uint64_t{event.lines});
        writer_->KV("faulted", walk_faulted_);
        writer_->EndObject();
        EndEvent();
        ++events_written_;
      }
      if (walks_ % opts_.counter_interval == 0) {
        CounterSample();
      }
      break;
    }

    case EventKind::kPageFault:
      Instant("page_fault", kTrackOs);
      break;
    case EventKind::kPtePromotion:
      Instant("pte_promotion", kTrackOs);
      break;
    case EventKind::kBlockPrefetch:
      Instant("block_prefetch", kTrackTlb);
      break;
    case EventKind::kReservationGrant:
      Instant(event.value != 0 ? "grant" : "grant_misplaced", kTrackAllocator);
      break;
    case EventKind::kSwTlbHit:
      Instant("swtlb_hit", kTrackSwTlb);
      break;
    case EventKind::kSwTlbMiss:
      Instant("swtlb_miss", kTrackSwTlb);
      break;
  }
}

}  // namespace cpt::obs
