#include "obs/perfetto.h"

#include <string>

#include "common/check.h"
#include "obs/json_writer.h"

namespace cpt::obs {

PerfettoExporter::PerfettoExporter(std::ostream& os, Options opts)
    : opts_(opts), writer_(std::make_unique<JsonWriter>(os, /*pretty=*/false)) {
  CPT_CHECK(opts_.counter_interval > 0);
  writer_->BeginObject();
  writer_->KV("displayTimeUnit", "ms");
  writer_->Key("traceEvents");
  writer_->BeginArray();
  EmitMeta("process_name", 0, "cpt-sim");
  EnsureShardTracks(0);
}

void PerfettoExporter::EnsureShardTracks(std::uint16_t shard) {
  if (shard < shard_announced_.size() && shard_announced_[shard]) {
    return;
  }
  if (shard >= shard_announced_.size()) {
    shard_announced_.resize(shard + 1, false);
  }
  shard_announced_[shard] = true;
  // Shard 0 keeps the original bare names so single-threaded traces are
  // unchanged; other shards get a suffixed copy of each track.
  const std::string suffix = shard == 0 ? "" : " (shard " + std::to_string(shard) + ")";
  EmitMeta("thread_name", Tid(shard, kTrackTlb), "TLB" + suffix);
  EmitMeta("thread_name", Tid(shard, kTrackWalk), "PT walk" + suffix);
  EmitMeta("thread_name", Tid(shard, kTrackOs), "OS" + suffix);
  EmitMeta("thread_name", Tid(shard, kTrackAllocator), "allocator" + suffix);
  EmitMeta("thread_name", Tid(shard, kTrackSwTlb), "softTLB" + suffix);
  if (shard == 0) {
    // Sections and timeseries are run-global; they exist once.
    EmitMeta("thread_name", Tid(0, kTrackSections), "sections");
    EmitMeta("thread_name", Tid(0, kTrackTimeseries), "timeseries");
  }
}

PerfettoExporter::WalkState& PerfettoExporter::WalkStateFor(std::uint16_t shard) {
  if (shard >= walk_.size()) {
    walk_.resize(shard + 1);
  }
  return walk_[shard];
}

PerfettoExporter::~PerfettoExporter() { Finish(); }

void PerfettoExporter::Finish() {
  if (finished_) {
    return;
  }
  // A trailing summary instant makes truncation visible in the UI.
  BeginEvent("i", "trace_end", kTrackSections, now_);
  writer_->KV("s", "g");  // Global-scope instant.
  writer_->Key("args");
  writer_->BeginObject();
  writer_->KV("events_written", events_written_);
  writer_->KV("events_dropped", events_dropped_);
  writer_->EndObject();
  EndEvent();
  writer_->EndArray();
  writer_->EndObject();
  CPT_CHECK(writer_->Complete());
  finished_ = true;
}

bool PerfettoExporter::Budget() {
  if (events_written_ < opts_.max_events) {
    return true;
  }
  ++events_dropped_;
  return false;
}

void PerfettoExporter::BeginEvent(const char* ph, std::string_view name, std::uint32_t tid,
                                  std::uint64_t ts) {
  writer_->BeginObject();
  writer_->KV("ph", ph);
  writer_->KV("name", name);
  writer_->KV("pid", std::uint64_t{0});
  writer_->KV("tid", std::uint64_t{tid});
  writer_->KV("ts", ts);
}

void PerfettoExporter::EndEvent() { writer_->EndObject(); }

void PerfettoExporter::EmitMeta(std::string_view name, std::uint32_t tid,
                                std::string_view value) {
  writer_->BeginObject();
  writer_->KV("ph", "M");
  writer_->KV("name", name);
  writer_->KV("pid", std::uint64_t{0});
  writer_->KV("tid", std::uint64_t{tid});
  writer_->Key("args");
  writer_->BeginObject();
  writer_->KV("name", value);
  writer_->EndObject();
  writer_->EndObject();
}

void PerfettoExporter::Instant(std::string_view name, std::uint32_t tid) {
  if (!Budget()) {
    return;
  }
  BeginEvent("i", name, tid, now_);
  writer_->KV("s", "t");  // Thread-scope instant.
  EndEvent();
  ++events_written_;
}

void PerfettoExporter::CounterSample() {
  if (!Budget()) {
    return;
  }
  BeginEvent("C", "tlb", kTrackTlb, now_);
  writer_->Key("args");
  writer_->BeginObject();
  writer_->KV("misses", misses_);
  writer_->KV("lines_per_miss",
              misses_ == 0 ? 0.0 : static_cast<double>(lines_) / static_cast<double>(misses_));
  writer_->EndObject();
  EndEvent();
  ++events_written_;
}

void PerfettoExporter::CounterTrack(std::string_view name,
                                    std::initializer_list<std::pair<const char*, double>> args) {
  CPT_CHECK(!finished_);
  if (!Budget()) {
    return;
  }
  BeginEvent("C", name, kTrackTimeseries, now_);
  writer_->Key("args");
  writer_->BeginObject();
  for (const auto& [key, value] : args) {
    writer_->KV(key, value);
  }
  writer_->EndObject();
  EndEvent();
  ++events_written_;
}

void PerfettoExporter::BeginSection(std::string_view label) {
  CPT_CHECK(!finished_);
  ++now_;
  if (!Budget()) {
    return;
  }
  BeginEvent("i", label, kTrackSections, now_);
  writer_->KV("s", "g");
  EndEvent();
  ++events_written_;
}

void PerfettoExporter::Record(const WalkEvent& event) {
  CPT_CHECK(!finished_);
  ++now_;
  const std::uint16_t shard = event.shard;
  EnsureShardTracks(shard);
  WalkState& walk = WalkStateFor(shard);
  switch (event.kind) {
    case EventKind::kTlbHit:
      if (opts_.include_hits) {
        Instant("tlb_hit", Tid(shard, kTrackTlb));
      }
      break;

    case EventKind::kTlbMiss:
    case EventKind::kTlbBlockMiss:
    case EventKind::kTlbSubblockMiss:
      ++misses_;
      Instant(ToString(event.kind), Tid(shard, kTrackTlb));
      walk.open = true;
      walk.faulted = false;
      walk.start = now_;
      walk.vpn = event.vpn;
      walk.steps = 0;
      break;

    case EventKind::kWalkStep:
      if (walk.open) {
        ++walk.steps;
      }
      break;

    case EventKind::kWalkHit:
      break;  // Folded into the slice args via walk.steps.

    case EventKind::kWalkAbort:
      if (walk.open) {
        walk.faulted = true;
      }
      break;

    case EventKind::kWalkEnd: {
      if (!walk.open) {
        break;
      }
      walk.open = false;
      lines_ += event.lines;
      ++walks_;
      if (Budget()) {
        BeginEvent("X", walk.faulted ? "walk+fault" : "walk", Tid(shard, kTrackWalk),
                   walk.start);
        writer_->KV("dur", now_ - walk.start + 1);
        writer_->Key("args");
        writer_->BeginObject();
        writer_->KV("vpn", walk.vpn);
        writer_->KV("steps", std::uint64_t{walk.steps});
        writer_->KV("lines", std::uint64_t{event.lines});
        writer_->KV("faulted", walk.faulted);
        writer_->EndObject();
        EndEvent();
        ++events_written_;
      }
      if (walks_ % opts_.counter_interval == 0) {
        CounterSample();
      }
      break;
    }

    case EventKind::kPageFault:
      Instant("page_fault", Tid(shard, kTrackOs));
      break;
    case EventKind::kPtePromotion:
      Instant("pte_promotion", Tid(shard, kTrackOs));
      break;
    case EventKind::kBlockPrefetch:
      Instant("block_prefetch", Tid(shard, kTrackTlb));
      break;
    case EventKind::kReservationGrant:
      Instant(event.value != 0 ? "grant" : "grant_misplaced", Tid(shard, kTrackAllocator));
      break;
    case EventKind::kSwTlbHit:
      Instant("swtlb_hit", Tid(shard, kTrackSwTlb));
      break;
    case EventKind::kSwTlbMiss:
      Instant("swtlb_miss", Tid(shard, kTrackSwTlb));
      break;
  }
}

}  // namespace cpt::obs
