#include "obs/contention.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "obs/json_writer.h"

namespace cpt::obs {

namespace {

void FoldWait(const WaitHistogram* wh, bool& has_wait, std::uint64_t& total_ns,
              std::array<std::uint64_t, WaitHistogram::kBuckets>& buckets) {
  if (wh == nullptr) {
    return;
  }
  has_wait = true;
  total_ns += wh->total_ns.load_relaxed();
  for (std::size_t b = 0; b < WaitHistogram::kBuckets; ++b) {
    buckets[b] += wh->counts[b].load_relaxed();
  }
}

}  // namespace

ContentionRegistry& ContentionRegistry::Global() {
  static ContentionRegistry registry;
  return registry;
}

std::uint64_t ContentionRegistry::RegisterEntry(Entry e) {
  CPT_CHECK(!e.name.empty(), "contention site needs a non-empty name");
  MutexLock lock(mu_);
  const std::uint64_t id = next_id_++;
  live_.emplace(id, std::move(e));
  return id;
}

std::uint64_t ContentionRegistry::Register(std::string_view name, const Mutex* mu) {
  CPT_CHECK(mu != nullptr, "null Mutex in contention site");
  Entry e;
  e.name = std::string(name);
  e.mu = mu;
  return RegisterEntry(std::move(e));
}

std::uint64_t ContentionRegistry::Register(std::string_view name, const SharedMutex* mu) {
  CPT_CHECK(mu != nullptr, "null SharedMutex in contention site");
  Entry e;
  e.name = std::string(name);
  e.smu = mu;
  return RegisterEntry(std::move(e));
}

std::uint64_t ContentionRegistry::Register(std::string_view name, const StripeSet* stripes) {
  CPT_CHECK(stripes != nullptr, "null StripeSet in contention site");
  Entry e;
  e.name = std::string(name);
  e.stripes = stripes;
  return RegisterEntry(std::move(e));
}

void ContentionRegistry::FoldEntry(const Entry& e, Retired& into) {
  if (e.mu != nullptr) {
    into.acquisitions += e.mu->acquisitions();
    into.contended += e.mu->contended();
    FoldWait(e.mu->wait_histogram(), into.has_wait, into.wait_total_ns, into.wait_buckets);
  }
  if (e.smu != nullptr) {
    into.acquisitions += e.smu->acquisitions();
    into.contended += e.smu->contended();
    into.shared_acquisitions += e.smu->shared_acquisitions();
    into.shared_contended += e.smu->shared_contended();
    FoldWait(e.smu->wait_histogram(), into.has_wait, into.wait_total_ns, into.wait_buckets);
  }
  if (e.stripes != nullptr && !e.stripes->empty()) {
    if (into.stripes.size() < e.stripes->count()) {
      into.stripes.resize(e.stripes->count());
    }
    for (unsigned i = 0; i < e.stripes->count(); ++i) {
      const Mutex& stripe = e.stripes->stripe(i);
      into.stripes[i].acquisitions += stripe.acquisitions();
      into.stripes[i].contended += stripe.contended();
      // Site-level totals for a stripe site are the stripe sums, so the
      // per-stripe breakdown reconciles exactly with the site header.
      into.acquisitions += stripe.acquisitions();
      into.contended += stripe.contended();
      FoldWait(stripe.wait_histogram(), into.has_wait, into.wait_total_ns, into.wait_buckets);
    }
  }
}

void ContentionRegistry::Unregister(std::uint64_t id) {
  if (id == 0) {
    return;
  }
  MutexLock lock(mu_);
  auto it = live_.find(id);
  if (it == live_.end()) {
    return;
  }
  FoldEntry(it->second, retired_[it->second.name]);
  live_.erase(it);
}

std::vector<ContentionSiteSnapshot> ContentionRegistry::Snapshot() const {
  // Aggregate by name: start from the retired totals, fold every live site
  // in on top.  std::map keeps the result name-sorted.
  std::map<std::string, Retired> agg;
  {
    MutexLock lock(mu_);
    agg = retired_;
    for (const auto& [id, e] : live_) {
      FoldEntry(e, agg[e.name]);
    }
  }
  std::vector<ContentionSiteSnapshot> out;
  out.reserve(agg.size());
  for (auto& [name, r] : agg) {
    ContentionSiteSnapshot s;
    s.name = name;
    s.acquisitions = r.acquisitions;
    s.contended = r.contended;
    s.shared_acquisitions = r.shared_acquisitions;
    s.shared_contended = r.shared_contended;
    s.has_wait = r.has_wait;
    s.wait_total_ns = r.wait_total_ns;
    s.wait_buckets = r.wait_buckets;
    s.stripes = std::move(r.stripes);
    out.push_back(std::move(s));
  }
  return out;
}

void ContentionRegistry::ToJson(JsonWriter& w) const {
  const std::vector<ContentionSiteSnapshot> sites = Snapshot();
  std::uint64_t total_acq = 0;
  std::uint64_t total_cont = 0;
  w.BeginObject();
  w.KV("contention_timing", ContentionTimingEnabled());
  w.Key("sites");
  w.BeginArray();
  for (const ContentionSiteSnapshot& s : sites) {
    total_acq += s.total_acquisitions();
    total_cont += s.total_contended();
    w.BeginObject();
    w.KV("name", s.name);
    w.KV("acquisitions", s.acquisitions);
    w.KV("contended", s.contended);
    w.KV("shared_acquisitions", s.shared_acquisitions);
    w.KV("shared_contended", s.shared_contended);
    w.KV("contended_fraction", s.contended_fraction());
    if (s.has_wait) {
      w.Key("wait");
      w.BeginObject();
      w.KV("count", s.wait_count());
      w.KV("total_ns", s.wait_total_ns);
      w.Key("buckets");
      w.BeginObject();
      for (std::size_t b = 0; b < s.wait_buckets.size(); ++b) {
        if (s.wait_buckets[b] != 0) {
          // Key is the log2(ns) bucket index (see WaitHistogram).
          w.KV(std::to_string(b), s.wait_buckets[b]);
        }
      }
      w.EndObject();
      w.EndObject();
    }
    if (!s.stripes.empty()) {
      w.Key("stripes");
      w.BeginArray();
      for (std::size_t i = 0; i < s.stripes.size(); ++i) {
        w.BeginObject();
        w.KV("index", static_cast<std::uint64_t>(i));
        w.KV("acquisitions", s.stripes[i].acquisitions);
        w.KV("contended", s.stripes[i].contended);
        w.EndObject();
      }
      w.EndArray();
    }
    w.EndObject();
  }
  w.EndArray();
  w.Key("totals");
  w.BeginObject();
  w.KV("acquisitions", total_acq);
  w.KV("contended", total_cont);
  w.KV("contended_fraction",
       total_acq == 0 ? 0.0 : static_cast<double>(total_cont) / static_cast<double>(total_acq));
  w.EndObject();
  w.EndObject();
}

void ContentionRegistry::ResetForTest() {
  MutexLock lock(mu_);
  live_.clear();
  retired_.clear();
}

}  // namespace cpt::obs
