// Walk-event tracing: the structured-event channel of the telemetry layer.
//
// The simulator's interesting activity all happens inside the TLB miss
// handler, which is exactly what the paper measures (Section 6.1): chain
// nodes visited, cache lines touched, faults taken, PTEs promoted, frames
// reserved.  Components publish those moments as WalkEvents through a
// WalkTracer hook:
//
//   Machine            — TLB probe hit/miss (with block/subblock kind),
//                        page faults, block-prefetch fills
//   page tables        — one kWalkStep per chain node / tree level visited,
//                        carrying the chain position and lines-so-far
//   CacheTouchModel    — kWalkEnd (counted walk finished, total lines) and
//                        kWalkAbort (walk discarded, e.g. it page-faulted)
//   SoftwareTlb        — TSB probe hit/miss
//   ReservationAllocator — frame grants (with placement outcome)
//   AddressSpace       — superpage promotions
//
// The hook is a nullable pointer checked before every emit: with no tracer
// attached the cost is one predictable branch, and the simulated *counts*
// are never affected either way, so the paper-figure numbers are identical
// with and without tracing (the bit-identical-output guarantee the benches
// rely on).
#ifndef CPT_OBS_TRACE_H_
#define CPT_OBS_TRACE_H_

#include <array>
#include <cstdint>
#include <initializer_list>
#include <ostream>
#include <vector>

#include "common/stats.h"
#include "common/types.h"

namespace cpt::obs {

enum class EventKind : std::uint8_t {
  kTlbHit = 0,
  kTlbMiss,          // Conventional miss.
  kTlbBlockMiss,     // Complete-subblock TLB: tag absent.
  kTlbSubblockMiss,  // Complete-subblock TLB: tag present, subblock invalid.
  kWalkStep,         // One chain node / tree level visited during a walk.
  kWalkHit,          // Structure found the PTE: `step` = chain position of the
                     // match, `value` = EncodeWalkHitClass(...) of the fill.
  kWalkEnd,          // Counted walk finished; `lines` = distinct lines touched.
  kWalkAbort,        // Walk discarded (page fault or uncounted reference walk).
  kPageFault,        // OS fault handler ran for `vpn`.
  kPtePromotion,     // A block's base PTEs were replaced by a superpage PTE.
  kBlockPrefetch,    // Complete-subblock block fill; `value` = fills installed.
  kReservationGrant, // Frame granted; `value` = 1 if properly placed.
  kSwTlbHit,         // Software-TLB (TSB) probe hit.
  kSwTlbMiss,        // Software-TLB probe missed to the backing table.
};
inline constexpr std::size_t kEventKindCount = 14;

static_assert(static_cast<std::size_t>(EventKind::kSwTlbMiss) + 1 == kEventKindCount,
              "kEventKindCount must track the last EventKind enumerator");

// JSON names of the event kinds, indexable by EventKind.  This array is the
// single source of truth for the wire format: ToString() indexes it, and
// tools/cpt_lint.py --export-enums parses this initializer so Python-side
// validators (tools/check_bench_json.py) cannot drift from the enum.  Keep
// one quoted name per kind, in enum order; the static_asserts pin both ends.
inline constexpr const char* kEventKindNames[] = {
    "tlb_hit",           // kTlbHit
    "tlb_miss",          // kTlbMiss
    "tlb_block_miss",    // kTlbBlockMiss
    "tlb_subblock_miss", // kTlbSubblockMiss
    "walk_step",         // kWalkStep
    "walk_hit",          // kWalkHit
    "walk_end",          // kWalkEnd
    "walk_abort",        // kWalkAbort
    "page_fault",        // kPageFault
    "pte_promotion",     // kPtePromotion
    "block_prefetch",    // kBlockPrefetch
    "reservation_grant", // kReservationGrant
    "swtlb_hit",         // kSwTlbHit
    "swtlb_miss",        // kSwTlbMiss
};
static_assert(std::size(kEventKindNames) == kEventKindCount,
              "every EventKind needs a JSON wire name, in enum order");

const char* ToString(EventKind kind);

// What kind of mapping a kWalkHit delivered, mirroring MappingKind without
// depending on common/pte.h (obs sits below the PTE layer).
enum class WalkHitClass : std::uint8_t {
  kBase = 0,           // 4KB base-page PTE.
  kSuperpage,          // Superpage PTE.
  kPartialSubblock,    // Partial-subblock PTE.
  kSwTlb,              // Served from the software TLB (TSB), any format.
};
inline constexpr std::size_t kWalkHitClassCount = 4;
static_assert(static_cast<std::size_t>(WalkHitClass::kSwTlb) + 1 == kWalkHitClassCount,
              "kWalkHitClassCount must track the last WalkHitClass enumerator");
const char* ToString(WalkHitClass cls);

// kWalkHit `value` payload: the mapping class plus log2(base pages covered),
// so attribution can split superpage hits by page size if it wants to.
constexpr std::uint64_t EncodeWalkHitClass(WalkHitClass cls, unsigned pages_log2) {
  return (std::uint64_t{pages_log2} << 8) | static_cast<std::uint64_t>(cls);
}
constexpr WalkHitClass WalkHitClassOf(std::uint64_t value) {
  return static_cast<WalkHitClass>(value & 0xff);
}
constexpr unsigned WalkHitPagesLog2Of(std::uint64_t value) {
  return static_cast<unsigned>((value >> 8) & 0xff);
}

struct WalkEvent {
  EventKind kind = EventKind::kTlbHit;
  std::uint16_t shard = 0;  // Replay shard that emitted the event (0 in
                            // single-threaded runs; stamped by
                            // ShardedTraceBuffer).  Omitted from the wire
                            // format when 0, so single-threaded traces are
                            // byte-identical to the pre-shard format.
  std::uint16_t asid = 0;   // Process id where the publisher knows it.
  Vpn vpn{};                // Faulting/affected virtual page number.
                            // (kReservationGrant reuses the slot for the
                            // caller's block key; same wire field.)
  std::uint32_t step = 0;   // Chain position or tree level (kWalkStep).
  std::uint32_t lines = 0;  // Distinct cache lines touched so far / in total.
  std::uint64_t value = 0;  // Kind-specific payload (see EventKind).
};

// Per-kind event totals; indexable by EventKind.
class EventCounts {
 public:
  std::uint64_t& operator[](EventKind k) { return counts_[static_cast<std::size_t>(k)]; }
  std::uint64_t operator[](EventKind k) const { return counts_[static_cast<std::size_t>(k)]; }
  std::uint64_t total() const;
  // All TLB misses of any kind (the traced side of TlbStats::misses).
  std::uint64_t TlbMisses() const;

 private:
  std::array<std::uint64_t, kEventKindCount> counts_{};
};

class WalkTracer {
 public:
  virtual ~WalkTracer() = default;
  virtual void Record(const WalkEvent& event) = 0;
};

// Bounded ring-buffer recorder: keeps the most recent `capacity` events,
// counting (rather than keeping) everything older.  Dump order is oldest
// surviving event first.
class RingBufferTracer final : public WalkTracer {
 public:
  explicit RingBufferTracer(std::size_t capacity = 1 << 16);

  void Record(const WalkEvent& event) override;

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return buffer_.size(); }
  // Events pushed out of the ring since construction (or the last Clear()).
  std::uint64_t dropped() const { return dropped_; }
  std::uint64_t total_recorded() const { return total_; }
  const EventCounts& counts() const { return counts_; }

  // Buffered events, oldest first.
  std::vector<WalkEvent> Events() const;

  // One compact JSON object per line per buffered event.
  void WriteJsonl(std::ostream& os) const;

  void Clear();

 private:
  std::size_t capacity_;
  std::vector<WalkEvent> buffer_;  // Ring storage.
  std::size_t next_ = 0;           // Insertion cursor once full.
  std::uint64_t dropped_ = 0;
  std::uint64_t total_ = 0;
  EventCounts counts_;
};

// Aggregating tracer: histograms the walk-shape quantities the paper's
// evaluation is built from — chain length (kWalkStep count per counted
// walk) and lines per walk — plus per-kind event totals.  Optionally
// forwards every event to a downstream tracer (e.g. a RingBufferTracer
// backing a --trace file).
class StatsTracer final : public WalkTracer {
 public:
  explicit StatsTracer(WalkTracer* forward = nullptr) : forward_(forward) {}

  void Record(const WalkEvent& event) override;

  const EventCounts& counts() const { return counts_; }
  // Chain nodes / tree levels visited per *counted* walk.
  const Histogram& chain_length() const { return chain_length_; }
  // Distinct cache lines touched per counted walk.
  const Histogram& lines_per_walk() const { return lines_per_walk_; }

 private:
  WalkTracer* forward_;
  EventCounts counts_;
  Histogram chain_length_;
  Histogram lines_per_walk_;
  std::uint32_t pending_steps_ = 0;  // kWalkStep events since the last walk boundary.
};

// Fan-out tracer: forwards every event to each attached downstream tracer,
// in attachment order.  Null sinks are ignored, so callers can compose
// optional consumers (ring buffer, Perfetto exporter) without branching.
class TeeTracer final : public WalkTracer {
 public:
  TeeTracer() = default;
  TeeTracer(std::initializer_list<WalkTracer*> sinks) {
    for (WalkTracer* s : sinks) {
      Add(s);
    }
  }

  void Add(WalkTracer* sink) {
    if (sink != nullptr) {
      sinks_.push_back(sink);
    }
  }
  std::size_t size() const { return sinks_.size(); }

  void Record(const WalkEvent& event) override {
    for (WalkTracer* s : sinks_) {
      s->Record(event);
    }
  }

 private:
  std::vector<WalkTracer*> sinks_;
};

// Serializes one event as a compact JSON object (no trailing newline).
void EventToJson(std::ostream& os, const WalkEvent& event);

}  // namespace cpt::obs

#endif  // CPT_OBS_TRACE_H_
