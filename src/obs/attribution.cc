#include "obs/attribution.h"

#include <algorithm>

#include "common/check.h"
#include "obs/json_writer.h"

namespace cpt::obs {

namespace {

// Report labels of the segment classes, indexable by SegmentClass.
constexpr const char* kSegmentClassNames[] = {
    "text",     // kText
    "heap",     // kHeap
    "data",     // kData
    "mmap",     // kMmap
    "stack",    // kStack
    "unknown",  // kUnknown
};
static_assert(std::size(kSegmentClassNames) == kSegmentClassCount,
              "every SegmentClass needs a report label, in enum order");

}  // namespace

const char* ToString(SegmentClass cls) {
  const auto idx = static_cast<std::size_t>(cls);
  return idx < kSegmentClassCount ? kSegmentClassNames[idx] : "?";
}

void SegmentMap::Add(std::uint16_t asid, Vpn begin_vpn, Vpn end_vpn, SegmentClass cls) {
  CPT_CHECK(begin_vpn <= end_vpn);
  if (begin_vpn == end_vpn) {
    return;
  }
  ranges_.push_back({asid, begin_vpn, end_vpn, cls});
  sorted_ = false;
}

void SegmentMap::SortIfNeeded() const {
  if (sorted_) {
    return;
  }
  std::sort(ranges_.begin(), ranges_.end(), [](const Range& a, const Range& b) {
    return a.asid != b.asid ? a.asid < b.asid : a.begin < b.begin;
  });
  sorted_ = true;
}

SegmentClass SegmentMap::Classify(std::uint16_t asid, Vpn vpn) const {
  SortIfNeeded();
  // First range with (asid, begin) > (asid, vpn); the candidate is its
  // predecessor.  Ranges are disjoint in practice (segments do not overlap),
  // so one predecessor check suffices.
  auto it = std::upper_bound(
      ranges_.begin(), ranges_.end(), std::make_pair(asid, vpn),
      [](const std::pair<std::uint16_t, Vpn>& key, const Range& r) {
        return key.first != r.asid ? key.first < r.asid : key.second < r.begin;
      });
  if (it == ranges_.begin()) {
    return SegmentClass::kUnknown;
  }
  const Range& r = *std::prev(it);
  if (r.asid == asid && vpn >= r.begin && vpn < r.end) {
    return r.cls;
  }
  return SegmentClass::kUnknown;
}

namespace {

// Report labels of the outcome axis: fault, prefetch, swtlb, hit@1..hit@8,
// overflow — the index layout CommitWalk() computes.
constexpr const char* kOutcomeNames[] = {
    "fault",  "prefetch", "swtlb", "hit@1", "hit@2", "hit@3",
    "hit@4",  "hit@5",    "hit@6", "hit@7", "hit@8", "overflow",
};
static_assert(std::size(kOutcomeNames) == AttributionTracer::kOutcomeCount,
              "every outcome index needs a report label, in axis order");

const char* OutcomeName(std::size_t index) { return kOutcomeNames[index]; }

}  // namespace

void AttributionTracer::BeginWalk(const WalkEvent& event) {
  armed_ = true;
  faulted_ = false;
  block_ = false;
  have_hit_ = false;
  asid_ = event.asid;
  vpn_ = event.vpn;
  steps_ = 0;
  hit_value_ = 0;
  end_lines_ = 0;
}

void AttributionTracer::ResetWalk() {
  armed_ = false;
  pending_commit_ = false;
}

void AttributionTracer::CommitWalk() {
  // Segment dimension: the faulting VPN of the miss that opened the service.
  const SegmentClass seg =
      segments_ != nullptr ? segments_->Classify(asid_, vpn_) : SegmentClass::kUnknown;

  // Page-class dimension: the last structure hit of the service; a block
  // prefetch (one walk filling a whole TLB block) is its own class, and a
  // counted walk with no hit marker (possible only for prefetches through
  // organizations with adjacent-PTE block reads) falls back to `block` /
  // `unknown`.
  std::size_t cls;
  if (block_) {
    cls = kBlockClassIndex;
  } else if (have_hit_) {
    cls = static_cast<std::size_t>(WalkHitClassOf(hit_value_));
    CPT_DCHECK(cls < kWalkHitClassCount);
  } else {
    cls = kUnknownClassIndex;
  }

  // Outcome dimension.  Chain position uses the number of structure nodes
  // visited over the whole service (for multi-table organizations this spans
  // both tables — it is the true search depth of the miss handler).
  std::size_t out;
  if (faulted_) {
    out = 0;  // fault
  } else if (block_) {
    out = 1;  // prefetch
  } else if (steps_ == 0) {
    out = 2;  // swtlb (served without visiting a chain node)
  } else if (steps_ <= kMaxHitNode) {
    out = 2 + steps_;  // hit@k
  } else {
    out = kOutcomeCount - 1;  // overflow
  }

  for (Cell* cell : {&seg_[static_cast<std::size_t>(seg)], &cls_[cls], &out_[out]}) {
    ++cell->walks;
    cell->lines += end_lines_;
    cell->steps += steps_;
  }
  ++walks_;
  lines_total_ += end_lines_;
  steps_total_ += steps_;
  ResetWalk();
}

void AttributionTracer::Record(const WalkEvent& event) {
  // A kWalkEnd is committed one event late: the complete-subblock path
  // publishes its kBlockPrefetch marker after the walk ends, and that marker
  // decides the page-class/outcome of the walk it follows.
  if (pending_commit_) {
    if (event.kind == EventKind::kBlockPrefetch) {
      block_ = true;
      CommitWalk();
      if (forward_ != nullptr) {
        forward_->Record(event);
      }
      return;
    }
    CommitWalk();
  }

  // Only the walk-service protocol events drive the state machine; the
  // remaining kinds (promotions, grants, ...) are passed through untouched.
  switch (event.kind) {  // cpt-lint: allow(exhaustive-enum-switch)
    case EventKind::kTlbMiss:
    case EventKind::kTlbBlockMiss:
    case EventKind::kTlbSubblockMiss:
      BeginWalk(event);
      break;
    case EventKind::kWalkStep:
      if (armed_) {
        ++steps_;
      }
      break;
    case EventKind::kWalkHit:
      if (armed_) {
        have_hit_ = true;
        hit_value_ = event.value;
      }
      break;
    case EventKind::kWalkAbort:
      // Abort while a service is open is a page fault in that service;
      // aborts outside one are uncounted reference-TLB refills.
      if (armed_) {
        faulted_ = true;
      }
      break;
    case EventKind::kWalkEnd:
      if (armed_) {
        end_lines_ = event.lines;
        pending_commit_ = true;
      }
      break;
    default:
      break;
  }
  if (forward_ != nullptr) {
    forward_->Record(event);
  }
}

AttributionResult AttributionTracer::Result() {
  if (pending_commit_) {
    CommitWalk();
  }
  AttributionResult r;
  r.walks = walks_;
  r.lines = lines_total_;
  r.steps = steps_total_;
  auto fill = [](std::vector<AttributionCell>& out, const Cell* cells, std::size_t n,
                 auto name_of) {
    for (std::size_t i = 0; i < n; ++i) {
      const Cell& c = cells[i];
      if (c.walks == 0 && c.lines == 0) {
        continue;
      }
      out.push_back({name_of(i), c.walks, c.lines, c.steps});
    }
  };
  fill(r.by_segment, seg_.data(), seg_.size(),
       [](std::size_t i) { return std::string(ToString(static_cast<SegmentClass>(i))); });
  fill(r.by_page_class, cls_.data(), cls_.size(), [](std::size_t i) {
    if (i == kBlockClassIndex) {
      return std::string("block");
    }
    if (i == kUnknownClassIndex) {
      return std::string("unknown");
    }
    return std::string(ToString(static_cast<WalkHitClass>(i)));
  });
  fill(r.by_outcome, out_.data(), out_.size(),
       [](std::size_t i) { return std::string(OutcomeName(i)); });
  return r;
}

namespace {

void CellsToJson(JsonWriter& w, const std::vector<AttributionCell>& cells) {
  w.BeginArray();
  for (const AttributionCell& c : cells) {
    w.BeginObject();
    w.KV("label", c.label);
    w.KV("walks", c.walks);
    w.KV("lines", c.lines);
    w.KV("steps", c.steps);
    w.KV("lines_per_walk",
         c.walks == 0 ? 0.0 : static_cast<double>(c.lines) / static_cast<double>(c.walks));
    w.EndObject();
  }
  w.EndArray();
}

}  // namespace

void ToJson(JsonWriter& w, const AttributionResult& r) {
  w.BeginObject();
  w.KV("walks", r.walks);
  w.KV("lines", r.lines);
  w.KV("steps", r.steps);
  w.Key("by_segment");
  CellsToJson(w, r.by_segment);
  w.Key("by_page_class");
  CellsToJson(w, r.by_page_class);
  w.Key("by_outcome");
  CellsToJson(w, r.by_outcome);
  w.EndObject();
}

void ExportTo(MetricRegistry& registry, const AttributionResult& r,
              const MetricRegistry::Labels& base_labels) {
  auto emit = [&](const char* dim, const std::vector<AttributionCell>& cells) {
    for (const AttributionCell& c : cells) {
      MetricRegistry::Labels labels = base_labels;
      labels.emplace_back("dim", dim);
      labels.emplace_back("value", c.label);
      registry.Counter("attribution_walks", labels) += c.walks;
      registry.Counter("attribution_lines", labels) += c.lines;
    }
  };
  emit("segment", r.by_segment);
  emit("page_class", r.by_page_class);
  emit("outcome", r.by_outcome);
}

}  // namespace cpt::obs
