// Lock-contention observability: a process-wide registry of named lock
// sites.
//
// The counters themselves live inside cpt::Mutex / cpt::SharedMutex /
// cpt::StripeSet (common/sync.h) so common/ stays dependency-free; this
// layer adds the *names*.  A lock owner registers each interesting lock (or
// stripe set) under a dotted site name ("pt.hashed.alloc",
// "pt.hashed.stripes") via an RAII ContentionSite handle, and the registry
// can snapshot every live site's counters at any time — per-site totals,
// contended fractions, per-stripe heat maps, and (when CPT_CONTENTION_TIMING
// is set) log2-bucketed wait-time histograms.
//
// Lifetime: sites usually die before the report is written (a bench
// destroys its Machines, then BenchIo's destructor emits the JSON), so
// unregistration folds the lock's final counters into a retained per-name
// aggregate.  A snapshot therefore sees every acquisition ever made under a
// name, whether the lock is still alive or not.  Multiple concurrent
// registrations of one name (e.g. four machines each owning a
// "pt.hashed.stripes" set) aggregate into one site, summed index-wise for
// stripes.
//
// Thread safety: Register/Unregister/Snapshot serialize on an internal
// mutex; the counter reads themselves are relaxed atomic loads, so
// snapshotting while workers run is safe and sees a momentary (not
// necessarily mutually consistent) view.  Exact reconciliation claims hold
// once the workers have quiesced.
#ifndef CPT_OBS_CONTENTION_H_
#define CPT_OBS_CONTENTION_H_

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/sync.h"

namespace cpt::obs {

class JsonWriter;

// Point-in-time counters for one named site, live + retired combined.
struct ContentionSiteSnapshot {
  std::string name;
  std::uint64_t acquisitions = 0;         // Exclusive (lock / try_lock success).
  std::uint64_t contended = 0;            // Exclusive acquisitions that blocked.
  std::uint64_t shared_acquisitions = 0;  // SharedMutex readers.
  std::uint64_t shared_contended = 0;

  // Wait-time histogram, summed over the site's locks; all-zero unless the
  // locks were built with contention timing enabled (`has_wait` says which).
  bool has_wait = false;
  std::uint64_t wait_total_ns = 0;
  std::array<std::uint64_t, WaitHistogram::kBuckets> wait_buckets{};

  // Per-stripe (acquisitions, contended) pairs, index-wise across the
  // site's stripe sets; empty for plain Mutex/SharedMutex sites.
  struct Stripe {
    std::uint64_t acquisitions = 0;
    std::uint64_t contended = 0;
  };
  // Cold single-threaded snapshot data, not live per-stripe state.
  std::vector<Stripe> stripes;  // cpt-lint: allow(false-sharing)

  std::uint64_t total_acquisitions() const { return acquisitions + shared_acquisitions; }
  std::uint64_t total_contended() const { return contended + shared_contended; }
  double contended_fraction() const {
    const std::uint64_t n = total_acquisitions();
    return n == 0 ? 0.0 : static_cast<double>(total_contended()) / static_cast<double>(n);
  }
  std::uint64_t wait_count() const {
    std::uint64_t n = 0;
    for (std::uint64_t c : wait_buckets) {
      n += c;
    }
    return n;
  }
};

class CPT_SHARED ContentionRegistry {
 public:
  // The process-wide instance every ContentionSite registers with and every
  // bench report snapshots.
  static ContentionRegistry& Global();

  ContentionRegistry() = default;
  ContentionRegistry(const ContentionRegistry&) = delete;
  ContentionRegistry& operator=(const ContentionRegistry&) = delete;

  // Registration (normally via the ContentionSite RAII handle below).  The
  // referenced lock must outlive the registration.  Returns an id for
  // Unregister; id 0 is never issued.
  std::uint64_t Register(std::string_view name, const Mutex* mu);
  std::uint64_t Register(std::string_view name, const SharedMutex* mu);
  std::uint64_t Register(std::string_view name, const StripeSet* stripes);
  // Folds the site's final counters into the retained per-name aggregate
  // and drops the lock reference.  Ignores id 0 / unknown ids.
  void Unregister(std::uint64_t id);

  // All sites (live + retired), aggregated by name, sorted by name.
  std::vector<ContentionSiteSnapshot> Snapshot() const;

  // The bench report's `concurrency` section: {contention_timing, sites:[…],
  // totals:{…}}.  Deterministically ordered.
  void ToJson(JsonWriter& w) const;

  // Drops every live registration and retired aggregate.  Test isolation
  // only — never call while sites are registered by live objects.
  void ResetForTest();

 private:
  struct Entry {
    std::string name;
    const Mutex* mu = nullptr;
    const SharedMutex* smu = nullptr;
    const StripeSet* stripes = nullptr;
  };

  // Retained counters of unregistered sites, keyed by name.
  struct Retired {
    std::uint64_t acquisitions = 0;
    std::uint64_t contended = 0;
    std::uint64_t shared_acquisitions = 0;
    std::uint64_t shared_contended = 0;
    bool has_wait = false;
    std::uint64_t wait_total_ns = 0;
    std::array<std::uint64_t, WaitHistogram::kBuckets> wait_buckets{};
    // Cold fold of a dead site's counters, only touched under mu_.
    std::vector<ContentionSiteSnapshot::Stripe> stripes;  // cpt-lint: allow(false-sharing)
  };

  static void FoldEntry(const Entry& e, Retired& into);

  std::uint64_t RegisterEntry(Entry e);

  mutable Mutex mu_;
  std::uint64_t next_id_ CPT_GUARDED_BY(mu_) = 1;
  std::map<std::uint64_t, Entry> live_ CPT_GUARDED_BY(mu_);
  std::map<std::string, Retired> retired_ CPT_GUARDED_BY(mu_);
};

// RAII site registration against ContentionRegistry::Global().  Declare it
// AFTER the lock members it names, so it unregisters (and folds the final
// counters) before the locks are destroyed.
class ContentionSite {
 public:
  ContentionSite() = default;  // Empty handle; registers nothing.
  ContentionSite(std::string_view name, const Mutex* mu)
      : id_(ContentionRegistry::Global().Register(name, mu)) {}
  ContentionSite(std::string_view name, const SharedMutex* mu)
      : id_(ContentionRegistry::Global().Register(name, mu)) {}
  // An empty StripeSet (striping disabled) registers nothing, so owners can
  // declare the handle unconditionally.
  ContentionSite(std::string_view name, const StripeSet* stripes)
      : id_(stripes == nullptr || stripes->empty()
                ? 0
                : ContentionRegistry::Global().Register(name, stripes)) {}
  ~ContentionSite() { ContentionRegistry::Global().Unregister(id_); }

  ContentionSite(const ContentionSite&) = delete;
  ContentionSite& operator=(const ContentionSite&) = delete;

 private:
  std::uint64_t id_ = 0;
};

}  // namespace cpt::obs

#endif  // CPT_OBS_CONTENTION_H_
