// Wall-clock timing for simulator-throughput telemetry.
//
// The paper's metrics are counted cache lines, but the ROADMAP's
// "measurably faster" mandate needs host-side throughput too: how many
// trace references and TLB misses the *simulator* retires per second.
// ScopedTimer measures one bracketed region; PhaseProfiler accumulates
// named phases (snapshot build, preload, trace run) across a bench run.
#ifndef CPT_OBS_TIMER_H_
#define CPT_OBS_TIMER_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/stats.h"

namespace cpt::obs {

class JsonWriter;

// Adds the region's elapsed seconds to a double and/or a RunningStats
// sample stream on destruction.
class ScopedTimer {
 public:
  explicit ScopedTimer(double* out_seconds, RunningStats* out_stats = nullptr)
      : out_(out_seconds), stats_(out_stats), start_(Clock::now()) {}
  ~ScopedTimer() {
    const double s = Elapsed();
    if (out_ != nullptr) {
      *out_ += s;
    }
    if (stats_ != nullptr) {
      stats_->Add(s);
    }
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  double Elapsed() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  double* out_;
  RunningStats* stats_;
  Clock::time_point start_;
};

// Accumulates wall-clock seconds per named phase.  Phases may repeat
// (seconds and counts accumulate) but not nest.
class PhaseProfiler {
 public:
  struct Phase {
    std::string name;
    double seconds = 0.0;
    std::uint64_t count = 0;
  };

  void Begin(std::string_view name);
  void End();

  // RAII phase bracket.
  class Scope {
   public:
    Scope(PhaseProfiler& p, std::string_view name) : profiler_(p) { profiler_.Begin(name); }
    ~Scope() { profiler_.End(); }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    PhaseProfiler& profiler_;
  };

  const std::vector<Phase>& phases() const { return phases_; }
  double TotalSeconds() const;

  // JSON array of {name, seconds, count} in first-Begin order.
  void ToJson(JsonWriter& w) const;

 private:
  std::vector<Phase> phases_;
  std::int64_t active_ = -1;  // Index into phases_, -1 when idle.
  std::chrono::steady_clock::time_point started_{};
};

}  // namespace cpt::obs

#endif  // CPT_OBS_TIMER_H_
