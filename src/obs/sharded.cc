#include "obs/sharded.h"

#include <algorithm>

#include "common/check.h"

namespace cpt::obs {

ShardedMetricRegistry::ShardedMetricRegistry(std::size_t shard_count) {
  CPT_CHECK(shard_count > 0, "ShardedMetricRegistry needs at least one shard");
  shards_.reserve(shard_count);
  for (std::size_t i = 0; i < shard_count; ++i) {
    shards_.push_back(std::make_unique<MetricRegistry>());
  }
}

MetricRegistry& ShardedMetricRegistry::shard(std::size_t i) {
  CPT_CHECK(i < shards_.size(), "shard index out of range");
  return *shards_[i];
}

MetricRegistry ShardedMetricRegistry::Merged() const {
  MetricRegistry merged;
  for (const auto& s : shards_) {
    merged.MergeFrom(*s);
  }
  return merged;
}

ShardTracer::ShardTracer(std::uint16_t shard_index, std::size_t capacity)
    : shard_(shard_index), capacity_(std::max<std::size_t>(capacity, 1)) {
  buffer_.reserve(std::min<std::size_t>(capacity_, 1024));
}

void ShardTracer::Record(const WalkEvent& event) {
  ++total_;
  ++counts_[event.kind];
  Entry e;
  e.ref = current_ref_;
  e.seq = seq_++;
  e.event = event;
  e.event.shard = shard_;
  if (buffer_.size() < capacity_) {
    buffer_.push_back(e);
    return;
  }
  buffer_[next_] = e;
  next_ = (next_ + 1) % capacity_;
  ++dropped_;
}

std::vector<ShardTracer::Entry> ShardTracer::Entries() const {
  std::vector<Entry> out;
  out.reserve(buffer_.size());
  // Oldest first: the ring's insertion cursor points at the oldest entry
  // once the buffer has wrapped.
  for (std::size_t i = 0; i < buffer_.size(); ++i) {
    out.push_back(buffer_[(next_ + i) % buffer_.size()]);
  }
  return out;
}

ShardedTraceBuffer::ShardedTraceBuffer(std::size_t shard_count, std::size_t capacity_per_shard) {
  CPT_CHECK(shard_count > 0, "ShardedTraceBuffer needs at least one shard");
  CPT_CHECK(shard_count <= UINT16_MAX, "shard count exceeds WalkEvent::shard range");
  shards_.reserve(shard_count);
  for (std::size_t i = 0; i < shard_count; ++i) {
    shards_.push_back(
        std::make_unique<ShardTracer>(static_cast<std::uint16_t>(i), capacity_per_shard));
  }
}

ShardTracer& ShardedTraceBuffer::shard(std::size_t i) {
  CPT_CHECK(i < shards_.size(), "shard index out of range");
  return *shards_[i];
}

std::vector<WalkEvent> ShardedTraceBuffer::MergedEvents() const {
  std::vector<ShardTracer::Entry> all;
  all.reserve(TotalRecorded() - TotalDropped());
  for (const auto& s : shards_) {
    const std::vector<ShardTracer::Entry> entries = s->Entries();
    all.insert(all.end(), entries.begin(), entries.end());
  }
  // (ref, shard, seq): global replay order, then shard index for
  // deterministic cross-shard ties, then per-shard emission order.  A
  // stable_sort would also work, but the key is already a total order.
  std::sort(all.begin(), all.end(), [](const ShardTracer::Entry& a, const ShardTracer::Entry& b) {
    if (a.ref != b.ref) {
      return a.ref < b.ref;
    }
    if (a.event.shard != b.event.shard) {
      return a.event.shard < b.event.shard;
    }
    return a.seq < b.seq;
  });
  std::vector<WalkEvent> out;
  out.reserve(all.size());
  for (const ShardTracer::Entry& e : all) {
    out.push_back(e.event);
  }
  return out;
}

void ShardedTraceBuffer::WriteMergedJsonl(std::ostream& os) const {
  for (const WalkEvent& e : MergedEvents()) {
    EventToJson(os, e);
    os << '\n';
  }
}

EventCounts ShardedTraceBuffer::MergedCounts() const {
  EventCounts merged;
  for (const auto& s : shards_) {
    for (std::size_t k = 0; k < kEventKindCount; ++k) {
      const auto kind = static_cast<EventKind>(k);
      merged[kind] += s->counts()[kind];
    }
  }
  return merged;
}

std::uint64_t ShardedTraceBuffer::TotalRecorded() const {
  std::uint64_t n = 0;
  for (const auto& s : shards_) {
    n += s->total_recorded();
  }
  return n;
}

std::uint64_t ShardedTraceBuffer::TotalDropped() const {
  std::uint64_t n = 0;
  for (const auto& s : shards_) {
    n += s->dropped();
  }
  return n;
}

}  // namespace cpt::obs
