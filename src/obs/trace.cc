#include "obs/trace.h"

#include "common/check.h"
#include "obs/json_writer.h"

namespace cpt::obs {

const char* ToString(EventKind kind) {
  const auto idx = static_cast<std::size_t>(kind);
  return idx < kEventKindCount ? kEventKindNames[idx] : "?";
}

namespace {

// Wire names of the walk-hit classes, indexable by WalkHitClass.
constexpr const char* kWalkHitClassNames[] = {
    "base",              // kBase
    "superpage",         // kSuperpage
    "partial-subblock",  // kPartialSubblock
    "swtlb",             // kSwTlb
};
static_assert(std::size(kWalkHitClassNames) == kWalkHitClassCount,
              "every WalkHitClass needs a wire name, in enum order");

}  // namespace

const char* ToString(WalkHitClass cls) {
  const auto idx = static_cast<std::size_t>(cls);
  return idx < kWalkHitClassCount ? kWalkHitClassNames[idx] : "?";
}

std::uint64_t EventCounts::total() const {
  std::uint64_t sum = 0;
  for (const std::uint64_t c : counts_) {
    sum += c;
  }
  return sum;
}

std::uint64_t EventCounts::TlbMisses() const {
  return (*this)[EventKind::kTlbMiss] + (*this)[EventKind::kTlbBlockMiss] +
         (*this)[EventKind::kTlbSubblockMiss];
}

RingBufferTracer::RingBufferTracer(std::size_t capacity) : capacity_(capacity) {
  CPT_CHECK(capacity_ > 0);
  buffer_.reserve(capacity_);
}

void RingBufferTracer::Record(const WalkEvent& event) {
  ++total_;
  ++counts_[event.kind];
  if (buffer_.size() < capacity_) {
    buffer_.push_back(event);
    return;
  }
  buffer_[next_] = event;
  next_ = (next_ + 1) % capacity_;
  ++dropped_;
}

std::vector<WalkEvent> RingBufferTracer::Events() const {
  std::vector<WalkEvent> out;
  out.reserve(buffer_.size());
  // Once the ring has wrapped, next_ points at the oldest surviving event.
  for (std::size_t i = 0; i < buffer_.size(); ++i) {
    out.push_back(buffer_[(next_ + i) % buffer_.size()]);
  }
  return out;
}

void RingBufferTracer::WriteJsonl(std::ostream& os) const {
  for (const WalkEvent& e : Events()) {
    EventToJson(os, e);
    os << '\n';
  }
}

void RingBufferTracer::Clear() {
  buffer_.clear();
  next_ = 0;
  dropped_ = 0;
  total_ = 0;
  counts_ = EventCounts{};
}

void StatsTracer::Record(const WalkEvent& event) {
  ++counts_[event.kind];
  // Only walk-boundary events shape the histograms; every other kind is
  // counted above and forwarded below.
  switch (event.kind) {  // cpt-lint: allow(exhaustive-enum-switch)
    case EventKind::kWalkStep:
      ++pending_steps_;
      break;
    case EventKind::kWalkEnd:
      chain_length_.Add(pending_steps_);
      lines_per_walk_.Add(event.lines);
      pending_steps_ = 0;
      break;
    case EventKind::kWalkAbort:
      // Faulting or uncounted walk: its steps do not belong to any counted
      // walk, so drop them rather than fold them into the next one.
      pending_steps_ = 0;
      break;
    default:
      break;
  }
  if (forward_ != nullptr) {
    forward_->Record(event);
  }
}

void EventToJson(std::ostream& os, const WalkEvent& event) {
  JsonWriter w(os, /*pretty=*/false);
  w.BeginObject();
  w.KV("kind", ToString(event.kind));
  if (event.shard != 0) {
    // Only multi-shard runs carry the field; see WalkEvent::shard.
    w.KV("shard", std::uint64_t{event.shard});
  }
  w.KV("asid", std::uint64_t{event.asid});
  w.KV("vpn", event.vpn);
  if (event.kind == EventKind::kWalkStep || event.kind == EventKind::kWalkHit) {
    w.KV("step", std::uint64_t{event.step});
  }
  if (event.kind == EventKind::kWalkStep || event.kind == EventKind::kWalkEnd) {
    w.KV("lines", std::uint64_t{event.lines});
  }
  // Kind-specific payload fields; kinds without one fall through to the
  // common envelope emitted above.
  switch (event.kind) {  // cpt-lint: allow(exhaustive-enum-switch)
    case EventKind::kWalkHit:
      w.KV("class", ToString(WalkHitClassOf(event.value)));
      w.KV("pages_log2", std::uint64_t{WalkHitPagesLog2Of(event.value)});
      break;
    case EventKind::kBlockPrefetch:
      w.KV("fills", event.value);
      break;
    case EventKind::kReservationGrant:
      w.KV("properly_placed", event.value != 0);
      break;
    default:
      break;
  }
  w.EndObject();
}

}  // namespace cpt::obs
