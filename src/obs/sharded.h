// Thread-sharded telemetry: per-shard metric registries and trace buffers
// with deterministic fan-in merges.
//
// ROADMAP item 1 splits a replay across worker shards.  The telemetry
// contract that must survive that split is determinism: a sharded run, with
// telemetry attached, must report bit-identical *simulated* metrics to the
// equivalent serial run.  The two classes here provide the sharded half:
//
//   ShardedMetricRegistry — one private MetricRegistry per shard (no
//     cross-thread sharing, no locks on the hot path); Merged() folds the
//     shards in index order, so counters sum and histograms/RunningStats
//     combine the same way every run.
//
//   ShardedTraceBuffer — one ring-buffered WalkTracer per shard.  Workers
//     stamp each reference with its *global* trace index (BeginRef) before
//     emitting events, and the fan-in merge orders events by
//     (ref, shard, seq): global replay order first, shard index to break
//     cross-shard ties deterministically, per-shard sequence to keep one
//     walk's events in emission order.  The merged stream of a 1-shard run
//     is byte-identical to a plain RingBufferTracer dump of the same
//     events.
//
// Neither class is itself thread-safe across one shard: exactly one worker
// may use shard(i) at a time, which is the whole point — synchronization
// happens once at merge time, not per event.
#ifndef CPT_OBS_SHARDED_H_
#define CPT_OBS_SHARDED_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <ostream>
#include <vector>

#include "common/hotpath.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace cpt::obs {

class ShardedMetricRegistry {
 public:
  explicit ShardedMetricRegistry(std::size_t shard_count);

  std::size_t shard_count() const { return shards_.size(); }
  // Shard `i`'s private registry; owned by exactly one worker at a time.
  MetricRegistry& shard(std::size_t i);

  // Deterministic fold: shard 0, then shard 1, … into a fresh registry.
  // Counters sum; histograms and stats Merge; gauges take the last shard's
  // value (shards writing the same gauge should agree or not share it).
  MetricRegistry Merged() const;

 private:
  // unique_ptr so references handed to workers stay stable.
  std::vector<std::unique_ptr<MetricRegistry>> shards_;
};

// One shard's tracer: a bounded ring of (ref, seq, event) records.  The
// worker calls BeginRef(global_ref_index) before replaying each reference;
// every event recorded until the next BeginRef is stamped with that ref and
// an incrementing per-shard sequence number, and with the shard id in
// WalkEvent::shard (shard 0 keeps shard == 0, preserving the single-thread
// wire format).
//
// Cache-aligned: each shard's ring cursor and counters are written once per
// recorded event by that shard's worker; adjacent shards must not share a
// destructive-interference line.
class CPT_CACHE_ALIGNED ShardTracer final : public WalkTracer {
 public:
  ShardTracer(std::uint16_t shard_index, std::size_t capacity);

  void BeginRef(std::uint64_t ref_index) { current_ref_ = ref_index; }
  void Record(const WalkEvent& event) override;

  std::uint16_t shard_index() const { return shard_; }
  std::size_t size() const { return buffer_.size(); }
  std::uint64_t dropped() const { return dropped_; }
  std::uint64_t total_recorded() const { return total_; }
  const EventCounts& counts() const { return counts_; }

 private:
  friend class ShardedTraceBuffer;

  struct Entry {
    std::uint64_t ref = 0;
    std::uint64_t seq = 0;
    WalkEvent event;
  };

  // Buffered entries, oldest first (same unwrap as RingBufferTracer).
  std::vector<Entry> Entries() const;

  std::uint16_t shard_;
  std::size_t capacity_;
  std::vector<Entry> buffer_;  // Ring storage.
  std::size_t next_ = 0;       // Insertion cursor once full.
  std::uint64_t current_ref_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t total_ = 0;
  EventCounts counts_;
};

class ShardedTraceBuffer {
 public:
  // `capacity_per_shard` bounds each shard's ring independently, so one
  // chatty shard cannot evict another shard's events.
  explicit ShardedTraceBuffer(std::size_t shard_count,
                              std::size_t capacity_per_shard = 1 << 16);

  std::size_t shard_count() const { return shards_.size(); }
  ShardTracer& shard(std::size_t i);

  // Surviving events across all shards, merged in (ref, shard, seq) order.
  std::vector<WalkEvent> MergedEvents() const;

  // One compact JSON object per line per merged event (the --trace format).
  void WriteMergedJsonl(std::ostream& os) const;

  // Per-kind totals summed over shards (order-independent, hence exact even
  // though rings may have dropped events).
  EventCounts MergedCounts() const;

  std::uint64_t TotalRecorded() const;
  std::uint64_t TotalDropped() const;

 private:
  std::vector<std::unique_ptr<ShardTracer>> shards_;
};

}  // namespace cpt::obs

#endif  // CPT_OBS_SHARDED_H_
