#include "obs/snapshot.h"

#include "common/check.h"
#include "obs/json_writer.h"
#include "obs/metrics.h"
#include "obs/perfetto.h"

namespace cpt::obs {

namespace {

bool IsReference(EventKind kind) {
  // Machine::Access publishes exactly one TLB probe event per reference.
  return kind == EventKind::kTlbHit || kind == EventKind::kTlbMiss ||
         kind == EventKind::kTlbBlockMiss || kind == EventKind::kTlbSubblockMiss;
}

std::string RenderedName(const std::string& name, const MetricRegistry::Labels& labels) {
  if (labels.empty()) {
    return name;
  }
  std::string out = name;
  out += '{';
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) {
      out += ',';
    }
    first = false;
    out += k;
    out += '=';
    out += v;
  }
  out += '}';
  return out;
}

}  // namespace

double IntervalSnapshotter::Window::MissRate() const {
  return refs == 0 ? 0.0 : static_cast<double>(Misses()) / static_cast<double>(refs);
}

double IntervalSnapshotter::Window::LinesPerMiss() const {
  const std::uint64_t misses = Misses();
  return misses == 0 ? 0.0 : static_cast<double>(lines) / static_cast<double>(misses);
}

IntervalSnapshotter::IntervalSnapshotter(std::uint64_t window_refs,
                                         const MetricRegistry* registry,
                                         PerfettoExporter* perfetto)
    : window_refs_(window_refs), registry_(registry), perfetto_(perfetto) {
  CPT_CHECK(window_refs_ > 0, "IntervalSnapshotter window must be at least one reference");
  if (registry_ != nullptr) {
    registry_->ForEachCounter(
        [this](const std::string& name, const MetricRegistry::Labels& labels,
               std::uint64_t value) { registry_base_[RenderedName(name, labels)] = value; });
  }
}

void IntervalSnapshotter::Record(const WalkEvent& event) {
  CPT_DCHECK(!finished_, "IntervalSnapshotter::Record() after Finish() (Reset() first)");
  if (IsReference(event.kind)) {
    // Close lazily at the *start* of the next reference, so every event of
    // reference i (probe, walk steps, faults, fills) stays in i's window.
    if (current_.refs == window_refs_) {
      CloseWindow();
    }
    if (current_.refs == 0) {
      current_.start_ref = total_refs_;
    }
    ++current_.refs;
    ++total_refs_;
  }
  current_.events[event.kind] += 1;
  if (event.kind == EventKind::kWalkEnd) {
    current_.lines += event.lines;
  }
}

void IntervalSnapshotter::Finish() {
  if (finished_) {
    return;
  }
  finished_ = true;
  if (current_.refs > 0) {
    CloseWindow();
  }
}

void IntervalSnapshotter::Reset() {
  windows_.clear();
  current_ = Window{};
  finished_ = false;
  if (registry_ != nullptr) {
    registry_base_.clear();
    registry_->ForEachCounter(
        [this](const std::string& name, const MetricRegistry::Labels& labels,
               std::uint64_t value) { registry_base_[RenderedName(name, labels)] = value; });
  }
}

void IntervalSnapshotter::CloseWindow() {
  current_.index = windows_.empty() ? 0 : windows_.back().index + 1;
  SampleRegistry(current_);
  if (perfetto_ != nullptr) {
    perfetto_->CounterTrack(
        "window", {{"miss_rate", current_.MissRate()},
                   {"lines_per_miss", current_.LinesPerMiss()},
                   {"page_faults",
                    static_cast<double>(current_.events[EventKind::kPageFault])},
                   {"promotions",
                    static_cast<double>(current_.events[EventKind::kPtePromotion])}});
  }
  windows_.push_back(current_);
  const std::uint64_t next_index = current_.index + 1;
  current_ = Window{};
  current_.index = next_index;
  current_.start_ref = total_refs_;
}

void IntervalSnapshotter::SampleRegistry(Window& w) {
  if (registry_ == nullptr) {
    return;
  }
  registry_->ForEachCounter([this, &w](const std::string& name,
                                       const MetricRegistry::Labels& labels,
                                       std::uint64_t value) {
    const std::string key = RenderedName(name, labels);
    auto [it, inserted] = registry_base_.try_emplace(key, 0);
    w.metric_deltas.emplace_back(key, value - it->second);
    it->second = value;
  });
}

void IntervalSnapshotter::WriteJsonl(std::ostream& os) const {
  for (const Window& win : windows_) {
    {
      JsonWriter w(os, /*pretty=*/false);
      w.BeginObject();
      w.KV("type", "window");
      w.KV("window", win.index);
      w.KV("start_ref", win.start_ref);
      w.KV("refs", win.refs);
      w.KV("lines", win.lines);
      w.KV("miss_rate", win.MissRate());
      w.KV("lines_per_miss", win.LinesPerMiss());
      w.Key("events");
      w.BeginObject();
      for (std::size_t k = 0; k < kEventKindCount; ++k) {
        const auto kind = static_cast<EventKind>(k);
        if (const std::uint64_t n = win.events[kind]; n != 0) {
          w.KV(ToString(kind), n);
        }
      }
      w.EndObject();
      if (!win.metric_deltas.empty()) {
        w.Key("metrics");
        w.BeginObject();
        for (const auto& [name, delta] : win.metric_deltas) {
          w.KV(name, delta);
        }
        w.EndObject();
      }
      w.EndObject();
    }
    os << '\n';
  }
}

}  // namespace cpt::obs
