// Host-performance counters: where the *simulator's own* cycles go.
//
// The paper's metrics are simulated cache lines; the ROADMAP's speed work
// (parallel replay shards, the 10x refs/sec hot-path overhaul) needs the
// other half — host cycles, instructions, LLC misses, dTLB misses — so a
// claimed win is measurable and a regression is gateable.  HostPerfCounters
// opens one perf_event counter group over the calling thread and brackets a
// region with Start()/Stop(); each Stop() returns a HostPerfSample holding
// the counter deltas plus getrusage/wall-clock deltas.
//
// Degradation contract: perf_event_open is a Linux syscall that containers
// and CI runners routinely forbid (EPERM under seccomp, EACCES under
// perf_event_paranoid, ENOSYS elsewhere).  Construction never fails — when
// the group cannot be opened, available() is false, unavailable_reason()
// says why, and samples still carry the getrusage + wall-clock fallback.
// The JSON shape is IDENTICAL in both modes (counters read as zero), so a
// report produced on a perf-less host stays schema-valid and byte-layout
// compatible with one from bare metal; only values differ.  Setting
// CPT_NO_HOST_PERF=1 forces the degraded path (how tests pin it).
//
// This header and perf.cc are (with obs/timer.h) the only files allowed to
// touch raw clocks — the cpt_lint `timing-discipline` rule keeps every
// other steady_clock/clock_gettime use out of the tree.
#ifndef CPT_OBS_PERF_H_
#define CPT_OBS_PERF_H_

#include <cstdint>
#include <string>

namespace cpt::obs {

class JsonWriter;

// One measured region: perf_event counter deltas (valid when `available`),
// getrusage + wall-clock deltas (always valid), and derived rates.
struct HostPerfSample {
  bool available = false;  // True iff the perf_event group was live.
  std::string source;      // "perf_event" or "rusage".
  std::string reason;      // Why perf_event is unavailable ("" when it is).

  double wall_seconds = 0.0;

  // perf_event group deltas; all zero when !available.  Counts are scaled
  // for multiplexing (enabled/running ratio) — the raw times are kept so a
  // consumer can judge how much scaling happened.
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t llc_misses = 0;
  std::uint64_t dtlb_load_misses = 0;
  std::uint64_t branch_misses = 0;
  std::uint64_t time_enabled_ns = 0;
  std::uint64_t time_running_ns = 0;

  // getrusage(RUSAGE_SELF) deltas; filled in both modes.
  double user_seconds = 0.0;
  double sys_seconds = 0.0;
  std::uint64_t max_rss_kb = 0;  // High-water mark, not a delta.
  std::uint64_t minor_faults = 0;
  std::uint64_t major_faults = 0;
  std::uint64_t voluntary_ctx_switches = 0;
  std::uint64_t involuntary_ctx_switches = 0;

  // Derived rates; 0.0 whenever the denominator is zero (e.g. degraded mode).
  double Ipc() const;         // instructions / cycles.
  double LlcMpki() const;     // LLC misses per kilo-instruction.
  double DtlbMpki() const;    // dTLB load misses per kilo-instruction.
  double BranchMpki() const;  // Branch misses per kilo-instruction.

  // Accumulates another sample into this one (counter/rusage deltas add,
  // max_rss takes the max, availability degrades to the weaker of the two).
  void Accumulate(const HostPerfSample& other);
};

// Emits the sample as one JSON object with a shape that does not depend on
// availability: {available, source, reason, wall/user/sys seconds, rusage
// counters, "counters": {...}, "derived": {ipc, *_mpki}}.
void ToJson(JsonWriter& w, const HostPerfSample& s);

// A perf_event counter group over the calling thread, reusable across many
// Start()/Stop() brackets (one pair per replay phase).  Not thread-safe;
// the counters follow the thread that constructed them.
class HostPerfCounters {
 public:
  HostPerfCounters();
  ~HostPerfCounters();
  HostPerfCounters(const HostPerfCounters&) = delete;
  HostPerfCounters& operator=(const HostPerfCounters&) = delete;

  // False when the syscall was unavailable/forbidden; samples then carry
  // only the rusage/wall-clock fallback.
  bool available() const { return group_fd_ >= 0; }
  const std::string& unavailable_reason() const { return reason_; }

  // Resets and enables the group and snapshots rusage + the wall clock.
  void Start();
  // Disables the group and returns the deltas since the matching Start().
  HostPerfSample Stop();

  // True when CPT_NO_HOST_PERF forces the degraded path (the test hook for
  // EPERM/ENOSYS environments).
  static bool ForcedOff();

 private:
  struct Baseline;  // Opaque start-of-region snapshot (perf.cc).

  int group_fd_ = -1;   // Leader (cycles); -1 in degraded mode.
  int fds_[5] = {-1, -1, -1, -1, -1};  // All group fds, leader first.
  std::uint64_t ids_[5] = {};          // perf read-format ids, same order.
  std::string reason_;                 // Why degraded ("" when available).
  Baseline* base_ = nullptr;           // Live between Start() and Stop().
};

}  // namespace cpt::obs

#endif  // CPT_OBS_PERF_H_
