// IntervalSnapshotter: windowed time-series over the walk-event stream.
//
// The aggregate report says *how much* — total misses, average lines per
// miss — but not *when*: a workload whose miss rate spikes during a phase
// change, whose promotions arrive in bursts, or whose hash chains drift
// longer as tables fill looks identical in the totals to a uniform one.
// The snapshotter closes a window every N simulated references (the TLB
// probe events kTlbHit/kTlbMiss/kTlbBlockMiss/kTlbSubblockMiss, exactly one
// per Machine::Access) and records the per-kind event deltas, cache lines
// touched, and derived rates of that window, making phase behavior visible
// over the trace for the first time.
//
// Window semantics:
//   - Every event of reference i lands in the window containing reference i
//     (windows close lazily, when the *next* reference begins).
//   - A trace shorter than one window yields exactly one partial window at
//     Finish(); the final partial window is always flushed.
//   - A window with activity but no misses still appears (zero deltas are
//     data: they are what "quiet phase" looks like on a time axis).
//
// Output: WriteJsonl() emits one compact JSON object per window; windows
// also stream to a PerfettoExporter counter track when one is attached, so
// miss-rate/lines-per-miss curves render in ui.perfetto.dev next to the
// event tracks.  Optionally, counter instruments of a MetricRegistry are
// sampled at each boundary and their per-window deltas recorded alongside
// the event deltas.
//
// Like every tracer, the snapshotter observes and never steers: simulated
// metrics are bit-identical with and without one attached (pinned by
// tests/timeseries_test.cc).
#ifndef CPT_OBS_SNAPSHOT_H_
#define CPT_OBS_SNAPSHOT_H_

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace cpt::obs {

class MetricRegistry;
class PerfettoExporter;

class IntervalSnapshotter final : public WalkTracer {
 public:
  struct Window {
    std::uint64_t index = 0;      // 0-based window number within a section.
    std::uint64_t start_ref = 0;  // Global index of the window's first reference.
    std::uint64_t refs = 0;       // References in the window (< window_refs only
                                  // for the final partial window).
    std::uint64_t lines = 0;      // Cache lines touched by counted walks.
    EventCounts events;           // Per-kind event deltas.
    // Per-window deltas of the polled registry's counter instruments, keyed
    // by rendered instrument name ("name{k=v,...}"); empty when no registry
    // is attached.  Every counter appears every window, including zeros.
    std::vector<std::pair<std::string, std::uint64_t>> metric_deltas;

    std::uint64_t Misses() const { return events.TlbMisses(); }
    double MissRate() const;      // Misses / refs (0 for an empty window).
    double LinesPerMiss() const;  // lines / misses (0 when no misses).
  };

  // `window_refs` is the window width in simulated references (> 0).
  // `registry`, when given, has its counter instruments delta-sampled at
  // every window boundary.  `perfetto`, when given, receives one counter-
  // track sample per closed window at the exporter's current logical time
  // (attach the snapshotter AFTER the exporter in a TeeTracer so the
  // logical clock has advanced past the boundary event).
  explicit IntervalSnapshotter(std::uint64_t window_refs,
                               const MetricRegistry* registry = nullptr,
                               PerfettoExporter* perfetto = nullptr);

  void Record(const WalkEvent& event) override;

  // Closes the in-progress partial window if it saw any references.
  // Idempotent; Record() must not be called again before Reset().
  void Finish();

  // Clears windows and counters for the next measurement section.  The
  // global reference counter keeps running (start_ref stays monotonic
  // across sections) and the registry baseline re-snapshots.
  void Reset();

  std::uint64_t window_refs() const { return window_refs_; }
  std::uint64_t total_refs() const { return total_refs_; }
  const std::vector<Window>& windows() const { return windows_; }

  // One compact JSON object per window:
  //   {"type":"window","window":i,"start_ref":..,"refs":..,"lines":..,
  //    "miss_rate":..,"lines_per_miss":..,"events":{...},"metrics":{...}}
  void WriteJsonl(std::ostream& os) const;

 private:
  void CloseWindow();
  void SampleRegistry(Window& w);

  std::uint64_t window_refs_;
  const MetricRegistry* registry_;
  PerfettoExporter* perfetto_;

  std::vector<Window> windows_;
  Window current_;
  std::uint64_t total_refs_ = 0;  // Global (cross-section) reference count.
  bool finished_ = false;
  // Last-seen registry counter values, for delta sampling.
  std::map<std::string, std::uint64_t> registry_base_;
};

}  // namespace cpt::obs

#endif  // CPT_OBS_SNAPSHOT_H_
