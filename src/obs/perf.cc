#include "obs/perf.h"

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>

#include "common/check.h"
#include "obs/json_writer.h"

#if defined(__linux__) && __has_include(<linux/perf_event.h>)
#define CPT_HAS_PERF_EVENT 1
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#else
#define CPT_HAS_PERF_EVENT 0
#endif

#if __has_include(<sys/resource.h>)
#define CPT_HAS_RUSAGE 1
#include <sys/resource.h>
#else
#define CPT_HAS_RUSAGE 0
#endif

namespace cpt::obs {

namespace {

// The group layout, leader first.  Index order is load-bearing: it matches
// fds_/ids_ and the read-format parse below.
enum CounterIndex : std::size_t {
  kCycles = 0,
  kInstructions,
  kLlcMisses,
  kDtlbLoadMisses,
  kBranchMisses,
  kNumCounters,
};

double PerKiloInstructions(std::uint64_t count, std::uint64_t instructions) {
  return instructions == 0
             ? 0.0
             : 1000.0 * static_cast<double>(count) / static_cast<double>(instructions);
}

struct RusageSnap {
  double user_seconds = 0.0;
  double sys_seconds = 0.0;
  std::uint64_t max_rss_kb = 0;
  std::uint64_t minor_faults = 0;
  std::uint64_t major_faults = 0;
  std::uint64_t voluntary_ctx_switches = 0;
  std::uint64_t involuntary_ctx_switches = 0;
};

RusageSnap TakeRusage() {
  RusageSnap snap;
#if CPT_HAS_RUSAGE
  struct rusage ru;
  if (getrusage(RUSAGE_SELF, &ru) == 0) {
    auto seconds = [](const struct timeval& tv) {
      return static_cast<double>(tv.tv_sec) + 1e-6 * static_cast<double>(tv.tv_usec);
    };
    snap.user_seconds = seconds(ru.ru_utime);
    snap.sys_seconds = seconds(ru.ru_stime);
    snap.max_rss_kb = static_cast<std::uint64_t>(ru.ru_maxrss);
    snap.minor_faults = static_cast<std::uint64_t>(ru.ru_minflt);
    snap.major_faults = static_cast<std::uint64_t>(ru.ru_majflt);
    snap.voluntary_ctx_switches = static_cast<std::uint64_t>(ru.ru_nvcsw);
    snap.involuntary_ctx_switches = static_cast<std::uint64_t>(ru.ru_nivcsw);
  }
#endif
  return snap;
}

}  // namespace

double HostPerfSample::Ipc() const {
  return cycles == 0 ? 0.0
                     : static_cast<double>(instructions) / static_cast<double>(cycles);
}
double HostPerfSample::LlcMpki() const { return PerKiloInstructions(llc_misses, instructions); }
double HostPerfSample::DtlbMpki() const {
  return PerKiloInstructions(dtlb_load_misses, instructions);
}
double HostPerfSample::BranchMpki() const {
  return PerKiloInstructions(branch_misses, instructions);
}

void HostPerfSample::Accumulate(const HostPerfSample& other) {
  if (source.empty()) {
    // First contribution defines the mode strings.
    available = other.available;
    source = other.source;
    reason = other.reason;
  } else if (!other.available) {
    available = false;
    source = other.source;
    if (reason.empty()) {
      reason = other.reason;
    }
  }
  wall_seconds += other.wall_seconds;
  cycles += other.cycles;
  instructions += other.instructions;
  llc_misses += other.llc_misses;
  dtlb_load_misses += other.dtlb_load_misses;
  branch_misses += other.branch_misses;
  time_enabled_ns += other.time_enabled_ns;
  time_running_ns += other.time_running_ns;
  user_seconds += other.user_seconds;
  sys_seconds += other.sys_seconds;
  max_rss_kb = max_rss_kb > other.max_rss_kb ? max_rss_kb : other.max_rss_kb;
  minor_faults += other.minor_faults;
  major_faults += other.major_faults;
  voluntary_ctx_switches += other.voluntary_ctx_switches;
  involuntary_ctx_switches += other.involuntary_ctx_switches;
}

void ToJson(JsonWriter& w, const HostPerfSample& s) {
  w.BeginObject();
  w.KV("available", s.available);
  w.KV("source", s.source.empty() ? "rusage" : s.source);
  w.KV("reason", s.reason);
  w.KV("wall_seconds", s.wall_seconds);
  w.KV("user_seconds", s.user_seconds);
  w.KV("sys_seconds", s.sys_seconds);
  w.KV("max_rss_kb", s.max_rss_kb);
  w.KV("minor_faults", s.minor_faults);
  w.KV("major_faults", s.major_faults);
  w.KV("voluntary_ctx_switches", s.voluntary_ctx_switches);
  w.KV("involuntary_ctx_switches", s.involuntary_ctx_switches);
  w.Key("counters");
  w.BeginObject();
  w.KV("cycles", s.cycles);
  w.KV("instructions", s.instructions);
  w.KV("llc_misses", s.llc_misses);
  w.KV("dtlb_load_misses", s.dtlb_load_misses);
  w.KV("branch_misses", s.branch_misses);
  w.KV("time_enabled_ns", s.time_enabled_ns);
  w.KV("time_running_ns", s.time_running_ns);
  w.EndObject();
  w.Key("derived");
  w.BeginObject();
  w.KV("ipc", s.Ipc());
  w.KV("llc_mpki", s.LlcMpki());
  w.KV("dtlb_mpki", s.DtlbMpki());
  w.KV("branch_mpki", s.BranchMpki());
  w.EndObject();
  w.EndObject();
}

// Start-of-region snapshot: wall clock, rusage, and (implicitly, via the
// RESET ioctl) zeroed counters.
struct HostPerfCounters::Baseline {
  std::chrono::steady_clock::time_point wall_start;
  RusageSnap rusage;
};

bool HostPerfCounters::ForcedOff() {
  const char* env = std::getenv("CPT_NO_HOST_PERF");
  return env != nullptr && *env != '\0' && std::strcmp(env, "0") != 0;
}

#if CPT_HAS_PERF_EVENT

namespace {

int PerfEventOpen(std::uint32_t type, std::uint64_t config, int group_fd) {
  struct perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.type = type;
  attr.size = sizeof(attr);
  attr.config = config;
  attr.disabled = group_fd == -1 ? 1 : 0;  // Whole group toggles via leader.
  attr.exclude_kernel = 1;  // Self-measurement works under paranoid>=1.
  attr.exclude_hv = 1;
  attr.inherit = 0;
  attr.read_format = PERF_FORMAT_GROUP | PERF_FORMAT_ID |
                     PERF_FORMAT_TOTAL_TIME_ENABLED | PERF_FORMAT_TOTAL_TIME_RUNNING;
  return static_cast<int>(::syscall(__NR_perf_event_open, &attr, /*pid=*/0,
                                    /*cpu=*/-1, group_fd, /*flags=*/0UL));
}

constexpr std::uint64_t kDtlbLoadMissConfig =
    PERF_COUNT_HW_CACHE_DTLB | (PERF_COUNT_HW_CACHE_OP_READ << 8) |
    (PERF_COUNT_HW_CACHE_RESULT_MISS << 16);

}  // namespace

HostPerfCounters::HostPerfCounters() {
  if (ForcedOff()) {
    reason_ = "disabled by CPT_NO_HOST_PERF";
    return;
  }
  struct Spec {
    std::uint32_t type;
    std::uint64_t config;
    const char* name;
  };
  static constexpr Spec kSpecs[kNumCounters] = {
      {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES, "cycles"},
      {PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS, "instructions"},
      {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES, "llc_misses"},
      {PERF_TYPE_HW_CACHE, kDtlbLoadMissConfig, "dtlb_load_misses"},
      {PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_MISSES, "branch_misses"},
  };

  group_fd_ = PerfEventOpen(kSpecs[kCycles].type, kSpecs[kCycles].config, -1);
  if (group_fd_ < 0) {
    reason_ = std::string("perf_event_open: ") + std::strerror(errno);
    return;
  }
  fds_[kCycles] = group_fd_;
  // The followers are best-effort: a CPU without a dTLB-miss event still
  // yields cycles/instructions, with the gap named in reason_.
  for (std::size_t i = 1; i < kNumCounters; ++i) {
    fds_[i] = PerfEventOpen(kSpecs[i].type, kSpecs[i].config, group_fd_);
    if (fds_[i] < 0) {
      if (!reason_.empty()) {
        reason_ += "; ";
      }
      reason_ += std::string(kSpecs[i].name) + ": " + std::strerror(errno);
    }
  }
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    if (fds_[i] >= 0) {
      std::uint64_t id = 0;
      if (::ioctl(fds_[i], PERF_EVENT_IOC_ID, &id) == 0) {
        ids_[i] = id;
      }
    }
  }
}

HostPerfCounters::~HostPerfCounters() {
  delete base_;
  for (int& fd : fds_) {
    if (fd >= 0) {
      ::close(fd);
      fd = -1;
    }
  }
  group_fd_ = -1;
}

void HostPerfCounters::Start() {
  CPT_CHECK(base_ == nullptr, "HostPerfCounters::Start() without Stop()");
  base_ = new Baseline{std::chrono::steady_clock::now(), TakeRusage()};
  if (group_fd_ >= 0) {
    ::ioctl(group_fd_, PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
    ::ioctl(group_fd_, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
  }
}

HostPerfSample HostPerfCounters::Stop() {
  CPT_CHECK(base_ != nullptr, "HostPerfCounters::Stop() without Start()");
  if (group_fd_ >= 0) {
    ::ioctl(group_fd_, PERF_EVENT_IOC_DISABLE, PERF_IOC_FLAG_GROUP);
  }

  HostPerfSample s;
  s.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - base_->wall_start)
          .count();
  const RusageSnap end = TakeRusage();
  s.user_seconds = end.user_seconds - base_->rusage.user_seconds;
  s.sys_seconds = end.sys_seconds - base_->rusage.sys_seconds;
  s.max_rss_kb = end.max_rss_kb;
  s.minor_faults = end.minor_faults - base_->rusage.minor_faults;
  s.major_faults = end.major_faults - base_->rusage.major_faults;
  s.voluntary_ctx_switches =
      end.voluntary_ctx_switches - base_->rusage.voluntary_ctx_switches;
  s.involuntary_ctx_switches =
      end.involuntary_ctx_switches - base_->rusage.involuntary_ctx_switches;
  delete base_;
  base_ = nullptr;

  if (group_fd_ < 0) {
    s.available = false;
    s.source = "rusage";
    s.reason = reason_;
    return s;
  }

  // PERF_FORMAT_GROUP read layout:
  //   { nr, time_enabled, time_running, { value, id } * nr }
  std::uint64_t buf[3 + 2 * kNumCounters] = {};
  const ssize_t n = ::read(group_fd_, buf, sizeof(buf));
  if (n < static_cast<ssize_t>(3 * sizeof(std::uint64_t))) {
    s.available = false;
    s.source = "rusage";
    s.reason = std::string("perf group read: ") + std::strerror(errno);
    return s;
  }
  s.available = true;
  s.source = "perf_event";
  s.reason = reason_;
  s.time_enabled_ns = buf[1];
  s.time_running_ns = buf[2];
  // Multiplexing scale: when the PMU rotated this group out part of the
  // time, extrapolate counts to the full enabled window.
  const bool ran = buf[2] != 0;
  const double scale =
      ran ? static_cast<double>(buf[1]) / static_cast<double>(buf[2]) : 1.0;
  const std::uint64_t nr = buf[0];
  std::uint64_t* out[kNumCounters] = {&s.cycles, &s.instructions, &s.llc_misses,
                                      &s.dtlb_load_misses, &s.branch_misses};
  for (std::uint64_t v = 0; v < nr && v < kNumCounters; ++v) {
    const std::uint64_t value = buf[3 + 2 * v];
    const std::uint64_t id = buf[3 + 2 * v + 1];
    for (std::size_t c = 0; c < kNumCounters; ++c) {
      if (fds_[c] >= 0 && ids_[c] == id) {
        *out[c] = ran ? static_cast<std::uint64_t>(static_cast<double>(value) * scale)
                      : value;
        break;
      }
    }
  }
  return s;
}

#else  // !CPT_HAS_PERF_EVENT

HostPerfCounters::HostPerfCounters() {
  reason_ = ForcedOff() ? "disabled by CPT_NO_HOST_PERF"
                        : "perf_event_open unavailable on this platform";
}

HostPerfCounters::~HostPerfCounters() { delete base_; }

void HostPerfCounters::Start() {
  CPT_CHECK(base_ == nullptr, "HostPerfCounters::Start() without Stop()");
  base_ = new Baseline{std::chrono::steady_clock::now(), TakeRusage()};
}

HostPerfSample HostPerfCounters::Stop() {
  CPT_CHECK(base_ != nullptr, "HostPerfCounters::Stop() without Start()");
  HostPerfSample s;
  s.available = false;
  s.source = "rusage";
  s.reason = reason_;
  s.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - base_->wall_start)
          .count();
  const RusageSnap end = TakeRusage();
  s.user_seconds = end.user_seconds - base_->rusage.user_seconds;
  s.sys_seconds = end.sys_seconds - base_->rusage.sys_seconds;
  s.max_rss_kb = end.max_rss_kb;
  s.minor_faults = end.minor_faults - base_->rusage.minor_faults;
  s.major_faults = end.major_faults - base_->rusage.major_faults;
  s.voluntary_ctx_switches =
      end.voluntary_ctx_switches - base_->rusage.voluntary_ctx_switches;
  s.involuntary_ctx_switches =
      end.involuntary_ctx_switches - base_->rusage.involuntary_ctx_switches;
  delete base_;
  base_ = nullptr;
  return s;
}

#endif  // CPT_HAS_PERF_EVENT

}  // namespace cpt::obs
