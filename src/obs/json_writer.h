// Hand-rolled streaming JSON emitter — the serialization backbone of the
// telemetry layer (bench --json documents, trace JSONL records, registry
// dumps).  No external dependencies: the repo's rule is that observability
// must not pull a JSON library into the simulator's build.
//
// The writer is a push-down automaton over object/array nesting: it inserts
// commas and validates key/value alternation, so emitting code cannot
// produce structurally invalid JSON (violations trip CPT_CHECK, consistent
// with the repo's asserts-always-on policy).  Doubles are emitted with
// enough precision to round-trip (%.17g); NaN and infinities — which JSON
// cannot represent — become null.
#ifndef CPT_OBS_JSON_WRITER_H_
#define CPT_OBS_JSON_WRITER_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"

namespace cpt::obs {

class JsonWriter {
 public:
  // `pretty` inserts newlines and two-space indentation; compact mode is
  // used for JSONL trace records (one object per line).
  explicit JsonWriter(std::ostream& os, bool pretty = true);
  ~JsonWriter();
  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();

  // Object member key; must be followed by exactly one value (or container).
  void Key(std::string_view key);

  void String(std::string_view v);
  void Uint(std::uint64_t v);
  void Int(std::int64_t v);
  void Double(double v);
  void Bool(bool v);
  void Null();

  // Key/value conveniences for flat members.
  void KV(std::string_view key, std::string_view v) { Key(key); String(v); }
  void KV(std::string_view key, const char* v) { Key(key); String(v); }
  void KV(std::string_view key, std::uint64_t v) { Key(key); Uint(v); }
  void KV(std::string_view key, std::uint32_t v) { Key(key); Uint(v); }
  void KV(std::string_view key, std::int64_t v) { Key(key); Int(v); }
  void KV(std::string_view key, double v) { Key(key); Double(v); }
  void KV(std::string_view key, bool v) { Key(key); Bool(v); }
  // Strong address types serialize as their raw word (JSON output is a
  // sanctioned .raw() boundary).
  template <class Tag>
  void KV(std::string_view key, TaggedU64<Tag> v) {
    Key(key);
    Uint(v.raw());
  }

  // True once every opened container has been closed again.
  bool Complete() const;

  // JSON string-escape (without the surrounding quotes): ", \, and control
  // characters; multi-byte UTF-8 passes through untouched.
  static std::string Escape(std::string_view s);

 private:
  enum class Ctx : std::uint8_t { kObject, kArray };

  // Comma/indent bookkeeping before a value or key is emitted.
  void BeforeValue();
  void NewlineIndent();

  std::ostream& os_;
  bool pretty_;
  std::vector<Ctx> stack_;
  std::vector<bool> has_members_;  // Parallel to stack_.
  bool expect_value_ = false;      // A Key() was emitted, value pending.
  bool done_ = false;              // One complete top-level value written.
};

}  // namespace cpt::obs

#endif  // CPT_OBS_JSON_WRITER_H_
