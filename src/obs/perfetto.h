// Chrome trace-event (Perfetto-loadable) export of the walk-event stream.
//
// The simulator has no wall clock worth tracing — what matters is the
// *order* and *shape* of miss-handling work — so the exporter runs a logical
// clock: every recorded event advances "time" by one microsecond.  Loaded in
// ui.perfetto.dev (or chrome://tracing), the file shows one track per
// component:
//
//   TLB        — miss instants (conventional / block / subblock) and block
//                prefetch fills
//   PT walk    — one slice per counted walk, spanning miss to walk-end,
//                with chain length, lines touched, and fault-ness as args
//   OS         — page faults and superpage promotions
//   allocator  — frame reservation grants (properly-placed flag)
//   softTLB    — TSB probe hits/misses
//   sections   — one instant per bench measurement (series/workload), so a
//                bench-long trace is navigable
//
// Counter tracks sample cumulative misses and the running lines-per-miss
// ratio every `counter_interval` walks — the headline figure as a curve.
//
// The output is the legacy JSON trace format: {"traceEvents": [...]}.  It is
// streamed, so arbitrarily long runs need no buffering; `max_events` caps
// the file (drops are counted and noted in trace metadata).
#ifndef CPT_OBS_PERFETTO_H_
#define CPT_OBS_PERFETTO_H_

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <ostream>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/trace.h"

namespace cpt::obs {

class JsonWriter;

class PerfettoExporter final : public WalkTracer {
 public:
  struct Options {
    // Stop writing trace events after this many (metadata excluded).
    std::uint64_t max_events = 1'000'000;
    // Emit the (very numerous) TLB-hit instants too.  Off by default: hits
    // dominate the stream ~50:1 and add nothing to miss attribution.
    bool include_hits = false;
    // Emit counter samples every this-many committed walks.
    std::uint64_t counter_interval = 64;
  };

  explicit PerfettoExporter(std::ostream& os) : PerfettoExporter(os, Options()) {}
  PerfettoExporter(std::ostream& os, Options opts);
  ~PerfettoExporter() override;
  PerfettoExporter(const PerfettoExporter&) = delete;
  PerfettoExporter& operator=(const PerfettoExporter&) = delete;

  void Record(const WalkEvent& event) override;

  // Marks a bench measurement boundary on the sections track.
  void BeginSection(std::string_view label);

  // One sample on the named counter track at the current logical time.
  // Used by IntervalSnapshotter to render windowed time-series (miss rate,
  // lines per miss, ...) as curves next to the event tracks.
  void CounterTrack(std::string_view name,
                    std::initializer_list<std::pair<const char*, double>> args);

  // Writes the closing metadata and finishes the JSON document.  Called by
  // the destructor if not called explicitly; no events may be recorded
  // afterwards.
  void Finish();
  bool finished() const { return finished_; }

  std::uint64_t events_written() const { return events_written_; }
  std::uint64_t events_dropped() const { return events_dropped_; }

 private:
  // Track (thread) ids within the single trace process.  These are shard 0's
  // ids; shard `s` (WalkEvent::shard, stamped by ShardedTraceBuffer) gets
  // its own parallel set of tracks at `s * kTrackStride + Track`, named
  // lazily on the shard's first event — so a merged multi-thread trace
  // renders one track group per shard instead of interleaving every shard's
  // walks on one timeline, and a single-threaded trace (shard 0 only) is
  // unchanged.
  enum Track : std::uint32_t {
    kTrackTlb = 1,
    kTrackWalk = 2,
    kTrackOs = 3,
    kTrackAllocator = 4,
    kTrackSwTlb = 5,
    kTrackSections = 6,
    kTrackTimeseries = 7,
  };
  static constexpr std::uint32_t kTrackStride = 8;

  // Per-shard open-walk slice state (walks from different shards overlap in
  // a merged stream; each shard's slice must pair with its own boundaries).
  struct WalkState {
    bool open = false;
    bool faulted = false;
    std::uint64_t start = 0;
    Vpn vpn{};
    std::uint32_t steps = 0;
  };

  std::uint32_t Tid(std::uint16_t shard, Track track) const {
    return shard * kTrackStride + static_cast<std::uint32_t>(track);
  }
  // Emits the thread_name metadata for a shard's tracks on first sight.
  void EnsureShardTracks(std::uint16_t shard);
  WalkState& WalkStateFor(std::uint16_t shard);

  bool Budget();  // True if another event fits under max_events.
  void EmitMeta(std::string_view name, std::uint32_t tid, std::string_view value);
  void BeginEvent(const char* ph, std::string_view name, std::uint32_t tid,
                  std::uint64_t ts);
  void EndEvent();  // Closes the object opened by BeginEvent.
  void Instant(std::string_view name, std::uint32_t tid);
  void CounterSample();

  Options opts_;
  std::unique_ptr<JsonWriter> writer_;
  bool finished_ = false;

  std::uint64_t now_ = 0;  // Logical microseconds; one tick per Record().
  std::uint64_t events_written_ = 0;
  std::uint64_t events_dropped_ = 0;

  // Exporter state is single-threaded (merge-time), so the packed
  // vector<bool> cannot false-share across workers.
  std::vector<bool> shard_announced_;  // cpt-lint: allow(false-sharing)
  std::vector<WalkState> walk_;        // [shard] -> open-walk slice state.

  // Counter-track accumulators (aggregated across shards; sampled on shard
  // 0's TLB track).
  std::uint64_t misses_ = 0;
  std::uint64_t lines_ = 0;
  std::uint64_t walks_ = 0;
};

}  // namespace cpt::obs

#endif  // CPT_OBS_PERFETTO_H_
