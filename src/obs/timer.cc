#include "obs/timer.h"

#include "common/check.h"
#include "obs/json_writer.h"

namespace cpt::obs {

void PhaseProfiler::Begin(std::string_view name) {
  CPT_CHECK(active_ < 0, "PhaseProfiler phases do not nest");
  for (std::size_t i = 0; i < phases_.size(); ++i) {
    if (phases_[i].name == name) {
      active_ = static_cast<std::int64_t>(i);
      started_ = std::chrono::steady_clock::now();
      return;
    }
  }
  phases_.push_back(Phase{std::string(name), 0.0, 0});
  active_ = static_cast<std::int64_t>(phases_.size() - 1);
  started_ = std::chrono::steady_clock::now();
}

void PhaseProfiler::End() {
  CPT_CHECK(active_ >= 0, "PhaseProfiler::End() without Begin()");
  Phase& p = phases_[static_cast<std::size_t>(active_)];
  p.seconds += std::chrono::duration<double>(std::chrono::steady_clock::now() - started_).count();
  ++p.count;
  active_ = -1;
}

double PhaseProfiler::TotalSeconds() const {
  double total = 0.0;
  for (const Phase& p : phases_) {
    total += p.seconds;
  }
  return total;
}

void PhaseProfiler::ToJson(JsonWriter& w) const {
  w.BeginArray();
  for (const Phase& p : phases_) {
    w.BeginObject();
    w.KV("name", p.name);
    w.KV("seconds", p.seconds);
    w.KV("count", p.count);
    w.EndObject();
  }
  w.EndArray();
}

}  // namespace cpt::obs
