// Small statistics helpers used by the simulator and benches.
#ifndef CPT_COMMON_STATS_H_
#define CPT_COMMON_STATS_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

namespace cpt {

// Running mean / min / max / variance over a stream of samples.  Variance
// uses Welford's online update, so long timing streams stay numerically
// stable.
class RunningStats {
 public:
  void Add(double x) {
    ++n_;
    sum_ += x;
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
  }

  // Folds another stream's summary into this one (parallel Welford / Chan
  // combine).  Equivalent to having Add()ed the other stream's samples here,
  // up to floating-point rounding: counts and sums are exact, mean/m2 use the
  // pairwise update so variance stays stable even when the two streams have
  // very different magnitudes.  Merging per-shard stats in shard-index order
  // yields a deterministic result for a deterministic per-shard input.
  void Merge(const RunningStats& other);

  std::uint64_t count() const { return n_; }
  double sum() const { return sum_; }
  double mean() const { return n_ == 0 ? 0.0 : mean_; }
  double min() const { return n_ == 0 ? 0.0 : min_; }
  double max() const { return n_ == 0 ? 0.0 : max_; }
  // Population variance; 0 for fewer than two samples.
  double variance() const { return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_); }
  double stddev() const { return std::sqrt(variance()); }

 private:
  std::uint64_t n_ = 0;
  double sum_ = 0.0;
  double min_ = 1e300;
  double max_ = -1e300;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

// Histogram over small non-negative integer values (e.g. hash-chain lengths,
// cache lines per walk).  Bucket storage is clamped at `max_buckets`: one
// corrupted sample (a bogus chain length, a wild timing value) must not
// allocate gigabytes.  Out-of-range samples are folded into an overflow
// bucket that still contributes to total() and mean().
class Histogram {
 public:
  static constexpr std::size_t kDefaultMaxBuckets = 4096;

  explicit Histogram(std::size_t max_buckets = kDefaultMaxBuckets)
      : max_buckets_(std::max<std::size_t>(max_buckets, 1)) {}

  void Add(std::size_t value) {
    ++total_;
    if (value >= max_buckets_) {
      ++overflow_;
      overflow_sum_ += value;
      max_seen_ = std::max(max_seen_, value);
      return;
    }
    if (value >= counts_.size()) {
      // Within capacity after Reserve() this is a size bump, not an
      // allocation; growth is clamped at max_buckets_ either way.
      counts_.resize(value + 1, 0);  // cpt-lint: allow(hot-no-alloc)
    }
    ++counts_[value];
    max_seen_ = std::max(max_seen_, value);
  }

  // Pre-allocates bucket storage for values below `n`, so steady-state
  // Add() calls stay off the heap (hot-path discipline: the per-walk
  // histogram in mem/cache_model.h is fed from inside counted walks, under
  // cpt::HotPathScope in tests).  Semantics are untouched — buckets still
  // materialize lazily via resize, but within reserved capacity.
  void Reserve(std::size_t n) { counts_.reserve(std::min(n, max_buckets_)); }

  // Folds another histogram into this one bucket-by-bucket.  Buckets the
  // other histogram resolved but this one clamps (a smaller max_buckets_
  // here) fold into this histogram's overflow bucket, preserving total()
  // and mean() exactly.
  void Merge(const Histogram& other);

  std::uint64_t total() const { return total_; }
  std::uint64_t count(std::size_t value) const {
    return value < counts_.size() ? counts_[value] : 0;
  }
  // Largest bucketed value (overflow samples excluded; see max_seen()).
  std::size_t max_value() const { return counts_.empty() ? 0 : counts_.size() - 1; }
  // Largest value ever offered to Add(), overflow included.
  std::size_t max_seen() const { return max_seen_; }
  std::size_t max_buckets() const { return max_buckets_; }
  // Samples >= max_buckets(), kept out of the bucket array.
  std::uint64_t overflow() const { return overflow_; }

  double mean() const {
    if (total_ == 0) {
      return 0.0;
    }
    double s = static_cast<double>(overflow_sum_);
    for (std::size_t v = 0; v < counts_.size(); ++v) {
      s += static_cast<double>(v) * static_cast<double>(counts_[v]);
    }
    return s / static_cast<double>(total_);
  }

  std::string ToString() const;

 private:
  std::size_t max_buckets_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t overflow_sum_ = 0;
  std::size_t max_seen_ = 0;
};

// Formats byte counts the way the paper's tables do (KB with no decimals
// above 1KB).
std::string FormatBytes(std::uint64_t bytes);

}  // namespace cpt

#endif  // CPT_COMMON_STATS_H_
