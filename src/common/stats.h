// Small statistics helpers used by the simulator and benches.
#ifndef CPT_COMMON_STATS_H_
#define CPT_COMMON_STATS_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

namespace cpt {

// Running mean / min / max over a stream of samples.
class RunningStats {
 public:
  void Add(double x) {
    ++n_;
    sum_ += x;
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  std::uint64_t count() const { return n_; }
  double sum() const { return sum_; }
  double mean() const { return n_ == 0 ? 0.0 : sum_ / static_cast<double>(n_); }
  double min() const { return n_ == 0 ? 0.0 : min_; }
  double max() const { return n_ == 0 ? 0.0 : max_; }

 private:
  std::uint64_t n_ = 0;
  double sum_ = 0.0;
  double min_ = 1e300;
  double max_ = -1e300;
};

// Histogram over small non-negative integer values (e.g. hash-chain lengths,
// cache lines per walk).
class Histogram {
 public:
  void Add(std::size_t value) {
    if (value >= counts_.size()) {
      counts_.resize(value + 1, 0);
    }
    ++counts_[value];
    ++total_;
  }

  std::uint64_t total() const { return total_; }
  std::uint64_t count(std::size_t value) const {
    return value < counts_.size() ? counts_[value] : 0;
  }
  std::size_t max_value() const { return counts_.empty() ? 0 : counts_.size() - 1; }

  double mean() const {
    if (total_ == 0) {
      return 0.0;
    }
    double s = 0.0;
    for (std::size_t v = 0; v < counts_.size(); ++v) {
      s += static_cast<double>(v) * static_cast<double>(counts_[v]);
    }
    return s / static_cast<double>(total_);
  }

  std::string ToString() const;

 private:
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

// Formats byte counts the way the paper's tables do (KB with no decimals
// above 1KB).
std::string FormatBytes(std::uint64_t bytes);

}  // namespace cpt

#endif  // CPT_COMMON_STATS_H_
