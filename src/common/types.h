// Core address types and page geometry for the clustered-page-table library.
//
// Terminology follows Talluri, Hill & Khalidi (SOSP '95):
//   - base page:   the smallest translation unit (4KB).
//   - page block:  an aligned group of `subblock_factor` consecutive base
//                  pages (e.g. sixteen 4KB pages = one 64KB block).
//   - VPN:         virtual page number  (va >> 12).
//   - VPBN:        virtual page block number (vpn / subblock_factor).
//   - Boff:        block offset (vpn % subblock_factor).
//   - PPN:         physical page number.
#ifndef CPT_COMMON_TYPES_H_
#define CPT_COMMON_TYPES_H_

#include <cstdint>
#include <bit>

namespace cpt {

using VirtAddr = std::uint64_t;   // 64-bit virtual address.
using PhysAddr = std::uint64_t;   // Physical address (paper assumes <= 40 bits).
using Vpn = std::uint64_t;        // Virtual page number.
using Vpbn = std::uint64_t;       // Virtual page block number.
using Ppn = std::uint64_t;        // Physical page number.

// 4KB base pages, as in the paper's base configuration.
inline constexpr unsigned kBasePageShift = 12;
inline constexpr std::uint64_t kBasePageSize = std::uint64_t{1} << kBasePageShift;
inline constexpr std::uint64_t kBasePageMask = kBasePageSize - 1;

// Paper's PTE format (Figure 1): 28-bit PPN => 40-bit physical addresses.
inline constexpr unsigned kPpnBits = 28;
inline constexpr Ppn kMaxPpn = (Ppn{1} << kPpnBits) - 1;

// Default subblock factor used throughout the paper's evaluation.
inline constexpr unsigned kDefaultSubblockFactor = 16;

// Default (level-two) cache line size assumed when counting page-table
// cache-line touches (Section 6.1).
inline constexpr unsigned kDefaultCacheLineSize = 256;

// Default number of hash buckets for hashed/clustered tables (Section 6.1).
inline constexpr unsigned kDefaultHashBuckets = 4096;

constexpr Vpn VpnOf(VirtAddr va) { return va >> kBasePageShift; }
constexpr VirtAddr VaOf(Vpn vpn) { return vpn << kBasePageShift; }
constexpr std::uint64_t PageOffset(VirtAddr va) { return va & kBasePageMask; }

// Splits a VPN into (VPBN, Boff) for a power-of-two subblock factor.
constexpr Vpbn VpbnOf(Vpn vpn, unsigned subblock_factor) {
  return vpn / subblock_factor;
}
constexpr unsigned BoffOf(Vpn vpn, unsigned subblock_factor) {
  return static_cast<unsigned>(vpn % subblock_factor);
}
constexpr Vpn FirstVpnOfBlock(Vpbn vpbn, unsigned subblock_factor) {
  return vpbn * subblock_factor;
}

constexpr bool IsPowerOfTwo(std::uint64_t x) { return x != 0 && (x & (x - 1)) == 0; }

constexpr unsigned Log2(std::uint64_t x) {
  return static_cast<unsigned>(63 - std::countl_zero(x));
}

// A page size expressed as a power-of-two multiple of the base page size.
// size_log2 == 0 is a 4KB base page; size_log2 == 4 is a 64KB superpage.
struct PageSize {
  unsigned size_log2 = 0;

  constexpr unsigned pages() const { return 1u << size_log2; }
  constexpr std::uint64_t bytes() const { return kBasePageSize << size_log2; }
  constexpr bool is_base() const { return size_log2 == 0; }

  friend constexpr bool operator==(PageSize a, PageSize b) = default;
};

inline constexpr PageSize kPage4K{0};
inline constexpr PageSize kPage8K{1};
inline constexpr PageSize kPage16K{2};
inline constexpr PageSize kPage64K{4};

}  // namespace cpt

#endif  // CPT_COMMON_TYPES_H_
