// Core address types and page geometry for the clustered-page-table library.
//
// Terminology follows Talluri, Hill & Khalidi (SOSP '95):
//   - base page:   the smallest translation unit (4KB).
//   - page block:  an aligned group of `subblock_factor` consecutive base
//                  pages (e.g. sixteen 4KB pages = one 64KB block).
//   - VPN:         virtual page number  (va >> 12).
//   - VPBN:        virtual page block number (vpn / subblock_factor).
//   - Boff:        block offset (vpn % subblock_factor).
//   - PPN:         physical page number.
//
// Each of those domains is a distinct strong type (TaggedU64 below), so the
// translation arithmetic the paper's Sections 4-5 are built on — VA -> VPN ->
// (VPBN, Boff) -> PPN — can only be written through the named crossing
// functions (VpnOf, VpbnOf, FirstVpnOfBlock, ...).  Passing a VPN where a
// VPBN is expected, or feeding an unshifted virtual address into a page-table
// probe, is a compile error instead of a silently wrong count deep in a
// bench run.  See DESIGN.md "Address domains" for the taxonomy and the
// `.raw()` escape-hatch policy.
#ifndef CPT_COMMON_TYPES_H_
#define CPT_COMMON_TYPES_H_

#include <bit>
#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <type_traits>

#include "common/check.h"

namespace cpt {

constexpr bool IsPowerOfTwo(std::uint64_t x) { return x != 0 && (x & (x - 1)) == 0; }

// Floor of log2.  The argument must be nonzero: countl_zero(0) would
// underflow the subtraction to a huge unsigned value.
constexpr unsigned Log2(std::uint64_t x) {
  CPT_DCHECK(x != 0, "Log2(0) is undefined");
  return static_cast<unsigned>(63 - std::countl_zero(x));
}

// Zero-overhead strong wrapper over std::uint64_t, parameterized by an empty
// tag struct per address domain.  Construction from a raw integer is
// explicit; there is no implicit conversion back.  Within one domain the
// natural affine operations are allowed (compare, offset by a count,
// distance between two values); everything that crosses domains goes through
// a named constexpr function below so every `>> kBasePageShift` in the tree
// has exactly one audited home.
//
// A tag may declare `static constexpr std::uint64_t kMaxRaw` to give the
// domain a representable range; construction then CPT_DCHECKs the bound
// (used by Ppn, whose 28 bits come from the paper's PTE format, Figure 1).
//
// `.raw()` is the escape hatch for genuine boundaries — hashing,
// serialization, bit-packing.  Policy (enforced by review + the
// raw-address-param lint rule keeping raw u64 out of public signatures):
// call sites outside those boundaries carry a justifying comment.
template <class Tag>
class TaggedU64 {
 public:
  constexpr TaggedU64() = default;
  explicit constexpr TaggedU64(std::uint64_t raw) : raw_(raw) {
    if constexpr (requires { Tag::kMaxRaw; }) {
      CPT_DCHECK(raw <= Tag::kMaxRaw, "value outside the domain's representable range");
    }
  }

  constexpr std::uint64_t raw() const { return raw_; }

  friend constexpr bool operator==(TaggedU64 a, TaggedU64 b) = default;
  friend constexpr std::strong_ordering operator<=>(TaggedU64 a, TaggedU64 b) = default;

  // Distance between two values of the same domain (number of pages between
  // two VPNs, bytes between two addresses).
  friend constexpr std::uint64_t operator-(TaggedU64 a, TaggedU64 b) { return a.raw_ - b.raw_; }

  // Offsetting within a domain stays in the domain (vpn + 3 pages is a VPN).
  friend constexpr TaggedU64 operator+(TaggedU64 a, std::uint64_t n) {
    return TaggedU64(a.raw_ + n);
  }
  friend constexpr TaggedU64 operator-(TaggedU64 a, std::uint64_t n) {
    return TaggedU64(a.raw_ - n);
  }
  constexpr TaggedU64& operator+=(std::uint64_t n) { return *this = *this + n; }
  constexpr TaggedU64& operator-=(std::uint64_t n) { return *this = *this - n; }
  constexpr TaggedU64& operator++() { return *this += 1; }
  constexpr TaggedU64 operator++(int) {
    TaggedU64 old = *this;
    ++*this;
    return old;
  }

 private:
  std::uint64_t raw_ = 0;
};

// 4KB base pages, as in the paper's base configuration.
inline constexpr unsigned kBasePageShift = 12;
inline constexpr std::uint64_t kBasePageSize = std::uint64_t{1} << kBasePageShift;
inline constexpr std::uint64_t kBasePageMask = kBasePageSize - 1;

// Paper's PTE format (Figure 1): 28-bit PPN => 40-bit physical addresses.
inline constexpr unsigned kPpnBits = 28;
inline constexpr std::uint64_t kPpnMask = (std::uint64_t{1} << kPpnBits) - 1;

struct VirtAddrTag {};
struct PhysAddrTag {};
struct VpnTag {};
struct VpbnTag {};
struct PpnTag {
  static constexpr std::uint64_t kMaxRaw = kPpnMask;
};

using VirtAddr = TaggedU64<VirtAddrTag>;  // 64-bit virtual address.
using PhysAddr = TaggedU64<PhysAddrTag>;  // Physical byte address (simulated).
using Vpn = TaggedU64<VpnTag>;            // Virtual page number.
using Vpbn = TaggedU64<VpbnTag>;          // Virtual page block number.
using Ppn = TaggedU64<PpnTag>;            // Physical page number (28 bits).

inline constexpr Ppn kMaxPpn{kPpnMask};

// The strong types must stay layout-identical to the raw words they wrap:
// they live inside 8-byte PTE-adjacent structs, vectors, and trace payloads.
static_assert(sizeof(Vpn) == 8 && std::is_trivially_copyable_v<Vpn>);
static_assert(sizeof(Vpbn) == 8 && std::is_trivially_copyable_v<Vpbn>);
static_assert(sizeof(Ppn) == 8 && std::is_trivially_copyable_v<Ppn>);
static_assert(sizeof(VirtAddr) == 8 && std::is_trivially_copyable_v<VirtAddr>);
static_assert(sizeof(PhysAddr) == 8 && std::is_trivially_copyable_v<PhysAddr>);

// The whole point: no domain converts to another (or back to a raw integer)
// without going through a named crossing.
static_assert(!std::is_convertible_v<Vpn, Vpbn> && !std::is_convertible_v<Vpbn, Vpn>);
static_assert(!std::is_convertible_v<Vpn, Ppn> && !std::is_convertible_v<Ppn, Vpn>);
static_assert(!std::is_convertible_v<std::uint64_t, Vpn> &&
              !std::is_convertible_v<Vpn, std::uint64_t>);
static_assert(!std::is_convertible_v<VirtAddr, Vpn> && !std::is_convertible_v<Vpn, VirtAddr>);

// Default subblock factor used throughout the paper's evaluation.
inline constexpr unsigned kDefaultSubblockFactor = 16;

// Default (level-two) cache line size assumed when counting page-table
// cache-line touches (Section 6.1).
inline constexpr unsigned kDefaultCacheLineSize = 256;

// Default number of hash buckets for hashed/clustered tables (Section 6.1).
inline constexpr unsigned kDefaultHashBuckets = 4096;

// ---- Domain crossings ------------------------------------------------------

constexpr Vpn VpnOf(VirtAddr va) { return Vpn(va.raw() >> kBasePageShift); }
constexpr VirtAddr VaOf(Vpn vpn) { return VirtAddr(vpn.raw() << kBasePageShift); }
constexpr std::uint64_t PageOffset(VirtAddr va) { return va.raw() & kBasePageMask; }

constexpr Ppn PpnOf(PhysAddr pa) { return Ppn(pa.raw() >> kBasePageShift); }
constexpr PhysAddr PaOf(Ppn ppn) { return PhysAddr(ppn.raw() << kBasePageShift); }

// Splits a VPN into (VPBN, Boff).  `subblock_factor` must be a power of two
// (the paper's subblock factors are 2^k; every table rounds its factor up),
// which lets the crossings compile to shift/mask.
constexpr Vpbn VpbnOf(Vpn vpn, unsigned subblock_factor) {
  CPT_DCHECK(IsPowerOfTwo(subblock_factor), "subblock factor must be a power of two");
  return Vpbn(vpn.raw() >> Log2(subblock_factor));
}
constexpr unsigned BoffOf(Vpn vpn, unsigned subblock_factor) {
  CPT_DCHECK(IsPowerOfTwo(subblock_factor), "subblock factor must be a power of two");
  return static_cast<unsigned>(vpn.raw() & (subblock_factor - 1));
}
constexpr Vpn FirstVpnOfBlock(Vpbn vpbn, unsigned subblock_factor) {
  CPT_DCHECK(IsPowerOfTwo(subblock_factor), "subblock factor must be a power of two");
  return Vpn(vpbn.raw() << Log2(subblock_factor));
}

// A page size expressed as a power-of-two multiple of the base page size.
// size_log2 == 0 is a 4KB base page; size_log2 == 4 is a 64KB superpage.
struct PageSize {
  unsigned size_log2 = 0;

  constexpr unsigned pages() const { return 1u << size_log2; }
  constexpr std::uint64_t bytes() const { return kBasePageSize << size_log2; }
  constexpr bool is_base() const { return size_log2 == 0; }

  friend constexpr bool operator==(PageSize a, PageSize b) = default;
};

inline constexpr PageSize kPage4K{0};
inline constexpr PageSize kPage8K{1};
inline constexpr PageSize kPage16K{2};
inline constexpr PageSize kPage64K{4};

// First VPN of the naturally-aligned superpage of `size` containing `vpn`
// (a superpage mapping's base_vpn, Section 4.2).
constexpr Vpn SuperpageBaseVpn(Vpn vpn, PageSize size) {
  return Vpn(vpn.raw() & ~std::uint64_t{size.pages() - 1u});
}
// Like SuperpageBaseVpn for PPNs: superpage mappings require size-aligned
// physical placement.
constexpr Ppn SuperpageBasePpn(Ppn ppn, PageSize size) {
  return Ppn(ppn.raw() & ~std::uint64_t{size.pages() - 1u});
}
constexpr bool IsSuperpageAligned(Vpn vpn, PageSize size) {
  return SuperpageBaseVpn(vpn, size) == vpn;
}
constexpr bool IsSuperpageAligned(Ppn ppn, PageSize size) {
  return SuperpageBasePpn(ppn, size) == ppn;
}

// The half-open VPN range [first, first + pages) of one aligned span: a page
// block (BlockSpanOf) or a superpage.  Keeps "which page of the block is
// this" arithmetic in one audited place.
struct BlockSpan {
  Vpn first{};
  unsigned pages = 0;

  constexpr Vpn end() const { return first + pages; }
  constexpr bool Contains(Vpn vpn) const { return first <= vpn && vpn < end(); }
  constexpr unsigned IndexOf(Vpn vpn) const {
    CPT_DCHECK(Contains(vpn), "vpn outside the span");
    return static_cast<unsigned>(vpn - first);
  }

  friend constexpr bool operator==(BlockSpan a, BlockSpan b) = default;
};

constexpr BlockSpan BlockSpanOf(Vpbn vpbn, unsigned subblock_factor) {
  return BlockSpan{FirstVpnOfBlock(vpbn, subblock_factor), subblock_factor};
}
constexpr BlockSpan BlockSpanContaining(Vpn vpn, unsigned subblock_factor) {
  return BlockSpanOf(VpbnOf(vpn, subblock_factor), subblock_factor);
}

// Streams print the raw word (diagnostics and test failure messages only;
// simulated output goes through the obs JSON writers).  Constrained so this
// never resurrects integer `<<` shifts on tagged values.
template <class Stream, class Tag>
  requires(!std::is_arithmetic_v<Stream> && requires(Stream& s) {
    typename Stream::char_type;
    s << std::uint64_t{};
  })
Stream& operator<<(Stream& os, TaggedU64<Tag> v) {
  os << v.raw();
  return os;
}

}  // namespace cpt

// Strong address types hash as their raw word so they drop into
// unordered containers (this, hashing, is a sanctioned .raw() boundary).
template <class Tag>
struct std::hash<cpt::TaggedU64<Tag>> {
  std::size_t operator()(cpt::TaggedU64<Tag> v) const noexcept {
    return std::hash<std::uint64_t>{}(v.raw());
  }
};

#endif  // CPT_COMMON_TYPES_H_
