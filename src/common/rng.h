// Deterministic pseudo-random number generation for workload synthesis.
//
// Simulations must be reproducible run-to-run, so all randomness flows
// through this splitmix64-seeded xoshiro256** generator rather than
// std::random_device or unseeded std engines.
#ifndef CPT_COMMON_RNG_H_
#define CPT_COMMON_RNG_H_

#include <cstdint>

namespace cpt {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    // splitmix64 seeding, as recommended by the xoshiro authors.
    std::uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9E3779B97F4A7C15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      s = z ^ (z >> 31);
    }
  }

  std::uint64_t Next() {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, bound).  bound must be nonzero.
  std::uint64_t Below(std::uint64_t bound) { return Next() % bound; }

  // Uniform in [lo, hi] inclusive.
  std::uint64_t Range(std::uint64_t lo, std::uint64_t hi) { return lo + Below(hi - lo + 1); }

  // Uniform in [0, 1).
  double NextDouble() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

  bool Chance(double p) { return NextDouble() < p; }

  // Geometric-ish burst length >= 1 with mean roughly `mean`.
  std::uint64_t BurstLength(double mean) {
    if (mean <= 1.0) {
      return 1;
    }
    const double p = 1.0 / mean;
    std::uint64_t n = 1;
    while (!Chance(p) && n < 1000000) {
      ++n;
    }
    return n;
  }

 private:
  static std::uint64_t Rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  std::uint64_t state_[4] = {};
};

}  // namespace cpt

#endif  // CPT_COMMON_RNG_H_
