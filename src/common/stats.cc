#include "common/stats.h"

#include <sstream>

namespace cpt {

std::string Histogram::ToString() const {
  std::ostringstream os;
  for (std::size_t v = 0; v < counts_.size(); ++v) {
    if (counts_[v] != 0) {
      os << v << ":" << counts_[v] << " ";
    }
  }
  if (overflow_ != 0) {
    os << ">=" << max_buckets_ << ":" << overflow_ << " ";
  }
  return os.str();
}

std::string FormatBytes(std::uint64_t bytes) {
  std::ostringstream os;
  if (bytes >= 1024 * 1024) {
    os << (bytes + 512 * 1024) / (1024 * 1024) << "MB";
  } else if (bytes >= 1024) {
    os << (bytes + 512) / 1024 << "KB";
  } else {
    os << bytes << "B";
  }
  return os.str();
}

}  // namespace cpt
