#include "common/stats.h"

#include <sstream>

namespace cpt {

void RunningStats::Merge(const RunningStats& other) {
  if (other.n_ == 0) {
    return;
  }
  if (n_ == 0) {
    *this = other;
    return;
  }
  const std::uint64_t n_combined = n_ + other.n_;
  const double delta = other.mean_ - mean_;
  // Chan et al.'s pairwise combine: the cross term scales by the product of
  // the two counts over the combined count, which degrades gracefully when
  // one side dominates.
  mean_ += delta * (static_cast<double>(other.n_) /
                    static_cast<double>(n_combined));
  m2_ += other.m2_ + delta * delta *
                         (static_cast<double>(n_) *
                          static_cast<double>(other.n_) /
                          static_cast<double>(n_combined));
  n_ = n_combined;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void Histogram::Merge(const Histogram& other) {
  if (other.total_ == 0) {
    return;
  }
  total_ += other.total_;
  overflow_ += other.overflow_;
  overflow_sum_ += other.overflow_sum_;
  max_seen_ = std::max(max_seen_, other.max_seen_);
  for (std::size_t v = 0; v < other.counts_.size(); ++v) {
    if (other.counts_[v] == 0) {
      continue;
    }
    if (v >= max_buckets_) {
      // The other histogram had room for this value; this one clamps it.
      overflow_ += other.counts_[v];
      overflow_sum_ += static_cast<std::uint64_t>(v) * other.counts_[v];
      continue;
    }
    if (v >= counts_.size()) {
      counts_.resize(v + 1, 0);
    }
    counts_[v] += other.counts_[v];
  }
}

std::string Histogram::ToString() const {
  std::ostringstream os;
  for (std::size_t v = 0; v < counts_.size(); ++v) {
    if (counts_[v] != 0) {
      os << v << ":" << counts_[v] << " ";
    }
  }
  if (overflow_ != 0) {
    os << ">=" << max_buckets_ << ":" << overflow_ << " ";
  }
  return os.str();
}

std::string FormatBytes(std::uint64_t bytes) {
  std::ostringstream os;
  if (bytes >= 1024 * 1024) {
    os << (bytes + 512 * 1024) / (1024 * 1024) << "MB";
  } else if (bytes >= 1024) {
    os << (bytes + 512) / 1024 << "KB";
  } else {
    os << bytes << "B";
  }
  return os.str();
}

}  // namespace cpt
