// Runtime allocation guard for the steady-state replay loop.
//
// cpt::HotPathScope is the dynamic half of the hot-path discipline whose
// static half is cpt_lint.py's hot-no-alloc rule (see common/hotpath.h and
// DESIGN.md "Hot-path discipline").  While a scope is live on a thread,
// any heap allocation on that thread — operator new, new[], their aligned
// and nothrow variants — is a hard CPT_CHECK-style failure naming the
// scope's site string.  The static rule proves no *reachable statement*
// allocates; the scope proves no *executed* allocation happened on a real
// replay, catching what the heuristic call graph cannot see (indirect
// calls through std function objects, resize hiding inside a library
// call, a path the lint boundary pruned too generously).
//
// Mechanism: linking this translation unit (pulled in automatically by
// any binary that constructs a HotPathScope) replaces the global operator
// new/delete family with malloc/free forwarders that consult a
// thread-local depth counter.  Outside any scope the forwarders are a
// single thread-local load on top of malloc; sanitizers still intercept
// the underlying malloc/free, so ASan/LSan/TSan coverage is unchanged.
//
// The guard compiles to a no-op under NDEBUG or -DCPT_NO_HOTGUARD (this
// repo strips NDEBUG on purpose — see common/check.h — so in practice it
// is always armed).  Scopes nest; the guard trips while any is live.
//
// Usage:
//   cpt::HotPathScope guard("bench_micro.machine_access");
//   for (...) machine.Access(...);   // aborts loudly if anything allocates
#ifndef CPT_COMMON_HOTGUARD_H_
#define CPT_COMMON_HOTGUARD_H_

namespace cpt {

class HotPathScope {
 public:
  // `site` must outlive the scope (string literals in practice); it names
  // the guarded region in the failure message.
  explicit HotPathScope(const char* site);
  ~HotPathScope();

  HotPathScope(const HotPathScope&) = delete;
  HotPathScope& operator=(const HotPathScope&) = delete;

  // True when a scope is live on the calling thread (test introspection).
  static bool ActiveOnThisThread();

 private:
  const char* site_;
};

}  // namespace cpt

#endif  // CPT_COMMON_HOTGUARD_H_
