// Thread-safety contract layer: annotated lock wrappers and atomic cells.
//
// The simulator's measurement loops are single-threaded, but ROADMAP item 1
// (parallel trace replay) and the Section 3.1 lock-free R/M-bit maintenance
// need a small set of concurrency primitives whose locking discipline is
// machine-checked rather than tribal knowledge:
//
//   - Under Clang, every wrapper below carries Thread Safety Analysis
//     capability attributes, so `-Wthread-safety -Werror` (CI's clang job)
//     rejects code that touches a CPT_GUARDED_BY member without holding its
//     mutex.  Under other compilers the attributes expand to nothing.
//   - Under every compiler, debug builds CPT_DCHECK dynamic misuse the
//     static analysis cannot see: unlocking a mutex that is not held, or
//     destroying one while it is locked.
//   - tools/cpt_lint.py closes the loop: `raw-sync-primitive` keeps bare
//     std::mutex/std::lock_guard/std::thread/pthread out of the tree (this
//     header is the one sanctioned home), `guarded-by-coverage` forces
//     mutable members of CPT_SHARED classes to be guarded, atomic, or const,
//     and `atomic-discipline` demands a justification comment next to every
//     explicit memory_order argument.
//
// Every lock is also a telemetry source: cheap always-on counters record
// acquisitions and contended acquisitions (detected try-lock-first), and the
// CPT_CONTENTION_TIMING environment flag opts into per-lock wait-time
// histograms.  src/obs/contention.h aggregates them into named sites; the
// counters themselves live here so common/ stays dependency-free.
//
// See DESIGN.md "Concurrency contracts" and "Concurrency observability" for
// the annotation conventions and the memory-order policy.
#ifndef CPT_COMMON_SYNC_H_
#define CPT_COMMON_SYNC_H_

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/hotpath.h"

// ---------------------------------------------------------------------------
// Clang Thread Safety Analysis attribute macros (no-ops elsewhere).
// ---------------------------------------------------------------------------

#if defined(__clang__)
#define CPT_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define CPT_THREAD_ANNOTATION(x)
#endif

// A lockable type (a capability in TSA terms).
#define CPT_LOCKABLE CPT_THREAD_ANNOTATION(capability("mutex"))
// An RAII type that acquires in its constructor and releases in its
// destructor.
#define CPT_SCOPED_LOCKABLE CPT_THREAD_ANNOTATION(scoped_lockable)
// Data member: reads/writes require holding the named mutex.
#define CPT_GUARDED_BY(x) CPT_THREAD_ANNOTATION(guarded_by(x))
// Pointer member: the pointee (not the pointer) is guarded.
#define CPT_PT_GUARDED_BY(x) CPT_THREAD_ANNOTATION(pt_guarded_by(x))
// Function: caller must hold the listed mutexes (exclusive / shared).
#define CPT_REQUIRES(...) CPT_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define CPT_REQUIRES_SHARED(...) \
  CPT_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
// Function: acquires / releases the listed mutexes.
#define CPT_ACQUIRE(...) CPT_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define CPT_ACQUIRE_SHARED(...) \
  CPT_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define CPT_RELEASE(...) CPT_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define CPT_RELEASE_SHARED(...) \
  CPT_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define CPT_TRY_ACQUIRE(...) CPT_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
// Function: caller must NOT hold the listed mutexes (deadlock prevention).
#define CPT_EXCLUDES(...) CPT_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
// Escape hatch for code the analysis cannot model (dynamic lock sets).
#define CPT_NO_THREAD_SAFETY_ANALYSIS CPT_THREAD_ANNOTATION(no_thread_safety_analysis)

// Marks a class whose instances are part of the concurrency contract: they
// may be reached from more than one thread, so every mutable data member
// must be CPT_GUARDED_BY a mutex, an atomic cell, or const.  The marker
// itself compiles to nothing; tools/cpt_lint.py's `guarded-by-coverage`
// rule keys on the token and enforces the member discipline.
#define CPT_SHARED

namespace cpt {

// ---------------------------------------------------------------------------
// Copyable atomic cell.
// ---------------------------------------------------------------------------

// std::atomic<T> with two deliberate differences: every access names its
// memory order in the method name (so call sites read as their ordering
// contract), and the cell is copyable so it can live inside the simulator's
// node/bucket containers.  Copying is NOT an atomic operation — it exists
// solely for single-threaded structural phases (vector growth, table
// construction, audit snapshots); concurrent phases must never copy cells.
template <class T>
class AtomicCell {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  constexpr AtomicCell() = default;
  explicit constexpr AtomicCell(T v) : v_(v) {}

  // relaxed: structural copy, only legal while no other thread accesses
  // either cell (see the class comment).
  AtomicCell(const AtomicCell& other) : v_(other.v_.load(std::memory_order_relaxed)) {}
  AtomicCell& operator=(const AtomicCell& other) {
    // relaxed: structural copy (single-threaded phases only; class comment).
    v_.store(other.v_.load(std::memory_order_relaxed), std::memory_order_relaxed);
    return *this;
  }

  // relaxed: for counters and flags where only the value, not the ordering
  // of surrounding writes, matters to the reader.
  T load_relaxed() const { return v_.load(std::memory_order_relaxed); }
  // acquire: pairs with store_release publication of data written before it.
  T load_acquire() const { return v_.load(std::memory_order_acquire); }
  // relaxed: see load_relaxed.
  void store_relaxed(T v) { v_.store(v, std::memory_order_relaxed); }
  // release: publishes every write sequenced before it to acquire loaders.
  void store_release(T v) { v_.store(v, std::memory_order_release); }

  T fetch_add_relaxed(T delta)
    requires std::is_integral_v<T>
  {
    // relaxed: statistics counter increment; readers only need the total.
    return v_.fetch_add(delta, std::memory_order_relaxed);
  }

  T fetch_sub_relaxed(T delta)
    requires std::is_integral_v<T>
  {
    // relaxed: statistics counter decrement; see fetch_add_relaxed.
    return v_.fetch_sub(delta, std::memory_order_relaxed);
  }

 private:
  std::atomic<T> v_{};
};

// ---------------------------------------------------------------------------
// Contention telemetry plumbing.
// ---------------------------------------------------------------------------

// Process-wide switch for the opt-in wait-time histograms.  Resolved from
// the CPT_CONTENTION_TIMING environment variable on first query (any
// non-empty value other than "0" enables) and cached.  Locks snapshot the
// switch at construction, so flipping it mid-run only affects locks created
// afterwards — which is exactly what a test wants and what a bench never
// does.
bool ContentionTimingEnabled();
// Test hook: overrides the cached switch for locks constructed after the
// call.  Not thread-safe against concurrent lock construction.
void SetContentionTimingForTest(bool enabled);

// Wait-time histogram for contended acquisitions, log2(ns) buckets: bucket 0
// counts zero-duration waits, bucket i counts waits with bit_width(ns) == i,
// the last bucket absorbs everything from ~2s up.  Fixed-size and atomic so
// Record() is wait-free and the struct needs no lock of its own.
// Cache-aligned: the histogram is hammered from every contended waiter, and
// without the alignment its first bucket would share a line with whatever
// the allocator placed in front of it.
struct CPT_CACHE_ALIGNED WaitHistogram {
  static constexpr std::size_t kBuckets = 32;

  AtomicCell<std::uint64_t> counts[kBuckets];
  AtomicCell<std::uint64_t> total_ns;

  void Record(std::uint64_t ns) {
    const std::size_t b =
        std::min<std::size_t>(static_cast<std::size_t>(std::bit_width(ns)), kBuckets - 1);
    counts[b].fetch_add_relaxed(1);
    total_ns.fetch_add_relaxed(ns);
  }

  std::uint64_t total_count() const {
    std::uint64_t n = 0;
    for (const auto& c : counts) {
      n += c.load_relaxed();
    }
    return n;
  }
};

namespace internal {

// Monotonic nanosecond read for wait timing.  common/ sits below obs/, so
// the shared timing layer (obs/timer.h) is unreachable from here without an
// upward dependency; this is the one sanctioned raw clock read outside obs/,
// and it is only ever executed on the already-slow contended path with
// CPT_CONTENTION_TIMING set.
inline std::uint64_t WaitClockNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now()  // cpt-lint: allow(timing-discipline)
              .time_since_epoch())
          .count());
}

}  // namespace internal

// ---------------------------------------------------------------------------
// Annotated lock wrappers.
// ---------------------------------------------------------------------------

// std::mutex with TSA capability attributes plus debug-build misuse checks.
// The wrapped primitive is deliberately not exposed: locking goes through
// the annotated methods (usually via MutexLock) so the analysis sees every
// acquire/release pair.
//
// Telemetry: lock() runs try-lock-first, so `acquisitions` counts every
// exclusive acquisition exactly while `contended` counts the subset that
// found the mutex held and had to block.  (std::mutex::try_lock may fail
// spuriously, so `contended` is a close approximation, not an oracle —
// treat it as a heat signal, never assert exact values on it.)  When the
// lock was constructed with contention timing enabled, contended waits are
// additionally timed into a WaitHistogram.
//
// Cache-aligned: stripe sets and lock arrays place Mutexes back to back,
// and each one mixes the kernel futex word with write-hot telemetry
// counters — unaligned, two neighboring stripes would ping-pong one line
// between cores and the stripe partitioning would buy nothing.
class CPT_CACHE_ALIGNED CPT_LOCKABLE Mutex {
 public:
  Mutex()
      : wait_histo_(ContentionTimingEnabled() ? std::make_unique<WaitHistogram>() : nullptr) {}
  // relaxed: destruction racing any lock op is already a use-after-free.
  ~Mutex() { CPT_DCHECK(!held_.load(std::memory_order_relaxed), "Mutex destroyed while held"); }
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() CPT_ACQUIRE() {
    if (!mu_.try_lock()) {
      contended_.fetch_add_relaxed(1);
      if (wait_histo_ != nullptr) {
        const std::uint64_t t0 = internal::WaitClockNs();
        mu_.lock();
        wait_histo_->Record(internal::WaitClockNs() - t0);
      } else {
        mu_.lock();
      }
    }
    acquisitions_.fetch_add_relaxed(1);
    // relaxed: held_ is only read/written by the lock holder (and by the
    // destructor/DCHECKs, which race only when the program is already wrong).
    held_.store(true, std::memory_order_relaxed);
  }

  void unlock() CPT_RELEASE() {
    // relaxed: see lock(); the flag is diagnostic state owned by the holder.
    CPT_DCHECK(held_.load(std::memory_order_relaxed), "unlock of a Mutex not held");
    held_.store(false, std::memory_order_relaxed);
    mu_.unlock();
  }

  bool try_lock() CPT_TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) {
      return false;
    }
    acquisitions_.fetch_add_relaxed(1);
    // relaxed: see lock().
    held_.store(true, std::memory_order_relaxed);
    return true;
  }

  // --- telemetry (readable at any time; counters are relaxed) ---
  // Total successful exclusive acquisitions (lock() + successful try_lock()).
  std::uint64_t acquisitions() const { return acquisitions_.load_relaxed(); }
  // Acquisitions that found the mutex held and blocked.
  std::uint64_t contended() const { return contended_.load_relaxed(); }
  // Non-null iff this lock was constructed with contention timing enabled.
  const WaitHistogram* wait_histogram() const { return wait_histo_.get(); }

 private:
  std::mutex mu_;
  std::atomic<bool> held_{false};
  AtomicCell<std::uint64_t> acquisitions_;
  AtomicCell<std::uint64_t> contended_;
  std::unique_ptr<WaitHistogram> wait_histo_;
};

// Adjacent Mutexes (StripeSet arrays) must start on distinct
// destructive-interference lines; cross-checked against the layout ledger.
static_assert(alignof(Mutex) == CPT_CACHE_LINE);
static_assert(sizeof(Mutex) % CPT_CACHE_LINE == 0);

// std::shared_mutex with TSA attributes: exclusive lock for writers, shared
// lock for concurrent readers.  Misuse checks mirror Mutex; the reader count
// additionally catches destroy-while-readers-active.  Telemetry mirrors
// Mutex with separate exclusive/shared counter pairs; one WaitHistogram
// covers both flavors of contended wait (per-flavor split was not worth a
// second 33-word array per lock).  Cache-aligned for the same reason as
// Mutex: the primitive and its telemetry live on the lock's own lines.
class CPT_CACHE_ALIGNED CPT_LOCKABLE SharedMutex {
 public:
  SharedMutex()
      : wait_histo_(ContentionTimingEnabled() ? std::make_unique<WaitHistogram>() : nullptr) {}
  ~SharedMutex() {
    // relaxed: destruction racing any lock op is already a use-after-free.
    CPT_DCHECK(!held_.load(std::memory_order_relaxed), "SharedMutex destroyed while held");
    CPT_DCHECK(readers_.load(std::memory_order_relaxed) == 0,
               "SharedMutex destroyed with active readers");
  }
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() CPT_ACQUIRE() {
    if (!mu_.try_lock()) {
      contended_.fetch_add_relaxed(1);
      if (wait_histo_ != nullptr) {
        const std::uint64_t t0 = internal::WaitClockNs();
        mu_.lock();
        wait_histo_->Record(internal::WaitClockNs() - t0);
      } else {
        mu_.lock();
      }
    }
    acquisitions_.fetch_add_relaxed(1);
    // relaxed: held_ is diagnostic state owned by the exclusive holder.
    held_.store(true, std::memory_order_relaxed);
  }

  void unlock() CPT_RELEASE() {
    // relaxed: see lock().
    CPT_DCHECK(held_.load(std::memory_order_relaxed), "unlock of a SharedMutex not held");
    held_.store(false, std::memory_order_relaxed);
    mu_.unlock();
  }

  void lock_shared() CPT_ACQUIRE_SHARED() {
    if (!mu_.try_lock_shared()) {
      shared_contended_.fetch_add_relaxed(1);
      if (wait_histo_ != nullptr) {
        const std::uint64_t t0 = internal::WaitClockNs();
        mu_.lock_shared();
        wait_histo_->Record(internal::WaitClockNs() - t0);
      } else {
        mu_.lock_shared();
      }
    }
    shared_acquisitions_.fetch_add_relaxed(1);
    // relaxed: the counter is diagnostic; the shared_mutex provides ordering.
    readers_.fetch_add(1, std::memory_order_relaxed);
  }

  void unlock_shared() CPT_RELEASE_SHARED() {
    // relaxed: see lock_shared().
    CPT_DCHECK(readers_.load(std::memory_order_relaxed) > 0,
               "unlock_shared of a SharedMutex with no readers");
    // relaxed: diagnostic counter; the shared_mutex provides the ordering.
    readers_.fetch_sub(1, std::memory_order_relaxed);
    mu_.unlock_shared();
  }

  // --- telemetry (readable at any time; counters are relaxed) ---
  std::uint64_t acquisitions() const { return acquisitions_.load_relaxed(); }
  std::uint64_t contended() const { return contended_.load_relaxed(); }
  std::uint64_t shared_acquisitions() const { return shared_acquisitions_.load_relaxed(); }
  std::uint64_t shared_contended() const { return shared_contended_.load_relaxed(); }
  const WaitHistogram* wait_histogram() const { return wait_histo_.get(); }

 private:
  std::shared_mutex mu_;
  std::atomic<bool> held_{false};
  std::atomic<int> readers_{0};
  AtomicCell<std::uint64_t> acquisitions_;
  AtomicCell<std::uint64_t> contended_;
  AtomicCell<std::uint64_t> shared_acquisitions_;
  AtomicCell<std::uint64_t> shared_contended_;
  std::unique_ptr<WaitHistogram> wait_histo_;
};

static_assert(alignof(SharedMutex) == CPT_CACHE_LINE);
static_assert(alignof(WaitHistogram) == CPT_CACHE_LINE);

// Scoped exclusive lock (the only idiomatic way to take a cpt::Mutex).
class CPT_SCOPED_LOCKABLE MutexLock {
 public:
  explicit MutexLock(Mutex& mu) CPT_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() CPT_RELEASE() { mu_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

// Scoped shared (reader) lock over a SharedMutex.
class CPT_SCOPED_LOCKABLE SharedMutexLock {
 public:
  explicit SharedMutexLock(SharedMutex& mu) CPT_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.lock_shared();
  }
  ~SharedMutexLock() CPT_RELEASE() { mu_.unlock_shared(); }
  SharedMutexLock(const SharedMutexLock&) = delete;
  SharedMutexLock& operator=(const SharedMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

// ---------------------------------------------------------------------------
// Lock striping.
// ---------------------------------------------------------------------------

// A power-of-two array of mutexes for striped locking over a hash space.
// The stripe for a key is picked by masking its hash, so two keys contend
// only when they collide mod `count`.  TSA cannot statically name a
// dynamically selected stripe; callers take the returned Mutex through
// MutexLock, and the containing class documents the stripe discipline (see
// pt::HashedPageTable for the pattern).
//
// Each stripe carries the Mutex telemetry above; stripe(i) exposes them for
// per-stripe heat maps (obs/contention.h renders the breakdown).
class StripeSet {
 public:
  // count == 0 builds an empty set (striping disabled).
  explicit StripeSet(unsigned count)
      : count_(count), stripes_(count > 0 ? std::make_unique<Mutex[]>(count) : nullptr) {
    CPT_CHECK(count == 0 || (count & (count - 1)) == 0,
              "stripe count must be zero or a power of two");
  }

  bool empty() const { return count_ == 0; }
  unsigned count() const { return count_; }

  // The stripe owning `hash`.  Only valid on a non-empty set.
  Mutex& StripeFor(std::uint64_t hash) const {
    CPT_DCHECK(count_ > 0, "StripeFor on an empty StripeSet");
    return stripes_[hash & (count_ - 1)];
  }

  // The index StripeFor would pick (for telemetry labels and tests).
  unsigned IndexFor(std::uint64_t hash) const {
    CPT_DCHECK(count_ > 0, "IndexFor on an empty StripeSet");
    return static_cast<unsigned>(hash & (count_ - 1));
  }

  // Read-only access to stripe `i`'s telemetry counters.
  const Mutex& stripe(unsigned i) const {
    CPT_DCHECK(i < count_, "stripe index out of range");
    return stripes_[i];
  }

  // Sum of per-stripe exclusive acquisitions (lock-free snapshot; exact once
  // all writers have quiesced).
  std::uint64_t total_acquisitions() const {
    std::uint64_t n = 0;
    for (unsigned i = 0; i < count_; ++i) {
      n += stripes_[i].acquisitions();
    }
    return n;
  }

  // Sum of per-stripe contended acquisitions (approximate; see Mutex).
  std::uint64_t total_contended() const {
    std::uint64_t n = 0;
    for (unsigned i = 0; i < count_; ++i) {
      n += stripes_[i].contended();
    }
    return n;
  }

 private:
  unsigned count_;
  std::unique_ptr<Mutex[]> stripes_;
};

// ---------------------------------------------------------------------------
// Thread group.
// ---------------------------------------------------------------------------

// The sanctioned home for std::thread (the raw-sync-primitive lint rule bans
// it elsewhere in src/ and bench/): a join-on-destruction worker group, so
// thread lifetimes are scoped to an object and detached threads cannot
// exist.  Threads are joined in spawn order.
class ThreadGroup {
 public:
  ThreadGroup() = default;
  ~ThreadGroup() { JoinAll(); }
  ThreadGroup(const ThreadGroup&) = delete;
  ThreadGroup& operator=(const ThreadGroup&) = delete;

  template <class Fn, class... Args>
  void Spawn(Fn&& fn, Args&&... args) {
    threads_.emplace_back(std::forward<Fn>(fn), std::forward<Args>(args)...);
  }

  std::size_t size() const { return threads_.size(); }

  void JoinAll() {
    for (std::thread& t : threads_) {
      if (t.joinable()) {
        t.join();
      }
    }
    threads_.clear();
  }

 private:
  std::vector<std::thread> threads_;
};

}  // namespace cpt

#endif  // CPT_COMMON_SYNC_H_
