#include "common/sync.h"

#include <cstdlib>

namespace cpt {
namespace {

// Tri-state cache for the CPT_CONTENTION_TIMING switch: -1 unresolved,
// 0 off, 1 on.  Function-local so header-only users of sync.h share one
// instance through this translation unit.
AtomicCell<int>& TimingState() {
  static AtomicCell<int> state{-1};
  return state;
}

}  // namespace

bool ContentionTimingEnabled() {
  int s = TimingState().load_relaxed();
  if (s < 0) {
    // Racing first queries both read getenv and store the same value, so the
    // relaxed store is benign.
    const char* env = std::getenv("CPT_CONTENTION_TIMING");
    s = (env != nullptr && env[0] != '\0' && !(env[0] == '0' && env[1] == '\0')) ? 1 : 0;
    TimingState().store_relaxed(s);
  }
  return s == 1;
}

void SetContentionTimingForTest(bool enabled) {
  TimingState().store_relaxed(enabled ? 1 : 0);
}

}  // namespace cpt
