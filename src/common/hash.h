// Hash functions for hashed and clustered page tables.
//
// The paper's hash tables index 4096 buckets with a function of the VPN (or
// VPBN for clustered tables).  Real implementations (e.g. UltraSPARC's TSB)
// use simple shift/xor folds; we provide both a fold hash (the default, fast
// and representative) and a stronger mix for property tests that need
// near-uniform bucket distribution.
#ifndef CPT_COMMON_HASH_H_
#define CPT_COMMON_HASH_H_

#include <bit>
#include <cstdint>

#include "common/types.h"

namespace cpt {

// Fibonacci/xor-fold mix of a 64-bit key; full-avalanche.
constexpr std::uint64_t Mix64(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDull;
  x ^= x >> 33;
  x *= 0xC4CEB9FE1A85EC53ull;
  x ^= x >> 33;
  return x;
}

enum class HashKind : std::uint8_t {
  kFold,  // xor-fold of the key halves, like simple TLB-handler hashes
  kMix,   // full 64-bit avalanche mix
};

// Maps a VPN/VPBN (optionally salted with a process/context id) to a bucket
// index in [0, num_buckets).  num_buckets must be a power of two.
class BucketHasher {
 public:
  constexpr BucketHasher(std::uint32_t num_buckets, HashKind kind = HashKind::kMix,
                         std::uint64_t context_salt = 0)
      : mask_(num_buckets - 1), kind_(kind), salt_(context_salt) {}

  // Strong address keys (Vpn for hashed tables, Vpbn for clustered ones)
  // unwrap here: hashing is a sanctioned .raw() boundary.
  template <class Tag>
  constexpr std::uint32_t operator()(TaggedU64<Tag> key) const {
    return (*this)(key.raw());
  }

  constexpr std::uint32_t operator()(std::uint64_t key) const {
    key ^= salt_;
    if (kind_ == HashKind::kMix) {
      return static_cast<std::uint32_t>(Mix64(key) & mask_);
    }
    // Classic xor-fold in bucket-index-width chunks, the style of hash a
    // hand-coded TLB miss handler can afford.  Folding by the index width
    // keeps distinct aligned regions (whose bases differ only above the
    // index bits) from landing on identical bucket ranges.
    const unsigned width = static_cast<unsigned>(std::popcount(mask_));
    std::uint64_t h = 0;
    while (key != 0) {
      h ^= key & mask_;
      key >>= width;
    }
    return static_cast<std::uint32_t>(h & mask_);
  }

  constexpr std::uint32_t num_buckets() const { return static_cast<std::uint32_t>(mask_ + 1); }

 private:
  std::uint64_t mask_;
  HashKind kind_;
  std::uint64_t salt_;
};

}  // namespace cpt

#endif  // CPT_COMMON_HASH_H_
