// Bit-level mapping-word formats from the paper (Figures 1, 6 and 7).
//
// All mapping information fits in one 64-bit word:
//
//   Base page mapping (Figure 1):
//     bit  63      V        valid
//     bits 62..42  PAD      reserved (we carve S out of PAD, below)
//     bits 41..40  S        mapping kind discriminator (Figure 7/8)
//     bits 39..12  PPN      28-bit physical page number (40-bit phys addrs)
//     bits 11..0   ATTR     software/hardware attributes
//
//   Superpage mapping (Figure 6 top):
//     bit  63      V
//     bits 62..59  SZ       log2(page size / base page size), any power of two
//     bits 39..12  PPN      (aligned to the superpage size)
//     bits 11..0   ATTR
//
//   Partial-subblock mapping (Figure 6 bottom, subblock factor 16):
//     bits 63..48  V15..V0  per-base-page valid bit vector
//     bits 39..12  PPN      block-aligned; the low log2(16) PPN bits are
//                           unused because the block is properly placed
//     bits 11..0   ATTR
//
// The S field (named for Subblock/Superpage in Section 5) distinguishes the
// three formats when they co-reside in a clustered page table.  The paper
// does not pin S to a bit position; we place it at bits 41..40, inside PAD,
// where it does not collide with the PSB valid vector (bits 63..48) or the
// superpage SZ field (bits 62..59).
#ifndef CPT_COMMON_PTE_H_
#define CPT_COMMON_PTE_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "common/types.h"

namespace cpt {

// The twelve ATTR bits of Figure 1.  Bits 0..7 mirror common MMU hardware
// attributes; bits 8..11 are software-defined.
struct Attr {
  std::uint16_t bits = 0;  // Only the low 12 bits are meaningful.

  static constexpr std::uint16_t kRead = 1u << 0;
  static constexpr std::uint16_t kWrite = 1u << 1;
  static constexpr std::uint16_t kExecute = 1u << 2;
  static constexpr std::uint16_t kUser = 1u << 3;
  static constexpr std::uint16_t kGlobal = 1u << 4;
  static constexpr std::uint16_t kCacheable = 1u << 5;
  static constexpr std::uint16_t kReferenced = 1u << 6;
  static constexpr std::uint16_t kModified = 1u << 7;
  static constexpr std::uint16_t kSoft0 = 1u << 8;
  static constexpr std::uint16_t kSoft1 = 1u << 9;
  static constexpr std::uint16_t kSoft2 = 1u << 10;
  static constexpr std::uint16_t kSoft3 = 1u << 11;

  static constexpr Attr ReadWrite() { return Attr{kRead | kWrite | kCacheable}; }
  static constexpr Attr ReadOnly() { return Attr{kRead | kCacheable}; }
  static constexpr Attr ReadExec() { return Attr{kRead | kExecute | kCacheable}; }

  constexpr bool test(std::uint16_t flag) const { return (bits & flag) != 0; }
  constexpr Attr with(std::uint16_t flag) const {
    return Attr{static_cast<std::uint16_t>(bits | flag)};
  }
  constexpr Attr without(std::uint16_t flag) const {
    return Attr{static_cast<std::uint16_t>(bits & ~flag)};
  }

  friend constexpr bool operator==(Attr a, Attr b) = default;
};

// Discriminates the three mapping-word formats (the S field of Figure 7).
enum class MappingKind : std::uint8_t {
  kBase = 0,             // One base-page mapping (Figure 1).
  kPartialSubblock = 1,  // Block-aligned PPN + valid bit vector (Figure 6).
  kSuperpage = 2,        // One mapping covering 2^SZ base pages (Figure 6).
};

// One 64-bit mapping word.  Immutable constructors build each format;
// accessors decode it.  Subblock factors above 16 are not representable in
// the partial-subblock format (only 16 valid bits), matching the paper's
// observation that large subblock factors are impractical for PSB PTEs.
class MappingWord {
 public:
  static constexpr unsigned kMaxPsbFactor = 16;

  constexpr MappingWord() = default;

  // An all-zero word: invalid base mapping.
  static constexpr MappingWord Invalid() { return MappingWord(); }

  static constexpr MappingWord Base(Ppn ppn, Attr attr) {
    MappingWord w;
    w.bits_ = kVBit | EncodeCommon(ppn, attr) | EncodeKind(MappingKind::kBase);
    return w;
  }

  static constexpr MappingWord Superpage(Ppn ppn, Attr attr, PageSize size) {
    MappingWord w;
    w.bits_ = kVBit | (std::uint64_t{size.size_log2 & 0xF} << kSzShift) |
              EncodeCommon(ppn, attr) | EncodeKind(MappingKind::kSuperpage);
    return w;
  }

  // `block_ppn` must be aligned to `factor`; `valid_vector` has one bit per
  // base page in the block (low `factor` bits meaningful).
  static constexpr MappingWord PartialSubblock(Ppn block_ppn, Attr attr,
                                               std::uint16_t valid_vector) {
    MappingWord w;
    w.bits_ = (std::uint64_t{valid_vector} << kVecShift) | EncodeCommon(block_ppn, attr) |
              EncodeKind(MappingKind::kPartialSubblock);
    return w;
  }

  // A superpage word with the size encoded but V clear: empty slots of
  // sub-size clustered nodes stay self-describing (the S/SZ fields remain
  // readable even when no mapping is present).
  static constexpr MappingWord InvalidSuperpage(PageSize size) {
    MappingWord w;
    w.bits_ = (std::uint64_t{size.size_log2 & 0xF} << kSzShift) |
              EncodeKind(MappingKind::kSuperpage);
    return w;
  }

  static constexpr MappingWord FromBits(std::uint64_t raw) {
    MappingWord w;
    w.bits_ = raw;
    return w;
  }

  constexpr std::uint64_t bits() const { return bits_; }

  constexpr MappingKind kind() const {
    return static_cast<MappingKind>((bits_ >> kSShift) & 0x3);
  }

  // For base and superpage words: the V bit.  For partial-subblock words:
  // true iff any base page in the block is valid.
  constexpr bool valid() const {
    if (kind() == MappingKind::kPartialSubblock) {
      return valid_vector() != 0;
    }
    return (bits_ & kVBit) != 0;
  }

  constexpr Ppn ppn() const { return Ppn((bits_ >> kPpnShift) & kPpnMask); }

  constexpr Attr attr() const {
    return Attr{static_cast<std::uint16_t>(bits_ & kAttrMask)};
  }

  // Superpage words only: the mapped size.
  constexpr PageSize page_size() const {
    return PageSize{static_cast<unsigned>((bits_ >> kSzShift) & 0xF)};
  }

  // Partial-subblock words only: the 16-bit valid vector.
  constexpr std::uint16_t valid_vector() const {
    return static_cast<std::uint16_t>(bits_ >> kVecShift);
  }

  constexpr bool subpage_valid(unsigned boff) const {
    return (valid_vector() >> boff) & 1u;
  }

  // Physical page of base page `boff` inside a properly-placed block: the
  // block-aligned PPN with the low bits replaced by the block offset.
  constexpr Ppn subpage_ppn(unsigned boff) const { return ppn() + boff; }

  constexpr MappingWord with_subpage_valid(unsigned boff) const {
    MappingWord w = *this;
    w.bits_ |= std::uint64_t{1} << (kVecShift + boff);
    return w;
  }

  constexpr MappingWord without_subpage_valid(unsigned boff) const {
    MappingWord w = *this;
    w.bits_ &= ~(std::uint64_t{1} << (kVecShift + boff));
    return w;
  }

  constexpr MappingWord with_attr(Attr a) const {
    MappingWord w = *this;
    w.bits_ = (w.bits_ & ~kAttrMask) | (a.bits & kAttrMask);
    return w;
  }

  std::string ToString() const;

  friend constexpr bool operator==(MappingWord a, MappingWord b) = default;

 private:
  static constexpr unsigned kPpnShift = 12;
  static constexpr unsigned kSShift = 40;
  static constexpr unsigned kSzShift = 59;
  static constexpr unsigned kVecShift = 48;
  static constexpr std::uint64_t kVBit = std::uint64_t{1} << 63;
  static constexpr std::uint64_t kAttrMask = 0xFFF;

  static constexpr std::uint64_t EncodeCommon(Ppn ppn, Attr attr) {
    // No masking needed: the Ppn type itself guarantees raw() <= kPpnMask
    // (bit-packing is a sanctioned .raw() boundary).
    return (ppn.raw() << kPpnShift) | (attr.bits & kAttrMask);
  }
  static constexpr std::uint64_t EncodeKind(MappingKind k) {
    return std::uint64_t{static_cast<std::uint8_t>(k)} << kSShift;
  }

  std::uint64_t bits_ = 0;
};

static_assert(sizeof(MappingWord) == 8, "mapping information must take 8 bytes");

// Round-trip sanity checks on the bit layout.
static_assert(MappingWord::Base(Ppn{0x123456}, Attr::ReadWrite()).ppn() == Ppn{0x123456});
static_assert(MappingWord::Base(kMaxPpn, Attr{}).ppn() == kMaxPpn);
static_assert(MappingWord::Base(Ppn{1}, Attr{}).kind() == MappingKind::kBase);
static_assert(MappingWord::Superpage(Ppn{0x10}, Attr{}, kPage64K).page_size() == kPage64K);
static_assert(MappingWord::Superpage(Ppn{0x10}, Attr{}, kPage64K).kind() ==
              MappingKind::kSuperpage);
static_assert(MappingWord::PartialSubblock(Ppn{0x20}, Attr{}, 0xBEEF).valid_vector() == 0xBEEF);
static_assert(MappingWord::PartialSubblock(Ppn{0x20}, Attr{}, 0xBEEF).kind() ==
              MappingKind::kPartialSubblock);
static_assert(MappingWord::PartialSubblock(Ppn{0x20}, Attr{}, 0x8001).subpage_ppn(15) ==
              Ppn{0x2F});
static_assert(!MappingWord::Invalid().valid());
static_assert(MappingWord::PartialSubblock(Ppn{0x20}, Attr{}, 0).valid() == false);

// ---------------------------------------------------------------------------
// Atomic PTE storage (Section 3.1).
// ---------------------------------------------------------------------------

// The storage cell for a mapping word that may be touched by more than one
// thread: the paper's Section 3.1 has the TLB miss handler set the
// Referenced/Modified attribute bits "lock-free" while other processors walk
// the same table.  This wrapper makes that real:
//
//   - R/M-bit sets are a single fetch_or on the word (no lock, no CAS);
//   - the rare full-word rewrite that must also CLEAR bits goes through a
//     CAS loop (ApplyAttrUpdate below);
//   - structural writes (insert/remove, done single-threaded or under the
//     owning table's locks) use plain release stores, and walkers read with
//     acquire loads, so a concurrently published word is seen whole.
//
// There are deliberately no implicit conversions to or from MappingWord:
// every access site must choose load() / store() / FetchOrAttr(), which is
// what lets the compiler enumerate the entire R/M-bit path.  Copying is NOT
// atomic — it exists solely for single-threaded structural phases (vector
// growth, node cloning in tests, audit snapshots).
class AtomicMappingWord {
 public:
  constexpr AtomicMappingWord() = default;
  explicit constexpr AtomicMappingWord(MappingWord w) : cell_(w.bits()) {}

  // relaxed: structural copy, only legal while no other thread accesses
  // either cell (see the class comment).
  AtomicMappingWord(const AtomicMappingWord& other)
      : cell_(other.cell_.load(std::memory_order_relaxed)) {}
  AtomicMappingWord& operator=(const AtomicMappingWord& other) {
    // relaxed: structural copy (single-threaded phases only; class comment).
    cell_.store(other.cell_.load(std::memory_order_relaxed), std::memory_order_relaxed);
    return *this;
  }

  // acquire: a walker that observes a word published by store() must also
  // observe every write the publisher sequenced before it.
  MappingWord load() const {
    return MappingWord::FromBits(cell_.load(std::memory_order_acquire));
  }

  // release: publishes the word (and everything written before it) to
  // concurrent acquire loaders.
  void store(MappingWord w) { cell_.store(w.bits(), std::memory_order_release); }

  // Section 3.1 lock-free R/M set: OR the attribute bits into the word in
  // one atomic step.  The mask must stay within the low 12 ATTR bits, so the
  // operation can never corrupt the PPN/kind/valid fields regardless of what
  // the word holds concurrently.
  void FetchOrAttr(std::uint16_t set_mask) {
    CPT_DCHECK((set_mask & ~std::uint16_t{0xFFF}) == 0, "attr mask beyond the 12 ATTR bits");
    // acq_rel: the RMW both observes the latest word and publishes the
    // updated attribute bits to subsequent acquire loaders.
    cell_.fetch_or(std::uint64_t{set_mask}, std::memory_order_acq_rel);
  }

  // CAS step for read-modify-write updates that cannot be expressed as a
  // fetch_or (attribute clears, full-word rewrites).  On failure `expected`
  // is refreshed with the observed word.
  bool CompareExchange(MappingWord& expected, MappingWord desired) {
    std::uint64_t raw = expected.bits();
    // acq_rel / acquire: success publishes the new word; failure still
    // acquires the observed word so the retry sees its payload.
    const bool ok = cell_.compare_exchange_weak(raw, desired.bits(), std::memory_order_acq_rel,
                                                std::memory_order_acquire);
    if (!ok) {
      expected = MappingWord::FromBits(raw);
    }
    return ok;
  }

 private:
  std::atomic<std::uint64_t> cell_{0};
};

// The §3.1 claim only holds if the atomic word really is a bare 64-bit cell:
// no lock table, no size penalty versus the plain word it replaces.
static_assert(std::atomic<std::uint64_t>::is_always_lock_free,
              "PTE words must be lock-free atomics (Section 3.1)");
static_assert(sizeof(AtomicMappingWord) == sizeof(MappingWord),
              "atomic PTE storage must not change the paper's size model");

// Applies an attribute-flag update to one PTE cell: the common set-only case
// (R/M maintenance from the miss handler) is a single lock-free fetch_or;
// updates that clear bits take the CAS path.  Bits outside the 12-bit ATTR
// field are never touched, and a concurrent FetchOrAttr can interleave with
// the CAS loop without losing either update.
inline void ApplyAttrUpdate(AtomicMappingWord& cell, std::uint16_t set_mask,
                            std::uint16_t clear_mask) {
  if (clear_mask == 0) {
    cell.FetchOrAttr(set_mask);
    return;
  }
  MappingWord expected = cell.load();
  for (;;) {
    const auto bits =
        static_cast<std::uint16_t>((expected.attr().bits | set_mask) & ~clear_mask);
    if (cell.CompareExchange(expected, expected.with_attr(Attr{bits}))) {
      return;
    }
  }
}

}  // namespace cpt

#endif  // CPT_COMMON_PTE_H_
