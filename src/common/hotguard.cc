// HotPathScope implementation: thread-local depth counter plus replacement
// global operator new/delete forwarding to malloc/free.  See hotguard.h for
// the contract and the linkage story (this TU is pulled into a binary only
// when something in it constructs a HotPathScope).

#include "common/hotguard.h"

#include <cstdio>
#include <cstdlib>
#include <new>

#if !defined(NDEBUG) && !defined(CPT_NO_HOTGUARD)
#define CPT_HOTGUARD_ARMED 1
#else
#define CPT_HOTGUARD_ARMED 0
#endif

namespace cpt {
namespace {

#if CPT_HOTGUARD_ARMED
// Depth of nested scopes on this thread and the innermost site label.
// Plain thread_local ints: the operator-new replacements below read them
// on every allocation program-wide, so this must stay branch-cheap.
thread_local int g_hot_depth = 0;
thread_local const char* g_hot_site = nullptr;

[[noreturn]] void TripGuard(const char* what) {
  // Mirrors check_internal::CheckFail (deliberately not calling it: this
  // file must not pull more headers into every allocation's icache path),
  // printing the guarded site so the failure is attributable.
  const char* site = g_hot_site != nullptr ? g_hot_site : "<unknown site>";
  std::fprintf(stderr, "HotPathScope violation: %s inside guarded scope \"%s\"\n", what, site);
  std::fflush(stderr);
  // CPT_CHECK would pull check.h (and its formatting) into the allocator's
  // failure path; the raw abort is the point here.
  // cpt-lint: allow(check-macro-hygiene)
  std::abort();
}

void* GuardedAlloc(std::size_t size, const char* what) {
  if (g_hot_depth > 0) {
    TripGuard(what);
  }
  // malloc(0) may return nullptr; operator new must not (for size 0 it
  // returns a unique pointer), so round zero up.
  void* p = std::malloc(size != 0 ? size : 1);
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}

void* GuardedAllocAligned(std::size_t size, std::size_t align, const char* what) {
  if (g_hot_depth > 0) {
    TripGuard(what);
  }
  void* p = nullptr;
  if (posix_memalign(&p, align >= sizeof(void*) ? align : sizeof(void*),
                     size != 0 ? size : 1) != 0) {
    throw std::bad_alloc();
  }
  return p;
}
#endif  // CPT_HOTGUARD_ARMED

}  // namespace

#if CPT_HOTGUARD_ARMED

HotPathScope::HotPathScope(const char* site) : site_(g_hot_site) {
  // site_ saves the enclosing scope's label so nesting restores correctly.
  g_hot_site = site;
  ++g_hot_depth;
}

HotPathScope::~HotPathScope() {
  --g_hot_depth;
  g_hot_site = site_;
}

bool HotPathScope::ActiveOnThisThread() { return g_hot_depth > 0; }

#else  // !CPT_HOTGUARD_ARMED

HotPathScope::HotPathScope(const char* site) : site_(site) {}
HotPathScope::~HotPathScope() = default;
bool HotPathScope::ActiveOnThisThread() { return false; }

#endif  // CPT_HOTGUARD_ARMED

}  // namespace cpt

#if CPT_HOTGUARD_ARMED

// Replacement global allocation functions.  [new.delete.single] requires
// plain operator new to throw on failure and the nothrow variants to return
// nullptr; all forward to malloc/free so sanitizer interceptors still see
// every allocation.
void* operator new(std::size_t size) { return cpt::GuardedAlloc(size, "operator new"); }
void* operator new[](std::size_t size) { return cpt::GuardedAlloc(size, "operator new[]"); }
void* operator new(std::size_t size, std::align_val_t align) {
  return cpt::GuardedAllocAligned(size, static_cast<std::size_t>(align), "operator new");
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return cpt::GuardedAllocAligned(size, static_cast<std::size_t>(align), "operator new[]");
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  if (cpt::g_hot_depth > 0) {
    cpt::TripGuard("operator new(nothrow)");
  }
  return std::malloc(size != 0 ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  if (cpt::g_hot_depth > 0) {
    cpt::TripGuard("operator new[](nothrow)");
  }
  return std::malloc(size != 0 ? size : 1);
}

// Deletes never trip the guard: freeing inside a hot scope is legal (e.g. a
// pre-reserved vector shrinking) and tripping here would turn the guard's
// own failure-path cleanup into a second abort.
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }

#endif  // CPT_HOTGUARD_ARMED
