#include "common/pte.h"

#include <sstream>

namespace cpt {

std::string MappingWord::ToString() const {
  std::ostringstream os;
  switch (kind()) {
    case MappingKind::kBase:
      os << "base{v=" << valid() << " ppn=0x" << std::hex << ppn() << " attr=0x" << attr().bits
         << "}";
      break;
    case MappingKind::kSuperpage:
      os << "super{v=" << valid() << " ppn=0x" << std::hex << ppn() << std::dec
         << " pages=" << page_size().pages() << " attr=0x" << std::hex << attr().bits << "}";
      break;
    case MappingKind::kPartialSubblock:
      os << "psb{vec=0x" << std::hex << valid_vector() << " ppn=0x" << ppn() << " attr=0x"
         << attr().bits << "}";
      break;
  }
  return os.str();
}

}  // namespace cpt
