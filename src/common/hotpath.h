// Hot-path annotations for the per-reference replay loop.
//
// CPT_HOT marks a function as part of the steady-state replay path: the
// code that runs once per simulated memory reference (Machine::Access and
// everything it reaches — TLB probes, counted page-table walks, R/M-bit
// updates, cache-line accounting).  The marker does two jobs:
//
//   1. It is the root set for cpt_lint.py's whole-program hot-path rules
//      (hot-no-alloc / hot-no-throw / hot-lock-discipline, DESIGN.md
//      "Hot-path discipline").  The linter builds a heuristic call graph
//      over src/ and gates everything transitively reachable from a
//      CPT_HOT function, so "this function allocates three calls below a
//      Lookup override" becomes a CI failure instead of a perf mystery.
//   2. Under GCC/Clang it expands to [[gnu::hot]], a mild optimizer and
//      code-layout hint.  The hint is a side benefit; the contract is the
//      point.
//
// CPT_COLD is the complementary pruning marker: a function that a hot
// function may *call* but that is, by design, off the steady-state path
// (the page-fault handler — OS work, excluded from the paper's per-miss
// accounting the same way CacheTouchModel::AbortWalk discards the walk).
// The lint traversal stops at CPT_COLD functions, and [[gnu::cold]] keeps
// their code out of the hot text pages.
//
// Like CPT_SHARED (sync.h), the linter keys on the unexpanded token, so
// the annotations mean the same thing under every compiler.
#ifndef CPT_COMMON_HOTPATH_H_
#define CPT_COMMON_HOTPATH_H_

#if defined(__GNUC__) || defined(__clang__)
#define CPT_HOT [[gnu::hot]]
#define CPT_COLD [[gnu::cold]]
#else
#define CPT_HOT
#define CPT_COLD
#endif

// Host destructive-interference line, in bytes.  64 on every platform the
// gates run on (x86-64 and AArch64 server cores); a plain literal rather
// than std::hardware_destructive_interference_size so the value is visible
// to cpt_lint.py's layout model and stable across libstdc++ versions
// (which may report 128 or warn under -Winterference-size).  Distinct from
// the SIMULATED line size (common/types.h kDefaultCacheLineSize): this one
// shapes real memory traffic between worker threads, that one shapes the
// paper's counted metrics.
#define CPT_CACHE_LINE 64

// Marks a type (or member) whose instances are written by different
// threads — per-stripe locks, per-shard telemetry slots — so adjacent
// elements land on distinct destructive-interference lines instead of
// ping-ponging one line between cores.  The false-sharing lint rule
// demands this on per-stripe/per-shard element types; the layout ledger
// records the resulting size so the cost stays visible.
#define CPT_CACHE_ALIGNED alignas(CPT_CACHE_LINE)

#endif  // CPT_COMMON_HOTPATH_H_
