// Runtime invariant checks for the simulator.
//
// This simulator's results are only meaningful while its structural
// invariants hold, so the cheap checks stay on in every build type
// (CMakeLists strips -DNDEBUG for the same reason):
//
//   CPT_CHECK(cond)            — always on, including Release benches.
//                                Use for constructor/configuration checks and
//                                anything off the per-reference hot path.
//   CPT_CHECK(cond, "msg")     — same, with an explanatory message.
//   CPT_DCHECK(cond [, "msg"]) — compiled out under NDEBUG.  Use on hot
//                                paths (per-access, per-fault) where the
//                                branch itself would show up in benches.
//
// A failed check prints the expression, location, and message to stderr and
// aborts, so sanitizer builds and CI get a deterministic, loud failure
// instead of silently corrupt measurements.
#ifndef CPT_COMMON_CHECK_H_
#define CPT_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace cpt::check_internal {

[[noreturn]] inline void CheckFail(const char* kind, const char* expr, const char* file, int line,
                                   const char* msg = nullptr) {
  std::fprintf(stderr, "%s failed: %s at %s:%d%s%s\n", kind, expr, file, line,
               msg != nullptr ? " — " : "", msg != nullptr ? msg : "");
  std::fflush(stderr);
  std::abort();  // cpt-lint: allow(check-macro-hygiene) — the macros' own failure path
}

}  // namespace cpt::check_internal

#define CPT_CHECK(cond, ...)                                                              \
  (static_cast<bool>(cond)                                                                \
       ? static_cast<void>(0)                                                             \
       : ::cpt::check_internal::CheckFail("CPT_CHECK", #cond, __FILE__, __LINE__,         \
                                          ##__VA_ARGS__))

#ifdef NDEBUG
#define CPT_DCHECK(cond, ...) static_cast<void>(0)
#else
#define CPT_DCHECK(cond, ...)                                                             \
  (static_cast<bool>(cond)                                                                \
       ? static_cast<void>(0)                                                             \
       : ::cpt::check_internal::CheckFail("CPT_DCHECK", #cond, __FILE__, __LINE__,        \
                                          ##__VA_ARGS__))
#endif

#endif  // CPT_COMMON_CHECK_H_
