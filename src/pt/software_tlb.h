// Software TLB (Sections 2 and 7): a memory-resident, set-associative cache
// of recently-used translations between the hardware TLB and the native page
// table — the UltraSPARC TSB / PowerPC page-table style.
//
// Unlike a hashed page table, a software TLB pre-allocates a fixed array of
// entries with no next pointers: a miss handler probe reads exactly one
// entry (one cache line) and either hits or falls through to the backing
// page table, refilling the slot on the way out.  Section 7 notes that a
// software TLB reduces the frequency of page-table accesses, making the
// backing table's flexibility (e.g. clustered range operations) the
// deciding factor.
//
// Two entry formats:
//   - base entries: one VPN tag + one mapping word (16 bytes);
//   - clustered entries: one VPBN tag + `subblock_factor` mapping words —
//     the clustered software TLB of [Tall95], which covers a whole page
//     block per slot and so hits on spatially-local misses.
//
// Implemented as a PageTable decorator: Lookup() probes the array first;
// updates write through to the backing table and invalidate affected slots.
#ifndef CPT_PT_SOFTWARE_TLB_H_
#define CPT_PT_SOFTWARE_TLB_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "check/fwd.h"
#include "common/hash.h"
#include "common/hotpath.h"
#include "mem/sim_alloc.h"
#include "pt/page_table.h"

namespace cpt::pt {

class SoftwareTlb final : public PageTable {
 public:
  struct Options {
    std::uint32_t num_sets = 2048;  // Power of two.
    unsigned ways = 2;              // Associativity.
    // Use clustered (page-block) entries instead of single-page entries.
    bool clustered_entries = false;
    unsigned subblock_factor = kDefaultSubblockFactor;
    HashKind hash_kind = HashKind::kMix;
    mem::NodePlacement placement = mem::NodePlacement::kLineAligned;
  };

  SoftwareTlb(mem::CacheTouchModel& cache, std::unique_ptr<PageTable> backing, Options opts);
  ~SoftwareTlb() override;

  // ---- PageTable interface ----
  [[nodiscard]] CPT_HOT std::optional<TlbFill> Lookup(VirtAddr va) override;
  CPT_HOT void LookupBlock(VirtAddr va, unsigned subblock_factor,
                           std::vector<TlbFill>& out) override;
  void InsertBase(Vpn vpn, Ppn ppn, Attr attr) override;
  bool RemoveBase(Vpn vpn) override;
  PtFeatures features() const override { return backing_->features(); }
  void InsertSuperpage(Vpn base_vpn, PageSize size, Ppn base_ppn, Attr attr) override;
  bool RemoveSuperpage(Vpn base_vpn, PageSize size) override;
  void UpsertPartialSubblock(Vpn block_base_vpn, unsigned subblock_factor, Ppn block_base_ppn,
                             Attr attr, std::uint16_t valid_vector) override;
  bool RemovePartialSubblock(Vpn block_base_vpn, unsigned subblock_factor) override;
  std::uint64_t ProtectRange(Vpn first_vpn, std::uint64_t npages, Attr attr) override;
  std::uint64_t SizeBytesPaperModel() const override;
  std::uint64_t SizeBytesActual() const override;
  std::uint64_t live_translations() const override { return backing_->live_translations(); }
  std::string name() const override;

  PageTable& backing() { return *backing_; }
  const PageTable& backing() const { return *backing_; }
  std::uint64_t probe_hits() const { return hits_; }
  std::uint64_t probe_misses() const { return misses_; }
  double HitRatio() const {
    const std::uint64_t total = hits_ + misses_;
    return total == 0 ? 0.0 : static_cast<double>(hits_) / static_cast<double>(total);
  }
  void FlushCache();

 private:
  friend class check::TestBackdoor;

  struct Entry {
    std::uint64_t key = 0;           // VPN or VPBN.
    bool valid = false;
    std::uint64_t stamp = 0;         // For way replacement.
    std::vector<TlbFill> fills;      // 1 fill (base) or up to s (clustered).
  };
  // Pinned against tools/layout_ledger.json (cpt_lint layout-ledger rule):
  // EntryBytes() charges the paper model, this pins the host struct.
  static_assert(sizeof(Entry) == 48 && alignof(Entry) == 8);

  // Slot keys deliberately erase the domain: one array caches VPN-keyed
  // (base) or VPBN-keyed (clustered) entries depending on configuration, so
  // the tag is a raw word and only this function may produce one.
  std::uint64_t KeyOf(Vpn vpn) const {
    return opts_.clustered_entries ? VpbnOf(vpn, opts_.subblock_factor).raw() : vpn.raw();
  }
  std::uint64_t EntryBytes() const {
    return opts_.clustered_entries ? 8 + 8ull * opts_.subblock_factor : 16;
  }
  Entry* Probe(std::uint64_t key, bool count_touch);
  void Refill(std::uint64_t key, Vpn vpn, const TlbFill& fill);
  void InvalidateKey(std::uint64_t key);
  void InvalidateRange(Vpn first_vpn, std::uint64_t npages);
  PhysAddr SlotAddr(std::uint32_t set, unsigned way) const;

  Options opts_;
  std::unique_ptr<PageTable> backing_;
  BucketHasher hasher_;
  mem::SimAllocator alloc_;
  PhysAddr array_base_{};
  std::uint64_t slot_stride_ = 0;
  std::vector<Entry> entries_;  // num_sets * ways.
  std::uint64_t clock_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace cpt::pt

#endif  // CPT_PT_SOFTWARE_TLB_H_
