#include "pt/software_tlb.h"

#include <bit>
#include "common/check.h"

namespace cpt::pt {

SoftwareTlb::SoftwareTlb(mem::CacheTouchModel& cache, std::unique_ptr<PageTable> backing,
                         Options opts)
    : PageTable(cache),
      opts_(opts),
      backing_(std::move(backing)),
      hasher_(opts.num_sets, opts.hash_kind),
      alloc_(cache.line_size(), opts.placement) {
  CPT_CHECK(IsPowerOfTwo(opts.num_sets) && opts.ways >= 1);
  CPT_CHECK(backing_ != nullptr);
  slot_stride_ = std::bit_ceil(EntryBytes());
  array_base_ =
      alloc_.Allocate(std::uint64_t{opts_.num_sets} * opts_.ways * slot_stride_);
  entries_.resize(std::size_t{opts_.num_sets} * opts_.ways);
}

SoftwareTlb::~SoftwareTlb() = default;

PhysAddr SoftwareTlb::SlotAddr(std::uint32_t set, unsigned way) const {
  return array_base_ + (std::uint64_t{set} * opts_.ways + way) * slot_stride_;
}

SoftwareTlb::Entry* SoftwareTlb::Probe(std::uint64_t key, bool count_touch) {
  const std::uint32_t set = hasher_(key);
  for (unsigned way = 0; way < opts_.ways; ++way) {
    Entry& e = entries_[std::size_t{set} * opts_.ways + way];
    if (count_touch) {
      // The handler reads each way's tag (and the mapping on a match); the
      // whole slot fits the line-aligned stride.
      cache_.Touch(SlotAddr(set, way), EntryBytes());
    }
    if (e.valid && e.key == key) {
      e.stamp = ++clock_;
      return &e;
    }
  }
  return nullptr;
}

std::optional<TlbFill> SoftwareTlb::Lookup(VirtAddr va) {
  const Vpn vpn = VpnOf(va);
  const std::uint64_t key = KeyOf(vpn);
  obs::WalkTracer* const tracer = cache_.tracer();
  if (Entry* e = Probe(key, /*count_touch=*/true)) {
    for (const TlbFill& fill : e->fills) {
      if (fill.Covers(vpn)) {
        ++hits_;
        if (tracer != nullptr) {
          tracer->Record({.kind = obs::EventKind::kSwTlbHit, .vpn = vpn});
          // A TSB hit resolves the walk without reaching the backing table;
          // step 0 distinguishes it from any real chain position.
          tracer->Record({.kind = obs::EventKind::kWalkHit,
                          .vpn = vpn,
                          .step = 0,
                          .value = obs::EncodeWalkHitClass(obs::WalkHitClass::kSwTlb,
                                                           fill.pages_log2)});
        }
        return fill;
      }
    }
    // The slot caches the key but not this page (e.g. a clustered entry
    // whose block gained a page since the refill): fall through.
  }
  ++misses_;
  if (tracer != nullptr) {
    tracer->Record({.kind = obs::EventKind::kSwTlbMiss, .vpn = vpn});
  }
  // Miss: consult the backing page table (full walk cost) and refill.
  auto fill = backing_->Lookup(va);
  if (fill.has_value()) {
    Refill(key, vpn, *fill);
  }
  return fill;
}

void SoftwareTlb::Refill(std::uint64_t key, Vpn vpn, const TlbFill& fill) {
  const std::uint32_t set = hasher_(key);
  // Pick an invalid or LRU way.
  Entry* victim = &entries_[std::size_t{set} * opts_.ways];
  for (unsigned way = 0; way < opts_.ways; ++way) {
    Entry& e = entries_[std::size_t{set} * opts_.ways + way];
    if (!e.valid) {
      victim = &e;
      break;
    }
    if (e.stamp < victim->stamp) {
      victim = &e;
    }
  }
  victim->key = key;
  victim->valid = true;
  victim->stamp = ++clock_;
  victim->fills.clear();
  // No-op once the entry has refilled before: clear() keeps capacity, so
  // steady-state refills recycle it (hot-no-alloc discipline).
  victim->fills.reserve(opts_.clustered_entries ? opts_.subblock_factor : 1);
  if (opts_.clustered_entries) {
    // Cache every mapping of the page block, like a clustered PTE slot.
    // For backing tables with adjacent PTEs this costs no extra lines; for
    // a hashed backing it pays the multiple-probe price once per refill.
    backing_->LookupBlock(VaOf(vpn), opts_.subblock_factor, victim->fills);
    if (victim->fills.empty()) {
      victim->fills.push_back(fill);
    }
  } else {
    victim->fills.push_back(fill);
  }
}

void SoftwareTlb::InvalidateKey(std::uint64_t key) {
  if (Entry* e = Probe(key, /*count_touch=*/false)) {
    e->valid = false;
  }
}

void SoftwareTlb::InvalidateRange(Vpn first_vpn, std::uint64_t npages) {
  if (npages == 0) {
    return;
  }
  const std::uint64_t first_key = KeyOf(first_vpn);
  const std::uint64_t last_key = KeyOf(first_vpn + npages - 1);
  for (std::uint64_t key = first_key; key <= last_key; ++key) {
    InvalidateKey(key);
  }
}

void SoftwareTlb::LookupBlock(VirtAddr va, unsigned subblock_factor,
                              std::vector<TlbFill>& out) {
  // Complete-subblock prefetch goes straight to the backing table; caching
  // policy is orthogonal to block fetches.
  backing_->LookupBlock(va, subblock_factor, out);
}

void SoftwareTlb::InsertBase(Vpn vpn, Ppn ppn, Attr attr) {
  backing_->InsertBase(vpn, ppn, attr);
  InvalidateKey(KeyOf(vpn));
}

bool SoftwareTlb::RemoveBase(Vpn vpn) {
  InvalidateKey(KeyOf(vpn));
  return backing_->RemoveBase(vpn);
}

void SoftwareTlb::InsertSuperpage(Vpn base_vpn, PageSize size, Ppn base_ppn, Attr attr) {
  backing_->InsertSuperpage(base_vpn, size, base_ppn, attr);
  InvalidateRange(base_vpn, size.pages());
}

bool SoftwareTlb::RemoveSuperpage(Vpn base_vpn, PageSize size) {
  InvalidateRange(base_vpn, size.pages());
  return backing_->RemoveSuperpage(base_vpn, size);
}

void SoftwareTlb::UpsertPartialSubblock(Vpn block_base_vpn, unsigned subblock_factor,
                                        Ppn block_base_ppn, Attr attr,
                                        std::uint16_t valid_vector) {
  backing_->UpsertPartialSubblock(block_base_vpn, subblock_factor, block_base_ppn, attr,
                                  valid_vector);
  InvalidateRange(block_base_vpn, subblock_factor);
}

bool SoftwareTlb::RemovePartialSubblock(Vpn block_base_vpn, unsigned subblock_factor) {
  InvalidateRange(block_base_vpn, subblock_factor);
  return backing_->RemovePartialSubblock(block_base_vpn, subblock_factor);
}

std::uint64_t SoftwareTlb::ProtectRange(Vpn first_vpn, std::uint64_t npages, Attr attr) {
  InvalidateRange(first_vpn, npages);
  return backing_->ProtectRange(first_vpn, npages, attr);
}

std::uint64_t SoftwareTlb::SizeBytesPaperModel() const {
  // The pre-allocated array is real memory the design commits to, unlike a
  // chained table's demand-allocated nodes.
  return std::uint64_t{opts_.num_sets} * opts_.ways * EntryBytes() +
         backing_->SizeBytesPaperModel();
}

std::uint64_t SoftwareTlb::SizeBytesActual() const {
  return alloc_.bytes_live() + backing_->SizeBytesActual();
}

std::string SoftwareTlb::name() const {
  return std::string(opts_.clustered_entries ? "swtlb-clustered+" : "swtlb+") +
         backing_->name();
}

void SoftwareTlb::FlushCache() {
  for (Entry& e : entries_) {
    e.valid = false;
  }
  hits_ = 0;
  misses_ = 0;
}

}  // namespace cpt::pt
