#include "pt/hashed.h"

#include <bit>

#include "check/audit_visitor.h"
#include "common/check.h"
#include "common/stats.h"

namespace cpt::pt {

namespace {

// How many base-page translations one mapping word provides.
std::uint64_t TranslationsOf(const MappingWord& w, unsigned psb_factor_log2) {
  switch (w.kind()) {
    case MappingKind::kBase:
      return w.valid() ? 1 : 0;
    case MappingKind::kSuperpage:
      return w.valid() ? w.page_size().pages() : 0;
    case MappingKind::kPartialSubblock: {
      const unsigned factor = 1u << psb_factor_log2;
      const std::uint16_t mask =
          factor >= 16 ? std::uint16_t{0xFFFF} : static_cast<std::uint16_t>((1u << factor) - 1);
      return std::popcount(static_cast<unsigned>(w.valid_vector() & mask));
    }
  }
  return 0;
}

}  // namespace

HashedPageTable::HashedPageTable(mem::CacheTouchModel& cache, Options opts)
    : PageTable(cache),
      opts_(opts),
      hasher_(opts.num_buckets, opts.hash_kind),
      bucket_stride_(opts.inverted ? 8 : std::bit_ceil<std::uint64_t>(opts.packed_pte ? 16 : 24)),
      alloc_(cache.line_size(), opts.placement),
      bucket_base_(alloc_.Allocate(std::uint64_t{opts.num_buckets} * bucket_stride_)),
      buckets_(opts.num_buckets, AtomicCell<std::int32_t>{kNil}),
      stripes_(opts.lock_stripes),
      alloc_site_(opts.inverted ? "pt.hashed_inverted.alloc" : "pt.hashed.alloc", &alloc_mu_),
      stripe_site_(opts.inverted ? "pt.hashed_inverted.stripes" : "pt.hashed.stripes",
                   &stripes_) {
  CPT_CHECK(IsPowerOfTwo(opts.num_buckets));
  if (!stripes_.empty()) {
    // Lock-free walkers hold pointers into the arena across stripe-locked
    // inserts, so the backing store must never reallocate (header comment).
    arena_.reserve(opts_.striped_node_capacity);
  }
}

HashedPageTable::~HashedPageTable() = default;

std::int32_t HashedPageTable::AllocNode() {
  // hot-lock: bounded critical section — a free-list pop or an arena bump,
  // no I/O, no nested locks; contended only during concurrent inserts.
  MutexLock lock(alloc_mu_);
  std::int32_t idx;
  if (!free_nodes_.empty()) {
    idx = free_nodes_.back();
    free_nodes_.pop_back();
  } else {
    CPT_CHECK(stripes_.empty() || arena_.size() < arena_.capacity(),
              "striped arena exhausted: raise Options::striped_node_capacity");
    arena_.push_back(Node{});
    idx = static_cast<std::int32_t>(arena_.size() - 1);
  }
  arena_[idx].addr = alloc_.Allocate(NodeBytes());
  return idx;
}

void HashedPageTable::FreeNode(std::int32_t idx) {
  MutexLock lock(alloc_mu_);
  alloc_.Free(arena_[idx].addr, NodeBytes());
  arena_[idx] = Node{};
  free_nodes_.push_back(idx);
}

TlbFill HashedPageTable::FillFrom(const Node& n, MappingWord word) const {
  TlbFill fill;
  fill.kind = word.kind();
  fill.word = word;
  fill.base_vpn = n.base_vpn;
  switch (word.kind()) {
    case MappingKind::kBase:
      fill.pages_log2 = 0;
      break;
    case MappingKind::kSuperpage:
      fill.pages_log2 = word.page_size().size_log2;
      break;
    case MappingKind::kPartialSubblock:
      fill.pages_log2 = opts_.tag_shift;
      break;
  }
  return fill;
}

std::optional<TlbFill> HashedPageTable::LookupKey(std::uint64_t key, Vpn faulting_vpn) {
  const std::uint32_t b = hasher_(key);
  // Embedded organization (Figure 4): the bucket head is itself a node, so
  // reading it costs one line even for an empty bucket.  Inverted
  // organization: the bucket holds a pointer; every node sits elsewhere.
  bool head = true;
  std::uint32_t chain_pos = 0;
  obs::WalkTracer* const tracer = cache_.tracer();
  cache_.Touch(BucketAddr(b), opts_.inverted ? 8 : TagNextBytes());
  for (std::int32_t idx = buckets_[b].load_acquire(); idx != kNil; idx = arena_[idx].next) {
    const Node& n = arena_[idx];
    const PhysAddr addr = (head && !opts_.inverted) ? BucketAddr(b) : n.addr;
    // The handler reads the tag and next pointer of every node it visits.
    cache_.Touch(addr, TagNextBytes());
    if (tracer != nullptr) {
      tracer->Record({.kind = obs::EventKind::kWalkStep,
                      .vpn = faulting_vpn,
                      .step = ++chain_pos,
                      .lines = static_cast<std::uint32_t>(cache_.LinesThisWalk())});
    }
    if (n.key == key) {
      // Read the mapping word of the matching node.
      cache_.Touch(addr + TagNextBytes(), 8);
      TlbFill fill = FillFrom(n, n.word.load());
      if (fill.Covers(faulting_vpn)) {
        if (tracer != nullptr) {
          tracer->Record({.kind = obs::EventKind::kWalkHit,
                          .vpn = faulting_vpn,
                          .step = chain_pos,
                          .value = WalkHitValue(fill)});
        }
        return fill;
      }
      // Tag matched but this word does not map the faulting page (invalid
      // subblock bit, or a smaller co-resident superpage): keep searching,
      // as Section 5 requires.
    }
    head = false;
  }
  return std::nullopt;
}

std::optional<TlbFill> HashedPageTable::Lookup(VirtAddr va) {
  const Vpn vpn = VpnOf(va);
  return LookupKey(ChainKeyOf(vpn), vpn);
}

void HashedPageTable::UpsertWord(Vpn base_vpn, MappingWord word) {
  if (!stripes_.empty()) {
    // Stripe by *bucket index*, not by chain key: distinct keys sharing a
    // bucket must serialize their head updates, and only the bucket index
    // captures that.  The stripe is selected at runtime, beyond TSA's static
    // lock model; the scoped MutexLock still gives TSan and the debug checks
    // the acquire/release pair.
    // hot-lock: one bucket-chain head update per acquisition; stripe count
    // bounds contention and the section never blocks on anything else.
    MutexLock lock(stripes_.StripeFor(hasher_(ChainKeyOf(base_vpn))));
    UpsertWordImpl(base_vpn, word);
    return;
  }
  UpsertWordImpl(base_vpn, word);
}

void HashedPageTable::UpsertWordImpl(Vpn base_vpn, MappingWord word) {
  const std::uint64_t key = ChainKeyOf(base_vpn);
  const std::uint32_t b = hasher_(key);
  for (std::int32_t idx = buckets_[b].load_acquire(); idx != kNil; idx = arena_[idx].next) {
    Node& n = arena_[idx];
    const MappingWord old = n.word.load();
    if (n.key == key && n.base_vpn == base_vpn && old.kind() == word.kind() &&
        (word.kind() != MappingKind::kSuperpage || old.page_size() == word.page_size())) {
      live_translations_.fetch_sub_relaxed(TranslationsOf(old, opts_.tag_shift));
      n.word.store(word);
      live_translations_.fetch_add_relaxed(TranslationsOf(word, opts_.tag_shift));
      return;
    }
  }
  const std::int32_t idx = AllocNode();
  Node& n = arena_[idx];
  n.key = key;
  n.base_vpn = base_vpn;
  n.word.store(word);
  n.next = buckets_[b].load_acquire();
  // Publish: the release store makes the fully-initialized node visible to
  // any walker that acquire-loads this bucket head.
  buckets_[b].store_release(idx);
  live_nodes_.fetch_add_relaxed(1);
  live_translations_.fetch_add_relaxed(TranslationsOf(word, opts_.tag_shift));
}

bool HashedPageTable::RemoveKey(std::uint64_t key) {
  // Single-writer only (header comment): unlinking under concurrent walkers
  // would need deferred node reclamation.
  const std::uint32_t b = hasher_(key);
  bool removed = false;
  std::int32_t idx = buckets_[b].load_acquire();
  std::int32_t prev = kNil;
  while (idx != kNil) {
    Node& n = arena_[idx];
    const std::int32_t next = n.next;
    if (n.key == key) {
      live_translations_.fetch_sub_relaxed(TranslationsOf(n.word.load(), opts_.tag_shift));
      if (prev == kNil) {
        buckets_[b].store_release(next);
      } else {
        arena_[prev].next = next;
      }
      FreeNode(idx);
      live_nodes_.fetch_sub_relaxed(1);
      removed = true;
      idx = next;
      continue;  // Remove every node with this key (mixed-size blocks).
    }
    prev = idx;
    idx = next;
  }
  return removed;
}

void HashedPageTable::InsertBase(Vpn vpn, Ppn ppn, Attr attr) {
  CPT_DCHECK(opts_.tag_shift == 0, "base PTEs belong in a base-keyed table");
  UpsertWord(vpn, MappingWord::Base(ppn, attr));
}

bool HashedPageTable::RemoveBase(Vpn vpn) {
  CPT_DCHECK(opts_.tag_shift == 0);
  return RemoveKey(ChainKeyOf(vpn));
}

std::optional<MappingWord> HashedPageTable::Peek(std::uint64_t key) const {
  const std::uint32_t b = hasher_(key);
  for (std::int32_t idx = buckets_[b].load_acquire(); idx != kNil; idx = arena_[idx].next) {
    if (arena_[idx].key == key) {
      return arena_[idx].word.load();
    }
  }
  return std::nullopt;
}

std::uint64_t HashedPageTable::ProtectRange(Vpn first_vpn, std::uint64_t npages, Attr attr) {
  // A base-keyed hashed table must search once per base page (Section 3.1):
  // neighboring pages live in unrelated buckets.  A block-keyed table
  // searches once per key.
  if (npages == 0) {
    return 0;
  }
  std::uint64_t searches = 0;
  const std::uint64_t first_key = ChainKeyOf(first_vpn);
  const std::uint64_t last_key = ChainKeyOf(first_vpn + (npages - 1));
  for (std::uint64_t key = first_key; key <= last_key; ++key) {
    ++searches;
    const std::uint32_t b = hasher_(key);
    for (std::int32_t idx = buckets_[b].load_acquire(); idx != kNil; idx = arena_[idx].next) {
      Node& n = arena_[idx];
      if (n.key == key) {
        n.word.store(n.word.load().with_attr(attr));
      }
    }
  }
  return searches;
}

bool HashedPageTable::UpdateAttrFlags(Vpn vpn, std::uint16_t set_mask, std::uint16_t clear_mask) {
  // Section 3.1: an uncounted chain walk, then an atomic R/M update on the
  // covering word — no lock, no word rewrite, safe under concurrent walkers.
  const std::uint64_t key = ChainKeyOf(vpn);
  const std::uint32_t b = hasher_(key);
  for (std::int32_t idx = buckets_[b].load_acquire(); idx != kNil; idx = arena_[idx].next) {
    Node& n = arena_[idx];
    if (n.key != key) {
      continue;
    }
    const TlbFill fill = FillFrom(n, n.word.load());
    if (!fill.Covers(vpn)) {
      continue;  // Keep searching, as in LookupKey (Section 5).
    }
    ApplyAttrUpdate(n.word, set_mask, clear_mask);
    return true;
  }
  return false;
}

std::uint64_t HashedPageTable::SizeBytesPaperModel() const {
  return live_nodes_.load_relaxed() * NodeBytes();
}

std::uint64_t HashedPageTable::SizeBytesActual() const {
  MutexLock lock(alloc_mu_);
  // bytes_live already includes the embedded-head bucket array.
  return alloc_.bytes_live();
}

std::uint64_t HashedPageTable::live_translations() const {
  return live_translations_.load_relaxed();
}

std::string HashedPageTable::name() const {
  std::string n = opts_.packed_pte ? "hashed-packed" : "hashed";
  if (opts_.inverted) {
    n += "-inverted";
  }
  if (opts_.tag_shift != 0) {
    n += "-block";
  }
  return n;
}

void HashedPageTable::AuditVisit(check::PtAuditVisitor& visitor) const {
  const std::uint64_t step_limit = live_nodes_.load_relaxed() + 1;
  for (std::uint32_t b = 0; b < buckets_.size(); ++b) {
    std::uint64_t steps = 0;
    for (std::int32_t idx = buckets_[b].load_acquire(); idx != kNil; idx = arena_[idx].next) {
      if (++steps > step_limit || idx < 0 ||
          static_cast<std::size_t>(idx) >= arena_.size()) {
        visitor.OnChainCycle(b);
        break;
      }
      const Node& n = arena_[idx];
      check::PtNodeView view;
      view.bucket = b;
      view.tag = n.key;
      view.base_vpn = n.base_vpn;
      view.sub_log2 = opts_.tag_shift;
      view.words = &n.word;
      view.num_words = 1;
      view.index = idx;
      view.addr = n.addr;
      visitor.OnNode(view);
    }
  }
}

Histogram HashedPageTable::ChainLengthHistogram() const {
  Histogram h;
  for (const AtomicCell<std::int32_t>& head : buckets_) {
    std::size_t len = 0;
    for (std::int32_t idx = head.load_acquire(); idx != kNil; idx = arena_[idx].next) {
      ++len;
    }
    h.Add(len);
  }
  return h;
}

}  // namespace cpt::pt
