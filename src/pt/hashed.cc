#include "pt/hashed.h"

#include <bit>

#include "check/audit_visitor.h"
#include "common/check.h"
#include "common/stats.h"

namespace cpt::pt {

namespace {

// How many base-page translations one mapping word provides.
std::uint64_t TranslationsOf(const MappingWord& w, unsigned psb_factor_log2) {
  switch (w.kind()) {
    case MappingKind::kBase:
      return w.valid() ? 1 : 0;
    case MappingKind::kSuperpage:
      return w.valid() ? w.page_size().pages() : 0;
    case MappingKind::kPartialSubblock: {
      const unsigned factor = 1u << psb_factor_log2;
      const std::uint16_t mask =
          factor >= 16 ? std::uint16_t{0xFFFF} : static_cast<std::uint16_t>((1u << factor) - 1);
      return std::popcount(static_cast<unsigned>(w.valid_vector() & mask));
    }
  }
  return 0;
}

}  // namespace

HashedPageTable::HashedPageTable(mem::CacheTouchModel& cache, Options opts)
    : PageTable(cache),
      opts_(opts),
      hasher_(opts.num_buckets, opts.hash_kind),
      alloc_(cache.line_size(), opts.placement),
      buckets_(opts.num_buckets, kNil) {
  CPT_CHECK(IsPowerOfTwo(opts.num_buckets));
  bucket_stride_ = opts_.inverted ? 8 : std::bit_ceil(NodeBytes());
  bucket_base_ = alloc_.Allocate(std::uint64_t{opts_.num_buckets} * bucket_stride_);
}

HashedPageTable::~HashedPageTable() = default;

std::int32_t HashedPageTable::AllocNode() {
  if (!free_nodes_.empty()) {
    const std::int32_t idx = free_nodes_.back();
    free_nodes_.pop_back();
    return idx;
  }
  arena_.push_back(Node{});
  return static_cast<std::int32_t>(arena_.size() - 1);
}

void HashedPageTable::FreeNode(std::int32_t idx) {
  alloc_.Free(arena_[idx].addr, NodeBytes());
  arena_[idx] = Node{};
  free_nodes_.push_back(idx);
}

TlbFill HashedPageTable::FillFrom(const Node& n, Vpn /*faulting_vpn*/) const {
  TlbFill fill;
  fill.kind = n.word.kind();
  fill.word = n.word;
  fill.base_vpn = n.base_vpn;
  switch (n.word.kind()) {
    case MappingKind::kBase:
      fill.pages_log2 = 0;
      break;
    case MappingKind::kSuperpage:
      fill.pages_log2 = n.word.page_size().size_log2;
      break;
    case MappingKind::kPartialSubblock:
      fill.pages_log2 = opts_.tag_shift;
      break;
  }
  return fill;
}

std::optional<TlbFill> HashedPageTable::LookupKey(std::uint64_t key, Vpn faulting_vpn) {
  const std::uint32_t b = hasher_(key);
  // Embedded organization (Figure 4): the bucket head is itself a node, so
  // reading it costs one line even for an empty bucket.  Inverted
  // organization: the bucket holds a pointer; every node sits elsewhere.
  bool head = true;
  std::uint32_t chain_pos = 0;
  obs::WalkTracer* const tracer = cache_.tracer();
  cache_.Touch(BucketAddr(b), opts_.inverted ? 8 : TagNextBytes());
  for (std::int32_t idx = buckets_[b]; idx != kNil; idx = arena_[idx].next) {
    const Node& n = arena_[idx];
    const PhysAddr addr = (head && !opts_.inverted) ? BucketAddr(b) : n.addr;
    // The handler reads the tag and next pointer of every node it visits.
    cache_.Touch(addr, TagNextBytes());
    if (tracer != nullptr) {
      tracer->Record({.kind = obs::EventKind::kWalkStep,
                      .vpn = faulting_vpn,
                      .step = ++chain_pos,
                      .lines = static_cast<std::uint32_t>(cache_.LinesThisWalk())});
    }
    if (n.key == key) {
      // Read the mapping word of the matching node.
      cache_.Touch(addr + TagNextBytes(), 8);
      TlbFill fill = FillFrom(n, faulting_vpn);
      if (fill.Covers(faulting_vpn)) {
        if (tracer != nullptr) {
          tracer->Record({.kind = obs::EventKind::kWalkHit,
                          .vpn = faulting_vpn,
                          .step = chain_pos,
                          .value = WalkHitValue(fill)});
        }
        return fill;
      }
      // Tag matched but this word does not map the faulting page (invalid
      // subblock bit, or a smaller co-resident superpage): keep searching,
      // as Section 5 requires.
    }
    head = false;
  }
  return std::nullopt;
}

std::optional<TlbFill> HashedPageTable::Lookup(VirtAddr va) {
  const Vpn vpn = VpnOf(va);
  return LookupKey(ChainKeyOf(vpn), vpn);
}

void HashedPageTable::UpsertWord(Vpn base_vpn, MappingWord word) {
  const std::uint64_t key = ChainKeyOf(base_vpn);
  const std::uint32_t b = hasher_(key);
  for (std::int32_t idx = buckets_[b]; idx != kNil; idx = arena_[idx].next) {
    Node& n = arena_[idx];
    if (n.key == key && n.base_vpn == base_vpn && n.word.kind() == word.kind() &&
        (word.kind() != MappingKind::kSuperpage ||
         n.word.page_size() == word.page_size())) {
      live_translations_ -= TranslationsOf(n.word, opts_.tag_shift);
      n.word = word;
      live_translations_ += TranslationsOf(word, opts_.tag_shift);
      return;
    }
  }
  const std::int32_t idx = AllocNode();
  Node& n = arena_[idx];
  n.key = key;
  n.base_vpn = base_vpn;
  n.word = word;
  n.next = buckets_[b];
  n.addr = alloc_.Allocate(NodeBytes());
  buckets_[b] = idx;
  ++live_nodes_;
  live_translations_ += TranslationsOf(word, opts_.tag_shift);
}

bool HashedPageTable::RemoveKey(std::uint64_t key) {
  const std::uint32_t b = hasher_(key);
  std::int32_t* link = &buckets_[b];
  bool removed = false;
  while (*link != kNil) {
    const std::int32_t idx = *link;
    Node& n = arena_[idx];
    if (n.key == key) {
      live_translations_ -= TranslationsOf(n.word, opts_.tag_shift);
      *link = n.next;
      FreeNode(idx);
      --live_nodes_;
      removed = true;
      continue;  // Remove every node with this key (mixed-size blocks).
    }
    link = &n.next;
  }
  return removed;
}

void HashedPageTable::InsertBase(Vpn vpn, Ppn ppn, Attr attr) {
  CPT_DCHECK(opts_.tag_shift == 0, "base PTEs belong in a base-keyed table");
  UpsertWord(vpn, MappingWord::Base(ppn, attr));
}

bool HashedPageTable::RemoveBase(Vpn vpn) {
  CPT_DCHECK(opts_.tag_shift == 0);
  return RemoveKey(ChainKeyOf(vpn));
}

std::optional<MappingWord> HashedPageTable::Peek(std::uint64_t key) const {
  const std::uint32_t b = hasher_(key);
  for (std::int32_t idx = buckets_[b]; idx != kNil; idx = arena_[idx].next) {
    if (arena_[idx].key == key) {
      return arena_[idx].word;
    }
  }
  return std::nullopt;
}

std::uint64_t HashedPageTable::ProtectRange(Vpn first_vpn, std::uint64_t npages, Attr attr) {
  // A base-keyed hashed table must search once per base page (Section 3.1):
  // neighboring pages live in unrelated buckets.  A block-keyed table
  // searches once per key.
  if (npages == 0) {
    return 0;
  }
  std::uint64_t searches = 0;
  const std::uint64_t first_key = ChainKeyOf(first_vpn);
  const std::uint64_t last_key = ChainKeyOf(first_vpn + (npages - 1));
  for (std::uint64_t key = first_key; key <= last_key; ++key) {
    ++searches;
    const std::uint32_t b = hasher_(key);
    for (std::int32_t idx = buckets_[b]; idx != kNil; idx = arena_[idx].next) {
      Node& n = arena_[idx];
      if (n.key == key) {
        n.word = n.word.with_attr(attr);
      }
    }
  }
  return searches;
}

std::uint64_t HashedPageTable::SizeBytesPaperModel() const { return live_nodes_ * NodeBytes(); }

std::uint64_t HashedPageTable::SizeBytesActual() const {
  // bytes_live already includes the embedded-head bucket array.
  return alloc_.bytes_live();
}

std::uint64_t HashedPageTable::live_translations() const { return live_translations_; }

std::string HashedPageTable::name() const {
  std::string n = opts_.packed_pte ? "hashed-packed" : "hashed";
  if (opts_.inverted) {
    n += "-inverted";
  }
  if (opts_.tag_shift != 0) {
    n += "-block";
  }
  return n;
}

void HashedPageTable::AuditVisit(check::PtAuditVisitor& visitor) const {
  const std::uint64_t step_limit = live_nodes_ + 1;
  for (std::uint32_t b = 0; b < buckets_.size(); ++b) {
    std::uint64_t steps = 0;
    for (std::int32_t idx = buckets_[b]; idx != kNil; idx = arena_[idx].next) {
      if (++steps > step_limit || idx < 0 ||
          static_cast<std::size_t>(idx) >= arena_.size()) {
        visitor.OnChainCycle(b);
        break;
      }
      const Node& n = arena_[idx];
      check::PtNodeView view;
      view.bucket = b;
      view.tag = n.key;
      view.base_vpn = n.base_vpn;
      view.sub_log2 = opts_.tag_shift;
      view.words = &n.word;
      view.num_words = 1;
      view.index = idx;
      view.addr = n.addr;
      visitor.OnNode(view);
    }
  }
}

Histogram HashedPageTable::ChainLengthHistogram() const {
  Histogram h;
  for (const std::int32_t head : buckets_) {
    std::size_t len = 0;
    for (std::int32_t idx = head; idx != kNil; idx = arena_[idx].next) {
      ++len;
    }
    h.Add(len);
  }
  return h;
}

}  // namespace cpt::pt
