#include "pt/multi_hashed.h"

#include <bit>

#include "check/audit_visitor.h"
#include "common/check.h"

namespace cpt::pt {

// ---------------------------------------------------------------------------
// MultiTableHashed
// ---------------------------------------------------------------------------

namespace {

HashedPageTable::Options BaseTableOptions(const MultiTableHashed::Options& o) {
  return HashedPageTable::Options{
      .num_buckets = o.num_buckets,
      .tag_shift = 0,
      .packed_pte = o.packed_pte,
      .hash_kind = o.hash_kind,
      .placement = o.placement,
  };
}

HashedPageTable::Options BlockTableOptions(const MultiTableHashed::Options& o) {
  return HashedPageTable::Options{
      .num_buckets = o.num_buckets,
      .tag_shift = Log2(o.subblock_factor),
      .packed_pte = o.packed_pte,
      .hash_kind = o.hash_kind,
      .placement = o.placement,
  };
}

}  // namespace

MultiTableHashed::MultiTableHashed(mem::CacheTouchModel& cache, Options opts)
    : PageTable(cache),
      opts_(opts),
      block_shift_(Log2(opts.subblock_factor)),
      base_(cache, BaseTableOptions(opts)),
      block_(cache, BlockTableOptions(opts)) {
  CPT_CHECK(IsPowerOfTwo(opts.subblock_factor));
}

std::optional<TlbFill> MultiTableHashed::Lookup(VirtAddr va) {
  const Vpn vpn = VpnOf(va);
  HashedPageTable* first = &base_;
  HashedPageTable* second = &block_;
  std::uint64_t first_key = BaseKeyOf(vpn);
  std::uint64_t second_key = BlockKeyOf(vpn);
  if (opts_.order == SearchOrder::kBlockFirst) {
    std::swap(first, second);
    std::swap(first_key, second_key);
  }
  if (auto fill = first->LookupKey(first_key, vpn)) {
    return fill;
  }
  // The first search failed; the TLB miss handler must now search the other
  // page table — this second full search is the cost Section 6.3 highlights.
  return second->LookupKey(second_key, vpn);
}

void MultiTableHashed::InsertBase(Vpn vpn, Ppn ppn, Attr attr) { base_.InsertBase(vpn, ppn, attr); }

bool MultiTableHashed::RemoveBase(Vpn vpn) { return base_.RemoveBase(vpn); }

void MultiTableHashed::InsertSuperpage(Vpn base_vpn, PageSize size, Ppn base_ppn, Attr attr) {
  CPT_DCHECK(IsSuperpageAligned(base_vpn, size) && IsSuperpageAligned(base_ppn, size));
  block_.UpsertWord(base_vpn, MappingWord::Superpage(base_ppn, attr, size));
}

bool MultiTableHashed::RemoveSuperpage(Vpn base_vpn, PageSize /*size*/) {
  return block_.RemoveKey(BlockKeyOf(base_vpn));
}

void MultiTableHashed::UpsertPartialSubblock(Vpn block_base_vpn, unsigned subblock_factor,
                                             Ppn block_base_ppn, Attr attr,
                                             std::uint16_t valid_vector) {
  CPT_DCHECK(subblock_factor == opts_.subblock_factor);
  CPT_DCHECK(BoffOf(block_base_vpn, subblock_factor) == 0 &&
             IsSuperpageAligned(block_base_ppn, PageSize{Log2(subblock_factor)}));
  block_.UpsertWord(block_base_vpn,
                    MappingWord::PartialSubblock(block_base_ppn, attr, valid_vector));
}

bool MultiTableHashed::RemovePartialSubblock(Vpn block_base_vpn, unsigned /*subblock_factor*/) {
  return block_.RemoveKey(BlockKeyOf(block_base_vpn));
}

bool MultiTableHashed::UpdateAttrFlags(Vpn vpn, std::uint16_t set_mask, std::uint16_t clear_mask) {
  // R/M bits live in whichever constituent table holds the covering PTE;
  // probe in the configured search order, same as Lookup.
  if (opts_.order == SearchOrder::kBlockFirst) {
    return block_.UpdateAttrFlags(vpn, set_mask, clear_mask) ||
           base_.UpdateAttrFlags(vpn, set_mask, clear_mask);
  }
  return base_.UpdateAttrFlags(vpn, set_mask, clear_mask) ||
         block_.UpdateAttrFlags(vpn, set_mask, clear_mask);
}

std::uint64_t MultiTableHashed::ProtectRange(Vpn first_vpn, std::uint64_t npages, Attr attr) {
  return base_.ProtectRange(first_vpn, npages, attr) +
         block_.ProtectRange(first_vpn, npages, attr);
}

std::uint64_t MultiTableHashed::SizeBytesPaperModel() const {
  return base_.SizeBytesPaperModel() + block_.SizeBytesPaperModel();
}

std::uint64_t MultiTableHashed::SizeBytesActual() const {
  return base_.SizeBytesActual() + block_.SizeBytesActual();
}

std::uint64_t MultiTableHashed::live_translations() const {
  return base_.live_translations() + block_.live_translations();
}

std::string MultiTableHashed::name() const {
  return opts_.order == SearchOrder::kBaseFirst ? "hashed-multi" : "hashed-multi-blockfirst";
}

void MultiTableHashed::AuditVisit(check::PtAuditVisitor& visitor) const {
  // Bucket numbers of the two constituent tables overlap; per-table bucket
  // checks should use base_table()/block_table() directly.  This combined
  // walk serves whole-table coverage checks.
  base_.AuditVisit(visitor);
  block_.AuditVisit(visitor);
}

// ---------------------------------------------------------------------------
// SuperpageIndexHashed
// ---------------------------------------------------------------------------

SuperpageIndexHashed::SuperpageIndexHashed(mem::CacheTouchModel& cache, Options opts)
    : PageTable(cache),
      opts_(opts),
      block_shift_(Log2(opts.subblock_factor)),
      hasher_(opts.num_buckets, opts.hash_kind),
      alloc_(cache.line_size(), opts.placement),
      buckets_(opts.num_buckets, kNil) {
  CPT_CHECK(IsPowerOfTwo(opts.num_buckets) && IsPowerOfTwo(opts.subblock_factor));
  bucket_base_ = alloc_.Allocate(std::uint64_t{opts_.num_buckets} * 32);
}

TlbFill SuperpageIndexHashed::FillFrom(const Node& n, MappingWord word) const {
  return TlbFill{.kind = word.kind(),
                 .base_vpn = n.base_vpn,
                 .pages_log2 = n.pages_log2,
                 .word = word};
}

std::uint64_t SuperpageIndexHashed::TranslationCount(const Node& n) const {
  const MappingWord word = n.word.load();
  switch (word.kind()) {
    case MappingKind::kBase:
      return word.valid() ? 1 : 0;
    case MappingKind::kSuperpage:
      return word.valid() ? (std::uint64_t{1} << n.pages_log2) : 0;
    case MappingKind::kPartialSubblock:
      return std::popcount(static_cast<unsigned>(word.valid_vector()));
  }
  return 0;
}

std::optional<TlbFill> SuperpageIndexHashed::Lookup(VirtAddr va) {
  const Vpn vpn = VpnOf(va);
  const std::uint32_t b = hasher_(BlockKeyOf(vpn));
  cache_.Touch(BucketAddr(b), 16);
  bool head = true;
  std::uint32_t chain_pos = 0;
  obs::WalkTracer* const tracer = cache_.tracer();
  for (std::int32_t idx = buckets_[b]; idx != kNil; idx = arena_[idx].next) {
    const Node& n = arena_[idx];
    const PhysAddr addr = head ? BucketAddr(b) : n.addr;
    head = false;
    cache_.Touch(addr, 16);
    if (tracer != nullptr) {
      tracer->Record({.kind = obs::EventKind::kWalkStep,
                      .vpn = vpn,
                      .step = ++chain_pos,
                      .lines = static_cast<std::uint32_t>(cache_.LinesThisWalk())});
    }
    // Tag comparison checks whether this node's covered range contains the
    // faulting page; superpage and base PTEs for one block share the bucket.
    const PageSize node_size{n.pages_log2};
    if (SuperpageBaseVpn(vpn, node_size) == SuperpageBaseVpn(n.base_vpn, node_size)) {
      cache_.Touch(addr + 16, 8);
      TlbFill fill = FillFrom(n, n.word.load());
      if (fill.Covers(vpn)) {
        if (tracer != nullptr) {
          tracer->Record({.kind = obs::EventKind::kWalkHit,
                          .vpn = vpn,
                          .step = chain_pos,
                          .value = WalkHitValue(fill)});
        }
        return fill;
      }
    }
  }
  return std::nullopt;
}

std::int32_t* SuperpageIndexHashed::FindLink(Vpn base_vpn, unsigned pages_log2, MappingKind kind) {
  const std::uint32_t b = hasher_(BlockKeyOf(base_vpn));
  std::int32_t* link = &buckets_[b];
  while (*link != kNil) {
    Node& n = arena_[*link];
    if (n.base_vpn == base_vpn && n.pages_log2 == pages_log2 && n.word.load().kind() == kind) {
      return link;
    }
    link = &n.next;
  }
  return nullptr;
}

void SuperpageIndexHashed::Upsert(Vpn base_vpn, unsigned pages_log2, MappingWord word) {
  if (std::int32_t* link = FindLink(base_vpn, pages_log2, word.kind())) {
    Node& n = arena_[*link];
    live_translations_ -= TranslationCount(n);
    n.word.store(word);
    live_translations_ += TranslationCount(n);
    return;
  }
  std::int32_t idx;
  if (!free_nodes_.empty()) {
    idx = free_nodes_.back();
    free_nodes_.pop_back();
  } else {
    arena_.push_back(Node{});
    idx = static_cast<std::int32_t>(arena_.size() - 1);
  }
  const std::uint32_t b = hasher_(BlockKeyOf(base_vpn));
  Node& n = arena_[idx];
  n.base_vpn = base_vpn;
  n.pages_log2 = pages_log2;
  n.word.store(word);
  n.next = buckets_[b];
  n.addr = alloc_.Allocate(24);
  buckets_[b] = idx;
  ++live_nodes_;
  live_translations_ += TranslationCount(n);
}

bool SuperpageIndexHashed::Remove(Vpn base_vpn, unsigned pages_log2, MappingKind kind) {
  std::int32_t* link = FindLink(base_vpn, pages_log2, kind);
  if (link == nullptr) {
    return false;
  }
  const std::int32_t idx = *link;
  Node& n = arena_[idx];
  live_translations_ -= TranslationCount(n);
  *link = n.next;
  alloc_.Free(n.addr, 24);
  n = Node{};
  free_nodes_.push_back(idx);
  --live_nodes_;
  return true;
}

void SuperpageIndexHashed::InsertBase(Vpn vpn, Ppn ppn, Attr attr) {
  Upsert(vpn, 0, MappingWord::Base(ppn, attr));
}

bool SuperpageIndexHashed::RemoveBase(Vpn vpn) { return Remove(vpn, 0, MappingKind::kBase); }

void SuperpageIndexHashed::InsertSuperpage(Vpn base_vpn, PageSize size, Ppn base_ppn, Attr attr) {
  // Superpages larger than the hash-index size "must be handled another way"
  // (Section 4.2); this implementation restricts them to the index size.
  CPT_DCHECK(size.pages() <= opts_.subblock_factor);
  CPT_DCHECK(IsSuperpageAligned(base_vpn, size) && IsSuperpageAligned(base_ppn, size));
  Upsert(base_vpn, size.size_log2, MappingWord::Superpage(base_ppn, attr, size));
}

bool SuperpageIndexHashed::RemoveSuperpage(Vpn base_vpn, PageSize size) {
  return Remove(base_vpn, size.size_log2, MappingKind::kSuperpage);
}

void SuperpageIndexHashed::UpsertPartialSubblock(Vpn block_base_vpn, unsigned subblock_factor,
                                                 Ppn block_base_ppn, Attr attr,
                                                 std::uint16_t valid_vector) {
  CPT_DCHECK(subblock_factor == opts_.subblock_factor);
  Upsert(block_base_vpn, block_shift_,
         MappingWord::PartialSubblock(block_base_ppn, attr, valid_vector));
}

bool SuperpageIndexHashed::RemovePartialSubblock(Vpn block_base_vpn, unsigned /*subblock_factor*/) {
  return Remove(block_base_vpn, block_shift_, MappingKind::kPartialSubblock);
}

bool SuperpageIndexHashed::UpdateAttrFlags(Vpn vpn, std::uint16_t set_mask,
                                           std::uint16_t clear_mask) {
  // Uncounted structural walk: R/M-bit maintenance is a hardware side effect
  // of the walk the miss already paid for (Section 3.1), so it models no
  // extra memory traffic.  The update hits the word in place — atomically —
  // so a single node carries the bit for every page it covers.
  const std::uint32_t b = hasher_(BlockKeyOf(vpn));
  for (std::int32_t idx = buckets_[b]; idx != kNil; idx = arena_[idx].next) {
    Node& n = arena_[idx];
    const PageSize node_size{n.pages_log2};
    if (SuperpageBaseVpn(vpn, node_size) != SuperpageBaseVpn(n.base_vpn, node_size)) {
      continue;
    }
    const TlbFill fill = FillFrom(n, n.word.load());
    if (!fill.Covers(vpn)) {
      continue;
    }
    ApplyAttrUpdate(n.word, set_mask, clear_mask);
    return true;
  }
  return false;
}

std::uint64_t SuperpageIndexHashed::ProtectRange(Vpn first_vpn, std::uint64_t npages, Attr attr) {
  if (npages == 0) {
    return 0;
  }
  // One bucket search per page block; every node overlapping the range gets
  // its attributes rewritten.
  std::uint64_t searches = 0;
  const Vpn last_vpn = first_vpn + (npages - 1);
  for (std::uint64_t key = BlockKeyOf(first_vpn); key <= BlockKeyOf(last_vpn); ++key) {
    ++searches;
    const std::uint32_t b = hasher_(key);
    for (std::int32_t idx = buckets_[b]; idx != kNil; idx = arena_[idx].next) {
      Node& n = arena_[idx];
      if (BlockKeyOf(n.base_vpn) == key && n.base_vpn >= first_vpn &&
          n.base_vpn <= last_vpn) {
        n.word.store(n.word.load().with_attr(attr));
      }
    }
  }
  return searches;
}

std::uint64_t SuperpageIndexHashed::SizeBytesPaperModel() const { return live_nodes_ * 24; }

std::uint64_t SuperpageIndexHashed::SizeBytesActual() const {
  // bytes_live already includes the embedded-head bucket array.
  return alloc_.bytes_live();
}

std::uint64_t SuperpageIndexHashed::live_translations() const { return live_translations_; }

void SuperpageIndexHashed::AuditVisit(check::PtAuditVisitor& visitor) const {
  const std::uint64_t step_limit = live_nodes_ + 1;
  for (std::uint32_t b = 0; b < buckets_.size(); ++b) {
    std::uint64_t steps = 0;
    for (std::int32_t idx = buckets_[b]; idx != kNil; idx = arena_[idx].next) {
      if (++steps > step_limit || idx < 0 ||
          static_cast<std::size_t>(idx) >= arena_.size()) {
        visitor.OnChainCycle(b);
        break;
      }
      const Node& n = arena_[idx];
      check::PtNodeView view;
      view.bucket = b;
      view.tag = BlockKeyOf(n.base_vpn);
      view.base_vpn = n.base_vpn;
      view.sub_log2 = n.pages_log2;
      view.words = &n.word;
      view.num_words = 1;
      view.index = idx;
      view.addr = n.addr;
      visitor.OnNode(view);
    }
  }
}

Histogram SuperpageIndexHashed::ChainLengthHistogram() const {
  Histogram h;
  for (const std::int32_t head : buckets_) {
    std::size_t len = 0;
    for (std::int32_t idx = head; idx != kNil; idx = arena_[idx].next) {
      ++len;
    }
    h.Add(len);
  }
  return h;
}

}  // namespace cpt::pt
