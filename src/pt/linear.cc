#include "pt/linear.h"

#include "check/audit_visitor.h"
#include "common/check.h"

namespace cpt::pt {

namespace {
// Replicated PSB words cover one page block; the factor is fixed by the
// 16-bit valid vector format.
constexpr unsigned kPsbPagesLog2 = 4;
}  // namespace

LinearPageTable::LinearPageTable(mem::CacheTouchModel& cache, Options opts)
    : PageTable(cache), opts_(opts), alloc_(cache.line_size(), opts.placement) {}

LinearPageTable::~LinearPageTable() = default;

TlbFill LinearPageTable::FillFromWord(Vpn vpn, MappingWord word) const {
  TlbFill fill;
  fill.kind = word.kind();
  fill.word = word;
  switch (word.kind()) {
    case MappingKind::kBase:
      fill.base_vpn = vpn;
      fill.pages_log2 = 0;
      break;
    case MappingKind::kSuperpage:
      fill.pages_log2 = word.page_size().size_log2;
      fill.base_vpn = SuperpageBaseVpn(vpn, word.page_size());
      break;
    case MappingKind::kPartialSubblock:
      fill.pages_log2 = kPsbPagesLog2;
      fill.base_vpn = SuperpageBaseVpn(vpn, PageSize{kPsbPagesLog2});
      break;
  }
  return fill;
}

LinearPageTable::Leaf& LinearPageTable::LeafFor(Vpn vpn) {
  const std::uint64_t leaf_index = LeafIndexOf(vpn);
  auto [it, inserted] = leaves_.try_emplace(leaf_index);
  if (inserted) {
    it->second.addr = alloc_.Allocate(kBasePageSize);
    AddUpperLevels(leaf_index);
  }
  return it->second;
}

LinearPageTable::Leaf* LinearPageTable::FindLeaf(Vpn vpn) {
  auto it = leaves_.find(LeafIndexOf(vpn));
  return it == leaves_.end() ? nullptr : &it->second;
}

void LinearPageTable::AddUpperLevels(std::uint64_t leaf_index) {
  std::uint64_t child_key = leaf_index;
  for (unsigned level = 2; level <= kNumLevels; ++level) {
    const std::uint64_t key = child_key >> kBitsPerLevel;
    if (upper_[level][key]++ != 0) {
      break;  // This subtree already existed; ancestors are already counted.
    }
    child_key = key;
  }
}

void LinearPageTable::RemoveUpperLevels(std::uint64_t leaf_index) {
  std::uint64_t child_key = leaf_index;
  for (unsigned level = 2; level <= kNumLevels; ++level) {
    const std::uint64_t key = child_key >> kBitsPerLevel;
    auto it = upper_[level].find(key);
    CPT_DCHECK(it != upper_[level].end() && it->second > 0);
    if (--it->second != 0) {
      break;
    }
    upper_[level].erase(it);
    child_key = key;
  }
}

void LinearPageTable::SetSlot(Vpn vpn, MappingWord word) {
  Leaf& leaf = LeafFor(vpn);
  AtomicMappingWord& slot = leaf.slots[SlotIndexOf(vpn)];
  const MappingWord old = slot.load();
  const bool was_occupied = old != MappingWord::Invalid();
  const bool was_translating = was_occupied && FillFromWord(vpn, old).Covers(vpn);
  const bool now_occupied = word != MappingWord::Invalid();
  const bool now_translating = now_occupied && FillFromWord(vpn, word).Covers(vpn);
  leaf.live += static_cast<unsigned>(now_occupied) - static_cast<unsigned>(was_occupied);
  live_translations_ +=
      static_cast<std::uint64_t>(now_translating) - static_cast<std::uint64_t>(was_translating);
  slot.store(word);
}

MappingWord LinearPageTable::ClearSlot(Vpn vpn) {
  Leaf* leaf = FindLeaf(vpn);
  if (leaf == nullptr) {
    return MappingWord::Invalid();
  }
  AtomicMappingWord& slot = leaf->slots[SlotIndexOf(vpn)];
  const MappingWord old = slot.load();
  if (old != MappingWord::Invalid()) {
    if (FillFromWord(vpn, old).Covers(vpn)) {
      --live_translations_;
    }
    slot.store(MappingWord::Invalid());
    if (--leaf->live == 0) {
      const std::uint64_t leaf_index = LeafIndexOf(vpn);
      alloc_.Free(leaf->addr, kBasePageSize);
      leaves_.erase(leaf_index);
      RemoveUpperLevels(leaf_index);
    }
  }
  return old;
}

std::optional<TlbFill> LinearPageTable::Lookup(VirtAddr va) {
  const Vpn vpn = VpnOf(va);
  Leaf* leaf = FindLeaf(vpn);
  if (leaf == nullptr) {
    return std::nullopt;  // The PTE page itself is unmapped: page fault.
  }
  const unsigned slot = SlotIndexOf(vpn);
  // One access to the (virtually addressed) PTE — always a single line.
  cache_.Touch(leaf->addr + slot * 8, 8);
  if (obs::WalkTracer* const tracer = cache_.tracer()) {
    tracer->Record({.kind = obs::EventKind::kWalkStep,
                    .vpn = vpn,
                    .step = 1,
                    .lines = static_cast<std::uint32_t>(cache_.LinesThisWalk())});
  }
  const MappingWord word = leaf->slots[slot].load();
  if (word == MappingWord::Invalid()) {
    return std::nullopt;
  }
  TlbFill fill = FillFromWord(vpn, word);
  if (!fill.Covers(vpn)) {
    return std::nullopt;  // e.g. PSB replica whose valid bit for vpn is clear.
  }
  if (obs::WalkTracer* const tracer = cache_.tracer()) {
    tracer->Record({.kind = obs::EventKind::kWalkHit,
                    .vpn = vpn,
                    .step = 1,
                    .value = WalkHitValue(fill)});
  }
  return fill;
}

void LinearPageTable::LookupBlock(VirtAddr va, unsigned subblock_factor,
                                  std::vector<TlbFill>& out) {
  // Mappings for the whole page block are adjacent PTE slots: one read of
  // subblock_factor*8 bytes.  Page blocks never straddle leaf pages because
  // 512 is a multiple of the subblock factor.
  const Vpn vpn = VpnOf(va);
  const Vpn first = FirstVpnOfBlock(VpbnOf(vpn, subblock_factor), subblock_factor);
  Leaf* leaf = FindLeaf(first);
  if (leaf == nullptr) {
    return;
  }
  const unsigned slot0 = SlotIndexOf(first);
  cache_.Touch(leaf->addr + slot0 * 8, std::uint64_t{subblock_factor} * 8);
  for (unsigned i = 0; i < subblock_factor; ++i) {
    const MappingWord word = leaf->slots[slot0 + i].load();
    if (word == MappingWord::Invalid()) {
      continue;
    }
    TlbFill fill = FillFromWord(first + i, word);
    if (fill.Covers(first + i)) {
      out.push_back(fill);
    }
  }
}

void LinearPageTable::InsertBase(Vpn vpn, Ppn ppn, Attr attr) {
  SetSlot(vpn, MappingWord::Base(ppn, attr));
}

bool LinearPageTable::RemoveBase(Vpn vpn) { return ClearSlot(vpn) != MappingWord::Invalid(); }

void LinearPageTable::InsertSuperpage(Vpn base_vpn, PageSize size, Ppn base_ppn, Attr attr) {
  // Replicate-PTEs (Section 4.2): the superpage PTE is stored at the page
  // table site of every base page it covers.
  CPT_DCHECK(IsSuperpageAligned(base_vpn, size) && IsSuperpageAligned(base_ppn, size));
  const MappingWord word = MappingWord::Superpage(base_ppn, attr, size);
  for (unsigned i = 0; i < size.pages(); ++i) {
    SetSlot(base_vpn + i, word);
  }
}

bool LinearPageTable::RemoveSuperpage(Vpn base_vpn, PageSize size) {
  bool any = false;
  for (unsigned i = 0; i < size.pages(); ++i) {
    any |= ClearSlot(base_vpn + i) != MappingWord::Invalid();
  }
  return any;
}

void LinearPageTable::UpsertPartialSubblock(Vpn block_base_vpn, unsigned subblock_factor,
                                            Ppn block_base_ppn, Attr attr,
                                            std::uint16_t valid_vector) {
  // Replicated at every base site; updating the vector rewrites all replicas
  // (the §4.3 multi-PTE update cost of replication).
  CPT_DCHECK(subblock_factor == (1u << kPsbPagesLog2));
  CPT_DCHECK(BoffOf(block_base_vpn, subblock_factor) == 0 &&
             IsSuperpageAligned(block_base_ppn, PageSize{kPsbPagesLog2}));
  const MappingWord word = MappingWord::PartialSubblock(block_base_ppn, attr, valid_vector);
  for (unsigned i = 0; i < subblock_factor; ++i) {
    SetSlot(block_base_vpn + i, word);
  }
}

bool LinearPageTable::RemovePartialSubblock(Vpn block_base_vpn, unsigned subblock_factor) {
  bool any = false;
  for (unsigned i = 0; i < subblock_factor; ++i) {
    any |= ClearSlot(block_base_vpn + i) != MappingWord::Invalid();
  }
  return any;
}

bool LinearPageTable::UpdateAttrFlags(Vpn vpn, std::uint16_t set_mask, std::uint16_t clear_mask) {
  // Uncounted structural update: R/M-bit maintenance rides on the walk the
  // miss already paid for (Section 3.1), so it models no memory traffic.
  // Replicate-PTEs store the superpage/PSB word at every covered base-page
  // site, so the update must hit every replica — otherwise a later scan at a
  // sibling site would read stale bits.
  Leaf* leaf = FindLeaf(vpn);
  if (leaf == nullptr) {
    return false;
  }
  const MappingWord word = leaf->slots[SlotIndexOf(vpn)].load();
  if (word == MappingWord::Invalid()) {
    return false;
  }
  const TlbFill fill = FillFromWord(vpn, word);
  if (!fill.Covers(vpn)) {
    return false;
  }
  const std::uint64_t npages = std::uint64_t{1} << fill.pages_log2;
  for (std::uint64_t i = 0; i < npages; ++i) {
    const Vpn site = fill.base_vpn + i;
    Leaf* site_leaf = LeafIndexOf(site) == LeafIndexOf(vpn) ? leaf : FindLeaf(site);
    if (site_leaf == nullptr) {
      continue;
    }
    AtomicMappingWord& slot = site_leaf->slots[SlotIndexOf(site)];
    const MappingWord replica = slot.load();
    if (replica == MappingWord::Invalid() || replica.kind() != fill.kind) {
      continue;
    }
    ApplyAttrUpdate(slot, set_mask, clear_mask);
  }
  return true;
}

std::uint64_t LinearPageTable::ProtectRange(Vpn first_vpn, std::uint64_t npages, Attr attr) {
  // Direct array indexing: one slot visit per page.
  for (std::uint64_t i = 0; i < npages; ++i) {
    Leaf* leaf = FindLeaf(first_vpn + i);
    if (leaf == nullptr) {
      continue;
    }
    AtomicMappingWord& slot = leaf->slots[SlotIndexOf(first_vpn + i)];
    const MappingWord word = slot.load();
    if (word != MappingWord::Invalid()) {
      slot.store(word.with_attr(attr));
    }
  }
  return npages;
}

void LinearPageTable::AuditVisit(check::PtAuditVisitor& visitor) const {
  // A linear table has no hash chains: each leaf page becomes one node view.
  // `index` carries the leaf's live-slot counter so the auditor can check it
  // against the occupied slots it sees in `words`.
  for (const auto& [leaf_index, leaf] : leaves_) {
    check::PtNodeView view;
    view.bucket = 0;
    view.tag = leaf_index;
    view.base_vpn = FirstVpnOfLeaf(leaf_index);
    view.sub_log2 = 0;
    view.words = leaf.slots.data();
    view.num_words = kPtesPerPage;
    view.index = static_cast<std::int32_t>(leaf.live);
    view.addr = leaf.addr;
    visitor.OnNode(view);
  }
}

std::array<std::uint64_t, LinearPageTable::kNumLevels> LinearPageTable::ActiveNodesPerLevel()
    const {
  std::array<std::uint64_t, kNumLevels> counts{};
  counts[0] = leaves_.size();
  for (unsigned level = 2; level <= kNumLevels; ++level) {
    counts[level - 1] = upper_[level].size();
  }
  return counts;
}

std::uint64_t LinearPageTable::SizeBytesPaperModel() const {
  std::uint64_t pages = leaves_.size();
  if (opts_.size_model == SizeModel::kSixLevel) {
    for (unsigned level = 2; level <= kNumLevels; ++level) {
      pages += upper_[level].size();
    }
  }
  std::uint64_t bytes = pages * kBasePageSize;
  if (opts_.size_model == SizeModel::kHashedUpper) {
    // A hashed table (24-byte PTEs) stores the translations to the
    // first-level linear page table: (4KB + 24) * Nactive(512).
    bytes += leaves_.size() * 24;
  }
  return bytes;
}

std::uint64_t LinearPageTable::SizeBytesActual() const {
  std::uint64_t bytes = alloc_.bytes_live();
  if (opts_.size_model == SizeModel::kSixLevel) {
    for (unsigned level = 2; level <= kNumLevels; ++level) {
      bytes += upper_[level].size() * kBasePageSize;
    }
  }
  return bytes;
}

std::uint64_t LinearPageTable::live_translations() const { return live_translations_; }

std::string LinearPageTable::name() const {
  switch (opts_.size_model) {
    case SizeModel::kSixLevel:
      return "linear-6level";
    case SizeModel::kOneLevel:
      return "linear-1level";
    case SizeModel::kHashedUpper:
      return "linear-hashed";
  }
  return "linear";
}

}  // namespace cpt::pt
