// Forward-mapped page table — Figure 3 of the paper.
//
// A top-down n-ary tree: intermediate nodes hold page-table pointers (PTPs),
// leaves hold PTEs, and each level is indexed by a fixed VPN field.
// Extending to 64-bit addresses requires seven levels; the paper deems the
// resulting seven memory accesses per TLB miss impractical — this
// implementation exists as the paper's baseline and reproduces that cost.
//
// Level split (52 VPN bits): a 4-bit root and six 8-bit levels, leaf nodes
// holding 256 PTEs.  The paper does not pin the split; Table 2's formulae
// are parameterized by n_i and this choice satisfies sum(bits) = 52 with
// nlevels = 7.
//
// Superpage / partial-subblock PTEs use Replicate-PTEs at the leaf sites.
// As an extension (Section 4.2 "Forward-Mapped Intermediate Nodes"),
// superpages whose size exactly matches a subtree's coverage can instead be
// stored in the parent's PTP slot, short-circuiting the walk.
#ifndef CPT_PT_FORWARD_H_
#define CPT_PT_FORWARD_H_

#include <array>
#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "check/fwd.h"
#include "common/hotpath.h"
#include "mem/sim_alloc.h"
#include "pt/page_table.h"

namespace cpt::pt {

class ForwardMappedPageTable final : public PageTable {
 public:
  static constexpr unsigned kNumLevels = 7;
  // Bits consumed per level, leaf (level 1) first.
  static constexpr std::array<unsigned, kNumLevels> kLevelBits = {8, 8, 8, 8, 8, 8, 4};
  static constexpr unsigned kLeafEntries = 1u << kLevelBits[0];

  struct Options {
    // Store block-sized (and larger, level-aligned) superpages in
    // intermediate PTP slots instead of replicating at leaf sites.  Only
    // sizes equal to a full subtree's coverage qualify (e.g. 2^8 pages =
    // 1MB); other sizes still replicate.
    bool intermediate_superpages = false;
    mem::NodePlacement placement = mem::NodePlacement::kLineAligned;
  };

  ForwardMappedPageTable(mem::CacheTouchModel& cache, Options opts);
  ~ForwardMappedPageTable() override;

  [[nodiscard]] CPT_HOT std::optional<TlbFill> Lookup(VirtAddr va) override;
  CPT_HOT void LookupBlock(VirtAddr va, unsigned subblock_factor,
                           std::vector<TlbFill>& out) override;
  void InsertBase(Vpn vpn, Ppn ppn, Attr attr) override;
  bool RemoveBase(Vpn vpn) override;
  PtFeatures features() const override {
    return {.superpages = true, .partial_subblock = true, .adjacent_block_fetch = true};
  }
  void InsertSuperpage(Vpn base_vpn, PageSize size, Ppn base_ppn, Attr attr) override;
  bool RemoveSuperpage(Vpn base_vpn, PageSize size) override;
  void UpsertPartialSubblock(Vpn block_base_vpn, unsigned subblock_factor, Ppn block_base_ppn,
                             Attr attr, std::uint16_t valid_vector) override;
  bool RemovePartialSubblock(Vpn block_base_vpn, unsigned subblock_factor) override;
  CPT_HOT bool UpdateAttrFlags(Vpn vpn, std::uint16_t set_mask,
                               std::uint16_t clear_mask) override;
  std::uint64_t ProtectRange(Vpn first_vpn, std::uint64_t npages, Attr attr) override;
  std::uint64_t SizeBytesPaperModel() const override;
  std::uint64_t SizeBytesActual() const override;
  std::uint64_t live_translations() const override;
  std::string name() const override { return "forward-mapped"; }

  // Active node counts per level (leaf first), for the size formulae.
  std::array<std::uint64_t, kNumLevels> ActiveNodesPerLevel() const;

  // ---- Invariant auditing (src/check) ----
  void AuditVisit(check::PtAuditVisitor& visitor) const;

 private:
  friend class check::TestBackdoor;

  struct Leaf {
    PhysAddr addr{};
    std::array<AtomicMappingWord, kLeafEntries> slots{};
    unsigned live = 0;
  };
  // Pinned against tools/layout_ledger.json (cpt_lint layout-ledger rule).
  static_assert(sizeof(Leaf) == 2064 && alignof(Leaf) == 8);

  struct Inner {
    PhysAddr addr{};
    std::uint32_t children = 0;
    // Intermediate-superpage words keyed by slot index (extension).
    std::unordered_map<unsigned, AtomicMappingWord> super_slots;
  };
  static_assert(sizeof(Inner) == 72 && alignof(Inner) == 8);

  static constexpr unsigned ShiftOfLevel(unsigned level) {
    unsigned shift = 0;
    for (unsigned l = 1; l < level; ++l) {
      shift += kLevelBits[l - 1];
    }
    return shift;
  }
  // Tree coordinates deliberately erase the domain: each level consumes a
  // fixed VPN field as a slot index, and the remaining high bits key the
  // node maps.  These are the only crossings from Vpn to tree coordinates.
  static constexpr unsigned IndexAt(Vpn vpn, unsigned level) {
    return static_cast<unsigned>((vpn.raw() >> ShiftOfLevel(level)) &
                                 ((1u << kLevelBits[level - 1]) - 1));
  }
  static constexpr std::uint64_t PrefixAt(Vpn vpn, unsigned level) {
    return vpn.raw() >> (ShiftOfLevel(level) + kLevelBits[level - 1]);
  }
  static constexpr std::uint64_t NodeBytesOfLevel(unsigned level) {
    return (std::uint64_t{1} << kLevelBits[level - 1]) * 8;
  }

  Leaf& LeafFor(Vpn vpn);
  Leaf* FindLeaf(Vpn vpn);
  void SetSlot(Vpn vpn, MappingWord word);
  MappingWord ClearSlot(Vpn vpn);
  void AddPath(Vpn vpn);
  void RemovePath(Vpn vpn);
  // Ensures the node at `level` (and its ancestors) exists, then stores an
  // intermediate superpage word in its PTP slot.
  void AddIntermediateSuper(Vpn vpn, unsigned level, MappingWord word);
  // Frees the node at `level` if it has no children and no super slots,
  // cascading upward.
  void MaybeFreeInner(Vpn vpn, unsigned level);
  TlbFill FillFromWord(Vpn vpn, MappingWord word) const;

  Options opts_;
  mem::SimAllocator alloc_;
  std::unordered_map<std::uint64_t, Leaf> leaves_;
  // Levels 2..7: prefix -> Inner (level 7's only prefix is 0).
  std::array<std::unordered_map<std::uint64_t, Inner>, kNumLevels + 1> inner_;
  std::uint64_t live_translations_ = 0;
};

}  // namespace cpt::pt

#endif  // CPT_PT_FORWARD_H_
