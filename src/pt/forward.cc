#include "pt/forward.h"

#include "check/audit_visitor.h"
#include "common/check.h"

namespace cpt::pt {

namespace {
constexpr unsigned kPsbPagesLog2 = 4;
}  // namespace

ForwardMappedPageTable::ForwardMappedPageTable(mem::CacheTouchModel& cache, Options opts)
    : PageTable(cache), opts_(opts), alloc_(cache.line_size(), opts.placement) {}

ForwardMappedPageTable::~ForwardMappedPageTable() = default;

TlbFill ForwardMappedPageTable::FillFromWord(Vpn vpn, MappingWord word) const {
  TlbFill fill;
  fill.kind = word.kind();
  fill.word = word;
  switch (word.kind()) {
    case MappingKind::kBase:
      fill.base_vpn = vpn;
      fill.pages_log2 = 0;
      break;
    case MappingKind::kSuperpage:
      fill.pages_log2 = word.page_size().size_log2;
      fill.base_vpn = SuperpageBaseVpn(vpn, word.page_size());
      break;
    case MappingKind::kPartialSubblock:
      fill.pages_log2 = kPsbPagesLog2;
      fill.base_vpn = SuperpageBaseVpn(vpn, PageSize{kPsbPagesLog2});
      break;
  }
  return fill;
}

void ForwardMappedPageTable::AddPath(Vpn vpn) {
  // Ensure every intermediate node along the path exists, bumping child
  // counts bottom-up.  A node's count is the number of its active children.
  bool child_was_new = true;
  for (unsigned level = 2; level <= kNumLevels && child_was_new; ++level) {
    auto [it, inserted] = inner_[level].try_emplace(PrefixAt(vpn, level));
    if (inserted) {
      it->second.addr = alloc_.Allocate(NodeBytesOfLevel(level));
    }
    ++it->second.children;
    child_was_new = inserted;
  }
}

void ForwardMappedPageTable::RemovePath(Vpn vpn) {
  bool child_died = true;
  for (unsigned level = 2; level <= kNumLevels && child_died; ++level) {
    auto it = inner_[level].find(PrefixAt(vpn, level));
    CPT_DCHECK(it != inner_[level].end() && it->second.children > 0);
    child_died = --it->second.children == 0 && it->second.super_slots.empty();
    if (child_died) {
      alloc_.Free(it->second.addr, NodeBytesOfLevel(level));
      inner_[level].erase(it);
    }
  }
}

void ForwardMappedPageTable::AddIntermediateSuper(Vpn vpn, unsigned level, MappingWord word) {
  auto [it, inserted] = inner_[level].try_emplace(PrefixAt(vpn, level));
  if (inserted) {
    it->second.addr = alloc_.Allocate(NodeBytesOfLevel(level));
  }
  bool child_was_new = inserted;
  for (unsigned l = level + 1; l <= kNumLevels && child_was_new; ++l) {
    auto [pit, pinserted] = inner_[l].try_emplace(PrefixAt(vpn, l));
    if (pinserted) {
      pit->second.addr = alloc_.Allocate(NodeBytesOfLevel(l));
    }
    ++pit->second.children;
    child_was_new = pinserted;
  }
  const unsigned idx = IndexAt(vpn, level);
  auto& slots = it->second.super_slots;
  auto [slot_it, slot_inserted] = slots.try_emplace(idx, AtomicMappingWord{word});
  if (slot_inserted) {
    live_translations_ += word.page_size().pages();
  } else {
    slot_it->second.store(word);
  }
}

void ForwardMappedPageTable::MaybeFreeInner(Vpn vpn, unsigned level) {
  auto it = inner_[level].find(PrefixAt(vpn, level));
  if (it == inner_[level].end() || it->second.children != 0 || !it->second.super_slots.empty()) {
    return;
  }
  alloc_.Free(it->second.addr, NodeBytesOfLevel(level));
  inner_[level].erase(it);
  bool child_died = true;
  for (unsigned l = level + 1; l <= kNumLevels && child_died; ++l) {
    auto pit = inner_[l].find(PrefixAt(vpn, l));
    CPT_DCHECK(pit != inner_[l].end() && pit->second.children > 0);
    child_died = --pit->second.children == 0 && pit->second.super_slots.empty();
    if (child_died) {
      alloc_.Free(pit->second.addr, NodeBytesOfLevel(l));
      inner_[l].erase(pit);
    }
  }
}

ForwardMappedPageTable::Leaf& ForwardMappedPageTable::LeafFor(Vpn vpn) {
  auto [it, inserted] = leaves_.try_emplace(PrefixAt(vpn, 1));
  if (inserted) {
    it->second.addr = alloc_.Allocate(NodeBytesOfLevel(1));
    AddPath(vpn);
  }
  return it->second;
}

ForwardMappedPageTable::Leaf* ForwardMappedPageTable::FindLeaf(Vpn vpn) {
  auto it = leaves_.find(PrefixAt(vpn, 1));
  return it == leaves_.end() ? nullptr : &it->second;
}

void ForwardMappedPageTable::SetSlot(Vpn vpn, MappingWord word) {
  Leaf& leaf = LeafFor(vpn);
  AtomicMappingWord& slot = leaf.slots[IndexAt(vpn, 1)];
  const MappingWord old = slot.load();
  const bool was_occupied = old != MappingWord::Invalid();
  const bool was_translating = was_occupied && FillFromWord(vpn, old).Covers(vpn);
  const bool now_occupied = word != MappingWord::Invalid();
  const bool now_translating = now_occupied && FillFromWord(vpn, word).Covers(vpn);
  leaf.live += static_cast<unsigned>(now_occupied) - static_cast<unsigned>(was_occupied);
  live_translations_ +=
      static_cast<std::uint64_t>(now_translating) - static_cast<std::uint64_t>(was_translating);
  slot.store(word);
}

MappingWord ForwardMappedPageTable::ClearSlot(Vpn vpn) {
  Leaf* leaf = FindLeaf(vpn);
  if (leaf == nullptr) {
    return MappingWord::Invalid();
  }
  AtomicMappingWord& slot = leaf->slots[IndexAt(vpn, 1)];
  const MappingWord old = slot.load();
  if (old != MappingWord::Invalid()) {
    if (FillFromWord(vpn, old).Covers(vpn)) {
      --live_translations_;
    }
    slot.store(MappingWord::Invalid());
    if (--leaf->live == 0) {
      alloc_.Free(leaf->addr, NodeBytesOfLevel(1));
      leaves_.erase(PrefixAt(vpn, 1));
      RemovePath(vpn);
    }
  }
  return old;
}

std::optional<TlbFill> ForwardMappedPageTable::Lookup(VirtAddr va) {
  const Vpn vpn = VpnOf(va);
  obs::WalkTracer* const tracer = cache_.tracer();
  // Top-down walk: one PTP read per intermediate level, then the leaf PTE.
  // Walk-step events use tree depth as the chain position (root = step 1).
  for (unsigned level = kNumLevels; level >= 2; --level) {
    auto it = inner_[level].find(PrefixAt(vpn, level));
    if (it == inner_[level].end()) {
      return std::nullopt;
    }
    const unsigned idx = IndexAt(vpn, level);
    cache_.Touch(it->second.addr + idx * 8, 8);
    if (tracer != nullptr) {
      tracer->Record({.kind = obs::EventKind::kWalkStep,
                      .vpn = vpn,
                      .step = kNumLevels - level + 1,
                      .lines = static_cast<std::uint32_t>(cache_.LinesThisWalk())});
    }
    if (opts_.intermediate_superpages) {
      auto slot_it = it->second.super_slots.find(idx);
      if (slot_it != it->second.super_slots.end()) {
        TlbFill fill = FillFromWord(vpn, slot_it->second.load());
        if (fill.Covers(vpn)) {
          if (tracer != nullptr) {
            tracer->Record({.kind = obs::EventKind::kWalkHit,
                            .vpn = vpn,
                            .step = kNumLevels - level + 1,
                            .value = WalkHitValue(fill)});
          }
          return fill;  // Short-circuit: the PTP slot held a superpage PTE.
        }
        return std::nullopt;
      }
    }
  }
  Leaf* leaf = FindLeaf(vpn);
  if (leaf == nullptr) {
    return std::nullopt;
  }
  cache_.Touch(leaf->addr + IndexAt(vpn, 1) * 8, 8);
  const MappingWord word = leaf->slots[IndexAt(vpn, 1)].load();
  if (word == MappingWord::Invalid()) {
    return std::nullopt;
  }
  TlbFill fill = FillFromWord(vpn, word);
  if (!fill.Covers(vpn)) {
    return std::nullopt;
  }
  if (tracer != nullptr) {
    // The leaf PTE read is the final level of the tree walk.
    tracer->Record({.kind = obs::EventKind::kWalkHit,
                    .vpn = vpn,
                    .step = kNumLevels,
                    .value = WalkHitValue(fill)});
  }
  return fill;
}

void ForwardMappedPageTable::LookupBlock(VirtAddr va, unsigned subblock_factor,
                                         std::vector<TlbFill>& out) {
  // One tree descent, then the block's PTEs are adjacent in the leaf node.
  const Vpn vpn = VpnOf(va);
  const Vpn first = FirstVpnOfBlock(VpbnOf(vpn, subblock_factor), subblock_factor);
  for (unsigned level = kNumLevels; level >= 2; --level) {
    auto it = inner_[level].find(PrefixAt(first, level));
    if (it == inner_[level].end()) {
      return;
    }
    cache_.Touch(it->second.addr + IndexAt(first, level) * 8, 8);
  }
  Leaf* leaf = FindLeaf(first);
  if (leaf == nullptr) {
    return;
  }
  const unsigned slot0 = IndexAt(first, 1);
  cache_.Touch(leaf->addr + slot0 * 8, std::uint64_t{subblock_factor} * 8);
  for (unsigned i = 0; i < subblock_factor; ++i) {
    const MappingWord word = leaf->slots[slot0 + i].load();
    if (word == MappingWord::Invalid()) {
      continue;
    }
    TlbFill fill = FillFromWord(first + i, word);
    if (fill.Covers(first + i)) {
      out.push_back(fill);
    }
  }
}

void ForwardMappedPageTable::InsertBase(Vpn vpn, Ppn ppn, Attr attr) {
  SetSlot(vpn, MappingWord::Base(ppn, attr));
}

bool ForwardMappedPageTable::RemoveBase(Vpn vpn) {
  return ClearSlot(vpn) != MappingWord::Invalid();
}

void ForwardMappedPageTable::InsertSuperpage(Vpn base_vpn, PageSize size, Ppn base_ppn,
                                             Attr attr) {
  CPT_DCHECK(IsSuperpageAligned(base_vpn, size) && IsSuperpageAligned(base_ppn, size));
  const MappingWord word = MappingWord::Superpage(base_ppn, attr, size);
  if (opts_.intermediate_superpages) {
    // Find the level whose subtree coverage equals the superpage size.
    for (unsigned level = 2; level <= kNumLevels; ++level) {
      if (ShiftOfLevel(level) == size.size_log2) {
        AddIntermediateSuper(base_vpn, level, word);
        return;
      }
    }
  }
  for (unsigned i = 0; i < size.pages(); ++i) {
    SetSlot(base_vpn + i, word);
  }
}

bool ForwardMappedPageTable::RemoveSuperpage(Vpn base_vpn, PageSize size) {
  if (opts_.intermediate_superpages) {
    for (unsigned level = 2; level <= kNumLevels; ++level) {
      if (ShiftOfLevel(level) == size.size_log2) {
        auto it = inner_[level].find(PrefixAt(base_vpn, level));
        if (it == inner_[level].end()) {
          return false;
        }
        const bool erased = it->second.super_slots.erase(IndexAt(base_vpn, level)) > 0;
        if (erased) {
          live_translations_ -= size.pages();
          MaybeFreeInner(base_vpn, level);
        }
        return erased;
      }
    }
  }
  bool any = false;
  for (unsigned i = 0; i < size.pages(); ++i) {
    any |= ClearSlot(base_vpn + i) != MappingWord::Invalid();
  }
  return any;
}

void ForwardMappedPageTable::UpsertPartialSubblock(Vpn block_base_vpn, unsigned subblock_factor,
                                                   Ppn block_base_ppn, Attr attr,
                                                   std::uint16_t valid_vector) {
  CPT_DCHECK(subblock_factor == (1u << kPsbPagesLog2));
  CPT_DCHECK(BoffOf(block_base_vpn, subblock_factor) == 0 &&
             IsSuperpageAligned(block_base_ppn, PageSize{kPsbPagesLog2}));
  const MappingWord word = MappingWord::PartialSubblock(block_base_ppn, attr, valid_vector);
  for (unsigned i = 0; i < subblock_factor; ++i) {
    SetSlot(block_base_vpn + i, word);
  }
}

bool ForwardMappedPageTable::RemovePartialSubblock(Vpn block_base_vpn, unsigned subblock_factor) {
  bool any = false;
  for (unsigned i = 0; i < subblock_factor; ++i) {
    any |= ClearSlot(block_base_vpn + i) != MappingWord::Invalid();
  }
  return any;
}

bool ForwardMappedPageTable::UpdateAttrFlags(Vpn vpn, std::uint16_t set_mask,
                                             std::uint16_t clear_mask) {
  // Uncounted structural update: R/M-bit maintenance rides on the walk the
  // miss already paid for (Section 3.1), so it models no memory traffic.
  if (opts_.intermediate_superpages) {
    for (unsigned level = kNumLevels; level >= 2; --level) {
      auto it = inner_[level].find(PrefixAt(vpn, level));
      if (it == inner_[level].end()) {
        return false;
      }
      auto slot_it = it->second.super_slots.find(IndexAt(vpn, level));
      if (slot_it != it->second.super_slots.end()) {
        const TlbFill fill = FillFromWord(vpn, slot_it->second.load());
        if (!fill.Covers(vpn)) {
          return false;
        }
        // Intermediate superpage PTEs are single-site: one word, no replicas.
        ApplyAttrUpdate(slot_it->second, set_mask, clear_mask);
        return true;
      }
    }
  }
  // Leaf words use Replicate-PTEs: the update must hit every covered site or
  // a later scan at a sibling site would read stale bits.
  Leaf* leaf = FindLeaf(vpn);
  if (leaf == nullptr) {
    return false;
  }
  const MappingWord word = leaf->slots[IndexAt(vpn, 1)].load();
  if (word == MappingWord::Invalid()) {
    return false;
  }
  const TlbFill fill = FillFromWord(vpn, word);
  if (!fill.Covers(vpn)) {
    return false;
  }
  const std::uint64_t npages = std::uint64_t{1} << fill.pages_log2;
  for (std::uint64_t i = 0; i < npages; ++i) {
    const Vpn site = fill.base_vpn + i;
    Leaf* site_leaf = PrefixAt(site, 1) == PrefixAt(vpn, 1) ? leaf : FindLeaf(site);
    if (site_leaf == nullptr) {
      continue;
    }
    AtomicMappingWord& slot = site_leaf->slots[IndexAt(site, 1)];
    const MappingWord replica = slot.load();
    if (replica == MappingWord::Invalid() || replica.kind() != fill.kind) {
      continue;
    }
    ApplyAttrUpdate(slot, set_mask, clear_mask);
  }
  return true;
}

std::uint64_t ForwardMappedPageTable::ProtectRange(Vpn first_vpn, std::uint64_t npages,
                                                   Attr attr) {
  for (std::uint64_t i = 0; i < npages; ++i) {
    Leaf* leaf = FindLeaf(first_vpn + i);
    if (leaf == nullptr) {
      continue;
    }
    AtomicMappingWord& slot = leaf->slots[IndexAt(first_vpn + i, 1)];
    const MappingWord word = slot.load();
    if (word != MappingWord::Invalid()) {
      slot.store(word.with_attr(attr));
    }
  }
  return npages;
}

void ForwardMappedPageTable::AuditVisit(check::PtAuditVisitor& visitor) const {
  // Leaves: one view per leaf node; `index` carries the live-slot counter,
  // `bucket` the tree level (1 = leaf).
  for (const auto& [prefix, leaf] : leaves_) {
    check::PtNodeView view;
    view.bucket = 1;
    view.tag = prefix;
    view.base_vpn = Vpn{prefix << kLevelBits[0]};
    view.sub_log2 = 0;
    view.words = leaf.slots.data();
    view.num_words = kLeafEntries;
    view.index = static_cast<std::int32_t>(leaf.live);
    view.addr = leaf.addr;
    visitor.OnNode(view);
  }
  // Intermediate-superpage words: one single-word view each, sub_log2 set to
  // the subtree coverage of that level.
  for (unsigned level = 2; level <= kNumLevels; ++level) {
    for (const auto& [prefix, inner] : inner_[level]) {
      for (const auto& [idx, word] : inner.super_slots) {
        check::PtNodeView view;
        view.bucket = level;
        view.tag = prefix;
        view.base_vpn = Vpn{((prefix << kLevelBits[level - 1]) | idx) << ShiftOfLevel(level)};
        view.sub_log2 = ShiftOfLevel(level);
        view.words = &word;
        view.num_words = 1;
        view.index = static_cast<std::int32_t>(inner.children);
        view.addr = inner.addr;
        visitor.OnNode(view);
      }
    }
  }
}

std::array<std::uint64_t, ForwardMappedPageTable::kNumLevels>
ForwardMappedPageTable::ActiveNodesPerLevel() const {
  std::array<std::uint64_t, kNumLevels> counts{};
  counts[0] = leaves_.size();
  for (unsigned level = 2; level <= kNumLevels; ++level) {
    counts[level - 1] = inner_[level].size();
  }
  return counts;
}

std::uint64_t ForwardMappedPageTable::SizeBytesPaperModel() const {
  std::uint64_t bytes = leaves_.size() * NodeBytesOfLevel(1);
  for (unsigned level = 2; level <= kNumLevels; ++level) {
    bytes += inner_[level].size() * NodeBytesOfLevel(level);
  }
  return bytes;
}

std::uint64_t ForwardMappedPageTable::SizeBytesActual() const { return alloc_.bytes_live(); }

std::uint64_t ForwardMappedPageTable::live_translations() const { return live_translations_; }

}  // namespace cpt::pt
