#include "pt/page_table.h"

#include "common/check.h"

namespace cpt::pt {

void PageTable::LookupBlock(VirtAddr va, unsigned subblock_factor, std::vector<TlbFill>& out) {
  // Default: one independent probe per base page of the block.  This is the
  // cost the paper charges hashed page tables for complete-subblock prefetch
  // (Section 4.4): neighboring base pages hash to different buckets.
  const Vpn vpn = VpnOf(va);
  const Vpn first = FirstVpnOfBlock(VpbnOf(vpn, subblock_factor), subblock_factor);
  // Callers reuse `out` across walks (Machine::block_fills_); this reserve is
  // a no-op in the steady state and sanctions the push_backs below and in the
  // overrides for the hot-no-alloc rule.
  out.reserve(subblock_factor);
  for (unsigned i = 0; i < subblock_factor; ++i) {
    if (auto fill = Lookup(VaOf(first + i))) {
      out.push_back(*fill);
    }
  }
}

bool PageTable::UpdateAttrFlags(Vpn vpn, std::uint16_t set_mask, std::uint16_t clear_mask) {
  // Uncounted walk: the miss handler just read this word's line.
  cache_.BeginWalk();
  const auto fill = Lookup(VaOf(vpn));
  cache_.AbortWalk();
  if (!fill) {
    return false;
  }
  const Attr updated{
      static_cast<std::uint16_t>((fill->word.attr().bits | set_mask) & ~clear_mask)};
  // Rewrite the covering word through the table's own upsert operation for
  // its format; every organization replaces in place.
  switch (fill->kind) {
    case MappingKind::kBase:
      InsertBase(vpn, fill->word.ppn(), updated);
      break;
    case MappingKind::kSuperpage:
      InsertSuperpage(fill->base_vpn, fill->word.page_size(), fill->word.ppn(), updated);
      break;
    case MappingKind::kPartialSubblock:
      UpsertPartialSubblock(fill->base_vpn, fill->pages(), fill->word.ppn(), updated,
                            fill->word.valid_vector());
      break;
  }
  return true;
}

std::optional<Attr> PageTable::PeekAttr(Vpn vpn) {
  cache_.BeginWalk();
  const auto fill = Lookup(VaOf(vpn));
  cache_.AbortWalk();
  if (!fill) {
    return std::nullopt;
  }
  return fill->word.attr();
}

std::uint64_t PageTable::ScanAndClearReferenced(Vpn first_vpn, std::uint64_t npages) {
  // The clock-daemon sweep.  The count is PTE-granular: a referenced
  // superpage or PSB word counts once, because clearing its bit at the
  // first covered page clears it for the rest of the word's range.
  std::uint64_t referenced = 0;
  for (std::uint64_t i = 0; i < npages; ++i) {
    const Vpn vpn = first_vpn + i;
    const auto attr = PeekAttr(vpn);
    if (attr.has_value() && attr->test(Attr::kReferenced)) {
      UpdateAttrFlags(vpn, 0, Attr::kReferenced);
      ++referenced;
    }
  }
  return referenced;
}

void PageTable::InsertSuperpage(Vpn /*base_vpn*/, PageSize /*size*/, Ppn /*base_ppn*/,
                                Attr /*attr*/) {
  CPT_CHECK(false, "this page table does not support superpage PTEs");
}

bool PageTable::RemoveSuperpage(Vpn /*base_vpn*/, PageSize /*size*/) {
  CPT_CHECK(false, "this page table does not support superpage PTEs");
  return false;
}

void PageTable::UpsertPartialSubblock(Vpn /*block_base_vpn*/, unsigned /*subblock_factor*/,
                                      Ppn /*block_base_ppn*/, Attr /*attr*/,
                                      std::uint16_t /*valid_vector*/) {
  CPT_CHECK(false, "this page table does not support partial-subblock PTEs");
}

bool PageTable::RemovePartialSubblock(Vpn /*block_base_vpn*/, unsigned /*subblock_factor*/) {
  CPT_CHECK(false, "this page table does not support partial-subblock PTEs");
  return false;
}

}  // namespace cpt::pt
