// Hashed (inverted) page table — Figure 4 of the paper.
//
// An open hash table with chaining.  Each PTE stores an 8-byte tag, an
// 8-byte next pointer, and 8 bytes of mapping information (24 bytes total;
// Section 7's packed optimization squeezes tag+next into 8 bytes for 16).
//
// The table is keyed by `vpn >> tag_shift`:
//   - tag_shift == 0:        a conventional base-page hashed table;
//   - tag_shift == log2(s):  a per-page-block table storing superpage /
//     partial-subblock PTEs, used as the second table of MultiTableHashed
//     (Section 4.2 "Multiple Page Tables").
//
// Cache-line accounting (Section 6.1 model): each chain node visited touches
// its tag+next words; the matching node's mapping word is then read.  The
// bucket-head access itself is not charged a separate line — the paper's
// 1 + alpha/2 model counts the first PTE of the chain as the first access
// (bucket heads are "an array of hash nodes", Figure 4).
//
// Concurrency contract (see DESIGN.md "Concurrency contracts"):
//   - Mapping words are atomic cells: concurrent Lookup + R/M-bit updates
//     (Section 3.1) are always safe, on any table.
//   - Structural mutation (Insert*/Remove*/ProtectRange) is single-writer by
//     default.  With Options::lock_stripes > 0 the bucket chains are
//     partitioned across a stripe-lock set and concurrent UpsertWord /
//     InsertBase calls are safe: a node is fully initialized, then published
//     by a release store of its bucket head, so lock-free walkers see it
//     whole.  Concurrent removal is NOT supported in either mode (unlinked
//     nodes would need deferred reclamation).
//   - Lock order: stripe mutex before alloc_mu_; neither is ever held while
//     calling out of this class.
#ifndef CPT_PT_HASHED_H_
#define CPT_PT_HASHED_H_

#include <bit>
#include <cstdint>
#include <optional>
#include <vector>

#include "check/fwd.h"
#include "common/hash.h"
#include "common/hotpath.h"
#include "common/stats.h"
#include "common/sync.h"
#include "mem/sim_alloc.h"
#include "obs/contention.h"
#include "pt/page_table.h"

namespace cpt::pt {

class CPT_SHARED HashedPageTable final : public PageTable {
 public:
  struct Options {
    std::uint32_t num_buckets = kDefaultHashBuckets;
    // Key granularity: PTEs are tagged with vpn >> tag_shift.
    unsigned tag_shift = 0;
    // Section 7 optimization: 16-byte PTEs (short next pointer, inferred tag
    // bits).  Changes size accounting only; the access pattern is identical.
    bool packed_pte = false;
    // Inverted-page-table organization (Section 2 / IBM System/38): the
    // buckets are an array of *pointers* dereferenced to reach the first
    // node, so even a one-node chain costs two lines (pointer + node),
    // while the bucket array itself is 8 bytes per bucket instead of a
    // full embedded node.
    bool inverted = false;
    HashKind hash_kind = HashKind::kMix;
    mem::NodePlacement placement = mem::NodePlacement::kLineAligned;
    // Striped-lock mode (default off): a power-of-two number of mutexes
    // sharding the bucket space, making concurrent inserts safe (see the
    // header comment).  Zero keeps the historical single-writer mode with
    // no locking on the update path.
    unsigned lock_stripes = 0;
    // Striped mode pre-reserves the node arena at this capacity so it never
    // reallocates while lock-free walkers hold pointers into it; exceeding
    // it is a hard CPT_CHECK failure.  Ignored when lock_stripes == 0.
    std::uint64_t striped_node_capacity = std::uint64_t{1} << 18;
  };

  HashedPageTable(mem::CacheTouchModel& cache, Options opts);
  ~HashedPageTable() override;

  // ---- PageTable interface ----
  [[nodiscard]] CPT_HOT std::optional<TlbFill> Lookup(VirtAddr va) override;
  void InsertBase(Vpn vpn, Ppn ppn, Attr attr) override;
  bool RemoveBase(Vpn vpn) override;
  std::uint64_t ProtectRange(Vpn first_vpn, std::uint64_t npages, Attr attr) override;
  // Lock-free R/M-bit update (Section 3.1): an uncounted chain walk followed
  // by an atomic fetch_or/CAS on the covering word — safe against concurrent
  // walkers and other updaters in every mode.
  CPT_HOT bool UpdateAttrFlags(Vpn vpn, std::uint16_t set_mask,
                               std::uint16_t clear_mask) override;
  std::uint64_t SizeBytesPaperModel() const override;
  std::uint64_t SizeBytesActual() const override CPT_EXCLUDES(alloc_mu_);
  std::uint64_t live_translations() const override;
  std::string name() const override;

  // ---- Generic keyed access (used directly by MultiTableHashed) ----

  // Inserts or replaces the PTE whose tag is `vpn >> tag_shift`.
  void UpsertWord(Vpn base_vpn, MappingWord word);
  bool RemoveKey(std::uint64_t key);
  // Chain walk for the key; cache-line counted.  `faulting_vpn` selects the
  // covered page when building the fill.
  [[nodiscard]] CPT_HOT std::optional<TlbFill> LookupKey(std::uint64_t key, Vpn faulting_vpn);
  // Uncounted read of the stored word (OS-side inspection).
  std::optional<MappingWord> Peek(std::uint64_t key) const;

  // ---- Introspection for tests and benches ----
  unsigned tag_shift() const { return opts_.tag_shift; }
  std::uint32_t num_buckets() const { return opts_.num_buckets; }
  bool striped() const { return !stripes_.empty(); }
  // The stripe-lock set (empty unless striped) and the node-allocator lock:
  // read-only views of their acquisition/contention counters, for telemetry
  // reconciliation in tests and benches.
  const StripeSet& stripe_set() const { return stripes_; }
  const Mutex& alloc_mutex() const { return alloc_mu_; }
  std::uint64_t node_count() const { return live_nodes_.load_relaxed(); }
  double LoadFactor() const {
    return static_cast<double>(live_nodes_.load_relaxed()) /
           static_cast<double>(opts_.num_buckets);
  }
  Histogram ChainLengthHistogram() const;

  // ---- Invariant auditing (src/check) ----

  // The bucket a chain key belongs in, for bucket-membership verification.
  std::uint32_t BucketOfKey(std::uint64_t key) const { return hasher_(key); }
  bool packed_pte() const { return opts_.packed_pte; }

  // Walks every chain node, reporting a read-only view of each to the
  // visitor.  Chain walks are bounded at the live node count; running past
  // the bound reports a cycle and stops that bucket.
  void AuditVisit(check::PtAuditVisitor& visitor) const;

 private:
  friend class check::TestBackdoor;

  static constexpr std::int32_t kNil = -1;

  struct Node {
    std::uint64_t key = 0;
    Vpn base_vpn{};  // First VPN covered by the word (host-side metadata).
    AtomicMappingWord word{};
    std::int32_t next = kNil;
    PhysAddr addr{};
  };
  // Pinned against tools/layout_ledger.json (cpt_lint layout-ledger rule):
  // the paper model charges NodeBytes()/TagNextBytes() per chain step, so
  // the host struct backing those constants must stay this shape.
  static_assert(sizeof(Node) == 40 && alignof(Node) == 8);

  // Chain keys deliberately erase the domain: a base-keyed table tags nodes
  // with the VPN, a block-keyed one (tag_shift == log2(s)) with the VPBN.
  // This is the only crossing from Vpn to a raw chain key.
  std::uint64_t ChainKeyOf(Vpn vpn) const { return vpn.raw() >> opts_.tag_shift; }

  std::uint64_t NodeBytes() const { return opts_.packed_pte ? 16 : 24; }
  std::uint64_t TagNextBytes() const { return opts_.packed_pte ? 8 : 16; }

  // The buckets are an array of embedded head nodes (Figure 4): probing a
  // bucket always reads its head slot, even when the chain is empty.  The
  // first chain node is charged at the head slot's address; overflow nodes
  // at their own.  Head slots are strided by a power of two so one never
  // straddles a cache line.
  PhysAddr BucketAddr(std::uint32_t b) const { return bucket_base_ + b * bucket_stride_; }

  std::int32_t AllocNode() CPT_EXCLUDES(alloc_mu_);
  void FreeNode(std::int32_t idx) CPT_EXCLUDES(alloc_mu_);
  TlbFill FillFrom(const Node& n, MappingWord word) const;
  // The shared body of UpsertWord; in striped mode the caller holds the
  // key's stripe mutex (a dynamic capability TSA cannot name statically).
  void UpsertWordImpl(Vpn base_vpn, MappingWord word);

  const Options opts_;
  const BucketHasher hasher_;
  const std::uint64_t bucket_stride_;
  mem::SimAllocator alloc_ CPT_GUARDED_BY(alloc_mu_);
  const PhysAddr bucket_base_;
  // Node storage.  Not TSA-guarded: lock-free walkers traverse it
  // concurrently with (striped) inserts.  Safe because nodes are published
  // only via release stores of bucket heads after full initialization, and
  // striped mode pre-reserves capacity so element addresses never move.
  // Growth and the free list are serialized by alloc_mu_.
  std::vector<Node> arena_;  // cpt-lint: allow(guarded-by-coverage)
  std::vector<std::int32_t> free_nodes_ CPT_GUARDED_BY(alloc_mu_);
  // Bucket heads: release-published by inserts, acquire-read by walkers.
  std::vector<AtomicCell<std::int32_t>> buckets_;
  mutable Mutex alloc_mu_;
  StripeSet stripes_;
  AtomicCell<std::uint64_t> live_nodes_;
  AtomicCell<std::uint64_t> live_translations_;
  // Contention-observability registrations (obs/contention.h): set once in
  // the constructor, touched again only by their destructors, so they carry
  // no guard.  Declared LAST so they unregister — folding the final counts
  // into the global registry — before the locks they reference die.
  obs::ContentionSite alloc_site_;   // cpt-lint: allow(guarded-by-coverage)
  obs::ContentionSite stripe_site_;  // cpt-lint: allow(guarded-by-coverage)
};

}  // namespace cpt::pt

#endif  // CPT_PT_HASHED_H_
