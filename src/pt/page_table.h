// Abstract page-table interface shared by all four organizations.
//
// The TLB-miss path (Lookup / LookupBlock) is cache-line accounted through a
// mem::CacheTouchModel, reproducing the paper's "average number of cache
// lines accessed per TLB miss" metric.  The OS update path (Insert*/Remove*/
// ProtectRange) is not line-counted, but range operations report how many
// structure probes they performed so Section 3.1's qualitative claims can be
// measured (clustered tables search once per page block; hashed tables once
// per base page).
//
// Superpage and partial-subblock (PSB) insertion strategies differ per
// organization, per Sections 4 and 5:
//   - linear / forward-mapped: replicate the PTE at every covered base site;
//   - hashed:                  a second page table keyed by page block
//                              (see MultiTableHashed);
//   - clustered:               stored in place, discriminated by the S field.
// Tables that cannot store a format return false from supports().
#ifndef CPT_PT_PAGE_TABLE_H_
#define CPT_PT_PAGE_TABLE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/hotpath.h"
#include "common/pte.h"
#include "common/types.h"
#include "mem/cache_model.h"

namespace cpt::pt {

// What a successful page-table walk loads into the TLB.
struct TlbFill {
  MappingKind kind = MappingKind::kBase;
  Vpn base_vpn{};         // First VPN covered by this entry.
  unsigned pages_log2 = 0;  // log2(base pages covered).
  MappingWord word{};

  unsigned pages() const { return 1u << pages_log2; }

  bool Covers(Vpn vpn) const {
    const PageSize size{pages_log2};
    if (SuperpageBaseVpn(vpn, size) != SuperpageBaseVpn(base_vpn, size) || vpn < base_vpn) {
      return false;
    }
    if (kind == MappingKind::kPartialSubblock) {
      return word.subpage_valid(static_cast<unsigned>(vpn - base_vpn));
    }
    return word.valid();
  }

  // Physical page for a covered VPN.
  Ppn Translate(Vpn vpn) const {
    const unsigned off = static_cast<unsigned>(vpn - base_vpn);
    switch (kind) {
      case MappingKind::kBase:
        return word.ppn();
      case MappingKind::kSuperpage:
        return word.ppn() + off;
      case MappingKind::kPartialSubblock:
        return word.subpage_ppn(off);
    }
    return word.ppn();
  }
};

// Pinned against tools/layout_ledger.json (cpt_lint layout-ledger rule):
// every TLB stores fills, so TlbFill growth multiplies across all of them.
static_assert(sizeof(TlbFill) == 32 && alignof(TlbFill) == 8);

// kWalkHit `value` payload for a fill (attribution's page-class dimension).
constexpr obs::WalkHitClass WalkHitClassFor(MappingKind kind) {
  switch (kind) {
    case MappingKind::kBase:
      return obs::WalkHitClass::kBase;
    case MappingKind::kSuperpage:
      return obs::WalkHitClass::kSuperpage;
    case MappingKind::kPartialSubblock:
      return obs::WalkHitClass::kPartialSubblock;
  }
  return obs::WalkHitClass::kBase;
}
constexpr std::uint64_t WalkHitValue(const TlbFill& fill) {
  return obs::EncodeWalkHitClass(WalkHitClassFor(fill.kind), fill.pages_log2);
}

// Capability bits: which PTE formats a table can store natively or via its
// designated strategy.
struct PtFeatures {
  bool superpages = false;
  bool partial_subblock = false;
  bool adjacent_block_fetch = false;  // Block prefetch reads adjacent memory.
};

class PageTable {
 public:
  explicit PageTable(mem::CacheTouchModel& cache) : cache_(cache) {}
  virtual ~PageTable() = default;
  PageTable(const PageTable&) = delete;
  PageTable& operator=(const PageTable&) = delete;

  // ---- TLB miss path (cache-line counted) ----

  // Walks the table for `va`.  Returns nullopt on page fault.  The walk's
  // cache-line touches are recorded in cache() between BeginWalk/EndWalk,
  // which the caller (sim::Machine or WalkScope) brackets.
  [[nodiscard]] CPT_HOT virtual std::optional<TlbFill> Lookup(VirtAddr va) = 0;

  // Complete-subblock prefetch (Section 4.4): fetches mappings for every
  // resident base page of va's page block of `subblock_factor` pages.
  // The default implementation performs one full Lookup per base page, which
  // is the multiple-probe cost the paper charges hashed tables; tables with
  // adjacent PTE storage override it.
  CPT_HOT virtual void LookupBlock(VirtAddr va, unsigned subblock_factor,
                                   std::vector<TlbFill>& out);

  // ---- OS update path ----

  virtual void InsertBase(Vpn vpn, Ppn ppn, Attr attr) = 0;
  virtual bool RemoveBase(Vpn vpn) = 0;

  virtual PtFeatures features() const { return {}; }

  // Installs one superpage PTE covering [base_vpn, base_vpn + size.pages()).
  // base_vpn and base_ppn must be size-aligned.  Precondition: supports
  // superpages.
  virtual void InsertSuperpage(Vpn base_vpn, PageSize size, Ppn base_ppn, Attr attr);
  virtual bool RemoveSuperpage(Vpn base_vpn, PageSize size);

  // Installs or updates the partial-subblock PTE for the page block starting
  // at block_base_vpn (block_base_ppn block-aligned, one valid bit per base
  // page).  Precondition: supports partial-subblock PTEs.
  virtual void UpsertPartialSubblock(Vpn block_base_vpn, unsigned subblock_factor,
                                     Ppn block_base_ppn, Attr attr, std::uint16_t valid_vector);
  virtual bool RemovePartialSubblock(Vpn block_base_vpn, unsigned subblock_factor);

  // Rewrites attributes for [first_vpn, first_vpn + npages) where mapped.
  // Returns the number of structure searches performed (Section 3.1 metric).
  virtual std::uint64_t ProtectRange(Vpn first_vpn, std::uint64_t npages, Attr attr) = 0;

  // ORs `set_mask` into and clears `clear_mask` from the attribute bits of
  // the word covering vpn.  This is the TLB miss handler's lock-free
  // referenced/modified-bit update (Section 3.1) and the page daemon's
  // clear; the word's line was just read by the walk, so it is uncounted.
  // Returns false when no mapping covers vpn.  The default implementation
  // re-walks (uncounted) and asks the table to rewrite the found word; it
  // works for every organization because UpdateWordAttr dispatches on the
  // fill the walk produced.
  CPT_HOT virtual bool UpdateAttrFlags(Vpn vpn, std::uint16_t set_mask, std::uint16_t clear_mask);

  // Reads the attribute bits of the covering word without counting lines.
  std::optional<Attr> PeekAttr(Vpn vpn);

  // Clock-daemon sweep: counts pages in [first_vpn, first_vpn+npages) whose
  // referenced bit is set, clearing it (Section 3.1's page-aging scan).
  std::uint64_t ScanAndClearReferenced(Vpn first_vpn, std::uint64_t npages);

  // ---- Metrics ----

  // Page-table bytes under the paper's appendix accounting (payload bytes
  // per PTE / per tree node; empty buckets free).
  virtual std::uint64_t SizeBytesPaperModel() const = 0;

  // Physically-allocated bytes, including bucket arrays and slack.
  virtual std::uint64_t SizeBytesActual() const = 0;

  // Number of base-page translations currently stored (superpage/PSB PTEs
  // count each valid covered page).
  virtual std::uint64_t live_translations() const = 0;

  virtual std::string name() const = 0;

  mem::CacheTouchModel& cache() { return cache_; }

 protected:
  mem::CacheTouchModel& cache_;
};

}  // namespace cpt::pt

#endif  // CPT_PT_PAGE_TABLE_H_
