// Hashed-page-table strategies for superpage and partial-subblock PTEs
// (Section 4.2).
//
// MultiTableHashed — the "Multiple Page Tables" solution the paper's
// evaluation assumes for hashed tables (Section 6.1): one hashed table keyed
// by base VPN for 4KB PTEs and a second keyed by page block for
// superpage/partial-subblock PTEs.  A TLB miss probes them in a configurable
// order (base-first by default, as in Figure 11b/c; Section 6.3 notes that
// block-first would be better for PSB-heavy workloads).  A miss that is
// satisfied by the second table pays for both searches — the source of the
// hashed tables' poor Figure 11b/c results.
//
// SuperpageIndexHashed — the "Superpage-Index Hashed" solution: a single
// table whose hash function always uses the page-block number, so base PTEs
// for the same block chain into one bucket alongside any superpage/PSB PTEs.
// One probe suffices, but chains are longer.
#ifndef CPT_PT_MULTI_HASHED_H_
#define CPT_PT_MULTI_HASHED_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "check/fwd.h"
#include "common/hash.h"
#include "common/hotpath.h"
#include "mem/sim_alloc.h"
#include "pt/hashed.h"
#include "pt/page_table.h"

namespace cpt::pt {

class MultiTableHashed final : public PageTable {
 public:
  enum class SearchOrder : std::uint8_t {
    kBaseFirst,   // 4KB table, then the block table (the paper's default).
    kBlockFirst,  // Block table first (better when most misses hit SP/PSB).
  };

  struct Options {
    std::uint32_t num_buckets = kDefaultHashBuckets;  // Per constituent table.
    unsigned subblock_factor = kDefaultSubblockFactor;
    SearchOrder order = SearchOrder::kBaseFirst;
    bool packed_pte = false;
    HashKind hash_kind = HashKind::kMix;
    mem::NodePlacement placement = mem::NodePlacement::kLineAligned;
  };

  MultiTableHashed(mem::CacheTouchModel& cache, Options opts);

  [[nodiscard]] CPT_HOT std::optional<TlbFill> Lookup(VirtAddr va) override;
  void InsertBase(Vpn vpn, Ppn ppn, Attr attr) override;
  bool RemoveBase(Vpn vpn) override;
  PtFeatures features() const override { return {.superpages = true, .partial_subblock = true}; }
  void InsertSuperpage(Vpn base_vpn, PageSize size, Ppn base_ppn, Attr attr) override;
  bool RemoveSuperpage(Vpn base_vpn, PageSize size) override;
  void UpsertPartialSubblock(Vpn block_base_vpn, unsigned subblock_factor, Ppn block_base_ppn,
                             Attr attr, std::uint16_t valid_vector) override;
  bool RemovePartialSubblock(Vpn block_base_vpn, unsigned subblock_factor) override;
  CPT_HOT bool UpdateAttrFlags(Vpn vpn, std::uint16_t set_mask,
                               std::uint16_t clear_mask) override;
  std::uint64_t ProtectRange(Vpn first_vpn, std::uint64_t npages, Attr attr) override;
  std::uint64_t SizeBytesPaperModel() const override;
  std::uint64_t SizeBytesActual() const override;
  std::uint64_t live_translations() const override;
  std::string name() const override;

  HashedPageTable& base_table() { return base_; }
  HashedPageTable& block_table() { return block_; }
  const HashedPageTable& base_table() const { return base_; }
  const HashedPageTable& block_table() const { return block_; }

  // ---- Invariant auditing (src/check) ----
  void AuditVisit(check::PtAuditVisitor& visitor) const;

 private:
  // Chain keys for the constituent tables deliberately erase the domain: the
  // base table is VPN-keyed (tag_shift 0), the block table VPBN-keyed.  These
  // are the only crossings from Vpn to the raw keys LookupKey/RemoveKey take.
  std::uint64_t BaseKeyOf(Vpn vpn) const { return vpn.raw(); }
  // cpt-lint: allow(raw-address-param): the sanctioned key crossing above.
  std::uint64_t BlockKeyOf(Vpn vpn) const { return vpn.raw() >> block_shift_; }

  Options opts_;
  unsigned block_shift_;
  HashedPageTable base_;
  HashedPageTable block_;
};

class SuperpageIndexHashed final : public PageTable {
 public:
  struct Options {
    std::uint32_t num_buckets = kDefaultHashBuckets;
    unsigned subblock_factor = kDefaultSubblockFactor;  // The hash index size.
    HashKind hash_kind = HashKind::kMix;
    mem::NodePlacement placement = mem::NodePlacement::kLineAligned;
  };

  SuperpageIndexHashed(mem::CacheTouchModel& cache, Options opts);

  [[nodiscard]] CPT_HOT std::optional<TlbFill> Lookup(VirtAddr va) override;
  void InsertBase(Vpn vpn, Ppn ppn, Attr attr) override;
  bool RemoveBase(Vpn vpn) override;
  PtFeatures features() const override { return {.superpages = true, .partial_subblock = true}; }
  void InsertSuperpage(Vpn base_vpn, PageSize size, Ppn base_ppn, Attr attr) override;
  bool RemoveSuperpage(Vpn base_vpn, PageSize size) override;
  void UpsertPartialSubblock(Vpn block_base_vpn, unsigned subblock_factor, Ppn block_base_ppn,
                             Attr attr, std::uint16_t valid_vector) override;
  bool RemovePartialSubblock(Vpn block_base_vpn, unsigned subblock_factor) override;
  CPT_HOT bool UpdateAttrFlags(Vpn vpn, std::uint16_t set_mask,
                               std::uint16_t clear_mask) override;
  std::uint64_t ProtectRange(Vpn first_vpn, std::uint64_t npages, Attr attr) override;
  std::uint64_t SizeBytesPaperModel() const override;
  std::uint64_t SizeBytesActual() const override;
  std::uint64_t live_translations() const override;
  std::string name() const override { return "hashed-spindex"; }

  Histogram ChainLengthHistogram() const;

  // ---- Invariant auditing (src/check) ----
  unsigned block_shift() const { return block_shift_; }
  std::uint64_t node_count() const { return live_nodes_; }
  std::uint32_t BucketOfVpn(Vpn vpn) const { return hasher_(BlockKeyOf(vpn)); }
  void AuditVisit(check::PtAuditVisitor& visitor) const;

 private:
  friend class check::TestBackdoor;

  static constexpr std::int32_t kNil = -1;

  // Hash keys deliberately erase the domain: every node — base, superpage,
  // or partial-subblock — hashes by its page-block number so one probe finds
  // them all.  This is the only crossing from Vpn to a raw hash key.
  // cpt-lint: allow(raw-address-param)
  std::uint64_t BlockKeyOf(Vpn vpn) const { return vpn.raw() >> block_shift_; }

  // A node tagged by the exact range it covers; hashed by page block.
  struct Node {
    Vpn base_vpn{};
    unsigned pages_log2 = 0;
    AtomicMappingWord word{};
    std::int32_t next = kNil;
    PhysAddr addr{};
  };
  // Pinned against tools/layout_ledger.json (cpt_lint layout-ledger rule).
  static_assert(sizeof(Node) == 40 && alignof(Node) == 8);

  std::int32_t* FindLink(Vpn base_vpn, unsigned pages_log2, MappingKind kind);
  void Upsert(Vpn base_vpn, unsigned pages_log2, MappingWord word);
  bool Remove(Vpn base_vpn, unsigned pages_log2, MappingKind kind);
  TlbFill FillFrom(const Node& n, MappingWord word) const;
  std::uint64_t TranslationCount(const Node& n) const;

  // Embedded bucket-head addressing (see HashedPageTable::BucketAddr).
  PhysAddr BucketAddr(std::uint32_t b) const { return bucket_base_ + b * 32; }

  Options opts_;
  unsigned block_shift_;
  BucketHasher hasher_;
  mem::SimAllocator alloc_;
  PhysAddr bucket_base_{};
  std::vector<Node> arena_;
  std::vector<std::int32_t> free_nodes_;
  std::vector<std::int32_t> buckets_;
  std::uint64_t live_nodes_ = 0;
  std::uint64_t live_translations_ = 0;
};

}  // namespace cpt::pt

#endif  // CPT_PT_MULTI_HASHED_H_
