// Linear page table — Figure 2 of the paper, extended to 64-bit addresses.
//
// Conceptually a single virtual array of PTEs indexed by VPN, materialized a
// 4KB page (512 PTEs) at a time.  For 64-bit addresses the mappings *to* the
// page table form a 6-level tree (52 VPN bits / 9 bits per level); the
// straightforward extension the paper analyzes.
//
// Size accounting (appendix Table 2):
//   - kSixLevel: sum over levels i=1..6 of 4KB * Nactive(2^(9i)) — every
//     active tree node is a page.
//   - kOneLevel: leaf pages only, assuming the upper levels live in a
//     zero-space structure (the paper's optimistic "1-level" series; in
//     practice a hashed table holds the upper mappings, see Section 7).
//
// Access-time accounting (Section 6.1): each TLB miss reads exactly one PTE
// from the leaf page — one cache line.  Misses on the page table's *own*
// virtual mappings (nested TLB misses) are modeled at the machine level by
// reserving 8 of the 64 TLB entries for page-table mappings; this class only
// touches the leaf slot.
//
// Superpage / partial-subblock PTEs use the Replicate-PTEs strategy
// (Section 4.2): the word is written at every covered base-page site, so
// lookups are unchanged but the table cannot shrink.
#ifndef CPT_PT_LINEAR_H_
#define CPT_PT_LINEAR_H_

#include <array>
#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "check/fwd.h"
#include "common/hotpath.h"
#include "mem/sim_alloc.h"
#include "pt/page_table.h"

namespace cpt::pt {

class LinearPageTable final : public PageTable {
 public:
  static constexpr unsigned kPtesPerPage = kBasePageSize / 8;  // 512
  static constexpr unsigned kBitsPerLevel = 9;
  static constexpr unsigned kNumLevels = 6;  // ceil(52 / 9)

  enum class SizeModel : std::uint8_t {
    kSixLevel,     // Charge every level of the 6-level tree.
    kOneLevel,     // Charge leaf pages only (optimistic "1-level" series).
    kHashedUpper,  // Leaf pages + one 24-byte hashed PTE per leaf, holding
                   // the translations to the page table itself (Table 2's
                   // "Linear with Hashed" row; Section 7's practical form).
  };

  struct Options {
    SizeModel size_model = SizeModel::kSixLevel;
    mem::NodePlacement placement = mem::NodePlacement::kLineAligned;
  };

  LinearPageTable(mem::CacheTouchModel& cache, Options opts);
  ~LinearPageTable() override;

  [[nodiscard]] CPT_HOT std::optional<TlbFill> Lookup(VirtAddr va) override;
  CPT_HOT void LookupBlock(VirtAddr va, unsigned subblock_factor,
                           std::vector<TlbFill>& out) override;
  void InsertBase(Vpn vpn, Ppn ppn, Attr attr) override;
  bool RemoveBase(Vpn vpn) override;
  PtFeatures features() const override {
    return {.superpages = true, .partial_subblock = true, .adjacent_block_fetch = true};
  }
  void InsertSuperpage(Vpn base_vpn, PageSize size, Ppn base_ppn, Attr attr) override;
  bool RemoveSuperpage(Vpn base_vpn, PageSize size) override;
  void UpsertPartialSubblock(Vpn block_base_vpn, unsigned subblock_factor, Ppn block_base_ppn,
                             Attr attr, std::uint16_t valid_vector) override;
  bool RemovePartialSubblock(Vpn block_base_vpn, unsigned subblock_factor) override;
  CPT_HOT bool UpdateAttrFlags(Vpn vpn, std::uint16_t set_mask,
                               std::uint16_t clear_mask) override;
  std::uint64_t ProtectRange(Vpn first_vpn, std::uint64_t npages, Attr attr) override;
  std::uint64_t SizeBytesPaperModel() const override;
  std::uint64_t SizeBytesActual() const override;
  std::uint64_t live_translations() const override;
  std::string name() const override;

  // Tree-node counts per level (level 1 = leaves), for the size formulae.
  std::array<std::uint64_t, kNumLevels> ActiveNodesPerLevel() const;

  // ---- Invariant auditing (src/check) ----
  void AuditVisit(check::PtAuditVisitor& visitor) const;

 private:
  friend class check::TestBackdoor;

  struct Leaf {
    PhysAddr addr{};
    std::array<AtomicMappingWord, kPtesPerPage> slots{};
    unsigned live = 0;
  };
  // Pinned against tools/layout_ledger.json (cpt_lint layout-ledger rule).
  static_assert(sizeof(Leaf) == 4112 && alignof(Leaf) == 8);

  // Tree indices deliberately erase the domain: the 6-level radix tree keys
  // level i by vpn >> (9*i), a plain array index.  These are the only
  // crossings from Vpn to a leaf index / slot number and back.
  static constexpr std::uint64_t LeafIndexOf(Vpn vpn) { return vpn.raw() >> kBitsPerLevel; }
  static constexpr unsigned SlotIndexOf(Vpn vpn) {
    return static_cast<unsigned>(vpn.raw() % kPtesPerPage);
  }
  static constexpr Vpn FirstVpnOfLeaf(std::uint64_t leaf_index) {
    return Vpn{leaf_index << kBitsPerLevel};
  }

  Leaf& LeafFor(Vpn vpn);
  Leaf* FindLeaf(Vpn vpn);
  void SetSlot(Vpn vpn, MappingWord word);
  // Clears a slot; returns the previous word.
  MappingWord ClearSlot(Vpn vpn);
  void AddUpperLevels(std::uint64_t leaf_index);
  void RemoveUpperLevels(std::uint64_t leaf_index);
  TlbFill FillFromWord(Vpn vpn, MappingWord word) const;

  Options opts_;
  mem::SimAllocator alloc_;
  std::unordered_map<std::uint64_t, Leaf> leaves_;  // keyed by vpn >> 9
  // Refcounts of active intermediate nodes, levels 2..6 (index 0 unused,
  // index 1 unused; level i keyed by vpn >> (9*i)).
  std::array<std::unordered_map<std::uint64_t, std::uint32_t>, kNumLevels + 1> upper_;
  std::uint64_t live_translations_ = 0;
};

}  // namespace cpt::pt

#endif  // CPT_PT_LINEAR_H_
