#include "os/address_space.h"

#include <bit>
#include "common/check.h"

namespace cpt::os {

AddressSpace::AddressSpace(std::uint32_t id, pt::PageTable& table,
                           mem::ReservationAllocator& frames, AddressSpaceOptions opts)
    : id_(id),
      table_(table),
      frames_(frames),
      opts_(opts),
      factor_(opts.subblock_factor),
      block_size_{Log2(opts.subblock_factor)} {
  CPT_CHECK(IsPowerOfTwo(factor_));
  CPT_CHECK(factor_ == frames.subblock_factor());
  if (opts_.strategy == PteStrategy::kPartialSubblock) {
    CPT_CHECK(factor_ <= MappingWord::kMaxPsbFactor);
    CPT_CHECK(table_.features().partial_subblock);
  }
  if (opts_.strategy == PteStrategy::kSuperpage) {
    CPT_CHECK(table_.features().superpages);
  }
}

AddressSpace::~AddressSpace() = default;

Ppn AddressSpace::BlockPpnBase(const BlockState& b) const {
  CPT_DCHECK(b.placed_mask != 0);
  const unsigned slot = static_cast<unsigned>(std::countr_zero(b.placed_mask));
  return b.ppns[slot] - slot;
}

bool AddressSpace::TouchPage(VirtAddr va) {
  const Vpn vpn = VpnOf(va);
  const Vpbn vpbn = VpbnOf(vpn, factor_);
  const unsigned boff = BoffOf(vpn, factor_);
  const std::uint32_t bit = 1u << boff;

  auto [it, inserted] = blocks_.try_emplace(vpbn);
  BlockState& block = it->second;
  if (inserted) {
    block.ppns.resize(factor_, Ppn{});
  }
  if (block.resident_mask & bit) {
    return true;  // Already resident and mapped.
  }

  const auto grant = frames_.Allocate(ReservationKey(vpbn), boff);
  if (!grant) {
    ++stats_.oom_faults;
    return false;
  }
  ++stats_.faults;
  if (obs::WalkTracer* const tracer = table_.cache().tracer()) {
    tracer->Record({.kind = obs::EventKind::kPageFault,
                    .asid = static_cast<std::uint16_t>(id_),
                    .vpn = vpn,
                    .value = grant->properly_placed ? 1u : 0u});
  }
  ++resident_pages_;
  block.resident_mask |= bit;
  block.ppns[boff] = grant->ppn;
  if (grant->properly_placed) {
    block.placed_mask |= bit;
  } else {
    ++stats_.placement_failures;
  }
  MapNewPage(vpbn, block, boff, grant->properly_placed);
  return true;
}

void AddressSpace::MapNewPage(Vpbn vpbn, BlockState& block, unsigned boff, bool placed) {
  const Vpn vpn = BlockFirstVpn(vpbn) + boff;
  const Ppn ppn = block.ppns[boff];
  switch (opts_.strategy) {
    case PteStrategy::kBaseOnly:
      table_.InsertBase(vpn, ppn, opts_.default_attr);
      break;
    case PteStrategy::kSuperpage:
      table_.InsertBase(vpn, ppn, opts_.default_attr);
      MaybePromote(vpbn, block);
      break;
    case PteStrategy::kPartialSubblock:
      if (placed) {
        // The page joins (or starts) the block's PSB PTE: valid vector =
        // resident AND properly-placed pages.
        const auto vector =
            static_cast<std::uint16_t>(block.resident_mask & block.placed_mask);
        table_.UpsertPartialSubblock(BlockFirstVpn(vpbn), factor_, BlockPpnBase(block),
                                     opts_.default_attr, vector);
        block.has_psb_pte = true;
        ++stats_.psb_updates;
      } else {
        table_.InsertBase(vpn, ppn, opts_.default_attr);
      }
      break;
  }
}

void AddressSpace::MaybePromote(Vpbn vpbn, BlockState& block) {
  const std::uint32_t full =
      factor_ >= 32 ? ~std::uint32_t{0} : ((std::uint32_t{1} << factor_) - 1);
  if (block.promoted || block.resident_mask != full || block.placed_mask != full) {
    return;
  }
  // Dynamic page-size assignment: the block is fully resident and properly
  // placed — promote it to one superpage PTE (Section 5's incremental
  // creation: all-valid is easy to notice in a clustered node).
  const Vpn first = BlockFirstVpn(vpbn);
  for (unsigned i = 0; i < factor_; ++i) {
    table_.RemoveBase(first + i);
  }
  table_.InsertSuperpage(first, block_size_, BlockPpnBase(block), opts_.default_attr);
  block.promoted = true;
  ++stats_.promotions;
  if (obs::WalkTracer* const tracer = table_.cache().tracer()) {
    tracer->Record({.kind = obs::EventKind::kPtePromotion,
                    .asid = static_cast<std::uint16_t>(id_),
                    .vpn = first,
                    .value = factor_});
  }
}

bool AddressSpace::IsResident(Vpn vpn) const {
  auto it = blocks_.find(VpbnOf(vpn, factor_));
  if (it == blocks_.end()) {
    return false;
  }
  return (it->second.resident_mask >> BoffOf(vpn, factor_)) & 1u;
}

void AddressSpace::UnmapOnePage(Vpn vpn) {
  const Vpbn vpbn = VpbnOf(vpn, factor_);
  const unsigned boff = BoffOf(vpn, factor_);
  const std::uint32_t bit = 1u << boff;
  auto it = blocks_.find(vpbn);
  if (it == blocks_.end() || !(it->second.resident_mask & bit)) {
    return;
  }
  BlockState& block = it->second;
  const Vpn first = BlockFirstVpn(vpbn);

  if (block.promoted) {
    // Demote: split the superpage back into base PTEs for the pages that
    // remain resident.
    table_.RemoveSuperpage(first, block_size_);
    block.promoted = false;
    ++stats_.demotions;
    for (unsigned i = 0; i < factor_; ++i) {
      if (i != boff && (block.resident_mask & (1u << i))) {
        table_.InsertBase(first + i, block.ppns[i], opts_.default_attr);
      }
    }
  } else if (block.has_psb_pte && (block.placed_mask & bit)) {
    const auto vector =
        static_cast<std::uint16_t>((block.resident_mask & block.placed_mask) & ~bit);
    if (vector != 0) {
      table_.UpsertPartialSubblock(first, factor_, BlockPpnBase(block), opts_.default_attr,
                                   vector);
    } else {
      table_.RemovePartialSubblock(first, factor_);
      block.has_psb_pte = false;
    }
    ++stats_.psb_updates;
  } else {
    table_.RemoveBase(vpn);
  }

  frames_.Free(block.ppns[boff]);
  block.resident_mask &= ~bit;
  block.placed_mask &= ~bit;
  block.ppns[boff] = Ppn{};
  --resident_pages_;
  if (block.resident_mask == 0) {
    blocks_.erase(it);
  }
}

void AddressSpace::UnmapRange(Vpn first_vpn, std::uint64_t npages) {
  for (std::uint64_t i = 0; i < npages; ++i) {
    UnmapOnePage(first_vpn + i);
  }
}

AddressSpace::BlockCensus AddressSpace::Census() const {
  BlockCensus census;
  for (const auto& [vpbn, block] : blocks_) {
    if (block.resident_mask == 0) {
      continue;
    }
    if (block.promoted) {
      ++census.super_blocks;
    } else if (block.has_psb_pte) {
      if (block.resident_mask & ~block.placed_mask) {
        ++census.mixed_blocks;
      } else {
        ++census.psb_blocks;
      }
    } else {
      ++census.base_blocks;
    }
  }
  return census;
}

}  // namespace cpt::os
